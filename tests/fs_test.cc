// Tests for the replicated in-memory file system.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fs/ramfs.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "skb/skb.h"

namespace mk::fs {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers),
        fs(sys) {
    skb.PopulateFromHardware();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
  ReplicatedFs fs;
};

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Fs, CreateWriteReadRoundTrip) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    EXPECT_EQ(co_await fx.fs.Create(3, "/etc/motd"), FsErr::kOk);
    EXPECT_EQ(co_await fx.fs.Write(3, "/etc/motd", Bytes("hello")), FsErr::kOk);
    // Read from a *different* core: served by its local replica.
    auto data = co_await fx.fs.Read(11, "/etc/motd");
    EXPECT_TRUE(data.has_value());
    EXPECT_EQ(std::string(data->begin(), data->end()), "hello");
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Fs, ErrorsSurfaceConsistently) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    EXPECT_EQ(co_await fx.fs.Write(0, "/none", Bytes("x")), FsErr::kNotFound);
    EXPECT_EQ(co_await fx.fs.Create(0, "relative/path"), FsErr::kBadPath);
    EXPECT_EQ(co_await fx.fs.Create(0, "/a"), FsErr::kOk);
    EXPECT_EQ(co_await fx.fs.Create(1, "/a"), FsErr::kExists);
    EXPECT_EQ(co_await fx.fs.Remove(2, "/a"), FsErr::kOk);
    EXPECT_EQ(co_await fx.fs.Remove(2, "/a"), FsErr::kNotFound);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Fs, AppendAndList) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    (void)co_await fx.fs.Create(0, "/log/a");
    (void)co_await fx.fs.Create(5, "/log/b");
    (void)co_await fx.fs.Create(9, "/data/c");
    EXPECT_EQ(co_await fx.fs.Append(2, "/log/a", Bytes("one ")), FsErr::kOk);
    EXPECT_EQ(co_await fx.fs.Append(7, "/log/a", Bytes("two")), FsErr::kOk);
    auto data = co_await fx.fs.Read(15, "/log/a");
    EXPECT_EQ(std::string(data->begin(), data->end()), "one two");
    auto logs = co_await fx.fs.List(4, "/log/");
    EXPECT_EQ(logs.size(), 2u);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Fs, ConcurrentWritersOnSameFileStayConsistent) {
  // The per-file sequencer orders conflicting appends; every replica must end
  // with the same byte sequence regardless of which cores issued them.
  Fixture f;
  int done = 0;
  f.exec.Spawn([](Fixture& fx, int& d) -> Task<> {
    (void)co_await fx.fs.Create(0, "/shared");
    ++d;
  }(f, done));
  f.exec.Run();
  for (int c = 0; c < 8; ++c) {
    f.exec.Spawn([](Fixture& fx, int core, int& d) -> Task<> {
      for (int i = 0; i < 3; ++i) {
        (void)co_await fx.fs.Append(core, "/shared",
                                    Bytes(std::to_string(core) + "."));
      }
      if (++d == 9) {
        fx.sys.Shutdown();
      }
    }(f, c, done));
  }
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
  EXPECT_EQ(f.fs.mutations(), 25u);  // 1 create + 24 appends
}

TEST(Fs, RandomizedOpsAgainstReferenceModel) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    sim::Rng rng(2026);
    std::map<std::string, std::string> reference;
    const std::vector<std::string> paths = {"/a", "/b", "/c", "/d"};
    for (int step = 0; step < 120; ++step) {
      const std::string& path = paths[rng.Below(paths.size())];
      int core = static_cast<int>(rng.Below(16));
      switch (rng.Below(4)) {
        case 0: {
          FsErr err = co_await fx.fs.Create(core, path);
          FsErr want = reference.count(path) ? FsErr::kExists : FsErr::kOk;
          EXPECT_EQ(err, want) << path;
          reference.try_emplace(path, "");
          break;
        }
        case 1: {
          std::string payload = "v" + std::to_string(step);
          FsErr err = co_await fx.fs.Write(core, path, Bytes(payload));
          if (reference.count(path)) {
            EXPECT_EQ(err, FsErr::kOk);
            reference[path] = payload;
          } else {
            EXPECT_EQ(err, FsErr::kNotFound);
          }
          break;
        }
        case 2: {
          FsErr err = co_await fx.fs.Remove(core, path);
          EXPECT_EQ(err, reference.erase(path) ? FsErr::kOk : FsErr::kNotFound);
          break;
        }
        default: {
          auto data = co_await fx.fs.Read(core, path);
          if (reference.count(path)) {
            EXPECT_TRUE(data.has_value());
            EXPECT_EQ(std::string(data->begin(), data->end()), reference[path]);
          } else {
            EXPECT_FALSE(data.has_value());
          }
          break;
        }
      }
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Fs, HotplugReplicaSyncRestoresConsistency) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    (void)co_await fx.fs.Create(0, "/state");
    (void)co_await fx.sys.OfflineCore(0, 10);
    (void)co_await fx.fs.Write(0, "/state", Bytes("v2"));
    (void)co_await fx.sys.OnlineCore(0, 10);
    EXPECT_FALSE(fx.fs.ReplicasConsistent());  // core 10 missed the write
    co_await fx.fs.SyncReplica(0, 10);
    EXPECT_TRUE(fx.fs.ReplicasConsistent());
    auto data = co_await fx.fs.Read(10, "/state");
    EXPECT_TRUE(data.has_value());
    EXPECT_EQ(std::string(data->begin(), data->end()), "v2");
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

TEST(Fs, LocalReadCheaperThanMutation) {
  Fixture f;
  Cycles read_cost = 0;
  Cycles write_cost = 0;
  f.exec.Spawn([](Fixture& fx, Cycles& rc, Cycles& wc) -> Task<> {
    (void)co_await fx.fs.Create(0, "/f");
    Cycles t0 = fx.exec.now();
    (void)co_await fx.fs.Write(6, "/f", Bytes("data"));
    wc = fx.exec.now() - t0;
    t0 = fx.exec.now();
    (void)co_await fx.fs.Read(6, "/f");
    rc = fx.exec.now() - t0;
    fx.sys.Shutdown();
  }(f, read_cost, write_cost));
  f.exec.Run();
  EXPECT_LT(read_cost * 10, write_cost);  // reads are replica-local
}

}  // namespace
}  // namespace mk::fs
