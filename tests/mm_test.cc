// Tests for memory management: buddy allocator and virtual address spaces.
#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "mm/buddy.h"
#include "mm/vspace.h"
#include "sim/executor.h"
#include "sim/random.h"

namespace mk::mm {
namespace {

using sim::Task;

TEST(Buddy, AllocatesAndFreesFullRange) {
  BuddyAllocator b(0x10000, 1 << 20, 4096);
  EXPECT_EQ(b.free_bytes(), 1u << 20);
  auto a = b.Alloc(4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a % 4096, 0u);
  EXPECT_EQ(b.free_bytes(), (1u << 20) - 4096);
  b.Free(*a, 4096);
  EXPECT_EQ(b.free_bytes(), 1u << 20);
  EXPECT_EQ(b.LargestFree(), 1u << 20);  // buddies fully merged
}

TEST(Buddy, RoundsUpToPowerOfTwo) {
  BuddyAllocator b(0, 1 << 20);
  auto a = b.Alloc(5000);  // rounds to 8192
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(b.free_bytes(), (1u << 20) - 8192);
  b.Free(*a, 5000);
  EXPECT_EQ(b.free_bytes(), 1u << 20);
}

TEST(Buddy, ExhaustionReturnsNullopt) {
  BuddyAllocator b(0, 16 * 4096);
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 16; ++i) {
    auto a = b.Alloc(4096);
    ASSERT_TRUE(a.has_value());
    blocks.push_back(*a);
  }
  EXPECT_FALSE(b.Alloc(4096).has_value());
  // All blocks distinct.
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(std::unique(blocks.begin(), blocks.end()), blocks.end());
}

TEST(Buddy, SplitAndMergeSequence) {
  BuddyAllocator b(0, 1 << 16);  // 64 KiB
  auto big = b.Alloc(1 << 15);   // 32 KiB
  auto small1 = b.Alloc(4096);
  auto small2 = b.Alloc(4096);
  ASSERT_TRUE(big && small1 && small2);
  b.Free(*small1, 4096);
  b.Free(*big, 1 << 15);
  b.Free(*small2, 4096);
  EXPECT_EQ(b.LargestFree(), 1u << 16);
}

TEST(Buddy, RejectsBadConstruction) {
  EXPECT_THROW(BuddyAllocator(0, 5000, 4096), std::invalid_argument);   // not pow2
  EXPECT_THROW(BuddyAllocator(100, 8192, 4096), std::invalid_argument); // misaligned
}

TEST(Buddy, RandomizedAllocFreeNeverLosesMemory) {
  BuddyAllocator b(0, 1 << 20);
  sim::Rng rng(99);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> held;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.Chance(0.6)) {
      std::uint64_t bytes = 4096u << rng.Below(4);
      auto a = b.Alloc(bytes);
      if (a) {
        held.emplace_back(*a, bytes);
      }
    } else {
      auto idx = rng.Below(held.size());
      b.Free(held[idx].first, held[idx].second);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  for (auto [addr, bytes] : held) {
    b.Free(addr, bytes);
  }
  EXPECT_EQ(b.free_bytes(), 1u << 20);
  EXPECT_EQ(b.LargestFree(), 1u << 20);
}

// --- VSpace ---

struct VsFixture {
  VsFixture() : machine(exec, hw::Amd4x4()) {
    root = caps.InstallRoot(0x1000000, 64 << 20);
    // Pre-split the root so each MakeFrame call retypes a fresh RAM region
    // (a RAM cap with descendants cannot be retyped again).
    auto split = caps.Retype(root, caps::CapType::kRam, 1 << 20, 32);
    EXPECT_EQ(split.err, caps::CapErr::kOk);
    regions = split.children;
  }
  caps::CapId MakeFrame(std::uint64_t bytes) {
    EXPECT_LT(next_region, regions.size());
    auto r = caps.Retype(regions[next_region++], caps::CapType::kFrame, bytes, 1);
    EXPECT_EQ(r.err, caps::CapErr::kOk);
    return r.children.empty() ? caps::kNoCap : r.children[0];
  }
  std::vector<caps::CapId> regions;
  std::size_t next_region = 0;
  sim::Executor exec;
  hw::Machine machine;
  caps::CapDb caps;
  caps::CapId root;
};

TEST(VSpace, MapThenTranslate) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0, 1});
  caps::CapId frame = f.MakeFrame(2 * hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x400000, Perms{true}), MapErr::kOk);
  EXPECT_TRUE(vs.IsMapped(0x400000));
  EXPECT_TRUE(vs.IsMapped(0x401000));
  EXPECT_FALSE(vs.IsMapped(0x402000));
  std::uint64_t pa = 0;
  f.exec.Spawn([](VSpace& v, std::uint64_t& out) -> Task<> {
    out = co_await v.Translate(0, 0x401123);
  }(vs, pa));
  f.exec.Run();
  const caps::Capability* cap = f.caps.Get(frame);
  EXPECT_EQ(pa, cap->base + hw::kPageSize + 0x123);
  // The TLB now caches it.
  EXPECT_TRUE(f.machine.tlb(0).Contains(0x401000));
  EXPECT_EQ(f.machine.counters().core(0).tlb_misses, 1u);
}

// Regression for a hot-path flaw: the TLB-hit branch of Translate used to
// co_await Delay(1), pushing one event through the executor per hit. Hits
// must complete synchronously — zero scheduled events, zero simulated time.
TEST(VSpace, TlbHitTranslationAddsNoEvents) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  caps::CapId frame = f.MakeFrame(hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x400000, Perms{true}), MapErr::kOk);
  // First translation misses: it walks the tables (charged, event-driven)
  // and fills the TLB.
  f.exec.Spawn([](VSpace& v) -> Task<> {
    (void)co_await v.Translate(0, 0x400123);
  }(vs));
  f.exec.Run();
  ASSERT_TRUE(f.machine.tlb(0).Contains(0x400000));
  ASSERT_GT(f.exec.events_dispatched(), 0u);
  const std::uint64_t events_after_miss = f.exec.events_dispatched();
  const sim::Cycles now_after_miss = f.exec.now();
  // A hundred hits: no new events, no simulated time, same translation.
  std::uint64_t sum = 0;
  f.exec.Spawn([](VSpace& v, std::uint64_t& s) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      s += co_await v.Translate(0, 0x400123);
    }
  }(vs, sum));
  f.exec.Run();
  const caps::Capability* cap = f.caps.Get(frame);
  EXPECT_EQ(sum, 100u * (cap->base + 0x123));
  EXPECT_EQ(f.exec.events_dispatched(), events_after_miss);
  EXPECT_EQ(f.exec.now(), now_after_miss);
  EXPECT_EQ(f.machine.counters().core(0).tlb_misses, 1u);
}

TEST(VSpace, MapRejectsNonFrameAndOverlap) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  EXPECT_EQ(vs.Map(f.root, 0x400000, Perms{}), MapErr::kBadCap);  // RAM, not frame
  caps::CapId frame = f.MakeFrame(hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x400000, Perms{}), MapErr::kOk);
  EXPECT_EQ(vs.Map(frame, 0x400000, Perms{}), MapErr::kOverlap);
  EXPECT_EQ(vs.Map(frame, 0x400007, Perms{}), MapErr::kBadAlign);
}

TEST(VSpace, MapRespectsFrameRights) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  caps::CapId frame = f.MakeFrame(hw::kPageSize);
  auto ro = f.caps.Copy(frame, caps::Rights{true, false, false});
  ASSERT_EQ(ro.err, caps::CapErr::kOk);
  EXPECT_EQ(vs.Map(ro.id, 0x500000, Perms{true}), MapErr::kNoRights);
  EXPECT_EQ(vs.Map(ro.id, 0x500000, Perms{false}), MapErr::kOk);
}

TEST(VSpace, UnmapRemovesMappingAndTlbEntries) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0, 1, 2});
  caps::CapId frame = f.MakeFrame(hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x400000, Perms{}), MapErr::kOk);
  f.exec.Spawn([](VSpace& v) -> Task<> {
    // Warm two TLBs.
    (void)co_await v.Translate(1, 0x400000);
    (void)co_await v.Translate(2, 0x400000);
    MapErr err = co_await v.Unmap(0, 0x400000, hw::kPageSize);
    EXPECT_EQ(err, MapErr::kOk);
  }(vs));
  f.exec.Run();
  EXPECT_FALSE(vs.IsMapped(0x400000));
  // The TLB consistency invariant: no stale entry on any sharing core.
  EXPECT_FALSE(f.machine.tlb(1).Contains(0x400000));
  EXPECT_FALSE(f.machine.tlb(2).Contains(0x400000));
}

TEST(VSpace, ProtectDowngradesWritability) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  caps::CapId frame = f.MakeFrame(2 * hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x600000, Perms{true}), MapErr::kOk);
  EXPECT_TRUE(vs.IsWritable(0x600000));
  f.exec.Spawn([](VSpace& v) -> Task<> {
    MapErr err = co_await v.Protect(0, 0x600000, 2 * hw::kPageSize);
    EXPECT_EQ(err, MapErr::kOk);
  }(vs));
  f.exec.Run();
  EXPECT_TRUE(vs.IsMapped(0x600000));
  EXPECT_FALSE(vs.IsWritable(0x600000));
  EXPECT_FALSE(vs.IsWritable(0x601000));
}

TEST(VSpace, UnmapOfUnmappedFails) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  f.exec.Spawn([](VSpace& v) -> Task<> {
    EXPECT_EQ(co_await v.Unmap(0, 0x400000, hw::kPageSize), MapErr::kNotMapped);
    EXPECT_EQ(co_await v.Unmap(0, 0x400001, hw::kPageSize), MapErr::kBadAlign);
  }(vs));
  f.exec.Run();
}

TEST(VSpace, ShootdownHookDrivesInvalidation) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0, 1});
  caps::CapId frame = f.MakeFrame(hw::kPageSize);
  ASSERT_EQ(vs.Map(frame, 0x400000, Perms{}), MapErr::kOk);
  int hook_calls = 0;
  std::vector<std::uint64_t> hook_pages;
  vs.SetShootdownHook(
      [&f, &hook_calls, &hook_pages](int initiator, std::vector<std::uint64_t> pages) -> Task<> {
        ++hook_calls;
        hook_pages = pages;
        for (int core : {0, 1}) {
          for (std::uint64_t p : pages) {
            f.machine.tlb(core).InvalidateNoCost(p);
          }
        }
        (void)initiator;
        co_return;
      });
  f.exec.Spawn([](VSpace& v) -> Task<> {
    (void)co_await v.Translate(1, 0x400000);
    EXPECT_EQ(co_await v.Unmap(0, 0x400000, hw::kPageSize), MapErr::kOk);
  }(vs));
  f.exec.Run();
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(hook_pages, std::vector<std::uint64_t>{0x400000});
  EXPECT_FALSE(f.machine.tlb(1).Contains(0x400000));
}

TEST(VSpace, TableNodesGrowWithSparseMappings) {
  VsFixture f;
  VSpace vs(f.machine, f.caps, {0});
  std::size_t before = vs.table_nodes();
  caps::CapId f1 = f.MakeFrame(hw::kPageSize);
  caps::CapId f2 = f.MakeFrame(hw::kPageSize);
  ASSERT_EQ(vs.Map(f1, 0x0000400000, Perms{}), MapErr::kOk);
  // A distant address needs a fresh subtree.
  ASSERT_EQ(vs.Map(f2, 0x7f8000000000, Perms{}), MapErr::kOk);
  EXPECT_GE(vs.table_nodes(), before + 6);
}

}  // namespace
}  // namespace mk::mm
