// mk::trace tests: ring wraparound semantics, runtime category masking,
// cross-core flow pairing under the channel fuzz workload, Perfetto JSON
// well-formedness, and aggregator totals cross-checked against PerfCounters.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "urpc/channel.h"

namespace mk::trace {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

Record MakeRecord(Cycles cycle, int core, EventId event = EventId::kExecCycle,
                  Category cat = Category::kExec) {
  Record r;
  r.cycle = cycle;
  r.core = static_cast<std::uint16_t>(core);
  r.category = cat;
  r.event = event;
  return r;
}

TEST(TracerRing, WraparoundKeepsNewestAndCountsDrops) {
  Tracer t(/*capacity_per_core=*/8);
  for (Cycles c = 0; c < 20; ++c) {
    t.Append(MakeRecord(c, /*core=*/0));
  }
  EXPECT_EQ(t.dropped(0), 12u);
  EXPECT_EQ(t.total_dropped(), 12u);
  EXPECT_EQ(t.total_records(), 20u);  // exact totals unaffected by wraparound
  std::vector<Record> snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // The newest 8 records (cycles 12..19), oldest-first.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].cycle, 12 + i);
  }
}

TEST(TracerRing, PerCoreRingsAreIndependent) {
  Tracer t(/*capacity_per_core=*/4);
  for (Cycles c = 0; c < 10; ++c) {
    t.Append(MakeRecord(c, /*core=*/1));
  }
  t.Append(MakeRecord(100, /*core=*/3));
  EXPECT_EQ(t.dropped(1), 6u);
  EXPECT_EQ(t.dropped(3), 0u);
  EXPECT_EQ(t.dropped(2), 0u);  // untouched core: no ring, no drops
  EXPECT_EQ((std::vector<std::uint16_t>{1, 3}), t.active_tracks());
}

TEST(TracerMask, RuntimeMaskFiltersCategories) {
  if ((kCompiledCategories & (CategoryBit(Category::kIpi) | CategoryBit(Category::kExec))) !=
      (CategoryBit(Category::kIpi) | CategoryBit(Category::kExec))) {
    GTEST_SKIP() << "needs ipi+exec trace points compiled in";
  }
  {
    Tracer t(64, CategoryBit(Category::kIpi));  // everything but IPI masked off
    t.Install();
    ASSERT_EQ(Tracer::active(), &t);
    Emit<Category::kExec>(EventId::kExecCycle, 1, 0);
    Emit<Category::kIpi>(EventId::kIpiSend, 2, 0);
    EXPECT_EQ(t.total_records(), 1u);
    EXPECT_EQ(t.event_count(EventId::kIpiSend), 1u);
    EXPECT_EQ(t.event_count(EventId::kExecCycle), 0u);
    EXPECT_TRUE(Enabled<Category::kIpi>());
    EXPECT_FALSE(Enabled<Category::kExec>());
  }
  // Destruction uninstalls; emits become no-ops rather than crashes.
  EXPECT_EQ(Tracer::active(), nullptr);
  Emit<Category::kIpi>(EventId::kIpiSend, 3, 0);
}

TEST(TracerMask, ParseCategoryList) {
  std::uint32_t mask = 0;
  ASSERT_TRUE(ParseCategoryList("ipi,urpc,tlb", &mask));
  EXPECT_EQ(mask, CategoryBit(Category::kIpi) | CategoryBit(Category::kUrpc) |
                      CategoryBit(Category::kTlb));
  ASSERT_TRUE(ParseCategoryList("all", &mask));
  EXPECT_EQ(mask, kAllCategories);
  EXPECT_FALSE(ParseCategoryList("ipi,bogus", &mask));
}

// --- Flow pairing under the channel fuzz workload ---

Task<> FuzzSender(hw::Machine& m, urpc::Channel& ch, int count, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.5)) {
      co_await ch.Send(urpc::Pack(0, i));
    } else {
      co_await ch.SendPosted(urpc::Pack(0, i));
    }
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(2000));
    }
  }
}

Task<> FuzzReceiver(hw::Machine& m, urpc::Channel& ch, int count, std::uint64_t seed) {
  sim::Rng rng(seed + 17);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.25)) {
      urpc::Message msg;
      if (co_await ch.TryRecv(&msg)) {
        continue;
      }
    }
    (void)co_await ch.Recv();
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(3000));
    }
  }
}

TEST(TraceFlows, UrpcFlowsPairOneSendWithOneReceive) {
  if ((kCompiledCategories & CategoryBit(Category::kUrpc)) == 0) {
    GTEST_SKIP() << "needs urpc trace points compiled in";
  }
  Tracer t(/*capacity_per_core=*/1 << 16);
  t.Install();
  constexpr int kMessages = 150;
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  urpc::ChannelOptions opts;
  opts.slots = 8;
  urpc::Channel ch(m, /*sender_core=*/0, /*receiver_core=*/12, opts);
  exec.Spawn(FuzzSender(m, ch, kMessages, 13));
  exec.Spawn(FuzzReceiver(m, ch, kMessages, 13));
  exec.Run();
  t.Uninstall();

  std::map<std::uint64_t, int> sends;
  std::map<std::uint64_t, int> recvs;
  for (const Record& r : t.Snapshot()) {
    if (r.event == EventId::kUrpcSend) {
      EXPECT_EQ(r.core, 0);
      EXPECT_EQ(r.phase, Phase::kSpanFlowOut);
      ++sends[r.flow];
    } else if (r.event == EventId::kUrpcRecv) {
      EXPECT_EQ(r.core, 12);
      EXPECT_EQ(r.phase, Phase::kSpanFlowIn);
      ++recvs[r.flow];
    }
  }
  EXPECT_EQ(sends.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(recvs.size(), static_cast<std::size_t>(kMessages));
  // Exactly one send and one receive per flow id, and the send never comes
  // after its receive completes... pairing is by id:
  for (const auto& [flow, n] : sends) {
    EXPECT_EQ(n, 1) << "flow " << flow;
    EXPECT_EQ(recvs.count(flow), 1u) << "flow " << flow;
  }
  for (const auto& [flow, n] : recvs) {
    EXPECT_EQ(n, 1) << "flow " << flow;
  }
}

TEST(TraceFlows, IpiFlowsPairAcrossCoresAndMatchPerfCounters) {
  if ((kCompiledCategories & CategoryBit(Category::kIpi)) == 0) {
    GTEST_SKIP() << "needs ipi trace points compiled in";
  }
  Tracer t(/*capacity_per_core=*/1 << 16);
  t.Install();
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  urpc::Channel ch(m, 0, 4);
  constexpr int kMessages = 40;
  exec.Spawn([](hw::Machine& mm, urpc::Channel& c, int n) -> Task<> {
    sim::Rng rng(77);
    for (int i = 0; i < n; ++i) {
      co_await mm.exec().Delay(rng.Below(12000));  // straddles the poll window
      co_await c.Send(urpc::Pack(0, i));
    }
  }(m, ch, kMessages));
  exec.Spawn([](urpc::Channel& c, CpuDriver& local, CpuDriver& snd, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      (void)co_await c.RecvBlocking(local, snd, 3000);
    }
  }(ch, *drivers[4], *drivers[0], kMessages));
  exec.Run();
  t.Uninstall();

  const hw::CoreCounters total = m.counters().Total();
  ASSERT_GT(total.ipis_sent, 0u);
  // Aggregator totals are exact and match the hardware counters.
  EXPECT_EQ(t.event_count(EventId::kIpiSend), total.ipis_sent);
  EXPECT_EQ(t.event_count(EventId::kIpiRecv), total.ipis_received);
  // Each IPI flow has exactly one send (core 0) and one receive (core 4).
  std::map<std::uint64_t, std::pair<int, int>> flows;  // flow -> (sends, recvs)
  for (const Record& r : t.Snapshot()) {
    if (r.event == EventId::kIpiSend) {
      EXPECT_EQ(r.core, 0);
      ++flows[r.flow].first;
    } else if (r.event == EventId::kIpiRecv) {
      EXPECT_EQ(r.core, 4);
      ++flows[r.flow].second;
    }
  }
  EXPECT_EQ(flows.size(), total.ipis_sent);
  for (const auto& [flow, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << flow;
    EXPECT_EQ(counts.second, 1) << "flow " << flow;
    EXPECT_EQ(flow >> 56, 1u) << "IPI flow namespace";
  }
}

TEST(TraceAggregates, TlbEventCountsMatchPerfCounters) {
  Tracer t(/*capacity_per_core=*/1 << 12);
  t.Install();
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  exec.Spawn([](hw::Machine& mm) -> Task<> {
    mm.tlb(2).Insert(0x1000, {});
    mm.tlb(2).Insert(0x2000, {});
    co_await mm.tlb(2).Invalidate(0x1000);
    mm.tlb(2).InvalidateNoCost(0x2000);
    co_await mm.tlb(3).FlushAll();
    mm.tlb(3).FlushAllNoCost();
  }(m));
  exec.Run();
  t.Uninstall();
  const hw::CoreCounters total = m.counters().Total();
  if ((kCompiledCategories & CategoryBit(Category::kTlb)) == 0) {
    EXPECT_EQ(total.tlb_invalidations, 4u);  // counters advance regardless
    return;
  }
  EXPECT_EQ(t.event_count(EventId::kTlbInvalidate) + t.event_count(EventId::kTlbFlush),
            total.tlb_invalidations);
  EXPECT_EQ(t.event_count(EventId::kTlbInvalidate), 2u);
  EXPECT_EQ(t.event_count(EventId::kTlbFlush), 2u);
}

// --- Exporter ---

// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
// literals). Returns false on any syntax error.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, PerfettoJsonIsValidAndCarriesExpectedKeys) {
  // The record-content assertions need the urpc/ipi/kernel trace points in
  // the binary; under MK_TRACE_ENABLED=0 (the CI matrix leg) the exporter
  // still must produce valid, empty JSON.
  const bool compiled_in =
      (kCompiledCategories &
       (CategoryBit(Category::kUrpc) | CategoryBit(Category::kIpi))) ==
      (CategoryBit(Category::kUrpc) | CategoryBit(Category::kIpi));
  Tracer t(/*capacity_per_core=*/1 << 14);
  t.Install();
  t.BeginRun("export-test");
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  urpc::Channel ch(m, 0, 4);
  exec.Spawn([](hw::Machine& mm, urpc::Channel& c) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await mm.exec().Delay(9000);
      co_await c.Send(urpc::Pack(0, i));
    }
  }(m, ch));
  exec.Spawn([](urpc::Channel& c, CpuDriver& local, CpuDriver& snd) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.RecvBlocking(local, snd, 1000);
    }
  }(ch, *drivers[4], *drivers[0]));
  exec.Run();
  t.Uninstall();

  std::ostringstream out;
  WritePerfettoJson(t, out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // Top-level Perfetto keys.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  if (!compiled_in) {
    return;
  }
  // Track metadata, spans, instants, and both flow endpoints.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export-test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"urpc\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ipi\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"urpc_send\""), std::string::npos);
}

TEST(TraceExport, SummaryTotalsAreConsistent) {
  Tracer t(/*capacity_per_core=*/4);  // tiny ring: force drops
  t.Install();
  sim::Executor exec;
  int sink = 0;
  for (int i = 0; i < 100; ++i) {
    exec.CallAt(static_cast<Cycles>(i), [&sink] { ++sink; });
  }
  exec.Run();
  t.Uninstall();
  Summary s = Summarize(t);
  EXPECT_EQ(s.total, t.total_records());
  EXPECT_EQ(s.retained + s.dropped, s.total);
  if ((kCompiledCategories & CategoryBit(Category::kExec)) != 0) {
    EXPECT_GT(s.dropped, 0u);  // the tiny ring must have wrapped
  }
  EXPECT_EQ(s.events[static_cast<std::size_t>(EventId::kExecCycle)],
            s.categories[static_cast<std::size_t>(Category::kExec)].count);
  std::ostringstream text;
  PrintSummary(t, text);
  if ((kCompiledCategories & CategoryBit(Category::kExec)) != 0) {
    EXPECT_NE(text.str().find("exec"), std::string::npos);
  }
}

}  // namespace
}  // namespace mk::trace
