// Tests for the network substrate: wire formats/checksums, the simulated
// NIC, packet channels, the stack (UDP + TCP), and the kernel loopback
// baseline.
#include <gtest/gtest.h>

#include <string>

#include "baseline/shared_netstack.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "sim/random.h"

namespace mk::net {
namespace {

using sim::Cycles;
using sim::Task;

const MacAddr kMacA{0x02, 0, 0, 0, 0, 0xaa};
const MacAddr kMacB{0x02, 0, 0, 0, 0, 0xbb};
constexpr Ipv4Addr kIpA = MakeIp(10, 0, 0, 1);
constexpr Ipv4Addr kIpB = MakeIp(10, 0, 0, 2);

TEST(Wire, InternetChecksumKnownVector) {
  // RFC 1071 example: the checksum of this data is 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Wire, UdpFrameRoundTrip) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  UdpHeader udp;
  udp.src_port = 1234;
  udp.dst_port = 7;
  std::string payload = "hello multikernel";
  Packet frame = BuildUdpFrame(eth, ip, udp,
                               reinterpret_cast<const std::uint8_t*>(payload.data()),
                               payload.size());
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->ip.src, kIpA);
  EXPECT_EQ(parsed->ip.dst, kIpB);
  EXPECT_EQ(parsed->udp->src_port, 1234);
  EXPECT_EQ(parsed->udp->dst_port, 7);
  std::string got(frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset),
                  frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset +
                                                              parsed->payload_len));
  EXPECT_EQ(got, payload);
}

TEST(Wire, CorruptionIsDetected) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  std::uint8_t payload[64] = {1, 2, 3};
  Packet frame = BuildUdpFrame(eth, ip, UdpHeader{9, 9, 0}, payload, sizeof(payload));
  // Flip a payload byte: the UDP checksum must catch it.
  Packet bad = frame;
  bad[bad.size() - 1] ^= 0xff;
  EXPECT_FALSE(ParseFrame(bad).has_value());
  // Flip an IP header byte: the IP checksum must catch it.
  Packet bad_ip = frame;
  bad_ip[kEthHeaderBytes + 8] ^= 0x01;  // TTL
  EXPECT_FALSE(ParseFrame(bad_ip).has_value());
  // Truncation must be rejected, not crash.
  Packet trunc(frame.begin(), frame.begin() + 20);
  EXPECT_FALSE(ParseFrame(trunc).has_value());
}

TEST(Wire, TcpFrameRoundTrip) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  TcpHeader tcp;
  tcp.src_port = 80;
  tcp.dst_port = 49152;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags.syn = true;
  tcp.flags.ack = true;
  Packet frame = BuildTcpFrame(eth, ip, tcp, nullptr, 0);
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, 1000u);
  EXPECT_EQ(parsed->tcp->ack, 2000u);
  EXPECT_TRUE(parsed->tcp->flags.syn);
  EXPECT_TRUE(parsed->tcp->flags.ack);
  EXPECT_FALSE(parsed->tcp->flags.fin);
  EXPECT_EQ(parsed->payload_len, 0u);
}

struct NicFixture {
  NicFixture() : machine(exec, hw::Intel2x4()) {}
  sim::Executor exec;
  hw::Machine machine;
};

Packet TestFrame(std::size_t payload) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  std::vector<std::uint8_t> data(payload, 0x5a);
  return BuildUdpFrame(eth, ip, UdpHeader{1, 2, 0}, data.data(), data.size());
}

TEST(Nic, RxPathDeliversFrames) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  f.exec.Spawn([](SimNic& n) -> Task<> { co_await n.InjectFromWire(TestFrame(100)); }(nic));
  f.exec.Run();
  EXPECT_TRUE(nic.RxReady());
  bool got = false;
  f.exec.Spawn([](SimNic& n, bool& out) -> Task<> {
    auto frame = co_await n.DriverRxPop(2);
    out = frame.has_value() && frame->size() > 100;
  }(nic, got));
  f.exec.Run();
  EXPECT_TRUE(got);
  EXPECT_FALSE(nic.RxReady());
}

TEST(Nic, LineRatePacesInjection) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  const int kFrames = 10;
  f.exec.Spawn([](SimNic& n, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await n.InjectFromWire(TestFrame(1000));
    }
  }(nic, kFrames));
  Cycles end = f.exec.Run();
  // 10 x ~1066-byte frames at 1 Gb/s on a 2.66 GHz clock: >= 21 cycles/byte
  // would be wrong; expect ~ (bytes+24) * 21.28 cycles each.
  Cycles per_frame = end / kFrames;
  Cycles expected = static_cast<Cycles>((1000 + 42 + 24) * 8 * 2.66);
  EXPECT_NEAR(static_cast<double>(per_frame), static_cast<double>(expected),
              static_cast<double>(expected) * 0.2);
}

TEST(Nic, RxOverflowDropsFrames) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.rx_descs = 4;
  SimNic nic(f.machine, cfg);
  f.exec.Spawn([](SimNic& n) -> Task<> {
    for (int i = 0; i < 8; ++i) {
      co_await n.InjectFromWire(TestFrame(64));
    }
  }(nic));
  f.exec.Run();
  EXPECT_EQ(nic.frames_dropped(), 4u);
}

TEST(Nic, TxPathReachesWire) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  f.exec.Spawn([](SimNic& n) -> Task<> {
    bool ok = co_await n.DriverTxPush(2, TestFrame(200));
    EXPECT_TRUE(ok);
  }(nic));
  f.exec.Run();
  Packet out;
  EXPECT_TRUE(nic.WirePop(&out));
  EXPECT_EQ(nic.frames_sent(), 1u);
  EXPECT_TRUE(ParseFrame(out).has_value());
}

TEST(PacketChannel, TransfersPacketsAcrossCores) {
  NicFixture f;
  PacketChannel ch(f.machine, 0, 4, PacketChannel::Options{});
  std::size_t got_len = 0;
  f.exec.Spawn([](PacketChannel& c) -> Task<> { co_await c.Send(TestFrame(500)); }(ch));
  f.exec.Spawn([](PacketChannel& c, std::size_t& out) -> Task<> {
    Packet p = co_await c.Recv();
    out = p.size();
  }(ch, got_len));
  f.exec.Run();
  EXPECT_EQ(got_len, TestFrame(500).size());
}

struct StackPair {
  StackPair()
      : machine(exec, hw::Amd2x2()),
        a(machine, 0, kIpA, kMacA),
        b(machine, 2, kIpB, kMacB) {
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    // Wire the stacks back-to-back (zero-cost link: stack costs dominate).
    a.SetOutput([this](Packet p) -> Task<> { co_await b.Input(std::move(p)); });
    b.SetOutput([this](Packet p) -> Task<> { co_await a.Input(std::move(p)); });
  }
  sim::Executor exec;
  hw::Machine machine;
  NetStack a;
  NetStack b;
};

TEST(Stack, UdpEndToEnd) {
  StackPair f;
  auto& sock = f.b.UdpBind(7);
  std::string got;
  f.exec.Spawn([](NetStack& a) -> Task<> {
    std::vector<std::uint8_t> payload = {'p', 'i', 'n', 'g'};
    co_await a.UdpSendTo(555, kIpB, 7, std::move(payload));
  }(f.a));
  f.exec.Spawn([](NetStack::UdpSocket& s, std::string& out) -> Task<> {
    auto d = co_await s.Recv();
    out.assign(d.payload.begin(), d.payload.end());
    EXPECT_EQ(d.src_port, 555);
    EXPECT_EQ(d.src_ip, kIpA);
  }(sock, got));
  f.exec.Run();
  EXPECT_EQ(got, "ping");
}

TEST(Stack, UdpToUnboundPortIsDropped) {
  StackPair f;
  f.exec.Spawn([](NetStack& a) -> Task<> {
    std::vector<std::uint8_t> payload = {1};
    co_await a.UdpSendTo(5, kIpB, 99, std::move(payload));
  }(f.a));
  f.exec.Run();
  EXPECT_EQ(f.b.drops(), 1u);
}

Packet ValidUdpFrame(Ipv4Addr dst_ip, std::uint16_t dst_port, std::size_t bytes) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = dst_ip;
  UdpHeader udp;
  udp.src_port = 555;
  udp.dst_port = dst_port;
  std::vector<std::uint8_t> payload(bytes, 0x5a);
  return BuildUdpFrame(eth, ip, udp, payload.data(), payload.size());
}

TEST(Stack, DropCountersAttributeEachCause) {
  // The single drops_ counter used to conflate four different fates; each
  // cause now has its own counter (fault-injection stats need attribution).
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  NetStack s(m, 0, kIpB, kMacB);
  s.UdpBind(7);
  Packet corrupt = ValidUdpFrame(kIpB, 7, 64);
  corrupt.back() ^= 0xff;  // payload bit flip: UDP checksum mismatch
  Packet truncated(10, 0);
  Packet foreign_ethertype = ValidUdpFrame(kIpB, 7, 64);
  foreign_ethertype[12] = 0x08;  // ethertype ARP: well-formed, not IPv4
  foreign_ethertype[13] = 0x06;
  exec.Spawn([](NetStack& st, Packet c, Packet t, Packet e) -> Task<> {
    co_await st.Input(ValidUdpFrame(kIpB, 7, 64));                  // delivered
    co_await st.Input(std::move(c));                                // bad checksum
    co_await st.Input(std::move(t));                                // truncated
    co_await st.Input(ValidUdpFrame(MakeIp(10, 9, 9, 9), 7, 64));   // not our IP
    co_await st.Input(ValidUdpFrame(kIpB, 99, 64));                 // unbound port
    co_await st.Input(std::move(e));                                // unknown proto
  }(s, std::move(corrupt), std::move(truncated), std::move(foreign_ethertype)));
  exec.Run();
  EXPECT_EQ(s.frames_in(), 6u);
  EXPECT_EQ(s.drops_bad_frame(), 2u);  // checksum + truncated
  EXPECT_EQ(s.drops_not_for_us(), 1u);
  EXPECT_EQ(s.drops_no_listener(), 1u);
  EXPECT_EQ(s.drops_unknown_proto(), 1u);
  EXPECT_EQ(s.drops(), 5u);  // the sum, for callers that don't care why
}

TEST(Stack, ChecksumCostIsChargedOnPayloadBytesSummedUniformly) {
  // The parse-failure path used to charge the checksum cost on frame.size()
  // while the success path charged payload_len. The basis is now uniform:
  // the L4 payload bytes the parser actually summed.
  auto cost_of = [](Packet frame) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    NetStack s(m, 0, kIpB, kMacB);
    s.UdpBind(7);
    exec.Spawn(
        [](NetStack& st, Packet f) -> Task<> { co_await st.Input(std::move(f)); }(
            s, std::move(frame)));
    return exec.Run();
  };
  Cycles delivered = cost_of(ValidUdpFrame(kIpB, 7, 256));
  Packet corrupt = ValidUdpFrame(kIpB, 7, 256);
  corrupt.back() ^= 0xff;
  // A corrupt payload was summed in full before the mismatch was detected:
  // same basis, same charge as the delivered frame.
  EXPECT_EQ(cost_of(std::move(corrupt)), delivered);
  // A frame rejected before any L4 checksum ran (truncated / non-IPv4) sums
  // nothing and pays only the fixed per-packet cost.
  Cycles truncated = cost_of(Packet(10, 0));
  EXPECT_LT(truncated, delivered);
  Packet arp = ValidUdpFrame(kIpB, 7, 256);
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_EQ(cost_of(std::move(arp)), truncated);
}

TEST(Stack, TcpConnectTransferClose) {
  StackPair f;
  auto& listener = f.b.TcpListen(80);
  std::string received_by_server;
  std::string received_by_client;
  // Server: accept, read request, reply, close.
  f.exec.Spawn([](NetStack& stack, NetStack::Listener& l, std::string& got) -> Task<> {
    NetStack::TcpConn* conn = co_await l.Accept();
    auto data = co_await conn->Read();
    got.assign(data.begin(), data.end());
    co_await stack.TcpSend(*conn, std::string("response-data"));
    co_await stack.TcpClose(*conn);
  }(f.b, listener, received_by_server));
  // Client: connect, send, read to close.
  f.exec.Spawn([](NetStack& stack, std::string& got) -> Task<> {
    NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    EXPECT_TRUE(conn->established);
    co_await stack.TcpSend(*conn, std::string("request-data"));
    while (!conn->peer_closed) {
      auto chunk = co_await conn->Read();
      got.append(chunk.begin(), chunk.end());
      if (chunk.empty()) {
        break;
      }
    }
  }(f.a, received_by_client));
  f.exec.Run();
  EXPECT_EQ(received_by_server, "request-data");
  EXPECT_EQ(received_by_client, "response-data");
}

TEST(Stack, TcpSegmentsLargePayloadsByMss) {
  StackPair f;
  auto& listener = f.b.TcpListen(80);
  std::size_t total = 0;
  f.exec.Spawn([](NetStack::Listener& l, std::size_t& out) -> Task<> {
    NetStack::TcpConn* conn = co_await l.Accept();
    while (out < 5000) {
      auto chunk = co_await conn->Read();
      if (chunk.empty()) {
        break;
      }
      out += chunk.size();
    }
  }(listener, total));
  f.exec.Spawn([](NetStack& stack) -> Task<> {
    NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    std::vector<std::uint8_t> big(5000, 0x42);
    co_await stack.TcpSend(*conn, big.data(), big.size());
  }(f.a));
  f.exec.Run();
  EXPECT_EQ(total, 5000u);
  // 5000 bytes over a 1460-byte MSS: at least 4 data segments + handshake.
  EXPECT_GE(f.a.frames_out(), 5u);
}

// --- Multi-queue NIC: RSS steering, per-queue rings/IRQs/counters ---

Packet FlowFrame(std::uint16_t src_port, std::size_t bytes = 64) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  std::vector<std::uint8_t> payload(bytes, 0x77);
  return BuildUdpFrame(eth, ip, UdpHeader{src_port, 7, 0}, payload.data(),
                       payload.size());
}

TEST(Rss, ExtractFlowTupleMatchesParseFrame) {
  Packet frame = FlowFrame(5000, 128);
  auto parsed = ParseFrame(frame);
  auto tuple = ExtractFlowTuple(frame);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->src_ip, parsed->ip.src);
  EXPECT_EQ(tuple->dst_ip, parsed->ip.dst);
  EXPECT_EQ(tuple->proto, kIpProtoUdp);
  EXPECT_EQ(tuple->src_port, parsed->udp->src_port);
  EXPECT_EQ(tuple->dst_port, parsed->udp->dst_port);
  // Runt and non-IP frames yield no tuple (and steer to queue 0), not a crash.
  EXPECT_FALSE(ExtractFlowTuple(Packet(5, 0)).has_value());
  Packet arp = FlowFrame(5000);
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_FALSE(ExtractFlowTuple(arp).has_value());
}

TEST(Rss, SteeringIsSeededAndDeterministic) {
  // Same seed -> identical queue assignment (across runs and NIC instances);
  // a different seed permutes at least some flows.
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  SimNic nic_a(f.machine, cfg);
  SimNic nic_b(f.machine, cfg);
  SimNic::Config other = cfg;
  other.rss_seed = cfg.rss_seed + 1;
  SimNic nic_c(f.machine, other);
  int moved = 0;
  for (std::uint16_t p = 4000; p < 4100; ++p) {
    Packet frame = FlowFrame(p);
    int qa = nic_a.RssQueueFor(frame);
    EXPECT_EQ(qa, nic_b.RssQueueFor(frame));
    EXPECT_GE(qa, 0);
    EXPECT_LT(qa, 4);
    if (nic_c.RssQueueFor(frame) != qa) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(Rss, UniformFlowsSpreadAcrossQueues) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  SimNic nic(f.machine, cfg);
  const int kFlows = 2000;
  std::array<int, 4> counts{};
  for (int i = 0; i < kFlows; ++i) {
    counts[static_cast<std::size_t>(
        nic.RssQueueFor(FlowFrame(static_cast<std::uint16_t>(10000 + i))))]++;
  }
  // Expected 500 per queue; a keyed hash should stay within +-30%.
  for (int c : counts) {
    EXPECT_GT(c, 350) << "queue starved";
    EXPECT_LT(c, 650) << "queue overloaded";
  }
}

TEST(Rss, CorruptPayloadStaysOnItsFlowQueue) {
  // Steering reads only the headers, pre-checksum: a frame whose payload was
  // mangled on the wire must land on the queue its flow owns, so the drop is
  // attributed to the right shard.
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  SimNic nic(f.machine, cfg);
  Packet frame = FlowFrame(6000, 256);
  Packet corrupt = frame;
  corrupt.back() ^= 0xff;
  EXPECT_EQ(nic.RssQueueFor(frame), nic.RssQueueFor(corrupt));
}

TEST(Nic, MultiQueueSteersFramesToPredictedRings) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  SimNic nic(f.machine, cfg);
  std::array<std::uint64_t, 4> expected{};
  f.exec.Spawn([](SimNic& n, std::array<std::uint64_t, 4>& exp) -> Task<> {
    for (std::uint16_t p = 7000; p < 7032; ++p) {
      Packet frame = FlowFrame(p);
      exp[static_cast<std::size_t>(n.RssQueueFor(frame))]++;
      co_await n.InjectFromWire(std::move(frame));
    }
  }(nic, expected));
  f.exec.Run();
  std::uint64_t total = 0;
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(nic.queue_stats(q).rx_frames, expected[static_cast<std::size_t>(q)]);
    EXPECT_EQ(nic.RxReady(q), expected[static_cast<std::size_t>(q)] > 0);
    total += nic.queue_stats(q).rx_frames;
  }
  EXPECT_EQ(total, 32u);
  // Drain one non-empty queue; the others are untouched.
  for (int q = 0; q < 4; ++q) {
    if (!nic.RxReady(q)) {
      continue;
    }
    std::uint64_t want = expected[static_cast<std::size_t>(q)];
    std::uint64_t got = 0;
    f.exec.Spawn([](SimNic& n, int queue, std::uint64_t& out) -> Task<> {
      while (n.RxReady(queue)) {
        auto frame = co_await n.DriverRxPop(2, queue);
        if (frame) {
          ++out;
        }
      }
    }(nic, q, got));
    f.exec.Run();
    EXPECT_EQ(got, want);
    break;
  }
}

TEST(Nic, OverflowDropsAreAttributedToTheFullQueue) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  cfg.rx_descs = 4;
  SimNic nic(f.machine, cfg);
  // One flow: every frame lands on the same queue, which overflows alone.
  Packet frame = FlowFrame(9001);
  const int hot = nic.RssQueueFor(frame);
  f.exec.Spawn([](SimNic& n, std::uint16_t port) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await n.InjectFromWire(FlowFrame(port));
    }
  }(nic, 9001));
  f.exec.Run();
  EXPECT_EQ(nic.queue_stats(hot).rx_frames, 4u);
  EXPECT_EQ(nic.queue_stats(hot).rx_overflow_drops, 6u);
  EXPECT_EQ(nic.frames_dropped(), 6u);
  for (int q = 0; q < 4; ++q) {
    if (q != hot) {
      EXPECT_EQ(nic.queue_stats(q).rx_drops(), 0u) << "drop misattributed to q" << q;
    }
  }
}

TEST(Nic, PerQueueIrqRoutingAndMasking) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 2;
  cfg.irq_core = 1;
  cfg.irq_cores = {2, 5};
  SimNic nic(f.machine, cfg);
  EXPECT_EQ(nic.irq_core(0), 2);
  EXPECT_EQ(nic.irq_core(1), 5);
  // Find a port for each queue.
  std::array<std::uint16_t, 2> port{};
  for (std::uint16_t p = 3000; p < 3100; ++p) {
    port[static_cast<std::size_t>(nic.RssQueueFor(FlowFrame(p)))] = p;
  }
  ASSERT_NE(port[0], 0);
  ASSERT_NE(port[1], 0);
  // Mask queue 1; its frame raises no IRQ while queue 0's does.
  nic.SetInterruptsEnabled(1, false);
  bool irq0 = false;
  bool irq1 = false;
  f.exec.Spawn([](SimNic& n, bool& out) -> Task<> {
    out = co_await n.rx_irq(0).WaitTimeout(1'000'000);
  }(nic, irq0));
  f.exec.Spawn([](SimNic& n, bool& out) -> Task<> {
    out = co_await n.rx_irq(1).WaitTimeout(1'000'000);
  }(nic, irq1));
  f.exec.Spawn([](SimNic& n, std::uint16_t p0, std::uint16_t p1) -> Task<> {
    co_await n.InjectFromWire(FlowFrame(p0));
    co_await n.InjectFromWire(FlowFrame(p1));
  }(nic, port[0], port[1]));
  f.exec.Run();
  EXPECT_TRUE(irq0);
  EXPECT_FALSE(irq1);
  EXPECT_TRUE(nic.RxReady(1));  // the frame is in the ring, silently
}

TEST(Nic, IrqLatencyDelaysDelivery) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.irq_latency = 500;
  SimNic nic(f.machine, cfg);
  Cycles injected_at = 0;
  Cycles raised_at = 0;
  f.exec.Spawn([](sim::Executor& exec, SimNic& n, Cycles& inj, Cycles& got)
                   -> Task<> {
    auto waiter = [](sim::Executor& e, SimNic& nic2, Cycles& out) -> Task<> {
      co_await nic2.rx_irq(0).Wait();
      out = e.now();
    };
    exec.Spawn(waiter(exec, n, got));
    co_await n.InjectFromWire(FlowFrame(1234));
    inj = exec.now();
  }(f.exec, nic, injected_at, raised_at));
  f.exec.Run();
  EXPECT_GT(injected_at, 0u);
  EXPECT_EQ(raised_at, injected_at + 500);
}

TEST(Nic, MultiQueueReplayIsBitIdentical) {
  // Same-seed multi-queue runs must be bit-identical, per-queue stats
  // included (the scale-out bench's determinism rests on this).
  auto run = [] {
    NicFixture f;
    SimNic::Config cfg;
    cfg.queues = 4;
    cfg.irq_latency = 300;
    SimNic nic(f.machine, cfg);
    f.exec.Spawn([](SimNic& n) -> Task<> {
      for (std::uint16_t p = 100; p < 164; ++p) {
        co_await n.InjectFromWire(FlowFrame(p, 32 + p % 800));
      }
    }(nic));
    f.exec.Spawn([](SimNic& n) -> Task<> {
      for (int i = 0; i < 16; ++i) {
        co_await n.DriverTxPush(2, FlowFrame(9000), i % 4);
      }
    }(nic));
    f.exec.Run();
    std::vector<std::uint64_t> sig{f.exec.events_dispatched(), f.exec.now(),
                                   nic.frames_sent(), nic.frames_dropped()};
    for (int q = 0; q < 4; ++q) {
      sig.push_back(nic.queue_stats(q).rx_frames);
      sig.push_back(nic.queue_stats(q).tx_frames);
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

// --- Malformed-frame fuzz: the parse path must reject, count, and not crash ---

TEST(StackFuzz, MalformedFramesNeverCrashAndEveryFrameIsAccountedFor) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  NetStack s(m, 0, kIpB, kMacB);
  auto& sock = s.UdpBind(7);
  sim::Rng rng(0xfeedface);
  const int kFrames = 400;
  std::uint64_t delivered = 0;
  exec.Spawn([](NetStack& st, NetStack::UdpSocket& so, sim::Rng& r, int n,
                std::uint64_t& ok) -> Task<> {
    for (int i = 0; i < n; ++i) {
      Packet frame = ValidUdpFrame(kIpB, 7, 32 + r.Below(512));
      switch (r.Below(6)) {
        case 0:  // pristine
          break;
        case 1:  // runt: truncate to a random prefix (possibly < eth header)
          frame.resize(r.Below(frame.size() + 1));
          break;
        case 2:  // giant: oversized tail the IP total_length does not cover
          frame.resize(frame.size() + 2000 + r.Below(2000), 0xee);
          break;
        case 3:  // single bit flip anywhere (header or payload)
          frame[r.Below(frame.size())] ^= static_cast<std::uint8_t>(
              1u << r.Below(8));
          break;
        case 4:  // mangled length fields
          frame[kEthHeaderBytes + 2] ^= 0xff;
          break;
        default:  // garbage of arbitrary size
          frame.assign(r.Below(80), static_cast<std::uint8_t>(r.Below(256)));
          break;
      }
      co_await st.Input(std::move(frame));
      NetStack::UdpDatagram d;
      while (so.TryRecv(&d)) {
        ++ok;
      }
    }
  }(s, sock, rng, kFrames, delivered));
  exec.Run();
  EXPECT_EQ(s.frames_in(), static_cast<std::uint64_t>(kFrames));
  // Every input frame was either delivered or attributed to a drop cause.
  EXPECT_EQ(delivered + s.drops(), static_cast<std::uint64_t>(kFrames));
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(s.drops_bad_frame(), 0u);
}

TEST(NicFuzz, MalformedFramesThroughTheNicAreSteeredSafely) {
  // The same mutation classes pushed through a 4-queue NIC: steering must be
  // bounds-safe on runts/giants and the ring invariants must hold.
  NicFixture f;
  SimNic::Config cfg;
  cfg.queues = 4;
  cfg.rx_descs = 64;
  SimNic nic(f.machine, cfg);
  sim::Rng rng(0xabad1dea);
  const int kFrames = 300;
  f.exec.Spawn([](SimNic& n, sim::Rng& r, int total) -> Task<> {
    for (int i = 0; i < total; ++i) {
      Packet frame = FlowFrame(static_cast<std::uint16_t>(r.Below(65536)),
                               16 + r.Below(256));
      switch (r.Below(4)) {
        case 0:
          break;
        case 1:
          frame.resize(r.Below(frame.size() + 1));
          break;
        case 2:
          frame.resize(frame.size() + r.Below(1500), 0x11);
          break;
        default:
          if (!frame.empty()) {
            frame[r.Below(frame.size())] ^= 0x40;
          }
          break;
      }
      int q = n.RssQueueFor(frame);
      EXPECT_GE(q, 0);
      EXPECT_LT(q, 4);
      co_await n.InjectFromWire(std::move(frame));
    }
  }(nic, rng, kFrames));
  f.exec.Run();
  std::uint64_t ringed = 0;
  for (int q = 0; q < 4; ++q) {
    ringed += nic.queue_stats(q).rx_frames;
    EXPECT_LE(nic.queue_stats(q).rx_frames, 64u);
  }
  EXPECT_EQ(ringed + nic.frames_dropped(), static_cast<std::uint64_t>(kFrames));
}

TEST(SharedKernelLoopback, DeliversPacketsInOrder) {
  NicFixture f;
  baseline::SharedKernelLoopback loop(f.machine);
  std::vector<std::size_t> sizes;
  f.exec.Spawn([](baseline::SharedKernelLoopback& l) -> Task<> {
    for (int i = 1; i <= 3; ++i) {
      co_await l.Send(0, Packet(static_cast<std::size_t>(i * 100), 0xab));
    }
  }(loop));
  f.exec.Spawn([](baseline::SharedKernelLoopback& l, std::vector<std::size_t>& out)
                   -> Task<> {
    for (int i = 0; i < 3; ++i) {
      Packet p = co_await l.Recv(2);
      out.push_back(p.size());
    }
  }(loop, sizes));
  f.exec.Run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{100, 200, 300}));
}

TEST(SharedKernelLoopback, CausesMoreCacheMissesThanPacketChannel) {
  // The Table 4 effect: the shared-queue kernel design ping-pongs lock, meta
  // and buffer lines; URPC only moves the channel and payload lines.
  const int kPackets = 50;
  auto misses = [&](bool kernel) {
    NicFixture f;
    std::uint64_t before = 0;
    if (kernel) {
      baseline::SharedKernelLoopback loop(f.machine);
      f.exec.Spawn([](baseline::SharedKernelLoopback& l, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          co_await l.Send(0, Packet(1000, 1));
        }
      }(loop, kPackets));
      f.exec.Spawn([](baseline::SharedKernelLoopback& l, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          (void)co_await l.Recv(4);
        }
      }(loop, kPackets));
      f.exec.Run();
    } else {
      PacketChannel ch(f.machine, 0, 4, PacketChannel::Options{});
      f.exec.Spawn([](PacketChannel& c, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          co_await c.Send(Packet(1000, 1));
        }
      }(ch, kPackets));
      f.exec.Spawn([](PacketChannel& c, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          (void)co_await c.Recv();
        }
      }(ch, kPackets));
      f.exec.Run();
    }
    (void)before;
    auto total = f.machine.counters().Total();
    return total.cache_misses;
  };
  EXPECT_GT(misses(true), misses(false));
}

}  // namespace
}  // namespace mk::net
