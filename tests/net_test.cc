// Tests for the network substrate: wire formats/checksums, the simulated
// NIC, packet channels, the stack (UDP + TCP), and the kernel loopback
// baseline.
#include <gtest/gtest.h>

#include <string>

#include "baseline/shared_netstack.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"

namespace mk::net {
namespace {

using sim::Cycles;
using sim::Task;

const MacAddr kMacA{0x02, 0, 0, 0, 0, 0xaa};
const MacAddr kMacB{0x02, 0, 0, 0, 0, 0xbb};
constexpr Ipv4Addr kIpA = MakeIp(10, 0, 0, 1);
constexpr Ipv4Addr kIpB = MakeIp(10, 0, 0, 2);

TEST(Wire, InternetChecksumKnownVector) {
  // RFC 1071 example: the checksum of this data is 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Wire, UdpFrameRoundTrip) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  UdpHeader udp;
  udp.src_port = 1234;
  udp.dst_port = 7;
  std::string payload = "hello multikernel";
  Packet frame = BuildUdpFrame(eth, ip, udp,
                               reinterpret_cast<const std::uint8_t*>(payload.data()),
                               payload.size());
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->ip.src, kIpA);
  EXPECT_EQ(parsed->ip.dst, kIpB);
  EXPECT_EQ(parsed->udp->src_port, 1234);
  EXPECT_EQ(parsed->udp->dst_port, 7);
  std::string got(frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset),
                  frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset +
                                                              parsed->payload_len));
  EXPECT_EQ(got, payload);
}

TEST(Wire, CorruptionIsDetected) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  std::uint8_t payload[64] = {1, 2, 3};
  Packet frame = BuildUdpFrame(eth, ip, UdpHeader{9, 9, 0}, payload, sizeof(payload));
  // Flip a payload byte: the UDP checksum must catch it.
  Packet bad = frame;
  bad[bad.size() - 1] ^= 0xff;
  EXPECT_FALSE(ParseFrame(bad).has_value());
  // Flip an IP header byte: the IP checksum must catch it.
  Packet bad_ip = frame;
  bad_ip[kEthHeaderBytes + 8] ^= 0x01;  // TTL
  EXPECT_FALSE(ParseFrame(bad_ip).has_value());
  // Truncation must be rejected, not crash.
  Packet trunc(frame.begin(), frame.begin() + 20);
  EXPECT_FALSE(ParseFrame(trunc).has_value());
}

TEST(Wire, TcpFrameRoundTrip) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  TcpHeader tcp;
  tcp.src_port = 80;
  tcp.dst_port = 49152;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags.syn = true;
  tcp.flags.ack = true;
  Packet frame = BuildTcpFrame(eth, ip, tcp, nullptr, 0);
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, 1000u);
  EXPECT_EQ(parsed->tcp->ack, 2000u);
  EXPECT_TRUE(parsed->tcp->flags.syn);
  EXPECT_TRUE(parsed->tcp->flags.ack);
  EXPECT_FALSE(parsed->tcp->flags.fin);
  EXPECT_EQ(parsed->payload_len, 0u);
}

struct NicFixture {
  NicFixture() : machine(exec, hw::Intel2x4()) {}
  sim::Executor exec;
  hw::Machine machine;
};

Packet TestFrame(std::size_t payload) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = kIpB;
  std::vector<std::uint8_t> data(payload, 0x5a);
  return BuildUdpFrame(eth, ip, UdpHeader{1, 2, 0}, data.data(), data.size());
}

TEST(Nic, RxPathDeliversFrames) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  f.exec.Spawn([](SimNic& n) -> Task<> { co_await n.InjectFromWire(TestFrame(100)); }(nic));
  f.exec.Run();
  EXPECT_TRUE(nic.RxReady());
  bool got = false;
  f.exec.Spawn([](SimNic& n, bool& out) -> Task<> {
    auto frame = co_await n.DriverRxPop(2);
    out = frame.has_value() && frame->size() > 100;
  }(nic, got));
  f.exec.Run();
  EXPECT_TRUE(got);
  EXPECT_FALSE(nic.RxReady());
}

TEST(Nic, LineRatePacesInjection) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  const int kFrames = 10;
  f.exec.Spawn([](SimNic& n, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await n.InjectFromWire(TestFrame(1000));
    }
  }(nic, kFrames));
  Cycles end = f.exec.Run();
  // 10 x ~1066-byte frames at 1 Gb/s on a 2.66 GHz clock: >= 21 cycles/byte
  // would be wrong; expect ~ (bytes+24) * 21.28 cycles each.
  Cycles per_frame = end / kFrames;
  Cycles expected = static_cast<Cycles>((1000 + 42 + 24) * 8 * 2.66);
  EXPECT_NEAR(static_cast<double>(per_frame), static_cast<double>(expected),
              static_cast<double>(expected) * 0.2);
}

TEST(Nic, RxOverflowDropsFrames) {
  NicFixture f;
  SimNic::Config cfg;
  cfg.rx_descs = 4;
  SimNic nic(f.machine, cfg);
  f.exec.Spawn([](SimNic& n) -> Task<> {
    for (int i = 0; i < 8; ++i) {
      co_await n.InjectFromWire(TestFrame(64));
    }
  }(nic));
  f.exec.Run();
  EXPECT_EQ(nic.frames_dropped(), 4u);
}

TEST(Nic, TxPathReachesWire) {
  NicFixture f;
  SimNic nic(f.machine, SimNic::Config{});
  f.exec.Spawn([](SimNic& n) -> Task<> {
    bool ok = co_await n.DriverTxPush(2, TestFrame(200));
    EXPECT_TRUE(ok);
  }(nic));
  f.exec.Run();
  Packet out;
  EXPECT_TRUE(nic.WirePop(&out));
  EXPECT_EQ(nic.frames_sent(), 1u);
  EXPECT_TRUE(ParseFrame(out).has_value());
}

TEST(PacketChannel, TransfersPacketsAcrossCores) {
  NicFixture f;
  PacketChannel ch(f.machine, 0, 4, PacketChannel::Options{});
  std::size_t got_len = 0;
  f.exec.Spawn([](PacketChannel& c) -> Task<> { co_await c.Send(TestFrame(500)); }(ch));
  f.exec.Spawn([](PacketChannel& c, std::size_t& out) -> Task<> {
    Packet p = co_await c.Recv();
    out = p.size();
  }(ch, got_len));
  f.exec.Run();
  EXPECT_EQ(got_len, TestFrame(500).size());
}

struct StackPair {
  StackPair()
      : machine(exec, hw::Amd2x2()),
        a(machine, 0, kIpA, kMacA),
        b(machine, 2, kIpB, kMacB) {
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    // Wire the stacks back-to-back (zero-cost link: stack costs dominate).
    a.SetOutput([this](Packet p) -> Task<> { co_await b.Input(std::move(p)); });
    b.SetOutput([this](Packet p) -> Task<> { co_await a.Input(std::move(p)); });
  }
  sim::Executor exec;
  hw::Machine machine;
  NetStack a;
  NetStack b;
};

TEST(Stack, UdpEndToEnd) {
  StackPair f;
  auto& sock = f.b.UdpBind(7);
  std::string got;
  f.exec.Spawn([](NetStack& a) -> Task<> {
    std::vector<std::uint8_t> payload = {'p', 'i', 'n', 'g'};
    co_await a.UdpSendTo(555, kIpB, 7, std::move(payload));
  }(f.a));
  f.exec.Spawn([](NetStack::UdpSocket& s, std::string& out) -> Task<> {
    auto d = co_await s.Recv();
    out.assign(d.payload.begin(), d.payload.end());
    EXPECT_EQ(d.src_port, 555);
    EXPECT_EQ(d.src_ip, kIpA);
  }(sock, got));
  f.exec.Run();
  EXPECT_EQ(got, "ping");
}

TEST(Stack, UdpToUnboundPortIsDropped) {
  StackPair f;
  f.exec.Spawn([](NetStack& a) -> Task<> {
    std::vector<std::uint8_t> payload = {1};
    co_await a.UdpSendTo(5, kIpB, 99, std::move(payload));
  }(f.a));
  f.exec.Run();
  EXPECT_EQ(f.b.drops(), 1u);
}

Packet ValidUdpFrame(Ipv4Addr dst_ip, std::uint16_t dst_port, std::size_t bytes) {
  EthHeader eth{kMacB, kMacA, kEtherTypeIpv4};
  IpHeader ip;
  ip.src = kIpA;
  ip.dst = dst_ip;
  UdpHeader udp;
  udp.src_port = 555;
  udp.dst_port = dst_port;
  std::vector<std::uint8_t> payload(bytes, 0x5a);
  return BuildUdpFrame(eth, ip, udp, payload.data(), payload.size());
}

TEST(Stack, DropCountersAttributeEachCause) {
  // The single drops_ counter used to conflate four different fates; each
  // cause now has its own counter (fault-injection stats need attribution).
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  NetStack s(m, 0, kIpB, kMacB);
  s.UdpBind(7);
  Packet corrupt = ValidUdpFrame(kIpB, 7, 64);
  corrupt.back() ^= 0xff;  // payload bit flip: UDP checksum mismatch
  Packet truncated(10, 0);
  Packet foreign_ethertype = ValidUdpFrame(kIpB, 7, 64);
  foreign_ethertype[12] = 0x08;  // ethertype ARP: well-formed, not IPv4
  foreign_ethertype[13] = 0x06;
  exec.Spawn([](NetStack& st, Packet c, Packet t, Packet e) -> Task<> {
    co_await st.Input(ValidUdpFrame(kIpB, 7, 64));                  // delivered
    co_await st.Input(std::move(c));                                // bad checksum
    co_await st.Input(std::move(t));                                // truncated
    co_await st.Input(ValidUdpFrame(MakeIp(10, 9, 9, 9), 7, 64));   // not our IP
    co_await st.Input(ValidUdpFrame(kIpB, 99, 64));                 // unbound port
    co_await st.Input(std::move(e));                                // unknown proto
  }(s, std::move(corrupt), std::move(truncated), std::move(foreign_ethertype)));
  exec.Run();
  EXPECT_EQ(s.frames_in(), 6u);
  EXPECT_EQ(s.drops_bad_frame(), 2u);  // checksum + truncated
  EXPECT_EQ(s.drops_not_for_us(), 1u);
  EXPECT_EQ(s.drops_no_listener(), 1u);
  EXPECT_EQ(s.drops_unknown_proto(), 1u);
  EXPECT_EQ(s.drops(), 5u);  // the sum, for callers that don't care why
}

TEST(Stack, ChecksumCostIsChargedOnPayloadBytesSummedUniformly) {
  // The parse-failure path used to charge the checksum cost on frame.size()
  // while the success path charged payload_len. The basis is now uniform:
  // the L4 payload bytes the parser actually summed.
  auto cost_of = [](Packet frame) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    NetStack s(m, 0, kIpB, kMacB);
    s.UdpBind(7);
    exec.Spawn(
        [](NetStack& st, Packet f) -> Task<> { co_await st.Input(std::move(f)); }(
            s, std::move(frame)));
    return exec.Run();
  };
  Cycles delivered = cost_of(ValidUdpFrame(kIpB, 7, 256));
  Packet corrupt = ValidUdpFrame(kIpB, 7, 256);
  corrupt.back() ^= 0xff;
  // A corrupt payload was summed in full before the mismatch was detected:
  // same basis, same charge as the delivered frame.
  EXPECT_EQ(cost_of(std::move(corrupt)), delivered);
  // A frame rejected before any L4 checksum ran (truncated / non-IPv4) sums
  // nothing and pays only the fixed per-packet cost.
  Cycles truncated = cost_of(Packet(10, 0));
  EXPECT_LT(truncated, delivered);
  Packet arp = ValidUdpFrame(kIpB, 7, 256);
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_EQ(cost_of(std::move(arp)), truncated);
}

TEST(Stack, TcpConnectTransferClose) {
  StackPair f;
  auto& listener = f.b.TcpListen(80);
  std::string received_by_server;
  std::string received_by_client;
  // Server: accept, read request, reply, close.
  f.exec.Spawn([](NetStack& stack, NetStack::Listener& l, std::string& got) -> Task<> {
    NetStack::TcpConn* conn = co_await l.Accept();
    auto data = co_await conn->Read();
    got.assign(data.begin(), data.end());
    co_await stack.TcpSend(*conn, std::string("response-data"));
    co_await stack.TcpClose(*conn);
  }(f.b, listener, received_by_server));
  // Client: connect, send, read to close.
  f.exec.Spawn([](NetStack& stack, std::string& got) -> Task<> {
    NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    EXPECT_TRUE(conn->established);
    co_await stack.TcpSend(*conn, std::string("request-data"));
    while (!conn->peer_closed) {
      auto chunk = co_await conn->Read();
      got.append(chunk.begin(), chunk.end());
      if (chunk.empty()) {
        break;
      }
    }
  }(f.a, received_by_client));
  f.exec.Run();
  EXPECT_EQ(received_by_server, "request-data");
  EXPECT_EQ(received_by_client, "response-data");
}

TEST(Stack, TcpSegmentsLargePayloadsByMss) {
  StackPair f;
  auto& listener = f.b.TcpListen(80);
  std::size_t total = 0;
  f.exec.Spawn([](NetStack::Listener& l, std::size_t& out) -> Task<> {
    NetStack::TcpConn* conn = co_await l.Accept();
    while (out < 5000) {
      auto chunk = co_await conn->Read();
      if (chunk.empty()) {
        break;
      }
      out += chunk.size();
    }
  }(listener, total));
  f.exec.Spawn([](NetStack& stack) -> Task<> {
    NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    std::vector<std::uint8_t> big(5000, 0x42);
    co_await stack.TcpSend(*conn, big.data(), big.size());
  }(f.a));
  f.exec.Run();
  EXPECT_EQ(total, 5000u);
  // 5000 bytes over a 1460-byte MSS: at least 4 data segments + handshake.
  EXPECT_GE(f.a.frames_out(), 5u);
}

TEST(SharedKernelLoopback, DeliversPacketsInOrder) {
  NicFixture f;
  baseline::SharedKernelLoopback loop(f.machine);
  std::vector<std::size_t> sizes;
  f.exec.Spawn([](baseline::SharedKernelLoopback& l) -> Task<> {
    for (int i = 1; i <= 3; ++i) {
      co_await l.Send(0, Packet(static_cast<std::size_t>(i * 100), 0xab));
    }
  }(loop));
  f.exec.Spawn([](baseline::SharedKernelLoopback& l, std::vector<std::size_t>& out)
                   -> Task<> {
    for (int i = 0; i < 3; ++i) {
      Packet p = co_await l.Recv(2);
      out.push_back(p.size());
    }
  }(loop, sizes));
  f.exec.Run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{100, 200, 300}));
}

TEST(SharedKernelLoopback, CausesMoreCacheMissesThanPacketChannel) {
  // The Table 4 effect: the shared-queue kernel design ping-pongs lock, meta
  // and buffer lines; URPC only moves the channel and payload lines.
  const int kPackets = 50;
  auto misses = [&](bool kernel) {
    NicFixture f;
    std::uint64_t before = 0;
    if (kernel) {
      baseline::SharedKernelLoopback loop(f.machine);
      f.exec.Spawn([](baseline::SharedKernelLoopback& l, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          co_await l.Send(0, Packet(1000, 1));
        }
      }(loop, kPackets));
      f.exec.Spawn([](baseline::SharedKernelLoopback& l, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          (void)co_await l.Recv(4);
        }
      }(loop, kPackets));
      f.exec.Run();
    } else {
      PacketChannel ch(f.machine, 0, 4, PacketChannel::Options{});
      f.exec.Spawn([](PacketChannel& c, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          co_await c.Send(Packet(1000, 1));
        }
      }(ch, kPackets));
      f.exec.Spawn([](PacketChannel& c, int n) -> Task<> {
        for (int i = 0; i < n; ++i) {
          (void)co_await c.Recv();
        }
      }(ch, kPackets));
      f.exec.Run();
    }
    (void)before;
    auto total = f.machine.counters().Total();
    return total.cache_misses;
  };
  EXPECT_GT(misses(true), misses(false));
}

}  // namespace
}  // namespace mk::net
