// fs::ReplicatedFs under fault injection — the S1 bugfix sweep's regression
// net. A replica halting mid-collective used to leave two latent bugs:
// the one-phase mutation read its result map through operator[] (a failed
// collective silently reported FsErr::kOk), and a redelivered PendingOp
// re-applied on replicas that had already applied it (doubled append bytes,
// kOk->kNotFound flips on remove). The fixes: per-path op seq numbers with
// an applied-mark dup check, a bounded redelivery loop on retryable
// collective timeouts, and an explicit kUnavailable error for delivery
// failure. These tests pin all three.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fs/ramfs.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk::fs {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers),
        fs(sys) {
    skb.PopulateFromHardware();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
  ReplicatedFs fs;
};

struct ScopedInjector {
  explicit ScopedInjector(const fault::FaultPlan& plan) : inj(plan) { inj.Install(); }
  ~ScopedInjector() { inj.Uninstall(); }
  fault::Injector inj;
};

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(RamfsFault, ParticipantHaltMidAppendConvergesWithoutDoubleApply) {
  // Core 7 halts while an append stream is in flight: whichever collective
  // straddles the halt times out, is redelivered under a fresh op id, and
  // must not double-apply on survivors that already applied it. The exact
  // final byte count is the assertion — one 'x' per acknowledged append.
  fault::FaultPlan plan;
  plan.HaltCore(7, /*at=*/30'000);
  ScopedInjector s(plan);
  Fixture f;
  int ok_appends = 0;
  std::string contents;
  f.exec.Spawn([](Fixture& fx, int& acked, std::string& out) -> Task<> {
    (void)co_await fx.fs.Create(0, "/log");
    for (int i = 0; i < 40; ++i) {
      if (co_await fx.fs.Append(3, "/log", Bytes("x")) == FsErr::kOk) {
        ++acked;
      }
    }
    auto data = co_await fx.fs.Read(0, "/log");
    EXPECT_TRUE(data.has_value());
    if (data.has_value()) out.assign(data->begin(), data->end());
    fx.sys.Shutdown();
  }(f, ok_appends, contents));
  f.exec.Run();
  EXPECT_EQ(ok_appends, 40);
  EXPECT_EQ(contents.size(), 40u) << "append double-applied or lost on redelivery";
  // The halt must actually have forced a redelivery, or this test pinned
  // nothing; and the survivors (core 7's stale replica is excluded from the
  // baseline) must agree byte-for-byte, applied-marks included.
  EXPECT_GT(f.fs.redeliveries(), 0u);
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(RamfsFault, RedeliveredRemoveKeepsItsOriginalResult) {
  // Remove is the op whose result flips on re-execution (kOk -> kNotFound).
  // The applied-mark records the first result so every delivery attempt
  // reports the same verdict.
  fault::FaultPlan plan;
  plan.HaltCore(11, /*at=*/30'000);
  ScopedInjector s(plan);
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    for (int i = 0; i < 12; ++i) {
      const std::string path = "/f" + std::to_string(i);
      EXPECT_EQ(co_await fx.fs.Create(2, path), FsErr::kOk);
      EXPECT_EQ(co_await fx.fs.Remove(5, path), FsErr::kOk) << path;
      EXPECT_EQ(co_await fx.fs.Remove(5, path), FsErr::kNotFound) << path;
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(RamfsFault, MutationsAfterExclusionKeepSurvivorsConsistent) {
  // Long-running write/append/remove mix across the halt: the survivors'
  // replicas (files AND applied-seq marks) must stay digest-identical, so a
  // later redelivery would be skipped or applied uniformly everywhere.
  fault::FaultPlan plan;
  plan.HaltCore(4, /*at=*/40'000);
  ScopedInjector s(plan);
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    (void)co_await fx.fs.Create(1, "/a");
    (void)co_await fx.fs.Create(9, "/b");
    for (int i = 0; i < 30; ++i) {
      (void)co_await fx.fs.Append(static_cast<int>(i % 16), "/a",
                                  Bytes(std::to_string(i)));
      if (i % 5 == 0) {
        (void)co_await fx.fs.Write(6, "/b", Bytes("gen" + std::to_string(i)));
      }
    }
    (void)co_await fx.fs.Remove(3, "/b");
    auto a0 = co_await fx.fs.Read(0, "/a");
    auto a15 = co_await fx.fs.Read(15, "/a");
    EXPECT_TRUE(a0.has_value());
    EXPECT_TRUE(a15.has_value());
    if (a0.has_value() && a15.has_value()) EXPECT_EQ(*a0, *a15);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(RamfsFault, PlainRunsNeverRedeliver) {
  // Injector-gated: without a fault plan the retry loop must be invisible —
  // no redeliveries, no kUnavailable, and (by the golden gate) no schedule
  // perturbation. This is the determinism contract the store relies on.
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    (void)co_await fx.fs.Create(0, "/p");
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(co_await fx.fs.Append(i, "/p", Bytes("y")), FsErr::kOk);
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_EQ(f.fs.redeliveries(), 0u);
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

}  // namespace
}  // namespace mk::fs
