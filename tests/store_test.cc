// apps::ReplicatedStore unit tests: the write path (WAL append, log shipping,
// follower-durability commit), exactly-once semantics by client write id,
// stale-leader fencing, and membership-driven promotion + respawn. The bench
// (store_readwrite) covers the same machinery end-to-end through httpd; these
// pin the protocol decisions directly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/httpd.h"
#include "apps/store.h"
#include "fault/fault.h"
#include "fs/ramfs.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "recover/config.h"
#include "recover/recover.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk::apps {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct ScopedInjector {
  explicit ScopedInjector(const fault::FaultPlan& plan) : inj(plan) { inj.Install(); }
  ~ScopedInjector() { inj.Uninstall(); }
  fault::Injector inj;
};

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers),
        fs(sys) {
    skb.PopulateFromHardware();
    sys.Boot();
    source.Exec("CREATE TABLE kv (k INT, v INT)");
  }

  // Builds the store and completes Start() (WAL creation) so tests begin
  // from a quiesced serving state, like the bench does.
  ReplicatedStore& MakeStore(std::vector<StorePlacement> placements) {
    store = std::make_unique<ReplicatedStore>(machine, fs, source, std::move(placements));
    exec.Spawn(store->Start());
    exec.Run();
    return *store;
  }

  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
  fs::ReplicatedFs fs;
  Database source;
  std::unique_ptr<ReplicatedStore> store;
};

std::string Insert(int k, int v) {
  return "INSERT INTO kv VALUES (" + std::to_string(k) + ", " + std::to_string(v) + ")";
}

TEST(Store, WriteCommitsOnLeaderAndFollowerBeforeAck) {
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}});
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st) -> Task<> {
    std::string r = co_await st.Execute(0, /*wid=*/1, Insert(10, 100));
    EXPECT_EQ(r, "ok 1");
    // The ack implies the follower already applied: no settle delay needed.
    EXPECT_EQ(st.replica_applied_lsn(0, 0), 1u);
    EXPECT_EQ(st.replica_applied_lsn(0, 1), 1u);
    EXPECT_EQ(st.replica_table_rows(0, 0, "KV"), 1u);
    EXPECT_EQ(st.replica_table_rows(0, 1, "KV"), 1u);
    // Leader-local reads observe the committed write.
    std::string rows = co_await st.Query(0, "SELECT k, v FROM kv WHERE k = 10");
    EXPECT_NE(rows.find("100"), std::string::npos);
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store));
  f.exec.Run();
  EXPECT_EQ(store.writes_committed(0), 1u);
  EXPECT_EQ(store.records_shipped(0), 1u);
  EXPECT_EQ(store.last_lsn(0), 1u);
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Store, RetryWithSameWidAnswersDupWithoutReapplying) {
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}});
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st) -> Task<> {
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/7, Insert(1, 1)), "ok 1");
    // A client retry of a committed-but-unacked write re-sends the same wid;
    // the store must answer success without touching the tables or the log.
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/7, Insert(1, 1)), "dup");
    EXPECT_EQ(st.replica_table_rows(0, 0, "KV"), 1u);
    EXPECT_EQ(st.replica_table_rows(0, 1, "KV"), 1u);
    EXPECT_EQ(st.replica_distinct_wids(0, 0), 1u);
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store));
  f.exec.Run();
  EXPECT_EQ(store.writes_committed(0), 1u);
  EXPECT_EQ(store.writes_dup(0), 1u);
  EXPECT_EQ(store.last_lsn(0), 1u);  // the dup never reached the WAL
}

TEST(Store, RetryOfRejectedWriteReplaysTheErrorNotDup) {
  // An engine-rejected write is logged and dedup-tracked like any other; if
  // its error reply is lost in a failover, the client's retry must learn the
  // recorded rejection — answering "dup" would report a write that never
  // applied as committed.
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}});
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st) -> Task<> {
    const std::string bad = "INSERT INTO nope VALUES (1, 1)";
    std::string first = co_await st.Execute(0, /*wid=*/9, bad);
    EXPECT_EQ(first, "error: db: no such table: NOPE");
    std::string retry = co_await st.Execute(0, /*wid=*/9, bad);
    EXPECT_EQ(retry, first);  // the recorded outcome, not "dup"
    // A committed write's retry still answers "dup".
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/10, Insert(1, 1)), "ok 2");
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/10, Insert(1, 1)), "dup");
    EXPECT_EQ(st.replica_table_rows(0, 0, "KV"), 1u);
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store));
  f.exec.Run();
  EXPECT_EQ(store.writes_rejected(0), 1u);
  EXPECT_EQ(store.writes_dup(0), 2u);  // both retries took the dedup path
  EXPECT_EQ(store.writes_committed(0), 1u);
}

TEST(Store, ShardsArePartitionsWithIndependentLogs) {
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}, {4, {5, 6}, 7}});
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st) -> Task<> {
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/1, Insert(1, 10)), "ok 1");
    EXPECT_EQ(co_await st.Execute(1, /*wid=*/2, Insert(2, 20)), "ok 1");
    EXPECT_EQ(co_await st.Execute(1, /*wid=*/3, Insert(3, 30)), "ok 2");
    EXPECT_EQ(st.replica_table_rows(0, 0, "KV"), 1u);
    EXPECT_EQ(st.replica_table_rows(1, 0, "KV"), 2u);
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store));
  f.exec.Run();
  EXPECT_EQ(store.last_lsn(0), 1u);
  EXPECT_EQ(store.last_lsn(1), 2u);
}

TEST(Store, SupersededLeaderIsFencedAndNeverAcks) {
  // Force the term forward while a write's WAL append is in flight: the
  // deposed leader must detect the supersession at the post-append fence and
  // answer an error instead of acking — "a stale leader can never ack after
  // its view is superseded", exercised without a full view change.
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}});
  std::string reply;
  bool done = false;
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st, std::string& out, bool& d) -> Task<> {
    out = co_await st.Execute(0, /*wid=*/1, Insert(5, 50));
    d = true;
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store, reply, done));
  // Bump the term every few kcycles for the write's whole lifetime: whichever
  // bump lands between the leader's term capture and its post-append check
  // trips the fence.
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st, const bool& d) -> Task<> {
    while (!d) {
      st.ForceTermBumpForTest(0);
      co_await fx.exec.Delay(5'000);
    }
  }(f, store, done));
  f.exec.Run();
  EXPECT_EQ(reply, "error: fenced");
  EXPECT_GE(store.writes_fenced(0), 1u);
  EXPECT_EQ(store.writes_committed(0), 0u);
  EXPECT_EQ(store.last_lsn(0), 0u);  // the group never advanced
  EXPECT_EQ(store.replica_table_rows(0, 0, "KV"), 0u);  // and never applied
  EXPECT_EQ(store.replica_table_rows(0, 1, "KV"), 0u);
}

TEST(Store, LeaderKillPromotesMostCaughtUpFollowerAndRespawns) {
  // Injector AFTER boot and store Start (both exec.Run() to quiescence, which
  // an auto-spawned heartbeat loop would prevent); then the heartbeat loop is
  // spawned explicitly for the killed run, the bench's idiom.
  Fixture f;
  ReplicatedStore& store = f.MakeStore({{0, {1, 2}, 3}});
  fault::FaultPlan plan;
  plan.HaltCore(1, /*at=*/2'000'000);  // shard 0's boot leader
  ScopedInjector s(plan);
  recover::MembershipService membership(f.sys);
  membership.Subscribe([&](const recover::View& v, int dead) -> Task<> {
    co_await store.HandleViewChange(v, dead);
  });
  f.exec.Spawn(f.sys.HeartbeatLoop());
  f.exec.Spawn([](Fixture& fx, ReplicatedStore& st,
                  recover::MembershipService& ms) -> Task<> {
    // Pre-kill write commits through the boot leader and reaches the
    // follower — that is what makes the follower "most caught up".
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/1, Insert(1, 11)), "ok 1");
    EXPECT_EQ(st.leader_slot(0), 0);
    // Sleep past the kill, its heartbeat exclusion, and the view change.
    co_await fx.exec.Delay(3'500'000);
    EXPECT_EQ(st.leader_slot(0), 1);         // the follower was promoted
    EXPECT_EQ(st.term(0), ms.view().epoch);  // term == membership epoch
    // Writes flow again through the promoted leader.
    EXPECT_EQ(co_await st.Execute(0, /*wid=*/2, Insert(2, 22)), "ok 2");
    // The respawned replica (on the spare core) replays the WAL to the tail.
    co_await fx.exec.Delay(1'000'000);
    EXPECT_EQ(st.replica_core(0, 0), 3);
    EXPECT_TRUE(st.replica_caught_up(0, 0));
    EXPECT_EQ(st.replica_applied_lsn(0, 0), 2u);
    EXPECT_EQ(st.replica_table_rows(0, 0, "KV"), 2u);
    EXPECT_EQ(st.replica_distinct_wids(0, 0), 2u);  // dedup set rebuilt from replay
    co_await st.Shutdown();
    fx.sys.Shutdown();
  }(f, store, membership));
  f.exec.Run();
  EXPECT_EQ(membership.view_changes_committed(), 1u);
  EXPECT_EQ(store.promotions(), 1u);
  EXPECT_EQ(store.respawns(), 1u);
  EXPECT_EQ(store.catchups(), 1u);
  EXPECT_EQ(store.writes_committed(0), 2u);
  EXPECT_TRUE(store.replica_alive(0, 1));  // the promoted leader
  EXPECT_TRUE(store.replica_alive(0, 0));  // the respawned replacement
}

}  // namespace
}  // namespace mk::apps
