// Tests for the capability system: typing rules, derivation tree, revoke,
// rights, and the two-phase-commit hooks.
#include <gtest/gtest.h>

#include "caps/capability.h"
#include "caps/cspace.h"

namespace mk::caps {
namespace {

constexpr std::uint64_t kMiB = 1 << 20;

TEST(CapDb, InstallRootCreatesRamCap) {
  CapDb db;
  CapId root = db.InstallRoot(0x100000, 16 * kMiB);
  const Capability* cap = db.Get(root);
  ASSERT_NE(cap, nullptr);
  EXPECT_EQ(cap->type, CapType::kRam);
  EXPECT_EQ(cap->base, 0x100000u);
  EXPECT_EQ(cap->bytes, 16 * kMiB);
  EXPECT_EQ(db.LiveCount(), 1u);
}

TEST(CapDb, RetypeSplitsRegionSequentially) {
  CapDb db;
  CapId root = db.InstallRoot(0, 16 * kMiB);
  auto r = db.Retype(root, CapType::kFrame, kMiB, 4);
  ASSERT_EQ(r.err, CapErr::kOk);
  ASSERT_EQ(r.children.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const Capability* c = db.Get(r.children[i]);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->type, CapType::kFrame);
    EXPECT_EQ(c->base, i * kMiB);
    EXPECT_EQ(c->bytes, kMiB);
  }
}

TEST(CapDb, RetypeOfRetypedRegionFails) {
  // The core safety property: memory may not be aliased under two types.
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  ASSERT_EQ(db.Retype(root, CapType::kFrame, 4096, 1).err, CapErr::kOk);
  auto again = db.Retype(root, CapType::kPageTable, 4096, 1);
  EXPECT_EQ(again.err, CapErr::kHasDescendants);
}

TEST(CapDb, RetypeTypingRules) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  auto frames = db.Retype(root, CapType::kFrame, 4096, 2);
  ASSERT_EQ(frames.err, CapErr::kOk);
  // A frame cannot be retyped (only RAM can).
  EXPECT_EQ(db.Retype(frames.children[0], CapType::kPageTable, 4096, 1).err,
            CapErr::kBadType);
  // Device regions cannot be minted from RAM.
  CapId root2 = db.InstallRoot(kMiB, kMiB);
  EXPECT_EQ(db.Retype(root2, CapType::kDevice, 4096, 1).err, CapErr::kBadType);
}

TEST(CapDb, RetypeRangeChecks) {
  CapDb db;
  CapId root = db.InstallRoot(0, 8192);
  EXPECT_EQ(db.Retype(root, CapType::kFrame, 4096, 3).err, CapErr::kBadRange);
  EXPECT_EQ(db.Retype(root, CapType::kFrame, 0, 1).err, CapErr::kBadRange);
  EXPECT_EQ(db.Retype(root, CapType::kFrame, 4096, 0).err, CapErr::kBadRange);
  EXPECT_EQ(db.Retype(999, CapType::kFrame, 4096, 1).err, CapErr::kBadCap);
}

TEST(CapDb, RevokeDeletesAllDescendants) {
  CapDb db;
  CapId root = db.InstallRoot(0, 16 * kMiB);
  auto rams = db.Retype(root, CapType::kRam, 4 * kMiB, 2);
  ASSERT_EQ(rams.err, CapErr::kOk);
  auto frames = db.Retype(rams.children[0], CapType::kFrame, kMiB, 2);
  ASSERT_EQ(frames.err, CapErr::kOk);
  EXPECT_EQ(db.LiveCount(), 5u);
  EXPECT_EQ(db.Revoke(root), CapErr::kOk);
  EXPECT_EQ(db.LiveCount(), 1u);  // only the root survives
  EXPECT_EQ(db.Get(frames.children[0]), nullptr);
  // The region is now retypeable again.
  EXPECT_EQ(db.Retype(root, CapType::kPageTable, 4096, 1).err, CapErr::kOk);
}

TEST(CapDb, CopyTracksDerivationAndRights) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  auto frames = db.Retype(root, CapType::kFrame, kMiB, 1);
  CapId frame = frames.children[0];
  auto ro = db.Copy(frame, Rights{true, false, false});
  ASSERT_EQ(ro.err, CapErr::kOk);
  EXPECT_FALSE(db.Get(ro.id)->rights.write);
  // Rights cannot be amplified by copying.
  auto rw = db.Copy(ro.id, Rights{true, true, true});
  EXPECT_EQ(rw.err, CapErr::kNoRights);
  // A no-grant copy cannot be copied at all.
  EXPECT_EQ(db.Copy(ro.id).err, CapErr::kNoRights);
  // Revoking the frame kills the copy.
  EXPECT_EQ(db.Revoke(frame), CapErr::kOk);
  EXPECT_EQ(db.Get(ro.id), nullptr);
  EXPECT_NE(db.Get(frame), nullptr);
}

TEST(CapDb, DeleteReparentsChildren) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  auto ram = db.Retype(root, CapType::kRam, kMiB / 2, 1);
  auto frame = db.Retype(ram.children[0], CapType::kFrame, 4096, 1);
  ASSERT_EQ(frame.err, CapErr::kOk);
  EXPECT_EQ(db.Delete(ram.children[0]), CapErr::kOk);
  EXPECT_EQ(db.Get(ram.children[0]), nullptr);
  // The frame survives, now as a descendant of root.
  EXPECT_NE(db.Get(frame.children[0]), nullptr);
  auto desc = db.Descendants(root);
  EXPECT_EQ(desc, std::vector<CapId>{frame.children[0]});
}

TEST(CapDb, PrepareLocksAgainstConflicts) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  CapDb::PreparedOp op1{1, root, false, CapType::kFrame, 4096, 1};
  CapDb::PreparedOp op2{2, root, false, CapType::kPageTable, 4096, 1};
  EXPECT_EQ(db.Prepare(op1), CapErr::kOk);
  EXPECT_TRUE(db.IsLocked(root));
  // A conflicting prepare on the same cap must fail until resolution.
  EXPECT_EQ(db.Prepare(op2), CapErr::kConflict);
  // Direct operations on a locked cap fail too.
  EXPECT_EQ(db.Retype(root, CapType::kFrame, 4096, 1).err, CapErr::kLocked);
  EXPECT_EQ(db.Revoke(root), CapErr::kLocked);
}

TEST(CapDb, CommitAppliesPreparedRetype) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  CapDb::PreparedOp op{7, root, false, CapType::kFrame, 4096, 2};
  ASSERT_EQ(db.Prepare(op), CapErr::kOk);
  auto children = db.Commit(7);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_FALSE(db.IsLocked(root));
  EXPECT_EQ(db.Get(children[0])->type, CapType::kFrame);
}

TEST(CapDb, AbortUnlocksWithoutApplying) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  CapDb::PreparedOp op{9, root, false, CapType::kFrame, 4096, 1};
  ASSERT_EQ(db.Prepare(op), CapErr::kOk);
  db.Abort(9);
  EXPECT_FALSE(db.IsLocked(root));
  EXPECT_FALSE(db.HasDescendants(root));
  // Now a fresh prepare succeeds.
  CapDb::PreparedOp op2{10, root, false, CapType::kPageTable, 4096, 1};
  EXPECT_EQ(db.Prepare(op2), CapErr::kOk);
}

TEST(CapDb, PrepareRevokeThenCommit) {
  CapDb db;
  CapId root = db.InstallRoot(0, kMiB);
  auto frames = db.Retype(root, CapType::kFrame, 4096, 3);
  CapDb::PreparedOp op{11, root, true, CapType::kNull, 0, 0};
  ASSERT_EQ(db.Prepare(op), CapErr::kOk);
  db.Commit(11);
  EXPECT_EQ(db.LiveCount(), 1u);
  EXPECT_EQ(db.Get(frames.children[0]), nullptr);
}

TEST(CapDb, ReplicaDigestsMatchForSameHistory) {
  CapDb a;
  CapDb b;
  auto apply = [](CapDb& db) {
    CapId root = db.InstallRoot(0, 16 * kMiB);
    auto rams = db.Retype(root, CapType::kRam, 4 * kMiB, 2);
    db.Retype(rams.children[1], CapType::kFrame, kMiB, 2);
    db.Revoke(rams.children[0]);
  };
  apply(a);
  apply(b);
  EXPECT_EQ(a.Digest(), b.Digest());
  // Diverge b.
  b.Retype(2, CapType::kCNode, 4096, 1);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(CapDb, InsertRemoteRespectsTransferability) {
  CapDb db;
  db.InstallRoot(0, 16 * kMiB);
  Capability frame;
  frame.type = CapType::kFrame;
  frame.base = kMiB;
  frame.bytes = 4096;
  auto ins = db.InsertRemote(frame);
  EXPECT_EQ(ins.err, CapErr::kOk);
  EXPECT_NE(db.Get(ins.id), nullptr);
  Capability pt;
  pt.type = CapType::kPageTable;
  EXPECT_EQ(db.InsertRemote(pt).err, CapErr::kBadType);
  Capability disp;
  disp.type = CapType::kDispatcher;
  EXPECT_EQ(db.InsertRemote(disp).err, CapErr::kBadType);
}

TEST(CapTypes, TransferabilityMatrix) {
  EXPECT_TRUE(TransferableType(CapType::kFrame));
  EXPECT_TRUE(TransferableType(CapType::kRam));
  EXPECT_TRUE(TransferableType(CapType::kEndpoint));
  EXPECT_FALSE(TransferableType(CapType::kPageTable));
  EXPECT_FALSE(TransferableType(CapType::kCNode));
  EXPECT_FALSE(TransferableType(CapType::kDispatcher));
}

TEST(CSpace, PutLookupDeleteInRoot) {
  CapDb db;
  CSpace cs(db);
  CapId root = db.InstallRoot(0, kMiB);
  EXPECT_EQ(cs.Lookup(CapPath::Of({3})), kNoCap);
  EXPECT_EQ(cs.Put(CapPath::Of({3}), root), CapErr::kOk);
  EXPECT_EQ(cs.Lookup(CapPath::Of({3})), root);
  // Occupied slot refuses a second put.
  EXPECT_EQ(cs.Put(CapPath::Of({3}), root), CapErr::kConflict);
  // Out-of-range slot and bad cap are rejected.
  EXPECT_EQ(cs.Put(CapPath::Of({9999}), root), CapErr::kBadRange);
  EXPECT_EQ(cs.Put(CapPath::Of({4}), 777), CapErr::kBadCap);
  EXPECT_EQ(cs.Delete(CapPath::Of({3})), CapErr::kOk);
  EXPECT_EQ(cs.Lookup(CapPath::Of({3})), kNoCap);
}

TEST(CSpace, CopyAndMintTrackDerivation) {
  CapDb db;
  CSpace cs(db);
  CapId root = db.InstallRoot(0, kMiB);
  auto frame = db.Retype(root, CapType::kFrame, 4096, 1);
  ASSERT_EQ(cs.Put(CapPath::Of({0}), frame.children[0]), CapErr::kOk);
  ASSERT_EQ(cs.Copy(CapPath::Of({0}), CapPath::Of({1})), CapErr::kOk);
  ASSERT_EQ(cs.Mint(CapPath::Of({0}), CapPath::Of({2}), Rights{true, false, false}),
            CapErr::kOk);
  CapId minted = cs.Lookup(CapPath::Of({2}));
  ASSERT_NE(minted, kNoCap);
  EXPECT_FALSE(db.Get(minted)->rights.write);
  // Revoking the frame kills both derived slots (Lookup sees the death).
  ASSERT_EQ(db.Revoke(frame.children[0]), CapErr::kOk);
  EXPECT_EQ(cs.Lookup(CapPath::Of({1})), kNoCap);
  EXPECT_EQ(cs.Lookup(CapPath::Of({2})), kNoCap);
  EXPECT_NE(cs.Lookup(CapPath::Of({0})), kNoCap);  // the original survives
}

TEST(CSpace, NestedCNodeAddressing) {
  CapDb db;
  CSpace cs(db);
  CapId root = db.InstallRoot(0, 16 * kMiB);
  auto regions = db.Retype(root, CapType::kRam, kMiB, 3);
  ASSERT_EQ(regions.err, CapErr::kOk);
  // Build a second-level CNode at root slot 5, then store through it.
  ASSERT_EQ(cs.MakeCNode(CapPath::Of({5}), regions.children[0], 64), CapErr::kOk);
  auto frame = db.Retype(regions.children[1], CapType::kFrame, 4096, 1);
  ASSERT_EQ(cs.Put(CapPath::Of({5, 7}), frame.children[0]), CapErr::kOk);
  EXPECT_EQ(cs.Lookup(CapPath::Of({5, 7})), frame.children[0]);
  EXPECT_EQ(cs.Lookup(CapPath::Of({5, 64})), kNoCap);   // out of range
  EXPECT_EQ(cs.Lookup(CapPath::Of({6, 7})), kNoCap);    // no such child
  // A third level nests the same way.
  ASSERT_EQ(cs.MakeCNode(CapPath::Of({5, 8}), regions.children[2], 16), CapErr::kOk);
  ASSERT_EQ(cs.Copy(CapPath::Of({5, 7}), CapPath::Of({5, 8, 3})), CapErr::kOk);
  EXPECT_NE(cs.Lookup(CapPath::Of({5, 8, 3})), kNoCap);
  // Occupied slot cannot take a CNode.
  EXPECT_EQ(cs.MakeCNode(CapPath::Of({5}), regions.children[1], 8), CapErr::kConflict);
}

// Property sweep: retyping N frames then revoking restores the initial state
// for every (size, count) combination.
class RetypeRevokeProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(RetypeRevokeProperty, RoundTripRestoresState) {
  auto [child_bytes, count] = GetParam();
  CapDb db;
  CapId root = db.InstallRoot(0, 64 * kMiB);
  std::uint64_t before = db.Digest();
  auto r = db.Retype(root, CapType::kFrame, child_bytes, count);
  if (child_bytes * count <= 64 * kMiB) {
    ASSERT_EQ(r.err, CapErr::kOk);
    ASSERT_EQ(db.Revoke(root), CapErr::kOk);
  } else {
    ASSERT_EQ(r.err, CapErr::kBadRange);
  }
  EXPECT_EQ(db.Digest(), before);
  EXPECT_EQ(db.LiveCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RetypeRevokeProperty,
    ::testing::Combine(::testing::Values(4096, 65536, kMiB, 32 * kMiB),
                       ::testing::Values(1, 2, 7, 64, 4096)));

}  // namespace
}  // namespace mk::caps
