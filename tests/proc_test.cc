// Tests for the threads package: barriers, mutexes, thread teams, migration.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "proc/threads.h"
#include "sim/executor.h"

namespace mk::proc {
namespace {

using sim::Cycles;
using sim::Task;

struct Fixture {
  Fixture() : machine(exec, hw::Amd4x4()) {}
  sim::Executor exec;
  hw::Machine machine;
};

std::vector<int> FirstCores(int n) {
  std::vector<int> cores;
  for (int i = 0; i < n; ++i) {
    cores.push_back(i);
  }
  return cores;
}

Task<> BarrierWorker(hw::Machine& m, Barrier& barrier, int core, Cycles spin,
                     std::vector<int>& order, int id) {
  co_await m.exec().Delay(spin);
  co_await barrier.Arrive(core);
  order.push_back(id);
}

TEST(Barrier, NobodyPassesUntilAllArrive) {
  Fixture f;
  Barrier barrier(f.machine, 3, SyncFlavor::kUserSpace);
  std::vector<int> order;
  f.exec.Spawn(BarrierWorker(f.machine, barrier, 0, 100, order, 0));
  f.exec.Spawn(BarrierWorker(f.machine, barrier, 1, 5000, order, 1));
  f.exec.Spawn(BarrierWorker(f.machine, barrier, 2, 90000, order, 2));
  f.exec.RunUntil(80000);
  EXPECT_TRUE(order.empty());  // two waiting on the third
  f.exec.Run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Barrier, ReusableAcrossGenerations) {
  Fixture f;
  Barrier barrier(f.machine, 2, SyncFlavor::kUserSpace);
  int rounds_done = 0;
  for (int core : {0, 1}) {
    f.exec.Spawn([](hw::Machine& m, Barrier& b, int c, int& done) -> Task<> {
      for (int round = 0; round < 5; ++round) {
        co_await m.exec().Delay(static_cast<Cycles>(c) * 50 + 10);
        co_await b.Arrive(c);
      }
      ++done;
    }(f.machine, barrier, core, rounds_done));
  }
  f.exec.Run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(Barrier, KernelFlavorCostsMoreThanUserSpace) {
  auto measure = [](SyncFlavor flavor) {
    Fixture f;
    Barrier barrier(f.machine, 8, flavor);
    for (int c = 0; c < 8; ++c) {
      f.exec.Spawn([](Barrier& b, int core) -> Task<> { co_await b.Arrive(core); }(barrier, c));
    }
    return f.exec.Run();
  };
  EXPECT_LT(measure(SyncFlavor::kUserSpace), measure(SyncFlavor::kKernel));
}

TEST(Barrier, CentralizedReleaseInvalidatesEveryWaiter) {
  // Pins the centralized count/release-line behavior the tree barrier is
  // built to avoid: every arrival is a coherent RMW on one counter line and
  // every release re-fetches one sense line, so misses grow with parties.
  auto misses = [](int parties) {
    Fixture f;
    Barrier barrier(f.machine, parties, SyncFlavor::kUserSpace);
    for (int c = 0; c < parties; ++c) {
      f.exec.Spawn([](Barrier& b, int core) -> Task<> {
        for (int e = 0; e < 4; ++e) {
          co_await b.Arrive(core);
        }
      }(barrier, c));
    }
    f.exec.Run();
    const hw::CoreCounters total = f.machine.counters().Total();
    return total.c2c_transfers + total.dram_fetches;
  };
  const std::uint64_t at4 = misses(4);
  const std::uint64_t at8 = misses(8);
  const std::uint64_t at16 = misses(16);
  EXPECT_GT(at8, at4);
  EXPECT_GT(at16, at8);
}

TEST(Mutex, ProvidesMutualExclusion) {
  Fixture f;
  Mutex mutex(f.machine, SyncFlavor::kUserSpace);
  int in_critical = 0;
  int max_in_critical = 0;
  int total = 0;
  for (int c = 0; c < 8; ++c) {
    f.exec.Spawn([](hw::Machine& m, Mutex& mu, int core, int& in, int& peak,
                    int& count) -> Task<> {
      for (int i = 0; i < 5; ++i) {
        co_await mu.Lock(core);
        ++in;
        peak = std::max(peak, in);
        co_await m.exec().Delay(200);  // critical section
        --in;
        ++count;
        co_await mu.Unlock(core);
      }
    }(f.machine, mutex, c, in_critical, max_in_critical, total));
  }
  f.exec.Run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(total, 40);
  EXPECT_FALSE(mutex.locked());
}

TEST(Mutex, UserSpaceHandoffIsFifoWhenAllQueued) {
  // Pins the centralized wake discipline: available_ is signaled one waiter
  // at a time in wait order, so when every contender queues before the first
  // release, the lock hands off in arrival order. The scalable MCS lock
  // guarantees the same order by construction (tests/sync_test.cc).
  Fixture f;
  Mutex mutex(f.machine, SyncFlavor::kUserSpace);
  std::vector<int> order;
  for (int c = 0; c < 6; ++c) {
    f.exec.Spawn([](hw::Machine& m, Mutex& mu, int core, std::vector<int>& out) -> Task<> {
      co_await m.exec().Delay(static_cast<Cycles>(core) * 5000);
      co_await mu.Lock(core);
      out.push_back(core);
      co_await m.Compute(core, core == 0 ? 100000 : 300);
      co_await mu.Unlock(core);
    }(f.machine, mutex, c, order));
  }
  f.exec.Run();
  ASSERT_EQ(order.size(), 6u);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(order[static_cast<std::size_t>(c)], c);
  }
}

TEST(Mutex, KernelFlavorChargesSyscalls) {
  auto traps = [](SyncFlavor flavor) {
    Fixture f;
    Mutex mutex(f.machine, flavor);
    for (int c = 0; c < 4; ++c) {
      f.exec.Spawn([](hw::Machine& m, Mutex& mu, int core) -> Task<> {
        for (int i = 0; i < 3; ++i) {
          co_await mu.Lock(core);
          co_await m.exec().Delay(500);
          co_await mu.Unlock(core);
        }
      }(f.machine, mutex, c));
    }
    Cycles end = f.exec.Run();
    return end;
  };
  EXPECT_GT(traps(SyncFlavor::kKernel), traps(SyncFlavor::kUserSpace));
}

TEST(ThreadTeam, RunsBodyOnEveryCore) {
  Fixture f;
  ThreadTeam team(f.machine, FirstCores(6));
  std::vector<int> seen_cores;
  f.exec.Spawn([](ThreadTeam& t, std::vector<int>& seen) -> Task<> {
    co_await t.Run([&seen](int tid, int core) -> Task<> {
      EXPECT_EQ(tid, core);  // FirstCores maps tid == core
      seen.push_back(core);
      co_return;
    });
  }(team, seen_cores));
  f.exec.Run();
  EXPECT_EQ(seen_cores.size(), 6u);
}

TEST(ThreadTeam, JoinWaitsForSlowestWorker) {
  Fixture f;
  ThreadTeam team(f.machine, FirstCores(4));
  Cycles joined_at = 0;
  f.exec.Spawn([](hw::Machine& m, ThreadTeam& t, Cycles& out) -> Task<> {
    co_await t.Run([&m](int tid, int) -> Task<> {
      co_await m.exec().Delay(tid == 2 ? 50000 : 100);
    });
    out = m.exec().now();
  }(f.machine, team, joined_at));
  f.exec.Run();
  EXPECT_GE(joined_at, 50000u);
}

TEST(Migrate, ChargesCrossCoreCost) {
  Fixture f;
  Cycles cost = 0;
  f.exec.Spawn([](hw::Machine& m, Cycles& out) -> Task<> {
    out = co_await MigrateThread(m, 0, 4);
  }(f.machine, cost));
  f.exec.Run();
  EXPECT_GT(cost, f.machine.cost().dispatch);
}

TEST(Omp, ParallelForCoversRangeExactlyOnce) {
  Fixture f;
  OmpRuntime omp(f.machine, FirstCores(5), SyncFlavor::kUserSpace);
  std::vector<int> hits(100, 0);
  f.exec.Spawn([](OmpRuntime& o, std::vector<int>& h) -> Task<> {
    co_await o.ParallelFor(100, [&h](int, int, std::int64_t b, std::int64_t e) -> Task<> {
      for (std::int64_t i = b; i < e; ++i) {
        ++h[static_cast<std::size_t>(i)];
      }
      co_return;
    });
  }(omp, hits));
  f.exec.Run();
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(Omp, ChunksPartitionWithoutOverlap) {
  Fixture f;
  OmpRuntime omp(f.machine, FirstCores(7), SyncFlavor::kUserSpace);
  std::int64_t covered = 0;
  std::int64_t prev_end = 0;
  for (int tid = 0; tid < 7; ++tid) {
    auto r = omp.ChunkOf(103, tid);
    EXPECT_EQ(r.begin, prev_end);
    prev_end = r.end;
    covered += r.end - r.begin;
  }
  EXPECT_EQ(covered, 103);
  EXPECT_EQ(prev_end, 103);
}

TEST(Omp, ReductionContentionGrowsWithThreads) {
  auto measure = [](int threads) {
    Fixture f;
    OmpRuntime omp(f.machine, FirstCores(threads), SyncFlavor::kUserSpace);
    f.exec.Spawn([](OmpRuntime& o) -> Task<> {
      co_await o.Parallel([&o](int, int core) -> Task<> {
        co_await o.ReduceContribution(core);
      });
    }(omp));
    return f.exec.Run();
  };
  // The shared reduction line serializes contributions.
  EXPECT_GT(measure(16), measure(2));
}

TEST(Omp, ScalableFlavorCheapensReductionAtSixteenThreads) {
  // The kScalable runtime spreads contributions over one reduce line per
  // package instead of one machine-wide line, and replaces the centralized
  // barrier with the tournament tree; at 16 threads the combined
  // reduce-then-barrier phase must be cheaper.
  auto measure = [](SyncFlavor flavor) {
    Fixture f;
    OmpRuntime omp(f.machine, FirstCores(16), flavor);
    f.exec.Spawn([](OmpRuntime& o) -> Task<> {
      for (int e = 0; e < 4; ++e) {
        co_await o.Parallel([&o](int, int core) -> Task<> {
          co_await o.ReduceContribution(core);
        });
      }
    }(omp));
    return f.exec.Run();
  };
  EXPECT_LT(measure(SyncFlavor::kScalable), measure(SyncFlavor::kUserSpace));
}

}  // namespace
}  // namespace mk::proc
