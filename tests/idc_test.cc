// Tests for the IDC framework: name service, typed service stubs, channel
// setup, and pipelined calls.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "hw/machine.h"
#include "hw/platform.h"
#include "idc/name_service.h"
#include "idc/service.h"
#include "sim/executor.h"

namespace mk::idc {
namespace {

using sim::Cycles;
using sim::Task;

struct Fixture {
  Fixture() : machine(exec, hw::Amd4x4()), names(machine, 0) {}
  sim::Executor exec;
  hw::Machine machine;
  NameService names;
};

TEST(NameService, RegisterLookupUnregister) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    std::map<std::string, std::string> props = {{"class", "bus"}};
    ServiceRef ref = co_await fx.names.Register(5, "pci", std::move(props));
    EXPECT_EQ(ref.core, 5);
    EXPECT_GT(ref.id, 0u);

    auto found = co_await fx.names.Lookup(9, "pci");
    EXPECT_TRUE(found.has_value());
    EXPECT_EQ(found->core, 5);

    auto missing = co_await fx.names.Lookup(9, "nope");
    EXPECT_FALSE(missing.has_value());

    EXPECT_TRUE(co_await fx.names.Unregister(5, ref.id));
    EXPECT_FALSE(co_await fx.names.Unregister(5, ref.id));
    EXPECT_FALSE((co_await fx.names.Lookup(9, "pci")).has_value());
  }(f));
  f.exec.Run();
}

TEST(NameService, PropertyQuery) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    std::map<std::string, std::string> p1 = {{"class", "nic"}, {"bus", "pci"}};
    std::map<std::string, std::string> p2 = {{"class", "nic"}};
    std::map<std::string, std::string> p3 = {{"class", "disk"}};
    (void)co_await fx.names.Register(1, "e1000", std::move(p1));
    (void)co_await fx.names.Register(2, "e1000e", std::move(p2));
    (void)co_await fx.names.Register(3, "ahci", std::move(p3));
    auto nics = co_await fx.names.Query(0, "class", "nic");
    EXPECT_EQ(nics.size(), 2u);
    auto disks = co_await fx.names.Query(0, "class", "disk");
    EXPECT_EQ(disks.size(), 1u);
    if (!disks.empty()) {
      EXPECT_EQ(disks[0].core, 3);
    }
  }(f));
  f.exec.Run();
}

TEST(NameService, RemoteLookupCostsMoreThanLocal) {
  Fixture f;
  Cycles local = 0;
  Cycles remote = 0;
  f.exec.Spawn([](Fixture& fx, Cycles& l, Cycles& r) -> Task<> {
    (void)co_await fx.names.Register(0, "svc");
    Cycles t0 = fx.exec.now();
    (void)co_await fx.names.Lookup(0, "svc");  // registry core itself
    l = fx.exec.now() - t0;
    t0 = fx.exec.now();
    (void)co_await fx.names.Lookup(12, "svc");  // two hops away
    r = fx.exec.now() - t0;
  }(f, local, remote));
  f.exec.Run();
  EXPECT_LT(local, remote);
}

struct SquareReq {
  std::int64_t value;
};
struct SquareResp {
  std::int64_t value;
};

TEST(Service, TypedCallRoundTrip) {
  Fixture f;
  Service<SquareReq, SquareResp> svc(f.machine, f.names, 4, "square",
                                     [](const SquareReq& req) -> Task<SquareResp> {
                                       co_return SquareResp{req.value * req.value};
                                     });
  f.exec.Spawn([](Fixture& fx, Service<SquareReq, SquareResp>& s) -> Task<> {
    co_await s.Export();
    auto client = co_await ServiceClient<SquareReq, SquareResp>::Connect(
        fx.machine, fx.names, s, 9);
    EXPECT_NE(client, nullptr);
    if (client == nullptr) {
      s.Stop();
      co_return;
    }
    for (std::int64_t v : {2, 7, -3}) {
      SquareResp resp = co_await client->Call(SquareReq{v});
      EXPECT_EQ(resp.value, v * v);
    }
    s.Stop();
  }(f, svc));
  f.exec.Spawn(svc.Serve());
  f.exec.Run();
  EXPECT_EQ(svc.calls(), 3u);
  EXPECT_EQ(svc.bindings(), 1u);
}

TEST(Service, MultipleClientsGetIndependentBindings) {
  Fixture f;
  Service<SquareReq, SquareResp> svc(f.machine, f.names, 0, "square",
                                     [](const SquareReq& req) -> Task<SquareResp> {
                                       co_return SquareResp{req.value + 1};
                                     });
  int done = 0;
  f.exec.Spawn([](Fixture& fx, Service<SquareReq, SquareResp>& s, int& d) -> Task<> {
    co_await s.Export();
    for (int core : {4, 8, 12}) {
      auto client = co_await ServiceClient<SquareReq, SquareResp>::Connect(
          fx.machine, fx.names, s, core);
      SquareResp resp = co_await client->Call(SquareReq{core});
      EXPECT_EQ(resp.value, core + 1);
      ++d;
    }
    s.Stop();
  }(f, svc, done));
  f.exec.Spawn(svc.Serve());
  f.exec.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(svc.bindings(), 3u);
}

TEST(Service, PipelinedCallsBeatSequentialThroughput) {
  auto run = [](bool pipelined) {
    Fixture f;
    Service<SquareReq, SquareResp> svc(f.machine, f.names, 4, "sq",
                                       [](const SquareReq& req) -> Task<SquareResp> {
                                         co_return SquareResp{req.value};
                                       });
    f.exec.Spawn([](Fixture& fx, Service<SquareReq, SquareResp>& s, bool pipe) -> Task<> {
      co_await s.Export();
      auto client = co_await ServiceClient<SquareReq, SquareResp>::Connect(
          fx.machine, fx.names, s, 9);
      const int kCalls = 64;
      if (pipe) {
        int sent = 0;
        int received = 0;
        while (received < kCalls) {
          while (sent < kCalls && sent - received < 6) {
            co_await client->CallAsync(SquareReq{sent});
            ++sent;
          }
          (void)co_await client->Collect();
          ++received;
        }
      } else {
        for (int i = 0; i < kCalls; ++i) {
          (void)co_await client->Call(SquareReq{i});
        }
      }
      s.Stop();
    }(f, svc, pipelined));
    f.exec.Spawn(svc.Serve());
    return f.exec.Run();
  };
  // Split-phase pipelining amortizes the round trips (section 2.4 / 5.2).
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace mk::idc
