// mk::recover: the failover machinery PR 5 layers over the fault injector —
// runtime RETA reprogramming and adopted-flow accounting in the NIC,
// epoch-numbered membership view changes driven by heartbeat exclusion,
// RecoveryConfig scoping, explicit HTTP admission/overload policy, DB replica
// re-pointing and respawn, and the two RST paths that let a survivor shed a
// dead shard's connection state (unknown-flow RST, abandoned-handshake RST).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/dbshard.h"
#include "apps/httpd.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/nic.h"
#include "net/stack.h"
#include "net/wire.h"
#include "recover/config.h"
#include "recover/recover.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using net::Ipv4Addr;
using net::MakeIp;
using net::Packet;
using sim::Cycles;
using sim::Task;

struct ScopedInjector {
  explicit ScopedInjector(const fault::FaultPlan& plan) : inj(plan) { inj.Install(); }
  ~ScopedInjector() { inj.Uninstall(); }
  fault::Injector inj;
};

// --- RecoveryConfig scoping ---

TEST(RecoveryConfig, ScopedOverrideRestoresOnExitAndNests) {
  const Cycles default_rto = recover::Config().tcp_rto;
  const int default_retx = recover::Config().tcp_max_retx;
  {
    recover::RecoveryConfig outer;
    outer.tcp_rto = 1'000'000;
    outer.tcp_max_retx = 4;
    recover::ScopedRecoveryConfig so(outer);
    EXPECT_EQ(recover::Config().tcp_rto, 1'000'000u);
    EXPECT_EQ(recover::Config().tcp_max_retx, 4);
    {
      recover::RecoveryConfig inner = recover::Config();
      inner.heartbeat_period = 10'000;
      recover::ScopedRecoveryConfig si(inner);
      EXPECT_EQ(recover::Config().heartbeat_period, 10'000u);
      EXPECT_EQ(recover::Config().tcp_rto, 1'000'000u);  // outer still applies
    }
    // Inner scope restored the outer values, not the defaults.
    EXPECT_NE(recover::Config().heartbeat_period, 10'000u);
    EXPECT_EQ(recover::Config().tcp_rto, 1'000'000u);
  }
  EXPECT_EQ(recover::Config().tcp_rto, default_rto);
  EXPECT_EQ(recover::Config().tcp_max_retx, default_retx);
}

// --- NIC RSS indirection table ---

const net::MacAddr kMacA{0x02, 0, 0, 0, 0, 0xaa};
const net::MacAddr kMacB{0x02, 0, 0, 0, 0, 0xbb};
constexpr Ipv4Addr kIpA = MakeIp(10, 0, 0, 1);
constexpr Ipv4Addr kIpB = MakeIp(10, 0, 0, 2);

Packet UdpFrame(Ipv4Addr src, Ipv4Addr dst, std::uint16_t port, std::size_t bytes) {
  net::EthHeader eth{kMacB, kMacA, net::kEtherTypeIpv4};
  net::IpHeader ip;
  ip.protocol = net::kIpProtoUdp;
  ip.src = src;
  ip.dst = dst;
  std::vector<std::uint8_t> data(bytes, 0x5a);
  return net::BuildUdpFrame(eth, ip, net::UdpHeader{1, port, 0}, data.data(),
                            data.size());
}

TEST(Reta, FineGrainedTableIsIdenticalToDirectModuloSteering) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  net::SimNic::Config direct;
  direct.queues = 4;  // reta_slots = 0: `queues` identity slots
  net::SimNic::Config fine = direct;
  fine.reta_slots = 64;  // failover-grade table, 16 slots per queue
  net::SimNic nic_direct(m, direct);
  net::SimNic nic_fine(m, fine);
  ASSERT_EQ(nic_direct.reta_slots(), 4);
  ASSERT_EQ(nic_fine.reta_slots(), 64);
  for (int slot = 0; slot < nic_fine.reta_slots(); ++slot) {
    EXPECT_EQ(nic_fine.reta_entry(slot), slot % 4);
  }
  // Every flow steers identically: (h % 64) % 4 == h % 4.
  for (std::uint16_t p = 1000; p < 1256; ++p) {
    Packet f = UdpFrame(kIpA, kIpB, p, 64);
    EXPECT_EQ(nic_fine.RssQueueFor(f), nic_direct.RssQueueFor(f)) << "port " << p;
  }
}

TEST(Reta, ResteerSpreadsTheDeadQueueAcrossAllSurvivors) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  net::SimNic::Config cfg;
  cfg.queues = 4;
  cfg.reta_slots = 64;
  net::SimNic nic(m, cfg);
  std::vector<int> survivors{0, 1, 3};
  EXPECT_EQ(nic.ResteerQueue(/*dead_queue=*/2, survivors), 16);
  int count[4] = {0, 0, 0, 0};
  for (int slot = 0; slot < nic.reta_slots(); ++slot) {
    ++count[nic.reta_entry(slot)];
  }
  EXPECT_EQ(count[2], 0);  // no slot names the dead queue
  EXPECT_EQ(count[0] + count[1] + count[3], 64);
  // Round-robin: each survivor absorbed its fair share of the 16 orphaned
  // slots (16/3 -> at most one extra on any survivor), not 2x on one.
  for (int q : survivors) {
    EXPECT_GE(count[q], 16 + 5) << "queue " << q;
    EXPECT_LE(count[q], 16 + 6) << "queue " << q;
  }
  // Steering never picks the dead queue again.
  for (std::uint16_t p = 1000; p < 1200; ++p) {
    EXPECT_NE(nic.RssQueueFor(UdpFrame(kIpA, kIpB, p, 64)), 2);
  }
}

TEST(Reta, ResteeredFramesCountAsAdoptedOnTheSurvivorQueue) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  net::SimNic::Config cfg;
  cfg.queues = 4;
  cfg.reta_slots = 64;
  net::SimNic nic(m, cfg);
  // One flow that defaults to the doomed queue 2, one that defaults to 0.
  std::uint16_t port_q2 = 0;
  std::uint16_t port_q0 = 0;
  for (std::uint16_t p = 1000; p < 1400; ++p) {
    int q = nic.RssQueueFor(UdpFrame(kIpA, kIpB, p, 64));
    if (q == 2 && port_q2 == 0) {
      port_q2 = p;
    }
    if (q == 0 && port_q0 == 0) {
      port_q0 = p;
    }
  }
  ASSERT_NE(port_q2, 0);
  ASSERT_NE(port_q0, 0);
  nic.ResteerQueue(2, {0, 1, 3});
  Packet orphan = UdpFrame(kIpA, kIpB, port_q2, 64);
  const int adopted_q = nic.RssQueueFor(orphan);
  ASSERT_NE(adopted_q, 2);
  exec.Spawn([](net::SimNic& n, Packet a, Packet b) -> Task<> {
    co_await n.InjectFromWire(std::move(a));
    co_await n.InjectFromWire(std::move(b));
  }(nic, orphan, UdpFrame(kIpA, kIpB, port_q0, 64)));
  exec.Run();
  // The orphaned flow landed on a survivor and was counted as adopted; the
  // flow that always belonged to queue 0 was not.
  EXPECT_EQ(nic.queue_stats(2).rx_frames, 0u);
  EXPECT_EQ(nic.queue_stats(adopted_q).rx_adopted, 1u);
  EXPECT_EQ(nic.queue_stats(0).rx_frames + nic.queue_stats(1).rx_frames +
                nic.queue_stats(3).rx_frames,
            2u);
  std::uint64_t adopted_total = 0;
  for (int q = 0; q < 4; ++q) {
    adopted_total += nic.queue_stats(q).rx_adopted;
  }
  EXPECT_EQ(adopted_total, 1u);
}

// --- Membership view changes ---

struct MonitorFixture {
  MonitorFixture()
      : machine(exec, hw::Amd8x4()),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

TEST(Membership, InitialViewReflectsBootedCoresAtEpochOne) {
  fault::FaultPlan plan;
  ScopedInjector s(plan);
  MonitorFixture f;
  recover::MembershipService svc(f.sys);
  EXPECT_EQ(svc.view().epoch, 1u);
  EXPECT_EQ(svc.view().NumLive(), f.machine.num_cores());
  EXPECT_EQ(svc.view_changes_committed(), 0u);
  f.exec.Spawn([](MonitorFixture& fx) -> Task<> {
    co_await fx.exec.Delay(recover::Config().heartbeat_period * 3);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  // Nothing died: no view change ever committed.
  EXPECT_EQ(svc.view().epoch, 1u);
  EXPECT_EQ(svc.view_changes_committed(), 0u);
}

TEST(Membership, HeartbeatExclusionCommitsAViewChangeAndNotifiesInOrder) {
  fault::FaultPlan plan;
  plan.HaltCore(13, /*at=*/10'000);
  ScopedInjector s(plan);
  MonitorFixture f;
  recover::MembershipService svc(f.sys);
  std::vector<int> order;
  std::vector<std::uint64_t> epochs;
  std::vector<int> dead_cores;
  svc.Subscribe([&](const recover::View& v, int dead) -> Task<> {
    order.push_back(1);
    epochs.push_back(v.epoch);
    dead_cores.push_back(dead);
    co_return;
  });
  svc.Subscribe([&](const recover::View& v, int dead) -> Task<> {
    order.push_back(2);
    EXPECT_EQ(v.epoch, epochs.back());  // both see the same committed view
    EXPECT_EQ(dead, dead_cores.back());
    co_return;
  });
  f.exec.Spawn([](MonitorFixture& fx) -> Task<> {
    co_await fx.exec.Delay(recover::Config().heartbeat_period * 6);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  EXPECT_EQ(svc.view_changes_committed(), 1u);
  EXPECT_EQ(svc.view().epoch, 2u);
  EXPECT_FALSE(svc.view().live[13]);
  EXPECT_EQ(svc.view().NumLive(), f.machine.num_cores() - 1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // subscription order, not registration races
  EXPECT_EQ(order[1], 2);
  ASSERT_EQ(dead_cores.size(), 1u);
  EXPECT_EQ(dead_cores[0], 13);
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0], 2u);
}

TEST(Membership, ConcurrentExclusionsCommitDistinctEpochsSerially) {
  fault::FaultPlan plan;
  plan.HaltCore(5, /*at=*/10'000);
  plan.HaltCore(9, /*at=*/10'000);
  ScopedInjector s(plan);
  MonitorFixture f;
  recover::MembershipService svc(f.sys);
  std::vector<std::uint64_t> epochs;
  std::vector<int> dead_cores;
  svc.Subscribe([&](const recover::View& v, int dead) -> Task<> {
    epochs.push_back(v.epoch);
    dead_cores.push_back(dead);
    co_return;
  });
  f.exec.Spawn([](MonitorFixture& fx) -> Task<> {
    co_await fx.exec.Delay(recover::Config().heartbeat_period * 8);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  // Two exclusions, two committed epochs, strictly increasing — the worker
  // serializes view changes rather than interleaving them.
  EXPECT_EQ(svc.view_changes_committed(), 2u);
  EXPECT_EQ(svc.view().epoch, 3u);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 2u);
  EXPECT_EQ(epochs[1], 3u);
  ASSERT_EQ(dead_cores.size(), 2u);
  EXPECT_NE(dead_cores[0], dead_cores[1]);
  for (int dead : dead_cores) {
    EXPECT_TRUE(dead == 5 || dead == 9) << "unexpected dead core " << dead;
    EXPECT_FALSE(svc.view().live[static_cast<std::size_t>(dead)]);
  }
  EXPECT_EQ(svc.view().NumLive(), f.machine.num_cores() - 2);
}

// --- HTTP admission / overload policy ---

const net::MacAddr kSrvMac{0x02, 0, 0, 0, 0, 0x01};
const net::MacAddr kCliMac{0x02, 0, 0, 0, 0, 0x02};
constexpr Ipv4Addr kSrvIp = MakeIp(10, 1, 0, 1);
constexpr Ipv4Addr kCliIp = MakeIp(10, 1, 0, 2);

struct AdmissionFixture {
  AdmissionFixture()
      : machine(exec, hw::Amd2x2()),
        server_stack(machine, 0, kSrvIp, kSrvMac),
        client_stack(machine, 2, kCliIp, kCliMac),
        server(machine, server_stack, 80) {
    server_stack.AddArp(kCliIp, kCliMac);
    client_stack.AddArp(kSrvIp, kSrvMac);
    server_stack.SetOutput([this](Packet p) -> Task<> {
      co_await client_stack.Input(std::move(p));
    });
    client_stack.SetOutput([this](Packet p) -> Task<> {
      co_await server_stack.Input(std::move(p));
    });
  }

  // `count` clients, staggered so connection order is deterministic; returns
  // each client's full reply.
  std::vector<std::string> RunClients(int count) {
    std::vector<std::string> replies(static_cast<std::size_t>(count));
    exec.Spawn(server.Serve());
    for (int i = 0; i < count; ++i) {
      exec.Spawn([](AdmissionFixture& fx, int idx, std::string& out) -> Task<> {
        co_await fx.exec.Delay(static_cast<Cycles>(idx) * 5'000);
        net::NetStack::TcpConn* conn = co_await fx.client_stack.TcpConnect(kSrvIp, 80);
        co_await fx.client_stack.TcpSend(*conn, "GET /index.html HTTP/1.0\r\n\r\n");
        for (;;) {
          auto chunk = co_await conn->Read();
          if (chunk.empty() && conn->peer_closed) {
            break;
          }
          out.append(chunk.begin(), chunk.end());
        }
      }(*this, i, replies[static_cast<std::size_t>(i)]));
    }
    exec.Run();
    return replies;
  }

  static int CountPrefix(const std::vector<std::string>& replies,
                         const std::string& prefix) {
    int n = 0;
    for (const std::string& r : replies) {
      n += (r.rfind(prefix, 0) == 0) ? 1 : 0;
    }
    return n;
  }

  sim::Executor exec;
  hw::Machine machine;
  net::NetStack server_stack;
  net::NetStack client_stack;
  apps::HttpServer server;
};

TEST(Admission, FullQueueSheds503ImmediatelyAndEveryClientGetsAnAnswer) {
  AdmissionFixture f;
  f.server.SetAdmission({/*workers=*/1, /*max_pending=*/1, /*queue_deadline=*/0});
  std::vector<std::string> replies = f.RunClients(4);
  const int ok = AdmissionFixture::CountPrefix(replies, "HTTP/1.0 200");
  const int shed = AdmissionFixture::CountPrefix(replies, "HTTP/1.0 503");
  // No client is left hanging: every connection is answered, served or shed.
  EXPECT_EQ(ok + shed, 4);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(f.server.requests_served(), static_cast<std::uint64_t>(ok));
  EXPECT_EQ(f.server.shed_queue_full(), static_cast<std::uint64_t>(shed));
  EXPECT_EQ(f.server.shed_deadline(), 0u);
}

TEST(Admission, StaleQueuedConnectionsAreShedAtDequeueNotServedLate) {
  AdmissionFixture f;
  // Deep queue, tight deadline: nothing is refused at the door, but anything
  // that waited behind a full request_cost (60k) is shed when dequeued.
  f.server.SetAdmission({/*workers=*/1, /*max_pending=*/8, /*queue_deadline=*/40'000});
  std::vector<std::string> replies = f.RunClients(4);
  const int ok = AdmissionFixture::CountPrefix(replies, "HTTP/1.0 200");
  const int shed = AdmissionFixture::CountPrefix(replies, "HTTP/1.0 503");
  EXPECT_EQ(ok + shed, 4);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(f.server.shed_queue_full(), 0u);
  EXPECT_EQ(f.server.shed_deadline(), static_cast<std::uint64_t>(shed));
}

// --- DB replica failover ---

TEST(DbFailover, CoreFailureRepointsToTheNearestFollowingLiveReplica) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  apps::Database source;
  apps::PopulateTpcw(&source, 50);
  apps::DbReplicaCluster cluster(machine, source, {{0, 1}, {4, 5}, {8, 9}});
  for (int sh = 0; sh < 3; ++sh) {
    exec.Spawn(cluster.Serve(sh));
  }
  std::string before;
  std::string after;
  exec.Spawn([](apps::DbReplicaCluster& c, std::string& pre, std::string& post) -> Task<> {
    pre = co_await c.Query(1, apps::TpcwQuery(7));
    // Shard 1's replica core dies: membership hands the cluster the dead core.
    std::vector<int> repointed = c.HandleCoreFailure(5);
    EXPECT_EQ(repointed.size(), 1u);
    if (!repointed.empty()) {
      EXPECT_EQ(repointed[0], 1);
    }
    EXPECT_TRUE(c.replica_dead(1));
    EXPECT_EQ(c.redirect(1), 2);  // nearest following live replica
    EXPECT_EQ(c.redirect(0), 0);  // untouched shards stay home
    EXPECT_EQ(c.redirect(2), 2);
    post = co_await c.Query(1, apps::TpcwQuery(7));
    co_await c.Shutdown();
  }(cluster, before, after));
  exec.Run();
  EXPECT_FALSE(before.empty());
  EXPECT_EQ(before, after);  // the stand-in replica answers identically
  // The redirected query was served by replica 2, not the dead replica 1.
  EXPECT_EQ(cluster.queries_served(1), 1u);
  EXPECT_EQ(cluster.queries_served(2), 1u);
}

TEST(DbFailover, RespawnRestoresTheHomeReplicaWithAFreshIncarnation) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  apps::Database source;
  apps::PopulateTpcw(&source, 50);
  apps::DbReplicaCluster cluster(machine, source, {{0, 1}, {4, 5}, {8, 9}});
  for (int sh = 0; sh < 3; ++sh) {
    exec.Spawn(cluster.Serve(sh));
  }
  std::string answer;
  exec.Spawn([](hw::Machine& m, apps::DbReplicaCluster& c, std::string& out) -> Task<> {
    (void)c.HandleCoreFailure(5);
    const std::uint64_t inc_before = c.incarnation(1);
    const bool ok = co_await c.Respawn(/*shard=*/1, /*spare_db_core=*/13);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(c.replica_dead(1));
    EXPECT_EQ(c.redirect(1), 1);  // pointed home again
    EXPECT_EQ(c.incarnation(1), inc_before + 1);
    EXPECT_EQ(c.respawns(), 1u);
    EXPECT_EQ(c.placement(1).db_core, 13);
    m.exec().Spawn(c.Serve(1));  // the replacement replica's server process
    out = co_await c.Query(1, apps::TpcwQuery(7));
    co_await c.Shutdown();
  }(machine, cluster, answer));
  exec.Run();
  EXPECT_NE(answer.find("item-7"), std::string::npos);
  // Served by the respawned home replica (fresh Shard, fresh counter).
  EXPECT_EQ(cluster.queries_served(1), 1u);
}

TEST(DbFailover, RespawnCopiesTheLiveDonorAndGatesQueriesUntilCaughtUp) {
  // Two regressions from the store PR's bugfix sweep, pinned together:
  // 1. Respawn used to copy the construction-time source_, silently
  //    resurrecting the boot image — rows the donor gained since boot
  //    vanished from the replacement with no error.
  // 2. The replacement was installed before its state transfer completed and
  //    would serve the stale snapshot; a query routed to it mid-transfer must
  //    instead wait on the caught-up gate.
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  apps::Database source;
  apps::PopulateTpcw(&source, 50);
  apps::DbReplicaCluster cluster(machine, source, {{0, 1}, {4, 5}, {8, 9}});
  for (int sh = 0; sh < 3; ++sh) {
    exec.Spawn(cluster.Serve(sh));
  }
  std::string answer;
  bool respawn_ok = false;
  exec.Spawn([](hw::Machine& m, apps::DbReplicaCluster& c, std::string& out,
                bool& ok) -> Task<> {
    (void)c.HandleCoreFailure(5);  // shard 1 dies; redirect -> shard 2
    EXPECT_EQ(c.redirect(1), 2);
    // The donor diverges from the boot image before the respawn: the
    // replacement must end up with THIS row, not the source_ snapshot.
    c.replica_db_for_test(2).Exec(
        "INSERT INTO items VALUES (999, 'item-999', 0, 1, 1)");
    m.exec().Spawn([](hw::Machine& m2, apps::DbReplicaCluster& c2, bool& ok2) -> Task<> {
      ok2 = co_await c2.Respawn(/*shard=*/1, /*spare_db_core=*/13);
      m2.exec().Spawn(c2.Serve(1));
    }(m, c, ok));
    co_await m.exec().Delay(1'000);  // the respawn is now mid-transfer
    // The donor dies too: shards whose redirect pointed at it re-resolve, and
    // shard 1's lands on the freshly installed (NOT yet caught-up) replica.
    (void)c.HandleCoreFailure(9);
    EXPECT_EQ(c.redirect(1), 1);
    EXPECT_FALSE(c.replica_caught_up(1));
    // This query reaches the gated replica mid-transfer: it must wait for the
    // catch-up, then serve the donor's diverged row.
    out = co_await c.Query(1, apps::TpcwQuery(999));
    co_await c.Shutdown();
  }(machine, cluster, answer, respawn_ok));
  exec.Run();
  EXPECT_TRUE(respawn_ok);
  EXPECT_TRUE(cluster.replica_caught_up(1));
  EXPECT_NE(answer.find("item-999"), std::string::npos)
      << "respawned replica served the boot image, not the donor's live state";
  EXPECT_EQ(cluster.queries_served(1), 1u);
}

// --- RST paths: unknown flows and abandoned handshakes ---

Packet MidFlowAck(Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t src_port,
                  std::uint16_t dst_port, std::uint32_t seq, std::uint32_t ack,
                  const std::string& payload) {
  net::EthHeader eth{kMacB, kMacA, net::kEtherTypeIpv4};
  net::IpHeader ip;
  ip.protocol = net::kIpProtoTcp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  net::TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags.ack = true;
  return net::BuildTcpFrame(eth, ip, tcp,
                            reinterpret_cast<const std::uint8_t*>(payload.data()),
                            payload.size());
}

TEST(FailoverRst, UnknownFlowSegmentDrawsRstOnlyWhenOptedInUnderInjection) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  net::NetStack stack(m, 0, kIpB, kMacB);
  stack.AddArp(kIpA, kMacA);
  stack.TcpListen(80);
  std::vector<Packet> outs;
  stack.SetOutput([&outs](Packet p) -> Task<> {
    outs.push_back(std::move(p));
    co_return;
  });
  // A mid-flow segment from a connection this stack has never seen — what a
  // survivor receives the instant the RETA re-steers a dead shard's flow.
  Packet orphan = MidFlowAck(kIpA, kIpB, 5555, 80, /*seq=*/1000, /*ack=*/2000, "GET");
  // Opted in but no injector: plain runs must not schedule the extra send.
  stack.SetSendRstForUnknown(true);
  exec.Spawn([](net::NetStack& st, Packet f) -> Task<> {
    co_await st.Input(std::move(f));
  }(stack, orphan));
  exec.Run();
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(stack.tcp_rsts_sent(), 0u);
  {
    fault::FaultPlan plan;
    ScopedInjector s(plan);
    exec.Spawn([](net::NetStack& st, Packet f) -> Task<> {
      co_await st.Input(std::move(f));
    }(stack, orphan));
    exec.Run();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(stack.tcp_rsts_sent(), 1u);
    auto parsed = net::ParseFrame(outs[0]);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->tcp.has_value());
    EXPECT_TRUE(parsed->tcp->flags.rst);
    EXPECT_EQ(parsed->tcp->src_port, 80);
    EXPECT_EQ(parsed->tcp->dst_port, 5555);
    EXPECT_EQ(parsed->tcp->seq, 2000u);       // takes the segment's ack
    EXPECT_EQ(parsed->tcp->ack, 1000u + 3u);  // seq + payload length
    // Without the opt-in the same segment is silently dropped (injector or
    // not): the RST path is a failover behaviour, never a default one.
    outs.clear();
    stack.SetSendRstForUnknown(false);
    exec.Spawn([](net::NetStack& st, Packet f) -> Task<> {
      co_await st.Input(std::move(f));
    }(stack, orphan));
    exec.Run();
    EXPECT_TRUE(outs.empty());
    EXPECT_EQ(stack.tcp_rsts_sent(), 1u);
  }
}

TEST(FailoverRst, LateSynAckForAnAbandonedHandshakeIsAnsweredWithRst) {
  fault::FaultPlan plan;
  ScopedInjector s(plan);
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  net::NetStack client(m, 0, kIpA, kMacA);
  client.AddArp(kIpB, kMacB);
  std::vector<Packet> outs;
  client.SetOutput([&outs](Packet p) -> Task<> {
    outs.push_back(std::move(p));
    co_return;
  });
  bool connect_failed = false;
  exec.Spawn([](net::NetStack& cli, std::vector<Packet>& sent, bool& failed) -> Task<> {
    // The SYN goes nowhere (black-holed server): the bounded connect gives up
    // and abandons the half-open connection in place.
    net::NetStack::TcpConn* conn =
        co_await cli.TcpConnect(kIpB, 80, /*timeout=*/100'000);
    failed = (conn == nullptr);
    if (sent.empty()) {
      ADD_FAILURE() << "bounded connect never emitted a SYN";
      co_return;
    }
    auto syn = net::ParseFrame(sent.front());
    if (!syn.has_value() || !syn->tcp.has_value() || !syn->tcp->flags.syn) {
      ADD_FAILURE() << "first emitted frame was not a SYN";
      co_return;
    }
    // A server that was slow, not dead, answers the (re)transmitted SYN late.
    net::EthHeader eth{kMacA, kMacB, net::kEtherTypeIpv4};
    net::IpHeader ip;
    ip.protocol = net::kIpProtoTcp;
    ip.src = kIpB;
    ip.dst = kIpA;
    net::TcpHeader synack;
    synack.src_port = 80;
    synack.dst_port = syn->tcp->src_port;
    synack.seq = 0xBEEF;
    synack.ack = syn->tcp->seq + 1;
    synack.flags.syn = true;
    synack.flags.ack = true;
    const std::size_t outs_before = sent.size();
    co_await cli.Input(net::BuildTcpFrame(eth, ip, synack, nullptr, 0));
    // The abandoned connection answers with RST instead of completing a
    // half-open handshake nobody will ever use (which would pin a server
    // admission worker forever).
    EXPECT_EQ(sent.size(), outs_before + 1);
    auto rst = net::ParseFrame(sent.back());
    if (!rst.has_value() || !rst->tcp.has_value()) {
      ADD_FAILURE() << "no parseable answer to the late SYN-ACK";
      co_return;
    }
    EXPECT_TRUE(rst->tcp->flags.rst);
    EXPECT_EQ(rst->tcp->seq, syn->tcp->seq + 1);  // the SYN-ACK's ack field
  }(client, outs, connect_failed));
  exec.Run();
  EXPECT_TRUE(connect_failed);
  EXPECT_EQ(client.tcp_rsts_sent(), 1u);
  // Regression for the abandonment path: the retransmit timer spawned for the
  // SYN must find the connection alive (never erased) and exit cleanly.
  EXPECT_EQ(exec.pending_events(), 0u);
  EXPECT_EQ(exec.live_tasks(), 0u);
}

}  // namespace
}  // namespace mk
