// Determinism regression: one workload, one schedule.
//
// The executor guarantees that events tied at a timestamp dispatch in global
// insertion order (near-tier FIFO buckets; far-tier (time, sequence) heap;
// eager far-to-near migration), so an identical workload must produce a
// bit-identical run. The workload here is the Figure 8 shape — two-phase
// commit capability retypes driven by the monitors of an 8x4-core machine —
// because it exercises every scheduling path at once: URPC channels, LRPC
// endpoints, IPI fan-out, SKB-planned multicast, plain delays, and timed
// waits. Any change that perturbs event ordering (a queue rewrite, a new
// tie-break rule, a stray source of nondeterminism) fails this test.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/nic.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "skb/skb.h"
#include "trace/trace.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine), sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

struct RunResult {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::vector<Cycles> latencies;
};

Task<> RetypeOps(System& s, std::vector<caps::CapId> roots, int ncores,
                 std::vector<Cycles>& latencies) {
  for (caps::CapId root : roots) {
    auto r = co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               static_cast<std::uint16_t>(ncores));
    EXPECT_TRUE(r.committed);
    latencies.push_back(r.latency);
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

RunResult RunTwoPhaseCommitWorkload() {
  System s;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < 4; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  RunResult out;
  s.exec.Spawn(RetypeOps(s, roots, /*ncores=*/8, out.latencies));
  s.exec.Run();
  out.final_now = s.exec.now();
  out.events_dispatched = s.exec.events_dispatched();
  return out;
}

TEST(Determinism, TwoPhaseCommitRunsBitIdentically) {
  RunResult a = RunTwoPhaseCommitWorkload();
  RunResult b = RunTwoPhaseCommitWorkload();
  EXPECT_GT(a.final_now, 0u);
  EXPECT_GT(a.events_dispatched, 0u);
  ASSERT_EQ(a.latencies.size(), 4u);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.latencies, b.latencies);
}

// Tracing is an observer, never a perturbation: the workload must be
// bit-identical with no tracer, a tracer capturing everything, and a tracer
// whose runtime mask rejects everything (the third run pins the mask-test
// fast path; compile-time removal via -DMK_TRACE_ENABLED=0 is exercised by
// the CI matrix build). A tiny ring forces wraparound so overwrites are
// covered too.
TEST(Determinism, TracingDoesNotPerturbTheSchedule) {
  RunResult baseline = RunTwoPhaseCommitWorkload();

  trace::Tracer full(/*capacity_per_core=*/256, trace::kAllCategories);
  full.Install();
  RunResult traced = RunTwoPhaseCommitWorkload();
  full.Uninstall();
  if (trace::kCompiledCategories != 0) {
    EXPECT_GT(full.total_records(), 0u);
  }

  trace::Tracer masked(/*capacity_per_core=*/256, /*mask=*/0);
  masked.Install();
  RunResult masked_run = RunTwoPhaseCommitWorkload();
  masked.Uninstall();
  EXPECT_EQ(masked.total_records(), 0u);

  EXPECT_EQ(baseline.final_now, traced.final_now);
  EXPECT_EQ(baseline.events_dispatched, traced.events_dispatched);
  EXPECT_EQ(baseline.latencies, traced.latencies);
  EXPECT_EQ(baseline.final_now, masked_run.final_now);
  EXPECT_EQ(baseline.events_dispatched, masked_run.events_dispatched);
  EXPECT_EQ(baseline.latencies, masked_run.latencies);
}

// Fault injection is schedule-driven and seeded, so a fixed plan must replay
// bit-identically too — that is what makes an injected failure debuggable at
// all (MGSim's argument for deterministic fault schedules). Two fixtures: a
// core killed mid-2PC, and random NIC loss under a TCP transfer.

struct FaultRunResult {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::vector<Cycles> latencies;
  int attempts_total = 0;
  bool all_committed = true;
  bool killed_core_failed = false;
};

Task<> FaultRetypeOps(System& s, std::vector<caps::CapId> roots, FaultRunResult& out) {
  for (caps::CapId root : roots) {
    auto r = co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               /*ncores=*/8);
    out.all_committed = out.all_committed && r.committed;
    out.attempts_total += r.attempts;
    out.latencies.push_back(r.latency);
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

FaultRunResult RunKillOneCoreTwoPhaseWorkload() {
  // Core 5 participates in the 8-core collective and dies mid-2PC (the halt
  // cycle lands inside the second retype's prepare phase): the in-flight
  // phase times out, the initiator presumes abort, the detector excludes the
  // corpse, and the remaining retypes commit among survivors.
  fault::FaultPlan plan;
  plan.HaltCore(5, /*at=*/100'000);
  fault::Injector inj(plan);
  inj.Install();
  FaultRunResult out;
  {
    System s;
    std::vector<caps::CapId> roots;
    for (int i = 0; i < 4; ++i) {
      roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
    }
    s.exec.Spawn(FaultRetypeOps(s, roots, out));
    s.exec.Run();
    out.final_now = s.exec.now();
    out.events_dispatched = s.exec.events_dispatched();
    out.killed_core_failed = s.sys.CoreFailed(5);
  }
  inj.Uninstall();
  return out;
}

struct NetRunResult {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::size_t bytes_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t frames_lost = 0;
};

constexpr net::MacAddr kMacA{0x02, 0, 0, 0, 0, 0xaa};
constexpr net::MacAddr kMacB{0x02, 0, 0, 0, 0, 0xbb};
constexpr net::Ipv4Addr kIpA = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kIpB = net::MakeIp(10, 0, 0, 2);

NetRunResult RunLossyNetperfWorkload() {
  // The netperf shape (one-way TCP stream) over a link whose losses are the
  // plan's seeded RX-drop stream; go-back-N recovers every byte.
  fault::FaultPlan plan;
  plan.RandomRxLoss(/*rate=*/0.15, /*seed=*/7);
  fault::Injector inj(plan);
  inj.Install();
  NetRunResult out;
  {
    sim::Executor exec;
    hw::Machine machine(exec, hw::Amd2x2());
    net::NetStack a(machine, 0, kIpA, kMacA);
    net::NetStack b(machine, 2, kIpB, kMacB);
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    auto lossy = [&exec](net::NetStack& dst, net::Packet p) -> Task<> {
      if (fault::Injector::active()->ShouldDropRxFrame(exec.now())) {
        co_return;
      }
      co_await dst.Input(std::move(p));
    };
    a.SetOutput([&](net::Packet p) -> Task<> { co_await lossy(b, std::move(p)); });
    b.SetOutput([&](net::Packet p) -> Task<> { co_await lossy(a, std::move(p)); });
    auto& listener = b.TcpListen(80);
    exec.Spawn([](net::NetStack::Listener& l, std::size_t& received) -> Task<> {
      net::NetStack::TcpConn* conn = co_await l.Accept();
      while (received < 6000) {
        auto chunk = co_await conn->Read();
        if (chunk.empty() && conn->peer_closed) {
          break;
        }
        received += chunk.size();
      }
    }(listener, out.bytes_received));
    exec.Spawn([](net::NetStack& stack) -> Task<> {
      net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
      std::vector<std::uint8_t> payload(6000, 0x5a);
      co_await stack.TcpSend(*conn, payload.data(), payload.size());
    }(a));
    exec.Run();
    out.final_now = exec.now();
    out.events_dispatched = exec.events_dispatched();
    out.retransmits = a.tcp_retransmits() + b.tcp_retransmits();
    out.frames_lost = inj.injected(fault::FaultKind::kNicRxDrop);
  }
  inj.Uninstall();
  return out;
}

TEST(Determinism, KillOneCoreFaultPlanReplaysBitIdentically) {
  FaultRunResult a = RunKillOneCoreTwoPhaseWorkload();
  FaultRunResult b = RunKillOneCoreTwoPhaseWorkload();
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.attempts_total, b.attempts_total);
  // The fig8 recovery claim: every retype committed among the survivors via
  // presumed abort, the dead core was detected, and at least one round was
  // a timed-out attempt that had to be retried.
  EXPECT_TRUE(a.all_committed);
  EXPECT_TRUE(a.killed_core_failed);
  ASSERT_EQ(a.latencies.size(), 4u);
  EXPECT_GT(a.attempts_total, 4);
}

TEST(Determinism, NicLossFaultPlanReplaysBitIdentically) {
  NetRunResult a = RunLossyNetperfWorkload();
  NetRunResult b = RunLossyNetperfWorkload();
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  // Loss really happened and recovery really delivered everything.
  EXPECT_EQ(a.bytes_received, 6000u);
  EXPECT_GT(a.frames_lost, 0u);
  EXPECT_GT(a.retransmits, 0u);
}

// --- Multi-queue NIC serving: the sec54_scaleout shape, replayed ---

// A miniature of the scale-out bench: one multi-queue NIC, two serving
// stacks (one per RX queue, IRQs routed to their cores), a client stack on
// the wire side, TCP echo request/response across ephemeral-port flows that
// RSS spreads over the queues. Everything that could perturb ordering is in
// play: per-queue rings, IRQ latency timers, driver mask/unmask loops, DMA
// pacing, and TX multiplexing onto one wire.
struct ScaleoutRunResult {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t replies = 0;
  std::uint64_t frames_sent = 0;
  std::vector<std::uint64_t> per_queue;  // rx, tx interleaved per queue
  bool operator==(const ScaleoutRunResult&) const = default;
};

ScaleoutRunResult RunMultiQueueServingWorkload() {
  const net::MacAddr kSrvMac{0x02, 0, 0, 0, 0, 0x01};
  const net::MacAddr kCliMac{0x02, 0, 0, 0, 0, 0x77};
  constexpr net::Ipv4Addr kSrvIp = net::MakeIp(10, 0, 0, 1);
  constexpr net::Ipv4Addr kCliIp = net::MakeIp(10, 0, 0, 77);

  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  net::SimNic::Config cfg;
  cfg.queues = 2;
  cfg.irq_cores = {0, 4};
  cfg.irq_latency = machine.spec().cost.ipi_wire;
  cfg.rx_descs = 64;
  cfg.tx_descs = 64;
  cfg.gbps = 10.0;
  net::SimNic nic(machine, cfg);

  struct Harness {
    Harness(hw::Machine& m, net::SimNic& n, net::Ipv4Addr srv_ip,
            net::MacAddr srv_mac, net::Ipv4Addr cli_ip, net::MacAddr cli_mac)
        : nic(n),
          web0(m, 0, srv_ip, srv_mac),
          web1(m, 4, srv_ip, srv_mac),
          client(m, 12, cli_ip, cli_mac) {
      web0.AddArp(cli_ip, cli_mac);
      web1.AddArp(cli_ip, cli_mac);
      client.AddArp(srv_ip, srv_mac);
      web0.SetOutput([this](net::Packet p) -> Task<> {
        (void)co_await nic.DriverTxPush(0, std::move(p), 0);
      });
      web1.SetOutput([this](net::Packet p) -> Task<> {
        (void)co_await nic.DriverTxPush(4, std::move(p), 1);
      });
      client.SetOutput([this](net::Packet p) -> Task<> {
        co_await nic.InjectFromWire(std::move(p));
      });
    }
    net::SimNic& nic;
    net::NetStack web0;
    net::NetStack web1;
    net::NetStack client;
    bool stop = false;
  };
  Harness h(machine, nic, kSrvIp, kSrvMac, kCliIp, kCliMac);

  // Echo servers: read one chunk, send it back, close.
  auto serve = [](net::NetStack& stack, net::NetStack::Listener& l) -> Task<> {
    for (;;) {
      net::NetStack::TcpConn* conn = co_await l.Accept();
      auto chunk = co_await conn->Read();
      if (!chunk.empty()) {
        co_await stack.TcpSend(*conn, chunk.data(), chunk.size());
      }
      co_await stack.TcpClose(*conn);
    }
  };
  exec.Spawn(serve(h.web0, h.web0.TcpListen(80)));
  exec.Spawn(serve(h.web1, h.web1.TcpListen(80)));

  // Per-queue drivers, the bench's mask/poll/unmask loop.
  auto driver = [](hw::Machine& m, Harness& hh, net::NetStack& stack, int core,
                   int queue) -> Task<> {
    while (!hh.stop) {
      if (hh.nic.RxReady(queue)) {
        hh.nic.SetInterruptsEnabled(queue, false);
        while (hh.nic.RxReady(queue)) {
          auto frame = co_await hh.nic.DriverRxPop(core, queue);
          if (frame.has_value()) {
            co_await m.Compute(core, 1400);
            co_await stack.Input(std::move(*frame));
          }
        }
        hh.nic.SetInterruptsEnabled(queue, true);
        continue;
      }
      (void)co_await hh.nic.rx_irq(queue).WaitTimeout(20'000);
    }
  };
  exec.Spawn(driver(machine, h, h.web0, 0, 0));
  exec.Spawn(driver(machine, h, h.web1, 4, 1));

  // Wire sink: NIC TX -> client stack.
  exec.Spawn([](Harness& hh) -> Task<> {
    while (!hh.stop) {
      net::Packet p;
      while (hh.nic.WirePop(&p)) {
        co_await hh.client.Input(std::move(p));
      }
      co_await hh.nic.wire_out_ready().Wait();
    }
  }(h));

  // Client: sequential echo requests; ephemeral ports walk the RSS space.
  ScaleoutRunResult r;
  exec.Spawn([](Harness& hh, ScaleoutRunResult& out) -> Task<> {
    for (int i = 0; i < 12; ++i) {
      net::NetStack::TcpConn* conn = co_await hh.client.TcpConnect(kSrvIp, 80);
      std::vector<std::uint8_t> ping(64, static_cast<std::uint8_t>(i));
      co_await hh.client.TcpSend(*conn, ping.data(), ping.size());
      std::size_t got = 0;
      while (got < ping.size()) {
        auto chunk = co_await conn->Read();
        if (chunk.empty() && conn->peer_closed) {
          break;
        }
        got += chunk.size();
      }
      if (got == ping.size()) {
        ++out.replies;
      }
      co_await hh.client.TcpClose(*conn);
    }
    hh.stop = true;
    hh.nic.wire_out_ready().Signal();
  }(h, r));

  exec.Run();
  r.final_now = exec.now();
  r.events_dispatched = exec.events_dispatched();
  r.frames_sent = nic.frames_sent();
  for (int q = 0; q < nic.num_queues(); ++q) {
    r.per_queue.push_back(nic.queue_stats(q).rx_frames);
    r.per_queue.push_back(nic.queue_stats(q).tx_frames);
  }
  return r;
}

TEST(Determinism, MultiQueueServingReplaysBitIdentically) {
  ScaleoutRunResult a = RunMultiQueueServingWorkload();
  ScaleoutRunResult b = RunMultiQueueServingWorkload();
  EXPECT_EQ(a, b);
  // The workload did what it claims: every echo came back, and both queues
  // carried traffic (ephemeral ports spread across the RSS space).
  EXPECT_EQ(a.replies, 12u);
  ASSERT_EQ(a.per_queue.size(), 4u);
  EXPECT_GT(a.per_queue[0], 0u);  // queue 0 rx
  EXPECT_GT(a.per_queue[2], 0u);  // queue 1 rx
}

}  // namespace
}  // namespace mk
