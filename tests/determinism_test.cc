// Determinism regression: one workload, one schedule.
//
// The executor guarantees that events tied at a timestamp dispatch in global
// insertion order (near-tier FIFO buckets; far-tier (time, sequence) heap;
// eager far-to-near migration), so an identical workload must produce a
// bit-identical run. The workload here is the Figure 8 shape — two-phase
// commit capability retypes driven by the monitors of an 8x4-core machine —
// because it exercises every scheduling path at once: URPC channels, LRPC
// endpoints, IPI fan-out, SKB-planned multicast, plain delays, and timed
// waits. Any change that perturbs event ordering (a queue rewrite, a new
// tie-break rule, a stray source of nondeterminism) fails this test.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"
#include "trace/trace.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine), sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

struct RunResult {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::vector<Cycles> latencies;
};

Task<> RetypeOps(System& s, std::vector<caps::CapId> roots, int ncores,
                 std::vector<Cycles>& latencies) {
  for (caps::CapId root : roots) {
    auto r = co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               static_cast<std::uint16_t>(ncores));
    EXPECT_TRUE(r.committed);
    latencies.push_back(r.latency);
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

RunResult RunTwoPhaseCommitWorkload() {
  System s;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < 4; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  RunResult out;
  s.exec.Spawn(RetypeOps(s, roots, /*ncores=*/8, out.latencies));
  s.exec.Run();
  out.final_now = s.exec.now();
  out.events_dispatched = s.exec.events_dispatched();
  return out;
}

TEST(Determinism, TwoPhaseCommitRunsBitIdentically) {
  RunResult a = RunTwoPhaseCommitWorkload();
  RunResult b = RunTwoPhaseCommitWorkload();
  EXPECT_GT(a.final_now, 0u);
  EXPECT_GT(a.events_dispatched, 0u);
  ASSERT_EQ(a.latencies.size(), 4u);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.latencies, b.latencies);
}

// Tracing is an observer, never a perturbation: the workload must be
// bit-identical with no tracer, a tracer capturing everything, and a tracer
// whose runtime mask rejects everything (the third run pins the mask-test
// fast path; compile-time removal via -DMK_TRACE_ENABLED=0 is exercised by
// the CI matrix build). A tiny ring forces wraparound so overwrites are
// covered too.
TEST(Determinism, TracingDoesNotPerturbTheSchedule) {
  RunResult baseline = RunTwoPhaseCommitWorkload();

  trace::Tracer full(/*capacity_per_core=*/256, trace::kAllCategories);
  full.Install();
  RunResult traced = RunTwoPhaseCommitWorkload();
  full.Uninstall();
  if (trace::kCompiledCategories != 0) {
    EXPECT_GT(full.total_records(), 0u);
  }

  trace::Tracer masked(/*capacity_per_core=*/256, /*mask=*/0);
  masked.Install();
  RunResult masked_run = RunTwoPhaseCommitWorkload();
  masked.Uninstall();
  EXPECT_EQ(masked.total_records(), 0u);

  EXPECT_EQ(baseline.final_now, traced.final_now);
  EXPECT_EQ(baseline.events_dispatched, traced.events_dispatched);
  EXPECT_EQ(baseline.latencies, traced.latencies);
  EXPECT_EQ(baseline.final_now, masked_run.final_now);
  EXPECT_EQ(baseline.events_dispatched, masked_run.events_dispatched);
  EXPECT_EQ(baseline.latencies, masked_run.latencies);
}

}  // namespace
}  // namespace mk
