// Tests for the open-addressed connection table: load-factor growth,
// tombstone reuse on the probe path, pointer stability across rehashes, and
// a 100k-op churn fuzz against a reference map with zero-leak accounting.
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "net/conn_table.h"

namespace mk::net {
namespace {

struct Payload {
  std::uint64_t tag = 0;
};

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }
};

TEST(ConnTable, InsertFindErase) {
  ConnTable<Payload> t;
  EXPECT_EQ(t.capacity(), 1024u);
  Payload* p = t.Insert(42, std::make_unique<Payload>(Payload{7}));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(t.Find(42), p);
  EXPECT_EQ(t.Find(43), nullptr);
  EXPECT_EQ(t.live(), 1u);
  std::unique_ptr<Payload> out = t.Erase(42);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->tag, 7u);
  EXPECT_EQ(t.Find(42), nullptr);
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.tombstones(), 1u);
  EXPECT_EQ(t.Erase(42), nullptr);  // double erase is a no-op
}

TEST(ConnTable, GrowsByDoublingUnderLoad) {
  ConnTable<Payload> t;
  const std::size_t initial = t.capacity();
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    t.Insert(k, std::make_unique<Payload>(Payload{k}));
  }
  EXPECT_GE(t.capacity(), 2 * initial);
  EXPECT_GE(t.rehashes(), 1u);
  EXPECT_EQ(t.live(), 4000u);
  EXPECT_EQ(t.peak_live(), 4000u);
  // Every key still findable after the rehashes, with its value intact.
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    Payload* p = t.Find(k);
    ASSERT_NE(p, nullptr) << "key " << k;
    EXPECT_EQ(p->tag, k);
  }
}

TEST(ConnTable, PointersStableAcrossRehash) {
  ConnTable<Payload> t;
  std::vector<std::pair<std::uint64_t, Payload*>> held;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    held.push_back({k, t.Insert(k, std::make_unique<Payload>(Payload{k}))});
  }
  const std::uint64_t before = t.rehashes();
  for (std::uint64_t k = 1000; k < 6000; ++k) {
    t.Insert(k, std::make_unique<Payload>(Payload{k}));
  }
  ASSERT_GT(t.rehashes(), before);  // the fill forced at least one rehash
  for (auto [k, p] : held) {
    EXPECT_EQ(t.Find(k), p) << "pointer for key " << k << " moved";
    EXPECT_EQ(p->tag, k);
  }
}

TEST(ConnTable, TombstonesReusedAndSweptByRehash) {
  ConnTable<Payload> t;
  // Fill-and-erase leaves a trail of tombstones.
  for (std::uint64_t k = 1; k <= 500; ++k) {
    t.Insert(k, std::make_unique<Payload>(Payload{k}));
  }
  for (std::uint64_t k = 1; k <= 500; ++k) {
    t.Erase(k);
  }
  EXPECT_EQ(t.tombstones(), 500u);
  // Reinsert the same keys: every insert lands on its old probe path and
  // must reuse the tombstone there instead of consuming a fresh slot.
  for (std::uint64_t k = 1; k <= 500; ++k) {
    t.Insert(k, std::make_unique<Payload>(Payload{k + 1000}));
  }
  EXPECT_EQ(t.tombstones(), 0u);
  EXPECT_EQ(t.live(), 500u);
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_NE(t.Find(k), nullptr);
    EXPECT_EQ(t.Find(k)->tag, k + 1000);
  }
}

// Sustained tombstone pressure without net growth must rehash (sweeping the
// dead slots) rather than letting probe chains decay toward O(capacity).
TEST(ConnTable, ChurnDoesNotAccumulateTombstonesForever) {
  ConnTable<Payload> t;
  std::uint64_t next = 1;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 300; ++i) {
      t.Insert(next++, std::make_unique<Payload>());
    }
    for (std::uint64_t k = next - 300; k < next; ++k) {
      t.Erase(k);
    }
  }
  EXPECT_EQ(t.live(), 0u);
  // The books balance and the dead never outgrow the table.
  EXPECT_EQ(t.inserts(), t.erases());
  EXPECT_LT(t.tombstones(), t.capacity());
  EXPECT_GE(t.rehashes(), 1u);
}

TEST(ConnTable, ChurnFuzzAgainstReferenceMap) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ConnTable<Payload> t;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(seed);
    std::vector<std::uint64_t> keys;  // insertion-ordered candidates
    for (int op = 0; op < 100'000; ++op) {
      std::uint64_t roll = rng.Below(100);
      if (roll < 50) {
        std::uint64_t key = 1 + rng.Below(1u << 20);
        if (ref.find(key) != ref.end()) {
          continue;  // the stack never double-inserts a live 4-tuple
        }
        std::uint64_t tag = rng.Next();
        t.Insert(key, std::make_unique<Payload>(Payload{tag}));
        ref[key] = tag;
        keys.push_back(key);
      } else if (roll < 80 && !keys.empty()) {
        std::uint64_t key = keys[rng.Below(keys.size())];
        std::unique_ptr<Payload> got = t.Erase(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr) << "seed " << seed << " lost key " << key;
          EXPECT_EQ(got->tag, it->second);
          ref.erase(it);
        }
      } else if (!keys.empty()) {
        std::uint64_t key = keys[rng.Below(keys.size())];
        Payload* got = t.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr) << "seed " << seed << " ghost key " << key;
        } else {
          ASSERT_NE(got, nullptr) << "seed " << seed << " lost key " << key;
          EXPECT_EQ(got->tag, it->second);
        }
      }
    }
    // Zero leaks, from the table's own books alone.
    EXPECT_EQ(t.live(), ref.size());
    EXPECT_EQ(t.inserts() - t.erases(), t.live());
    // Full sweep: everything the reference holds is still intact.
    for (const auto& [key, tag] : ref) {
      Payload* got = t.Find(key);
      ASSERT_NE(got, nullptr) << "seed " << seed;
      EXPECT_EQ(got->tag, tag);
    }
    // Drain and verify emptiness.
    for (const auto& [key, tag] : ref) {
      EXPECT_NE(t.Erase(key), nullptr);
    }
    EXPECT_EQ(t.live(), 0u);
    EXPECT_EQ(t.inserts(), t.erases());
  }
}

}  // namespace
}  // namespace mk::net
