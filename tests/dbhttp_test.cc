// Tests for the mini relational database and the HTTP server: parsing,
// malformed-input rejection, end-to-end serving over TCP, and the sharded
// read-only replica cluster.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/dbshard.h"
#include "apps/httpd.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "sim/random.h"

namespace mk::apps {
namespace {

using sim::Task;

Database MakeDb() {
  Database db;
  EXPECT_FALSE(db.Exec("CREATE TABLE items (i_id INT, i_title TEXT, i_cost INT)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (1, 'alpha', 500)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (2, 'beta', 300)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (3, 'gamma', 700)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (4, 'delta', 300)"));
  return db;
}

Database::ResultSet MustQuery(const Database& db, const std::string& sql) {
  auto result = db.Query(sql);
  EXPECT_TRUE(std::holds_alternative<Database::ResultSet>(result))
      << sql << ": " << std::get<DbError>(result).message;
  return std::get<Database::ResultSet>(result);
}

TEST(Db, SelectStarReturnsAllRowsAndColumns) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT * FROM items");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"I_ID", "I_TITLE", "I_COST"}));
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows_scanned, 4u);
}

TEST(Db, WhereFiltersEveryOperator) {
  Database db = MakeDb();
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost = 300").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost != 300").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost < 500").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost <= 500").rows.size(), 3u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost > 500").rows.size(), 1u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost >= 500").rows.size(), 2u);
}

TEST(Db, WhereOnTextColumn) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT i_id FROM items WHERE i_title = 'beta'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 2);
}

TEST(Db, OrderByAndLimit) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT i_title FROM items ORDER BY i_cost DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0][0]), "gamma");
  EXPECT_EQ(std::get<std::string>(rs.rows[1][0]), "alpha");
  // Ascending with ties: stable order by insertion.
  auto asc = MustQuery(db, "SELECT i_id FROM items ORDER BY i_cost LIMIT 3");
  EXPECT_EQ(std::get<std::int64_t>(asc.rows[0][0]), 2);
  EXPECT_EQ(std::get<std::int64_t>(asc.rows[1][0]), 4);
}

TEST(Db, ErrorsAreReported) {
  Database db = MakeDb();
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("SELECT * FROM nope")));
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("SELECT bogus FROM items")));
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("DROP TABLE items")));
  EXPECT_TRUE(db.Exec("INSERT INTO items VALUES (1, 2)").has_value());    // arity
  EXPECT_TRUE(db.Exec("INSERT INTO items VALUES ('x', 'y', 'z')").has_value());  // types
  EXPECT_TRUE(db.Exec("CREATE TABLE items (a INT)").has_value());  // duplicate
}

TEST(Db, QuotedStringsWithSpacesAndEscapes) {
  Database db;
  ASSERT_FALSE(db.Exec("CREATE TABLE t (s TEXT)"));
  ASSERT_FALSE(db.Exec("INSERT INTO t VALUES ('it''s a test value')"));
  auto rs = MustQuery(db, "SELECT s FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0][0]), "it's a test value");
}

TEST(Db, TpcwPopulationAndQuery) {
  Database db;
  PopulateTpcw(&db, 100);
  EXPECT_EQ(db.TableRows("ITEMS"), 100u);
  EXPECT_TRUE(db.HasTable("AUTHORS"));
  auto rs = MustQuery(db, TpcwQuery(42));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 42);
  EXPECT_EQ(rs.rows_scanned, 100u);  // full scan: the cost basis
}

TEST(Db, UpdateRewritesMatchingRowsInPlace) {
  Database db = MakeDb();
  EXPECT_FALSE(db.Exec("UPDATE items SET i_cost = 999 WHERE i_title = 'beta'"));
  EXPECT_EQ(db.rows_changed(), 1u);
  EXPECT_EQ(db.last_exec_scanned(), 4u);  // full scan: the cost basis
  auto rs = MustQuery(db, "SELECT i_cost FROM items WHERE i_id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 999);
  EXPECT_EQ(db.TableRows("ITEMS"), 4u);  // update never changes cardinality
  // Multi-column SET, and no WHERE means every row.
  EXPECT_FALSE(db.Exec("UPDATE items SET i_cost = 1, i_title = 'flat'"));
  EXPECT_EQ(db.rows_changed(), 4u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost = 1").rows.size(), 4u);
  // A SET referencing the WHERE column must not see its own writes (the
  // in-place-update vs. scan aliasing bug): bump exactly the 300s, once.
  Database db2 = MakeDb();
  EXPECT_FALSE(db2.Exec("UPDATE items SET i_cost = 300 WHERE i_cost = 500"));
  EXPECT_EQ(db2.rows_changed(), 1u);
  EXPECT_EQ(MustQuery(db2, "SELECT i_id FROM items WHERE i_cost = 300").rows.size(), 3u);
}

TEST(Db, DeleteRemovesMatchingRows) {
  Database db = MakeDb();
  EXPECT_FALSE(db.Exec("DELETE FROM items WHERE i_cost = 300"));
  EXPECT_EQ(db.rows_changed(), 2u);
  EXPECT_EQ(db.TableRows("ITEMS"), 2u);
  EXPECT_FALSE(db.Exec("DELETE FROM items WHERE i_cost = 300"));  // idempotent
  EXPECT_EQ(db.rows_changed(), 0u);
  EXPECT_FALSE(db.Exec("DELETE FROM items"));  // no WHERE: empty the table
  EXPECT_EQ(db.rows_changed(), 2u);
  EXPECT_EQ(db.TableRows("ITEMS"), 0u);
  EXPECT_TRUE(db.Exec("DELETE FROM nope").has_value());
}

TEST(Db, MutationLedgerCountsOnlySuccessfulInserts) {
  Database db = MakeDb();
  EXPECT_EQ(db.rows_inserted(), 4u);  // MakeDb's fixture rows
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (5, 'eps', 100)"));
  EXPECT_EQ(db.rows_inserted(), 5u);
  EXPECT_TRUE(db.Exec("INSERT INTO items VALUES (6, 'bad')").has_value());
  EXPECT_EQ(db.rows_inserted(), 5u);  // rejected statements leave no trace
  EXPECT_EQ(db.TableRows("ITEMS"), 5u);
}

TEST(Db, PerStatementCountersResetBetweenStatements) {
  // rows_changed/last_exec_scanned are per-statement: an INSERT (or a failed
  // statement) after an UPDATE must not report the UPDATE's stale counts —
  // the store charges simulated compute from last_exec_scanned, so leakage
  // skews every subsequent write's cost.
  Database db = MakeDb();
  EXPECT_FALSE(db.Exec("UPDATE items SET i_cost = 999 WHERE i_title = 'beta'"));
  EXPECT_EQ(db.rows_changed(), 1u);
  EXPECT_EQ(db.last_exec_scanned(), 4u);
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (9, 'eta', 5)"));
  EXPECT_EQ(db.rows_changed(), 0u);
  EXPECT_EQ(db.last_exec_scanned(), 0u);
  EXPECT_FALSE(db.Exec("DELETE FROM items WHERE i_cost = 999"));
  EXPECT_EQ(db.rows_changed(), 1u);
  EXPECT_TRUE(db.Exec("DELETE FROM nope").has_value());  // failed statement
  EXPECT_EQ(db.rows_changed(), 0u);
  EXPECT_EQ(db.last_exec_scanned(), 0u);
}

TEST(Db, IntegerLiteralOverflowIsRejectedNotWrapped) {
  // Pre-fix, stoll threw (or UB'd) on out-of-range literals; now the parser
  // must reject them as errors, leaving the table untouched.
  Database db = MakeDb();
  auto err = db.Exec("INSERT INTO items VALUES (99999999999999999999999, 'x', 1)");
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->message.find("out of range"), std::string::npos);
  EXPECT_EQ(db.TableRows("ITEMS"), 4u);
  EXPECT_EQ(db.rows_inserted(), 4u);
  // WHERE literals too: rejected, not wrapped into a bogus comparison.
  EXPECT_TRUE(db.Exec("DELETE FROM items WHERE i_cost = 18446744073709551617").has_value());
  EXPECT_EQ(db.TableRows("ITEMS"), 4u);
  // Boundary values parse exactly.
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (9223372036854775807, 'max', -1)"));
  auto rs = MustQuery(db, "SELECT i_id FROM items WHERE i_title = 'max'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 9223372036854775807LL);
}

TEST(Http, ParsesRequestLine) {
  HttpRequest req;
  EXPECT_TRUE(ParseHttpRequest("GET /index.html HTTP/1.0\r\n\r\n", &req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_TRUE(req.query.empty());
  EXPECT_TRUE(ParseHttpRequest("GET /query?sql=SELECT HTTP/1.0\r\n", &req));
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.query, "sql=SELECT");
  EXPECT_FALSE(ParseHttpRequest("POST / HTTP/1.0\r\n", &req));
  EXPECT_FALSE(ParseHttpRequest("garbage", &req));
}

TEST(Http, ResponseRendering) {
  HttpResponse resp;
  resp.body = "hello";
  std::string text = RenderHttpResponse(resp);
  EXPECT_NE(text.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 5), "hello");
}

TEST(Http, StaticPageIsAboutFourKib) {
  std::string page = StaticIndexPage();
  EXPECT_GE(page.size(), 4000u);
  EXPECT_LE(page.size(), 4500u);
}

// --- Malformed-request fuzz: the parser must reject, never crash ---

TEST(HttpFuzz, TruncatedAndMalformedRequestLinesAreRejected) {
  HttpRequest req;
  const char* bad[] = {
      "",
      "G",
      "GET",
      "GET ",
      "GET \r\n",
      "GET \n",
      " / HTTP/1.0\r\n",
      "\r\n",
      "\n",
      "\r\n\r\n",
      "POST / HTTP/1.0\r\n",
      "DELETE /x HTTP/1.0\r\n",
      "garbage",
      "\x01\x02\x03 \x04 \x05\r\n",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(ParseHttpRequest(s, &req)) << "accepted: " << s;
  }
  // Missing the terminating CRLF is tolerated as long as the line is whole
  // (the server only hands over buffered text once it saw a newline or gave
  // up, so the parser itself is lenient here).
  EXPECT_TRUE(ParseHttpRequest("GET / HTTP/1.0", &req));
  EXPECT_TRUE(ParseHttpRequest("HEAD /x HTTP/1.0\n", &req));
}

TEST(HttpFuzz, OversizedRequestLineIsRejected) {
  HttpRequest req;
  // A request line that alone exceeds the buffer cap is refused even if
  // syntactically a GET; one byte under the cap still parses.
  std::string huge = "GET /" + std::string(kMaxRequestBytes, 'a') + " HTTP/1.0\r\n";
  EXPECT_FALSE(ParseHttpRequest(huge, &req));
  std::string fits = "GET /" + std::string(100, 'a') + " HTTP/1.0\r\n";
  EXPECT_TRUE(ParseHttpRequest(fits, &req));
}

TEST(HttpFuzz, RandomBytesNeverCrashTheParser) {
  sim::Rng rng(0xdecafbad);
  HttpRequest req;
  for (int i = 0; i < 500; ++i) {
    std::string s(rng.Below(300), '\0');
    for (char& c : s) {
      c = static_cast<char>(rng.Below(256));
    }
    if (rng.Below(2) == 0) {
      s.insert(0, "GET ");  // half the corpus starts plausibly
    }
    (void)ParseHttpRequest(s, &req);  // must not crash or hang
  }
}

// --- End-to-end: malformed/oversized requests answered with 400 ---

const net::MacAddr kSrvMac{0x02, 0, 0, 0, 0, 0x01};
const net::MacAddr kCliMac{0x02, 0, 0, 0, 0, 0x02};
constexpr net::Ipv4Addr kSrvIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kCliIp = net::MakeIp(10, 0, 0, 2);

struct HttpFixture {
  HttpFixture()
      : machine(exec, hw::Amd2x2()),
        server_stack(machine, 0, kSrvIp, kSrvMac),
        client_stack(machine, 2, kCliIp, kCliMac),
        server(machine, server_stack, 80) {
    server_stack.AddArp(kCliIp, kCliMac);
    client_stack.AddArp(kSrvIp, kSrvMac);
    server_stack.SetOutput([this](net::Packet p) -> Task<> {
      co_await client_stack.Input(std::move(p));
    });
    client_stack.SetOutput([this](net::Packet p) -> Task<> {
      co_await server_stack.Input(std::move(p));
    });
    exec.Spawn(server.Serve());
  }
  // Sends `raw` as one request, returns everything the server answered.
  std::string Roundtrip(const std::string& raw) {
    std::string reply;
    exec.Spawn([](net::NetStack& stack, const std::string& req,
                  std::string& out) -> Task<> {
      net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kSrvIp, 80);
      co_await stack.TcpSend(*conn, req);
      for (;;) {
        auto chunk = co_await conn->Read();
        if (chunk.empty() && conn->peer_closed) {
          break;
        }
        out.append(chunk.begin(), chunk.end());
      }
    }(client_stack, raw, reply));
    exec.Run();
    return reply;
  }
  sim::Executor exec;
  hw::Machine machine;
  net::NetStack server_stack;
  net::NetStack client_stack;
  HttpServer server;
};

TEST(HttpServerEndToEnd, WellFormedRequestIsServed) {
  HttpFixture f;
  std::string reply = f.Roundtrip("GET /index.html HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(reply.find("multikernel"), std::string::npos);
  EXPECT_EQ(f.server.requests_served(), 1u);
}

TEST(HttpServerEndToEnd, GarbageRequestGets400) {
  HttpFixture f;
  std::string reply = f.Roundtrip("\x02\x7f not-http at all\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u);
  EXPECT_EQ(f.server.requests_served(), 0u);
}

TEST(HttpServerEndToEnd, OversizedHeaderlessRequestGets400AndBoundedBuffer) {
  HttpFixture f;
  // No newline anywhere: the server must give up at kMaxRequestBytes rather
  // than buffer without bound, and answer 400.
  std::string flood(kMaxRequestBytes + 200, 'A');
  std::string reply = f.Roundtrip(flood);
  EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u);
  EXPECT_EQ(f.server.requests_served(), 0u);
}

TEST(HttpServerEndToEnd, MalformedBuyWidGets400) {
  HttpFixture f;
  bool exec_called = false;
  f.server.SetDbExec(
      [&exec_called](std::uint64_t, std::string) -> Task<std::string> {
        exec_called = true;
        co_return "ok 1";
      });
  // A non-digit in the wid must be a 400, not a silently truncated wid that
  // could collide with another client's write id and answer "dup" for a
  // write that was never applied. Empty wids are malformed too.
  std::string reply = f.Roundtrip("GET /buy?wid=12x&sql=INSERT HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u);
  reply = f.Roundtrip("GET /buy?wid=&sql=INSERT HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u);
  EXPECT_FALSE(exec_called);
  // A well-formed wid still reaches the store.
  reply = f.Roundtrip("GET /buy?wid=12&sql=INSERT HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_TRUE(exec_called);
}

// --- Sharded read-only DB replicas ---

TEST(DbShard, ReplicasAnswerIdenticallyAndIndependently) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  Database source;
  PopulateTpcw(&source, 100);
  DbReplicaCluster cluster(machine, source,
                           {{0, 1}, {4, 5}, {8, 9}});
  ASSERT_EQ(cluster.num_shards(), 3);
  for (int s = 0; s < 3; ++s) {
    exec.Spawn(cluster.Serve(s));
  }
  std::vector<std::string> answers;
  exec.Spawn([](DbReplicaCluster& c, std::vector<std::string>& out) -> Task<> {
    for (int s = 0; s < c.num_shards(); ++s) {
      out.push_back(co_await c.Query(s, TpcwQuery(42)));
    }
    // A second query on shard 1 only: per-shard counters must not bleed.
    (void)co_await c.Query(1, TpcwQuery(7));
    co_await c.Shutdown();
  }(cluster, answers));
  exec.Run();
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_FALSE(answers[0].empty());
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[1], answers[2]);
  EXPECT_NE(answers[0].find("item-42"), std::string::npos);
  EXPECT_EQ(cluster.queries_served(0), 1u);
  EXPECT_EQ(cluster.queries_served(1), 2u);
  EXPECT_EQ(cluster.queries_served(2), 1u);
  // Shutdown drained every Serve() loop: nothing is left alive or pending.
  EXPECT_EQ(exec.live_tasks(), 0u);
  EXPECT_EQ(exec.pending_events(), 0u);
}

}  // namespace
}  // namespace mk::apps
