// Tests for the mini relational database and the HTTP server.
#include <gtest/gtest.h>

#include "apps/db.h"
#include "apps/httpd.h"

namespace mk::apps {
namespace {

Database MakeDb() {
  Database db;
  EXPECT_FALSE(db.Exec("CREATE TABLE items (i_id INT, i_title TEXT, i_cost INT)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (1, 'alpha', 500)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (2, 'beta', 300)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (3, 'gamma', 700)"));
  EXPECT_FALSE(db.Exec("INSERT INTO items VALUES (4, 'delta', 300)"));
  return db;
}

Database::ResultSet MustQuery(const Database& db, const std::string& sql) {
  auto result = db.Query(sql);
  EXPECT_TRUE(std::holds_alternative<Database::ResultSet>(result))
      << sql << ": " << std::get<DbError>(result).message;
  return std::get<Database::ResultSet>(result);
}

TEST(Db, SelectStarReturnsAllRowsAndColumns) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT * FROM items");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"I_ID", "I_TITLE", "I_COST"}));
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows_scanned, 4u);
}

TEST(Db, WhereFiltersEveryOperator) {
  Database db = MakeDb();
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost = 300").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost != 300").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost < 500").rows.size(), 2u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost <= 500").rows.size(), 3u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost > 500").rows.size(), 1u);
  EXPECT_EQ(MustQuery(db, "SELECT i_id FROM items WHERE i_cost >= 500").rows.size(), 2u);
}

TEST(Db, WhereOnTextColumn) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT i_id FROM items WHERE i_title = 'beta'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 2);
}

TEST(Db, OrderByAndLimit) {
  Database db = MakeDb();
  auto rs = MustQuery(db, "SELECT i_title FROM items ORDER BY i_cost DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0][0]), "gamma");
  EXPECT_EQ(std::get<std::string>(rs.rows[1][0]), "alpha");
  // Ascending with ties: stable order by insertion.
  auto asc = MustQuery(db, "SELECT i_id FROM items ORDER BY i_cost LIMIT 3");
  EXPECT_EQ(std::get<std::int64_t>(asc.rows[0][0]), 2);
  EXPECT_EQ(std::get<std::int64_t>(asc.rows[1][0]), 4);
}

TEST(Db, ErrorsAreReported) {
  Database db = MakeDb();
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("SELECT * FROM nope")));
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("SELECT bogus FROM items")));
  EXPECT_TRUE(std::holds_alternative<DbError>(db.Query("DROP TABLE items")));
  EXPECT_TRUE(db.Exec("INSERT INTO items VALUES (1, 2)").has_value());    // arity
  EXPECT_TRUE(db.Exec("INSERT INTO items VALUES ('x', 'y', 'z')").has_value());  // types
  EXPECT_TRUE(db.Exec("CREATE TABLE items (a INT)").has_value());  // duplicate
}

TEST(Db, QuotedStringsWithSpacesAndEscapes) {
  Database db;
  ASSERT_FALSE(db.Exec("CREATE TABLE t (s TEXT)"));
  ASSERT_FALSE(db.Exec("INSERT INTO t VALUES ('it''s a test value')"));
  auto rs = MustQuery(db, "SELECT s FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0][0]), "it's a test value");
}

TEST(Db, TpcwPopulationAndQuery) {
  Database db;
  PopulateTpcw(&db, 100);
  EXPECT_EQ(db.TableRows("ITEMS"), 100u);
  EXPECT_TRUE(db.HasTable("AUTHORS"));
  auto rs = MustQuery(db, TpcwQuery(42));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(rs.rows[0][0]), 42);
  EXPECT_EQ(rs.rows_scanned, 100u);  // full scan: the cost basis
}

TEST(Http, ParsesRequestLine) {
  HttpRequest req;
  EXPECT_TRUE(ParseHttpRequest("GET /index.html HTTP/1.0\r\n\r\n", &req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_TRUE(req.query.empty());
  EXPECT_TRUE(ParseHttpRequest("GET /query?sql=SELECT HTTP/1.0\r\n", &req));
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.query, "sql=SELECT");
  EXPECT_FALSE(ParseHttpRequest("POST / HTTP/1.0\r\n", &req));
  EXPECT_FALSE(ParseHttpRequest("garbage", &req));
}

TEST(Http, ResponseRendering) {
  HttpResponse resp;
  resp.body = "hello";
  std::string text = RenderHttpResponse(resp);
  EXPECT_NE(text.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 5), "hello");
}

TEST(Http, StaticPageIsAboutFourKib) {
  std::string page = StaticIndexPage();
  EXPECT_GE(page.size(), 4000u);
  EXPECT_LE(page.size(), 4500u);
}

}  // namespace
}  // namespace mk::apps
