// Tests for the machine model: topology, coherence protocol, contention,
// traffic accounting, TLBs, IPIs.
#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "hw/topology.h"
#include "sim/executor.h"

namespace mk::hw {
namespace {

using sim::Cycles;
using sim::Task;

// Runs a coroutine to completion on a fresh executor and returns sim time.
template <typename Fn>
Cycles RunSim(sim::Executor& exec, Machine& m, Fn&& fn) {
  exec.Spawn(fn(m));
  return exec.Run();
}

TEST(Topology, PaperPlatformShapes) {
  for (const auto& spec : PaperPlatforms()) {
    Topology t(spec);
    EXPECT_EQ(t.num_cores(), spec.num_cores()) << spec.name;
    EXPECT_EQ(t.num_packages(), spec.packages) << spec.name;
  }
  EXPECT_EQ(Topology(Intel2x4()).num_cores(), 8);
  EXPECT_EQ(Topology(Amd2x2()).num_cores(), 4);
  EXPECT_EQ(Topology(Amd4x4()).num_cores(), 16);
  EXPECT_EQ(Topology(Amd8x4()).num_cores(), 32);
}

TEST(Topology, SquareTopologyHasTwoHopDiagonal) {
  Topology t(Amd4x4());
  EXPECT_EQ(t.Hops(0, 0), 0);
  EXPECT_EQ(t.Hops(0, 1), 1);
  EXPECT_EQ(t.Hops(0, 2), 1);
  EXPECT_EQ(t.Hops(0, 3), 2);  // diagonal of the square
  EXPECT_EQ(t.Diameter(), 2);
}

TEST(Topology, LadderTopologyDiameterThree) {
  Topology t(Amd8x4());
  EXPECT_EQ(t.Diameter(), 3);
  EXPECT_EQ(t.Hops(0, 1), 1);
  EXPECT_EQ(t.Hops(0, 7), 3);
}

TEST(Topology, NextHopAdvancesTowardsDestination) {
  Topology t(Amd8x4());
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) {
        EXPECT_EQ(t.NextHop(a, b), a);
        continue;
      }
      int n = t.NextHop(a, b);
      EXPECT_EQ(t.Hops(a, n), 1);
      EXPECT_EQ(t.Hops(n, b), t.Hops(a, b) - 1);
    }
  }
}

TEST(Topology, SharedCacheRelationships) {
  Topology intel(Intel2x4());
  // Intel: 2 packages x 2 dies x 2 cores; shared L2 per die.
  EXPECT_TRUE(intel.SharesCache(0, 1));    // same die
  EXPECT_FALSE(intel.SharesCache(0, 2));   // same package, different die
  EXPECT_FALSE(intel.SharesCache(0, 4));   // different package

  Topology amd(Amd4x4());
  EXPECT_TRUE(amd.SharesCache(0, 3));      // same package (shared L3)
  EXPECT_FALSE(amd.SharesCache(0, 4));     // different package
}

TEST(Topology, CoreToPackageMapping) {
  Topology t(Amd8x4());
  EXPECT_EQ(t.PackageOf(0), 0);
  EXPECT_EQ(t.PackageOf(3), 0);
  EXPECT_EQ(t.PackageOf(4), 1);
  EXPECT_EQ(t.PackageOf(31), 7);
  EXPECT_EQ(t.PackageLeaders(), (std::vector<int>{0, 4, 8, 12, 16, 20, 24, 28}));
  EXPECT_EQ(t.CoresOf(2), (std::vector<int>{8, 9, 10, 11}));
}

TEST(Topology, DisconnectedTopologyRejected) {
  PlatformSpec s = Generic(3, 1);
  s.links = {{0, 1}};  // package 2 unreachable
  EXPECT_THROW(Topology t(s), std::invalid_argument);
}

TEST(Coherence, LocalHitAfterFirstTouch) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    Cycles first = co_await mm.mem().Read(0, addr);
    Cycles second = co_await mm.mem().Read(0, addr);
    EXPECT_GT(first, second);  // first touch fetches from memory
    EXPECT_EQ(second, mm.cost().l1_hit);
  });
}

TEST(Coherence, WriteInvalidatesRemoteCopy) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Read(4, addr);   // core 4 (package 1) caches the line
    EXPECT_TRUE(mm.mem().HasLine(4, addr));
    co_await mm.mem().Write(0, addr);  // core 0 takes ownership
    EXPECT_FALSE(mm.mem().HasLine(4, addr));
    EXPECT_TRUE(mm.mem().HasLine(0, addr));
    EXPECT_EQ(mm.mem().OwnerOf(addr), 0);
  });
  EXPECT_EQ(m.counters().core(4).invalidations_recv, 1u);
}

TEST(Coherence, SingleWriterInvariant) {
  // After any interleaving of writes, exactly one core holds the line.
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  for (int c = 0; c < m.num_cores(); ++c) {
    exec.Spawn([](Machine& mm, sim::Addr a, int core) -> Task<> {
      for (int i = 0; i < 5; ++i) {
        co_await mm.mem().Write(core, a);
      }
    }(m, addr, c));
  }
  exec.Run();
  auto sharers = m.mem().SharersOf(addr);
  EXPECT_NE(sharers, 0u);
  EXPECT_EQ(sharers & (sharers - 1), 0u) << "more than one copy after writes";
  EXPECT_EQ(sharers, std::uint64_t{1} << m.mem().OwnerOf(addr));
}

TEST(Coherence, DirtyLineSuppliedCacheToCache) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Write(0, addr);
    co_await mm.mem().Read(4, addr);  // must come from core 0's cache
  });
  EXPECT_EQ(m.counters().core(4).c2c_transfers, 1u);
  EXPECT_EQ(m.counters().core(4).dram_fetches, 0u);
}

TEST(Coherence, SharedCacheTransferCheaperThanCrossPackage) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  Cycles same_pkg = 0;
  Cycles cross_pkg = 0;
  RunSim(exec, m, [&, addr](Machine& mm) -> Task<> {
    co_await mm.mem().Write(0, addr);
    same_pkg = co_await mm.mem().Read(1, addr);  // same package: shared L3
    co_await mm.mem().Write(0, addr);
    cross_pkg = co_await mm.mem().Read(4, addr);  // package 1: cross HT
  });
  EXPECT_LT(same_pkg, cross_pkg);
  EXPECT_EQ(same_pkg, Amd4x4().cost.shared_cache_rt);
}

TEST(Coherence, CrossLatencyGrowsWithHops) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  Cycles one_hop = 0;
  Cycles two_hop = 0;
  RunSim(exec, m, [&, addr](Machine& mm) -> Task<> {
    co_await mm.mem().Write(0, addr);
    one_hop = co_await mm.mem().Read(4, addr);   // package 1: 1 hop from 0
    co_await mm.mem().Write(0, addr);
    two_hop = co_await mm.mem().Read(12, addr);  // package 3: 2 hops from 0
  });
  auto cost = Amd4x4().cost;
  EXPECT_EQ(one_hop, cost.cross_rt_base + cost.cross_rt_per_hop);
  EXPECT_EQ(two_hop, cost.cross_rt_base + 2 * cost.cross_rt_per_hop);
}

TEST(Coherence, HomeControllerContentionSerializesWrites) {
  // Many cores writing lines homed on one node queue at its controller;
  // the Fig. 3 shared-memory pathology.
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  std::vector<Cycles> latencies;
  for (int c = 0; c < 8; ++c) {
    exec.Spawn([](Machine& mm, sim::Addr a, int core, std::vector<Cycles>& out) -> Task<> {
      out.push_back(co_await mm.mem().Write(core, a));
    }(m, addr, c, latencies));
  }
  exec.Run();
  ASSERT_EQ(latencies.size(), 8u);
  // Later arrivals observe queueing: the max latency well exceeds the min.
  Cycles lo = *std::min_element(latencies.begin(), latencies.end());
  Cycles hi = *std::max_element(latencies.begin(), latencies.end());
  EXPECT_GE(hi, lo + 5 * m.cost().home_occupancy);
}

TEST(Coherence, PostedWriteChargesOnlyStoreBufferCost) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Read(4, addr);
    Cycles posted = co_await mm.mem().WritePosted(0, addr);
    EXPECT_EQ(posted, mm.cost().store_posted);
    // Ownership still transferred.
    EXPECT_EQ(mm.mem().OwnerOf(addr), 0);
    EXPECT_FALSE(mm.mem().HasLine(4, addr));
  });
}

TEST(Coherence, PrefetchedReadCheaperThanBlockingMiss) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto a1 = m.mem().AllocLines(0, 1);
  auto a2 = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [a1, a2](Machine& mm) -> Task<> {
    co_await mm.mem().Write(4, a1);
    co_await mm.mem().Write(4, a2);
    Cycles blocking = co_await mm.mem().Read(0, a1);
    co_await mm.exec().Delay(5000);  // drain the c2c source queue
    Cycles prefetched = co_await mm.mem().ReadPrefetched(0, a2);
    EXPECT_LT(prefetched, blocking);
    EXPECT_EQ(prefetched, mm.cost().prefetched_read);
  });
}

TEST(Coherence, TrafficAccountedOnLinks) {
  sim::Executor exec;
  Machine m(exec, Amd2x2());
  auto addr = m.mem().AllocLines(0, 1);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Write(0, addr);  // core 0, package 0
    co_await mm.mem().Read(2, addr);   // core 2, package 1: c2c across link
  });
  // Data must have crossed from package 0 to package 1.
  EXPECT_GE(m.counters().link_dwords(0, 1), std::uint64_t{Amd2x2().cost.data_dwords});
  // Probe/command traffic in the other direction too.
  EXPECT_GT(m.counters().link_dwords(1, 0), 0u);
}

TEST(Coherence, MultiLineOperationsChargePerLine) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 8);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Write(0, addr, 8 * sim::kCacheLineBytes);
    Cycles eight_hits = co_await mm.mem().Read(0, addr, 8 * sim::kCacheLineBytes);
    EXPECT_EQ(eight_hits, 8 * mm.cost().l1_hit);
  });
  EXPECT_EQ(m.counters().core(0).stores, 8u);
}

TEST(Coherence, PurgeDropsAllCopies) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto addr = m.mem().AllocLines(0, 2);
  RunSim(exec, m, [addr](Machine& mm) -> Task<> {
    co_await mm.mem().Read(0, addr, 2 * sim::kCacheLineBytes);
    mm.mem().Purge(addr, 2 * sim::kCacheLineBytes);
    EXPECT_FALSE(mm.mem().HasLine(0, addr));
  });
}

TEST(Coherence, NumaHomeFollowsAllocationNode) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  auto a0 = m.mem().AllocLines(0, 1);
  auto a3 = m.mem().AllocLines(3, 1);
  EXPECT_EQ(m.mem().HomeNode(a0), 0);
  EXPECT_EQ(m.mem().HomeNode(a3), 3);
  // First-touch fetch from a remote home costs more than from the local one.
  Cycles local = 0;
  Cycles remote = 0;
  RunSim(exec, m, [&, a0, a3](Machine& mm) -> Task<> {
    local = co_await mm.mem().Read(0, a0);
    remote = co_await mm.mem().Read(0, a3);
  });
  EXPECT_LT(local, remote);
}

TEST(Tlb, InsertLookupInvalidate) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  Tlb& tlb = m.tlb(0);
  tlb.Insert(0x400000, TlbEntry{0x1000, true});
  TlbEntry e;
  EXPECT_TRUE(tlb.Lookup(0x400123, &e));  // same page
  EXPECT_EQ(e.paddr, 0x1000u);
  EXPECT_TRUE(e.writable);
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.tlb(0).Invalidate(0x400000); }(m));
  Cycles end = exec.Run();
  EXPECT_FALSE(tlb.Contains(0x400000));
  EXPECT_EQ(end, m.cost().tlb_invalidate);
  EXPECT_EQ(m.counters().core(0).tlb_invalidations, 1u);
}

TEST(Tlb, FlushClearsEverything) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  m.tlb(2).Insert(0x1000, {});
  m.tlb(2).Insert(0x2000, {});
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.tlb(2).FlushAll(); }(m));
  exec.Run();
  EXPECT_EQ(m.tlb(2).size(), 0u);
}

TEST(Ipi, DeliveryInvokesHandlerAfterWireDelay) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  Cycles delivered_at = 0;
  int got_vector = -1;
  m.ipi().SetHandler(5, [&](int vector, std::uint64_t) {
    delivered_at = exec.now();
    got_vector = vector;
  });
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.ipi().Send(0, 5, 0x42); }(m));
  exec.Run();
  EXPECT_EQ(got_vector, 0x42);
  EXPECT_GE(delivered_at, m.cost().ipi_send + m.cost().ipi_wire);
  EXPECT_EQ(m.counters().core(0).ipis_sent, 1u);
  EXPECT_EQ(m.counters().core(5).ipis_received, 1u);
}

TEST(Machine, ComputeSerializesOnOneCore) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.Compute(0, 100); }(m));
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.Compute(0, 100); }(m));
  EXPECT_EQ(exec.Run(), 200u);  // serialized on core 0
}

TEST(Machine, ComputeOnDifferentCoresRunsInParallel) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.Compute(0, 100); }(m));
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.Compute(1, 100); }(m));
  EXPECT_EQ(exec.Run(), 100u);
}

TEST(Machine, HeterogeneousCoresComputeAtTheirSpeed) {
  // Section 2.2: cores with the same ISA but different performance. A half-
  // speed core takes twice the cycles for the same work; memory is shared.
  PlatformSpec spec = Amd2x2();
  spec.core_speed = {1.0, 1.0, 0.5, 2.0};
  sim::Executor exec;
  Machine m(exec, spec);
  Cycles fast = 0;
  Cycles slow = 0;
  Cycles turbo = 0;
  exec.Spawn([](Machine& mm, Cycles& f, Cycles& s, Cycles& t) -> Task<> {
    Cycles t0 = mm.exec().now();
    co_await mm.Compute(0, 1000);
    f = mm.exec().now() - t0;
    t0 = mm.exec().now();
    co_await mm.Compute(2, 1000);
    s = mm.exec().now() - t0;
    t0 = mm.exec().now();
    co_await mm.Compute(3, 1000);
    t = mm.exec().now() - t0;
  }(m, fast, slow, turbo));
  exec.Run();
  EXPECT_EQ(fast, 1000u);
  EXPECT_EQ(slow, 2000u);
  EXPECT_EQ(turbo, 500u);
}

TEST(Machine, HomogeneousSpeedDefaultsToOne) {
  PlatformSpec spec = Amd4x4();
  EXPECT_DOUBLE_EQ(spec.SpeedOf(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.SpeedOf(15), 1.0);
  spec.core_speed = {0.25};
  EXPECT_DOUBLE_EQ(spec.SpeedOf(0), 0.25);
  EXPECT_DOUBLE_EQ(spec.SpeedOf(1), 1.0);  // beyond the vector: default
}

TEST(Machine, TrapChargesCostAndCounts) {
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  exec.Spawn([](Machine& mm) -> Task<> { co_await mm.Trap(3); }(m));
  EXPECT_EQ(exec.Run(), m.cost().trap);
  EXPECT_EQ(m.counters().core(3).traps, 1u);
}

// --- Calibration checks against the paper's Table 2 (URPC latency is ~two
// transactions: the sender's invalidating write plus the receiver's fetch).
struct UrpcLatencyCase {
  const char* platform;
  int sender;
  int receiver;
  Cycles paper_latency;  // Table 2
};

class CoherenceCalibration : public ::testing::TestWithParam<UrpcLatencyCase> {};

TEST_P(CoherenceCalibration, TwoTransactionsApproximateTable2) {
  const auto& p = GetParam();
  PlatformSpec spec;
  for (auto& s : PaperPlatforms()) {
    if (s.name == p.platform) {
      spec = s;
    }
  }
  ASSERT_FALSE(spec.name.empty());
  sim::Executor exec;
  Machine m(exec, spec);
  auto addr = m.mem().AllocLines(0, 1);
  Cycles total = 0;
  exec.Spawn([](Machine& mm, sim::Addr a, int sender, int receiver, Cycles& out) -> Task<> {
    // Prime: receiver holds the line (polling), sender then writes, receiver
    // re-fetches — the section 4.6 fast path.
    co_await mm.mem().Read(receiver, a);
    out = co_await mm.mem().Write(sender, a);
    out += co_await mm.mem().Read(receiver, a);
  }(m, addr, p.sender, p.receiver, total));
  exec.Run();
  double err = std::abs(static_cast<double>(total) - static_cast<double>(p.paper_latency)) /
               static_cast<double>(p.paper_latency);
  EXPECT_LT(err, 0.10) << p.platform << ": simulated " << total << " vs paper "
                       << p.paper_latency;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, CoherenceCalibration,
    ::testing::Values(UrpcLatencyCase{"2x4-core Intel", 0, 1, 180},
                      UrpcLatencyCase{"2x4-core Intel", 0, 4, 570},
                      UrpcLatencyCase{"2x2-core AMD", 0, 1, 450},
                      UrpcLatencyCase{"2x2-core AMD", 0, 2, 532},
                      UrpcLatencyCase{"4x4-core AMD", 0, 1, 448},
                      UrpcLatencyCase{"4x4-core AMD", 0, 4, 545},
                      UrpcLatencyCase{"4x4-core AMD", 0, 12, 558},
                      UrpcLatencyCase{"8x4-core AMD", 0, 1, 538},
                      UrpcLatencyCase{"8x4-core AMD", 0, 4, 613},
                      UrpcLatencyCase{"8x4-core AMD", 0, 16, 618}));

}  // namespace
}  // namespace mk::hw
