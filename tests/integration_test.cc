// End-to-end integration tests: boot the full multikernel (machine, CPU
// drivers, SKB with online measurement, monitors, capability system, virtual
// memory, services, replicated FS) and exercise cross-module scenarios.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "caps/capability.h"
#include "fs/ramfs.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "idc/name_service.h"
#include "idc/service.h"
#include "kernel/cpu_driver.h"
#include "mm/buddy.h"
#include "mm/vspace.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

// A fully booted multikernel on the 8x4-core AMD machine.
struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine), sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

TEST(Integration, BootMeasuresLatenciesAndBuildsRoutes) {
  System s;
  EXPECT_GT(s.skb.facts().All("urpc_latency").size(), 0u);
  auto route = s.sys.EffectiveRoute(0, true);
  EXPECT_EQ(route.nodes.size(), 8u);
  s.sys.Shutdown();
  s.exec.Run();
}

TEST(Integration, UserLevelMemoryManagementLifecycle) {
  // The full section 4.7 flow: RAM caps from a buddy-backed memory server,
  // two-phase retype agreement, map, touch from many cores, unmap with a
  // monitor-driven shootdown, revoke.
  System s;
  mm::BuddyAllocator phys(0x40000000, 64 << 20);
  auto region = phys.Alloc(1 << 20);
  ASSERT_TRUE(region.has_value());
  caps::CapId root = s.sys.InstallRootCap(*region, 1 << 20);

  std::vector<int> all_cores;
  for (int c = 0; c < 32; ++c) {
    all_cores.push_back(c);
  }
  mm::VSpace vspace(s.machine, s.sys.on(0).caps(), all_cores);
  vspace.SetShootdownHook(
      [&s](int initiator, std::vector<std::uint64_t> pages) -> Task<> {
        for (std::uint64_t page : pages) {
          auto r = co_await s.sys.on(initiator).GlobalInvalidate(
              page, 1, monitor::Protocol::kNumaMulticast, monitor::OpFlags{});
          EXPECT_TRUE(r.all_yes);
        }
      });

  s.exec.Spawn([](System& ss, mm::VSpace& vs, caps::CapId r) -> Task<> {
    // Retype agreed by every replica.
    auto retype = co_await ss.sys.on(0).GlobalRetype(
        r, caps::CapType::kFrame, 4 * hw::kPageSize, 1, monitor::Protocol::kNumaMulticast);
    EXPECT_TRUE(retype.committed);
    auto frames = ss.sys.on(0).caps().Descendants(r);
    EXPECT_EQ(frames.size(), 1u);
    if (frames.empty()) {
      ss.sys.Shutdown();
      co_return;
    }
    EXPECT_EQ(vs.Map(frames[0], 0x400000, mm::Perms{true}), mm::MapErr::kOk);
    // Touch from spread-out cores.
    for (int c : {0, 9, 18, 27, 31}) {
      std::uint64_t pa = co_await vs.Translate(c, 0x400000 + 64u * c);
      EXPECT_NE(pa, ~std::uint64_t{0});
      EXPECT_TRUE(ss.machine.tlb(c).Contains(0x400000));
    }
    // Unmap drives the shootdown; nothing stale may remain anywhere.
    EXPECT_EQ(co_await vs.Unmap(0, 0x400000, 4 * hw::kPageSize), mm::MapErr::kOk);
    for (int c = 0; c < 32; ++c) {
      EXPECT_FALSE(ss.machine.tlb(c).Contains(0x400000)) << c;
    }
    // Revoke the frame everywhere, making the RAM retypeable again.
    auto revoke = co_await ss.sys.on(5).GlobalRevoke(r, monitor::Protocol::kNumaMulticast);
    EXPECT_TRUE(revoke.committed);
    auto retype2 = co_await ss.sys.on(0).GlobalRetype(
        r, caps::CapType::kPageTable, hw::kPageSize, 2, monitor::Protocol::kNumaMulticast);
    EXPECT_TRUE(retype2.committed);
    ss.sys.Shutdown();
  }(s, vspace, root));
  s.exec.Run();
  EXPECT_TRUE(s.sys.ReplicasConsistent());
}

struct KvReq {
  std::uint32_t op;  // 0 = put, 1 = get
  std::uint32_t key;
  std::uint64_t value;
};
struct KvResp {
  std::uint64_t value;
  std::uint32_t found;
};

TEST(Integration, ServiceBackedByReplicatedFsUnderHotplug) {
  // A key-value service stores its data in the replicated FS; clients on
  // several cores use it through the typed IDC layer while a core is
  // hot-unplugged and replugged mid-run.
  System s;
  idc::NameService names(s.machine, 0);
  fs::ReplicatedFs rfs(s.sys);
  std::map<std::uint32_t, std::uint64_t> kv;  // service-private index
  idc::Service<KvReq, KvResp> svc(
      s.machine, names, 4, "kv", [&kv](const KvReq& req) -> Task<KvResp> {
        if (req.op == 0) {
          kv[req.key] = req.value;
          co_return KvResp{req.value, 1};
        }
        auto it = kv.find(req.key);
        co_return KvResp{it == kv.end() ? 0 : it->second,
                         it == kv.end() ? 0u : 1u};
      });
  s.exec.Spawn(svc.Serve());
  s.exec.Spawn([](System& ss, idc::NameService& nn, idc::Service<KvReq, KvResp>& sv,
                  fs::ReplicatedFs& f) -> Task<> {
    co_await sv.Export();
    auto client = co_await idc::ServiceClient<KvReq, KvResp>::Connect(ss.machine, nn, sv,
                                                                      20);
    EXPECT_NE(client, nullptr);
    (void)co_await client->Call(KvReq{0, 7, 777});
    (void)co_await f.Create(20, "/kv/checkpoint");
    std::vector<std::uint8_t> ckpt = {7, 7, 7};
    (void)co_await f.Write(20, "/kv/checkpoint", std::move(ckpt));

    // Take a core down mid-run, keep operating, bring it back.
    (void)co_await ss.sys.OfflineCore(0, 28);
    KvResp got = co_await client->Call(KvReq{1, 7, 0});
    EXPECT_EQ(got.value, 777u);
    EXPECT_EQ(got.found, 1u);
    std::vector<std::uint8_t> more = {8};
    (void)co_await f.Append(3, "/kv/checkpoint", std::move(more));
    (void)co_await ss.sys.OnlineCore(0, 28);
    co_await f.SyncReplica(0, 28);

    auto data = co_await f.Read(28, "/kv/checkpoint");
    EXPECT_TRUE(data.has_value());
    EXPECT_EQ(data->size(), 4u);
    sv.Stop();
    ss.sys.Shutdown();
  }(s, names, svc, rfs));
  s.exec.Run();
  EXPECT_TRUE(s.sys.ReplicasConsistent());
  EXPECT_TRUE(rfs.ReplicasConsistent());
}

TEST(Integration, ConcurrentGlobalOperationsDoNotInterfere) {
  // Shootdowns, retypes, and FS mutations all in flight at once; everything
  // completes and every replica family converges.
  System s;
  fs::ReplicatedFs rfs(s.sys);
  caps::CapId root = s.sys.InstallRootCap(0, 64 << 20);
  int done = 0;
  constexpr int kTasks = 6;
  for (int c = 0; c < 32; ++c) {
    s.machine.tlb(c).Insert(0xabc000, hw::TlbEntry{});
  }
  auto finish = [](System& ss, int& d) {
    if (++d == kTasks) {
      ss.sys.Shutdown();
    }
  };
  s.exec.Spawn([](System& ss, int& d, decltype(finish)& fin) -> Task<> {
    auto r = co_await ss.sys.on(0).GlobalInvalidate(0xabc000, 1,
                                                    monitor::Protocol::kNumaMulticast,
                                                    monitor::OpFlags{});
    EXPECT_TRUE(r.all_yes);
    fin(ss, d);
  }(s, done, finish));
  s.exec.Spawn([](System& ss, caps::CapId r, int& d, decltype(finish)& fin) -> Task<> {
    auto result = co_await ss.sys.on(9).GlobalRetype(r, caps::CapType::kFrame, 4096, 2,
                                                     monitor::Protocol::kMulticast);
    EXPECT_TRUE(result.committed);
    fin(ss, d);
  }(s, root, done, finish));
  for (int i = 0; i < 4; ++i) {
    s.exec.Spawn([](System& ss, fs::ReplicatedFs& f, int idx, int& d,
                    decltype(finish)& fin) -> Task<> {
      std::string path = "/c" + std::to_string(idx);
      EXPECT_EQ(co_await f.Create(idx * 7, path), fs::FsErr::kOk);
      std::vector<std::uint8_t> payload = {1, 2, 3};
      EXPECT_EQ(co_await f.Write(idx * 5, path, std::move(payload)), fs::FsErr::kOk);
      fin(ss, d);
    }(s, rfs, i, done, finish));
  }
  s.exec.Run();
  EXPECT_EQ(done, kTasks);
  EXPECT_TRUE(s.sys.ReplicasConsistent());
  EXPECT_TRUE(rfs.ReplicasConsistent());
  for (int c = 0; c < 32; ++c) {
    EXPECT_FALSE(s.machine.tlb(c).Contains(0xabc000));
  }
}

}  // namespace
}  // namespace mk
