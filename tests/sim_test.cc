// Tests for the discrete-event simulation substrate: executor, tasks,
// synchronization primitives, RNG, statistics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::sim {
namespace {

TEST(Types, LineBaseRoundsDown) {
  EXPECT_EQ(LineBase(0), 0u);
  EXPECT_EQ(LineBase(63), 0u);
  EXPECT_EQ(LineBase(64), 64u);
  EXPECT_EQ(LineBase(130), 128u);
}

TEST(Types, LinesCoveringCountsSpannedLines) {
  EXPECT_EQ(LinesCovering(0, 0), 0u);
  EXPECT_EQ(LinesCovering(0, 1), 1u);
  EXPECT_EQ(LinesCovering(0, 64), 1u);
  EXPECT_EQ(LinesCovering(0, 65), 2u);
  EXPECT_EQ(LinesCovering(60, 8), 2u);    // straddles a boundary
  EXPECT_EQ(LinesCovering(64, 128), 2u);
  EXPECT_EQ(LinesCovering(1000, 1000), LinesCovering(1000 % 64, 1000));
}

TEST(Executor, DelayAdvancesClock) {
  Executor exec;
  Cycles observed = 0;
  exec.Spawn([](Executor& e, Cycles& out) -> Task<> {
    co_await e.Delay(100);
    co_await e.Delay(23);
    out = e.now();
  }(exec, observed));
  exec.Run();
  EXPECT_EQ(observed, 123u);
  EXPECT_EQ(exec.live_tasks(), 0u);
}

TEST(Executor, EventsRunInTimeOrderWithFifoTies) {
  Executor exec;
  std::vector<int> order;
  exec.CallAt(50, [&] { order.push_back(2); });
  exec.CallAt(10, [&] { order.push_back(1); });
  exec.CallAt(50, [&] { order.push_back(3); });  // same time: FIFO by insertion
  exec.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Executor, NestedTaskReturnsValueWithoutExtraTime) {
  Executor exec;
  Cycles result = 0;
  Cycles when = 0;
  auto inner = [](Executor& e) -> Task<Cycles> {
    co_await e.Delay(7);
    co_return 42;
  };
  exec.Spawn([](Executor& e, decltype(inner)& in, Cycles& res, Cycles& at) -> Task<> {
    res = co_await in(e);
    at = e.now();
  }(exec, inner, result, when));
  exec.Run();
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(when, 7u);
}

TEST(Executor, RunUntilStopsAtDeadline) {
  Executor exec;
  int fired = 0;
  exec.CallAt(10, [&] { ++fired; });
  exec.CallAt(20, [&] { ++fired; });
  EXPECT_TRUE(exec.RunUntil(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(exec.now(), 15u);
  EXPECT_FALSE(exec.RunUntil(30));
  EXPECT_EQ(fired, 2);
}

TEST(Executor, SpawnedTasksCountedUntilCompletion) {
  Executor exec;
  exec.Spawn([](Executor& e) -> Task<> { co_await e.Delay(5); }(exec));
  exec.Spawn([](Executor& e) -> Task<> { co_await e.Delay(50); }(exec));
  EXPECT_EQ(exec.live_tasks(), 2u);
  exec.RunUntil(10);
  EXPECT_EQ(exec.live_tasks(), 1u);
  exec.Run();
  EXPECT_EQ(exec.live_tasks(), 0u);
}

TEST(Executor, FarFutureEventsRunInTimeOrder) {
  Executor exec;
  std::vector<int> order;
  // All far beyond the near window from time 0; reverse insertion order.
  exec.CallAt(50000, [&] { order.push_back(3); });
  exec.CallAt(5000, [&] { order.push_back(2); });
  exec.CallAt(5, [&] { order.push_back(1); });
  EXPECT_EQ(exec.Run(), 50000u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Executor, FarFutureTiesRunInInsertionOrder) {
  Executor exec;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    exec.CallAt(100000, [&order, i] { order.push_back(i); });
  }
  exec.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Executor, MigratedFarEventPrecedesLaterSameCyclePush) {
  Executor exec;
  std::vector<char> order;
  // A targets cycle 1500 from time 0 (far tier). The cycle-600 event then
  // schedules B for the same cycle 1500 (near tier by then). A was inserted
  // first and must dispatch first.
  exec.CallAt(1500, [&order] { order.push_back('A'); });
  exec.CallAt(600, [&exec, &order] {
    exec.CallAt(1500, [&order] { order.push_back('B'); });
  });
  exec.Run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(Executor, DelayBeyondNearWindowResumesExactly) {
  Executor exec;
  const Cycles far = Executor::kNearWindow * 5 + 3;
  Cycles resumed = 0;
  exec.Spawn([](Executor& e, Cycles d, Cycles& out) -> Task<> {
    co_await e.Delay(d);
    out = e.now();
  }(exec, far, resumed));
  exec.Run();
  EXPECT_EQ(resumed, far);
}

TEST(Executor, RunUntilAcrossEmptyWindows) {
  Executor exec;
  int fired = 0;
  exec.CallAt(Executor::kNearWindow * 3, [&] { ++fired; });
  EXPECT_TRUE(exec.RunUntil(10));  // nothing due yet; the event survives
  EXPECT_EQ(exec.now(), 10u);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(exec.RunUntil(Executor::kNearWindow * 4));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(exec.now(), Executor::kNearWindow * 4);
}

// Event-count regression: the executor dispatches exactly one event per
// resumption — K tasks each awaiting n delays is exactly K*n events, with
// no hidden polling, re-queuing, or bookkeeping events. A queue rewrite
// that changes this count changes the engine's cost model; update the
// arithmetic here only with a written justification.
TEST(Executor, EventCountPinnedForDelayGrid) {
  Executor exec;
  constexpr std::uint64_t kTasks = 7;
  constexpr std::uint64_t kDelays = 50;
  for (std::uint64_t t = 0; t < kTasks; ++t) {
    exec.Spawn([](Executor& e, std::uint64_t id, std::uint64_t n) -> Task<> {
      for (std::uint64_t i = 0; i < n; ++i) {
        // Mixed horizons: some delays stay near, some cross into the far
        // tier; the count must not depend on which tier served them.
        co_await e.Delay(1 + (id * 37 + i * 211) % (2 * Executor::kNearWindow));
      }
    }(exec, t, kDelays));
  }
  exec.Run();
  EXPECT_EQ(exec.events_dispatched(), kTasks * kDelays);
  EXPECT_EQ(exec.live_tasks(), 0u);
}

TEST(Executor, TaskExceptionPropagatesToAwaiter) {
  Executor exec;
  bool caught = false;
  auto thrower = []() -> Task<> {
    throw std::runtime_error("boom");
    co_return;  // unreachable; makes this a coroutine
  };
  exec.Spawn([](decltype(thrower)& th, bool& c) -> Task<> {
    try {
      co_await th();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(thrower, caught));
  exec.Run();
  EXPECT_TRUE(caught);
}

TEST(Event, SignalWakesAllCurrentWaiters) {
  Executor exec;
  Event event(exec);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    exec.Spawn([](Event& ev, int& w) -> Task<> {
      co_await ev.Wait();
      ++w;
    }(event, woken));
  }
  exec.CallAt(10, [&] { event.Signal(); });
  exec.Run();
  EXPECT_EQ(woken, 3);
}

TEST(Event, SignalOneWakesOldestOnly) {
  Executor exec;
  Event event(exec);
  std::vector<int> woken;
  for (int i = 0; i < 3; ++i) {
    exec.Spawn([](Event& ev, std::vector<int>& w, int id) -> Task<> {
      co_await ev.Wait();
      w.push_back(id);
    }(event, woken, i));
  }
  exec.CallAt(10, [&] { event.SignalOne(); });
  exec.Run();
  EXPECT_EQ(woken, (std::vector<int>{0}));
  EXPECT_EQ(event.waiter_count(), 2u);
}

TEST(Semaphore, LimitsConcurrencyFifo) {
  Executor exec;
  Semaphore sem(exec, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    exec.Spawn([](Executor& e, Semaphore& s, std::vector<int>& ord, int id) -> Task<> {
      co_await s.Acquire();
      ord.push_back(id);
      co_await e.Delay(10);
      s.Release();
    }(exec, sem, order, i));
  }
  exec.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(exec.now(), 30u);  // fully serialized
}

TEST(Mailbox, DeliversInOrderAndBlocksWhenEmpty) {
  Executor exec;
  Mailbox<int> box(exec);
  std::vector<int> got;
  exec.Spawn([](Mailbox<int>& b, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      out.push_back(co_await b.Recv());
    }
  }(box, got));
  exec.CallAt(5, [&] { box.Send(1); });
  exec.CallAt(6, [&] {
    box.Send(2);
    box.Send(3);
  });
  exec.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, TryRecvDoesNotBlock) {
  Executor exec;
  Mailbox<int> box(exec);
  int v = 0;
  EXPECT_FALSE(box.TryRecv(&v));
  box.Send(9);
  EXPECT_TRUE(box.TryRecv(&v));
  EXPECT_EQ(v, 9);
}

TEST(FifoResource, QueuesArrivalsFifo) {
  FifoResource r;
  EXPECT_EQ(r.ReserveAt(0, 10), 10u);
  EXPECT_EQ(r.ReserveAt(0, 10), 20u);   // queued behind the first
  EXPECT_EQ(r.ReserveAt(100, 10), 110u);  // idle gap: starts at arrival
  EXPECT_EQ(r.transactions(), 3u);
  EXPECT_EQ(r.total_busy(), 30u);
}

TEST(FifoResource, UtilizationOverHorizon) {
  FifoResource r;
  r.ReserveAt(0, 25);
  EXPECT_DOUBLE_EQ(r.Utilization(100), 0.25);
  EXPECT_DOUBLE_EQ(r.Utilization(0), 0.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    auto v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(1234);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(RunningStat, MeanAndStddev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.9), 90.0, 2.0);
}

// Regression: samples below the range floor used to land in bucket 0 (the
// [lo, lo+width) bucket) and masquerade as legitimate low samples. They must
// go to a dedicated underflow bucket that never inflates in-range buckets.
TEST(Histogram, UnderflowDoesNotConflateWithFirstBucket) {
  Histogram h(100, 200, 10);
  h.Add(-5);   // far below the floor
  h.Add(50);   // below the floor
  h.Add(100);  // exactly the floor: first real bucket
  h.Add(105);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 0u);
  // counts() layout: [underflow, bucket 0..N-1, overflow].
  ASSERT_EQ(h.buckets().size(), 12u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);  // the two in-range samples, unpolluted
  h.Add(250);  // above the ceiling
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
  // Percentile walks underflow first and reports the range floor for it.
  Histogram low(100, 200, 10);
  for (int i = 0; i < 10; ++i) {
    low.Add(0);
  }
  EXPECT_DOUBLE_EQ(low.Percentile(0.5), 100.0);
}

}  // namespace
}  // namespace mk::sim
