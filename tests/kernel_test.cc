// Tests for the CPU driver: LRPC paths, endpoints, blocked-task wakeup.
#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"

namespace mk::kernel {
namespace {

using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)), drivers(CpuDriver::BootAll(machine)) {}
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
};

TEST(CpuDriver, BootAllCreatesOnePerCore) {
  Fixture f;
  EXPECT_EQ(f.drivers.size(), 16u);
  EXPECT_EQ(f.drivers[5]->core(), 5);
}

TEST(CpuDriver, LrpcCallRunsHandlerAfterOneWayPath) {
  Fixture f;
  CpuDriver& drv = *f.drivers[0];
  Cycles handler_at = 0;
  LrpcMsg got;
  auto ep = drv.RegisterEndpoint([&](const LrpcMsg& m) -> Task<> {
    handler_at = f.exec.now();
    got = m;
    co_return;
  });
  f.exec.Spawn([](CpuDriver& d, EndpointId e) -> Task<> {
    co_await d.LrpcCall(e, LrpcMsg{1, 2, 3, 4});
  }(drv, ep));
  f.exec.Run();
  EXPECT_EQ(handler_at, drv.LrpcOneWayCost());
  EXPECT_EQ(got.tag, 1u);
  EXPECT_EQ(got.arg2, 4u);
  EXPECT_EQ(drv.messages_delivered(), 1u);
}

// Table 1 calibration: LRPC one-way latency per platform.
struct LrpcCase {
  const char* platform;
  Cycles paper;
};

class LrpcCalibration : public ::testing::TestWithParam<LrpcCase> {};

TEST_P(LrpcCalibration, MatchesTable1) {
  const auto& p = GetParam();
  hw::PlatformSpec spec;
  for (auto& s : hw::PaperPlatforms()) {
    if (s.name == p.platform) {
      spec = s;
    }
  }
  ASSERT_FALSE(spec.name.empty());
  Fixture f(spec);
  EXPECT_EQ(f.drivers[0]->LrpcOneWayCost(), p.paper) << p.platform;
}

INSTANTIATE_TEST_SUITE_P(Table1, LrpcCalibration,
                         ::testing::Values(LrpcCase{"2x4-core Intel", 845},
                                           LrpcCase{"2x2-core AMD", 757},
                                           LrpcCase{"4x4-core AMD", 1463},
                                           LrpcCase{"8x4-core AMD", 1549}));

TEST(CpuDriver, LrpcSendIsSplitPhase) {
  Fixture f;
  CpuDriver& drv = *f.drivers[0];
  Cycles sender_resumed_at = 0;
  Cycles handler_at = 0;
  auto ep = drv.RegisterEndpoint([&](const LrpcMsg&) -> Task<> {
    handler_at = f.exec.now();
    co_return;
  });
  f.exec.Spawn([](sim::Executor& e, CpuDriver& d, EndpointId id, Cycles& out) -> Task<> {
    co_await d.LrpcSend(id, LrpcMsg{});
    out = e.now();
  }(f.exec, drv, ep, sender_resumed_at));
  f.exec.Run();
  // Sender pays only the syscall; delivery completes later.
  EXPECT_EQ(sender_resumed_at, f.machine.cost().syscall);
  EXPECT_GE(handler_at, sender_resumed_at);
}

TEST(CpuDriver, LrpcBadEndpointThrows) {
  Fixture f;
  bool threw = false;
  f.exec.Spawn([](CpuDriver& d, bool& out) -> Task<> {
    try {
      co_await d.LrpcCall(99, LrpcMsg{});
    } catch (const std::out_of_range&) {
      out = true;
    }
  }(*f.drivers[0], threw));
  f.exec.Run();
  EXPECT_TRUE(threw);
}

TEST(CpuDriver, LrpcCallsSerializeOnTheCore) {
  // Two concurrent callers on one core: kernel paths must not overlap.
  Fixture f;
  CpuDriver& drv = *f.drivers[0];
  auto ep = drv.RegisterEndpoint([](const LrpcMsg&) -> Task<> { co_return; });
  for (int i = 0; i < 2; ++i) {
    f.exec.Spawn([](CpuDriver& d, EndpointId e) -> Task<> {
      co_await d.LrpcCall(e, LrpcMsg{});
    }(drv, ep));
  }
  Cycles end = f.exec.Run();
  EXPECT_GE(end, 2 * drv.LrpcOneWayCost());
}

TEST(CpuDriver, WakeupIpiSignalsBlockedEventWithCostC) {
  Fixture f;
  CpuDriver& sleeper = *f.drivers[0];
  CpuDriver& waker = *f.drivers[4];
  Cycles woke_at = 0;
  sim::Event wake(f.exec);
  auto token = sleeper.RegisterBlocked(&wake);
  EXPECT_TRUE(sleeper.IsBlocked(token));
  f.exec.Spawn([](sim::Executor& e, sim::Event& ev, Cycles& out) -> Task<> {
    co_await ev.Wait();
    out = e.now();
  }(f.exec, wake, woke_at));
  f.exec.Spawn([](CpuDriver& w, CpuDriver& s, CpuDriver::WakeToken t) -> Task<> {
    co_await w.SendWakeupIpi(s, t);
  }(waker, sleeper, token));
  f.exec.Run();
  const auto& c = f.machine.cost();
  // Wake-up cost: IPI send + wire + trap + context switch + dispatch.
  Cycles min_cost = c.ipi_send + c.ipi_wire + c.trap + c.context_switch;
  EXPECT_GE(woke_at, min_cost);
  EXPECT_FALSE(sleeper.IsBlocked(token));
}

TEST(CpuDriver, CancelBlockedPreventsWake) {
  Fixture f;
  CpuDriver& sleeper = *f.drivers[0];
  sim::Event wake(f.exec);
  auto token = sleeper.RegisterBlocked(&wake);
  sleeper.CancelBlocked(token);
  EXPECT_FALSE(sleeper.IsBlocked(token));
  f.exec.Spawn([](CpuDriver& w, CpuDriver& s, CpuDriver::WakeToken t) -> Task<> {
    co_await w.SendWakeupIpi(s, t);
  }(*f.drivers[1], sleeper, token));
  f.exec.Run();
  EXPECT_EQ(wake.waiter_count(), 0u);  // nothing was waiting; no crash
}

TEST(CpuDriver, StaleWakeupIpiIsIgnored) {
  Fixture f;
  // IPI arrives with an empty pending queue: must be a no-op.
  f.exec.Spawn([](hw::Machine& m) -> Task<> {
    co_await m.ipi().Send(1, 0, kVectorWakeup);
  }(f.machine));
  f.exec.Run();
  SUCCEED();
}

}  // namespace
}  // namespace mk::kernel
