// src/cluster/ unit coverage: DcFabric MAC routing, L4Balancer rendezvous
// steering consistency, ClusterMembership epochs and incarnation fencing,
// and an end-to-end one-backend rack smoke (heartbeats crossing the real
// switch keep the view all-live).
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/balancer.h"
#include "cluster/fabric.h"
#include "cluster/membership.h"
#include "cluster/topology.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk {
namespace {

using sim::Cycles;
using sim::Task;

net::SimNic::Config HostNicConfig() {
  net::SimNic::Config cfg;
  cfg.gbps = 100.0;
  cfg.irq_core = 0;
  return cfg;
}

// --- DcFabric -------------------------------------------------------------

TEST(DcFabricTest, RoutesByMacAndDropsUnknownDestinations) {
  sim::ParallelEngine::Options eopts;
  eopts.domains = 3;
  sim::ParallelEngine engine(eopts);
  hw::Machine sw(engine.domain(0), hw::Amd4x4());
  hw::Machine host_a(engine.domain(1), hw::Amd2x2());
  hw::Machine host_b(engine.domain(2), hw::Amd2x2());
  net::SimNic nic_a(host_a, HostNicConfig());
  net::SimNic nic_b(host_b, HostNicConfig());

  cluster::DcFabric fabric(engine, 0, sw);
  const int port_a = fabric.AddPort(1, nic_a, 100.0, 5'000);
  const int port_b = fabric.AddPort(2, nic_b, 100.0, 5'000);
  const net::MacAddr mac_b{2, 0, 0, 0, 0, 9};
  fabric.AddRoute(mac_b, port_b);
  (void)port_a;
  fabric.Start();

  struct Send {
    static Task<> Run(net::SimNic& nic, net::MacAddr dst) {
      net::Packet p(64, 0);
      for (std::size_t i = 0; i < 6; ++i) {
        p[i] = dst[i];
      }
      (void)co_await nic.DriverTxPush(0, std::move(p));
    }
  };
  struct Recv {
    static Task<> Run(hw::Machine& m, net::SimNic& nic, int* got) {
      while (*got == 0) {
        if (nic.RxReady()) {
          nic.SetInterruptsEnabled(0, false);
          auto frame = co_await nic.DriverRxPop(0);
          if (frame) {
            ++*got;
          }
          continue;
        }
        co_await m.exec().Delay(1);
      }
    }
  };

  int got = 0;
  engine.domain(1).Spawn(Send::Run(nic_a, mac_b));
  engine.domain(1).Spawn(Send::Run(nic_a, net::MacAddr{6, 6, 6, 6, 6, 6}));
  engine.domain(2).Spawn(Recv::Run(host_b, nic_b, &got));
  engine.Run();

  EXPECT_EQ(got, 1);
  EXPECT_EQ(fabric.forwarded(), 1u);
  EXPECT_EQ(fabric.unknown_dst_drops(), 1u);
}

// --- L4Balancer steering + ClusterMembership ------------------------------

// Balancer world on one executor: membership fed directly via OnHeartbeat.
struct SteerWorld {
  SteerWorld(int backends)
      : machine(exec, hw::Amd4x4()),
        nic(machine, HostNicConfig()),
        stack(machine, 0, cluster::ClusterTopology::kBalancerIp,
              cluster::ClusterTopology::BalancerMac(), net::StackCosts{}),
        membership(machine, stack,
                   {.backends = backends,
                    .heartbeat_timeout = 400'000,
                    .sweep_period = 100'000,
                    .port = 7100}) {
    std::vector<net::MacAddr> macs;
    for (int b = 0; b < backends; ++b) {
      macs.push_back(cluster::ClusterTopology::BackendMac(b));
    }
    balancer = std::make_unique<cluster::L4Balancer>(
        machine, nic, membership, macs,
        cluster::L4Balancer::Options{.vip = cluster::ClusterTopology::kVip});
  }

  sim::Executor exec;
  hw::Machine machine;
  net::SimNic nic;
  net::NetStack stack;
  cluster::ClusterMembership membership;
  std::unique_ptr<cluster::L4Balancer> balancer;
};

net::FlowTuple Tuple(std::uint16_t src_port) {
  net::FlowTuple t;
  t.src_ip = cluster::ClusterTopology::kClientIp;
  t.dst_ip = cluster::ClusterTopology::kVip;
  t.src_port = src_port;
  t.dst_port = 80;
  t.proto = 6;
  return t;
}

TEST(L4BalancerTest, PickBackendIsDeterministicAndBalanced) {
  SteerWorld w(4);
  std::vector<int> counts(4, 0);
  for (int p = 0; p < 256; ++p) {
    const int b = w.balancer->PickBackend(Tuple(static_cast<std::uint16_t>(1000 + p)));
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    // Pure function of the tuple: repeated picks agree.
    EXPECT_EQ(w.balancer->PickBackend(Tuple(static_cast<std::uint16_t>(1000 + p))), b);
    ++counts[static_cast<std::size_t>(b)];
  }
  for (int b = 0; b < 4; ++b) {
    EXPECT_GT(counts[static_cast<std::size_t>(b)], 0) << "backend " << b;
  }
}

TEST(L4BalancerTest, DeathMovesOnlyTheDeadBackendsFlows) {
  SteerWorld w(4);
  const int kFlows = 256;
  std::vector<int> before;
  for (int p = 0; p < kFlows; ++p) {
    before.push_back(w.balancer->PickBackend(Tuple(static_cast<std::uint16_t>(p))));
  }

  // Run the sweep with heartbeats for every backend except 2: it is declared
  // dead after the timeout, everyone else stays live.
  struct Feed {
    static Task<> Run(SteerWorld& w, Cycles horizon) {
      std::uint64_t seq = 0;
      while (w.exec.now() < horizon) {
        ++seq;
        for (int b = 0; b < 4; ++b) {
          if (b != 2) {
            w.membership.OnHeartbeat(static_cast<std::uint32_t>(b), 1, seq,
                                     w.exec.now());
          }
        }
        co_await w.exec.Delay(100'000);
      }
    }
  };
  w.membership.Start(/*horizon=*/1'000'000);
  w.exec.Spawn(Feed::Run(w, 1'000'000));
  w.exec.Run();

  EXPECT_FALSE(w.membership.view().live[2]);
  EXPECT_EQ(w.membership.view().epoch, 2u);
  EXPECT_EQ(w.membership.view_changes(), 1u);

  int moved = 0;
  for (int p = 0; p < kFlows; ++p) {
    const int after = w.balancer->PickBackend(Tuple(static_cast<std::uint16_t>(p)));
    ASSERT_NE(after, 2);
    if (before[static_cast<std::size_t>(p)] == 2) {
      ++moved;
    } else {
      // Rendezvous property: surviving backends keep their flows.
      EXPECT_EQ(after, before[static_cast<std::size_t>(p)]) << "flow " << p;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ClusterMembershipTest, FencesStaleSeqAndDeadIncarnations) {
  SteerWorld w(2);
  auto& m = w.membership;

  m.OnHeartbeat(0, 1, 1, 0);
  EXPECT_EQ(m.heartbeats_accepted(), 1u);
  // Duplicate / reordered seq within the incarnation: dropped as stale.
  m.OnHeartbeat(0, 1, 1, 10);
  EXPECT_EQ(m.heartbeats_accepted(), 1u);
  EXPECT_EQ(m.stale_dropped(), 1u);
  // A higher incarnation resets the sequence fence.
  m.OnHeartbeat(0, 2, 1, 20);
  EXPECT_EQ(m.heartbeats_accepted(), 2u);
  // A lower incarnation is stale.
  m.OnHeartbeat(0, 1, 99, 30);
  EXPECT_EQ(m.stale_dropped(), 2u);
  // Out-of-range id never crashes, only counts.
  m.OnHeartbeat(7, 1, 1, 40);
  EXPECT_EQ(m.stale_dropped(), 3u);

  // Let backend 1 die (no beats at all); subscribers see exactly one change.
  int deaths = 0;
  int dead_id = -1;
  m.Subscribe([&](const cluster::ClusterView& v, int dead) {
    ++deaths;
    dead_id = dead;
    EXPECT_EQ(v.NumLive(), 1);
  });
  struct Feed {
    static Task<> Run(SteerWorld& w, Cycles horizon) {
      std::uint64_t seq = 100;
      while (w.exec.now() < horizon) {
        ++seq;
        w.membership.OnHeartbeat(0, 2, seq, w.exec.now());
        co_await w.exec.Delay(100'000);
      }
    }
  };
  m.Start(/*horizon=*/1'000'000);
  w.exec.Spawn(Feed::Run(w, 1'000'000));
  w.exec.Run();

  EXPECT_EQ(deaths, 1);
  EXPECT_EQ(dead_id, 1);
  // Once dead, even a matching-incarnation beat never resurrects.
  const std::uint64_t stale_before = m.stale_dropped();
  m.OnHeartbeat(1, 1, 1000, 2'000'000);
  EXPECT_EQ(m.stale_dropped(), stale_before + 1);
  EXPECT_FALSE(m.view().live[1]);
  EXPECT_EQ(m.view().epoch, 2u);
}

// --- End-to-end rack smoke ------------------------------------------------

// One backend, real switch, real heartbeat datagrams: after 2M cycles the
// view is still all-live and beats crossed the fabric.
TEST(ClusterTopologyTest, OneBackendRackHeartbeatsKeepViewLive) {
  cluster::ClusterTopology::Options opts;
  opts.backends = 1;
  opts.shards_per_backend = 2;
  cluster::ClusterTopology topo(opts);
  topo.Start(/*horizon=*/2'000'000);
  topo.engine().Run();

  EXPECT_EQ(topo.membership().view().epoch, 1u);
  EXPECT_TRUE(topo.membership().view().live[0]);
  EXPECT_EQ(topo.membership().stale_dropped(), 0u);
  // ~one beat per 100k for 2M, minus ramp: comfortably more than 10.
  EXPECT_GT(topo.membership().heartbeats_accepted(), 10u);
  // Every accepted beat was switched once (backend port in, balancer port
  // out) and reached the balancer as a management frame.
  EXPECT_GE(topo.fabric().forwarded(),
            topo.membership().heartbeats_accepted());
  EXPECT_EQ(topo.fabric().unknown_dst_drops(), 0u);
  EXPECT_EQ(topo.balancer().mgmt_frames(), topo.fabric().forwarded());
}

}  // namespace
}  // namespace mk
