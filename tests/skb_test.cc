// Tests for the system knowledge base: fact store, discovery, measurement,
// and route construction.
#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk::skb {
namespace {

using sim::Task;

TEST(FactStore, AssertQueryRetract) {
  FactStore fs;
  fs.Assert("core", {0, 0});
  fs.Assert("core", {1, 0});
  fs.Assert("core", {4, 1});
  EXPECT_EQ(fs.size(), 3u);
  auto in_pkg0 = fs.Query("core", {FactStore::kWildcard, 0});
  EXPECT_EQ(in_pkg0.size(), 2u);
  auto exact = fs.Query("core", {4, 1});
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0][0], 4);
  EXPECT_TRUE(fs.Query("nothing", {FactStore::kWildcard}).empty());
  EXPECT_EQ(fs.Retract("core", {FactStore::kWildcard, 0}), 2u);
  EXPECT_EQ(fs.size(), 1u);
}

TEST(FactStore, ArityMismatchNeverMatches) {
  FactStore fs;
  fs.Assert("link", {0, 1});
  EXPECT_TRUE(fs.Query("link", {0}).empty());
  EXPECT_TRUE(fs.Query("link", {0, 1, 2}).empty());
}

struct SkbFixture {
  SkbFixture() : machine(exec, hw::Amd8x4()), skb(machine) {
    skb.PopulateFromHardware();
  }
  sim::Executor exec;
  hw::Machine machine;
  Skb skb;
};

TEST(Skb, DiscoveryPopulatesTopologyFacts) {
  SkbFixture f;
  EXPECT_EQ(f.skb.facts().All("core").size(), 32u);
  EXPECT_EQ(f.skb.facts().All("core_speed_milli").size(), 32u);
  EXPECT_EQ(f.skb.facts().Query("core_speed_milli", {0, 1000}).size(), 1u);
  EXPECT_EQ(f.skb.facts().All("package").size(), 8u);
  EXPECT_FALSE(f.skb.facts().All("link").empty());
  // shares_cache holds exactly for same-package pairs: 8 * C(4,2) = 48.
  EXPECT_EQ(f.skb.facts().All("shares_cache").size(), 48u);
}

TEST(Skb, OnlineMeasurementAssertsLatencyFacts) {
  SkbFixture f;
  f.exec.Spawn(f.skb.MeasureUrpcLatencies());
  f.exec.Run();
  auto measured = f.skb.facts().All("urpc_latency");
  // One per ordered package pair (56) + one shared pair per package (8).
  EXPECT_EQ(measured.size(), 64u);
  // A shared-cache pair must measure cheaper than a cross-package pair.
  EXPECT_LT(f.skb.UrpcLatency(0, 1), f.skb.UrpcLatency(0, 4));
  // The measured value is close to the paper's Table 2 (shared: 538).
  EXPECT_NEAR(static_cast<double>(f.skb.UrpcLatency(0, 1)), 538.0, 538.0 * 0.15);
}

TEST(Skb, LatencyFallsBackToEstimateWithoutMeasurement) {
  SkbFixture f;
  // No measurement run: estimates from the cost book.
  EXPECT_GT(f.skb.UrpcLatency(0, 4), 0u);
  EXPECT_EQ(f.skb.UrpcLatency(3, 3), 0u);
  EXPECT_LT(f.skb.UrpcLatency(0, 1), f.skb.UrpcLatency(0, 28));
}

TEST(Skb, MulticastRouteCoversAllCoresOncePerPackage) {
  SkbFixture f;
  MulticastRoute route = f.skb.BuildMulticastRoute(0, /*numa_aware=*/false);
  EXPECT_EQ(route.nodes.size(), 8u);
  std::vector<bool> seen(32, false);
  for (const auto& node : route.nodes) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(node.leader)]);
    seen[static_cast<std::size_t>(node.leader)] = true;
    for (int m : node.members) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(m)]);
      seen[static_cast<std::size_t>(m)] = true;
      // Members share a package with their leader.
      EXPECT_EQ(f.machine.topo().PackageOf(m), node.package);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Skb, SourcePackageLeaderIsTheSourceItself) {
  SkbFixture f;
  MulticastRoute route = f.skb.BuildMulticastRoute(5, false);
  bool found = false;
  for (const auto& node : route.nodes) {
    if (node.package == f.machine.topo().PackageOf(5)) {
      EXPECT_EQ(node.leader, 5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Skb, NumaAwareRouteOrdersByDecreasingLatency) {
  SkbFixture f;
  f.exec.Spawn(f.skb.MeasureUrpcLatencies());
  f.exec.Run();
  MulticastRoute route = f.skb.BuildMulticastRoute(0, /*numa_aware=*/true);
  for (std::size_t i = 1; i < route.nodes.size(); ++i) {
    EXPECT_GE(route.nodes[i - 1].est_latency, route.nodes[i].est_latency);
  }
  // The farthest package goes first and the source's own package last.
  EXPECT_EQ(route.nodes.back().leader, 0);
}

TEST(Skb, UnicastOrderFarthestFirst) {
  SkbFixture f;
  auto order = f.skb.UnicastOrder(0, /*farthest_first=*/true);
  EXPECT_EQ(order.size(), 31u);
  // No duplicates, source excluded.
  EXPECT_EQ(std::count(order.begin(), order.end(), 0), 0);
  EXPECT_GE(f.skb.UrpcLatency(0, order.front()), f.skb.UrpcLatency(0, order.back()));
}

TEST(Skb, PlaceDriverPrefersLeastLoadedCoreInDevicePackage) {
  SkbFixture f;
  EXPECT_EQ(f.skb.PlaceDriver(2), 8);  // first core of package 2 when unloaded
  f.skb.facts().Assert("load", {8, 10});
  f.skb.facts().Assert("load", {9, 1});
  f.skb.facts().Assert("load", {10, 5});
  f.skb.facts().Assert("load", {11, 5});
  EXPECT_EQ(f.skb.PlaceDriver(2), 9);
}

TEST(Skb, BufferNodeFavorsReceiverLocality) {
  SkbFixture f;
  int node = f.skb.BufferNode(0, 9);  // sender core 0 (pkg 0), receiver pkg 2
  EXPECT_EQ(node, 2);
}

}  // namespace
}  // namespace mk::skb
