// Tests for URPC channels: latency calibration, ordering, flow control,
// poll-then-block receive, prefetch option.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "urpc/channel.h"

namespace mk::urpc {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)), drivers(CpuDriver::BootAll(machine)) {}
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
};

TEST(Message, PackUnpackRoundTrip) {
  struct Payload {
    std::uint32_t a;
    double b;
  };
  Message m = Pack(7, Payload{42, 2.5});
  EXPECT_EQ(m.tag, 7u);
  EXPECT_EQ(m.len, sizeof(Payload));
  auto p = Unpack<Payload>(m);
  EXPECT_EQ(p.a, 42u);
  EXPECT_DOUBLE_EQ(p.b, 2.5);
}

TEST(Channel, RejectsZeroSlots) {
  Fixture f;
  EXPECT_THROW(Channel(f.machine, 0, 1, ChannelOptions{.slots = 0}), std::invalid_argument);
}

TEST(Channel, SingleMessageLatencyNearTable2) {
  // One-hop pair on the 4x4 AMD: paper reports 545 cycles.
  Fixture f;
  Channel ch(f.machine, 0, 4);
  Cycles send_at = 0;
  Cycles recv_at = 0;
  f.exec.Spawn([](sim::Executor& e, Channel& c, Cycles& out) -> Task<> {
    out = e.now();
    co_await c.Send(Pack(1, int{99}));
  }(f.exec, ch, send_at));
  f.exec.Spawn([](sim::Executor& e, Channel& c, Cycles& out) -> Task<> {
    Message m = co_await c.Recv();
    out = e.now();
    EXPECT_EQ(Unpack<int>(m), 99);
  }(f.exec, ch, recv_at));
  f.exec.Run();
  Cycles latency = recv_at - send_at;
  EXPECT_NEAR(static_cast<double>(latency), 545.0, 545.0 * 0.15);
}

TEST(Channel, SharedCachePairIsFaster) {
  Fixture f;
  Channel shared(f.machine, 0, 1);  // same package: shared L3
  Channel cross(f.machine, 0, 4);   // one hop
  auto measure = [&](Channel& c) {
    Cycles done = 0;
    f.exec.Spawn([](Channel& ch) -> Task<> { co_await ch.Send(Pack(0, 1)); }(c));
    f.exec.Spawn([](sim::Executor& e, Channel& ch, Cycles& out) -> Task<> {
      (void)co_await ch.Recv();
      out = e.now();
    }(f.exec, c, done));
    Cycles start = f.exec.now();
    f.exec.Run();
    return done - start;
  };
  Cycles t_shared = measure(shared);
  Cycles t_cross = measure(cross);
  EXPECT_LT(t_shared, t_cross);
}

TEST(Channel, MessagesArriveInFifoOrder) {
  Fixture f;
  Channel ch(f.machine, 0, 8);
  std::vector<int> got;
  f.exec.Spawn([](Channel& c) -> Task<> {
    for (int i = 0; i < 40; ++i) {
      co_await c.SendPosted(Pack(0, i));
    }
  }(ch));
  f.exec.Spawn([](Channel& c, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 40; ++i) {
      out.push_back(Unpack<int>(co_await c.Recv()));
    }
  }(ch, got));
  f.exec.Run();
  ASSERT_EQ(got.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(Channel, FlowControlBlocksSenderAtWindow) {
  Fixture f;
  Channel ch(f.machine, 0, 4, ChannelOptions{.slots = 4});
  int sent = 0;
  f.exec.Spawn([](Channel& c, int& out) -> Task<> {
    for (int i = 0; i < 12; ++i) {
      co_await c.SendPosted(Pack(0, i));
      ++out;
    }
  }(ch, sent));
  // No receiver yet: the sender must stall at the window.
  f.exec.RunUntil(1'000'000);
  EXPECT_EQ(sent, 4);
  // Receiver drains; sender finishes.
  f.exec.Spawn([](Channel& c) -> Task<> {
    for (int i = 0; i < 12; ++i) {
      (void)co_await c.Recv();
    }
  }(ch));
  f.exec.Run();
  EXPECT_EQ(sent, 12);
}

TEST(Channel, TryRecvNonBlocking) {
  Fixture f;
  Channel ch(f.machine, 0, 4);
  f.exec.Spawn([](Channel& c) -> Task<> {
    Message m;
    bool ok = co_await c.TryRecv(&m);
    EXPECT_FALSE(ok);
    co_await c.Send(Pack(0, 5));
    ok = co_await c.TryRecv(&m);
    EXPECT_TRUE(ok);
    EXPECT_EQ(Unpack<int>(m), 5);
  }(ch));
  f.exec.Run();
}

TEST(Channel, RecvBlockingFastWhenMessageArrivesInPollWindow) {
  Fixture f;
  Channel ch(f.machine, 0, 4);
  Cycles recv_at = 0;
  f.exec.Spawn([](sim::Executor& e, Channel& c, CpuDriver& local, CpuDriver& snd,
                  Cycles& out) -> Task<> {
    Message m = co_await c.RecvBlocking(local, snd, 6000);
    out = e.now();
    EXPECT_EQ(Unpack<int>(m), 1);
  }(f.exec, ch, *f.drivers[4], *f.drivers[0], recv_at));
  f.exec.CallAt(500, [&] {
    f.exec.Spawn([](Channel& c) -> Task<> { co_await c.Send(Pack(0, 1)); }(ch));
  });
  f.exec.Run();
  // No IPI involved: latency ~ send time + fetch.
  EXPECT_LT(recv_at, 2500u);
  EXPECT_EQ(f.machine.counters().core(4).ipis_received, 0u);
}

TEST(Channel, RecvBlockingUsesIpiWakeupAfterPollWindow) {
  Fixture f;
  Channel ch(f.machine, 0, 4);
  Cycles recv_at = 0;
  const Cycles poll_window = 3000;
  const Cycles send_time = 20000;
  f.exec.Spawn([](sim::Executor& e, Channel& c, CpuDriver& local, CpuDriver& snd,
                  Cycles window, Cycles& out) -> Task<> {
    (void)co_await c.RecvBlocking(local, snd, window);
    out = e.now();
  }(f.exec, ch, *f.drivers[4], *f.drivers[0], poll_window, recv_at));
  f.exec.CallAt(send_time, [&] {
    f.exec.Spawn([](Channel& c) -> Task<> { co_await c.Send(Pack(0, 1)); }(ch));
  });
  f.exec.Run();
  EXPECT_EQ(f.machine.counters().core(4).ipis_received, 1u);
  const auto& c = f.machine.cost();
  // Message latency includes the wake-up cost C (trap + context switch).
  EXPECT_GE(recv_at, send_time + c.trap + c.context_switch);
}

TEST(Channel, PrefetchLowersPipelinedReceiveCost) {
  auto run = [](bool prefetch) {
    Fixture f;
    Channel ch(f.machine, 0, 4, ChannelOptions{.slots = 16, .prefetch = prefetch});
    f.exec.Spawn([](Channel& c) -> Task<> {
      for (int i = 0; i < 200; ++i) {
        co_await c.SendPosted(Pack(0, i));
      }
    }(ch));
    f.exec.Spawn([](Channel& c) -> Task<> {
      for (int i = 0; i < 200; ++i) {
        (void)co_await c.Recv();
      }
    }(ch));
    return f.exec.Run();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Channel, PipelinedThroughputNearTable2) {
  // 4x4 AMD one-hop: paper reports 3.53 msgs/kcycle with queue length 16.
  Fixture f;
  Channel ch(f.machine, 0, 4, ChannelOptions{.slots = 16});
  const int kMessages = 2000;
  f.exec.Spawn([](Channel& c) -> Task<> {
    for (int i = 0; i < kMessages; ++i) {
      co_await c.SendPosted(Pack(0, i));
    }
  }(ch));
  f.exec.Spawn([](Channel& c) -> Task<> {
    for (int i = 0; i < kMessages; ++i) {
      (void)co_await c.Recv();
    }
  }(ch));
  Cycles elapsed = f.exec.Run();
  double msgs_per_kcycle = 1000.0 * kMessages / static_cast<double>(elapsed);
  EXPECT_NEAR(msgs_per_kcycle, 3.53, 3.53 * 0.30);
}

TEST(Channel, NumaNodeOptionPlacesBuffer) {
  Fixture f;
  Channel ch(f.machine, 0, 12, ChannelOptions{.slots = 4, .numa_node = 3});
  // The flow-control ack line lives on node 3 too; verify via the first
  // memory fetch cost asymmetry (receiver in package 3 fetches locally).
  EXPECT_EQ(ch.options().numa_node, 3);
}

}  // namespace
}  // namespace mk::urpc
