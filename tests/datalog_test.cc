// Tests for the SKB's Datalog-lite evaluator.
#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "skb/datalog.h"
#include "skb/skb.h"

namespace mk::skb {
namespace {

TEST(DatalogParse, AcceptsRulesAndRejectsGarbage) {
  EXPECT_TRUE(Datalog::Parse("connected(X, Y) :- link(X, Y).").has_value());
  EXPECT_TRUE(Datalog::Parse("p(X) :- q(X, 3), r(3, X).").has_value());
  EXPECT_TRUE(Datalog::Parse("p(X,Z):-q(X,Y),q(Y,Z)").has_value());
  EXPECT_FALSE(Datalog::Parse("p(X)").has_value());            // no body
  EXPECT_FALSE(Datalog::Parse("p(X) :- ").has_value());        // empty body
  EXPECT_FALSE(Datalog::Parse(":- q(X)").has_value());         // no head
  EXPECT_FALSE(Datalog::Parse("p(X) :- q(X) extra").has_value());
}

TEST(Datalog, DerivesSymmetricClosure) {
  FactStore facts;
  facts.Assert("link", {0, 1});
  facts.Assert("link", {1, 3});
  Datalog dl(facts);
  ASSERT_TRUE(dl.AddRuleText("connected(X, Y) :- link(X, Y)."));
  ASSERT_TRUE(dl.AddRuleText("connected(X, Y) :- link(Y, X)."));
  std::size_t added = dl.Evaluate();
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(facts.Query("connected", {1, 0}).size(), 1u);
  EXPECT_EQ(facts.Query("connected", {3, 1}).size(), 1u);
}

TEST(Datalog, TransitiveClosureReachesFixpoint) {
  FactStore facts;
  // A chain 0 -> 1 -> 2 -> 3.
  facts.Assert("link", {0, 1});
  facts.Assert("link", {1, 2});
  facts.Assert("link", {2, 3});
  Datalog dl(facts);
  ASSERT_TRUE(dl.AddRuleText("reachable(X, Y) :- link(X, Y)."));
  ASSERT_TRUE(dl.AddRuleText("reachable(X, Z) :- reachable(X, Y), link(Y, Z)."));
  dl.Evaluate();
  EXPECT_EQ(facts.All("reachable").size(), 6u);  // all ordered pairs i<j
  EXPECT_EQ(facts.Query("reachable", {0, 3}).size(), 1u);
  EXPECT_TRUE(facts.Query("reachable", {3, 0}).empty());
  // Re-evaluation is idempotent.
  EXPECT_EQ(dl.Evaluate(), 0u);
}

TEST(Datalog, ConstantsInBodyFilter) {
  FactStore facts;
  facts.Assert("core", {0, 0});
  facts.Assert("core", {1, 0});
  facts.Assert("core", {4, 1});
  Datalog dl(facts);
  ASSERT_TRUE(dl.AddRuleText("pkg0_core(X) :- core(X, 0)."));
  dl.Evaluate();
  EXPECT_EQ(facts.All("pkg0_core").size(), 2u);
}

TEST(Datalog, UnsafeRuleDerivesNothing) {
  FactStore facts;
  facts.Assert("q", {1});
  Datalog dl(facts);
  ASSERT_TRUE(dl.AddRuleText("p(X, Y) :- q(X)."));  // Y unbound
  EXPECT_EQ(dl.Evaluate(), 0u);
}

TEST(Datalog, JoinsAcrossRelations) {
  FactStore facts;
  facts.Assert("core", {0, 0});
  facts.Assert("core", {4, 1});
  facts.Assert("core", {8, 2});
  facts.Assert("link", {0, 1});
  facts.Assert("link", {1, 2});
  Datalog dl(facts);
  // Cores whose packages are directly linked.
  ASSERT_TRUE(dl.AddRuleText(
      "neighbor_core(A, B) :- core(A, P), core(B, Q), link(P, Q)."));
  dl.Evaluate();
  auto rows = facts.All("neighbor_core");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(facts.Query("neighbor_core", {0, 4}).size(), 1u);
  EXPECT_EQ(facts.Query("neighbor_core", {4, 8}).size(), 1u);
}

TEST(Datalog, FullMachineConnectivity) {
  // On every paper platform: the interconnect facts are strongly connected
  // under the symmetric reachability rules.
  for (const auto& spec : hw::PaperPlatforms()) {
    sim::Executor exec;
    hw::Machine machine(exec, spec);
    Skb skb(machine);
    skb.PopulateFromHardware();
    Datalog dl(skb.facts());
    ASSERT_TRUE(dl.AddRuleText("conn(X, Y) :- link(X, Y)."));
    ASSERT_TRUE(dl.AddRuleText("conn(X, Y) :- link(Y, X)."));
    ASSERT_TRUE(dl.AddRuleText("reach(X, Y) :- conn(X, Y)."));
    ASSERT_TRUE(dl.AddRuleText("reach(X, Z) :- reach(X, Y), conn(Y, Z)."));
    dl.Evaluate();
    int pkgs = machine.topo().num_packages();
    for (int a = 0; a < pkgs; ++a) {
      for (int b = 0; b < pkgs; ++b) {
        if (a != b) {
          EXPECT_EQ(skb.facts().Query("reach", {a, b}).size(), 1u)
              << spec.name << " " << a << "->" << b;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mk::skb
