// Property and stress tests for the scalable synchronization library
// (src/proc/sync): mutual exclusion under randomized contender fuzz, MCS
// FIFO fairness, tournament-barrier correctness at power-of-two and odd
// party counts, bit-identical replay across host thread counts, and chaos
// runs under IPI-delay and link-latency fault injection (no lost wakeups,
// no stuck waiters).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "proc/sync/sync.h"
#include "proc/threads.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "sim/random.h"

namespace mk::proc::sync {
namespace {

using sim::Cycles;
using sim::Task;

struct Fixture {
  Fixture() : machine(exec, hw::Amd4x4()) {}
  sim::Executor exec;
  hw::Machine machine;
};

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

// ---------------------------------------------------------------------------
// Mutual exclusion under randomized contender fuzz.

struct CriticalProbe {
  int in = 0;
  int peak = 0;
  int total = 0;
};

Task<> McsFuzzWorker(hw::Machine& m, McsLock& lock, CriticalProbe& probe, int core,
                     int iters, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    co_await m.exec().Delay(rng.Below(600));
    co_await lock.Acquire(core);
    ++probe.in;
    probe.peak = std::max(probe.peak, probe.in);
    EXPECT_EQ(lock.holder(), core);
    co_await m.Compute(core, 40 + rng.Below(160));
    --probe.in;
    ++probe.total;
    co_await lock.Release(core);
  }
}

TEST(McsLock, MutualExclusionUnderContenderFuzz) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    Fixture f;
    sim::Rng shape(seed);
    const int contenders = static_cast<int>(2 + shape.Below(15));  // 2..16
    const int iters = static_cast<int>(2 + shape.Below(5));        // 2..6
    McsLock lock(f.machine);
    CriticalProbe probe;
    for (int c = 0; c < contenders; ++c) {
      f.exec.Spawn(McsFuzzWorker(f.machine, lock, probe, c, iters,
                                 seed * 1000 + static_cast<std::uint64_t>(c)));
    }
    f.exec.Run();
    EXPECT_EQ(probe.peak, 1) << "seed " << seed;
    EXPECT_EQ(probe.total, contenders * iters) << "seed " << seed;
    EXPECT_FALSE(lock.locked()) << "seed " << seed;
    EXPECT_TRUE(lock.queue_empty()) << "seed " << seed;
  }
}

Task<> TicketFuzzWorker(hw::Machine& m, TicketLock& lock, CriticalProbe& probe, int core,
                        int iters, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    co_await m.exec().Delay(rng.Below(600));
    co_await lock.Acquire(core);
    ++probe.in;
    probe.peak = std::max(probe.peak, probe.in);
    co_await m.Compute(core, 40 + rng.Below(160));
    --probe.in;
    ++probe.total;
    co_await lock.Release(core);
  }
}

TEST(TicketLock, MutualExclusionUnderContenderFuzz) {
  for (std::uint64_t seed : {7u, 17u, 27u}) {
    Fixture f;
    sim::Rng shape(seed);
    const int contenders = static_cast<int>(2 + shape.Below(15));
    const int iters = static_cast<int>(2 + shape.Below(5));
    TicketLock lock(f.machine);
    CriticalProbe probe;
    for (int c = 0; c < contenders; ++c) {
      f.exec.Spawn(TicketFuzzWorker(f.machine, lock, probe, c, iters,
                                    seed * 1000 + static_cast<std::uint64_t>(c)));
    }
    f.exec.Run();
    EXPECT_EQ(probe.peak, 1) << "seed " << seed;
    EXPECT_EQ(probe.total, contenders * iters) << "seed " << seed;
    EXPECT_FALSE(lock.locked()) << "seed " << seed;
    EXPECT_EQ(lock.tickets_issued(),
              static_cast<std::uint64_t>(contenders) * static_cast<std::uint64_t>(iters))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// MCS FIFO fairness: acquisition order equals arrival (tail-swap) order.

Task<> StaggeredAcquirer(hw::Machine& m, McsLock& lock, int core, Cycles arrive_at,
                         Cycles hold, std::vector<int>& order) {
  co_await m.exec().Delay(arrive_at);
  co_await lock.Acquire(core);
  order.push_back(core);
  co_await m.Compute(core, hold);
  co_await lock.Release(core);
}

TEST(McsLock, FifoHandoffMatchesArrivalOrder) {
  Fixture f;
  McsLock lock(f.machine);
  std::vector<int> order;
  // Core 0 takes the lock and holds it long enough that every other core has
  // completed its tail swap (arrivals 5000 cycles apart dwarf the swap
  // latency); the queue must then drain in arrival order.
  for (int c = 0; c < 8; ++c) {
    f.exec.Spawn(StaggeredAcquirer(f.machine, lock, c,
                                   static_cast<Cycles>(c) * 5000,
                                   c == 0 ? 200'000 : 500, order));
  }
  f.exec.Run();
  ASSERT_EQ(order.size(), 8u);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(order[static_cast<std::size_t>(c)], c);
  }
  EXPECT_EQ(lock.handoffs(), 7u);  // 7 queued handoffs, final release to empty
  EXPECT_TRUE(lock.queue_empty());
}

TEST(McsLock, FifoHoldsForShuffledArrivalOrder) {
  // Same property with a scrambled arrival permutation.
  const std::vector<int> arrival = {3, 6, 0, 7, 2, 5, 1, 4};
  Fixture f;
  McsLock lock(f.machine);
  std::vector<int> order;
  for (std::size_t pos = 0; pos < arrival.size(); ++pos) {
    const int core = arrival[pos];
    f.exec.Spawn(StaggeredAcquirer(f.machine, lock, core,
                                   static_cast<Cycles>(pos) * 5000 + 100,
                                   pos == 0 ? 200'000 : 500, order));
  }
  f.exec.Run();
  ASSERT_EQ(order.size(), arrival.size());
  EXPECT_EQ(order, arrival);
}

// ---------------------------------------------------------------------------
// Tournament barrier: nobody passes early, reusable across episodes, byes at
// non-power-of-two sizes.

Task<> BarrierEpisodeWorker(hw::Machine& m, TreeBarrier& bar, int party, int episodes,
                            std::vector<int>& arrived, std::vector<int>& failures,
                            std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int e = 0; e < episodes; ++e) {
    co_await m.exec().Delay(rng.Below(900) + 1);
    ++arrived[static_cast<std::size_t>(e)];
    co_await bar.Arrive(party);
    // The barrier property: when any party exits episode e, every party has
    // arrived at episode e. (EXPECT_* inside coroutines would race the count
    // bookkeeping on failure paths; collect and assert after the run.)
    if (arrived[static_cast<std::size_t>(e)] != bar.parties()) {
      failures.push_back(e);
    }
  }
}

class TreeBarrierParties : public ::testing::TestWithParam<int> {};

TEST_P(TreeBarrierParties, NobodyPassesUntilAllArriveAcrossEpisodes) {
  const int parties = GetParam();
  const int episodes = 7;
  Fixture f;
  TreeBarrier bar(f.machine, parties);
  std::vector<int> arrived(episodes, 0);
  std::vector<int> failures;
  for (int p = 0; p < parties; ++p) {
    f.exec.Spawn(BarrierEpisodeWorker(f.machine, bar, p, episodes, arrived, failures,
                                      1000 + static_cast<std::uint64_t>(p)));
  }
  f.exec.Run();
  EXPECT_TRUE(failures.empty()) << failures.size() << " early exits, first at episode "
                                << failures.front();
  for (int e = 0; e < episodes; ++e) {
    EXPECT_EQ(arrived[static_cast<std::size_t>(e)], parties);
  }
  EXPECT_EQ(bar.generation(), static_cast<std::uint64_t>(episodes));
  EXPECT_TRUE(bar.idle());
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, TreeBarrierParties,
                         ::testing::Values(2, 3, 5, 8, 11, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "parties" + std::to_string(info.param);
                         });

TEST(TreeBarrier, HoldsBackEveryoneUntilTheLastArrives) {
  Fixture f;
  TreeBarrier bar(f.machine, 8);
  int passed = 0;
  for (int p = 0; p < 8; ++p) {
    f.exec.Spawn([](hw::Machine& m, TreeBarrier& b, int party, int& done) -> Task<> {
      co_await m.exec().Delay(party == 5 ? 90'000 : 100 + static_cast<Cycles>(party));
      co_await b.Arrive(party);
      ++done;
    }(f.machine, bar, p, passed));
  }
  f.exec.RunUntil(80'000);
  EXPECT_EQ(passed, 0);  // seven wait on the straggler
  EXPECT_FALSE(bar.idle());
  f.exec.Run();
  EXPECT_EQ(passed, 8);
  EXPECT_TRUE(bar.idle());
}

TEST(TreeBarrier, PartyOfCoreMapsTeamCores) {
  Fixture f;
  TreeBarrier bar(f.machine, 3, {4, 9, 14});
  EXPECT_EQ(bar.PartyOfCore(4), 0);
  EXPECT_EQ(bar.PartyOfCore(9), 1);
  EXPECT_EQ(bar.PartyOfCore(14), 2);
}

// ---------------------------------------------------------------------------
// The proc::Barrier / proc::Mutex facades select the scalable primitives.

TEST(ScalableFacade, BarrierMeetsCentralizedContract) {
  Fixture f;
  Barrier barrier(f.machine, 3, SyncFlavor::kScalable);
  std::vector<int> order;
  for (int c = 0; c < 3; ++c) {
    f.exec.Spawn([](hw::Machine& m, Barrier& b, int core, std::vector<int>& out) -> Task<> {
      co_await m.exec().Delay(core == 2 ? 90'000 : 100);
      co_await b.Arrive(core);
      out.push_back(core);
    }(f.machine, barrier, c, order));
  }
  f.exec.RunUntil(80'000);
  EXPECT_TRUE(order.empty());
  f.exec.Run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(ScalableFacade, MutexProvidesMutualExclusion) {
  Fixture f;
  Mutex mutex(f.machine, SyncFlavor::kScalable);
  CriticalProbe probe;
  for (int c = 0; c < 8; ++c) {
    f.exec.Spawn([](hw::Machine& m, Mutex& mu, CriticalProbe& pr, int core) -> Task<> {
      for (int i = 0; i < 5; ++i) {
        co_await mu.Lock(core);
        ++pr.in;
        pr.peak = std::max(pr.peak, pr.in);
        co_await m.exec().Delay(200);
        --pr.in;
        ++pr.total;
        co_await mu.Unlock(core);
      }
    }(f.machine, mutex, probe, c));
  }
  f.exec.Run();
  EXPECT_EQ(probe.peak, 1);
  EXPECT_EQ(probe.total, 40);
  EXPECT_FALSE(mutex.locked());
}

TEST(ScalableFacade, OmpTeamRunsFigureNineShapedLoop) {
  // An OmpRuntime over the scalable flavor: parallel-for with reductions,
  // exactly the Figure 9 workload shape.
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  std::vector<int> cores;
  for (int i = 0; i < 6; ++i) {
    cores.push_back(i);
  }
  OmpRuntime omp(machine, std::move(cores), SyncFlavor::kScalable);
  std::vector<int> hits(120, 0);
  exec.Spawn([](OmpRuntime& o, std::vector<int>& h) -> Task<> {
    for (int iter = 0; iter < 3; ++iter) {
      co_await o.ParallelFor(120, [&h, &o](int, int core, std::int64_t b,
                                           std::int64_t e) -> Task<> {
        for (std::int64_t i = b; i < e; ++i) {
          ++h[static_cast<std::size_t>(i)];
        }
        co_await o.ReduceContribution(core);
      });
    }
  }(omp, hits));
  exec.Run();
  for (int h : hits) {
    EXPECT_EQ(h, 3);
  }
}

// ---------------------------------------------------------------------------
// Same-seed replay: the whole sync fuzz must be bit-identical at any host
// thread count (4 independent machine domains under the parallel engine).

struct ReplayWorld {
  explicit ReplayWorld(sim::Executor& exec)
      : machine(exec, hw::Amd4x4()), mcs(machine), ticket(machine), bar(machine, 8) {}
  hw::Machine machine;
  McsLock mcs;
  TicketLock ticket;
  TreeBarrier bar;
  std::vector<std::uint64_t> log;
};

Task<> ReplayWorker(ReplayWorld& w, int core, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int it = 0; it < 5; ++it) {
    co_await w.machine.exec().Delay(rng.Below(500));
    co_await w.mcs.Acquire(core);
    w.log.push_back(Mix(w.machine.exec().now(), static_cast<std::uint64_t>(core) * 2 + 1));
    co_await w.machine.Compute(core, 40 + rng.Below(120));
    co_await w.mcs.Release(core);
    co_await w.ticket.Acquire(core);
    w.log.push_back(Mix(w.machine.exec().now(), static_cast<std::uint64_t>(core) * 2));
    co_await w.ticket.Release(core);
    co_await w.bar.Arrive(core);
    w.log.push_back(Mix(w.machine.exec().now(), w.bar.generation()));
  }
}

std::vector<std::vector<std::uint64_t>> RunReplay(int host_threads) {
  sim::ParallelEngine::Options opts;
  opts.domains = 4;
  opts.threads = host_threads;
  sim::ParallelEngine engine(opts);
  std::vector<std::unique_ptr<ReplayWorld>> worlds;
  for (int d = 0; d < 4; ++d) {
    worlds.push_back(std::make_unique<ReplayWorld>(engine.domain(d)));
    for (int core = 0; core < 8; ++core) {
      engine.domain(d).Spawn(ReplayWorker(
          *worlds.back(), core,
          sim::DeriveStreamSeed(0x51bc, d * 8 + core)));
    }
  }
  engine.Run();
  std::vector<std::vector<std::uint64_t>> logs;
  for (auto& w : worlds) {
    EXPECT_TRUE(w->mcs.queue_empty());
    EXPECT_TRUE(w->bar.idle());
    logs.push_back(std::move(w->log));
  }
  return logs;
}

TEST(SyncReplay, BitIdenticalAcrossHostThreadCounts) {
  const auto base = RunReplay(1);
  for (const auto& log : base) {
    EXPECT_EQ(log.size(), 8u * 5u * 3u);  // every op of every worker logged
  }
  EXPECT_EQ(RunReplay(2), base);
  EXPECT_EQ(RunReplay(4), base);
}

// ---------------------------------------------------------------------------
// Chaos: MCS lock + tree barrier under IPI delay spikes and interconnect
// latency faults. The primitives never lose a wakeup or strand a waiter —
// the run completes with drained queues — and the plan's every spec fires.

struct ScopedInjector {
  explicit ScopedInjector(const fault::FaultPlan& plan) : inj(plan) { inj.Install(); }
  ~ScopedInjector() { inj.Uninstall(); }
  fault::Injector inj;
};

Task<> ChaosWorker(hw::Machine& m, McsLock& lock, TreeBarrier& bar, int core,
                   int episodes, int& completed, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int e = 0; e < episodes; ++e) {
    co_await m.exec().Delay(rng.Below(700));
    co_await lock.Acquire(core);
    co_await m.Compute(core, 60 + rng.Below(90));
    co_await lock.Release(core);
    co_await bar.Arrive(core);
  }
  ++completed;
}

Task<> ChaosIpiPinger(hw::Machine& m, int pings) {
  for (int i = 0; i < pings; ++i) {
    co_await m.ipi().Send(0, 1 + i % (m.num_cores() - 1), /*vector=*/0x31,
                          static_cast<std::uint64_t>(i));
    co_await m.exec().Delay(2'500);
  }
}

Cycles RunChaosWorld(bool with_faults) {
  fault::FaultPlan plan;
  plan.DelayIpi(-1, -1, /*extra=*/1'200, /*at=*/0);
  plan.LinkSpike(/*extra=*/450, /*at=*/0, /*until=*/fault::kForever);
  std::unique_ptr<ScopedInjector> injector;
  if (with_faults) {
    injector = std::make_unique<ScopedInjector>(plan);
  }

  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  for (int c = 0; c < machine.num_cores(); ++c) {
    machine.ipi().SetHandler(c, [](int, std::uint64_t) {});
  }
  McsLock lock(machine);
  TreeBarrier bar(machine, 16);
  const int episodes = 12;
  int completed = 0;
  for (int c = 0; c < 16; ++c) {
    exec.Spawn(ChaosWorker(machine, lock, bar, c, episodes, completed,
                           0xc4a05 + static_cast<std::uint64_t>(c)));
  }
  exec.Spawn(ChaosIpiPinger(machine, 24));
  const Cycles end = exec.Run();

  EXPECT_EQ(completed, 16) << "stuck waiter: a worker never finished";
  EXPECT_TRUE(lock.queue_empty()) << "lost handoff: tail still points at a waiter";
  EXPECT_FALSE(lock.locked());
  EXPECT_TRUE(bar.idle()) << "lost wakeup: a party is still inside Arrive";
  EXPECT_EQ(bar.generation(), static_cast<std::uint64_t>(episodes));
  if (with_faults) {
    EXPECT_TRUE(injector->inj.AllSpecsActivated())
        << "a fault spec never fired - the chaos run did not exercise it";
    EXPECT_GT(injector->inj.injected(fault::FaultKind::kIpiDelay), 0u);
  }
  return end;
}

TEST(SyncChaos, NoLostWakeupsUnderIpiAndLinkFaults) {
  const Cycles clean = RunChaosWorld(false);
  const Cycles faulted = RunChaosWorld(true);
  // The spikes must actually perturb the run, not vacuously pass.
  EXPECT_GT(faulted, clean);
}

TEST(SyncChaos, RepeatedFaultedRunsAreDeterministic) {
  const Cycles a = RunChaosWorld(true);
  const Cycles b = RunChaosWorld(true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mk::proc::sync
