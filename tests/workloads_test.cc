// Tests for the Figure 9 workloads: the real algorithms must be correct, and
// results must be independent of thread count and synchronization flavor.
#include <gtest/gtest.h>

#include <vector>

#include "apps/mapreduce.h"
#include "apps/workloads.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "sim/executor.h"
#include "sim/random.h"

namespace mk::apps {
namespace {

using proc::OmpRuntime;
using proc::SyncFlavor;
using sim::Task;

std::vector<int> FirstCores(int n) {
  std::vector<int> cores;
  for (int i = 0; i < n; ++i) {
    cores.push_back(i);
  }
  return cores;
}

WorkloadResult RunWorkload(Task<WorkloadResult> (*fn)(OmpRuntime&, WorkloadParams), int threads,
                   SyncFlavor flavor, WorkloadParams params) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  OmpRuntime omp(machine, FirstCores(threads), flavor);
  WorkloadResult result;
  exec.Spawn([](Task<WorkloadResult> task, WorkloadResult& out) -> Task<> {
    out = co_await std::move(task);
  }(fn(omp, params), result));
  exec.Run();
  return result;
}

WorkloadParams SmallParams() {
  WorkloadParams p;
  p.iterations = 3;
  p.size = 1024;
  return p;
}

TEST(Cg, ResidualShrinksWithIterations) {
  WorkloadParams p3 = SmallParams();
  WorkloadParams p9 = SmallParams();
  p9.iterations = 9;
  double r3 = RunWorkload(RunCg, 4, SyncFlavor::kUserSpace, p3).checksum;
  double r9 = RunWorkload(RunCg, 4, SyncFlavor::kUserSpace, p9).checksum;
  EXPECT_GT(r3, 0);
  EXPECT_LT(r9, r3);  // CG converges on the diagonally dominant system
}

TEST(Ft, ForwardInverseRoundTripPreservesSignal) {
  // An even iteration count ends after an inverse transform: the data is the
  // original signal, so the checksum equals the initial magnitude sum.
  WorkloadParams once = SmallParams();
  once.iterations = 2;
  WorkloadParams thrice = SmallParams();
  thrice.iterations = 6;
  double a = RunWorkload(RunFt, 4, SyncFlavor::kUserSpace, once).checksum;
  double b = RunWorkload(RunFt, 4, SyncFlavor::kUserSpace, thrice).checksum;
  EXPECT_NEAR(a, b, 1e-6 * a);
}

TEST(Is, ProducesSortedOutput) {
  auto result = RunWorkload(RunIs, 4, SyncFlavor::kUserSpace, SmallParams());
  EXPECT_GT(result.checksum, 0) << "checksum -1 flags an unsorted result";
}

TEST(BarnesHut, MomentumRoughlyConserved) {
  // Center-of-mass drift stays small for a symmetric random cloud.
  auto result = RunWorkload(RunBarnesHut, 4, SyncFlavor::kUserSpace, SmallParams());
  EXPECT_LT(std::abs(result.checksum), 0.5);
}

TEST(Radiosity, EnergyBoundedAndPositive) {
  auto result = RunWorkload(RunRadiosity, 4, SyncFlavor::kUserSpace, SmallParams());
  EXPECT_GT(result.checksum, 0);
  EXPECT_LT(result.checksum, 4096);
}

// Property: every workload computes the same answer regardless of thread
// count and synchronization flavor (the parallelization must not change the
// mathematics beyond FP reassociation).
struct InvarianceCase {
  const char* name;
  Task<WorkloadResult> (*fn)(OmpRuntime&, WorkloadParams);
  double tolerance;  // relative, for FP reassociation
};

class WorkloadInvariance : public ::testing::TestWithParam<InvarianceCase> {};

TEST_P(WorkloadInvariance, ChecksumStableAcrossThreadsAndFlavors) {
  const auto& c = GetParam();
  double reference = RunWorkload(c.fn, 1, SyncFlavor::kUserSpace, SmallParams()).checksum;
  for (int threads : {2, 4, 16}) {
    for (SyncFlavor flavor : {SyncFlavor::kUserSpace, SyncFlavor::kKernel}) {
      double got = RunWorkload(c.fn, threads, flavor, SmallParams()).checksum;
      double tol = c.tolerance * (std::abs(reference) + 1e-9);
      EXPECT_NEAR(got, reference, tol)
          << c.name << " threads=" << threads
          << " flavor=" << (flavor == SyncFlavor::kUserSpace ? "user" : "kernel");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadInvariance,
    ::testing::Values(InvarianceCase{"CG", RunCg, 1e-6},
                      InvarianceCase{"FT", RunFt, 1e-9},
                      InvarianceCase{"IS", RunIs, 0.0},
                      InvarianceCase{"BarnesHut", RunBarnesHut, 1e-9},
                      // Radiosity's task interleaving varies with threads, so
                      // the Jacobi/Gauss-Seidel mix differs slightly.
                      InvarianceCase{"radiosity", RunRadiosity, 0.35}),
    [](const ::testing::TestParamInfo<InvarianceCase>& info) { return info.param.name; });

TEST(Workloads, MoreThreadsNeverIncreaseComputePhaseWork) {
  // Simulated time with 8 threads should beat 1 thread for the scalable
  // kernels at this size.
  for (auto* fn : {RunCg, RunBarnesHut}) {
    auto t1 = RunWorkload(fn, 1, SyncFlavor::kUserSpace, SmallParams()).cycles;
    auto t8 = RunWorkload(fn, 8, SyncFlavor::kUserSpace, SmallParams()).cycles;
    EXPECT_LT(t8, t1);
  }
}

TEST(Workloads, TableHasAllFiveEntries) {
  EXPECT_EQ(AllWorkloads().size(), 5u);
}

// --- MapReduce (Metis-style word count / histogram) ------------------------

TEST(MapReduce, WordCountChecksumMatchesHostReference) {
  // Recompute the corpus with the same Rng stream and count serially on the
  // host; the simulated map + combining-tree reduce must agree exactly
  // (integer counts, no FP reassociation in play).
  WorkloadParams p = SmallParams();
  std::vector<std::int64_t> counts(1024, 0);
  sim::Rng rng(p.seed);
  for (std::int64_t i = 0; i < p.size; ++i) {
    ++counts[static_cast<std::size_t>(std::min(rng.Below(1024), rng.Below(1024)))];
  }
  double expected = 0;
  for (std::size_t w = 0; w < counts.size(); ++w) {
    expected += static_cast<double>(counts[w]) * static_cast<double>(w % 97 + 1);
  }
  EXPECT_EQ(RunWorkload(RunWordCount, 4, SyncFlavor::kUserSpace, p).checksum, expected);
}

TEST(MapReduce, HistogramChecksumMatchesHostReference) {
  WorkloadParams p = SmallParams();
  std::vector<std::int64_t> bins(256, 0);
  sim::Rng rng(p.seed);
  for (std::int64_t i = 0; i < p.size; ++i) {
    auto b = static_cast<std::int64_t>(rng.NextDouble() * 256.0);
    ++bins[static_cast<std::size_t>(std::min<std::int64_t>(b, 255))];
  }
  double expected = 0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    expected += static_cast<double>(bins[b]) * static_cast<double>(b + 1);
  }
  EXPECT_EQ(RunWorkload(RunHistogram, 4, SyncFlavor::kUserSpace, p).checksum, expected);
}

TEST(MapReduce, ChecksumInvariantAcrossThreadsAndFlavors) {
  // Integer counts: the partition of the corpus over threads and the choice
  // of barrier/lock implementation must not change the answer by even a bit.
  // Thread counts 3 and 5 exercise the byes in the non-power-of-two reduce
  // tree and (under kScalable) the tournament barrier.
  for (auto& entry : MapReduceWorkloads()) {
    double reference =
        RunWorkload(entry.run, 1, SyncFlavor::kUserSpace, SmallParams()).checksum;
    for (int threads : {2, 3, 5, 8, 16}) {
      for (SyncFlavor flavor :
           {SyncFlavor::kUserSpace, SyncFlavor::kKernel, SyncFlavor::kScalable}) {
        double got = RunWorkload(entry.run, threads, flavor, SmallParams()).checksum;
        EXPECT_EQ(got, reference)
            << entry.name << " threads=" << threads
            << " flavor=" << static_cast<int>(flavor);
      }
    }
  }
}

TEST(MapReduce, MoreThreadsShortenTheMapPhase) {
  // Needs a corpus big enough that the O(n/threads) map phase dominates the
  // fixed per-iteration reduce cost (bucket flush + tree merge + barriers).
  WorkloadParams p = SmallParams();
  p.size = 1 << 14;
  for (auto& entry : MapReduceWorkloads()) {
    auto t1 = RunWorkload(entry.run, 1, SyncFlavor::kUserSpace, p).cycles;
    auto t8 = RunWorkload(entry.run, 8, SyncFlavor::kUserSpace, p).cycles;
    EXPECT_LT(t8, t1) << entry.name;
  }
}

TEST(MapReduce, TableHasBothJobsAndLeavesFigureNineTableAlone) {
  EXPECT_EQ(MapReduceWorkloads().size(), 2u);
  EXPECT_EQ(AllWorkloads().size(), 5u);  // Figure 9 table stays pinned at five
}

}  // namespace
}  // namespace mk::apps
