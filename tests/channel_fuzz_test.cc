// Property/fuzz tests for URPC channels: under randomized send/receive
// interleavings and every channel configuration, messages are delivered
// exactly once, in order, within the flow-control window, deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "urpc/channel.h"

namespace mk::urpc {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct FuzzCase {
  std::uint64_t seed;
  int slots;
  bool prefetch;
  int numa_node;
  int sender;
  int receiver;
  int messages;
};

Task<> FuzzSender(hw::Machine& m, Channel& ch, int count, std::uint64_t seed,
                  std::uint64_t* max_inflight) {
  sim::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.5)) {
      co_await ch.Send(Pack(0, i));
    } else {
      co_await ch.SendPosted(Pack(0, i));
    }
    std::uint64_t inflight = ch.pending();
    if (inflight > *max_inflight) {
      *max_inflight = inflight;
    }
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(2000));
    }
  }
}

Task<> FuzzReceiver(hw::Machine& m, Channel& ch, int count, std::uint64_t seed,
                    std::vector<int>* got) {
  sim::Rng rng(seed + 17);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.25)) {
      // Mix TryRecv polling into the blocking receive path.
      Message msg;
      if (co_await ch.TryRecv(&msg)) {
        got->push_back(Unpack<int>(msg));
        continue;
      }
    }
    Message msg = co_await ch.Recv();
    got->push_back(Unpack<int>(msg));
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(3000));
    }
  }
}

class ChannelFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChannelFuzz, ExactlyOnceInOrderWithinWindow) {
  const FuzzCase& c = GetParam();
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  ChannelOptions opts;
  opts.slots = c.slots;
  opts.prefetch = c.prefetch;
  opts.numa_node = c.numa_node;
  Channel ch(m, c.sender, c.receiver, opts);
  std::vector<int> got;
  std::uint64_t max_inflight = 0;
  exec.Spawn(FuzzSender(m, ch, c.messages, c.seed, &max_inflight));
  exec.Spawn(FuzzReceiver(m, ch, c.messages, c.seed, &got));
  exec.Run();
  // Exactly once, in order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(c.messages));
  for (int i = 0; i < c.messages; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  // Flow control: never more than `slots` undelivered messages.
  EXPECT_LE(max_inflight, static_cast<std::uint64_t>(c.slots));
  EXPECT_EQ(ch.pending(), 0u);
  // Acks are published lazily and the sender refreshes its view only when it
  // runs out of credits, so the quiesced view may be stale — but always within
  // bounds, and the channel must remain usable (liveness).
  EXPECT_GE(ch.SendCredits(), 0);
  EXPECT_LE(ch.SendCredits(), c.slots);
  exec.Spawn([](Channel& chan) -> Task<> {
    co_await chan.Send(Pack(0, -1));
    (void)co_await chan.Recv();
  }(ch));
  exec.Run();
  EXPECT_EQ(ch.pending(), 0u);
}

TEST_P(ChannelFuzz, DeterministicReplay) {
  const FuzzCase& c = GetParam();
  auto run = [&c] {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    ChannelOptions opts;
    opts.slots = c.slots;
    opts.prefetch = c.prefetch;
    opts.numa_node = c.numa_node;
    Channel ch(m, c.sender, c.receiver, opts);
    std::vector<int> got;
    std::uint64_t max_inflight = 0;
    exec.Spawn(FuzzSender(m, ch, c.messages, c.seed, &max_inflight));
    exec.Spawn(FuzzReceiver(m, ch, c.messages, c.seed, &got));
    return exec.Run();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelFuzz,
    ::testing::Values(FuzzCase{11, 1, false, -1, 0, 4, 80},    // tiny window
                      FuzzCase{12, 2, false, -1, 0, 1, 120},   // shared cache
                      FuzzCase{13, 8, true, -1, 0, 12, 150},   // prefetch, 2 hops
                      FuzzCase{14, 16, false, 3, 0, 12, 150},  // receiver-local
                      FuzzCase{15, 16, true, -1, 31, 0, 200},  // reverse direction
                      FuzzCase{16, 64, true, -1, 0, 28, 250}), // big window, far
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(ChannelBlocking, RandomArrivalsWithPollThenBlock) {
  // Poll-then-block receive under random arrival gaps: every message still
  // arrives exactly once, whether it lands in the poll window or after.
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  Channel ch(m, 0, 4);
  const int kMessages = 60;
  int received = 0;
  int ipi_wakeups_before = 0;
  (void)ipi_wakeups_before;
  exec.Spawn([](hw::Machine& mm, Channel& c, int n) -> Task<> {
    sim::Rng rng(77);
    for (int i = 0; i < n; ++i) {
      co_await mm.exec().Delay(rng.Below(12000));  // straddles the poll window
      co_await c.Send(Pack(0, i));
    }
  }(m, ch, kMessages));
  exec.Spawn([](Channel& c, CpuDriver& local, CpuDriver& snd, int n, int& out) -> Task<> {
    for (int i = 0; i < n; ++i) {
      Message msg = co_await c.RecvBlocking(local, snd, 3000);
      EXPECT_EQ(Unpack<int>(msg), i);
      ++out;
    }
  }(ch, *drivers[4], *drivers[0], kMessages, received));
  exec.Run();
  EXPECT_EQ(received, kMessages);
  // Some arrivals exceeded the poll window: IPI wake-ups actually happened.
  EXPECT_GT(m.counters().core(4).ipis_received, 0u);
}

}  // namespace
}  // namespace mk::urpc
