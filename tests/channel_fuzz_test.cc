// Property/fuzz tests for URPC channels: under randomized send/receive
// interleavings and every channel configuration, messages are delivered
// exactly once, in order, within the flow-control window, deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "urpc/channel.h"

namespace mk::urpc {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct FuzzCase {
  std::uint64_t seed;
  int slots;
  bool prefetch;
  int numa_node;
  int sender;
  int receiver;
  int messages;
};

Task<> FuzzSender(hw::Machine& m, Channel& ch, int count, std::uint64_t seed,
                  std::uint64_t* max_inflight) {
  sim::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.5)) {
      co_await ch.Send(Pack(0, i));
    } else {
      co_await ch.SendPosted(Pack(0, i));
    }
    std::uint64_t inflight = ch.pending();
    if (inflight > *max_inflight) {
      *max_inflight = inflight;
    }
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(2000));
    }
  }
}

Task<> FuzzReceiver(hw::Machine& m, Channel& ch, int count, std::uint64_t seed,
                    std::vector<int>* got) {
  sim::Rng rng(seed + 17);
  for (int i = 0; i < count; ++i) {
    if (rng.Chance(0.25)) {
      // Mix TryRecv polling into the blocking receive path.
      Message msg;
      if (co_await ch.TryRecv(&msg)) {
        got->push_back(Unpack<int>(msg));
        continue;
      }
    }
    Message msg = co_await ch.Recv();
    got->push_back(Unpack<int>(msg));
    if (rng.Chance(0.3)) {
      co_await m.exec().Delay(rng.Below(3000));
    }
  }
}

class ChannelFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChannelFuzz, ExactlyOnceInOrderWithinWindow) {
  const FuzzCase& c = GetParam();
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  ChannelOptions opts;
  opts.slots = c.slots;
  opts.prefetch = c.prefetch;
  opts.numa_node = c.numa_node;
  Channel ch(m, c.sender, c.receiver, opts);
  std::vector<int> got;
  std::uint64_t max_inflight = 0;
  exec.Spawn(FuzzSender(m, ch, c.messages, c.seed, &max_inflight));
  exec.Spawn(FuzzReceiver(m, ch, c.messages, c.seed, &got));
  exec.Run();
  // Exactly once, in order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(c.messages));
  for (int i = 0; i < c.messages; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  // Flow control: never more than `slots` undelivered messages.
  EXPECT_LE(max_inflight, static_cast<std::uint64_t>(c.slots));
  EXPECT_EQ(ch.pending(), 0u);
  // Acks are published lazily and the sender refreshes its view only when it
  // runs out of credits, so the quiesced view may be stale — but always within
  // bounds, and the channel must remain usable (liveness).
  EXPECT_GE(ch.SendCredits(), 0);
  EXPECT_LE(ch.SendCredits(), c.slots);
  exec.Spawn([](Channel& chan) -> Task<> {
    co_await chan.Send(Pack(0, -1));
    (void)co_await chan.Recv();
  }(ch));
  exec.Run();
  EXPECT_EQ(ch.pending(), 0u);
}

TEST_P(ChannelFuzz, DeterministicReplay) {
  const FuzzCase& c = GetParam();
  auto run = [&c] {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    ChannelOptions opts;
    opts.slots = c.slots;
    opts.prefetch = c.prefetch;
    opts.numa_node = c.numa_node;
    Channel ch(m, c.sender, c.receiver, opts);
    std::vector<int> got;
    std::uint64_t max_inflight = 0;
    exec.Spawn(FuzzSender(m, ch, c.messages, c.seed, &max_inflight));
    exec.Spawn(FuzzReceiver(m, ch, c.messages, c.seed, &got));
    return exec.Run();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelFuzz,
    ::testing::Values(FuzzCase{11, 1, false, -1, 0, 4, 80},    // tiny window
                      FuzzCase{12, 2, false, -1, 0, 1, 120},   // shared cache
                      FuzzCase{13, 8, true, -1, 0, 12, 150},   // prefetch, 2 hops
                      FuzzCase{14, 16, false, 3, 0, 12, 150},  // receiver-local
                      FuzzCase{15, 16, true, -1, 31, 0, 200},  // reverse direction
                      FuzzCase{16, 64, true, -1, 0, 28, 250}), // big window, far
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(ChannelBlocking, RandomArrivalsWithPollThenBlock) {
  // Poll-then-block receive under random arrival gaps: every message still
  // arrives exactly once, whether it lands in the poll window or after.
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  Channel ch(m, 0, 4);
  const int kMessages = 60;
  int received = 0;
  int ipi_wakeups_before = 0;
  (void)ipi_wakeups_before;
  exec.Spawn([](hw::Machine& mm, Channel& c, int n) -> Task<> {
    sim::Rng rng(77);
    for (int i = 0; i < n; ++i) {
      co_await mm.exec().Delay(rng.Below(12000));  // straddles the poll window
      co_await c.Send(Pack(0, i));
    }
  }(m, ch, kMessages));
  exec.Spawn([](Channel& c, CpuDriver& local, CpuDriver& snd, int n, int& out) -> Task<> {
    for (int i = 0; i < n; ++i) {
      Message msg = co_await c.RecvBlocking(local, snd, 3000);
      EXPECT_EQ(Unpack<int>(msg), i);
      ++out;
    }
  }(ch, *drivers[4], *drivers[0], kMessages, received));
  exec.Run();
  EXPECT_EQ(received, kMessages);
  // Some arrivals exceeded the poll window: IPI wake-ups actually happened.
  EXPECT_GT(m.counters().core(4).ipis_received, 0u);
}

TEST(ChannelBlocking, RecheckWindowSweepNeverStrandsOrMisdirectsWakeups) {
  // Hammers the RecvBlocking re-check window (RegisterBlocked -> posted
  // blocked-flag write): by sweeping the send instant in fine steps across
  // the block transition, some runs land the message exactly inside the
  // window. The receiver must then cancel its registration AND invalidate
  // the published wake token, so a sender that already sampled the blocked
  // flag posts a wake-up that maps to nothing — it must neither strand the
  // re-check path nor steal the wake-up of the unrelated waiter blocked on
  // the second channel of the same core.
  for (Cycles offset = 700; offset <= 2600; offset += 20) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    auto drivers = CpuDriver::BootAll(m);
    Channel near_ch(m, 1, 4);   // sender one hop away
    Channel far_ch(m, 28, 4);   // distant sender, same receiver core
    int got_near = -1;
    int got_far = -1;
    exec.Spawn([](hw::Machine& mm, Channel& c, Cycles at) -> Task<> {
      co_await mm.exec().Delay(at);
      co_await c.Send(Pack(0, 7));
    }(m, near_ch, offset));
    exec.Spawn([](hw::Machine& mm, Channel& c) -> Task<> {
      co_await mm.exec().Delay(40000);  // long after the near channel's race
      co_await c.Send(Pack(0, 9));
    }(m, far_ch));
    exec.Spawn([](Channel& c, CpuDriver& local, CpuDriver& snd, int& out) -> Task<> {
      out = Unpack<int>(co_await c.RecvBlocking(local, snd, 1000));
    }(near_ch, *drivers[4], *drivers[1], got_near));
    exec.Spawn([](Channel& c, CpuDriver& local, CpuDriver& snd, int& out) -> Task<> {
      out = Unpack<int>(co_await c.RecvBlocking(local, snd, 1000));
    }(far_ch, *drivers[4], *drivers[28], got_far));
    exec.Run();
    EXPECT_EQ(got_near, 7) << "send offset " << offset;
    EXPECT_EQ(got_far, 9) << "send offset " << offset;
    EXPECT_EQ(drivers[4]->blocked_count(), 0u)
        << "leaked blocked registration at offset " << offset;
    EXPECT_EQ(exec.live_tasks(), 0u) << "stranded waiter at offset " << offset;
  }
}

TEST(ChannelBlocking, TwoChannelsOneCoreBlockingFuzzIsExactAndDeterministic) {
  // Randomized version of the sweep: two senders at different hop distances
  // funnel into blocking receivers on one core, so blocked registrations,
  // in-flight wake IPIs, and re-check cancellations interleave on every
  // message. Exactly-once in-order delivery per channel, no leaked
  // registrations, and bit-identical replay.
  auto run = [](std::uint64_t seed, std::vector<int>* a_out, std::vector<int>* b_out,
                std::size_t* leaked) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    auto drivers = CpuDriver::BootAll(m);
    Channel a(m, 1, 4);
    Channel b(m, 28, 4);
    const int kMessages = 120;
    auto sender = [](hw::Machine& mm, Channel& ch, int n, std::uint64_t s) -> Task<> {
      sim::Rng rng(s);
      for (int i = 0; i < n; ++i) {
        // Gaps straddle the poll window so roughly half the receives block,
        // and many sends land inside the block transition.
        co_await mm.exec().Delay(rng.Below(2600));
        co_await ch.Send(Pack(0, i));
      }
    };
    auto receiver = [](Channel& ch, CpuDriver& local, CpuDriver& snd, int n,
                       std::vector<int>* got) -> Task<> {
      for (int i = 0; i < n; ++i) {
        got->push_back(Unpack<int>(co_await ch.RecvBlocking(local, snd, 1000)));
      }
    };
    exec.Spawn(sender(m, a, kMessages, seed));
    exec.Spawn(sender(m, b, kMessages, seed + 1));
    exec.Spawn(receiver(a, *drivers[4], *drivers[1], kMessages, a_out));
    exec.Spawn(receiver(b, *drivers[4], *drivers[28], kMessages, b_out));
    Cycles end = exec.Run();
    EXPECT_EQ(exec.live_tasks(), 0u) << "stranded waiter, seed " << seed;
    *leaked = drivers[4]->blocked_count();
    return end;
  };
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    std::vector<int> a1, b1, a2, b2;
    std::size_t leaked1 = 0;
    std::size_t leaked2 = 0;
    Cycles end1 = run(seed, &a1, &b1, &leaked1);
    Cycles end2 = run(seed, &a2, &b2, &leaked2);
    ASSERT_EQ(a1.size(), 120u) << "seed " << seed;
    ASSERT_EQ(b1.size(), 120u) << "seed " << seed;
    for (int i = 0; i < 120; ++i) {
      ASSERT_EQ(a1[static_cast<std::size_t>(i)], i) << "seed " << seed;
      ASSERT_EQ(b1[static_cast<std::size_t>(i)], i) << "seed " << seed;
    }
    EXPECT_EQ(leaked1, 0u) << "seed " << seed;
    EXPECT_EQ(leaked2, 0u) << "seed " << seed;
    EXPECT_EQ(end1, end2) << "nondeterministic replay, seed " << seed;
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
  }
}

}  // namespace
}  // namespace mk::urpc
