// Tests for the monitors: routing protocols, one-phase shootdown, two-phase
// capability agreement, capability transfer, replica consistency, and the
// IPI-shootdown baselines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/ipi_shootdown.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk::monitor {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd8x4())
      : machine(exec, std::move(spec)),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  MonitorSystem sys;
};

class AllProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(AllProtocols, GlobalInvalidateReachesEveryCoreTlb) {
  Fixture f;
  const std::uint64_t vaddr = 0x400000;
  // Seed every TLB with the translation.
  for (int c = 0; c < f.machine.num_cores(); ++c) {
    f.machine.tlb(c).Insert(vaddr, hw::TlbEntry{0x1000, true});
  }
  f.exec.Spawn([](Fixture& fx, Protocol proto) -> Task<> {
    auto result = co_await fx.sys.on(0).GlobalInvalidate(0x400000, 1, proto, OpFlags{});
    EXPECT_TRUE(result.all_yes);
    EXPECT_GT(result.latency, 0u);
    // The one-phase commit has completed: no stale entry anywhere.
    for (int c = 0; c < fx.machine.num_cores(); ++c) {
      EXPECT_FALSE(fx.machine.tlb(c).Contains(0x400000)) << "stale TLB on core " << c;
    }
    fx.sys.Shutdown();
  }(f, GetParam()));
  f.exec.Run();
}

TEST_P(AllProtocols, TwoPhaseRetypeCommitsOnAllReplicas) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r, Protocol proto) -> Task<> {
    auto result = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 4,
                                                     proto);
    EXPECT_TRUE(result.committed);
    fx.sys.Shutdown();
  }(f, root, GetParam()));
  f.exec.Run();
  EXPECT_TRUE(f.sys.ReplicasConsistent());
  for (int c = 0; c < f.machine.num_cores(); ++c) {
    EXPECT_TRUE(f.sys.on(c).caps().HasDescendants(root)) << "replica " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::Values(Protocol::kBroadcast, Protocol::kUnicast,
                                           Protocol::kMulticast,
                                           Protocol::kNumaMulticast));

TEST(MonitorSystem, MulticastFasterThanBroadcastAt32Cores) {
  Fixture f;
  Cycles lat_bcast = 0;
  Cycles lat_multi = 0;
  f.exec.Spawn([](Fixture& fx, Cycles& b, Cycles& m) -> Task<> {
    OpFlags raw;
    raw.raw = true;
    raw.skip_tlb = true;
    b = (co_await fx.sys.on(0).GlobalInvalidate(0, 1, Protocol::kBroadcast, raw)).latency;
    m = (co_await fx.sys.on(0).GlobalInvalidate(0, 1, Protocol::kMulticast, raw)).latency;
    fx.sys.Shutdown();
  }(f, lat_bcast, lat_multi));
  f.exec.Run();
  EXPECT_LT(lat_multi, lat_bcast);
}

TEST(MonitorSystem, ConflictingRetypesSerializeExactlyOneWins) {
  // Two cores concurrently retype the same RAM cap with incompatible types;
  // two-phase commit must let at most one commit and keep replicas identical.
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  int committed = 0;
  int done = 0;
  auto worker = [](Fixture& fx, caps::CapId r, int core, caps::CapType type, int& commits,
                   int& finished) -> Task<> {
    auto result = co_await fx.sys.on(core).GlobalRetype(r, type, 4096, 1,
                                                        Protocol::kNumaMulticast);
    if (result.committed) {
      ++commits;
    }
    if (++finished == 2) {
      fx.sys.Shutdown();
    }
  };
  f.exec.Spawn(worker(f, root, 0, caps::CapType::kFrame, committed, done));
  f.exec.Spawn(worker(f, root, 9, caps::CapType::kPageTable, committed, done));
  f.exec.Run();
  EXPECT_GE(committed, 1);
  EXPECT_LE(committed, 1) << "both conflicting retypes committed";
  EXPECT_TRUE(f.sys.ReplicasConsistent());
}

TEST(MonitorSystem, AbortedRetypeLeavesNoLocks) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    // An illegal retype (too large) is refused by every replica and aborted.
    auto result = co_await fx.sys.on(3).GlobalRetype(r, caps::CapType::kFrame, 1 << 30, 1,
                                                     Protocol::kMulticast);
    EXPECT_FALSE(result.committed);
    // Afterwards a legal retype succeeds (no stale locks).
    auto retry = co_await fx.sys.on(3).GlobalRetype(r, caps::CapType::kFrame, 4096, 1,
                                                    Protocol::kMulticast);
    EXPECT_TRUE(retry.committed);
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
  EXPECT_TRUE(f.sys.ReplicasConsistent());
}

TEST(MonitorSystem, TwoPcOutcomeDistinguishesAbortFromExhaustedRetries) {
  // Regression: committed=false used to be the only signal, conflating a
  // clean validation abort with burning the whole retry budget, and latency
  // silently included losing-attempt backoff.
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    // An illegal retype (too large) is a permanent validation failure: it
    // must abort on the first attempt without wasting the retry budget.
    auto aborted = co_await fx.sys.on(3).GlobalRetype(r, caps::CapType::kFrame, 1 << 30,
                                                      1, Protocol::kMulticast);
    EXPECT_FALSE(aborted.committed);
    EXPECT_EQ(aborted.outcome, Monitor::TwoPcOutcome::kAborted);
    EXPECT_EQ(aborted.attempts, 1);
    EXPECT_EQ(aborted.backoff, 0u);

    // Force a conflict that never resolves: lock the target on one replica
    // with a prepare whose op never commits or aborts. Every 2PC prepare on
    // that replica now votes no-with-kConflict, so the initiator retries
    // until the budget (12 attempts) is exhausted.
    caps::CapDb::PreparedOp wedge;
    wedge.op_id = 0xdead;
    wedge.target = r;
    wedge.new_type = caps::CapType::kFrame;
    wedge.child_bytes = 4096;
    wedge.count = 1;
    EXPECT_EQ(fx.sys.on(9).caps().Prepare(wedge), caps::CapErr::kOk);
    auto exhausted = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096,
                                                        1, Protocol::kNumaMulticast);
    EXPECT_FALSE(exhausted.committed);
    EXPECT_EQ(exhausted.outcome, Monitor::TwoPcOutcome::kRetriesExhausted);
    EXPECT_EQ(exhausted.attempts, 12);
    EXPECT_GT(exhausted.backoff, 0u);
    // latency is end-to-end; the backoff portion is now attributable, so
    // protocol-cost measurements can subtract it.
    EXPECT_GT(exhausted.latency, exhausted.backoff);

    // Release the wedge: the very next attempt commits first try.
    fx.sys.on(9).caps().Abort(0xdead);
    auto committed = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096,
                                                        1, Protocol::kNumaMulticast);
    EXPECT_TRUE(committed.committed);
    EXPECT_EQ(committed.outcome, Monitor::TwoPcOutcome::kCommitted);
    EXPECT_EQ(committed.attempts, 1);
    EXPECT_EQ(committed.backoff, 0u);
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
  EXPECT_TRUE(f.sys.ReplicasConsistent());
}

TEST(MonitorSystem, GlobalRevokeClearsDescendantsEverywhere) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    (void)co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 8,
                                             Protocol::kNumaMulticast);
    auto revoke = co_await fx.sys.on(5).GlobalRevoke(r, Protocol::kNumaMulticast);
    EXPECT_TRUE(revoke.committed);
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
  EXPECT_TRUE(f.sys.ReplicasConsistent());
  for (int c : {0, 5, 31}) {
    EXPECT_FALSE(f.sys.on(c).caps().HasDescendants(root));
  }
}

TEST(MonitorSystem, SendCapTransfersFrameNotPageTable) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    (void)co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 1,
                                             Protocol::kNumaMulticast);
    // Find the frame id on core 0 (same on all replicas by determinism).
    auto descendants = fx.sys.on(0).caps().Descendants(r);
    EXPECT_EQ(descendants.size(), 1u);
    if (descendants.empty()) {
      fx.sys.Shutdown();
      co_return;
    }
    std::size_t before = fx.sys.on(7).caps().LiveCount();
    auto err = co_await fx.sys.on(0).SendCap(7, descendants[0]);
    EXPECT_EQ(err, caps::CapErr::kOk);
    EXPECT_EQ(fx.sys.on(7).caps().LiveCount(), before + 1);
    // Page tables may not be transferred.
    auto pt = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kPageTable, 4096, 1,
                                                 Protocol::kNumaMulticast);
    EXPECT_FALSE(pt.committed);  // root already has descendants
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
}

TEST(MonitorSystem, SendCapRejectsLockedCap) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    // Lock the root via a local prepare, then try to transfer it.
    caps::CapDb::PreparedOp op{42, r, true, caps::CapType::kNull, 0, 0};
    EXPECT_EQ(fx.sys.on(0).caps().Prepare(op), caps::CapErr::kOk);
    auto err = co_await fx.sys.on(0).SendCap(3, r);
    EXPECT_EQ(err, caps::CapErr::kLocked);
    fx.sys.on(0).caps().Abort(42);
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
}

TEST(MonitorSystem, SubsetCollectiveTouchesOnlyParticipants) {
  // ncores limits participation (the figure sweeps 2..32 cores).
  Fixture f;
  for (int c = 0; c < 32; ++c) {
    f.machine.tlb(c).Insert(0x400000, hw::TlbEntry{});
  }
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    OpMsg msg;
    msg.op_id = 0x1234;
    msg.kind = OpKind::kInvalidate;
    msg.proto = Protocol::kNumaMulticast;
    msg.source = 0;
    msg.ncores = 6;
    msg.vaddr = 0x400000;
    msg.pages = 1;
    (void)co_await fx.sys.on(0).RunCollectiveForTest(msg);
    for (int c = 0; c < 6; ++c) {
      EXPECT_FALSE(fx.machine.tlb(c).Contains(0x400000)) << c;
    }
    for (int c = 6; c < 32; ++c) {
      EXPECT_TRUE(fx.machine.tlb(c).Contains(0x400000)) << c;
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

TEST(MonitorSystem, RawFlagSkipsDemuxCharges) {
  auto run = [](bool raw) {
    Fixture f;
    Cycles latency = 0;
    f.exec.Spawn([](Fixture& fx, bool r, Cycles& out) -> Task<> {
      OpFlags flags;
      flags.raw = r;
      flags.skip_tlb = true;
      out = (co_await fx.sys.on(0).GlobalInvalidate(0, 1, Protocol::kUnicast, flags)).latency;
      fx.sys.Shutdown();
    }(f, raw, latency));
    f.exec.Run();
    return latency;
  };
  EXPECT_LT(run(true), run(false));
}

// --- Core hotplug / power management ---

TEST(Hotplug, OfflineCoreExcludedFromCollectives) {
  Fixture f;
  for (int c = 0; c < 32; ++c) {
    f.machine.tlb(c).Insert(0x400000, hw::TlbEntry{});
  }
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    bool ok = co_await fx.sys.OfflineCore(0, 9);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(fx.sys.IsOnline(9));
    EXPECT_EQ(fx.sys.OnlineCount(), 31);
    auto r = co_await fx.sys.on(0).GlobalInvalidate(0x400000, 1,
                                                    Protocol::kNumaMulticast, OpFlags{});
    EXPECT_TRUE(r.all_yes);
    // Everyone but the offline core dropped the entry.
    for (int c = 0; c < 32; ++c) {
      if (c == 9) {
        EXPECT_TRUE(fx.machine.tlb(c).Contains(0x400000));
      } else {
        EXPECT_FALSE(fx.machine.tlb(c).Contains(0x400000)) << c;
      }
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

TEST(Hotplug, OfflineLeaderIsReplacedInRoute) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    // Core 4 leads package 1; take it down and run a multicast collective.
    (void)co_await fx.sys.OfflineCore(0, 4);
    auto route = fx.sys.EffectiveRoute(0, true);
    for (const auto& node : route.nodes) {
      if (node.package == 1) {
        EXPECT_EQ(node.leader, 5);  // promoted member
      }
    }
    for (int c = 0; c < 32; ++c) {
      fx.machine.tlb(c).Insert(0x500000, hw::TlbEntry{});
    }
    auto r = co_await fx.sys.on(0).GlobalInvalidate(0x500000, 1, Protocol::kMulticast,
                                                    OpFlags{});
    EXPECT_TRUE(r.all_yes);
    for (int c : {5, 6, 7}) {
      EXPECT_FALSE(fx.machine.tlb(c).Contains(0x500000)) << c;
    }
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

TEST(Hotplug, WholePackageOffline) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    for (int c : {4, 5, 6, 7}) {
      (void)co_await fx.sys.OfflineCore(0, c);
    }
    EXPECT_EQ(fx.sys.OnlineCount(), 28);
    auto route = fx.sys.EffectiveRoute(0, true);
    for (const auto& node : route.nodes) {
      EXPECT_NE(node.package, 1);  // package 1 dropped from the tree
    }
    auto r = co_await fx.sys.on(0).GlobalInvalidate(0x600000, 1,
                                                    Protocol::kNumaMulticast,
                                                    OpFlags{.raw = true, .skip_tlb = true});
    EXPECT_TRUE(r.all_yes);
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

TEST(Hotplug, OnlineCoreCatchesUpReplica) {
  Fixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  f.exec.Spawn([](Fixture& fx, caps::CapId r) -> Task<> {
    (void)co_await fx.sys.OfflineCore(0, 20);
    // Global state changes while core 20 is down: its replica goes stale.
    auto retype = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 4,
                                                     Protocol::kNumaMulticast);
    EXPECT_TRUE(retype.committed);
    EXPECT_FALSE(fx.sys.ReplicasConsistent());  // core 20 missed the update
    // Bring it back: state transfer + view change restores consistency.
    bool ok = co_await fx.sys.OnlineCore(0, 20);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(fx.sys.ReplicasConsistent());
    fx.sys.Shutdown();
  }(f, root));
  f.exec.Run();
}

TEST(Hotplug, InitiatorCannotOfflineItselfAndDoubleOfflineFails) {
  Fixture f;
  f.exec.Spawn([](Fixture& fx) -> Task<> {
    EXPECT_FALSE(co_await fx.sys.OfflineCore(3, 3));
    EXPECT_TRUE(co_await fx.sys.OfflineCore(0, 3));
    EXPECT_FALSE(co_await fx.sys.OfflineCore(0, 3));  // already offline
    EXPECT_TRUE(co_await fx.sys.OnlineCore(0, 3));
    EXPECT_FALSE(co_await fx.sys.OnlineCore(0, 3));  // already online
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
}

// --- IPI shootdown baselines ---

TEST(IpiShootdown, InvalidatesAllTargetTlbs) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  baseline::IpiShootdown linux_sd(m, baseline::IpiShootdown::Flavor::kLinux);
  for (int c = 0; c < 16; ++c) {
    m.tlb(c).Insert(0x400000, hw::TlbEntry{});
  }
  Cycles latency = 0;
  exec.Spawn([](hw::Machine& mm, baseline::IpiShootdown& sd, Cycles& out) -> Task<> {
    out = co_await sd.ChangeMapping(0, 16, 0x400000, 1);
    for (int c = 0; c < 16; ++c) {
      EXPECT_FALSE(mm.tlb(c).Contains(0x400000)) << c;
    }
  }(m, linux_sd, latency));
  exec.Run();
  EXPECT_GT(latency, 0u);
  EXPECT_EQ(m.counters().core(1).ipis_received, 1u);
  EXPECT_EQ(m.counters().core(1).traps, 1u);
}

TEST(IpiShootdown, LatencyGrowsLinearlyWithCores) {
  auto measure = [](int cores) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    baseline::IpiShootdown sd(m, baseline::IpiShootdown::Flavor::kLinux);
    Cycles latency = 0;
    exec.Spawn([](baseline::IpiShootdown& s, int n, Cycles& out) -> Task<> {
      out = co_await s.ChangeMapping(0, n, 0x400000, 1);
    }(sd, cores, latency));
    exec.Run();
    return latency;
  };
  Cycles at4 = measure(4);
  Cycles at16 = measure(16);
  Cycles at32 = measure(32);
  EXPECT_LT(at4, at16);
  EXPECT_LT(at16, at32);
  // Roughly linear: the 32-core latency is within [1.5x, 4x] of 16-core.
  EXPECT_GT(at32, at16 + (at16 - at4) / 2);
}

TEST(IpiShootdown, WindowsFlavorCostsMoreThanLinux) {
  auto measure = [](baseline::IpiShootdown::Flavor flavor) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    baseline::IpiShootdown sd(m, flavor);
    Cycles latency = 0;
    exec.Spawn([](baseline::IpiShootdown& s, Cycles& out) -> Task<> {
      out = co_await s.ChangeMapping(0, 32, 0x400000, 1);
    }(sd, latency));
    exec.Run();
    return latency;
  };
  EXPECT_LT(measure(baseline::IpiShootdown::Flavor::kLinux),
            measure(baseline::IpiShootdown::Flavor::kWindows));
}

}  // namespace
}  // namespace mk::monitor
