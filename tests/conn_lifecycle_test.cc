// Tests for the opt-in TCP lifecycle mode: true 3-way handshake, FIN/ACK
// close with bounded TIME_WAIT, SYN cookies under a half-open cap, abandoned
// connect sweep with 4-tuple reuse, and close-cause accounting. Legacy mode
// (the default) is covered by net_test; these tests all run with
// SetLifecycle enabled on at least one side.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "sim/task.h"

namespace mk::net {
namespace {

using sim::Cycles;
using sim::Task;

constexpr Ipv4Addr kIpA = MakeIp(10, 0, 0, 1);
constexpr Ipv4Addr kIpB = MakeIp(10, 0, 0, 2);
const MacAddr kMacA{2, 0, 0, 0, 0, 1};
const MacAddr kMacB{2, 0, 0, 0, 0, 2};

struct LifecyclePair {
  explicit LifecyclePair(TcpLifecycle server_lc = DefaultServerLc(),
                         TcpLifecycle client_lc = DefaultClientLc())
      : machine(exec, hw::Amd2x2()),
        a(machine, 0, kIpA, kMacA),
        b(machine, 2, kIpB, kMacB) {
    a.SetLifecycle(client_lc);
    b.SetLifecycle(server_lc);
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    a.SetOutput([this](Packet p) -> Task<> {
      if (drop_a_to_b) {
        co_return;
      }
      co_await b.Input(std::move(p));
    });
    b.SetOutput([this](Packet p) -> Task<> {
      if (drop_b_to_a) {
        co_return;
      }
      co_await a.Input(std::move(p));
    });
  }

  static TcpLifecycle DefaultServerLc() {
    TcpLifecycle lc;
    lc.enabled = true;
    lc.time_wait = 100'000;
    lc.syn_rcvd_timeout = 500'000;
    return lc;
  }
  static TcpLifecycle DefaultClientLc() {
    TcpLifecycle lc;
    lc.enabled = true;
    lc.time_wait = 100'000;
    return lc;
  }

  sim::Executor exec;
  hw::Machine machine;
  NetStack a;  // client
  NetStack b;  // server
  bool drop_a_to_b = false;  // simulate a black-holed path for abandon tests
  bool drop_b_to_a = false;
};

TEST(ConnLifecycle, ThreeWayHandshakeEstablishes) {
  LifecyclePair f;
  auto& listener = f.b.TcpListen(80);
  NetStack::TcpConn* client = nullptr;
  NetStack::TcpConn* server = nullptr;
  f.exec.Spawn([](NetStack& a, NetStack::TcpConn** out) -> Task<> {
    *out = co_await a.TcpConnect(kIpB, 80, 1'000'000);
  }(f.a, &client));
  f.exec.Spawn([](NetStack::Listener& l, NetStack::TcpConn** out) -> Task<> {
    *out = co_await l.Accept();
  }(listener, &server));
  f.exec.Run();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->state, TcpState::kEstablished);
  EXPECT_EQ(server->state, TcpState::kEstablished);
  EXPECT_EQ(f.b.established_count(), 1);
  EXPECT_EQ(f.b.half_open_count(), 0);
  EXPECT_EQ(f.b.peak_established(), 1);
}

TEST(ConnLifecycle, ParallelConnectStormEstablishesAll) {
  // 300 simultaneous SYNs queue ~1.4M cycles of handshake processing at the
  // server core; the timeout must be generous so the test asserts promotion
  // correctness, not eviction policy (eviction has its own tests).
  TcpLifecycle server_lc = LifecyclePair::DefaultServerLc();
  server_lc.syn_rcvd_timeout = 50'000'000;
  LifecyclePair f(server_lc);
  f.b.TcpListen(80);
  constexpr int kConns = 300;
  int ok = 0;
  for (int i = 0; i < kConns; ++i) {
    f.exec.Spawn([](NetStack& a, int* n) -> Task<> {
      NetStack::TcpConn* c = co_await a.TcpConnect(kIpB, 80, 50'000'000);
      if (c != nullptr && c->state == TcpState::kEstablished) {
        ++*n;
      }
    }(f.a, &ok));
  }
  f.exec.Run();
  EXPECT_EQ(ok, kConns);
  EXPECT_EQ(f.b.peak_established(), kConns);
  EXPECT_EQ(f.b.half_open_count(), 0);
  EXPECT_EQ(f.b.half_open_evicted(), 0);
}

// Active close from the client: FIN/ACK walk on both sides, bounded
// TIME_WAIT on the active closer, and cause-coded close counters.
TEST(ConnLifecycle, FinAckCloseWithBoundedTimeWait) {
  LifecyclePair f;
  auto& listener = f.b.TcpListen(80);
  f.exec.Spawn([](LifecyclePair& f, NetStack::Listener& l) -> Task<> {
    NetStack::TcpConn* client = co_await f.a.TcpConnect(kIpB, 80, 1'000'000);
    NetStack::TcpConn* server = co_await l.Accept();
    EXPECT_NE(client, nullptr);
    EXPECT_NE(server, nullptr);
    if (client == nullptr || server == nullptr) {
      co_return;
    }

    co_await f.a.TcpClose(*client);  // active close: FIN ->
    // The peer's FIN arrives once the server app closes its side.
    std::vector<std::uint8_t> got = co_await server->Read();
    EXPECT_TRUE(got.empty());  // FIN, not data
    EXPECT_EQ(server->state, TcpState::kCloseWait);
    co_await f.b.TcpClose(*server);  // passive side's FIN

    // Let the final ACK land and the active closer park in TIME_WAIT.
    co_await f.exec.Delay(50'000);
    EXPECT_EQ(client->state, TcpState::kTimeWait);
    EXPECT_EQ(f.a.time_wait_count(), 1);
    EXPECT_EQ(f.b.closes(CloseCause::kPassiveFin), 1u);

    f.a.Release(client);
    f.b.Release(server);
    // TIME_WAIT is bounded: the entry reaps after lc.time_wait.
    co_await f.exec.Delay(200'000);
    EXPECT_EQ(f.a.time_wait_count(), 0);
    EXPECT_EQ(f.a.time_wait_reaped(), 1u);
    EXPECT_EQ(f.a.closes(CloseCause::kActiveFin), 1u);
  }(f, listener));
  f.exec.Run();
  // Both tables fully drained: no leaked entries after close + release.
  EXPECT_EQ(f.a.conn_table().live(), 0u);
  EXPECT_EQ(f.b.conn_table().live(), 0u);
  EXPECT_EQ(f.a.established_count(), 0);
  EXPECT_EQ(f.b.established_count(), 0);
}

// At the half-open cap the server stops keeping SYN_RCVD state and answers
// with stateless SYN cookies; legitimate clients still complete.
TEST(ConnLifecycle, SynCookiesUnderHalfOpenCap) {
  TcpLifecycle server_lc = LifecyclePair::DefaultServerLc();
  server_lc.max_half_open = 2;
  server_lc.syn_rcvd_timeout = 50'000'000;
  LifecyclePair f(server_lc);
  f.b.TcpListen(80);
  constexpr int kConns = 12;
  int ok = 0;
  for (int i = 0; i < kConns; ++i) {
    f.exec.Spawn([](NetStack& a, int* n) -> Task<> {
      NetStack::TcpConn* c = co_await a.TcpConnect(kIpB, 80, 10'000'000);
      if (c != nullptr && c->state == TcpState::kEstablished) {
        ++*n;
      }
    }(f.a, &ok));
  }
  f.exec.Run();
  EXPECT_EQ(ok, kConns);
  EXPECT_GE(f.b.syn_cookies_sent(), 1u);
  EXPECT_GE(f.b.syn_cookie_accepts(), 1u);
  EXPECT_EQ(f.b.established_count(), kConns);
  // The cap held: never more than max_half_open SYN_RCVD entries at once.
  EXPECT_LE(f.b.half_open_count(), 2);
}

// A forged ACK whose cookie does not verify must not conjure a connection.
TEST(ConnLifecycle, BogusCookieAckRejected) {
  TcpLifecycle server_lc = LifecyclePair::DefaultServerLc();
  server_lc.max_half_open = 1;
  LifecyclePair f(server_lc);
  f.b.TcpListen(80);
  f.exec.Spawn([](LifecyclePair& f) -> Task<> {
    EthHeader eth;
    eth.src = kMacA;
    eth.dst = kMacB;
    IpHeader ip;
    ip.src = kIpA;
    ip.dst = kIpB;
    TcpHeader tcp;
    tcp.src_port = 33333;
    tcp.dst_port = 80;
    tcp.seq = 1;
    tcp.ack = 0xdeadbeef;  // not CookieFor(tuple) + 1
    tcp.flags = TcpFlags{.ack = true};
    co_await f.b.Input(BuildTcpFrame(eth, ip, tcp, nullptr, 0));
  }(f));
  f.exec.Run();
  EXPECT_EQ(f.b.syn_cookie_rejects(), 1u);
  EXPECT_EQ(f.b.established_count(), 0);
  EXPECT_EQ(f.b.conn_table().live(), 0u);
}

// A bounded TcpConnect whose SYN black-holes is swept: the entry leaves the
// table, the close is cause-coded, and the 4-tuple becomes reusable. The
// allocator is wrapped through the whole 16k ephemeral range to prove a
// swept port really can be re-allocated and re-established.
TEST(ConnLifecycle, AbandonedConnectSweptAndTupleReusable) {
  LifecyclePair f;
  auto& listener = f.b.TcpListen(80);
  f.drop_a_to_b = true;
  constexpr int kRange = 16384;  // full ephemeral range 49152..65535
  int null_returns = 0;
  for (int i = 0; i < kRange; ++i) {
    f.exec.Spawn([](NetStack& a, int* n) -> Task<> {
      NetStack::TcpConn* c = co_await a.TcpConnect(kIpB, 80, 50'000);
      if (c == nullptr) {
        ++*n;
      }
    }(f.a, &null_returns));
  }
  f.exec.Run();
  EXPECT_EQ(null_returns, kRange);
  EXPECT_EQ(f.a.abandoned_swept(), static_cast<std::uint64_t>(kRange));
  EXPECT_EQ(f.a.closes(CloseCause::kConnectTimeout),
            static_cast<std::uint64_t>(kRange));
  // Every half-open entry was swept, so the table is empty and the wrapped
  // allocator hands out previously-used ports.
  EXPECT_EQ(f.a.conn_table().live(), 0u);
  EXPECT_EQ(f.a.half_open_count(), 0);

  f.drop_a_to_b = false;
  NetStack::TcpConn* client = nullptr;
  NetStack::TcpConn* server = nullptr;
  f.exec.Spawn([](NetStack& a, NetStack::TcpConn** out) -> Task<> {
    *out = co_await a.TcpConnect(kIpB, 80, 1'000'000);
  }(f.a, &client));
  f.exec.Spawn([](NetStack::Listener& l, NetStack::TcpConn** out) -> Task<> {
    *out = co_await l.Accept();
  }(listener, &server));
  f.exec.Run();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->state, TcpState::kEstablished);
  // The reused port is one the abandoned storm already burned.
  EXPECT_GE(client->local_port, 49152);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->state, TcpState::kEstablished);
}

// Half-open entries on the server are evicted after syn_rcvd_timeout when
// the handshake ACK never arrives (client's ACK path black-holed).
TEST(ConnLifecycle, HalfOpenEvictionOnLostAck) {
  LifecyclePair f;
  f.b.TcpListen(80);
  // Black-hole the SYN-ACK so stack a cannot RST the unknown connection;
  // the half-open entry must die by eviction, not by reset.
  f.drop_b_to_a = true;
  f.exec.Spawn([](LifecyclePair& f) -> Task<> {
    // Hand-build a SYN so there is no client-side state machine retrying.
    EthHeader eth;
    eth.src = kMacA;
    eth.dst = kMacB;
    IpHeader ip;
    ip.src = kIpA;
    ip.dst = kIpB;
    TcpHeader tcp;
    tcp.src_port = 44444;
    tcp.dst_port = 80;
    tcp.seq = 7;
    tcp.flags = TcpFlags{.syn = true};
    co_await f.b.Input(BuildTcpFrame(eth, ip, tcp, nullptr, 0));
    co_await f.exec.Delay(100'000);
    EXPECT_EQ(f.b.half_open_count(), 1);
    // Never ACK. The eviction timer fires at syn_rcvd_timeout (500k).
    co_await f.exec.Delay(1'000'000);
    EXPECT_EQ(f.b.half_open_count(), 0);
    EXPECT_EQ(f.b.half_open_evicted(), 1u);
    EXPECT_EQ(f.b.closes(CloseCause::kHalfOpenExpiry), 1u);
  }(f));
  f.exec.Run();
  EXPECT_EQ(f.b.conn_table().live(), 0u);
}

}  // namespace
}  // namespace mk::net
