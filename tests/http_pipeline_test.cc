// Tests for HTTP/1.1 keep-alive pipelining: the HttpRequestFramer's
// chunking-identity contract (the popped request sequence depends only on
// the concatenated byte stream, never on segment boundaries), pipelined
// back-to-back requests, and the end-to-end 400-on-oversized path.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/httpd.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "sim/task.h"

namespace mk::apps {
namespace {

using sim::Cycles;
using sim::Task;

std::vector<std::string> PopAll(HttpRequestFramer& framer) {
  std::vector<std::string> out;
  std::string req;
  while (framer.PopRequest(&req)) {
    out.push_back(req);
  }
  return out;
}

TEST(HttpRequestFramer, BackToBackRequestsInOneChunk) {
  HttpRequestFramer framer;
  framer.Append(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /c HTTP/1.1\r\n\r\n");
  std::vector<std::string> got = PopAll(framer);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "GET /a HTTP/1.1\r\n\r\n");
  EXPECT_EQ(got[1], "GET /b HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(got[2], "GET /c HTTP/1.1\r\n\r\n");
  EXPECT_EQ(framer.buffered(), 0u);
  EXPECT_FALSE(framer.overflowed());
}

TEST(HttpRequestFramer, TerminatorSplitAcrossEveryBoundary) {
  const std::string req = "GET /split HTTP/1.1\r\nHost: y\r\n\r\n";
  // Split the request at every byte position; the pop must be identical.
  for (std::size_t cut = 0; cut <= req.size(); ++cut) {
    HttpRequestFramer framer;
    framer.Append(req.substr(0, cut));
    framer.Append(req.substr(cut));
    std::vector<std::string> got = PopAll(framer);
    ASSERT_EQ(got.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(got[0], req) << "cut at " << cut;
  }
}

TEST(HttpRequestFramer, ChunkingIdentityFuzz) {
  sim::Rng rng(0xf00dface);
  for (int round = 0; round < 200; ++round) {
    // Build a stream of 1..8 requests with varied paths and header baggage.
    std::string stream;
    int n = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < n; ++i) {
      stream += "GET /r" + std::to_string(rng.Below(1000)) + " HTTP/1.1\r\n";
      int headers = static_cast<int>(rng.Below(3));
      for (int h = 0; h < headers; ++h) {
        stream += "X-H" + std::to_string(h) + ": " +
                  std::string(rng.Below(20), 'v') + "\r\n";
      }
      stream += "\r\n";
    }
    // Reference: the whole stream in one chunk.
    HttpRequestFramer whole;
    whole.Append(stream);
    std::vector<std::string> expect = PopAll(whole);
    ASSERT_EQ(expect.size(), static_cast<std::size_t>(n));
    // Candidate: random segmentation of the same bytes, popping eagerly
    // after every chunk (as the serving loop does).
    HttpRequestFramer framer;
    std::vector<std::string> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      std::size_t len = 1 + rng.Below(40);
      if (pos + len > stream.size()) {
        len = stream.size() - pos;
      }
      framer.Append(stream.substr(pos, len));
      pos += len;
      for (std::string r; framer.PopRequest(&r);) {
        got.push_back(r);
      }
    }
    EXPECT_EQ(got, expect) << "round " << round;
    EXPECT_EQ(framer.buffered(), 0u);
  }
}

TEST(HttpRequestFramer, OverflowOnTerminatorlessStream) {
  HttpRequestFramer framer;
  framer.Append(std::string(kMaxRequestBytes + 1, 'A'));
  EXPECT_TRUE(framer.overflowed());
  EXPECT_FALSE(framer.HasRequest());
}

// --- End-to-end keep-alive serving over the lifecycle stack ---

const net::MacAddr kSrvMac{0x02, 0, 0, 0, 0, 0x01};
const net::MacAddr kCliMac{0x02, 0, 0, 0, 0, 0x02};
constexpr net::Ipv4Addr kSrvIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kCliIp = net::MakeIp(10, 0, 0, 2);

struct KeepAliveFixture {
  KeepAliveFixture()
      : machine(exec, hw::Amd2x2()),
        server_stack(machine, 0, kSrvIp, kSrvMac),
        client_stack(machine, 2, kCliIp, kCliMac),
        server(machine, server_stack, 80) {
    net::TcpLifecycle lc;
    lc.enabled = true;
    lc.time_wait = 100'000;
    server_stack.SetLifecycle(lc);
    client_stack.SetLifecycle(lc);
    server_stack.AddArp(kCliIp, kCliMac);
    client_stack.AddArp(kSrvIp, kSrvMac);
    server_stack.SetOutput([this](net::Packet p) -> Task<> {
      co_await client_stack.Input(std::move(p));
    });
    client_stack.SetOutput([this](net::Packet p) -> Task<> {
      co_await server_stack.Input(std::move(p));
    });
    HttpServer::KeepAlive ka;
    ka.enabled = true;
    ka.max_requests = 16;
    ka.idle_timeout = 2'000'000;
    ka.max_pipeline = 8;
    ka.header_deadline = 1'000'000;
    server.SetKeepAlive(ka);
    exec.Spawn(server.Serve());
  }
  // Sends `raw` on one connection, collects replies until the server closes
  // or `read_until` responses have arrived.
  std::string Roundtrip(const std::string& raw, int expect_responses) {
    std::string reply;
    exec.Spawn([](net::NetStack& stack, const std::string& req, int want,
                  std::string& out) -> Task<> {
      net::NetStack::TcpConn* conn =
          co_await stack.TcpConnect(kSrvIp, 80, 5'000'000);
      if (conn == nullptr) {
        co_return;
      }
      co_await stack.TcpSend(*conn, req);
      int seen = 0;
      while (seen < want) {
        auto chunk = co_await conn->Read();
        if (chunk.empty()) {
          break;  // peer closed
        }
        out.append(chunk.begin(), chunk.end());
        seen = 0;
        for (std::size_t at = out.find("HTTP/1.1"); at != std::string::npos;
             at = out.find("HTTP/1.1", at + 8)) {
          ++seen;
        }
      }
      co_await stack.TcpClose(*conn);
      stack.Release(conn);
    }(client_stack, raw, expect_responses, reply));
    exec.Run();
    return reply;
  }
  sim::Executor exec;
  hw::Machine machine;
  net::NetStack server_stack;
  net::NetStack client_stack;
  HttpServer server;
};

TEST(HttpKeepAliveEndToEnd, PipelinedRequestsServedInOrderOnOneConnection) {
  KeepAliveFixture f;
  std::string reply = f.Roundtrip(
      "GET /index.html HTTP/1.1\r\n\r\nGET /index.html HTTP/1.1\r\n\r\n", 2);
  // Two complete responses, both 200, on the same connection.
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u);
  std::size_t second = reply.find("HTTP/1.1", 8);
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(reply.compare(second, 15, "HTTP/1.1 200 OK"), 0);
  EXPECT_EQ(f.server.requests_served(), 2u);
}

TEST(HttpKeepAliveEndToEnd, OversizedRequestGets400AndClose) {
  KeepAliveFixture f;
  // A terminator-less flood larger than the framer's cap: the server must
  // answer 400 and close rather than buffer without bound.
  std::string flood(kMaxRequestBytes + 500, 'A');
  std::string reply = f.Roundtrip(flood, 1);
  EXPECT_EQ(reply.rfind("HTTP/1.1 400", 0), 0u);
  EXPECT_EQ(f.server.requests_served(), 0u);
  EXPECT_EQ(f.server.bad_requests(), 1u);
}

}  // namespace
}  // namespace mk::apps
