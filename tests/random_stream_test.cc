// Regression tests for RNG stream handout (sim/random.h).
//
// The bug class these guard against: handing out streams keyed on *creation
// order* (a global counter, a vector indexed by arrival). Under the parallel
// engine, setup code runs per domain and the order in which components come
// asking is an accident of partitioning — order-keyed streams silently
// reshuffle every seed when a machine is split across domains. Streams must
// key on what the stream is *for* (domain, purpose), so the same component
// draws the same sequence no matter who asked first.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace mk::sim {
namespace {

std::vector<std::uint64_t> Draw(Rng& rng, int n) {
  std::vector<std::uint64_t> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(rng.Next());
  }
  return out;
}

TEST(DeriveStreamSeed, IdentityForDomainZeroPurposeZero) {
  // Domain 0 / purpose 0 is the pre-parallel-engine world: every historical
  // golden transcript was recorded with the base seed used directly, so the
  // derivation must be the identity there.
  EXPECT_EQ(DeriveStreamSeed(42, 0, 0), 42u);
  EXPECT_EQ(DeriveStreamSeed(0, 0), 0u);
  EXPECT_EQ(DeriveStreamSeed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(DeriveStreamSeed, DistinctAcrossDomainsAndPurposes) {
  const std::uint64_t base = 7;
  std::vector<std::uint64_t> seen;
  for (int d = 0; d < 8; ++d) {
    for (std::uint64_t p = 0; p < 4; ++p) {
      seen.push_back(DeriveStreamSeed(base, d, p));
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << "collision between derived seeds " << i
                                  << " and " << j;
    }
  }
}

TEST(DeriveStreamSeed, PureFunctionOfInputs) {
  EXPECT_EQ(DeriveStreamSeed(99, 3, 2), DeriveStreamSeed(99, 3, 2));
  EXPECT_NE(DeriveStreamSeed(99, 3, 2), DeriveStreamSeed(100, 3, 2));
}

TEST(StreamPool, HandoutOrderDoesNotChangeStreams) {
  // The regression proper: two pools, same base seed, streams requested in
  // opposite orders. Every (domain, purpose) key must yield the identical
  // sequence regardless of who asked first.
  StreamPool a(1234);
  StreamPool b(1234);

  Rng& a0 = a.Get(0);
  Rng& a1 = a.Get(1);
  Rng& a2 = a.Get(2, /*purpose=*/5);

  Rng& b2 = b.Get(2, /*purpose=*/5);  // reversed arrival order
  Rng& b1 = b.Get(1);
  Rng& b0 = b.Get(0);

  EXPECT_EQ(Draw(a0, 16), Draw(b0, 16));
  EXPECT_EQ(Draw(a1, 16), Draw(b1, 16));
  EXPECT_EQ(Draw(a2, 16), Draw(b2, 16));
}

TEST(StreamPool, InterleavedDrawsMatchSequentialDraws) {
  // Interleaving draws across streams (as concurrent domains do in wall
  // time) must not couple the streams: each key's sequence is as if it were
  // the only stream in the pool.
  StreamPool a(77);
  StreamPool b(77);

  std::vector<std::uint64_t> a0;
  std::vector<std::uint64_t> a1;
  for (int i = 0; i < 32; ++i) {  // interleaved
    a0.push_back(a.Get(0).Next());
    a1.push_back(a.Get(1).Next());
  }
  EXPECT_EQ(a0, Draw(b.Get(0), 32));  // sequential
  EXPECT_EQ(a1, Draw(b.Get(1), 32));
}

TEST(StreamPool, DomainZeroMatchesBareRng) {
  // Pre-engine code seeded Rng(base) directly; the pool's domain-0 default
  // stream must reproduce it exactly or golden transcripts would shift.
  StreamPool pool(4242);
  Rng bare(4242);
  EXPECT_EQ(Draw(pool.Get(0), 64), Draw(bare, 64));
}

}  // namespace
}  // namespace mk::sim
