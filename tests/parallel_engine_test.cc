// Tests for the parallel discrete-event engine (sim/parallel.h): epoch
// planning, conservative lookahead, cross-domain mailbox semantics, and the
// central promise that host thread count never changes a schedule.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/domain.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::sim {
namespace {

// ---------------------------------------------------------------------------
// Single-domain engine == plain Executor.

Task<> TickTask(Executor& exec, int n, Cycles step, std::vector<Cycles>& out) {
  for (int i = 0; i < n; ++i) {
    co_await exec.Delay(step);
    out.push_back(exec.now());
  }
}

TEST(ParallelEngine, SingleDomainMatchesPlainExecutor) {
  std::vector<Cycles> plain;
  Executor exec;
  exec.Spawn(TickTask(exec, 5, 70, plain));
  const Cycles plain_end = exec.Run();
  const std::uint64_t plain_events = exec.events_dispatched();

  ParallelEngine::Options opts;
  opts.domains = 1;
  ParallelEngine eng(opts);
  std::vector<Cycles> engined;
  eng.domain(0).Spawn(TickTask(eng.domain(0), 5, 70, engined));
  const Cycles eng_end = eng.Run();

  EXPECT_EQ(plain, engined);
  EXPECT_EQ(plain_end, eng_end);
  EXPECT_EQ(plain_events, eng.events_dispatched());
  EXPECT_EQ(eng.epochs(), 0u);  // single domain short-circuits: no epochs
}

// ---------------------------------------------------------------------------
// Lookahead derivation.

TEST(ParallelEngine, LookaheadIsMinRegisteredLinkLatency) {
  ParallelEngine::Options opts;
  opts.domains = 3;
  ParallelEngine eng(opts);
  EXPECT_EQ(eng.lookahead(), opts.default_lookahead);
  eng.Link(0, 1, 700);
  EXPECT_EQ(eng.lookahead(), 700u);
  eng.Link(1, 2, 300);
  EXPECT_EQ(eng.lookahead(), 300u);
  eng.Link(2, 0, 900);  // wider link cannot widen the window
  EXPECT_EQ(eng.lookahead(), 300u);
  EXPECT_EQ(eng.link_latency(2, 0), 900u);
  EXPECT_EQ(eng.link_latency(0, 2), 0u);  // directed: reverse not registered
}

// ---------------------------------------------------------------------------
// Cross-domain delivery timing.

TEST(ParallelEngine, SendDeliversAtExactlyLinkLatency) {
  ParallelEngine::Options opts;
  opts.domains = 2;
  ParallelEngine eng(opts);
  eng.Link(0, 1, 500);
  eng.Link(1, 0, 500);

  Cycles arrival = 0;
  // Setup-path post seeds the sender; the send itself happens mid-run.
  eng.Post(0, 0, 100, [&eng, &arrival] {
    eng.Send(0, 1, [&eng, &arrival] { arrival = eng.domain(1).now(); });
  });
  eng.Run();
  EXPECT_EQ(arrival, 600u);  // sent at t=100 over a 500-cycle link
}

TEST(ParallelEngine, PostAtExactConservativeBoundIsDelivered) {
  // at == src.now() + latency is the tightest legal post: it lands exactly
  // on the epoch edge (epoch_end) when sent at the epoch's start event.
  ParallelEngine::Options opts;
  opts.domains = 2;
  ParallelEngine eng(opts);
  eng.Link(0, 1, 250);
  eng.Link(1, 0, 250);

  Cycles arrival = 0;
  eng.Post(0, 0, 0, [&eng, &arrival] {
    eng.Post(0, 1, /*at=*/250, [&eng, &arrival] { arrival = eng.domain(1).now(); });
  });
  eng.Run();
  EXPECT_EQ(arrival, 250u);
}

TEST(ParallelEngine, SetupPostNeedsNoLink) {
  // Before Run() there is no running schedule to protect: Post enqueues
  // directly, links not required (the seed path for workloads).
  ParallelEngine::Options opts;
  opts.domains = 2;
  ParallelEngine eng(opts);
  Cycles ran_at = 0;
  eng.Post(0, 1, 42, [&eng, &ran_at] { ran_at = eng.domain(1).now(); });
  eng.Run();
  EXPECT_EQ(ran_at, 42u);
}

// ---------------------------------------------------------------------------
// Same-cycle cross events: ties resolve by (source domain, FIFO), never by
// host scheduling.

TEST(ParallelEngine, SameCycleCrossEventsDrainInSourceDomainOrder) {
  for (int threads : {1, 3}) {
    ParallelEngine::Options opts;
    opts.domains = 3;
    opts.threads = threads;
    ParallelEngine eng(opts);
    for (int s : {0, 1}) {
      eng.Link(s, 2, 100);
      eng.Link(2, s, 100);
    }
    std::vector<int> order;
    // Domain 1 acts first in simulated time (t=5), domain 0 later (t=10),
    // but both messages arrive at t=400 — the drain order must be source
    // domain ascending, so 0's message runs before 1's despite being the
    // later sender.
    eng.Post(1, 1, 5, [&eng, &order] {
      eng.Post(1, 2, 400, [&order] { order.push_back(1); });
    });
    eng.Post(0, 0, 10, [&eng, &order] {
      eng.Post(0, 2, 400, [&order] { order.push_back(0); });
    });
    eng.Run();
    ASSERT_EQ(order.size(), 2u) << "threads=" << threads;
    EXPECT_EQ(order[0], 0) << "threads=" << threads;
    EXPECT_EQ(order[1], 1) << "threads=" << threads;
  }
}

TEST(ParallelEngine, FifoWithinOneSourceSameCycle) {
  ParallelEngine::Options opts;
  opts.domains = 2;
  ParallelEngine eng(opts);
  eng.Link(0, 1, 100);
  eng.Link(1, 0, 100);
  std::vector<int> order;
  eng.Post(0, 0, 0, [&eng, &order] {
    // Two posts, same source, same delivery cycle: FIFO.
    eng.Post(0, 1, 300, [&order] { order.push_back(1); });
    eng.Post(0, 1, 300, [&order] { order.push_back(2); });
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Epoch planning skips idle gaps.

TEST(ParallelEngine, IdleGapsAreFastForwarded) {
  ParallelEngine::Options opts;
  opts.domains = 2;
  opts.default_lookahead = 100;  // narrow epochs to make the point sharp
  ParallelEngine eng(opts);
  int ran = 0;
  // Events a billion cycles apart: a naive epoch walk would need 10^7
  // windows; planning from the global minimum next-event time needs one
  // epoch per event cluster.
  eng.Post(0, 0, 1'000'000'000, [&ran] { ++ran; });
  eng.Post(0, 1, 2'000'000'000, [&ran] { ++ran; });
  eng.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_LE(eng.epochs(), 4u);
  // Clocks park at the final epoch's edge, at most one lookahead past the
  // last event.
  EXPECT_GE(eng.max_now(), 2'000'000'000u);
  EXPECT_LT(eng.max_now(), 2'000'000'000u + 100u);
}

// ---------------------------------------------------------------------------
// Determinism fuzz: a randomized multi-hop message storm must produce the
// byte-identical schedule at every host thread count.

struct FuzzMsg {
  std::uint32_t id = 0;
  int hop = 0;
  int ttl = 0;
};

struct FuzzWorld {
  explicit FuzzWorld(int domains, int threads) {
    ParallelEngine::Options opts;
    opts.domains = domains;
    opts.threads = threads;
    eng.emplace(opts);
    logs.resize(static_cast<std::size_t>(domains));
    for (int s = 0; s < domains; ++s) {
      for (int d = 0; d < domains; ++d) {
        if (s != d) {
          // Asymmetric latencies; min (=lookahead) is 200.
          eng->Link(s, d, 200 + 37 * ((s * 7 + d) % 5));
        }
      }
    }
  }
  std::optional<ParallelEngine> eng;
  std::vector<std::vector<std::uint64_t>> logs;  // per-domain execution log
};

// Pure hash so both runs derive the identical itinerary with no shared
// mutable RNG state.
std::uint64_t FuzzHash(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + b + 0x632be59bd9b4e019ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void FuzzHop(FuzzWorld* w, FuzzMsg m) {
  const int d = CurrentDomain();
  Executor& exec = w->eng->domain(d);
  const Cycles t = exec.now();
  w->logs[static_cast<std::size_t>(d)].push_back(
      FuzzHash(t, (std::uint64_t{m.id} << 16) | static_cast<unsigned>(m.hop)));
  if (m.ttl == 0) {
    return;
  }
  const std::uint64_t h = FuzzHash(m.id, static_cast<std::uint64_t>(m.hop));
  const int domains = w->eng->num_domains();
  int next = static_cast<int>(h % static_cast<std::uint64_t>(domains));
  if (next == d) {
    next = (next + 1) % domains;
  }
  const Cycles lat = w->eng->link_latency(d, next);
  const Cycles extra = h >> 32 & 0x3ff;  // deterministic jitter past the bound
  FuzzMsg nm{m.id, m.hop + 1, m.ttl - 1};
  w->eng->Post(d, next, t + lat + extra, [w, nm] { FuzzHop(w, nm); });
}

std::vector<std::vector<std::uint64_t>> RunFuzz(int domains, int threads) {
  FuzzWorld w(domains, threads);
  for (std::uint32_t id = 0; id < 24; ++id) {
    const int start = static_cast<int>(id) % domains;
    const Cycles at = FuzzHash(id, 99) % 5000;
    FuzzMsg m{id, 0, 12};
    FuzzWorld* wp = &w;
    w.eng->Post(0, start, at, [wp, m] { FuzzHop(wp, m); });
  }
  w.eng->Run();
  return w.logs;
}

TEST(ParallelEngine, FuzzScheduleIsThreadCountInvariant) {
  const auto base = RunFuzz(4, 1);
  std::size_t total = 0;
  for (const auto& l : base) {
    total += l.size();
  }
  EXPECT_EQ(total, 24u * 13u);  // every hop of every message executed
  EXPECT_EQ(RunFuzz(4, 2), base);
  EXPECT_EQ(RunFuzz(4, 4), base);
}

// ---------------------------------------------------------------------------
// Guardrails die loudly instead of corrupting the timeline.

TEST(ParallelEngineDeath, ConservativeBoundViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ParallelEngine::Options opts;
        opts.domains = 2;
        ParallelEngine eng(opts);
        eng.Link(0, 1, 500);
        eng.Link(1, 0, 500);
        eng.Post(0, 0, 100, [&eng] {
          // Delivery at 101 < now (100) + latency (500): the destination may
          // already be past t=101 in this epoch.
          eng.Post(0, 1, 101, [] {});
        });
        eng.Run();
      },
      "violates conservative bound");
}

TEST(ParallelEngineDeath, ZeroLatencyLinkRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ParallelEngine::Options opts;
        opts.domains = 2;
        ParallelEngine eng(opts);
        eng.Link(0, 1, 0);
      },
      "latency must be");
}

}  // namespace
}  // namespace mk::sim
