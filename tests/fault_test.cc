// mk::fault: the injector's plan/query semantics, every injection point
// (IPIs, NIC frames, interconnect links, fail-stop core halts), and the
// recovery paths they exercise — presumed-abort 2PC among survivors, URPC
// receive timeouts, TCP go-back-N retransmission, and name-service eviction
// of dead cores' registrations. Invariant checks (no leaked blocked waiters,
// no in-flight op state, fully drained executors, replica agreement among
// survivors) run after every injected run.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <map>
#include <vector>

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "idc/name_service.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/nic.h"
#include "net/stack.h"
#include "recover/config.h"
#include "net/wire.h"
#include "sim/domain.h"
#include "sim/executor.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

// RAII install/uninstall so a failing assertion can't leak an active
// injector into the next test.
struct ScopedInjector {
  explicit ScopedInjector(const fault::FaultPlan& plan) : inj(plan) { inj.Install(); }
  ~ScopedInjector() { inj.Uninstall(); }
  fault::Injector inj;
};

// --- Plan and query semantics ---

TEST(FaultPlan, KindNamesAreDistinct) {
  for (std::size_t i = 0; i < fault::kNumKinds; ++i) {
    EXPECT_STRNE(fault::FaultKindName(static_cast<fault::FaultKind>(i)), "?");
  }
}

TEST(Injector, InactiveByDefaultAndSingleton) {
  EXPECT_EQ(fault::Injector::active(), nullptr);
  fault::FaultPlan plan;
  plan.HaltCore(3, 100);
  {
    ScopedInjector s(plan);
    EXPECT_EQ(fault::Injector::active(), &s.inj);
  }
  EXPECT_EQ(fault::Injector::active(), nullptr);
}

TEST(Injector, CoreHaltIsAPermanentPredicate) {
  fault::FaultPlan plan;
  plan.HaltCore(5, 1000);
  ScopedInjector s(plan);
  EXPECT_FALSE(s.inj.CoreHalted(5, 999));
  EXPECT_TRUE(s.inj.CoreHalted(5, 1000));
  EXPECT_TRUE(s.inj.CoreHalted(5, 1u << 30));  // permanent
  EXPECT_FALSE(s.inj.CoreHalted(4, 1u << 30));
  EXPECT_TRUE(s.inj.AnyHaltPlanned());
  // Polling it never consumes anything.
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kCoreHalt), 0u);
}

TEST(Injector, CountedDropsExhaustAndEndpointsMatch) {
  fault::FaultPlan plan;
  plan.DropIpi(/*from=*/0, /*to=*/7, /*at=*/500, /*count=*/2);
  ScopedInjector s(plan);
  EXPECT_FALSE(s.inj.ShouldDropIpi(499, 0, 7));  // not yet armed
  EXPECT_FALSE(s.inj.ShouldDropIpi(600, 1, 7));  // wrong sender
  EXPECT_TRUE(s.inj.ShouldDropIpi(600, 0, 7));
  EXPECT_TRUE(s.inj.ShouldDropIpi(700, 0, 7));
  EXPECT_FALSE(s.inj.ShouldDropIpi(800, 0, 7));  // count exhausted
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kIpiDrop), 2u);
}

TEST(Injector, ProbabilisticStreamsAreDeterministic) {
  auto decisions = [] {
    fault::FaultPlan plan;
    plan.RandomRxLoss(/*rate=*/0.3, /*seed=*/99);
    ScopedInjector s(plan);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(s.inj.ShouldDropRxFrame(static_cast<Cycles>(i) * 100));
    }
    return out;
  };
  std::vector<bool> a = decisions();
  std::vector<bool> b = decisions();
  EXPECT_EQ(a, b);
  // The rate is roughly honored (seeded stream, so this is a fixed number).
  int dropped = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(dropped, 30);
  EXPECT_LT(dropped, 90);
}

TEST(Injector, FaultStreamsArePerDomainAndOrderIndependent) {
  // Under the parallel engine each domain consumes its own (spec, domain)
  // stream, keyed — not allocated in consumption order — so which domain
  // asks first (an accident of host scheduling in wall time, though not in
  // the simulated schedule) cannot change any domain's decisions.
  auto decisions_by_domain = [](std::vector<int> domain_order) {
    fault::FaultPlan plan;
    plan.RandomRxLoss(/*rate=*/0.3, /*seed=*/99);
    ScopedInjector s(plan);
    std::map<int, std::vector<bool>> out;
    for (int d : domain_order) {
      sim::internal::tls_current_domain = d;
      for (int i = 0; i < 100; ++i) {
        out[d].push_back(s.inj.ShouldDropRxFrame(static_cast<Cycles>(i) * 100));
      }
    }
    sim::internal::tls_current_domain = 0;
    return out;
  };
  auto a = decisions_by_domain({0, 1});
  auto b = decisions_by_domain({1, 0});
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[0], a[1]);  // independent streams, not shifted copies
}

TEST(Injector, CountedFaultBudgetsArePerDomain) {
  // A count-limited spec models "this machine's NIC eats one frame"; each
  // domain is its own machine, so each gets its own budget — domain 1's
  // simulation must not observe domain 0 having already spent the fault.
  fault::FaultPlan plan;
  plan.DropIpi(/*from=*/0, /*to=*/1, /*at=*/0, /*count=*/1);
  ScopedInjector s(plan);
  sim::internal::tls_current_domain = 0;
  EXPECT_TRUE(s.inj.ShouldDropIpi(10, 0, 1));
  EXPECT_FALSE(s.inj.ShouldDropIpi(20, 0, 1));  // budget spent in domain 0
  sim::internal::tls_current_domain = 1;
  EXPECT_TRUE(s.inj.ShouldDropIpi(10, 0, 1));  // fresh budget in domain 1
  EXPECT_FALSE(s.inj.ShouldDropIpi(20, 0, 1));
  sim::internal::tls_current_domain = 0;
}

// --- Hardware injection points ---

TEST(IpiFaults, DroppedIpiNeverArrivesDelayedIpiArrivesLate) {
  auto arrival = [](fault::FaultPlan plan) -> std::optional<Cycles> {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    ScopedInjector s(plan);
    std::optional<Cycles> arrived;
    m.ipi().SetHandler(2, [&](int, std::uint64_t) { arrived = exec.now(); });
    exec.Spawn([](hw::Machine& mm) -> Task<> { co_await mm.ipi().Send(0, 2, 1); }(m));
    exec.Run();
    return arrived;
  };
  std::optional<Cycles> clean = arrival(fault::FaultPlan{});
  ASSERT_TRUE(clean.has_value());

  fault::FaultPlan drop;
  drop.DropIpi(0, 2, 0);
  EXPECT_FALSE(arrival(drop).has_value());

  fault::FaultPlan delay;
  delay.DelayIpi(0, 2, /*extra=*/5000, /*at=*/0);
  std::optional<Cycles> late = arrival(delay);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(*late, *clean + 5000);
}

TEST(IpiFaults, HaltedCoreReceivesNothing) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  fault::FaultPlan plan;
  plan.HaltCore(2, 0);
  ScopedInjector s(plan);
  bool arrived = false;
  m.ipi().SetHandler(2, [&](int, std::uint64_t) { arrived = true; });
  exec.Spawn([](hw::Machine& mm) -> Task<> { co_await mm.ipi().Send(0, 2, 1); }(m));
  exec.Run();
  EXPECT_FALSE(arrived);
}

TEST(LinkFaults, SpikeInflatesCrossPackageTransfers) {
  auto read_latency = [](fault::FaultPlan plan) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    ScopedInjector s(plan);
    sim::Addr line = m.mem().AllocLines(0, 1);
    Cycles out = 0;
    exec.Spawn([](hw::Machine& mm, sim::Addr a, Cycles& result) -> Task<> {
      // Put the line in package 0's cache, then fetch it from package 1.
      co_await mm.mem().Write(0, a);
      Cycles t0 = mm.exec().now();
      co_await mm.mem().Read(4, a);
      result = mm.exec().now() - t0;
    }(m, line, out));
    exec.Run();
    return out;
  };
  Cycles clean = read_latency(fault::FaultPlan{});
  fault::FaultPlan spike;
  spike.LinkSpike(/*extra=*/2000, /*at=*/0, fault::kForever);
  Cycles spiked = read_latency(spike);
  EXPECT_GE(spiked, clean + 2000);
}

// --- NIC injection points ---

using net::Ipv4Addr;
using net::MakeIp;
using net::Packet;

Packet UdpFrame(Ipv4Addr src, Ipv4Addr dst, std::uint16_t port, std::size_t bytes) {
  net::EthHeader eth;
  net::IpHeader ip;
  ip.src = src;
  ip.dst = dst;
  std::vector<std::uint8_t> data(bytes, 0x77);
  return net::BuildUdpFrame(eth, ip, net::UdpHeader{1, port, 0}, data.data(), data.size());
}

TEST(NicFaults, RxDropLosesFrameTxDropEatsFrameAfterDma) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  fault::FaultPlan plan;
  plan.DropRxFrames(/*at=*/0, /*count=*/1);
  plan.DropTxFrames(/*at=*/0, /*count=*/1);
  ScopedInjector s(plan);
  net::SimNic nic(m, net::SimNic::Config{});
  exec.Spawn([](net::SimNic& n) -> Task<> {
    co_await n.InjectFromWire(UdpFrame(MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 7, 64));
    co_await n.InjectFromWire(UdpFrame(MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 7, 64));
    (void)co_await n.DriverTxPush(0, UdpFrame(MakeIp(10, 0, 0, 2), MakeIp(10, 0, 0, 1), 7, 64));
  }(nic));
  exec.Run();
  // First RX frame dropped, second delivered; the TX frame was DMA'd but
  // never reached the wire.
  EXPECT_TRUE(nic.RxReady());
  EXPECT_EQ(nic.frames_dropped(), 2u);
  EXPECT_EQ(nic.frames_sent(), 0u);
  Packet out;
  EXPECT_FALSE(nic.WirePop(&out));
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kNicRxDrop), 1u);
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kNicTxDrop), 1u);
}

TEST(NicFaults, CorruptedFrameIsDeliveredButFailsChecksum) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  fault::FaultPlan plan;
  plan.CorruptRxFrames(/*at=*/0, /*count=*/1);
  ScopedInjector s(plan);
  net::SimNic nic(m, net::SimNic::Config{});
  net::NetStack stack(m, 0, MakeIp(10, 0, 0, 2), net::MacAddr{2, 0, 0, 0, 0, 1});
  stack.UdpBind(7);
  exec.Spawn([](net::SimNic& n, net::NetStack& st) -> Task<> {
    co_await n.InjectFromWire(UdpFrame(MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 7, 64));
    auto frame = co_await n.DriverRxPop(0);
    if (!frame.has_value()) {
      ADD_FAILURE() << "corrupted frame was not delivered to the driver";
      co_return;
    }
    co_await st.Input(std::move(*frame));
  }(nic, stack));
  exec.Run();
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kNicRxCorrupt), 1u);
  EXPECT_EQ(stack.drops_bad_frame(), 1u);
  EXPECT_EQ(stack.drops(), 1u);
}

// --- TCP retransmission ---

const net::MacAddr kMacA{0x02, 0, 0, 0, 0, 0xaa};
const net::MacAddr kMacB{0x02, 0, 0, 0, 0, 0xbb};
constexpr Ipv4Addr kIpA = MakeIp(10, 0, 0, 1);
constexpr Ipv4Addr kIpB = MakeIp(10, 0, 0, 2);

// Two stacks joined by a link whose losses are driven by the installed plan's
// RX-frame queries (the plan is the link model here; the NIC tests above pin
// the in-NIC injection points).
struct LossyStackPair {
  LossyStackPair()
      : machine(exec, hw::Amd2x2()),
        a(machine, 0, kIpA, kMacA),
        b(machine, 2, kIpB, kMacB) {
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    a.SetOutput([this](Packet p) -> Task<> { co_await Deliver(b, std::move(p)); });
    b.SetOutput([this](Packet p) -> Task<> { co_await Deliver(a, std::move(p)); });
  }
  Task<> Deliver(net::NetStack& dst, Packet p) {
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->ShouldDropRxFrame(exec.now())) {
      co_return;
    }
    co_await dst.Input(std::move(p));
  }
  sim::Executor exec;
  hw::Machine machine;
  net::NetStack a;
  net::NetStack b;
};

TEST(TcpRetransmit, GoBackNDeliversEverythingOverALossyLink) {
  fault::FaultPlan plan;
  plan.RandomRxLoss(/*rate=*/0.2, /*seed=*/42);
  ScopedInjector s(plan);
  LossyStackPair f;
  auto& listener = f.b.TcpListen(80);
  std::vector<std::uint8_t> received;
  f.exec.Spawn([](net::NetStack::Listener& l, std::vector<std::uint8_t>& out) -> Task<> {
    net::NetStack::TcpConn* conn = co_await l.Accept();
    while (out.size() < 8000) {
      auto chunk = co_await conn->Read();
      if (chunk.empty() && conn->peer_closed) {
        break;
      }
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  }(listener, received));
  f.exec.Spawn([](net::NetStack& stack) -> Task<> {
    net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    std::vector<std::uint8_t> big(8000);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(i);
    }
    co_await stack.TcpSend(*conn, big.data(), big.size());
  }(f.a));
  f.exec.Run();
  // Every byte arrived, in order, despite the losses — and losses did happen.
  ASSERT_EQ(received.size(), 8000u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], static_cast<std::uint8_t>(i)) << "at offset " << i;
  }
  EXPECT_GT(s.inj.injected(fault::FaultKind::kNicRxDrop), 0u);
  EXPECT_GT(f.a.tcp_retransmits(), 0u);
  // Recovery quiesced: no timer left an event behind.
  EXPECT_EQ(f.exec.pending_events(), 0u);
  EXPECT_EQ(f.exec.live_tasks(), 0u);
}

TEST(TcpRetransmit, LosslessRunsScheduleNoTimerAndRetransmitNothing) {
  // Same transfer with an injector installed but an empty plan: the timer
  // coroutine may arm, but nothing is lost, so nothing retransmits.
  fault::FaultPlan plan;
  ScopedInjector s(plan);
  LossyStackPair f;
  auto& listener = f.b.TcpListen(80);
  std::size_t total = 0;
  f.exec.Spawn([](net::NetStack::Listener& l, std::size_t& out) -> Task<> {
    net::NetStack::TcpConn* conn = co_await l.Accept();
    while (out < 5000) {
      auto chunk = co_await conn->Read();
      if (chunk.empty()) {
        break;
      }
      out += chunk.size();
    }
  }(listener, total));
  f.exec.Spawn([](net::NetStack& stack) -> Task<> {
    net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    std::vector<std::uint8_t> big(5000, 0x42);
    co_await stack.TcpSend(*conn, big.data(), big.size());
  }(f.a));
  f.exec.Run();
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(f.a.tcp_retransmits(), 0u);
  EXPECT_EQ(f.b.tcp_retransmits(), 0u);
}

// --- Per-queue NIC fault scoping ---

TEST(NicFaults, QueueScopedDropsOnlyHitTheirQueue) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  net::SimNic::Config cfg;
  cfg.queues = 4;
  net::SimNic nic(m, cfg);
  // Find one flow per target queue (vary the UDP dst port).
  std::uint16_t port_q0 = 0;
  std::uint16_t port_q2 = 0;
  for (std::uint16_t p = 1000; p < 1200; ++p) {
    Packet f = UdpFrame(kIpA, kIpB, p, 64);
    int q = nic.RssQueueFor(f);
    if (q == 0 && port_q0 == 0) {
      port_q0 = p;
    }
    if (q == 2 && port_q2 == 0) {
      port_q2 = p;
    }
  }
  ASSERT_NE(port_q0, 0);
  ASSERT_NE(port_q2, 0);
  fault::FaultPlan plan;
  plan.DropRxFramesOnQueue(/*queue=*/2, /*at=*/0, /*count=*/1);
  ScopedInjector s(plan);
  // A wildcard-site query (the pre-multi-queue call sites pass -1) must not
  // match — or consume — a queue-scoped spec.
  EXPECT_FALSE(s.inj.ShouldDropRxFrame(/*now=*/100));
  exec.Spawn([](net::SimNic& n, std::uint16_t p0, std::uint16_t p2) -> Task<> {
    co_await n.InjectFromWire(UdpFrame(kIpA, kIpB, p0, 64));
    co_await n.InjectFromWire(UdpFrame(kIpA, kIpB, p2, 64));
    co_await n.InjectFromWire(UdpFrame(kIpA, kIpB, p2, 64));
  }(nic, port_q0, port_q2));
  exec.Run();
  EXPECT_EQ(nic.queue_stats(0).rx_frames, 1u);
  EXPECT_EQ(nic.queue_stats(0).rx_fault_drops, 0u);
  EXPECT_EQ(nic.queue_stats(2).rx_frames, 1u);  // second q2 frame survived
  EXPECT_EQ(nic.queue_stats(2).rx_fault_drops, 1u);
  EXPECT_EQ(s.inj.injected(fault::FaultKind::kNicRxDrop), 1u);
}

// --- TCP loss sweep: four rates, loss in each direction, replay identical ---

// Like LossyStackPair, but the two directions consult different injection
// points: a->b is "a's transmit side" (ShouldDropTxFrame), b->a is "a's
// receive side" (ShouldDropRxFrame). A plan can therefore lose data
// segments, ACKs, or both, at independent seeded rates.
struct DuplexLossyPair {
  DuplexLossyPair()
      : machine(exec, hw::Amd2x2()),
        a(machine, 0, kIpA, kMacA),
        b(machine, 2, kIpB, kMacB) {
    a.AddArp(kIpB, kMacB);
    b.AddArp(kIpA, kMacA);
    a.SetOutput([this](Packet p) -> Task<> {
      if (fault::Injector* inj = fault::Injector::active();
          inj != nullptr && inj->ShouldDropTxFrame(exec.now())) {
        co_return;
      }
      co_await b.Input(std::move(p));
    });
    b.SetOutput([this](Packet p) -> Task<> {
      if (fault::Injector* inj = fault::Injector::active();
          inj != nullptr && inj->ShouldDropRxFrame(exec.now())) {
        co_return;
      }
      co_await a.Input(std::move(p));
    });
  }
  sim::Executor exec;
  hw::Machine machine;
  net::NetStack a;
  net::NetStack b;
};

struct SweepResult {
  std::vector<std::uint8_t> upload;    // what the server received
  std::vector<std::uint8_t> download;  // what the client received
  std::uint64_t retx_client = 0;
  std::uint64_t retx_server = 0;
  std::uint64_t lost_rx = 0;
  std::uint64_t lost_tx = 0;
  std::uint64_t events = 0;
  Cycles final_now = 0;
  bool operator==(const SweepResult&) const = default;
};

// Echo: the client streams kBytes patterned bytes; the server echoes every
// chunk back; both sides must see the identical byte sequence.
SweepResult RunLossyEcho(double rate, std::uint64_t seed) {
  constexpr std::size_t kBytes = 6000;
  fault::FaultPlan plan;
  plan.RandomRxLoss(rate, seed);
  plan.RandomTxLoss(rate, seed ^ 0x5a5a5a5a);
  ScopedInjector s(plan);
  DuplexLossyPair f;
  SweepResult r;
  auto& listener = f.b.TcpListen(7);
  f.exec.Spawn([](net::NetStack& stack, net::NetStack::Listener& l,
                  std::vector<std::uint8_t>& up) -> Task<> {
    net::NetStack::TcpConn* conn = co_await l.Accept();
    while (up.size() < kBytes) {
      auto chunk = co_await conn->Read();
      if (chunk.empty() && conn->peer_closed) {
        break;
      }
      up.insert(up.end(), chunk.begin(), chunk.end());
      co_await stack.TcpSend(*conn, chunk.data(), chunk.size());
    }
  }(f.b, listener, r.upload));
  f.exec.Spawn([](net::NetStack& stack, std::vector<std::uint8_t>& down) -> Task<> {
    net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 7);
    std::vector<std::uint8_t> data(kBytes);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    co_await stack.TcpSend(*conn, data.data(), data.size());
    while (down.size() < kBytes) {
      auto chunk = co_await conn->Read();
      if (chunk.empty() && conn->peer_closed) {
        break;
      }
      down.insert(down.end(), chunk.begin(), chunk.end());
    }
  }(f.a, r.download));
  f.exec.Run();
  r.retx_client = f.a.tcp_retransmits();
  r.retx_server = f.b.tcp_retransmits();
  r.lost_rx = s.inj.injected(fault::FaultKind::kNicRxDrop);
  r.lost_tx = s.inj.injected(fault::FaultKind::kNicTxDrop);
  r.events = f.exec.events_dispatched();
  r.final_now = f.exec.now();
  return r;
}

// Webserver-shaped: one HTTP GET, a ~4 KB response, server closes.
SweepResult RunLossyWebRequest(double rate, std::uint64_t seed) {
  const std::string kRequest = "GET /lossy.html HTTP/1.1\r\nHost: mk\r\n\r\n";
  const std::string kBody(4096, 'w');
  fault::FaultPlan plan;
  plan.RandomRxLoss(rate, seed);
  plan.RandomTxLoss(rate, seed + 1);
  ScopedInjector s(plan);
  DuplexLossyPair f;
  SweepResult r;
  auto& listener = f.b.TcpListen(80);
  f.exec.Spawn([](net::NetStack& stack, net::NetStack::Listener& l,
                  const std::string& body, std::vector<std::uint8_t>& up) -> Task<> {
    net::NetStack::TcpConn* conn = co_await l.Accept();
    std::string req;
    while (req.find("\r\n\r\n") == std::string::npos) {
      auto chunk = co_await conn->Read();
      if (chunk.empty() && conn->peer_closed) {
        break;
      }
      req.append(chunk.begin(), chunk.end());
    }
    up.assign(req.begin(), req.end());
    std::string resp = "HTTP/1.1 200 OK\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    co_await stack.TcpSend(*conn,
                           reinterpret_cast<const std::uint8_t*>(resp.data()),
                           resp.size());
    co_await stack.TcpClose(*conn);
  }(f.b, listener, kBody, r.upload));
  f.exec.Spawn([](net::NetStack& stack, const std::string& req,
                  std::vector<std::uint8_t>& down) -> Task<> {
    net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kIpB, 80);
    co_await stack.TcpSend(*conn,
                           reinterpret_cast<const std::uint8_t*>(req.data()),
                           req.size());
    for (;;) {
      auto chunk = co_await conn->Read();
      if (chunk.empty() && conn->peer_closed) {
        break;
      }
      down.insert(down.end(), chunk.begin(), chunk.end());
    }
  }(f.a, kRequest, r.download));
  f.exec.Run();
  r.retx_client = f.a.tcp_retransmits();
  r.retx_server = f.b.tcp_retransmits();
  r.lost_rx = s.inj.injected(fault::FaultKind::kNicRxDrop);
  r.lost_tx = s.inj.injected(fault::FaultKind::kNicTxDrop);
  r.events = f.exec.events_dispatched();
  r.final_now = f.exec.now();
  return r;
}

TEST(TcpLossSweep, EchoDeliversEverythingAtEveryRateAndReplaysBitIdentically) {
  constexpr std::size_t kBytes = 6000;
  std::vector<std::uint8_t> expected(kBytes);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  Cycles prev_now = 0;
  std::uint64_t total_lost = 0;
  std::uint64_t total_retx = 0;
  for (double rate : {0.01, 0.05, 0.15, 0.30}) {
    SweepResult r = RunLossyEcho(rate, /*seed=*/1234);
    ASSERT_EQ(r.upload, expected) << "rate " << rate;
    ASSERT_EQ(r.download, expected) << "rate " << rate;
    total_lost += r.lost_rx + r.lost_tx;
    total_retx += r.retx_client + r.retx_server;
    // At serious loss rates, data segments certainly went missing and
    // go-back-N certainly fired. (At 1% a short transfer can get lucky, and
    // a lost bare ACK is legitimately repaired by a later cumulative ACK
    // with no retransmit — so those rates only feed the sweep totals.)
    if (rate >= 0.15) {
      EXPECT_GT(r.lost_rx + r.lost_tx, 0u) << "rate " << rate;
      EXPECT_GT(r.retx_client + r.retx_server, 0u) << "rate " << rate;
    }
    // Higher loss cannot finish sooner: the 200k-cycle RTO dominates.
    EXPECT_GE(r.final_now, prev_now) << "rate " << rate;
    prev_now = r.final_now;
    // Same seed -> the entire run, counters and clock included, replays.
    EXPECT_EQ(r, RunLossyEcho(rate, /*seed=*/1234)) << "rate " << rate;
  }
  EXPECT_GT(total_lost, 0u);
  EXPECT_GT(total_retx, 0u);
}

TEST(TcpLossSweep, WebRequestSurvivesEveryRateAndReplaysBitIdentically) {
  const std::string kRequest = "GET /lossy.html HTTP/1.1\r\nHost: mk\r\n\r\n";
  const std::string kBody(4096, 'w');
  const std::string kResp = "HTTP/1.1 200 OK\r\nContent-Length: " +
                            std::to_string(kBody.size()) + "\r\n\r\n" + kBody;
  std::uint64_t total_lost = 0;
  std::uint64_t total_retx = 0;
  for (double rate : {0.01, 0.05, 0.15, 0.30}) {
    SweepResult r = RunLossyWebRequest(rate, /*seed=*/777);
    ASSERT_EQ(std::string(r.upload.begin(), r.upload.end()), kRequest)
        << "rate " << rate;
    ASSERT_EQ(std::string(r.download.begin(), r.download.end()), kResp)
        << "rate " << rate;
    total_lost += r.lost_rx + r.lost_tx;
    total_retx += r.retx_client + r.retx_server;
    EXPECT_EQ(r, RunLossyWebRequest(rate, /*seed=*/777)) << "rate " << rate;
  }
  EXPECT_GT(total_lost, 0u);
  EXPECT_GT(total_retx, 0u);
}

// --- Monitor recovery: presumed abort and survivor agreement ---

struct MonitorFixture {
  MonitorFixture()
      : machine(exec, hw::Amd8x4()),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    sys.Boot();
  }

  void ExpectQuiesced() {
    EXPECT_EQ(exec.pending_events(), 0u);
    for (int c = 0; c < machine.num_cores(); ++c) {
      EXPECT_EQ(drivers[static_cast<std::size_t>(c)]->blocked_count(), 0u)
          << "leaked blocked waiter on core " << c;
      if (sys.IsOnline(c)) {
        EXPECT_EQ(sys.on(c).inflight_ops(), 0u) << "leaked op state on core " << c;
      }
    }
  }

  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

TEST(TwoPcRecovery, CommitsAmongSurvivorsAfterParticipantHalt) {
  fault::FaultPlan plan;
  plan.HaltCore(9, /*at=*/0);  // dead before the protocol starts, undetected
  ScopedInjector s(plan);
  MonitorFixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  monitor::Monitor::TwoPcResult result;
  f.exec.Spawn([](MonitorFixture& fx, caps::CapId r,
                  monitor::Monitor::TwoPcResult& out) -> Task<> {
    out = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 4,
                                             Protocol::kNumaMulticast);
    fx.sys.Shutdown();
  }(f, root, result));
  f.exec.Run();
  // The first round times out on the dead participant (presumed abort), the
  // detection excludes it, and the retry commits among the survivors.
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.outcome, monitor::Monitor::TwoPcOutcome::kCommitted);
  EXPECT_GE(result.attempts, 2);
  EXPECT_TRUE(f.sys.CoreFailed(9));
  EXPECT_FALSE(f.sys.IsOnline(9));
  EXPECT_TRUE(f.sys.LiveReplicasConsistent());
  // The dead replica never prepared, so full consistency may not hold — but
  // every live replica applied the retype.
  for (int c : {0, 1, 8, 10, 31}) {
    EXPECT_TRUE(f.sys.on(c).caps().HasDescendants(root)) << "replica " << c;
  }
  f.ExpectQuiesced();
}

TEST(TwoPcRecovery, HaltedMulticastLeaderIsReplaced) {
  fault::FaultPlan plan;
  plan.HaltCore(8, /*at=*/0);  // core 8 leads package 2 in the 8x4 route
  ScopedInjector s(plan);
  MonitorFixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  monitor::Monitor::TwoPcResult result;
  f.exec.Spawn([](MonitorFixture& fx, caps::CapId r,
                  monitor::Monitor::TwoPcResult& out) -> Task<> {
    out = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 1,
                                             Protocol::kNumaMulticast);
    fx.sys.Shutdown();
  }(f, root, result));
  f.exec.Run();
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(f.sys.CoreFailed(8));
  // The leader's package members survived and applied the op via the
  // promoted leader.
  for (int c : {9, 10, 11}) {
    EXPECT_TRUE(f.sys.on(c).caps().HasDescendants(root)) << "replica " << c;
  }
  EXPECT_TRUE(f.sys.LiveReplicasConsistent());
  f.ExpectQuiesced();
}

TEST(TwoPcRecovery, HeartbeatDetectsHaltWithoutAnInitiator) {
  fault::FaultPlan plan;
  plan.HaltCore(13, /*at=*/10'000);
  ScopedInjector s(plan);
  MonitorFixture f;
  f.exec.Spawn([](MonitorFixture& fx) -> Task<> {
    // Nobody initiates anything; only the heartbeat sweep is running.
    co_await fx.exec.Delay(recover::Config().heartbeat_period * 3);
    EXPECT_TRUE(fx.sys.CoreFailed(13));
    EXPECT_FALSE(fx.sys.IsOnline(13));
    fx.sys.Shutdown();
  }(f));
  f.exec.Run();
  f.ExpectQuiesced();
}

TEST(TwoPcRecovery, CleanRunsUnderInjectorStillCommitFirstTry) {
  // An installed-but-empty plan must not change protocol outcomes.
  fault::FaultPlan plan;
  ScopedInjector s(plan);
  MonitorFixture f;
  caps::CapId root = f.sys.InstallRootCap(0, 64 << 20);
  monitor::Monitor::TwoPcResult result;
  f.exec.Spawn([](MonitorFixture& fx, caps::CapId r,
                  monitor::Monitor::TwoPcResult& out) -> Task<> {
    out = co_await fx.sys.on(0).GlobalRetype(r, caps::CapType::kFrame, 4096, 1,
                                             Protocol::kNumaMulticast);
    fx.sys.Shutdown();
  }(f, root, result));
  f.exec.Run();
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.backoff, 0u);
  EXPECT_TRUE(f.sys.ReplicasConsistent());
  f.ExpectQuiesced();
}

// --- URPC receive timeout ---

TEST(RecvTimeout, DeadSenderYieldsNulloptAndNoLeakedWaiter) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  fault::FaultPlan plan;
  plan.HaltCore(0, /*at=*/0);  // the would-be sender is dead
  ScopedInjector s(plan);
  urpc::Channel ch(m, 0, 4);
  bool got = true;
  exec.Spawn([](urpc::Channel& c, CpuDriver& local, CpuDriver& snd, bool& out) -> Task<> {
    auto msg = co_await c.RecvTimeout(local, snd, /*poll_window=*/3000,
                                      /*timeout=*/100'000);
    out = msg.has_value();
  }(ch, *drivers[4], *drivers[0], got));
  exec.Run();
  EXPECT_FALSE(got);
  EXPECT_EQ(drivers[4]->blocked_count(), 0u);
  EXPECT_EQ(exec.pending_events(), 0u);
  EXPECT_EQ(exec.live_tasks(), 0u);
}

TEST(RecvTimeout, MessageBeatingTheTimeoutIsDelivered) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  fault::FaultPlan plan;
  ScopedInjector s(plan);
  urpc::Channel ch(m, 0, 4);
  int got = -1;
  exec.Spawn([](hw::Machine& mm, urpc::Channel& c) -> Task<> {
    co_await mm.exec().Delay(20'000);  // past the poll window, before the timeout
    co_await c.Send(urpc::Pack(0, 42));
  }(m, ch));
  exec.Spawn([](urpc::Channel& c, CpuDriver& local, CpuDriver& snd, int& out) -> Task<> {
    auto msg = co_await c.RecvTimeout(local, snd, /*poll_window=*/3000,
                                      /*timeout=*/200'000);
    if (!msg.has_value()) {
      ADD_FAILURE() << "message beat the timeout but was not delivered";
      co_return;
    }
    out = urpc::Unpack<int>(*msg);
  }(ch, *drivers[4], *drivers[0], got));
  exec.Run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(drivers[4]->blocked_count(), 0u);
}

// --- Name service eviction ---

TEST(NameServiceFaults, DeadCoreRegistrationsAreEvictedLazily) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  fault::FaultPlan plan;
  plan.HaltCore(2, /*at=*/50'000);
  ScopedInjector s(plan);
  idc::NameService ns(m);
  // Built outside the coroutine: gcc miscompiles braced string-literal
  // initializer lists across the coroutine transform ("array used as
  // initializer").
  std::map<std::string, std::string> props{{"kind", "service"}};
  exec.Spawn([](hw::Machine& mm, idc::NameService& svc,
                const std::map<std::string, std::string>& p) -> Task<> {
    (void)co_await svc.Register(2, "fs", p);
    (void)co_await svc.Register(5, "net", p);
    // Before the halt both resolve.
    EXPECT_TRUE((co_await svc.Lookup(1, "fs")).has_value());
    EXPECT_EQ((co_await svc.Query(1, "kind", "service")).size(), 2u);
    co_await mm.exec().Delay(60'000);  // past the halt
    // The dead core's registration is evicted on touch; the live one stays.
    EXPECT_FALSE((co_await svc.Lookup(1, "fs")).has_value());
    auto remaining = co_await svc.Query(1, "kind", "service");
    EXPECT_EQ(remaining.size(), 1u);
    if (!remaining.empty()) {
      EXPECT_EQ(remaining[0].core, 5);
    }
    EXPECT_EQ(svc.size(), 1u);
  }(m, ns, props));
  exec.Run();
}

TEST(NameServiceFaults, ExplicitEvictionCountsRemovalsAndIsIdempotent) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  idc::NameService ns(m);
  std::map<std::string, std::string> props{{"kind", "service"}};
  exec.Spawn([](idc::NameService& svc,
                const std::map<std::string, std::string>& p) -> Task<> {
    (void)co_await svc.Register(2, "fs", p);
    (void)co_await svc.Register(2, "blk", p);
    (void)co_await svc.Register(2, "pci", p);
    (void)co_await svc.Register(5, "net", p);
    // Everything core 2 owned goes in one sweep; core 5's survives.
    EXPECT_EQ(svc.EvictCore(2), 3u);
    EXPECT_EQ(svc.size(), 1u);
    EXPECT_TRUE((co_await svc.Lookup(1, "net")).has_value());
    EXPECT_FALSE((co_await svc.Lookup(1, "fs")).has_value());
    // Evicting again — or evicting a core that never registered — is a no-op.
    EXPECT_EQ(svc.EvictCore(2), 0u);
    EXPECT_EQ(svc.EvictCore(7), 0u);
    EXPECT_EQ(svc.size(), 1u);
  }(ns, props));
  exec.Run();
}

TEST(NameServiceFaults, ReRegistrationAfterEvictionGetsAFreshIdentity) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  idc::NameService ns(m);
  std::map<std::string, std::string> props{{"kind", "service"}};
  exec.Spawn([](idc::NameService& svc,
                const std::map<std::string, std::string>& p) -> Task<> {
    idc::ServiceRef old_ref = co_await svc.Register(2, "fs", p);
    EXPECT_EQ(svc.EvictCore(2), 1u);
    // The evicted id is dead, not recyclable: unregistering it fails.
    EXPECT_FALSE(co_await svc.Unregister(5, old_ref.id));
    // A successor (the respawned service on another core) takes the name over
    // with a fresh id; lookups resolve to it, never to the dead owner.
    idc::ServiceRef new_ref = co_await svc.Register(5, "fs", p);
    EXPECT_NE(new_ref.id, old_ref.id);
    EXPECT_EQ(new_ref.core, 5);
    auto found = co_await svc.Lookup(1, "fs");
    EXPECT_TRUE(found.has_value());
    if (found.has_value()) {
      EXPECT_EQ(found->core, 5);
      EXPECT_EQ(found->id, new_ref.id);
    }
  }(ns, props));
  exec.Run();
}

TEST(NameServiceFaults, QueryWhereEveryMatchIsDeadEvictsAllAndReturnsEmpty) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  fault::FaultPlan plan;
  plan.HaltCore(2, /*at=*/50'000);
  plan.HaltCore(5, /*at=*/50'000);
  ScopedInjector s(plan);
  idc::NameService ns(m);
  std::map<std::string, std::string> props{{"kind", "service"}};
  exec.Spawn([](hw::Machine& mm, idc::NameService& svc,
                const std::map<std::string, std::string>& p) -> Task<> {
    (void)co_await svc.Register(2, "fs", p);
    (void)co_await svc.Register(5, "net", p);
    co_await mm.exec().Delay(60'000);  // past both halts
    // A query whose entire result set is owned by dead cores evicts the lot
    // mid-iteration and returns empty, without touching freed entries.
    EXPECT_TRUE((co_await svc.Query(1, "kind", "service")).empty());
    EXPECT_EQ(svc.size(), 0u);
  }(m, ns, props));
  exec.Run();
}

}  // namespace
}  // namespace mk
