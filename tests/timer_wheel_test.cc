// Tests for the hierarchical timer wheel: cascade correctness at level
// boundaries, a cancel-vs-fire fuzz against a reference model, and replay
// determinism across engine thread counts.
#include <cstdint>
#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/timer_wheel.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "sim/task.h"

namespace mk::net {
namespace {

using sim::Cycles;
using sim::Task;

// Deterministic xorshift for the fuzz schedules.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }
};

TEST(TimerWheel, FiresAtTickGranularityNeverEarly) {
  sim::Executor exec;
  TimerWheel w(exec);
  const Cycles tick = w.tick_cycles();
  std::vector<std::pair<Cycles, Cycles>> fired;  // (due, actual)
  for (Cycles delay : {Cycles{1}, tick - 1, tick, tick + 1, 10 * tick + 7,
                       255 * tick, 256 * tick, 257 * tick}) {
    w.Schedule(delay, [&fired, &exec, delay] {
      fired.push_back({delay, exec.now()});
    });
  }
  exec.Run();
  ASSERT_EQ(fired.size(), 8u);
  for (auto [due, at] : fired) {
    EXPECT_GE(at, due) << "timer fired early";
    // Rounded up to a tick boundary, and never more than one tick late.
    EXPECT_LT(at, due + tick) << "timer fired more than a tick late";
    EXPECT_EQ(at % tick, 0u);
  }
}

TEST(TimerWheel, CascadeAtEveryLevelBoundary) {
  // One timer per level of the hierarchy, including deadlines that straddle
  // the L0/L1, L1/L2, and L2/L3 boundaries exactly.
  sim::Executor exec;
  TimerWheel w(exec);
  const Cycles tick = w.tick_cycles();
  const std::uint64_t kBoundaries[] = {255,   256,   257,    16383, 16384,
                                       16385, 1u << 20, (1u << 20) + 1};
  std::map<std::uint64_t, Cycles> fire_time;
  for (std::uint64_t t : kBoundaries) {
    w.Schedule(t * tick, [&fire_time, &exec, t] { fire_time[t] = exec.now(); });
  }
  exec.Run();
  ASSERT_EQ(fire_time.size(), 8u);
  for (std::uint64_t t : kBoundaries) {
    EXPECT_EQ(fire_time[t], t * tick) << "boundary " << t;
  }
  EXPECT_GE(w.cascades(), 1u);
  EXPECT_EQ(w.armed(), 0u);
}

TEST(TimerWheel, CancelPreventsFire) {
  sim::Executor exec;
  TimerWheel w(exec);
  bool ran = false;
  TimerWheel::TimerId id = w.Schedule(100'000, [&ran] { ran = true; });
  EXPECT_TRUE(w.Cancel(id));
  EXPECT_FALSE(w.Cancel(id));  // stale id: already cancelled
  exec.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(w.armed(), 0u);
  EXPECT_EQ(w.cancelled(), 1u);
}

TEST(TimerWheel, StaleIdAfterFireCancelsNothing) {
  sim::Executor exec;
  TimerWheel w(exec);
  int fires = 0;
  TimerWheel::TimerId first = w.Schedule(10'000, [&fires] { ++fires; });
  exec.Run();
  EXPECT_EQ(fires, 1);
  // The node is freelisted; a new timer may reuse it. The old id must not
  // cancel the new timer.
  TimerWheel::TimerId second = w.Schedule(10'000, [&fires] { ++fires; });
  EXPECT_FALSE(w.Cancel(first));
  exec.Run();
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(second != first || w.fired() == 2);
}

// The load-bearing test: random schedule/cancel traffic checked against a
// reference multimap. Every surviving timer must fire exactly once, at or
// after its deadline (within one tick), in deterministic order; every
// cancelled timer must never fire.
TEST(TimerWheel, FuzzAgainstReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Executor exec;
    TimerWheel w(exec);
    const Cycles tick = w.tick_cycles();
    Rng rng(seed);
    struct Ref {
      Cycles due = 0;
      bool cancelled = false;
      bool fired = false;
      Cycles fired_at = 0;
    };
    std::vector<Ref> refs;
    std::vector<TimerWheel::TimerId> ids;
    // A driver task interleaves schedules and cancels over simulated time so
    // timers are armed from many different current_tick_ positions (that is
    // where wrap/cascade bugs live).
    exec.Spawn([](sim::Executor& ex, TimerWheel& wh, Rng& r,
                  std::vector<Ref>& rf, std::vector<TimerWheel::TimerId>& id_v)
                   -> Task<> {
      for (int step = 0; step < 4000; ++step) {
        const std::uint64_t roll = r.Below(100);
        if (roll < 70 || rf.empty()) {
          // Schedule with a spread of magnitudes: same-tick .. deep L3.
          static constexpr Cycles kMag[] = {1,        4'000,     40'000,
                                            400'000,  4'000'000, 40'000'000,
                                            400'000'000};
          Cycles delay = 1 + r.Below(kMag[r.Below(7)]);
          std::size_t idx = rf.size();
          rf.push_back({ex.now() + delay, false, false, 0});
          id_v.push_back(wh.Schedule(delay, [&rf, &ex, idx] {
            rf[idx].fired = true;
            rf[idx].fired_at = ex.now();
          }));
        } else {
          std::size_t idx = r.Below(rf.size());
          if (!rf[idx].cancelled && !rf[idx].fired && wh.Cancel(id_v[idx])) {
            rf[idx].cancelled = true;
          }
        }
        co_await ex.Delay(1 + r.Below(30'000));
      }
    }(exec, w, rng, refs, ids));
    exec.Run();
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const Ref& ref = refs[i];
      if (ref.cancelled) {
        EXPECT_FALSE(ref.fired) << "seed " << seed << " timer " << i
                                << " fired after cancel";
        continue;
      }
      ASSERT_TRUE(ref.fired) << "seed " << seed << " timer " << i
                             << " (due " << ref.due << ") never fired";
      ++fired;
      EXPECT_GE(ref.fired_at, ref.due)
          << "seed " << seed << " timer " << i << " fired early";
      EXPECT_LT(ref.fired_at, ref.due + tick)
          << "seed " << seed << " timer " << i << " fired late";
    }
    EXPECT_EQ(w.fired(), fired);
    EXPECT_EQ(w.armed(), 0u);
    EXPECT_EQ(w.scheduled(), w.fired() + w.cancelled());
  }
}

// The wheel must be schedule-deterministic: the same program replayed at any
// engine thread count produces the identical fire transcript. Four engine
// domains each host a wheel; the per-domain transcripts must not depend on
// how many host workers drive the epochs.
TEST(TimerWheel, ReplayIdenticalAcrossThreadCounts) {
  constexpr int kDomains = 4;
  auto run = [](int threads) {
    sim::ParallelEngine::Options opts;
    opts.domains = kDomains;
    opts.threads = threads;
    sim::ParallelEngine engine(opts);
    std::vector<std::unique_ptr<TimerWheel>> wheels;
    // One log per domain: domains run on different host threads, so each
    // wheel writes only its own vector (single-writer, no races).
    std::vector<std::vector<std::pair<int, Cycles>>> logs(kDomains);
    for (int d = 0; d < kDomains; ++d) {
      sim::Executor& exec = engine.domain(d);
      wheels.push_back(std::make_unique<TimerWheel>(exec));
      Rng rng(99 + static_cast<std::uint64_t>(d));
      for (int i = 0; i < 200; ++i) {
        Cycles delay = 1 + rng.Below(3'000'000);
        wheels.back()->Schedule(delay, [&log = logs[static_cast<std::size_t>(d)],
                                        i, &exec] {
          log.push_back({i, exec.now()});
        });
      }
    }
    engine.Run();
    std::vector<std::pair<int, Cycles>> out;
    for (auto& l : logs) {
      out.insert(out.end(), l.begin(), l.end());
    }
    return out;
  };
  auto t1 = run(1);
  auto t2 = run(2);
  auto t4 = run(4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1.size(), 200u * kDomains);
}

}  // namespace
}  // namespace mk::net
