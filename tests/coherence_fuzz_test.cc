// Property/fuzz tests for the coherence protocol: random concurrent access
// sequences must preserve the MOESI-style invariants on every platform, and
// the simulation must be deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/random.h"

namespace mk::hw {
namespace {

using sim::Addr;
using sim::Cycles;
using sim::Task;

struct FuzzConfig {
  const char* platform;
  std::uint64_t seed;
  int lines;
  int ops_per_core;
};

PlatformSpec SpecByName(const char* name) {
  for (auto& s : PaperPlatforms()) {
    if (s.name == std::string_view(name)) {
      return s;
    }
  }
  return Generic(2, 2);
}

Task<> FuzzWorker(Machine& m, int core, Addr base, int lines, int ops, std::uint64_t seed) {
  sim::Rng rng(seed ^ (static_cast<std::uint64_t>(core) << 32));
  for (int i = 0; i < ops; ++i) {
    Addr addr = base + rng.Below(static_cast<std::uint64_t>(lines)) * sim::kCacheLineBytes;
    switch (rng.Below(4)) {
      case 0:
        co_await m.mem().Read(core, addr);
        break;
      case 1:
        co_await m.mem().Write(core, addr);
        break;
      case 2:
        co_await m.mem().ReadPrefetched(core, addr);
        break;
      default:
        co_await m.mem().WritePosted(core, addr);
        break;
    }
    if (rng.Chance(0.2)) {
      co_await m.exec().Delay(rng.Below(500));
    }
  }
}

class CoherenceFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(CoherenceFuzz, InvariantsHoldUnderRandomTraffic) {
  const FuzzConfig& cfg = GetParam();
  sim::Executor exec;
  Machine m(exec, SpecByName(cfg.platform));
  Addr base = m.mem().AllocLines(0, static_cast<std::uint64_t>(cfg.lines));
  for (int c = 0; c < m.num_cores(); ++c) {
    exec.Spawn(FuzzWorker(m, c, base, cfg.lines, cfg.ops_per_core, cfg.seed));
  }
  exec.Run();

  std::uint64_t all_cores_mask =
      m.num_cores() == 64 ? ~0ULL : ((1ULL << m.num_cores()) - 1);
  for (int l = 0; l < cfg.lines; ++l) {
    Addr addr = base + static_cast<Addr>(l) * sim::kCacheLineBytes;
    std::uint64_t sharers = m.mem().SharersOf(addr);
    int owner = m.mem().OwnerOf(addr);
    // Invariant 1: sharers is a subset of existing cores.
    EXPECT_EQ(sharers & ~all_cores_mask, 0u);
    // Invariant 2: if a core owns the line (modified), it holds a copy...
    if (owner >= 0) {
      EXPECT_NE(sharers & (1ULL << owner), 0u) << "owner without a copy, line " << l;
      // ...and after the last access was a write, it is the only holder or
      // the line has since been read (owner + readers = MOESI owned state):
      // either way the owner must be a member. Stronger: no second *owner*.
      EXPECT_LT(owner, m.num_cores());
    }
    // Invariant 3: a line someone wrote has an owner or was never written;
    // HasLine agrees with the sharers bitmap.
    for (int c = 0; c < m.num_cores(); ++c) {
      EXPECT_EQ(m.mem().HasLine(c, addr), (sharers >> c) & 1);
    }
  }
  // Counters are self-consistent: every load/store is a hit or a miss.
  auto total = m.counters().Total();
  EXPECT_EQ(total.loads + total.stores, total.cache_hits + total.cache_misses);
  EXPECT_EQ(total.cache_misses, total.c2c_transfers + total.dram_fetches +
                                    (total.cache_misses - total.c2c_transfers -
                                     total.dram_fetches));
  EXPECT_LE(total.c2c_transfers + total.dram_fetches, total.cache_misses);
}

TEST_P(CoherenceFuzz, DeterministicReplay) {
  const FuzzConfig& cfg = GetParam();
  auto run = [&cfg] {
    sim::Executor exec;
    Machine m(exec, SpecByName(cfg.platform));
    Addr base = m.mem().AllocLines(0, static_cast<std::uint64_t>(cfg.lines));
    for (int c = 0; c < m.num_cores(); ++c) {
      exec.Spawn(FuzzWorker(m, c, base, cfg.lines, cfg.ops_per_core, cfg.seed));
    }
    Cycles end = exec.Run();
    auto total = m.counters().Total();
    return std::make_tuple(end, total.cache_misses, total.c2c_transfers,
                           m.counters().link_dwords(0, 1));
  };
  EXPECT_EQ(run(), run()) << "simulation is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, CoherenceFuzz,
    ::testing::Values(FuzzConfig{"2x4-core Intel", 1, 8, 150},
                      FuzzConfig{"2x2-core AMD", 2, 4, 200},
                      FuzzConfig{"4x4-core AMD", 3, 16, 120},
                      FuzzConfig{"8x4-core AMD", 4, 32, 80},
                      FuzzConfig{"8x4-core AMD", 5, 1, 120},   // single hot line
                      FuzzConfig{"4x4-core AMD", 6, 256, 60}), // sparse
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      std::string name = info.param.platform;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

TEST(CoherenceProperty, ReadAfterRemoteWriteAlwaysMisses) {
  // For any pair of cores (a != b): after b writes, a's next read misses.
  sim::Executor exec;
  Machine m(exec, Amd4x4());
  Addr addr = m.mem().AllocLines(2, 1);
  exec.Spawn([](Machine& mm, Addr a) -> Task<> {
    for (int writer = 0; writer < mm.num_cores(); ++writer) {
      for (int reader = 0; reader < mm.num_cores(); ++reader) {
        if (writer == reader) {
          continue;
        }
        co_await mm.mem().Write(writer, a);
        auto before = mm.counters().core(reader).cache_misses;
        co_await mm.mem().Read(reader, a);
        EXPECT_EQ(mm.counters().core(reader).cache_misses, before + 1)
            << "writer " << writer << " reader " << reader;
      }
    }
  }(m, addr));
  exec.Run();
}

TEST(CoherenceProperty, RepeatedLocalAccessAlwaysHits) {
  sim::Executor exec;
  Machine m(exec, Amd8x4());
  Addr addr = m.mem().AllocLines(0, 4);
  exec.Spawn([](Machine& mm, Addr a) -> Task<> {
    co_await mm.mem().Write(7, a, 4 * sim::kCacheLineBytes);
    auto misses_before = mm.counters().core(7).cache_misses;
    for (int i = 0; i < 50; ++i) {
      co_await mm.mem().Read(7, a, 4 * sim::kCacheLineBytes);
      co_await mm.mem().Write(7, a, 4 * sim::kCacheLineBytes);
    }
    EXPECT_EQ(mm.counters().core(7).cache_misses, misses_before);
  }(m, addr));
  exec.Run();
}

TEST(CoherenceProperty, TrafficOnlyOnUsedPaths) {
  // Traffic between two packages never touches links not on a shortest path.
  sim::Executor exec;
  Machine m(exec, Amd8x4());
  Addr addr = m.mem().AllocLines(0, 1);
  exec.Spawn([](Machine& mm, Addr a) -> Task<> {
    co_await mm.mem().Write(0, a);   // package 0
    co_await mm.mem().Read(4, a);    // package 1 (adjacent)
  }(m, addr));
  exec.Run();
  // The far corner pair (6 <-> 7) is not on any probe path that both starts
  // and ends at packages 0/1... probes broadcast, so instead assert that the
  // direct 0<->1 link carries the data payload.
  EXPECT_GE(m.counters().link_dwords(0, 1), std::uint64_t{Amd8x4().cost.data_dwords});
}

}  // namespace
}  // namespace mk::hw
