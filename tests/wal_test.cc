// Tests for the write-ahead log on the replicated fs: framing, append
// durability across replicas, replica-local replay, truncation on promotion,
// catch-up from arbitrary lag, and bit-identical determinism (the golden gate
// re-runs the store bench at --threads=4; these pin the log layer itself).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fs/ramfs.h"
#include "fs/wal.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"

namespace mk::fs {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

struct Fixture {
  explicit Fixture(hw::PlatformSpec spec = hw::Amd4x4())
      : machine(exec, std::move(spec)),
        drivers(CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers),
        fs(sys) {
    skb.PopulateFromHardware();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
  ReplicatedFs fs;
};

WalRecord Rec(std::uint64_t lsn, std::uint64_t term, std::string payload) {
  WalRecord r;
  r.lsn = lsn;
  r.term = term;
  r.payload = std::move(payload);
  return r;
}

TEST(WalFraming, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> log;
  EncodeWalRecord(Rec(1, 0, "1 INSERT INTO t VALUES (1)"), &log);
  EncodeWalRecord(Rec(2, 3, ""), &log);  // empty payload is a legal frame
  EncodeWalRecord(Rec(3, 3, std::string(300, 'x')), &log);
  std::vector<WalRecord> out;
  ASSERT_TRUE(DecodeWalLog(log, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lsn, 1u);
  EXPECT_EQ(out[0].term, 0u);
  EXPECT_EQ(out[0].payload, "1 INSERT INTO t VALUES (1)");
  EXPECT_EQ(out[1].payload, "");
  EXPECT_EQ(out[2].term, 3u);
  EXPECT_EQ(out[2].payload.size(), 300u);
}

TEST(WalFraming, TornFrameRejectedButPrefixKept) {
  std::vector<std::uint8_t> log;
  EncodeWalRecord(Rec(1, 0, "first"), &log);
  EncodeWalRecord(Rec(2, 0, "second"), &log);
  log.resize(log.size() - 3);  // tear the last frame
  std::vector<WalRecord> out;
  EXPECT_FALSE(DecodeWalLog(log, &out));
  ASSERT_EQ(out.size(), 1u);  // whole records before the tear survive
  EXPECT_EQ(out[0].payload, "first");
}

TEST(Wal, PickPathPinsTheSequencer) {
  Fixture f;
  const std::string path = Wal::PickPath(f.fs, "/wal/shard0", /*sequencer=*/4);
  EXPECT_EQ(path.rfind("/wal/shard0", 0), 0u);
  EXPECT_EQ(f.fs.SequencerOf(path), 4);
}

TEST(Wal, AppendReplaysIdenticallyFromEveryReplica) {
  Fixture f;
  Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/a", 0));
  f.exec.Spawn([](Fixture& fx, Wal& w) -> Task<> {
    EXPECT_EQ(co_await w.Open(1), FsErr::kOk);
    EXPECT_EQ(co_await w.Open(1), FsErr::kOk);  // idempotent
    for (std::uint64_t i = 1; i <= 5; ++i) {
      // Appenders on different cores: the per-path sequencer orders them.
      EXPECT_EQ(co_await w.Append(static_cast<int>(i % 4), Rec(i, 1, "op" + std::to_string(i))),
                FsErr::kOk);
    }
    // Replay is replica-local; every core's replica holds the same log.
    auto from2 = co_await w.ReadAll(2);
    auto from13 = co_await w.ReadAll(13);
    EXPECT_EQ(from2.size(), 5u);
    EXPECT_EQ(from13.size(), 5u);
    for (std::uint64_t i = 0; i < 5 && i < from2.size() && i < from13.size(); ++i) {
      EXPECT_EQ(from2[i].lsn, i + 1);
      EXPECT_EQ(from2[i].payload, "op" + std::to_string(i + 1));
      EXPECT_EQ(from13[i].lsn, from2[i].lsn);
      EXPECT_EQ(from13[i].payload, from2[i].payload);
    }
    fx.sys.Shutdown();
  }(f, wal));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Wal, TruncateAfterDiscardsExactlyTheSuffix) {
  Fixture f;
  Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/b", 3));
  f.exec.Spawn([](Fixture& fx, Wal& w) -> Task<> {
    (void)co_await w.Open(0);
    for (std::uint64_t i = 1; i <= 6; ++i) {
      (void)co_await w.Append(0, Rec(i, 1, "r" + std::to_string(i)));
    }
    // Promotion to applied_lsn=4: records 5 and 6 never committed, drop them.
    EXPECT_EQ(co_await w.TruncateAfter(0, 4), 2);
    auto log = co_await w.ReadAll(7);
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.empty() ? 0u : log.back().lsn, 4u);
    // Nothing beyond the tail: truncation is idempotent.
    EXPECT_EQ(co_await w.TruncateAfter(0, 99), 0);
    // The log keeps accepting appends after a truncation (the new leader's
    // first write reuses the dropped lsns under its own term).
    EXPECT_EQ(co_await w.Append(0, Rec(5, 2, "r5-term2")), FsErr::kOk);
    auto log2 = co_await w.ReadAll(0);
    EXPECT_EQ(log2.size(), 5u);
    EXPECT_EQ(log2.empty() ? 0u : log2.back().term, 2u);
    fx.sys.Shutdown();
  }(f, wal));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Wal, TruncateAlwaysRewritesSoOrphanAppendsAreClobbered) {
  // The promotion-time read is replica-local (no sequencer slot), so a
  // deposed leader's in-flight append can sequence after it. TruncateAfter
  // must therefore always issue the replicated rewrite — serialized behind
  // any such append on the sequencer slot — even when the read saw nothing
  // to discard; skipping it would leave an orphan record whose lsn the new
  // leader is about to reassign.
  Fixture f;
  Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/c", 2));
  f.exec.Spawn([](Fixture& fx, Wal& w) -> Task<> {
    (void)co_await w.Open(0);
    (void)co_await w.Append(0, Rec(1, 1, "committed"));
    const std::uint64_t before = w.fs().mutations();
    EXPECT_EQ(co_await w.TruncateAfter(0, 1), 0);  // nothing to discard...
    EXPECT_EQ(w.fs().mutations(), before + 1);     // ...but the rewrite ran
    auto log = co_await w.ReadAll(5);
    EXPECT_EQ(log.size(), 1u);  // and the content is unchanged
    fx.sys.Shutdown();
  }(f, wal));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Wal, PromotionRewriteClobbersInFlightOrphanAppend) {
  // The deposed-leader scenario end-to-end: an append (lsn 2, old term) is in
  // the sequencer pipeline when the new leader truncates to its applied
  // lsn 1. Whether the truncate's replica-local read sees the orphan or not,
  // the sequenced rewrite lands after the append and the final log holds
  // exactly the committed prefix — never an orphan whose lsn the new leader
  // will reassign.
  Fixture f;
  Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/d", 2));
  f.exec.Spawn([](Fixture& fx, Wal& w) -> Task<> {
    (void)co_await w.Open(0);
    (void)co_await w.Append(0, Rec(1, 1, "committed"));
    bool orphan_done = false;
    fx.exec.Spawn([](Wal& w2, bool& done) -> Task<> {
      (void)co_await w2.Append(1, Rec(2, 1, "orphan"));
      done = true;
    }(w, orphan_done));
    // Let the orphan reach the sequencer pipeline first: only appends already
    // in flight at promotion are the hazard (a dead leader can't start new
    // ones), and the rewrite must serialize behind exactly those.
    co_await fx.exec.Delay(1'000);
    (void)co_await w.TruncateAfter(0, 1);  // promotion races the orphan
    while (!orphan_done) {
      co_await fx.exec.Delay(1'000);
    }
    auto log = co_await w.ReadAll(3);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.empty() ? 0u : log[0].lsn, 1u);
    EXPECT_EQ(log.empty() ? "" : log[0].payload, "committed");
    fx.sys.Shutdown();
  }(f, wal));
  f.exec.Run();
  EXPECT_TRUE(f.fs.ReplicasConsistent());
}

TEST(Wal, CatchUpFromArbitraryLagReachesTheTail) {
  // A respawned follower replays from its applied lsn, however far behind:
  // model lags 0, 3, and 9 against a 10-record log and verify each replay
  // applies exactly the missing suffix in order.
  Fixture f;
  Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/c", 1));
  f.exec.Spawn([](Fixture& fx, Wal& w) -> Task<> {
    (void)co_await w.Open(0);
    for (std::uint64_t i = 1; i <= 10; ++i) {
      (void)co_await w.Append(0, Rec(i, 1, "v" + std::to_string(i)));
    }
    for (std::uint64_t lag_from : {0u, 3u, 9u}) {
      std::uint64_t applied = lag_from;
      auto log = co_await w.ReadAll(5);
      for (const WalRecord& rec : log) {
        if (rec.lsn == applied + 1) {
          applied = rec.lsn;
        }
      }
      EXPECT_EQ(applied, 10u) << "catch-up from lsn " << lag_from;
    }
    fx.sys.Shutdown();
  }(f, wal));
  f.exec.Run();
}

TEST(Wal, SameSequenceReplaysBitIdentically) {
  // Two fresh simulations running the identical append/truncate/replay
  // sequence must agree on every simulated cycle and every logged byte —
  // the determinism the store's golden transcript (and its --threads=4 leg
  // in check_golden.sh) builds on.
  auto run = [](Cycles* final_now, std::vector<WalRecord>* log_out) {
    Fixture f;
    Wal wal(f.fs, Wal::PickPath(f.fs, "/wal/d", 2));
    f.exec.Spawn([](Fixture& fx, Wal& w, std::vector<WalRecord>* out) -> Task<> {
      (void)co_await w.Open(3);
      for (std::uint64_t i = 1; i <= 8; ++i) {
        (void)co_await w.Append(static_cast<int>(3 * i % 16), Rec(i, 1, "p" + std::to_string(i)));
      }
      (void)co_await w.TruncateAfter(3, 6);
      *out = co_await w.ReadAll(11);
      fx.sys.Shutdown();
    }(f, wal, log_out));
    f.exec.Run();
    *final_now = f.exec.now();
  };
  Cycles now_a = 0;
  Cycles now_b = 0;
  std::vector<WalRecord> log_a;
  std::vector<WalRecord> log_b;
  run(&now_a, &log_a);
  run(&now_b, &log_b);
  EXPECT_EQ(now_a, now_b);
  ASSERT_EQ(log_a.size(), log_b.size());
  ASSERT_EQ(log_a.size(), 6u);
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].lsn, log_b[i].lsn);
    EXPECT_EQ(log_a[i].term, log_b[i].term);
    EXPECT_EQ(log_a[i].payload, log_b[i].payload);
  }
}

}  // namespace
}  // namespace mk::fs
