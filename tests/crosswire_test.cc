// CrossWire under load: delivery at exactly the lookahead bound, FIFO order
// per direction, full-duplex interleaving, host-thread invariance, and the
// cross-machine wire fault sites (drop / latency spike) with per-spec
// activation accounting.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/crosswire.h"
#include "net/nic.h"
#include "sim/parallel.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk {
namespace {

using sim::Cycles;
using sim::Task;

constexpr int kCore = 0;
constexpr Cycles kLatency = 10'000;

net::SimNic::Config WireNicConfig() {
  net::SimNic::Config cfg;
  // 100 Gb/s on a 2.8 GHz machine truncates to 0 cycles/byte, so pacing adds
  // nothing and arrival times are pure wire latency.
  cfg.gbps = 100.0;
  cfg.irq_core = kCore;
  return cfg;
}

// One machine per engine domain with a single wire-facing NIC.
struct WireHost {
  explicit WireHost(sim::Executor& exec)
      : machine(exec, hw::Amd2x2()), nic(machine, WireNicConfig()) {}

  hw::Machine machine;
  net::SimNic nic;
  std::vector<Cycles> arrivals;    // exec.now() at each frame pop
  std::vector<std::uint8_t> tags;  // first payload byte of each frame
};

// Sends `frames` equally spaced 64-byte frames tagged with their index,
// recording exec.now() as each TX push completes.
Task<> Sender(WireHost& w, int frames, Cycles start_delay, Cycles gap,
              std::vector<Cycles>* sends = nullptr) {
  co_await w.machine.exec().Delay(start_delay);
  for (int i = 0; i < frames; ++i) {
    net::Packet p(64, static_cast<std::uint8_t>(i + 1));
    (void)co_await w.nic.DriverTxPush(kCore, std::move(p));
    if (sends != nullptr) {
      sends->push_back(w.machine.exec().now());
    }
    if (gap > 0) {
      co_await w.machine.exec().Delay(gap);
    }
  }
}

// Polls at 1-cycle granularity so each pop timestamp is the exact cycle the
// frame became visible (RxReady) in this domain.
Task<> Receiver(WireHost& w, int expect) {
  while (static_cast<int>(w.arrivals.size()) < expect) {
    if (w.nic.RxReady()) {
      w.arrivals.push_back(w.machine.exec().now());
      auto frame = co_await w.nic.DriverRxPop(kCore);
      EXPECT_TRUE(frame.has_value());
      if (frame) {
        w.tags.push_back((*frame)[0]);
      }
      continue;
    }
    co_await w.machine.exec().Delay(1);
  }
}

struct TwoMachineWorld {
  explicit TwoMachineWorld(int threads) {
    sim::ParallelEngine::Options opts;
    opts.domains = 2;
    opts.threads = threads;
    engine = std::make_unique<sim::ParallelEngine>(opts);
    a = std::make_unique<WireHost>(engine->domain(0));
    b = std::make_unique<WireHost>(engine->domain(1));
    wire = std::make_unique<net::CrossWire>(*engine, 0, a->nic, 1, b->nic,
                                            kLatency);
  }

  std::unique_ptr<sim::ParallelEngine> engine;
  std::unique_ptr<WireHost> a;
  std::unique_ptr<WireHost> b;
  std::unique_ptr<net::CrossWire> wire;
};

TEST(CrossWireTest, BackToBackFramesFifoAtLookaheadBound) {
  TwoMachineWorld w(1);
  const int kFrames = 16;
  const Cycles kGap = 2'000;
  std::vector<Cycles> sends;
  w.wire->Start();
  w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, kGap, &sends));
  w.engine->domain(1).Spawn(Receiver(*w.b, kFrames));
  w.engine->Run();

  ASSERT_EQ(static_cast<int>(w.b->arrivals.size()), kFrames);
  ASSERT_EQ(static_cast<int>(sends.size()), kFrames);
  for (int i = 0; i < kFrames; ++i) {
    // FIFO: tag i+1 is the i-th arrival.
    EXPECT_EQ(w.b->tags[static_cast<std::size_t>(i)], i + 1);
    // Conservative-lookahead contract: never visible before send + latency.
    EXPECT_GE(w.b->arrivals[static_cast<std::size_t>(i)],
              sends[static_cast<std::size_t>(i)] + kLatency)
        << "frame " << i;
  }
  // Exactly at the bound: with pacing truncated to zero the link adds a
  // fixed delay and nothing queues, so the arrival train reproduces the
  // departure spacing cycle-for-cycle.
  for (int i = 1; i < kFrames; ++i) {
    EXPECT_EQ(w.b->arrivals[static_cast<std::size_t>(i)] -
                  w.b->arrivals[static_cast<std::size_t>(i - 1)],
              sends[static_cast<std::size_t>(i)] -
                  sends[static_cast<std::size_t>(i - 1)])
        << "frame " << i;
  }
  EXPECT_EQ(w.wire->forwarded_ab(), static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(w.wire->dropped_ab(), 0u);
}

TEST(CrossWireTest, FullDuplexInterleavingKeepsBothDirectionsFifo) {
  TwoMachineWorld w(1);
  const int kFrames = 32;
  w.wire->Start();
  // Offset phases so pops of the two pumps interleave in simulated time.
  w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, 700));
  w.engine->domain(1).Spawn(Sender(*w.b, kFrames, 1'350, 900));
  w.engine->domain(0).Spawn(Receiver(*w.a, kFrames));
  w.engine->domain(1).Spawn(Receiver(*w.b, kFrames));
  w.engine->Run();

  ASSERT_EQ(static_cast<int>(w.a->arrivals.size()), kFrames);
  ASSERT_EQ(static_cast<int>(w.b->arrivals.size()), kFrames);
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(w.a->tags[static_cast<std::size_t>(i)], i + 1);
    EXPECT_EQ(w.b->tags[static_cast<std::size_t>(i)], i + 1);
  }
  EXPECT_EQ(w.wire->forwarded_ab(), static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(w.wire->forwarded_ba(), static_cast<std::uint64_t>(kFrames));
}

// The full-duplex workload replayed at 1/2/4 host threads must produce the
// same arrival schedule bit-for-bit.
TEST(CrossWireTest, ReplayIsHostThreadInvariant) {
  const int kFrames = 32;
  std::vector<std::vector<Cycles>> arr_a;
  std::vector<std::vector<Cycles>> arr_b;
  std::vector<Cycles> max_nows;
  for (int threads : {1, 2, 4}) {
    TwoMachineWorld w(threads);
    w.wire->Start();
    w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, 700));
    w.engine->domain(1).Spawn(Sender(*w.b, kFrames, 1'350, 900));
    w.engine->domain(0).Spawn(Receiver(*w.a, kFrames));
    w.engine->domain(1).Spawn(Receiver(*w.b, kFrames));
    w.engine->Run();
    arr_a.push_back(w.a->arrivals);
    arr_b.push_back(w.b->arrivals);
    max_nows.push_back(w.engine->max_now());
  }
  EXPECT_EQ(arr_a[0], arr_a[1]);
  EXPECT_EQ(arr_a[0], arr_a[2]);
  EXPECT_EQ(arr_b[0], arr_b[1]);
  EXPECT_EQ(arr_b[0], arr_b[2]);
  EXPECT_EQ(max_nows[0], max_nows[1]);
  EXPECT_EQ(max_nows[0], max_nows[2]);
}

TEST(CrossWireTest, WireDropFaultSiteConsumesAndCounts) {
  TwoMachineWorld w(1);
  const int kFrames = 12;
  fault::FaultPlan plan;
  plan.DropWireFrames(/*src_machine=*/0, /*dst_machine=*/1, /*at=*/0,
                      /*count=*/3);
  fault::Injector inj(plan);
  inj.Install();

  w.wire->Start();
  w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, 500));
  w.engine->domain(1).Spawn(Receiver(*w.b, kFrames - 3));
  w.engine->Run();
  inj.Uninstall();

  EXPECT_EQ(w.wire->dropped_ab(), 3u);
  EXPECT_EQ(w.wire->forwarded_ab(), static_cast<std::uint64_t>(kFrames - 3));
  ASSERT_EQ(static_cast<int>(w.b->tags.size()), kFrames - 3);
  // The first three frames were eaten; FIFO resumes with tag 4.
  EXPECT_EQ(w.b->tags[0], 4);
  EXPECT_EQ(inj.injected(fault::FaultKind::kWireDrop), 3u);
  ASSERT_EQ(inj.num_specs(), 1u);
  EXPECT_EQ(inj.activations(0), 3u);
}

TEST(CrossWireTest, WireDelaySpikeWidensTheBoundAndCounts) {
  TwoMachineWorld w(1);
  const int kFrames = 10;
  const Cycles kExtra = 4'000;
  fault::FaultPlan plan;
  plan.WireDelay(/*src_machine=*/0, /*dst_machine=*/1, kExtra, /*at=*/0);
  fault::Injector inj(plan);
  inj.Install();

  std::vector<Cycles> sends;
  w.wire->Start();
  w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, 2'000, &sends));
  w.engine->domain(1).Spawn(Receiver(*w.b, kFrames));
  w.engine->Run();
  inj.Uninstall();

  EXPECT_EQ(w.wire->delayed_ab(), static_cast<std::uint64_t>(kFrames));
  ASSERT_EQ(static_cast<int>(w.b->arrivals.size()), kFrames);
  for (int i = 0; i < kFrames; ++i) {
    // A spike only ever widens the wire's conservative bound.
    EXPECT_GE(w.b->arrivals[static_cast<std::size_t>(i)],
              sends[static_cast<std::size_t>(i)] + kLatency + kExtra);
  }
  ASSERT_EQ(inj.num_specs(), 1u);
  EXPECT_GT(inj.activations(0), 0u);
}

// A spec naming the reverse direction must never fire on this wire: the
// (src,dst) key is directional, and its activation count stays zero.
TEST(CrossWireTest, WrongPairSpecNeverActivates) {
  TwoMachineWorld w(1);
  const int kFrames = 8;
  fault::FaultPlan plan;
  plan.DropWireFrames(/*src_machine=*/1, /*dst_machine=*/0, /*at=*/0,
                      /*count=*/100);
  fault::Injector inj(plan);
  inj.Install();

  w.wire->Start();
  w.engine->domain(0).Spawn(Sender(*w.a, kFrames, 1'000, 500));
  w.engine->domain(1).Spawn(Receiver(*w.b, kFrames));
  w.engine->Run();
  inj.Uninstall();

  EXPECT_EQ(w.wire->dropped_ab(), 0u);
  EXPECT_EQ(w.wire->forwarded_ab(), static_cast<std::uint64_t>(kFrames));
  ASSERT_EQ(inj.num_specs(), 1u);
  EXPECT_EQ(inj.activations(0), 0u);
}

}  // namespace
}  // namespace mk
