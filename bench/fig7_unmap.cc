// Figure 7: end-to-end unmap (permission change) latency on the 8x4-core AMD
// system - Barrelfish's message-based shootdown vs the IPI-based paths of
// Linux (mprotect) and Windows (VirtualProtect).
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/ipi_shootdown.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::OpFlags;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

constexpr std::uint64_t kVaddr = 0x400000;

void SeedTlbs(hw::Machine& machine, int ncores) {
  for (int c = 0; c < ncores; ++c) {
    machine.tlb(c).Insert(kVaddr, hw::TlbEntry{0x1000, true});
  }
}

// The full Barrelfish path: the application LRPCs its local monitor, the
// monitor runs the one-phase invalidate collective over the NUMA-aware
// multicast tree (with per-message marshaling/demux and TLB invalidations on
// every core), replies to the application over LRPC, and the user-level
// threads package redispatches the caller (the unoptimized message dispatch
// loop the paper calls out).
Task<> BarrelfishDriver(monitor::MonitorSystem& sys, int ncores, int iters,
                        sim::RunningStat& stat) {
  hw::Machine& m = sys.machine();
  CpuDriver& drv = sys.driver(0);
  auto noop = drv.RegisterEndpoint([](const kernel::LrpcMsg&) -> Task<> { co_return; });
  for (int i = 0; i < iters; ++i) {
    SeedTlbs(m, ncores);
    Cycles t0 = m.exec().now();
    co_await drv.LrpcCall(noop, kernel::LrpcMsg{});  // app -> monitor
    (void)co_await sys.on(0).GlobalInvalidate(kVaddr, 1, Protocol::kNumaMulticast,
                                              OpFlags{}, static_cast<std::uint16_t>(ncores));
    co_await drv.LrpcCall(noop, kernel::LrpcMsg{});  // monitor -> app reply
    co_await m.Compute(0, m.cost().unmap_user_path);
    if (i > 0) {
      stat.Add(static_cast<double>(m.exec().now() - t0));
    }
    co_await m.exec().Delay(20000);
  }
  sys.Shutdown();
}

double MeasureBarrelfish(int ncores) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();
  monitor::MonitorSystem sys(machine, skb, drivers);
  sys.Boot();
  sim::RunningStat stat;
  exec.Spawn(BarrelfishDriver(sys, ncores, 8, stat));
  exec.Run();
  return stat.mean();
}

Task<> IpiDriver(hw::Machine& m, baseline::IpiShootdown& sd, int ncores, int iters,
                 sim::RunningStat& stat) {
  for (int i = 0; i < iters; ++i) {
    SeedTlbs(m, ncores);
    Cycles latency = co_await sd.ChangeMapping(0, ncores, kVaddr, 1);
    if (i > 0) {
      stat.Add(static_cast<double>(latency));
    }
    co_await m.exec().Delay(20000);
  }
}

double MeasureIpi(baseline::IpiShootdown::Flavor flavor, int ncores) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  baseline::IpiShootdown sd(machine, flavor);
  sim::RunningStat stat;
  exec.Spawn(IpiDriver(machine, sd, ncores, 8, stat));
  exec.Run();
  return stat.mean();
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Figure 7: end-to-end unmap latency (8x4-core AMD, cycles)");
  bench::SeriesTable table("cores");
  table.AddSeries("Windows");
  table.AddSeries("Linux");
  table.AddSeries("Barrelfish");
  for (int cores = 2; cores <= 32; cores += 2) {
    table.AddRow(cores,
                 {MeasureIpi(baseline::IpiShootdown::Flavor::kWindows, cores),
                  MeasureIpi(baseline::IpiShootdown::Flavor::kLinux, cores),
                  MeasureBarrelfish(cores)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: both IPI baselines grow steeply (serial IPIs; Windows steepest,\n"
      "~55-60k at 32 cores; Linux ~35-40k). Barrelfish starts higher (LRPC + monitor\n"
      "marshaling + threads-package dispatch) but scales flatter on the multicast\n"
      "tree, overtaking Linux and Windows by the mid-range core counts.\n");
  return 0;
}
