// Section 5.4 scaled out: the paper argues a multikernel scales network
// serving by giving each core its own stack instance instead of contending on
// shared state ("our current network stack runs a separate instance of lwIP
// per application"). sec54_webserver reproduces the single-point result; this
// bench produces the *curve*: an 82576-class multi-queue NIC steers inbound
// flows by RSS to N RX queues, each drained by its own serving core running a
// private NetStack + HttpServer shard, and an open-loop load generator sweeps
// the shard count on the 4x4 and 8x4 AMD topologies. Offered load is scaled
// per shard, so a system that shards cleanly sustains N times the load at N
// cores — requests/sec grows linearly while p50/p99 stay bounded. A sharded
// read-only database mode (one replica per shard, queried over a private URPC
// channel) shows the same curve for the web+SQL mix that the single-DB
// configuration cannot scale past one core.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/dbshard.h"
#include "apps/httpd.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 77);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 77};

// Per-frame driver work on the serving core (same figure as the webserver
// bench's dedicated driver core; here each shard drives its own queue).
constexpr Cycles kDriverFrameCost = 1400;

// Open-loop discipline: a request not finished by this deadline is shed and
// counted, never waited on — offered load stays independent of service rate.
constexpr Cycles kRequestDeadline = 5'000'000;

constexpr int kDbItems = 30000;

// The external client cluster: its stack costs nothing on the simulated
// machine (it stands in for httperf boxes on the other end of the wire).
net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

struct LoadStats {
  explicit LoadStats(sim::Executor& exec) : all_done(exec) {}
  int launched = 0;
  int completed = 0;
  int shed = 0;  // connect timeouts + response deadline misses
  int outstanding = 0;
  bool launching_done = false;
  bool finished = false;
  std::vector<Cycles> latencies;
  sim::Event all_done;
};

// One HTTP request, open loop: bounded connect, bounded response wait.
Task<> OneRequest(sim::Executor& exec, net::NetStack& client, std::string target,
                  LoadStats& st) {
  const Cycles start = exec.now();
  const Cycles deadline = start + kRequestDeadline;
  ++st.outstanding;
  net::NetStack::TcpConn* conn =
      co_await client.TcpConnect(kServerIp, 80, kRequestDeadline);
  bool ok = false;
  if (conn != nullptr) {
    co_await client.TcpSend(*conn, "GET " + target + " HTTP/1.0\r\n\r\n");
    while (true) {
      conn->rx.clear();  // consume whatever response bytes arrived
      if (conn->peer_closed) {
        ok = true;
        break;
      }
      Cycles now = exec.now();
      if (now >= deadline) {
        break;
      }
      co_await conn->readable.WaitTimeout(deadline - now);
    }
    co_await client.TcpClose(*conn);
  }
  if (ok) {
    ++st.completed;
    st.latencies.push_back(exec.now() - start);
  } else {
    ++st.shed;
  }
  --st.outstanding;
  if (st.launching_done && st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

// Fires `total` requests at a fixed global interval; RSS spreads the flows
// (one ephemeral source port each) across the shards' queues.
Task<> Generator(sim::Executor& exec, net::NetStack& client, int total,
                 Cycles interval, bool use_db, LoadStats& st, std::uint64_t seed) {
  sim::Rng prng(seed);
  for (int i = 0; i < total; ++i) {
    std::string target = "/index.html";
    if (use_db) {
      std::string sql = apps::TpcwQuery(static_cast<int>(prng.Below(kDbItems)));
      for (char& ch : sql) {
        if (ch == ' ') {
          ch = '+';  // URL-encode spaces
        }
      }
      target = "/query?sql=" + sql;
    }
    ++st.launched;
    exec.Spawn(OneRequest(exec, client, std::move(target), st));
    co_await exec.Delay(interval);
  }
  st.launching_done = true;
  if (st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

// Per-shard e1000-style driver loop: poll the shard's RX queue while busy,
// re-enable its interrupt and block when idle (trap charged on a real wake).
Task<> ShardDriver(hw::Machine& m, net::SimNic& nic, net::NetStack& stack,
                   int queue, int core, const bool* stop) {
  while (!*stop) {
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await m.Compute(core, kDriverFrameCost);
        co_await stack.Input(std::move(*frame));
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      if (co_await nic.rx_irq(queue).WaitTimeout(20000) && !*stop) {
        co_await m.Trap(core);
      }
    }
  }
}

// Drains transmitted frames off the wire into the client cluster's stack.
Task<> WireSink(net::SimNic& nic, net::NetStack& client, const bool* stop) {
  while (!*stop) {
    Packet p;
    while (nic.WirePop(&p)) {
      co_await client.Input(std::move(p));
    }
    if (!*stop) {
      co_await nic.wire_out_ready().Wait();
    }
  }
}

Task<> Supervisor(net::SimNic& nic, LoadStats& st, bool* stop,
                  apps::DbReplicaCluster* cluster) {
  while (!st.finished) {
    co_await st.all_done.Wait();
  }
  *stop = true;
  nic.wire_out_ready().Signal();  // unblock the sink
  if (cluster != nullptr) {
    co_await cluster->Shutdown();
  }
}

struct PointResult {
  double offered_per_sec = 0;
  double achieved_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  int shed = 0;
  std::vector<std::uint64_t> rx_frames;  // per queue
  std::vector<std::uint64_t> rx_drops;   // per queue
};

PointResult RunPoint(const hw::PlatformSpec& spec, int shards, bool use_db,
                     int requests_per_shard, Cycles interval_per_shard) {
  sim::Executor exec;
  hw::Machine m(exec, spec);
  const int client_core = spec.num_cores() - 1;

  // Shard s serves on core 4s; its DB replica (if any) on 4s+1, same package.
  std::vector<apps::ShardPlacement> placements;
  for (int s = 0; s < shards; ++s) {
    placements.push_back({4 * s, 4 * s + 1});
  }

  net::SimNic::Config cfg;
  cfg.rx_descs = 512;
  cfg.tx_descs = 512;
  cfg.gbps = 10.0;
  cfg.queues = shards;
  cfg.irq_latency = spec.cost.ipi_wire;
  for (const auto& p : placements) {
    cfg.irq_cores.push_back(p.web_core);
  }
  net::SimNic nic(m, cfg);

  net::NetStack client(m, client_core, kClientIp, kClientMac, FreeCosts());
  client.AddArp(kServerIp, kServerMac);
  client.SetOutput(
      [&nic](Packet p) -> Task<> { co_await nic.InjectFromWire(std::move(p)); });

  apps::Database source;
  std::unique_ptr<apps::DbReplicaCluster> cluster;
  if (use_db) {
    apps::PopulateTpcw(&source, kDbItems);
    cluster = std::make_unique<apps::DbReplicaCluster>(m, source, placements);
  }

  bool stop = false;
  std::vector<std::unique_ptr<net::NetStack>> stacks;
  std::vector<std::unique_ptr<apps::HttpServer>> servers;
  for (int s = 0; s < shards; ++s) {
    const int core = placements[static_cast<std::size_t>(s)].web_core;
    auto stack = std::make_unique<net::NetStack>(m, core, kServerIp, kServerMac);
    stack->AddArp(kClientIp, kClientMac);
    stack->SetOutput([&m, &nic, core, s](Packet p) -> Task<> {
      co_await m.Compute(core, kDriverFrameCost);
      co_await nic.DriverTxPush(core, std::move(p), s);
    });
    apps::HttpServer::DbQueryFn query_fn;
    if (use_db) {
      apps::DbReplicaCluster* cl = cluster.get();
      query_fn = [cl, s](std::string sql) -> Task<std::string> {
        co_return co_await cl->Query(s, std::move(sql));
      };
    }
    servers.push_back(
        std::make_unique<apps::HttpServer>(m, *stack, 80, std::move(query_fn)));
    exec.Spawn(servers.back()->Serve());
    exec.Spawn(ShardDriver(m, nic, *stack, s, core, &stop));
    if (use_db) {
      exec.Spawn(cluster->Serve(s));
    }
    stacks.push_back(std::move(stack));
  }
  exec.Spawn(WireSink(nic, client, &stop));

  LoadStats st(exec);
  const int total = requests_per_shard * shards;
  const Cycles interval = interval_per_shard / static_cast<Cycles>(shards);
  exec.Spawn(Generator(exec, client, total, interval, use_db, st, /*seed=*/42));
  exec.Spawn(Supervisor(nic, st, &stop, cluster.get()));
  exec.Run();

  PointResult out;
  const double window_sec = static_cast<double>(total) *
                            static_cast<double>(interval) /
                            (spec.clock_ghz * 1e9);
  out.offered_per_sec = total / window_sec;
  out.achieved_per_sec = st.completed / window_sec;
  out.shed = st.shed;
  std::sort(st.latencies.begin(), st.latencies.end());
  auto pct = [&](double p) -> double {
    if (st.latencies.empty()) {
      return 0;
    }
    std::size_t i = static_cast<std::size_t>(p * (st.latencies.size() - 1));
    return static_cast<double>(st.latencies[i]) / (spec.clock_ghz * 1e3);  // us
  };
  out.p50_us = pct(0.50);
  out.p99_us = pct(0.99);
  for (int q = 0; q < nic.num_queues(); ++q) {
    out.rx_frames.push_back(nic.queue_stats(q).rx_frames);
    out.rx_drops.push_back(nic.queue_stats(q).rx_drops());
  }
  return out;
}

void RunSweep(const char* title, const hw::PlatformSpec& spec, int max_shards,
              bool use_db, int requests_per_shard, Cycles interval_per_shard) {
  std::printf("\n-- %s --\n", title);
  std::printf("%8s %12s %12s %10s %10s %6s\n", "shards", "offered/s", "achieved/s",
              "p50 us", "p99 us", "shed");
  std::vector<PointResult> points;
  for (int n = 1; n <= max_shards; ++n) {
    points.push_back(RunPoint(spec, n, use_db, requests_per_shard, interval_per_shard));
    const PointResult& r = points.back();
    std::printf("%8d %12.0f %12.0f %10.1f %10.1f %6d\n", n, r.offered_per_sec,
                r.achieved_per_sec, r.p50_us, r.p99_us, r.shed);
  }
  std::printf("per-queue RX frames (drops):\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("  shards=%zu:", i + 1);
    for (std::size_t q = 0; q < points[i].rx_frames.size(); ++q) {
      std::printf(" q%zu=%llu(%llu)", q,
                  static_cast<unsigned long long>(points[i].rx_frames[q]),
                  static_cast<unsigned long long>(points[i].rx_drops[q]));
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Crosscheck: the 1-shard configuration must reproduce sec54_webserver's
// static-page number. This is that bench's static Barrelfish scenario,
// reproduced exactly (same 2x2 machine, placement, costs, and closed-loop
// clients), so the two binaries print the same figure.

namespace crosscheck {

constexpr int kServicesCore = 0;
constexpr int kDbCore = 1;
constexpr int kDriverCore = 2;
constexpr int kServerCore = 3;

struct DbService {
  DbService(hw::Machine& m, int items)
      : queries(m, kServerCore, kDbCore),
        replies(m, kDbCore, kServerCore, net::PacketChannel::Options{}) {
    apps::PopulateTpcw(&db, items);
  }
  apps::Database db;
  urpc::Channel queries;
  net::PacketChannel replies;
};

double RunStaticScenario() {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());

  net::NetStack server(m, kServerCore, kServerIp, kServerMac, net::StackCosts{});
  net::NetStack client(m, kServicesCore, kClientIp, kClientMac, FreeCosts());
  server.AddArp(kClientIp, kClientMac);
  client.AddArp(kServerIp, kServerMac);

  const Cycles driver_cost = 1400;
  server.SetOutput([&m, &client, driver_cost](Packet p) -> Task<> {
    co_await m.Compute(kDriverCore, driver_cost);
    co_await client.Input(std::move(p));
  });
  client.SetOutput([&m, &server, driver_cost](Packet p) -> Task<> {
    co_await m.Compute(kDriverCore, driver_cost);
    co_await server.Input(std::move(p));
  });

  DbService db_service(m, kDbItems);
  sim::Semaphore db_rpc_slot(exec, 1);

  apps::HttpServer http(
      m, server, 80,
      [&db_service, &db_rpc_slot](std::string sql) -> Task<std::string> {
        co_await db_rpc_slot.Acquire();
        for (std::size_t off = 0; off < sql.size();
             off += urpc::Message::kPayloadBytes) {
          urpc::Message msg;
          msg.tag = off + urpc::Message::kPayloadBytes >= sql.size() ? 1 : 2;
          msg.len = static_cast<std::uint32_t>(
              std::min(urpc::Message::kPayloadBytes, sql.size() - off));
          std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
          co_await db_service.queries.Send(msg);
        }
        Packet reply = co_await db_service.replies.Recv();
        db_rpc_slot.Release();
        co_return std::string(reply.begin(), reply.end());
      },
      60000);

  exec.Spawn(http.Serve());

  const int kClients = 8;
  const int kRequestsPerClient = 25;
  int done = 0;
  for (int c = 0; c < kClients; ++c) {
    exec.Spawn([](net::NetStack& cl, int requests, int* finished,
                  std::uint64_t seed) -> Task<> {
      sim::Rng prng(seed);
      (void)prng;
      for (int r = 0; r < requests; ++r) {
        net::NetStack::TcpConn* conn = co_await cl.TcpConnect(kServerIp, 80);
        co_await cl.TcpSend(*conn, "GET /index.html HTTP/1.0\r\n\r\n");
        while (!conn->peer_closed) {
          auto chunk = co_await conn->Read();
          if (chunk.empty()) {
            break;
          }
        }
        co_await cl.TcpClose(*conn);
      }
      ++*finished;
    }(client, kRequestsPerClient, &done, 1000 + c));
  }
  Cycles elapsed = exec.Run();
  double seconds = static_cast<double>(elapsed) / (m.spec().clock_ghz * 1e9);
  return kClients * kRequestsPerClient / seconds;
}

}  // namespace crosscheck

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  bench::PrintHeader(
      "Section 5.4 scale-out: multi-queue NIC + per-core NetStack/httpd shards");

  // Static 4.1KB page, per-shard offered load fixed: the curve is linear in
  // shards iff nothing shared saturates (the NIC wire at 10 Gb/s does not).
  RunSweep(quick ? "static page, 4x4 AMD (quick)" : "static page, 4x4 AMD",
           hw::Amd4x4(), quick ? 2 : 4, /*use_db=*/false,
           /*requests_per_shard=*/quick ? 150 : 300,
           /*interval_per_shard=*/120000);
  if (!quick) {
    RunSweep("static page, 8x4 AMD", hw::Amd8x4(), 8, /*use_db=*/false,
             /*requests_per_shard=*/300, /*interval_per_shard=*/120000);
    // Web + SQL with one read-only DB replica per shard: the single-DB
    // bottleneck (sec54_webserver: ~3400/s at one core) becomes a per-shard
    // budget, so the sweep scales where the shared-DB configuration cannot.
    RunSweep("web + SQL, sharded read-only DB, 4x4 AMD", hw::Amd4x4(), 4,
             /*use_db=*/true, /*requests_per_shard=*/32,
             /*interval_per_shard=*/1'250'000);
  }

  double xcheck = crosscheck::RunStaticScenario();
  std::printf("\ncrosscheck: 1-shard static config on the 2x2 webserver placement: "
              "%.0f req/s\n(must match sec54_webserver's \"Barrelfish static 4.1KB "
              "page\" figure)\n", xcheck);
  std::printf(
      "\nShape: requests/sec grows linearly with serving cores and p50/p99 stay\n"
      "well under the shed deadline (per-shard offered load is constant), because\n"
      "RSS gives every shard its own RX queue and every shard owns its stack,\n"
      "server, and DB replica outright — the multikernel scaling argument applied\n"
      "to the full serving path.\n");
  return 0;
}
