// Scalable synchronization: barrier cost and lock handoff vs. core count
// (1..16 on the 4x4-core AMD system), centralized primitives against the
// src/proc/sync library, plus the Metis-style MapReduce jobs riding both.
//
// Three sweeps, every number in simulated cycles or coherence events (no
// wall clock — the output is a golden transcript):
//
//   * barrier — N cores repeatedly meet at a proc::Barrier. The centralized
//     flavor serializes N read-modify-writes of one counter line and then a
//     N-way invalidation storm on the release line (cost ~ N); the tree
//     flavor plays a ceil(log2 N)-round tournament whose per-round flags are
//     homed on the spinning core's package (cost ~ log N, cross-package
//     traffic plateaus at the tree edges that span packages).
//   * locks — N cores hammer acquire/compute/release. The MCS queue lock
//     hands off with O(1) line transfers between a fixed pair of cores; the
//     ticket lock (same FIFO order — the controlled baseline) pays an
//     O(waiters) refetch storm per handoff; the centralized test-and-set
//     mutex is the existing proc::Mutex fast path.
//   * mapreduce — word count and histogram (apps/mapreduce.h) at 1..16
//     cores under both flavors; checksums must agree everywhere (the
//     workload's answer cannot depend on who synchronizes it).
//
// Shape gates (exit non-zero on violation): the tree barrier must beat the
// centralized barrier at 16 cores in cycles and cross-package dwords and
// must grow sub-linearly where the centralized one grows linearly; the MCS
// lock must beat the ticket lock at 16 cores in both cycles and transfers
// per handoff; every MapReduce checksum must match across flavors and core
// counts. Exact values are pinned by bench/golden/sync_scaling.txt.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/mapreduce.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "proc/sync/sync.h"
#include "proc/threads.h"
#include "sim/executor.h"

namespace mk {
namespace {

using apps::WorkloadParams;
using apps::WorkloadResult;
using proc::OmpRuntime;
using proc::SyncFlavor;
using sim::Cycles;
using sim::Task;

const std::vector<int> kCoreCounts = {1, 2, 4, 8, 12, 16};

struct Point {
  int cores = 0;
  double cycles = 0;     // per episode / per acquire-release
  double transfers = 0;  // c2c + dram line fills, same denominator
  double xpkg_dwords = 0;  // interconnect dwords crossing packages
};

struct Counts {
  std::uint64_t transfers = 0;
  std::uint64_t xpkg_dwords = 0;
};

Counts ReadCounts(hw::Machine& machine) {
  Counts c;
  const hw::CoreCounters total = machine.counters().Total();
  c.transfers = total.c2c_transfers + total.dram_fetches;
  const int packages = machine.topo().num_packages();
  for (int p = 0; p < packages; ++p) {
    for (int q = 0; q < packages; ++q) {
      if (p != q) {
        c.xpkg_dwords += machine.counters().link_dwords(p, q);
      }
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Barrier sweep.

Task<> BarrierWorker(proc::Barrier& bar, int core, int episodes) {
  for (int e = 0; e < episodes; ++e) {
    co_await bar.Arrive(core);
  }
}

Point MeasureBarrier(const hw::PlatformSpec& spec, SyncFlavor flavor, int n,
                     int episodes) {
  sim::Executor exec;
  hw::Machine machine(exec, spec);
  std::vector<int> cores;
  for (int i = 0; i < n; ++i) {
    cores.push_back(i);
  }
  proc::Barrier bar(machine, n, flavor, 0, cores);
  for (int c : cores) {
    exec.Spawn(BarrierWorker(bar, c, episodes));
  }
  exec.Run();
  const Counts counts = ReadCounts(machine);
  Point p;
  p.cores = n;
  p.cycles = static_cast<double>(exec.now()) / episodes;
  p.transfers = static_cast<double>(counts.transfers) / episodes;
  p.xpkg_dwords = static_cast<double>(counts.xpkg_dwords) / episodes;
  return p;
}

Task<> TreeWorker(proc::sync::TreeBarrier& bar, int party, int episodes) {
  for (int e = 0; e < episodes; ++e) {
    co_await bar.Arrive(party);
  }
}

// The raw tree with the homing rule on (force_home = -1) or every flag line
// forced onto one node — the ablation isolating the rule's cost.
Point MeasureTreeHoming(const hw::PlatformSpec& spec, int n, int episodes,
                        int force_home) {
  sim::Executor exec;
  hw::Machine machine(exec, spec);
  proc::sync::TreeBarrier bar(machine, n, {}, force_home);
  for (int party = 0; party < n; ++party) {
    exec.Spawn(TreeWorker(bar, party, episodes));
  }
  exec.Run();
  const Counts counts = ReadCounts(machine);
  Point p;
  p.cores = n;
  p.cycles = static_cast<double>(exec.now()) / episodes;
  p.transfers = static_cast<double>(counts.transfers) / episodes;
  p.xpkg_dwords = static_cast<double>(counts.xpkg_dwords) / episodes;
  return p;
}

// ---------------------------------------------------------------------------
// Lock sweep. Critical section of 60 cycles, 140 cycles of private work
// between attempts: enough think time that the queue drains and refills,
// keeping every handoff contended without degenerating to a convoy.

constexpr Cycles kCriticalSection = 60;
constexpr Cycles kThinkTime = 140;

Task<> MutexWorker(hw::Machine& m, proc::Mutex& mu, int core, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await mu.Lock(core);
    co_await m.Compute(core, kCriticalSection);
    co_await mu.Unlock(core);
    co_await m.Compute(core, kThinkTime);
  }
}

Task<> TicketWorker(hw::Machine& m, proc::sync::TicketLock& lk, int core, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await lk.Acquire(core);
    co_await m.Compute(core, kCriticalSection);
    co_await lk.Release(core);
    co_await m.Compute(core, kThinkTime);
  }
}

enum class LockImpl { kMcs, kTicket, kTas };

Point MeasureLock(LockImpl impl, int n, int iters) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  proc::Mutex mutex(machine, impl == LockImpl::kMcs ? SyncFlavor::kScalable
                                                    : SyncFlavor::kUserSpace);
  proc::sync::TicketLock ticket(machine);
  for (int c = 0; c < n; ++c) {
    if (impl == LockImpl::kTicket) {
      exec.Spawn(TicketWorker(machine, ticket, c, iters));
    } else {
      exec.Spawn(MutexWorker(machine, mutex, c, iters));
    }
  }
  exec.Run();
  const Counts counts = ReadCounts(machine);
  const double ops = static_cast<double>(n) * iters;
  Point p;
  p.cores = n;
  p.cycles = static_cast<double>(exec.now()) / ops;
  p.transfers = static_cast<double>(counts.transfers) / ops;
  p.xpkg_dwords = static_cast<double>(counts.xpkg_dwords) / ops;
  return p;
}

// ---------------------------------------------------------------------------
// MapReduce sweep.

struct MrPoint {
  int cores = 0;
  double cycles = 0;
  double checksum = 0;
};

MrPoint MeasureMapReduce(const apps::WorkloadEntry& w, int threads, SyncFlavor flavor,
                         WorkloadParams params) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  std::vector<int> cores;
  for (int i = 0; i < threads; ++i) {
    cores.push_back(i);
  }
  OmpRuntime omp(machine, std::move(cores), flavor);
  WorkloadResult result;
  exec.Spawn([](Task<WorkloadResult> task, WorkloadResult& out) -> Task<> {
    out = co_await std::move(task);
  }(w.run(omp, params), result));
  exec.Run();
  MrPoint p;
  p.cores = threads;
  p.cycles = static_cast<double>(result.cycles);
  p.checksum = result.checksum;
  return p;
}

// ---------------------------------------------------------------------------

struct Gate {
  std::string name;
  bool pass = false;
  std::string detail;
};

void AddGate(std::vector<Gate>& gates, const std::string& name, bool pass,
             const std::string& detail) {
  gates.push_back({name, pass, detail});
}

double At(const std::vector<Point>& pts, int cores, double Point::* field) {
  for (const Point& p : pts) {
    if (p.cores == cores) {
      return p.*field;
    }
  }
  return 0;
}

std::string Fmt(const char* fmt, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

void WriteJson(const std::string& path, bool quick, const std::vector<Point>& bar_cent,
               const std::vector<Point>& bar_tree, const std::vector<Point>& numa_homed,
               const std::vector<Point>& numa_node0, const std::vector<Point>& lk_mcs,
               const std::vector<Point>& lk_ticket, const std::vector<Point>& lk_tas,
               const std::vector<std::pair<std::string, std::vector<MrPoint>>>& mr,
               const std::vector<Gate>& gates) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sync_scaling\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  auto points = [f](const char* name, const std::vector<Point>& pts, bool comma) {
    std::fprintf(f, "  \"%s\": [\n", name);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::fprintf(f,
                   "    {\"cores\": %d, \"cycles\": %.2f, \"transfers\": %.2f, "
                   "\"xpkg_dwords\": %.2f}%s\n",
                   pts[i].cores, pts[i].cycles, pts[i].transfers, pts[i].xpkg_dwords,
                   i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", comma ? "," : "");
  };
  points("barrier_centralized", bar_cent, true);
  points("barrier_tree", bar_tree, true);
  points("tree_numa_homed", numa_homed, true);
  points("tree_numa_node0", numa_node0, true);
  points("lock_mcs", lk_mcs, true);
  points("lock_ticket", lk_ticket, true);
  points("lock_tas", lk_tas, true);
  std::fprintf(f, "  \"mapreduce\": [\n");
  for (std::size_t j = 0; j < mr.size(); ++j) {
    const auto& [name, pts] = mr[j];
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const bool last = j + 1 == mr.size() && i + 1 == pts.size();
      // Series alternates centralized/scalable per core count, in pairs.
      std::fprintf(f,
                   "    {\"job\": \"%s\", \"flavor\": \"%s\", \"cores\": %d, "
                   "\"cycles\": %.0f, \"checksum\": %.6f}%s\n",
                   name.c_str(), i % 2 == 0 ? "centralized" : "scalable", pts[i].cores,
                   pts[i].cycles, pts[i].checksum, last ? "" : ",");
    }
  }
  std::fprintf(f, "  ],\n  \"gates\": [\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"pass\": %s}%s\n", gates[i].name.c_str(),
                 gates[i].pass ? "true" : "false", i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults written to %s\n", path.c_str());
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bool quick = false;
  std::string json_path = "BENCH_sync.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  const int episodes = quick ? 8 : 32;
  const int lock_iters = quick ? 8 : 24;

  bench::PrintHeader(
      "Scalable synchronization: barrier and lock cost vs. core count (4x4 AMD)");

  // Barrier sweep.
  std::vector<Point> bar_cent;
  std::vector<Point> bar_tree;
  for (int n : kCoreCounts) {
    bar_cent.push_back(MeasureBarrier(hw::Amd4x4(), SyncFlavor::kUserSpace, n, episodes));
    bar_tree.push_back(MeasureBarrier(hw::Amd4x4(), SyncFlavor::kScalable, n, episodes));
  }
  std::printf("\n--- barrier episode cost (%d episodes) ---\n", episodes);
  {
    bench::SeriesTable table("cores");
    table.AddSeries("cent cyc");
    table.AddSeries("tree cyc");
    table.AddSeries("cent xfer");
    table.AddSeries("tree xfer");
    table.AddSeries("cent xpkg");
    table.AddSeries("tree xpkg");
    for (std::size_t i = 0; i < bar_cent.size(); ++i) {
      table.AddRow(bar_cent[i].cores,
                   {bar_cent[i].cycles, bar_tree[i].cycles, bar_cent[i].transfers,
                    bar_tree[i].transfers, bar_cent[i].xpkg_dwords,
                    bar_tree[i].xpkg_dwords});
    }
    table.Print("%12.1f");
  }

  // The NUMA homing rule, priced by ablation: the same tree with every flag
  // line force-homed on node 0, on the 2x4 Intel snoop-filter platform where
  // directed probes make placement visible in link traffic. (HyperTransport
  // broadcasts probes to every package on every miss, so on the AMD box
  // total link dwords track total misses, not placement — the paper's
  // argument for why shared-memory traffic is at the mercy of the
  // interconnect.)
  std::vector<Point> numa_homed;
  std::vector<Point> numa_node0;
  for (int n : {2, 4, 8}) {
    numa_homed.push_back(MeasureTreeHoming(hw::Intel2x4(), n, episodes, -1));
    numa_node0.push_back(MeasureTreeHoming(hw::Intel2x4(), n, episodes, 0));
  }
  std::printf(
      "\n--- tree-barrier NUMA homing ablation (2x4 Intel, snoop filter) ---\n");
  {
    bench::SeriesTable table("cores");
    table.AddSeries("homed cyc");
    table.AddSeries("node0 cyc");
    table.AddSeries("homed xpkg");
    table.AddSeries("node0 xpkg");
    for (std::size_t i = 0; i < numa_homed.size(); ++i) {
      table.AddRow(numa_homed[i].cores,
                   {numa_homed[i].cycles, numa_node0[i].cycles,
                    numa_homed[i].xpkg_dwords, numa_node0[i].xpkg_dwords});
    }
    table.Print("%12.1f");
  }

  // Lock sweep.
  std::vector<Point> lk_mcs;
  std::vector<Point> lk_ticket;
  std::vector<Point> lk_tas;
  for (int n : kCoreCounts) {
    lk_mcs.push_back(MeasureLock(LockImpl::kMcs, n, lock_iters));
    lk_ticket.push_back(MeasureLock(LockImpl::kTicket, n, lock_iters));
    lk_tas.push_back(MeasureLock(LockImpl::kTas, n, lock_iters));
  }
  std::printf("\n--- lock acquire/release cost (%d per core) ---\n", lock_iters);
  {
    bench::SeriesTable table("cores");
    table.AddSeries("mcs cyc");
    table.AddSeries("ticket cyc");
    table.AddSeries("tas cyc");
    table.AddSeries("mcs xfer");
    table.AddSeries("ticket xfer");
    table.AddSeries("tas xfer");
    for (std::size_t i = 0; i < lk_mcs.size(); ++i) {
      table.AddRow(lk_mcs[i].cores,
                   {lk_mcs[i].cycles, lk_ticket[i].cycles, lk_tas[i].cycles,
                    lk_mcs[i].transfers, lk_ticket[i].transfers, lk_tas[i].transfers});
    }
    table.Print("%12.1f");
  }

  // MapReduce sweep: centralized and scalable per job, per core count.
  WorkloadParams mr_params;
  mr_params.size = quick ? 1 << 11 : 1 << 13;
  mr_params.iterations = quick ? 1 : 2;
  std::vector<std::pair<std::string, std::vector<MrPoint>>> mr;
  for (const auto& w : apps::MapReduceWorkloads()) {
    std::printf("\n--- MapReduce %s (size %lld, %d iterations) ---\n", w.name,
                static_cast<long long>(mr_params.size), mr_params.iterations);
    bench::SeriesTable table("cores");
    table.AddSeries("centralized");
    table.AddSeries("scalable");
    table.AddSeries("cent/scal %");
    std::vector<MrPoint> pts;
    for (int n : kCoreCounts) {
      MrPoint cent = MeasureMapReduce(w, n, SyncFlavor::kUserSpace, mr_params);
      MrPoint scal = MeasureMapReduce(w, n, SyncFlavor::kScalable, mr_params);
      table.AddRow(n, {cent.cycles, scal.cycles, 100.0 * cent.cycles / scal.cycles});
      pts.push_back(cent);
      pts.push_back(scal);
    }
    table.Print("%12.0f");
    mr.emplace_back(w.name, std::move(pts));
  }

  // Shape gates.
  std::vector<Gate> gates;
  {
    const double cent16 = At(bar_cent, 16, &Point::cycles);
    const double tree16 = At(bar_tree, 16, &Point::cycles);
    AddGate(gates, "barrier_tree_faster_at_16", tree16 < cent16,
            Fmt("tree %.1f vs centralized %.1f cycles/episode", tree16, cent16));
    const double cent_growth = cent16 / At(bar_cent, 4, &Point::cycles);
    const double tree_growth = tree16 / At(bar_tree, 4, &Point::cycles);
    AddGate(gates, "barrier_tree_sublinear_growth", tree_growth < cent_growth,
            Fmt("4->16 cores growth: tree %.2fx vs centralized %.2fx", tree_growth,
                cent_growth));
    const double homed_xpkg = At(numa_homed, 8, &Point::xpkg_dwords);
    const double node0_xpkg = At(numa_node0, 8, &Point::xpkg_dwords);
    AddGate(gates, "barrier_tree_numa_homing", homed_xpkg < node0_xpkg,
            Fmt("snoop-filter cross-package dwords/episode: homed %.1f vs node0 %.1f",
                homed_xpkg, node0_xpkg));
    const double mcs16 = At(lk_mcs, 16, &Point::cycles);
    const double ticket16 = At(lk_ticket, 16, &Point::cycles);
    AddGate(gates, "mcs_faster_than_ticket_at_16", mcs16 < ticket16,
            Fmt("mcs %.1f vs ticket %.1f cycles/op", mcs16, ticket16));
    const double mcs_xfer = At(lk_mcs, 16, &Point::transfers);
    const double ticket_xfer = At(lk_ticket, 16, &Point::transfers);
    AddGate(gates, "mcs_o1_handoff_transfers", mcs_xfer < ticket_xfer,
            Fmt("line transfers/op: mcs %.2f vs ticket %.2f", mcs_xfer, ticket_xfer));
  }
  for (const auto& [name, pts] : mr) {
    bool same = true;
    for (const MrPoint& p : pts) {
      if (p.checksum != pts.front().checksum) {
        same = false;
      }
    }
    AddGate(gates, name + "_checksum_flavor_invariant", same,
            Fmt("checksum %.6f across all flavors and core counts",
                pts.front().checksum, 0));
  }

  std::printf("\n--- gates ---\n");
  bool all_pass = true;
  for (const Gate& g : gates) {
    std::printf("%-34s %s  (%s)\n", g.name.c_str(), g.pass ? "PASS" : "FAIL",
                g.detail.c_str());
    all_pass = all_pass && g.pass;
  }

  WriteJson(json_path, quick, bar_cent, bar_tree, numa_homed, numa_node0, lk_mcs,
            lk_ticket, lk_tas, mr, gates);

  std::printf(
      "\nPaper shape: the centralized barrier's counter line serializes every\n"
      "arrival and its release line invalidates every spinner (cost ~ cores);\n"
      "the tournament tree resolves in ceil(log2 cores) rounds of pairwise,\n"
      "NUMA-homed flags. The MCS lock hands off with O(1) transfers between\n"
      "two cores where ticket/test-and-set storms scale with the waiter count.\n");
  if (!all_pass) {
    std::fprintf(stderr, "FAIL: scaling-shape gate violated\n");
    return 1;
  }
  return 0;
}
