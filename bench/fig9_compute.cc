// Figure 9: compute-bound workloads on the 4x4-core AMD system - OpenMP NAS
// kernels (CG, FT, IS) and SPLASH-2 applications (Barnes-Hut, radiosity),
// comparing Barrelfish's user-space threads library with the Linux in-kernel
// (futex/GOMP) synchronization.
#include <cstdio>
#include <vector>

#include "apps/workloads.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "sim/executor.h"

namespace mk {
namespace {

using apps::WorkloadParams;
using apps::WorkloadResult;
using proc::OmpRuntime;
using proc::SyncFlavor;
using sim::Task;

WorkloadParams ParamsFor(const char* name) {
  WorkloadParams p;
  p.iterations = 5;
  if (std::string_view(name) == "CG") {
    p.size = 4096;
  } else if (std::string_view(name) == "FT") {
    p.size = 1 << 14;
  } else if (std::string_view(name) == "IS") {
    p.size = 1 << 15;
  } else if (std::string_view(name) == "Barnes-Hut") {
    p.size = 1024;
    p.iterations = 3;
  } else {
    p.size = 1024;  // radiosity patches
    p.iterations = 3;
  }
  return p;
}

double Measure(const apps::WorkloadEntry& w, int threads, SyncFlavor flavor) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  std::vector<int> cores;
  for (int i = 0; i < threads; ++i) {
    cores.push_back(i);
  }
  OmpRuntime omp(machine, std::move(cores), flavor);
  WorkloadResult result;
  exec.Spawn([](Task<WorkloadResult> task, WorkloadResult& out) -> Task<> {
    out = co_await std::move(task);
  }(w.run(omp, ParamsFor(w.name)), result));
  exec.Run();
  return static_cast<double>(result.cycles);
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader(
      "Figure 9: compute-bound workloads (4x4-core AMD, total cycles; lower is better)");
  for (const auto& w : apps::AllWorkloads()) {
    std::printf("\n--- %s ---\n", w.name);
    bench::SeriesTable table("cores");
    table.AddSeries("Barrelfish");
    table.AddSeries("Linux");
    table.AddSeries("Linux/BF %");
    for (int threads : {1, 2, 4, 8, 12, 16}) {
      double bf = Measure(w, threads, proc::SyncFlavor::kUserSpace);
      double lx = Measure(w, threads, proc::SyncFlavor::kKernel);
      table.AddRow(threads, {bf, lx, 100.0 * lx / bf});
    }
    table.Print("%12.0f");
  }
  std::printf(
      "\nPaper shape: these benchmarks do not scale particularly well on either OS,\n"
      "but a multikernel supports large shared-address-space parallel code with\n"
      "little penalty. Differences trace to the threads libraries: user-space\n"
      "barriers vs Linux's syscall-based barriers (visible in CG and IS under\n"
      "contention).\n");
  return 0;
}
