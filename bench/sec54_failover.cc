// Section 5.4 under fail-stop faults: shard failover for the scaled-out
// serving stack. sec54_scaleout shows requests/sec growing linearly with
// per-core NetStack/httpd shards; this bench kills one of those shards
// mid-run and shows the distributed-systems payoff the paper promises (§2.3,
// §7): the monitors' heartbeat detects the dead core, a membership view
// change commits among the survivors (mk::recover), and the serving stack
// reacts — the NIC's RSS indirection table is reprogrammed so the dead
// queue's flows land on survivors, survivors RST the orphaned connections so
// clients re-handshake instead of waiting out timeouts, DB clients re-point
// at a live replica and a replacement replica is respawned from a donor.
// Throughput dips at the kill and recovers to the surviving shards' share
// within a printed, bounded window; committed work is never lost (a request
// counts only when its full 200 response arrived); and the whole failover is
// deterministic — the same seed replays bit-identically.
//
// Modes:
//   (none)            no-kill baseline; deterministic transcript (golden)
//   --kill[=K]        halt shard K's web core at t0+1M cycles (static mix)
//   --kill-db[=K]     halt shard K's DB-replica core at t0+1M (web+SQL mix)
//   --chaos-seed=N    1-2 seeded random core kills (web+SQL mix), invariants
//   --quick           4x4 machine, 4 shards, shorter run (CI soak)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/dbshard.h"
#include "apps/httpd.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/nic.h"
#include "net/stack.h"
#include "recover/config.h"
#include "recover/recover.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 77);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 77};

constexpr Cycles kDriverFrameCost = 1400;
constexpr int kDbItems = 30000;
constexpr Cycles kKillOffset = 1'000'000;  // default kill time, after t0

// Throughput bucket width for the dip/recovery timeline.
constexpr Cycles kBucket = 500'000;

// One scheduled fail-stop kill, relative to serving start (t0).
struct Kill {
  bool db = false;  // false: the shard's web core; true: its DB-replica core
  int shard = 0;
  Cycles at = kKillOffset;
};

// Workload shape per mix. Two sizing rules, both load-bearing:
//
//  - Offered load is ~60-80% of the rate sec54_scaleout proves sustainable
//    (1/120k per shard static, 1/1.25M web+SQL). A failover bench must run
//    below saturation: at 100%, N-1 survivors can never re-absorb the dead
//    shard's flows and "recovery" is unreachable by construction. At 1/192k
//    per shard, survivors of a 1-of-4 kill run at ~83% of saturation.
//  - attempt_timeout sits well above the no-kill p99 (sec54_scaleout measures
//    up to ~1.8 ms ≈ 4.5M cycles of queueing at saturation). A timeout below
//    normal latency makes clients abandon requests the server is still
//    working on and retry them, which snowballs into a self-inflicted
//    metastable collapse with zero faults injected. Post-kill recovery does
//    NOT ride this timeout — orphaned flows die fast via retransmit → RST.
struct Mix {
  bool use_db = false;
  Cycles interval_per_shard = 192'000;
  Cycles attempt_timeout = 6'000'000;
  Cycles request_deadline = 20'000'000;
};

Mix StaticMix() { return Mix{}; }
Mix DbMix() {
  Mix m;
  m.use_db = true;
  m.interval_per_shard = 1'920'000;
  m.attempt_timeout = 6'000'000;
  m.request_deadline = 20'000'000;
  return m;
}

net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

// Full machine boot: CPU drivers, SKB (populated + measured), monitors. The
// serving stack needs the monitors because failure detection and the
// membership view change run on them.
struct System {
  explicit System(const hw::PlatformSpec& spec)
      : machine(exec, spec), drivers(CpuDriver::BootAll(machine)), skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

struct LoadStats {
  explicit LoadStats(sim::Executor& exec) : all_done(exec) {}
  int launched = 0;
  int completed = 0;
  int shed = 0;      // requests that never got a full 200 by their deadline
  int retries = 0;   // extra connection attempts (RSTs, timeouts, 503s)
  // Attempt-failure causes (sum >= retries: the final failed attempt of a
  // shed request is counted here but doesn't produce a retry).
  int fail_connect = 0;  // handshake never completed (SYN into a dead queue)
  int fail_rst = 0;      // peer reset mid-flow (orphaned-flow adoption)
  int fail_503 = 0;      // admission shed by an overloaded survivor
  int fail_other = 0;    // truncation or attempt timeout
  int outstanding = 0;
  bool launching_done = false;
  bool finished = false;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;  // absolute completion times
  sim::Event all_done;
};

// Committed-work rule: a request counts as completed only when the client
// holds the entire 200 response (status line + full Content-Length body). An
// RST, a 503 shed, or a truncated stream is an attempt failure, never a
// completion — so a "completed" count can't hide lost work.
bool FullOkResponse(const std::string& resp) {
  if (resp.rfind("HTTP/1.0 200", 0) != 0) {
    return false;
  }
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    return false;
  }
  const std::size_t cl = resp.find("Content-Length: ");
  if (cl == std::string::npos || cl > hdr_end) {
    return false;
  }
  const std::size_t len = std::strtoul(resp.c_str() + cl + 16, nullptr, 10);
  return resp.size() - (hdr_end + 4) >= len;
}

// One HTTP request, open loop, with client-side retry: each attempt is a
// fresh connection with a bounded handshake and response wait; an attempt cut
// short (RST from a survivor, 503 shed, attempt timeout) is retried until the
// request deadline. This is the SYN-retry half of flow adoption: the retry's
// SYN hashes to the re-steered queue and a survivor accepts it.
Task<> OneRequest(sim::Executor& exec, net::NetStack& client, std::string target,
                  const Mix& mix, LoadStats& st) {
  const Cycles start = exec.now();
  const Cycles deadline = start + mix.request_deadline;
  ++st.outstanding;
  bool ok = false;
  bool first_attempt = true;
  Cycles backoff = 100'000;
  while (!ok && exec.now() < deadline) {
    if (!first_attempt) {
      ++st.retries;
      // Back off before re-trying: immediate retries of shed (503) attempts
      // amplify a transient overload into a sustained one.
      co_await exec.Delay(std::min(backoff, deadline - exec.now()));
      backoff = std::min<Cycles>(backoff * 2, 400'000);
      if (exec.now() >= deadline) {
        break;
      }
    }
    first_attempt = false;
    const Cycles attempt_deadline =
        std::min(deadline, exec.now() + mix.attempt_timeout);
    net::NetStack::TcpConn* conn =
        co_await client.TcpConnect(kServerIp, 80, attempt_deadline - exec.now());
    if (conn == nullptr) {
      ++st.fail_connect;
      continue;
    }
    co_await client.TcpSend(*conn, "GET " + target + " HTTP/1.0\r\n\r\n");
    std::string resp;
    while (true) {
      while (!conn->rx.empty()) {
        resp.push_back(static_cast<char>(conn->rx.front()));
        conn->rx.pop_front();
      }
      if (conn->peer_closed && FullOkResponse(resp)) {
        ok = true;
        break;
      }
      if (conn->peer_closed) {
        if (resp.empty()) {
          ++st.fail_rst;
        } else if (resp.rfind("HTTP/1.0 503", 0) == 0) {
          ++st.fail_503;
        } else {
          ++st.fail_other;
        }
        break;  // RST, shed, or truncation: retry
      }
      const Cycles now = exec.now();
      if (now >= attempt_deadline) {
        ++st.fail_other;
        break;
      }
      co_await conn->readable.WaitTimeout(attempt_deadline - now);
    }
    co_await client.TcpClose(*conn);
  }
  if (ok) {
    ++st.completed;
    st.latencies.push_back(exec.now() - start);
    st.completions.push_back(exec.now());
  } else {
    ++st.shed;
  }
  --st.outstanding;
  if (st.launching_done && st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

Task<> Generator(sim::Executor& exec, net::NetStack& client, int total,
                 Cycles interval, const Mix& mix, LoadStats& st,
                 std::uint64_t seed) {
  sim::Rng prng(seed);
  for (int i = 0; i < total; ++i) {
    std::string target = "/index.html";
    if (mix.use_db) {
      std::string sql = apps::TpcwQuery(static_cast<int>(prng.Below(kDbItems)));
      for (char& ch : sql) {
        if (ch == ' ') {
          ch = '+';
        }
      }
      target = "/query?sql=" + sql;
    }
    ++st.launched;
    exec.Spawn(OneRequest(exec, client, std::move(target), mix, st));
    co_await exec.Delay(interval);
  }
  st.launching_done = true;
  if (st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

// Per-shard driver loop, fail-stop aware: a driver on a halted core abandons
// its queue (frames already DMA'd into the ring stay there, exactly like a
// real NIC whose servicing core died).
Task<> ShardDriver(hw::Machine& m, net::SimNic& nic, net::NetStack& stack,
                   int queue, int core, const bool* stop) {
  while (!*stop) {
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(core, m.exec().now())) {
      co_return;  // the driver dies with its core
    }
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await m.Compute(core, kDriverFrameCost);
        co_await stack.Input(std::move(*frame));
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      if (co_await nic.rx_irq(queue).WaitTimeout(20000) && !*stop) {
        co_await m.Trap(core);
      }
    }
  }
}

Task<> WireSink(net::SimNic& nic, net::NetStack& client, const bool* stop) {
  while (!*stop) {
    Packet p;
    while (nic.WirePop(&p)) {
      co_await client.Input(std::move(p));
    }
    if (!*stop) {
      co_await nic.wire_out_ready().Wait();
    }
  }
}

Task<> Supervisor(monitor::MonitorSystem& sys, net::SimNic& nic, LoadStats& st,
                  bool* stop, apps::DbReplicaCluster* cluster) {
  while (!st.finished) {
    co_await st.all_done.Wait();
  }
  *stop = true;
  nic.wire_out_ready().Signal();
  if (cluster != nullptr) {
    co_await cluster->Shutdown();
  }
  sys.Shutdown();
}

struct RunOutput {
  Cycles t0 = 0;           // serving start (after boot)
  Cycles final_now = 0;
  std::uint64_t events = 0;
  int launched = 0;
  int completed = 0;
  int shed = 0;
  int retries = 0;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;  // offsets from t0
  std::uint64_t view_changes = 0;
  std::uint64_t epoch = 1;
  Cycles first_view_change_at = 0;  // offset from t0; 0 = none committed
  int fail_connect = 0;
  int fail_rst = 0;
  int fail_503 = 0;
  int fail_other = 0;
  int reta_rewritten = 0;
  std::uint64_t adopted = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t db_respawns = 0;
  std::uint64_t db_timeouts = 0;
  bool db_all_home = true;  // every redirect home, no replica left dead
  bool replicas_consistent = true;
  bool monitors_quiesced = true;
  bool specs_activated = true;
};

RunOutput RunServing(const hw::PlatformSpec& spec, int shards, const Mix& mix,
                     const std::vector<Kill>& kills, int requests_per_shard,
                     bool print_activations) {
  // The TCP retransmit timeout must sit above the worst frame-to-ACK latency
  // a loaded survivor exhibits, or timers fire on delayed-but-not-lost
  // segments: every spurious resend adds load, which adds latency, which
  // fires more timers — congestion collapse with zero frames dropped. The
  // stock 200k RTO is tuned for lightly loaded link tests; this workload
  // queues several hundred k cycles of stack work on a post-kill survivor.
  // (Consulted only while the injector is installed, so the no-kill baseline
  // is oblivious.)
  recover::RecoveryConfig rcfg;
  rcfg.tcp_rto = 1'000'000;
  // With the 1M base RTO, the stock 8-round doubling backoff would keep a
  // dead-peer connection's timer alive for ~511M cycles of idle sim time
  // after the workload drains. Recovery needs exactly one round (the first
  // resend lands on a survivor and draws the RST), so four is generous.
  rcfg.tcp_max_retx = 4;
  recover::ScopedRecoveryConfig scoped_rcfg(rcfg);
  System s(spec);
  sim::Executor& exec = s.exec;
  hw::Machine& m = s.machine;
  const int client_core = spec.num_cores() - 1;
  const Cycles t0 = exec.now();

  // Shard i: web core 4i, DB replica core 4i+1 (same package); core 4i+2 is
  // the shard's spare, used by replica respawn.
  std::vector<apps::ShardPlacement> placements;
  for (int i = 0; i < shards; ++i) {
    placements.push_back({4 * i, 4 * i + 1});
  }

  // The fault schedule, anchored at t0 so kill offsets are exact regardless
  // of boot length. No kills -> no Injector: the identical plain-run path.
  std::unique_ptr<fault::Injector> inj;
  if (!kills.empty()) {
    fault::FaultPlan plan;
    for (const Kill& k : kills) {
      const auto& p = placements[static_cast<std::size_t>(k.shard)];
      plan.HaltCore(k.db ? p.db_core : p.web_core, t0 + k.at);
    }
    inj = std::make_unique<fault::Injector>(plan);
    inj->Install();
    // Boot ran without the injector; arm the detector now.
    exec.Spawn(s.sys.HeartbeatLoop());
  }

  net::SimNic::Config cfg;
  // Deep rings (real 10G NICs run 1-4k descriptors). The failover transient
  // arrives as a burst — orphaned flows' retransmits plus their retried
  // SYNs, all landing on the survivors at once. A shallow ring drops ACKs
  // under that burst, each drop provokes a full-window go-back-N resend, and
  // the resends keep the ring full: a self-sustaining congestion collapse.
  // Sized to absorb the worst burst the kill can generate so the storm never
  // ignites.
  cfg.rx_descs = 4096;
  cfg.tx_descs = 4096;
  cfg.gbps = 10.0;
  cfg.queues = shards;
  // Fine-grained RETA: 16 slots per queue. At baseline this is steering-
  // identical to the slots==queues identity table ((h % 16q) % q == h % q),
  // but on failover it lets ResteerQueue spread the dead queue's 16 slots
  // round-robin across ALL survivors instead of dumping the whole orphaned
  // share onto one of them — the difference between +1/(N-1) load per
  // survivor and one survivor at 2x, which can never drain.
  cfg.reta_slots = 16 * shards;
  cfg.irq_latency = spec.cost.ipi_wire;
  for (const auto& p : placements) {
    cfg.irq_cores.push_back(p.web_core);
  }
  net::SimNic nic(m, cfg);

  net::NetStack client(m, client_core, kClientIp, kClientMac, FreeCosts());
  client.AddArp(kServerIp, kServerMac);
  client.SetOutput(
      [&nic](Packet p) -> Task<> { co_await nic.InjectFromWire(std::move(p)); });

  apps::Database source;
  std::unique_ptr<apps::DbReplicaCluster> cluster;
  if (mix.use_db) {
    apps::PopulateTpcw(&source, kDbItems);
    cluster = std::make_unique<apps::DbReplicaCluster>(m, source, placements);
  }

  bool stop = false;
  std::vector<std::unique_ptr<net::NetStack>> stacks;
  std::vector<std::unique_ptr<apps::HttpServer>> servers;
  for (int i = 0; i < shards; ++i) {
    const int core = placements[static_cast<std::size_t>(i)].web_core;
    auto stack = std::make_unique<net::NetStack>(m, core, kServerIp, kServerMac);
    stack->AddArp(kClientIp, kClientMac);
    stack->SetOutput([&m, &nic, core, i](Packet p) -> Task<> {
      co_await m.Compute(core, kDriverFrameCost);
      co_await nic.DriverTxPush(core, std::move(p), i);
    });
    apps::HttpServer::DbQueryFn query_fn;
    if (mix.use_db) {
      apps::DbReplicaCluster* cl = cluster.get();
      query_fn = [cl, i](std::string sql) -> Task<std::string> {
        co_return co_await cl->Query(i, std::move(sql));
      };
    }
    servers.push_back(
        std::make_unique<apps::HttpServer>(m, *stack, 80, std::move(query_fn)));
    // Explicit overload policy: bounded admission queue, 503 on overflow or
    // stale waiters, so a degraded fleet sheds instead of collapsing. The
    // queue deadline sits above the workload's healthy p99 queue wait so it
    // only fires under genuine overload (post-kill), never in the baseline.
    servers.back()->SetAdmission({/*workers=*/8, /*max_pending=*/32,
                                  /*queue_deadline=*/5'000'000});
    exec.Spawn(servers.back()->Serve());
    exec.Spawn(ShardDriver(m, nic, *stack, i, core, &stop));
    if (mix.use_db) {
      exec.Spawn(cluster->Serve(i));
    }
    stacks.push_back(std::move(stack));
  }
  exec.Spawn(WireSink(nic, client, &stop));

  // The failover chain: the membership service publishes each committed view
  // change and the serving stack reacts.
  recover::MembershipService membership(s.sys);
  int reta_rewritten = 0;
  Cycles first_view_change_at = 0;
  membership.Subscribe(
      [&](const recover::View& view, int dead_core) -> Task<> {
        if (first_view_change_at == 0) {
          first_view_change_at = exec.now() - t0;
        }
        // A dead web core: move its RX queue's RETA slots onto the surviving
        // shards and arm RST-for-unknown on them so adopted flows reset
        // immediately instead of waiting out client timeouts.
        for (int i = 0; i < shards; ++i) {
          if (placements[static_cast<std::size_t>(i)].web_core != dead_core) {
            continue;
          }
          std::vector<int> survivors;
          for (int t = 0; t < shards; ++t) {
            const int tw = placements[static_cast<std::size_t>(t)].web_core;
            if (t != i && view.live[static_cast<std::size_t>(tw)]) {
              survivors.push_back(t);
            }
          }
          if (!survivors.empty()) {
            reta_rewritten += nic.ResteerQueue(i, survivors);
            for (int t : survivors) {
              stacks[static_cast<std::size_t>(t)]->SetSendRstForUnknown(true);
            }
          }
        }
        // A dead DB core: re-point its clients at a live replica, then
        // respawn a replacement on the shard's spare core and serve it.
        if (cluster != nullptr) {
          (void)cluster->HandleCoreFailure(dead_core);
          for (int i = 0; i < shards; ++i) {
            const auto& p = placements[static_cast<std::size_t>(i)];
            if (p.db_core != dead_core) {
              continue;
            }
            if (co_await cluster->Respawn(i, p.db_core + 1)) {
              exec.Spawn(cluster->Serve(i));
            }
          }
        }
      });

  LoadStats st(exec);
  const int total = requests_per_shard * shards;
  const Cycles interval = mix.interval_per_shard / static_cast<Cycles>(shards);
  exec.Spawn(Generator(exec, client, total, interval, mix, st, /*seed=*/42));
  exec.Spawn(Supervisor(s.sys, nic, st, &stop, cluster.get()));
  exec.Run();

  RunOutput out;
  out.t0 = t0;
  out.final_now = exec.now();
  out.events = exec.events_dispatched();
  out.launched = st.launched;
  out.completed = st.completed;
  out.shed = st.shed;
  out.retries = st.retries;
  out.latencies = std::move(st.latencies);
  for (Cycles c : st.completions) {
    out.completions.push_back(c - t0);
  }
  out.view_changes = membership.view_changes_committed();
  out.epoch = membership.view().epoch;
  out.first_view_change_at = first_view_change_at;
  out.fail_connect = st.fail_connect;
  out.fail_rst = st.fail_rst;
  out.fail_503 = st.fail_503;
  out.fail_other = st.fail_other;
  out.reta_rewritten = reta_rewritten;
  for (int q = 0; q < nic.num_queues(); ++q) {
    out.adopted += nic.queue_stats(q).rx_adopted;
  }
  for (const auto& stk : stacks) {
    out.rsts_sent += stk->tcp_rsts_sent();
  }
  for (const auto& srv : servers) {
    out.shed_queue_full += srv->shed_queue_full();
    out.shed_deadline += srv->shed_deadline();
  }
  if (cluster != nullptr) {
    out.db_respawns = cluster->respawns();
    out.db_timeouts = cluster->failover_timeouts();
    for (int i = 0; i < shards; ++i) {
      if (cluster->redirect(i) != i || cluster->replica_dead(i)) {
        out.db_all_home = false;
      }
    }
  }
  out.replicas_consistent = s.sys.LiveReplicasConsistent();
  for (int c = 0; c < s.sys.num_cores(); ++c) {
    if (s.sys.IsOnline(c) && s.sys.on(c).inflight_ops() != 0) {
      out.monitors_quiesced = false;
    }
  }
  if (std::getenv("FAILOVER_DEBUG") != nullptr) {
    std::printf("[debug] view change at t0+%llu\n",
                static_cast<unsigned long long>(first_view_change_at));
    std::printf("[debug] fail causes: connect=%d rst=%d 503=%d other=%d\n",
                st.fail_connect, st.fail_rst, st.fail_503, st.fail_other);
    for (int q = 0; q < nic.num_queues(); ++q) {
      const auto& qs = nic.queue_stats(q);
      std::printf("[debug] q%d: rx=%llu drops=%llu adopted=%llu | served=%llu "
                  "shed_qf=%llu shed_dl=%llu | no_listener=%llu rsts=%llu "
                  "retx=%llu\n",
                  q, static_cast<unsigned long long>(qs.rx_frames),
                  static_cast<unsigned long long>(qs.rx_drops()),
                  static_cast<unsigned long long>(qs.rx_adopted),
                  static_cast<unsigned long long>(
                      servers[static_cast<std::size_t>(q)]->requests_served()),
                  static_cast<unsigned long long>(
                      servers[static_cast<std::size_t>(q)]->shed_queue_full()),
                  static_cast<unsigned long long>(
                      servers[static_cast<std::size_t>(q)]->shed_deadline()),
                  static_cast<unsigned long long>(
                      stacks[static_cast<std::size_t>(q)]->drops_no_listener()),
                  static_cast<unsigned long long>(
                      stacks[static_cast<std::size_t>(q)]->tcp_rsts_sent()),
                  static_cast<unsigned long long>(
                      stacks[static_cast<std::size_t>(q)]->tcp_retransmits()));
    }
    std::printf("[debug] client: retx=%llu rsts_rcvd=%llu drops=%llu\n",
                static_cast<unsigned long long>(client.tcp_retransmits()),
                static_cast<unsigned long long>(client.tcp_rsts_received()),
                static_cast<unsigned long long>(client.drops()));
  }
  if (inj != nullptr) {
    if (print_activations) {
      inj->PrintActivationTable();
    }
    out.specs_activated = inj->AllSpecsActivated();
    inj->Uninstall();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reporting

std::vector<int> Bucketize(const RunOutput& r, Cycles window) {
  std::vector<int> buckets(static_cast<std::size_t>(window / kBucket), 0);
  for (Cycles c : r.completions) {
    const std::size_t b = static_cast<std::size_t>(c / kBucket);
    if (b < buckets.size()) {
      ++buckets[b];
    }
  }
  return buckets;
}

void PrintBuckets(const std::vector<int>& buckets) {
  std::printf("completions per %.1fM-cycle bucket (t0 = serving start):\n",
              static_cast<double>(kBucket) / 1e6);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::printf("%4d%s", buckets[b], (b + 1) % 10 == 0 ? "\n" : " ");
  }
  if (buckets.size() % 10 != 0) {
    std::printf("\n");
  }
}

// Recovery analysis for a single web-core kill at `kill_at`. Individual
// 0.5M-cycle buckets carry Poisson-scale jitter at these rates, so the
// comparison is mean-based: pre-kill rate is the mean over all full buckets
// before the kill (skipping the warm-up bucket), and the system has recovered
// at the first bucket from which the remaining run sustains a mean >= 7/8 of
// it with no bucket falling below half (a hole that deep is an outage, not
// noise). The final bucket is excluded — it is truncated at run end.
struct Recovery {
  double prekill = 0;
  double threshold = 0;
  bool recovered = false;
  Cycles window = 0;  // kill -> end of the first bucket of sustained recovery
};

Recovery AnalyzeRecovery(const std::vector<int>& buckets, Cycles kill_at) {
  Recovery r;
  const std::size_t kill_bucket = static_cast<std::size_t>(kill_at / kBucket);
  const std::size_t last = buckets.empty() ? 0 : buckets.size() - 1;
  if (kill_bucket < 2 || kill_bucket >= last) {
    return r;
  }
  for (std::size_t b = 1; b < kill_bucket; ++b) {
    r.prekill += buckets[b];
  }
  r.prekill /= static_cast<double>(kill_bucket - 1);
  r.threshold = r.prekill * 7.0 / 8.0;
  for (std::size_t b = kill_bucket; b < last; ++b) {
    double sum = 0;
    bool hole = false;
    for (std::size_t b2 = b; b2 < last; ++b2) {
      sum += buckets[b2];
      if (buckets[b2] < r.prekill / 2.0) {
        hole = true;
      }
    }
    if (!hole && sum / static_cast<double>(last - b) >= r.threshold) {
      r.recovered = true;
      r.window = static_cast<Cycles>(b + 1) * kBucket - kill_at;
      return r;
    }
  }
  return r;
}

bool SameRun(const RunOutput& a, const RunOutput& b) {
  return a.final_now == b.final_now && a.events == b.events &&
         a.completed == b.completed && a.shed == b.shed &&
         a.retries == b.retries && a.latencies == b.latencies &&
         a.view_changes == b.view_changes && a.adopted == b.adopted &&
         a.rsts_sent == b.rsts_sent && a.db_timeouts == b.db_timeouts;
}

void PrintCounters(const RunOutput& r, bool use_db) {
  std::printf("%-26s %d launched, %d completed, %d shed, %d retries\n",
              "requests:", r.launched, r.completed, r.shed, r.retries);
  std::printf("%-26s %llu committed (epoch %llu)\n", "view changes:",
              static_cast<unsigned long long>(r.view_changes),
              static_cast<unsigned long long>(r.epoch));
  std::printf("%-26s %d slots rewritten, %llu frames adopted, %llu RSTs sent\n",
              "flow re-steering:", r.reta_rewritten,
              static_cast<unsigned long long>(r.adopted),
              static_cast<unsigned long long>(r.rsts_sent));
  std::printf("%-26s %llu queue-full, %llu deadline\n", "admission sheds:",
              static_cast<unsigned long long>(r.shed_queue_full),
              static_cast<unsigned long long>(r.shed_deadline));
  if (use_db) {
    std::printf("%-26s %llu reply timeouts, %llu respawns, %s\n", "db failover:",
                static_cast<unsigned long long>(r.db_timeouts),
                static_cast<unsigned long long>(r.db_respawns),
                r.db_all_home ? "all redirects home" : "REDIRECTS NOT HOME");
  }
}

// ---------------------------------------------------------------------------
// Modes

int RunNoKill(bench::TraceSession& session, bool quick) {
  bench::PrintHeader(quick
                         ? "Section 5.4 failover: no-kill baseline, 4 shards on 4x4 AMD (quick)"
                         : "Section 5.4 failover: no-kill baseline, 8 shards on 8x4 AMD");
  session.BeginRun("no-kill");
  const int shards = quick ? 4 : 8;
  const int rps = quick ? 150 : 250;
  RunOutput r = RunServing(quick ? hw::Amd4x4() : hw::Amd8x4(), shards,
                           StaticMix(), {}, rps, /*print_activations=*/false);
  const Cycles window = static_cast<Cycles>(rps) * StaticMix().interval_per_shard;
  PrintBuckets(Bucketize(r, window));
  PrintCounters(r, /*use_db=*/false);
  const bool ok = r.completed == r.launched && r.shed == 0 &&
                  r.view_changes == 0 && r.adopted == 0 && r.rsts_sent == 0;
  std::printf("%-26s %s\n", "clean run:",
              ok ? "all requests served, no recovery machinery touched"
                 : "UNEXPECTED LOSS OR RECOVERY ACTIVITY");
  return ok ? 0 : 1;
}

int RunKillWeb(bench::TraceSession& session, bool quick, int shard) {
  const int shards = quick ? 4 : 8;
  const int rps = quick ? 150 : 250;
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  if (shard < 0 || shard >= shards) {
    std::fprintf(stderr, "--kill=%d out of range (0..%d)\n", shard, shards - 1);
    return 2;
  }
  bench::PrintHeader("Section 5.4 failover: kill shard " + std::to_string(shard) +
                     "'s web core (" + std::to_string(4 * shard) + ") at t0+" +
                     std::to_string(kKillOffset) + " cycles, " +
                     std::to_string(shards) + " shards");
  const std::vector<Kill> kills = {{/*db=*/false, shard, kKillOffset}};
  session.BeginRun("kill-web-run1");
  RunOutput a = RunServing(spec, shards, StaticMix(), kills, rps,
                           /*print_activations=*/true);
  session.BeginRun("kill-web-run2");
  RunOutput b = RunServing(spec, shards, StaticMix(), kills, rps,
                           /*print_activations=*/false);

  const Cycles window = static_cast<Cycles>(rps) * StaticMix().interval_per_shard;
  const std::vector<int> buckets = Bucketize(a, window);
  PrintBuckets(buckets);
  PrintCounters(a, /*use_db=*/false);

  const Recovery rec = AnalyzeRecovery(buckets, kKillOffset);
  std::printf("%-26s %.1f/bucket pre-kill mean, threshold %.1f (>= 7/8 of it)\n",
              "recovery target:", rec.prekill, rec.threshold);
  if (rec.recovered) {
    std::printf("%-26s sustained mean >= %.1f/bucket within %llu cycles of the kill\n",
                "recovery window:", rec.threshold,
                static_cast<unsigned long long>(rec.window));
  } else {
    std::printf("%-26s NEVER RECOVERED\n", "recovery window:");
  }

  const bool no_loss = a.completed + a.shed == a.launched;
  const bool deterministic = SameRun(a, b);
  std::printf("%-26s %s\n", "committed-work ledger:",
              no_loss ? "completed + shed == launched" : "REQUESTS LOST");
  std::printf("%-26s %s (run 1: %llu cycles / %llu events, run 2: %llu / %llu)\n",
              "replay bit-identical:", deterministic ? "yes" : "NO",
              static_cast<unsigned long long>(a.final_now),
              static_cast<unsigned long long>(a.events),
              static_cast<unsigned long long>(b.final_now),
              static_cast<unsigned long long>(b.events));
  const bool ok = rec.recovered && no_loss && deterministic &&
                  a.view_changes == 1 && a.adopted > 0 && a.specs_activated &&
                  a.replicas_consistent;
  std::printf("%-26s %s\n", "verdict:", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunKillDb(bench::TraceSession& session, bool quick, int shard) {
  const int shards = quick ? 4 : 8;
  const int rps = quick ? 24 : 48;
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  if (shard < 0 || shard >= shards) {
    std::fprintf(stderr, "--kill-db=%d out of range (0..%d)\n", shard, shards - 1);
    return 2;
  }
  const int db_core = 4 * shard + 1;
  bench::PrintHeader("Section 5.4 failover: kill shard " + std::to_string(shard) +
                     "'s DB-replica core (" + std::to_string(db_core) +
                     ") at t0+" + std::to_string(kKillOffset) + " cycles, " +
                     std::to_string(shards) + " shards, web+SQL mix");
  const std::vector<Kill> kills = {{/*db=*/true, shard, kKillOffset}};
  session.BeginRun("kill-db-run1");
  RunOutput a = RunServing(spec, shards, DbMix(), kills, rps,
                           /*print_activations=*/true);
  session.BeginRun("kill-db-run2");
  RunOutput b = RunServing(spec, shards, DbMix(), kills, rps,
                           /*print_activations=*/false);
  PrintCounters(a, /*use_db=*/true);
  const bool no_loss = a.completed + a.shed == a.launched;
  const bool deterministic = SameRun(a, b);
  std::printf("%-26s %s\n", "committed-work ledger:",
              no_loss ? "completed + shed == launched" : "REQUESTS LOST");
  std::printf("%-26s %s (run 1: %llu cycles / %llu events, run 2: %llu / %llu)\n",
              "replay bit-identical:", deterministic ? "yes" : "NO",
              static_cast<unsigned long long>(a.final_now),
              static_cast<unsigned long long>(a.events),
              static_cast<unsigned long long>(b.final_now),
              static_cast<unsigned long long>(b.events));
  // The dip here is bounded by db_rpc_timeout, and the replacement replica
  // must end up serving: redirects home, nothing left dead, no request lost.
  const bool ok = no_loss && deterministic && a.view_changes == 1 &&
                  a.db_respawns == 1 && a.db_all_home && a.shed == 0 &&
                  a.specs_activated && a.replicas_consistent;
  std::printf("%-26s %s\n", "verdict:", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunChaos(bench::TraceSession& session, bool quick, std::uint64_t seed) {
  const int shards = quick ? 4 : 8;
  const int rps = quick ? 16 : 24;
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  bench::PrintHeader("Section 5.4 failover: chaos plan, seed " +
                     std::to_string(seed) + ", " + std::to_string(shards) +
                     " shards, web+SQL mix");
  // The seeded plan: 1-2 fail-stop kills of distinct shards, each hitting
  // either the web core or the DB-replica core at a random early offset.
  sim::Rng rng(seed);
  std::vector<Kill> kills;
  const int n_kills = 1 + static_cast<int>(rng.Below(2));
  int first_shard = -1;
  for (int k = 0; k < n_kills; ++k) {
    Kill kill;
    if (k == 0) {
      kill.shard = static_cast<int>(rng.Below(static_cast<std::uint64_t>(shards)));
      first_shard = kill.shard;
    } else {
      kill.shard = (first_shard + 1 +
                    static_cast<int>(rng.Below(static_cast<std::uint64_t>(shards - 1)))) %
                   shards;
    }
    kill.db = rng.Below(2) == 1;
    kill.at = 500'000 + static_cast<Cycles>(rng.Below(1'500'000));
    kills.push_back(kill);
  }
  for (const Kill& k : kills) {
    std::printf("chaos plan: halt shard %d's %s core (%d) at t0+%llu\n", k.shard,
                k.db ? "DB-replica" : "web", 4 * k.shard + (k.db ? 1 : 0),
                static_cast<unsigned long long>(k.at));
  }
  std::printf("replay with: sec54_failover %s--chaos-seed=%llu\n",
              quick ? "--quick " : "", static_cast<unsigned long long>(seed));

  session.BeginRun("chaos");
  RunOutput r = RunServing(spec, shards, DbMix(), kills, rps,
                           /*print_activations=*/true);
  PrintCounters(r, /*use_db=*/true);

  // Invariants, not thresholds: chaos plans vary in damage, but the ledger
  // must balance, every kill must be detected and committed as a view change,
  // every dead replica must be respawned, the survivors' capability replicas
  // must agree, and the run must have exercised every scheduled fault.
  int db_kills = 0;
  for (const Kill& k : kills) {
    db_kills += k.db ? 1 : 0;
  }
  struct Check {
    const char* name;
    bool ok;
  } checks[] = {
      {"ledger balances", r.completed + r.shed == r.launched},
      {"majority served", r.completed * 2 >= r.launched},
      {"all kills became view changes",
       r.view_changes == static_cast<std::uint64_t>(n_kills) &&
           r.epoch == 1 + static_cast<std::uint64_t>(n_kills)},
      {"dead replicas respawned",
       r.db_respawns == static_cast<std::uint64_t>(db_kills) && r.db_all_home},
      {"live replicas consistent", r.replicas_consistent},
      {"monitors quiesced", r.monitors_quiesced},
      {"every fault spec fired", r.specs_activated},
  };
  bool ok = true;
  for (const Check& c : checks) {
    std::printf("%-32s %s\n", c.name, c.ok ? "ok" : "FAIL");
    ok = ok && c.ok;
  }
  if (!ok) {
    std::printf("chaos FAIL: reproduce with seed %llu (plan above)\n",
                static_cast<unsigned long long>(seed));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::TraceSession session(trace_flags);
  bool quick = false;
  bool kill = false;
  int kill_shard = 2;
  bool kill_db = false;
  int kill_db_shard = 1;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--kill") == 0) {
      kill = true;
    } else if (std::strncmp(arg, "--kill=", 7) == 0) {
      kill = true;
      kill_shard = std::atoi(arg + 7);
    } else if (std::strcmp(arg, "--kill-db") == 0) {
      kill_db = true;
    } else if (std::strncmp(arg, "--kill-db=", 10) == 0) {
      kill_db = true;
      kill_db_shard = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(arg + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: sec54_failover [--quick] [--kill[=K]] [--kill-db[=K]] "
                   "[--chaos-seed=N]\n");
      return 2;
    }
  }
  int rc = 0;
  if (chaos) {
    rc = RunChaos(session, quick, chaos_seed);
  } else if (kill) {
    rc = RunKillWeb(session, quick, kill_shard);
  } else if (kill_db) {
    rc = RunKillDb(session, quick, kill_db_shard);
  } else {
    rc = RunNoKill(session, quick);
  }
  return rc;
}
