// Section 5.4, "Web server and relational database": the 2x2-core AMD system
// serves (a) a 4.1 KB static page and (b) TPC-W-style SELECT queries against
// a database process, to a cluster of HTTP clients.
//
// Barrelfish placement (the paper's best): e1000 driver on core 2, web
// server on core 3 (same package), other services on core 0, database on the
// remaining core 1. Web server, driver, and database communicate over URPC.
// The lighttpd/Linux comparator runs the same logic with the kernel network
// path: extra kernel-user crossings and copies per packet and per request.
//
// Paper: 18697 req/s static (lighttpd/Linux: 8924); 3417 req/s for web+SQL,
// bottlenecked at the SQLite core.
#include <cstdio>
#include <string>

#include "apps/db.h"
#include "apps/httpd.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr int kServicesCore = 0;
constexpr int kDbCore = 1;
constexpr int kDriverCore = 2;
constexpr int kServerCore = 3;
constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 77);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 77};

// The external client cluster (17 Linux boxes running httperf): its stack
// costs nothing on the simulated machine.
net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

struct DbService {
  DbService(hw::Machine& m, int items)
      : queries(m, kServerCore, kDbCore),
        replies(m, kDbCore, kServerCore, net::PacketChannel::Options{}) {
    apps::PopulateTpcw(&db, items);
  }
  apps::Database db;
  urpc::Channel queries;        // SQL text (fragmented over messages)
  net::PacketChannel replies;   // rendered result rows
};

// The database server process: receives SQL over URPC, executes it for real,
// charges the scan cost, replies with rendered rows.
Task<> DbServer(hw::Machine& m, DbService& svc, bool* running) {
  while (*running) {
    // Reassemble the SQL text from URPC fragments (tag 2 = more, 1 = final).
    std::string sql;
    while (true) {
      urpc::Message msg = co_await svc.queries.Recv();
      if (msg.tag == 0xdead) {
        co_return;
      }
      sql.append(reinterpret_cast<const char*>(msg.bytes.data()), msg.len);
      if (msg.tag == 1) {
        break;
      }
    }
    auto result = svc.db.Query(sql);
    std::string rendered;
    std::uint64_t scanned = 0;
    if (std::holds_alternative<apps::Database::ResultSet>(result)) {
      auto& rs = std::get<apps::Database::ResultSet>(result);
      scanned = rs.rows_scanned;
      for (const auto& row : rs.rows) {
        for (const auto& v : row) {
          rendered += apps::DbValueToString(v);
          rendered += '|';
        }
        rendered += '\n';
      }
    } else {
      rendered = "error: " + std::get<apps::DbError>(result).message;
    }
    // Parse + per-row scan cost (the SQLite-core bottleneck).
    co_await m.Compute(kDbCore, 5000 + scanned * 25);
    co_await svc.replies.Send(Packet(rendered.begin(), rendered.end()));
  }
}

struct Scenario {
  bool linux_mode = false;
  bool use_db = false;
};

double RunScenario(Scenario sc) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());

  // Server stack: Barrelfish charges the plain stack; the Linux comparator
  // adds kernel-crossing and copy costs per packet.
  net::StackCosts server_costs;
  if (sc.linux_mode) {
    server_costs.per_packet_in += 7000;   // softirq + socket locking + wakeup
    server_costs.per_packet_out += 7000;  // syscall + kernel buffer copy path
    server_costs.per_byte_checksum = 1.0; // checksum + user/kernel copy
  }
  net::NetStack server(m, kServerCore, kServerIp, kServerMac, server_costs);
  net::NetStack client(m, kServicesCore, kClientIp, kClientMac, FreeCosts());
  server.AddArp(kClientIp, kClientMac);
  client.AddArp(kServerIp, kServerMac);

  // Frames pass through the driver core: per-packet driver work plus the
  // URPC hop (Barrelfish) or the in-kernel path (Linux, cheaper hop but the
  // kernel costs are charged in the stack above).
  const Cycles driver_cost = sc.linux_mode ? 900 : 1400;
  server.SetOutput([&m, &client, driver_cost](Packet p) -> Task<> {
    co_await m.Compute(kDriverCore, driver_cost);
    co_await client.Input(std::move(p));
  });
  client.SetOutput([&m, &server, driver_cost](Packet p) -> Task<> {
    co_await m.Compute(kDriverCore, driver_cost);
    co_await server.Input(std::move(p));
  });

  DbService db_service(m, 30000);
  bool db_running = true;
  // One outstanding DB RPC at a time: the reply channel carries no request
  // ids, so concurrent HTTP handlers serialize here (as a connection pool of
  // size one would).
  sim::Semaphore db_rpc_slot(exec, 1);

  apps::HttpServer http(
      m, server, 80,
      [&exec, &m, &db_service, &db_rpc_slot](std::string sql) -> Task<std::string> {
        co_await db_rpc_slot.Acquire();
        // Web server -> DB over URPC; SQL fits a couple of messages.
        for (std::size_t off = 0; off < sql.size();
             off += urpc::Message::kPayloadBytes) {
          urpc::Message msg;
          msg.tag = off + urpc::Message::kPayloadBytes >= sql.size() ? 1 : 2;
          msg.len = static_cast<std::uint32_t>(
              std::min(urpc::Message::kPayloadBytes, sql.size() - off));
          std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
          co_await db_service.queries.Send(msg);
        }
        Packet reply = co_await db_service.replies.Recv();
        db_rpc_slot.Release();
        co_return std::string(reply.begin(), reply.end());
      },
      sc.linux_mode ? 68000 : 60000);

  exec.Spawn(http.Serve());
  if (sc.use_db) {
    exec.Spawn(DbServer(m, db_service, &db_running));
  }

  // httperf-like closed-loop clients.
  const int kClients = 8;
  const int kRequestsPerClient = sc.use_db ? 8 : 25;
  int done = 0;
  for (int c = 0; c < kClients; ++c) {
    exec.Spawn([](net::NetStack& cl, bool use_db, int requests, int* finished,
                  std::uint64_t seed) -> Task<> {
      sim::Rng prng(seed);
      for (int r = 0; r < requests; ++r) {
        net::NetStack::TcpConn* conn = co_await cl.TcpConnect(kServerIp, 80);
        std::string target = "/index.html";
        if (use_db) {
          std::string sql = apps::TpcwQuery(static_cast<int>(prng.Below(30000)));
          for (char& ch : sql) {
            if (ch == ' ') {
              ch = '+';  // URL-encode spaces
            }
          }
          target = "/query?sql=" + sql;
        }
        co_await cl.TcpSend(*conn, "GET " + target + " HTTP/1.0\r\n\r\n");
        while (!conn->peer_closed) {
          auto chunk = co_await conn->Read();
          if (chunk.empty()) {
            break;
          }
        }
        co_await cl.TcpClose(*conn);
      }
      ++*finished;
    }(client, sc.use_db, kRequestsPerClient, &done, 1000 + c));
  }
  Cycles elapsed = exec.Run();
  double seconds = static_cast<double>(elapsed) / (m.spec().clock_ghz * 1e9);
  return kClients * kRequestsPerClient / seconds;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Section 5.4: web server and relational database (2x2-core AMD)");
  double bf_static = RunScenario({false, false});
  double lx_static = RunScenario({true, false});
  double bf_db = RunScenario({false, true});
  std::printf("%-42s %12s %14s\n", "", "measured", "paper");
  std::printf("%-42s %9.0f/s %14s\n", "Barrelfish static 4.1KB page", bf_static, "18697/s");
  std::printf("%-42s %9.0f/s %14s\n", "lighttpd on Linux, static page", lx_static, "8924/s");
  std::printf("%-42s %9.2fx %14s\n", "Barrelfish / Linux ratio", bf_static / lx_static,
              "2.10x");
  std::printf("%-42s %9.0f/s %14s\n", "Barrelfish web + SQL (TPC-W SELECTs)", bf_db,
              "3417/s");
  std::printf(
      "\nShape: the user-space server (driver, web server, DB as URPC-connected\n"
      "processes placed by topology) roughly doubles lighttpd/Linux on the static\n"
      "workload by avoiding kernel-user crossings; the web+SQL configuration is\n"
      "bottlenecked at the database core.\n");
  return 0;
}
