// Section 5.2, "The cost of polling": validates the paper's analytic model of
// poll-then-block receive against the simulated implementation.
//
// Model: poll for P cycles, then sleep and wait for an IPI costing C cycles.
// For a message arriving at time t:
//   overhead = t           if t <= P        latency = 0 if t <= P
//              P + C       otherwise                  C otherwise
// With no information about arrivals, P = C bounds overhead at 2C and latency
// at C. The bench sweeps arrival times around P and also sweeps the poll
// window under Poisson arrivals (the ablation for the section 4.6 design
// choice of a fixed poll window).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

Task<> SendOne(urpc::Channel& ch) { co_await ch.Send(urpc::Message{}); }

Task<> RecvOne(sim::Executor& exec, urpc::Channel& ch, CpuDriver& local, CpuDriver& snd,
               Cycles window, Cycles& out) {
  (void)co_await ch.RecvBlocking(local, snd, window);
  out = exec.now();
}

// One message arriving at `arrival`; receiver polls for `window` then blocks.
// Returns receive-completion time.
Cycles RunOnce(Cycles window, Cycles arrival) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(m);
  urpc::Channel ch(m, 0, 4);
  Cycles done = 0;
  exec.Spawn(RecvOne(exec, ch, *drivers[4], *drivers[0], window, done));
  exec.CallAt(arrival, [&exec, &ch] { exec.Spawn(SendOne(ch)); });
  exec.Run();
  return done;
}

Task<> PoissonSender(hw::Machine& m, urpc::Channel& ch, sim::Rng& rng, double mean_gap, int n) {
  for (int i = 0; i < n; ++i) {
    co_await m.exec().Delay(static_cast<Cycles>(rng.Exponential(mean_gap)));
    co_await ch.Send(urpc::Message{});
  }
}

Task<> BlockingReceiver(hw::Machine& m, urpc::Channel& ch, CpuDriver& local, CpuDriver& snd,
                        Cycles window, int n, sim::RunningStat& latency) {
  for (int i = 0; i < n; ++i) {
    Cycles t0 = m.exec().now();
    (void)co_await ch.RecvBlocking(local, snd, window);
    latency.Add(static_cast<double>(m.exec().now() - t0));
  }
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  sim::Executor probe_exec;
  hw::Machine probe(probe_exec, hw::Amd8x4());
  const Cycles kC = probe.cost().trap + probe.cost().context_switch + probe.cost().dispatch +
                    probe.cost().ipi_send + probe.cost().ipi_wire;
  const Cycles kP = kC;  // the paper's choice P = C

  bench::PrintHeader("Section 5.2: the cost of polling (8x4-core AMD)");
  std::printf("C (IPI + trap + context switch) ~= %llu cycles; poll window P = C\n\n",
              static_cast<unsigned long long>(kC));
  std::printf("%14s %14s %14s %16s %16s\n", "arrival t", "recv done", "latency", "model lat",
              "model overhead");
  for (double frac : {0.1, 0.25, 0.5, 0.9, 1.5, 2.0, 4.0}) {
    Cycles t = static_cast<Cycles>(frac * static_cast<double>(kP));
    Cycles done = RunOnce(kP, t);
    Cycles lat = done - t;
    Cycles model_lat = t <= kP ? 0 : kC;
    Cycles model_ovh = t <= kP ? t : kP + kC;
    std::printf("%14llu %14llu %14llu %16llu %16llu\n", static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(done), static_cast<unsigned long long>(lat),
                static_cast<unsigned long long>(model_lat),
                static_cast<unsigned long long>(model_ovh));
  }
  std::printf("\n(Simulated latency adds the ~600-cycle URPC transfer to the model's 0/C.)\n");

  // Ablation: poll-window sweep under Poisson arrivals with mean gap 2C.
  bench::PrintHeader("Ablation: poll window vs mean message latency (Poisson arrivals)");
  bench::SeriesTable table("P/C %");
  table.AddSeries("mean latency");
  table.AddSeries("p95 latency");
  const int kMessages = 400;
  for (int pct : {0, 25, 50, 100, 200, 400}) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    auto drivers = CpuDriver::BootAll(m);
    urpc::Channel ch(m, 0, 4);
    sim::Rng rng(2024);
    sim::RunningStat latency;
    Cycles window = kC * static_cast<Cycles>(pct) / 100;
    exec.Spawn(PoissonSender(m, ch, rng, 2.0 * static_cast<double>(kC), kMessages));
    exec.Spawn(BlockingReceiver(m, ch, *drivers[4], *drivers[0], window, kMessages, latency));
    exec.Run();
    table.AddRow(pct, {latency.mean(), latency.max()});
  }
  table.Print();
  std::printf(
      "\nShape: longer polling trades idle spin for fewer costly IPI wake-ups; beyond\n"
      "P ~= C the latency win flattens, matching the paper's argument for P = C.\n");
  return 0;
}
