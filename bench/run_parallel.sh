#!/usr/bin/env bash
# Builds and runs the parallel-engine speedup sweep (bench/par_speedup.cc),
# writing BENCH_parallel.json at the repo root and the human-readable table
# to stdout. The sweep runs the two multi-domain workloads at 1/2/4/8 host
# threads and fails if any thread count produces a schedule that is not
# bit-identical to the 1-thread run.
#
# Speedup is bounded by the host's core count (recorded as host_cores in the
# JSON): on a single-core machine every thread count measures the same
# sequential schedule plus barrier overhead.
#
# Extra arguments pass through to the binary, e.g.:
#   bench/run_parallel.sh --quick
#   bench/run_parallel.sh --domains=16
#   bench/run_parallel.sh --machines=16   # rack-wide spelling of --domains,
#                                         # parsed by bench_util.h the same
#                                         # way rack_serving parses it
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target par_speedup

./build/bench/par_speedup --json=BENCH_parallel.json "$@"
