// Serving from a rack: the multikernel argument applied one level up. §2 of
// the paper says a machine is a distributed system; this bench composes N
// simulated machines (cluster::ClusterTopology) behind a top-of-rack switch
// (cluster::DcFabric) and an L4 balancer machine (cluster::L4Balancer) and
// shows the same three properties sec54_failover shows inside one machine,
// now across machine boundaries:
//
//  - aggregate requests/sec scales near-linearly from 1 to 4 backend
//    machines of 8x4 serving shards (offered load scales with the rack; a
//    clean sweep completes every request, so goodput tracks machines);
//  - a whole-machine fail-stop kill (fault::HaltMachine: every core of one
//    engine domain) is detected by the cluster heartbeat service, committed
//    as an epoch-numbered view change, and the balancer's rendezvous hashing
//    re-steers exactly the dead machine's flows onto survivors, whose stacks
//    RST the orphaned connections so clients re-SYN instead of timing out —
//    throughput recovers to >= (N-1)/N of the pre-kill rate within a
//    printed, bounded window;
//  - the whole rack is one conservative parallel-DES schedule: the port
//    wire latency is the cross-domain lookahead, so --threads=4 replays the
//    --threads=1 run bit-identically (the printed schedule digest is the
//    proof, and the golden transcript never mentions the thread count).
//
// Modes:
//   (none)            machine sweep 1..--machines, deterministic (golden)
//   --kill[=M]        halt every core of backend machine M at t0+1.5M cycles
//   --chaos-seed=N    seeded machine kill + cross-machine link faults
//   --quick           2 machines of 4 shards on 4x4 AMD, lighter load (CI)
//   --machines=N      rack size (sweep ceiling / kill+chaos rack size)
//   --threads=N       host threads for the parallel engine
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/httpd.h"
#include "bench_util.h"
#include "cluster/balancer.h"
#include "cluster/fabric.h"
#include "cluster/membership.h"
#include "cluster/topology.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/stack.h"
#include "recover/config.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "sim/random.h"

namespace mk {
namespace {

using Topo = cluster::ClusterTopology;
using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr Cycles kDriverFrameCost = 1400;
// Client stack core; RX drivers own 0..kClientNicQueues-1.
constexpr int kClientCore = cluster::ClusterTopology::kClientNicQueues;
constexpr Cycles kKillOffset = 1'500'000;
constexpr Cycles kBucket = 500'000;

// Same sizing rules as sec54_failover, applied per shard — but a rack is
// sized by its SHARED tiers, not its shards. Every request crosses the
// client switch port, the balancer (drive cores + both uplink switch ports),
// and a backend switch port; the backend ports only ever carry one machine's
// worth, but the uplink tiers carry the whole rack's. At 4 machines of 8
// shards the aggregate interval is interval_per_shard/32, and a full data
// frame costs ~11k switch-core cycles to store-and-forward (23 cache-line
// reads), so 384k/shard keeps every shared tier at or under ~55% utilization
// — low enough that queue tails stay far below the 400k heartbeat timeout,
// with headroom for the +1/(N-1) surviving-machine load after a kill. The
// attempt timeout sits far above the healthy p99 so clients never abandon
// requests a live server is still working on.
struct Mix {
  Cycles interval_per_shard = 384'000;
  Cycles attempt_timeout = 6'000'000;
  Cycles request_deadline = 20'000'000;
};

struct RackConfig {
  int machines = 4;
  int shards = 8;  // serving shards per backend machine
  int rps = 100;   // requests per shard
  int threads = 1;
  Mix mix;
  hw::PlatformSpec backend_spec = hw::Amd8x4();
};

RackConfig MakeConfig(bool quick, int machines, int threads) {
  RackConfig cfg;
  cfg.machines = machines;
  cfg.threads = threads;
  if (quick) {
    cfg.shards = 4;
    cfg.rps = 40;
    cfg.backend_spec = hw::Amd4x4();
    // A 1-of-2 kill doubles the survivor's load, so quick mode offers less
    // per shard than the full rack (where a 1-of-4 kill adds only a third).
    cfg.mix.interval_per_shard = 288'000;
  }
  return cfg;
}

net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

struct LoadStats {
  explicit LoadStats(sim::Executor& exec) : all_done(exec) {}
  int launched = 0;
  int completed = 0;
  int shed = 0;
  int retries = 0;
  int fail_connect = 0;
  int fail_rst = 0;
  int fail_503 = 0;
  int fail_other = 0;
  int outstanding = 0;
  bool launching_done = false;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;
  sim::Event all_done;
};

// Committed-work rule (same as sec54_failover): a request counts only when
// the client holds the entire 200 response.
bool FullOkResponse(const std::string& resp) {
  if (resp.rfind("HTTP/1.0 200", 0) != 0) {
    return false;
  }
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    return false;
  }
  const std::size_t cl = resp.find("Content-Length: ");
  if (cl == std::string::npos || cl > hdr_end) {
    return false;
  }
  const std::size_t len = std::strtoul(resp.c_str() + cl + 16, nullptr, 10);
  return resp.size() - (hdr_end + 4) >= len;
}

// One open-loop request against the VIP, with client-side retry. After a
// machine kill the retry path is the rack-scale half of flow adoption: the
// retransmitted segment (or retried SYN) is re-steered by the balancer onto
// a survivor, which RSTs the orphaned flow / accepts the fresh handshake.
Task<> OneRequest(sim::Executor& exec, net::NetStack& client, const Mix& mix,
                  LoadStats& st) {
  const Cycles start = exec.now();
  const Cycles deadline = start + mix.request_deadline;
  ++st.outstanding;
  bool ok = false;
  bool first_attempt = true;
  Cycles backoff = 100'000;
  while (!ok && exec.now() < deadline) {
    if (!first_attempt) {
      ++st.retries;
      co_await exec.Delay(std::min(backoff, deadline - exec.now()));
      backoff = std::min<Cycles>(backoff * 2, 400'000);
      if (exec.now() >= deadline) {
        break;
      }
    }
    first_attempt = false;
    const Cycles attempt_deadline =
        std::min(deadline, exec.now() + mix.attempt_timeout);
    net::NetStack::TcpConn* conn =
        co_await client.TcpConnect(Topo::kVip, 80, attempt_deadline - exec.now());
    if (conn == nullptr) {
      ++st.fail_connect;
      continue;
    }
    co_await client.TcpSend(*conn, "GET /index.html HTTP/1.0\r\n\r\n");
    std::string resp;
    while (true) {
      while (!conn->rx.empty()) {
        resp.push_back(static_cast<char>(conn->rx.front()));
        conn->rx.pop_front();
      }
      if (conn->peer_closed && FullOkResponse(resp)) {
        ok = true;
        break;
      }
      if (conn->peer_closed) {
        if (resp.empty()) {
          ++st.fail_rst;
        } else if (resp.rfind("HTTP/1.0 503", 0) == 0) {
          ++st.fail_503;
        } else {
          ++st.fail_other;
        }
        break;
      }
      const Cycles now = exec.now();
      if (now >= attempt_deadline) {
        ++st.fail_other;
        break;
      }
      co_await conn->readable.WaitTimeout(attempt_deadline - now);
    }
    co_await client.TcpClose(*conn);
  }
  if (ok) {
    ++st.completed;
    st.latencies.push_back(exec.now() - start);
    st.completions.push_back(exec.now());
  } else {
    ++st.shed;
  }
  --st.outstanding;
  if (st.launching_done && st.outstanding == 0) {
    st.all_done.Signal();
  }
}

Task<> Generator(sim::Executor& exec, net::NetStack& client, int total,
                 Cycles interval, const Mix& mix, LoadStats& st) {
  for (int i = 0; i < total; ++i) {
    ++st.launched;
    exec.Spawn(OneRequest(exec, client, mix, st));
    co_await exec.Delay(interval);
  }
  st.launching_done = true;
  if (st.outstanding == 0) {
    st.all_done.Signal();
  }
}

// Client-side RX driver: drains one client-NIC queue into the client stack.
// The client machine is never killed, so the loop is unconditional; it
// quiesces by parking on the RX interrupt.
Task<> ClientRxLoop(hw::Machine& m, net::SimNic& nic, net::NetStack& stack,
                    int queue, int core) {
  for (;;) {
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await m.Compute(core, kDriverFrameCost);
        co_await stack.Input(std::move(*frame));
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      co_await nic.rx_irq(queue).Wait();
      co_await m.Trap(core);
    }
  }
}

// Backend shard driver, fail-stop aware. A machine-scoped halt spec
// (HaltMachine) matches every core of this domain, so the driver dies on its
// next wakeup — and frames the balancer steers here before the view change
// commits guarantee that wakeup arrives. Unlike sec54_failover's version
// this parks on a plain Wait (no timeout): a driver on a dead machine is
// simply abandoned, which is exactly how a fail-stop machine behaves.
Task<> ShardDriver(hw::Machine& m, net::SimNic& nic, net::NetStack& stack,
                   int queue, int core) {
  for (;;) {
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(core, m.exec().now())) {
      co_return;
    }
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await m.Compute(core, kDriverFrameCost);
        co_await stack.Input(std::move(*frame));
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      co_await nic.rx_irq(queue).Wait();
      co_await m.Trap(core);
    }
  }
}

struct RackOutput {
  Cycles final_now = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t digest = 0;
  int launched = 0;
  int completed = 0;
  int shed = 0;
  int retries = 0;
  int fail_connect = 0;
  int fail_rst = 0;
  int fail_503 = 0;
  int fail_other = 0;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;  // absolute (t0 == 0: no boot phase)
  std::uint64_t view_changes = 0;
  std::uint64_t epoch = 1;
  Cycles first_view_change_at = 0;  // 0 = none committed
  std::uint64_t heartbeats = 0;
  std::uint64_t stale_beats = 0;
  std::uint64_t steered = 0;
  std::uint64_t resteered = 0;
  std::uint64_t mgmt_frames = 0;
  std::uint64_t no_backend_drops = 0;
  std::uint64_t balancer_tx_full = 0;
  std::uint64_t fabric_forwarded = 0;
  std::uint64_t fabric_unknown_drops = 0;
  std::uint64_t fabric_tx_full = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t client_retx = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  bool specs_activated = true;
};

RackOutput RunRack(const RackConfig& cfg, const fault::FaultPlan* plan,
                   bool print_activations) {
  // Same RTO reasoning as sec54_failover: the retransmit timer must sit
  // above the worst frame-to-ACK latency a loaded survivor exhibits — here
  // that latency additionally includes four switch-port crossings. Consulted
  // only while an injector is installed, so the golden sweep is oblivious.
  recover::RecoveryConfig rcfg;
  rcfg.tcp_rto = 1'000'000;
  rcfg.tcp_max_retx = 4;
  recover::ScopedRecoveryConfig scoped_rcfg(rcfg);

  Topo::Options topts;
  topts.backends = cfg.machines;
  topts.shards_per_backend = cfg.shards;
  topts.threads = cfg.threads;
  topts.backend_spec = cfg.backend_spec;
  Topo topo(topts);
  sim::ParallelEngine& eng = topo.engine();
  sim::Executor& cexec = eng.domain(Topo::kClientDomain);

  std::unique_ptr<fault::Injector> inj;
  if (plan != nullptr) {
    inj = std::make_unique<fault::Injector>(*plan);
    inj->Install();
  }

  const int total = cfg.rps * cfg.shards * cfg.machines;
  const Cycles interval =
      cfg.mix.interval_per_shard / static_cast<Cycles>(cfg.shards * cfg.machines);
  // Bounds every periodic loop (heartbeats, membership sweep): past the last
  // launch plus the worst request deadline plus failover slack.
  const Cycles horizon =
      static_cast<Cycles>(total) * interval + cfg.mix.request_deadline + 10'000'000;

  // Client: one stack (the load generator) fed by one RX driver loop per
  // client-NIC queue.
  net::NetStack client(topo.client_machine(), kClientCore, Topo::kClientIp,
                       Topo::ClientMac(), FreeCosts());
  client.AddArp(Topo::kVip, Topo::BalancerMac());
  net::SimNic& cnic = topo.client_nic();
  client.SetOutput([&cnic](Packet p) -> Task<> {
    (void)co_await cnic.DriverTxPush(kClientCore, std::move(p), 0);
  });
  for (int q = 0; q < Topo::kClientNicQueues; ++q) {
    cexec.Spawn(ClientRxLoop(topo.client_machine(), cnic, client, q, q));
  }

  // Backends: every shard stack binds the VIP (direct server return; the
  // stack demuxes inbound by destination IP, so shards share it) plus its
  // machine's MAC, and pre-arms RST-for-unknown — the arming is
  // injector-gated in the stack, so golden runs never send one, and there is
  // no way to arm it at view-change time from the balancer's domain.
  std::vector<std::unique_ptr<net::NetStack>> stacks;
  std::vector<std::unique_ptr<apps::HttpServer>> servers;
  for (int b = 0; b < cfg.machines; ++b) {
    hw::Machine& bm = topo.backend_machine(b);
    net::SimNic& bnic = topo.backend_nic(b);
    sim::Executor& bexec = eng.domain(Topo::BackendDomain(b));
    for (int s = 0; s < cfg.shards; ++s) {
      const int core = 4 * s;
      auto stack = std::make_unique<net::NetStack>(bm, core, Topo::kVip,
                                                   Topo::BackendMac(b));
      stack->AddArp(Topo::kClientIp, Topo::ClientMac());
      stack->SetOutput([&bm, &bnic, core, s](Packet p) -> Task<> {
        co_await bm.Compute(core, kDriverFrameCost);
        (void)co_await bnic.DriverTxPush(core, std::move(p), s);
      });
      stack->SetSendRstForUnknown(true);
      auto server = std::make_unique<apps::HttpServer>(bm, *stack, 80, nullptr,
                                                       /*request_cost=*/60000);
      server->SetAdmission({/*workers=*/8, /*max_pending=*/32,
                            /*queue_deadline=*/5'000'000});
      bexec.Spawn(server->Serve());
      bexec.Spawn(ShardDriver(bm, bnic, *stack, s, core));
      stacks.push_back(std::move(stack));
      servers.push_back(std::move(server));
    }
  }

  Cycles first_view_change_at = 0;
  topo.membership().Subscribe([&](const cluster::ClusterView&, int) {
    if (first_view_change_at == 0) {
      first_view_change_at = eng.domain(Topo::kBalancerDomain).now();
    }
  });

  LoadStats st(cexec);
  cexec.Spawn(Generator(cexec, client, total, interval, cfg.mix, st));
  topo.Start(horizon);
  eng.Run();

  RackOutput out;
  out.final_now = eng.max_now();
  out.events = eng.events_dispatched();
  out.cross_messages = eng.cross_messages();
  out.launched = st.launched;
  out.completed = st.completed;
  out.shed = st.shed;
  out.retries = st.retries;
  out.fail_connect = st.fail_connect;
  out.fail_rst = st.fail_rst;
  out.fail_503 = st.fail_503;
  out.fail_other = st.fail_other;
  out.latencies = std::move(st.latencies);
  out.completions = std::move(st.completions);
  out.view_changes = topo.membership().view_changes();
  out.epoch = topo.membership().view().epoch;
  out.first_view_change_at = first_view_change_at;
  out.heartbeats = topo.membership().heartbeats_accepted();
  out.stale_beats = topo.membership().stale_dropped();
  out.steered = topo.balancer().steered();
  out.resteered = topo.balancer().resteered();
  out.mgmt_frames = topo.balancer().mgmt_frames();
  out.no_backend_drops = topo.balancer().no_backend_drops();
  out.balancer_tx_full = topo.balancer().tx_full_drops();
  out.fabric_forwarded = topo.fabric().forwarded();
  out.fabric_unknown_drops = topo.fabric().unknown_dst_drops();
  out.fabric_tx_full = topo.fabric().tx_full_drops();
  for (const auto& stk : stacks) {
    out.rsts_sent += stk->tcp_rsts_sent();
  }
  out.client_retx = client.tcp_retransmits();
  for (const auto& srv : servers) {
    out.shed_queue_full += srv->shed_queue_full();
    out.shed_deadline += srv->shed_deadline();
  }

  // Schedule digest: FNV-1a over every domain's final clock and event count
  // plus the workload ledger and each request latency. Any divergence in the
  // parallel schedule — one event reordered anywhere in the rack — changes
  // it, so printing it in the golden transcript makes the thread-invariance
  // gate (--threads=1 vs --threads=4 byte-compare) a real proof.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix64 = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (int d = 0; d < topo.num_domains(); ++d) {
    mix64(eng.domain(d).now());
    mix64(eng.domain(d).events_dispatched());
  }
  mix64(static_cast<std::uint64_t>(out.completed));
  mix64(static_cast<std::uint64_t>(out.shed));
  mix64(static_cast<std::uint64_t>(out.retries));
  mix64(out.cross_messages);
  mix64(out.steered);
  mix64(out.heartbeats);
  for (Cycles c : out.latencies) {
    mix64(c);
  }
  out.digest = h;

  if (std::getenv("RACK_DEBUG") != nullptr) {
    std::printf("[debug] fail causes: connect=%d rst=%d 503=%d other=%d\n",
                st.fail_connect, st.fail_rst, st.fail_503, st.fail_other);
    std::printf("[debug] membership: views=%llu first_death_at=%llu hb=%llu "
                "stale=%llu live=%d/%d\n",
                static_cast<unsigned long long>(out.view_changes),
                static_cast<unsigned long long>(out.first_view_change_at),
                static_cast<unsigned long long>(out.heartbeats),
                static_cast<unsigned long long>(out.stale_beats),
                topo.membership().view().NumLive(), topo.backends());
    std::printf("[debug] client nic: ");
    for (int q = 0; q < cnic.num_queues(); ++q) {
      const auto& qs = cnic.queue_stats(q);
      std::printf("q%d rx=%llu drop=%llu txfull=%llu  ", q,
                  static_cast<unsigned long long>(qs.rx_frames),
                  static_cast<unsigned long long>(qs.rx_drops()),
                  static_cast<unsigned long long>(qs.tx_ring_full));
    }
    std::printf("| client stack drops=%llu retx=%llu\n",
                static_cast<unsigned long long>(client.drops()),
                static_cast<unsigned long long>(client.tcp_retransmits()));
    std::printf("[debug] balancer nic: ");
    for (int q = 0; q < topo.balancer_nic().num_queues(); ++q) {
      const auto& qs = topo.balancer_nic().queue_stats(q);
      std::printf("q%d rx=%llu drop=%llu txfull=%llu  ", q,
                  static_cast<unsigned long long>(qs.rx_frames),
                  static_cast<unsigned long long>(qs.rx_drops()),
                  static_cast<unsigned long long>(qs.tx_ring_full));
    }
    std::printf("\n");
    for (int b = 0; b < cfg.machines; ++b) {
      std::printf("[debug] backend %d nic:", b);
      std::uint64_t rx = 0, drop = 0;
      for (int q = 0; q < topo.backend_nic(b).num_queues(); ++q) {
        const auto& qs = topo.backend_nic(b).queue_stats(q);
        rx += qs.rx_frames;
        drop += qs.rx_drops();
      }
      std::printf(" rx=%llu drop=%llu |", static_cast<unsigned long long>(rx),
                  static_cast<unsigned long long>(drop));
      for (int s = 0; s < cfg.shards; ++s) {
        const std::size_t i = static_cast<std::size_t>(b * cfg.shards + s);
        std::printf(" s%d served=%llu qf=%llu dl=%llu nl=%llu", s,
                    static_cast<unsigned long long>(servers[i]->requests_served()),
                    static_cast<unsigned long long>(servers[i]->shed_queue_full()),
                    static_cast<unsigned long long>(servers[i]->shed_deadline()),
                    static_cast<unsigned long long>(stacks[i]->drops_no_listener()));
      }
      std::printf("\n");
    }
    std::printf("[debug] switch port nics:");
    for (int p = 0; p < topo.fabric().num_ports(); ++p) {
      const auto& pn = topo.fabric().port_nic(p);
      std::uint64_t rx = 0, drop = 0, txfull = 0;
      for (int q = 0; q < pn.num_queues(); ++q) {
        rx += pn.queue_stats(q).rx_frames;
        drop += pn.queue_stats(q).rx_drops();
        txfull += pn.queue_stats(q).tx_ring_full;
      }
      std::printf(" p%d rx=%llu drop=%llu txfull=%llu", p,
                  static_cast<unsigned long long>(rx),
                  static_cast<unsigned long long>(drop),
                  static_cast<unsigned long long>(txfull));
    }
    std::printf("\n");
  }

  if (inj != nullptr) {
    if (print_activations) {
      inj->PrintActivationTable();
    }
    out.specs_activated = inj->AllSpecsActivated();
    inj->Uninstall();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reporting

std::vector<int> Bucketize(const RackOutput& r, Cycles window) {
  std::vector<int> buckets(static_cast<std::size_t>(window / kBucket), 0);
  for (Cycles c : r.completions) {
    const std::size_t b = static_cast<std::size_t>(c / kBucket);
    if (b < buckets.size()) {
      ++buckets[b];
    }
  }
  return buckets;
}

void PrintBuckets(const std::vector<int>& buckets) {
  std::printf("completions per %.1fM-cycle bucket:\n",
              static_cast<double>(kBucket) / 1e6);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::printf("%4d%s", buckets[b], (b + 1) % 10 == 0 ? "\n" : " ");
  }
  if (buckets.size() % 10 != 0) {
    std::printf("\n");
  }
}

// Same mean-based recovery rule as sec54_failover, but the sustained-mean
// threshold is the (N-1)/N share the surviving machines can at best carry if
// the re-steered load saturated them (they do not saturate at this bench's
// offered load, so recovery in practice returns to ~the full rate).
struct Recovery {
  double prekill = 0;
  double threshold = 0;
  bool recovered = false;
  Cycles window = 0;
};

Recovery AnalyzeRecovery(const std::vector<int>& buckets, Cycles kill_at,
                         double frac) {
  Recovery r;
  const std::size_t kill_bucket = static_cast<std::size_t>(kill_at / kBucket);
  const std::size_t last = buckets.empty() ? 0 : buckets.size() - 1;
  if (kill_bucket < 2 || kill_bucket >= last) {
    return r;
  }
  for (std::size_t b = 1; b < kill_bucket; ++b) {
    r.prekill += buckets[b];
  }
  r.prekill /= static_cast<double>(kill_bucket - 1);
  r.threshold = r.prekill * frac;
  for (std::size_t b = kill_bucket; b < last; ++b) {
    double sum = 0;
    bool hole = false;
    for (std::size_t b2 = b; b2 < last; ++b2) {
      sum += buckets[b2];
      if (buckets[b2] < r.prekill / 2.0) {
        hole = true;
      }
    }
    if (!hole && sum / static_cast<double>(last - b) >= r.threshold) {
      r.recovered = true;
      r.window = static_cast<Cycles>(b + 1) * kBucket - kill_at;
      return r;
    }
  }
  return r;
}

bool SameRun(const RackOutput& a, const RackOutput& b) {
  return a.digest == b.digest && a.final_now == b.final_now &&
         a.events == b.events && a.completed == b.completed &&
         a.shed == b.shed && a.retries == b.retries &&
         a.latencies == b.latencies && a.view_changes == b.view_changes &&
         a.rsts_sent == b.rsts_sent && a.steered == b.steered;
}

Cycles Percentile(std::vector<Cycles> v, int p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) * static_cast<std::size_t>(p) / 100];
}

void PrintCounters(const RackOutput& r) {
  std::printf("%-26s %d launched, %d completed, %d shed, %d retries\n",
              "requests:", r.launched, r.completed, r.shed, r.retries);
  std::printf("%-26s %llu committed (epoch %llu), first at %llu\n",
              "view changes:", static_cast<unsigned long long>(r.view_changes),
              static_cast<unsigned long long>(r.epoch),
              static_cast<unsigned long long>(r.first_view_change_at));
  std::printf("%-26s %llu steered, %llu re-steered, %llu RSTs from survivors\n",
              "flow steering:", static_cast<unsigned long long>(r.steered),
              static_cast<unsigned long long>(r.resteered),
              static_cast<unsigned long long>(r.rsts_sent));
  std::printf("%-26s %llu accepted, %llu stale dropped\n", "heartbeats:",
              static_cast<unsigned long long>(r.heartbeats),
              static_cast<unsigned long long>(r.stale_beats));
  std::printf("%-26s %llu forwarded, %llu unknown-MAC, %llu ring-full\n",
              "fabric:", static_cast<unsigned long long>(r.fabric_forwarded),
              static_cast<unsigned long long>(r.fabric_unknown_drops),
              static_cast<unsigned long long>(r.fabric_tx_full));
  std::printf("%-26s %llu queue-full, %llu deadline\n", "admission sheds:",
              static_cast<unsigned long long>(r.shed_queue_full),
              static_cast<unsigned long long>(r.shed_deadline));
}

// ---------------------------------------------------------------------------
// Modes

int RunSweep(bench::TraceSession& session, bool quick, int max_machines,
             int threads) {
  bench::PrintHeader(
      quick ? "Rack serving: machine sweep, 4 shards/machine on 4x4 AMD (quick)"
            : "Rack serving: machine sweep, 8 shards/machine on 8x4 AMD");
  std::vector<int> machine_counts = {1};
  while (machine_counts.back() * 2 <= max_machines) {
    machine_counts.push_back(machine_counts.back() * 2);
  }
  if (machine_counts.back() != max_machines) {
    machine_counts.push_back(max_machines);
  }

  std::printf("%9s %9s %9s %6s %8s %10s %8s %9s %9s  %16s\n", "machines",
              "launched", "completed", "shed", "retries", "req/Mcyc", "speedup",
              "p50(k)", "p99(k)", "digest");
  bool ok = true;
  double base_rate = 0;
  double last_speedup = 0;
  for (int n : machine_counts) {
    session.BeginRun("sweep-" + std::to_string(n));
    const RackConfig cfg = MakeConfig(quick, n, threads);
    const RackOutput r = RunRack(cfg, nullptr, false);
    const Cycles window =
        static_cast<Cycles>(cfg.rps) * cfg.mix.interval_per_shard;
    const double rate =
        static_cast<double>(r.completed) * 1e6 / static_cast<double>(window);
    if (n == 1) {
      base_rate = rate;
    }
    const double speedup = base_rate > 0 ? rate / base_rate : 0;
    if (n == machine_counts.back()) {
      last_speedup = speedup;
    }
    std::printf("%9d %9d %9d %6d %8d %10.2f %7.2fx %9llu %9llu  %016llx\n", n,
                r.launched, r.completed, r.shed, r.retries, rate, speedup,
                static_cast<unsigned long long>(Percentile(r.latencies, 50) / 1000),
                static_cast<unsigned long long>(Percentile(r.latencies, 99) / 1000),
                static_cast<unsigned long long>(r.digest));
    std::printf("          fabric fwd=%llu drop=%llu | balancer steered=%llu "
                "resteer=%llu drop=%llu | hb=%llu | client retx=%llu\n",
                static_cast<unsigned long long>(r.fabric_forwarded),
                static_cast<unsigned long long>(r.fabric_unknown_drops +
                                                r.fabric_tx_full),
                static_cast<unsigned long long>(r.steered),
                static_cast<unsigned long long>(r.resteered),
                static_cast<unsigned long long>(r.no_backend_drops +
                                                r.balancer_tx_full),
                static_cast<unsigned long long>(r.heartbeats),
                static_cast<unsigned long long>(r.client_retx));
    // Zero unexplained drops: every launched request completed, nothing
    // shed, no recovery machinery touched, no frame lost anywhere.
    const bool clean = r.completed == r.launched && r.shed == 0 &&
                       r.retries == 0 && r.view_changes == 0 &&
                       r.resteered == 0 && r.rsts_sent == 0 &&
                       r.fabric_unknown_drops == 0 && r.fabric_tx_full == 0 &&
                       r.no_backend_drops == 0 && r.balancer_tx_full == 0 &&
                       r.client_retx == 0;
    if (!clean) {
      std::printf("          UNEXPECTED LOSS OR RECOVERY ACTIVITY at %d machines\n", n);
      ok = false;
    }
  }
  const double ideal = static_cast<double>(machine_counts.back());
  const bool linear = last_speedup >= 0.95 * ideal;
  std::printf("%-26s %.2fx at %d machines (ideal %.0fx) — %s\n",
              "aggregate scaling:", last_speedup, machine_counts.back(), ideal,
              linear ? "near-linear" : "NOT LINEAR");
  ok = ok && linear;
  std::printf("%-26s %s\n", "verdict:", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunKill(bench::TraceSession& session, bool quick, int machines, int threads,
            int victim) {
  if (victim < 0 || victim >= machines) {
    std::fprintf(stderr, "--kill=%d out of range (0..%d)\n", victim,
                 machines - 1);
    return 2;
  }
  if (machines < 2) {
    std::fprintf(stderr, "--kill needs --machines>=2 (survivors must exist)\n");
    return 2;
  }
  const RackConfig cfg = MakeConfig(quick, machines, threads);
  bench::PrintHeader("Rack serving: kill machine " + std::to_string(victim) +
                     " (all " + std::to_string(cfg.backend_spec.num_cores()) +
                     " cores) at t0+" + std::to_string(kKillOffset) +
                     " cycles, " + std::to_string(machines) + " machines");
  fault::FaultPlan plan;
  plan.HaltMachine(Topo::BackendDomain(victim), kKillOffset);

  session.BeginRun("kill-run1");
  const RackOutput a = RunRack(cfg, &plan, true);
  session.BeginRun("kill-run2");
  const RackOutput b = RunRack(cfg, &plan, false);

  const Cycles window = static_cast<Cycles>(cfg.rps) * cfg.mix.interval_per_shard;
  const std::vector<int> buckets = Bucketize(a, window);
  PrintBuckets(buckets);
  PrintCounters(a);
  std::printf("%-26s connect=%d rst=%d 503=%d other=%d\n", "attempt failures:",
              a.fail_connect, a.fail_rst, a.fail_503, a.fail_other);

  const double frac = static_cast<double>(machines - 1) /
                      static_cast<double>(machines);
  const Recovery rec = AnalyzeRecovery(buckets, kKillOffset, frac);
  std::printf("%-26s %.1f/bucket pre-kill mean, threshold %.1f (>= %d/%d of it)\n",
              "recovery target:", rec.prekill, rec.threshold, machines - 1,
              machines);
  if (rec.recovered) {
    std::printf("%-26s sustained mean >= %.1f/bucket within %llu cycles of the kill\n",
                "recovery window:", rec.threshold,
                static_cast<unsigned long long>(rec.window));
  } else {
    std::printf("%-26s NEVER RECOVERED\n", "recovery window:");
  }

  const bool no_loss = a.completed + a.shed == a.launched;
  const bool deterministic = SameRun(a, b);
  std::printf("%-26s %s\n", "committed-work ledger:",
              no_loss ? "completed + shed == launched" : "REQUESTS LOST");
  std::printf("%-26s %s (run 1: %016llx, run 2: %016llx)\n",
              "replay bit-identical:", deterministic ? "yes" : "NO",
              static_cast<unsigned long long>(a.digest),
              static_cast<unsigned long long>(b.digest));
  const bool ok = rec.recovered && no_loss && deterministic &&
                  a.view_changes == 1 && a.epoch == 2 && a.resteered > 0 &&
                  a.rsts_sent > 0 && a.specs_activated &&
                  a.first_view_change_at > kKillOffset;
  std::printf("%-26s %s\n", "verdict:", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunChaos(bench::TraceSession& session, bool quick, int machines,
             int threads, std::uint64_t seed) {
  if (machines < 2) {
    std::fprintf(stderr, "--chaos-seed needs --machines>=2\n");
    return 2;
  }
  RackConfig cfg = MakeConfig(quick, machines, threads);
  cfg.rps = quick ? 16 : 24;
  bench::PrintHeader("Rack serving: chaos plan, seed " + std::to_string(seed) +
                     ", " + std::to_string(machines) + " machines");

  // The seeded plan: one whole-machine kill plus cross-machine link faults
  // on pairs that are guaranteed to carry traffic — a bounded frame-drop
  // burst on the client uplink and a latency-spike window toward one of the
  // surviving backends (so every spec must activate).
  sim::Rng rng(seed);
  fault::FaultPlan plan;
  const int victim = static_cast<int>(rng.Below(static_cast<std::uint64_t>(machines)));
  const Cycles kill_at = 800'000 + static_cast<Cycles>(rng.Below(1'200'000));
  plan.HaltMachine(Topo::BackendDomain(victim), kill_at);
  const Cycles drop_at = 300'000 + static_cast<Cycles>(rng.Below(1'000'000));
  const int drop_n = 1 + static_cast<int>(rng.Below(3));
  plan.DropWireFrames(Topo::kClientDomain, Topo::kSwitchDomain, drop_at, drop_n);
  const int spiked = (victim + 1 +
                      static_cast<int>(rng.Below(static_cast<std::uint64_t>(machines - 1)))) %
                     machines;
  const Cycles spike_at = 300'000 + static_cast<Cycles>(rng.Below(1'200'000));
  const Cycles spike_extra = 20'000 + static_cast<Cycles>(rng.Below(30'000));
  plan.WireDelay(Topo::kSwitchDomain, Topo::BackendDomain(spiked), spike_extra,
                 spike_at, spike_at + 2'000'000);

  std::printf("chaos plan: halt machine %d (domain %d) at t0+%llu\n", victim,
              Topo::BackendDomain(victim),
              static_cast<unsigned long long>(kill_at));
  std::printf("chaos plan: drop %d frame(s) client->switch from t0+%llu\n",
              drop_n, static_cast<unsigned long long>(drop_at));
  std::printf("chaos plan: +%llu cycles switch->machine %d in [t0+%llu, t0+%llu)\n",
              static_cast<unsigned long long>(spike_extra), spiked,
              static_cast<unsigned long long>(spike_at),
              static_cast<unsigned long long>(spike_at + 2'000'000));
  std::printf("replay with: rack_serving %s--machines=%d --chaos-seed=%llu\n",
              quick ? "--quick " : "", machines,
              static_cast<unsigned long long>(seed));

  session.BeginRun("chaos");
  const RackOutput r = RunRack(cfg, &plan, true);
  PrintCounters(r);

  struct Check {
    const char* name;
    bool ok;
  } checks[] = {
      {"ledger balances", r.completed + r.shed == r.launched},
      {"majority served", r.completed * 2 >= r.launched},
      {"kill became a view change", r.view_changes == 1 && r.epoch == 2},
      {"survivor heartbeats accepted", r.heartbeats > 0},
      {"dead machine's flows re-steered", r.resteered > 0},
      {"no unroutable frames", r.fabric_unknown_drops == 0},
      {"every fault spec fired", r.specs_activated},
  };
  bool ok = true;
  for (const Check& c : checks) {
    std::printf("%-32s %s\n", c.name, c.ok ? "ok" : "FAIL");
    ok = ok && c.ok;
  }
  if (!ok) {
    std::printf("chaos FAIL: reproduce with seed %llu (plan above)\n",
                static_cast<unsigned long long>(seed));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  const int threads = bench::ParseThreadsFlag(argc, argv);
  const int machines_flag = bench::ParseMachinesFlag(argc, argv, 0);  // 0 = pick by mode
  bench::TraceSession session(trace_flags);
  bool quick = false;
  bool kill = false;
  int victim = 1;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--kill") == 0) {
      kill = true;
    } else if (std::strncmp(arg, "--kill=", 7) == 0) {
      kill = true;
      victim = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(arg + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: rack_serving [--quick] [--machines=N] [--threads=N] "
                   "[--kill[=M]] [--chaos-seed=N]\n");
      return 2;
    }
  }
  const int machines = machines_flag != 0 ? machines_flag : (quick ? 2 : 4);
  int rc = 0;
  if (chaos) {
    rc = RunChaos(session, quick, machines, threads, chaos_seed);
  } else if (kill) {
    rc = RunKill(session, quick, machines, threads, victim);
  } else {
    rc = RunSweep(session, quick, machines, threads);
  }
  return rc;
}
