// Table 4: IP loopback performance on the 2x2-core AMD system.
//
// A UDP packet generator on core 0 sends 1000-byte-payload packets to a sink
// on core 2 (a different socket). Barrelfish connects two user-space stacks
// point-to-point with URPC (descriptor message + payload buffer); the
// baseline is an in-kernel shared-queue stack (syscalls, queue lock, kernel
// buffer copies). Reported: application-level throughput, D-cache misses per
// packet, and HyperTransport traffic per packet and link utilization in each
// direction.
#include <cstdio>

#include "baseline/shared_netstack.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/executor.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr int kGenCore = 0;   // package 0
constexpr int kSinkCore = 2;  // package 1 (different socket)
constexpr std::size_t kPayload = 1000;
constexpr int kPackets = 1500;
constexpr net::Ipv4Addr kGenIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kSinkIp = net::MakeIp(10, 0, 0, 2);

struct Results {
  double mbit_per_s = 0;
  double dcache_misses_per_packet = 0;
  double fwd_dwords_per_packet = 0;   // source -> sink
  double rev_dwords_per_packet = 0;   // sink -> source
  double fwd_utilization = 0;
  double rev_utilization = 0;
};

Results Finish(hw::Machine& m, Cycles elapsed) {
  Results r;
  double seconds = static_cast<double>(elapsed) / (m.spec().clock_ghz * 1e9);
  r.mbit_per_s = kPackets * kPayload * 8.0 / seconds / 1e6;
  auto total = m.counters().Total();
  r.dcache_misses_per_packet = static_cast<double>(total.cache_misses) / kPackets;
  r.fwd_dwords_per_packet = static_cast<double>(m.counters().link_dwords(0, 1)) / kPackets;
  r.rev_dwords_per_packet = static_cast<double>(m.counters().link_dwords(1, 0)) / kPackets;
  double dword_cycles = m.cost().cycles_per_dword;
  r.fwd_utilization =
      static_cast<double>(m.counters().link_dwords(0, 1)) * dword_cycles / elapsed;
  r.rev_utilization =
      static_cast<double>(m.counters().link_dwords(1, 0)) * dword_cycles / elapsed;
  return r;
}

Task<> BarrelfishGen(net::NetStack& stack, int packets) {
  std::vector<std::uint8_t> payload(kPayload, 0x42);
  for (int i = 0; i < packets; ++i) {
    co_await stack.UdpSendTo(1234, kSinkIp, 7, payload);
  }
}

Task<> BarrelfishPump(net::PacketChannel& ch, net::NetStack& sink, int packets) {
  for (int i = 0; i < packets; ++i) {
    Packet p = co_await ch.Recv();
    co_await sink.Input(std::move(p));
  }
}

Task<> BarrelfishSink(net::NetStack::UdpSocket& sock, int packets) {
  for (int i = 0; i < packets; ++i) {
    (void)co_await sock.Recv();  // read and discard
  }
}

Results RunBarrelfish() {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  net::NetStack gen(m, kGenCore, kGenIp, {2, 0, 0, 0, 0, 1});
  net::NetStack sink(m, kSinkCore, kSinkIp, {2, 0, 0, 0, 0, 2});
  gen.AddArp(kSinkIp, {2, 0, 0, 0, 0, 2});
  net::PacketChannel ch(m, kGenCore, kSinkCore, net::PacketChannel::Options{});
  gen.SetOutput([&ch](Packet p) -> Task<> { co_await ch.Send(std::move(p)); });
  auto& sock = sink.UdpBind(7);
  exec.Spawn(BarrelfishGen(gen, kPackets));
  exec.Spawn(BarrelfishPump(ch, sink, kPackets));
  exec.Spawn(BarrelfishSink(sock, kPackets));
  Cycles elapsed = exec.Run();
  return Finish(m, elapsed);
}

Task<> LinuxGen(hw::Machine& m, baseline::SharedKernelLoopback& loop, int packets) {
  // The kernel stack builds the frame; the generator hands over the payload.
  net::EthHeader eth;
  net::IpHeader ip;
  ip.src = kGenIp;
  ip.dst = kSinkIp;
  std::vector<std::uint8_t> payload(kPayload, 0x42);
  for (int i = 0; i < packets; ++i) {
    Packet frame =
        net::BuildUdpFrame(eth, ip, net::UdpHeader{1234, 7, 0}, payload.data(),
                           payload.size());
    co_await loop.Send(kGenCore, std::move(frame));
  }
  (void)m;
}

Task<> LinuxSink(baseline::SharedKernelLoopback& loop, int packets) {
  for (int i = 0; i < packets; ++i) {
    (void)co_await loop.Recv(kSinkCore);
  }
}

Results RunLinux() {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd2x2());
  baseline::SharedKernelLoopback loop(m);
  exec.Spawn(LinuxGen(m, loop, kPackets));
  exec.Spawn(LinuxSink(loop, kPackets));
  Cycles elapsed = exec.Run();
  return Finish(m, elapsed);
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Table 4: IP loopback on 2x2-core AMD (1000-byte UDP payloads)");
  Results bf = RunBarrelfish();
  Results lx = RunLinux();
  std::printf("%-44s %12s %12s %18s\n", "", "Barrelfish", "Linux", "paper (BF / Linux)");
  std::printf("%-44s %12.0f %12.0f %18s\n", "Throughput (Mbit/s)", bf.mbit_per_s,
              lx.mbit_per_s, "2154 / 1823");
  std::printf("%-44s %12.1f %12.1f %18s\n", "Dcache misses per packet",
              bf.dcache_misses_per_packet, lx.dcache_misses_per_packet, "21 / 77");
  std::printf("%-44s %12.0f %12.0f %18s\n", "source->sink HT traffic per packet (dwords)",
              bf.fwd_dwords_per_packet, lx.fwd_dwords_per_packet, "467 / 657");
  std::printf("%-44s %12.0f %12.0f %18s\n", "sink->source HT traffic per packet (dwords)",
              bf.rev_dwords_per_packet, lx.rev_dwords_per_packet, "188 / 550");
  std::printf("%-44s %11.0f%% %11.0f%% %18s\n", "source->sink HT link utilization",
              bf.fwd_utilization * 100, lx.fwd_utilization * 100, "8% / 11%");
  std::printf("%-44s %11.0f%% %11.0f%% %18s\n", "sink->source HT link utilization",
              bf.rev_utilization * 100, lx.rev_utilization * 100, "3% / 9%");
  std::printf(
      "\nShape: URPC loopback beats the shared-queue kernel stack on throughput while\n"
      "touching fewer cache lines and moving less interconnect traffic, especially in\n"
      "the reverse (sink->source) direction, because nothing but the channel and the\n"
      "payload is shared.\n");
  return 0;
}
