// Table 2: URPC single-message latency and sustained pipelined throughput
// (queue length 16) for each cache relationship on the four paper platforms.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using sim::Cycles;
using sim::Task;

// Latency: steady-state single-message latency. The channel is warmed first
// (every ring slot touched by both sides) and messages are spaced out so no
// pipelining occurs, as in the paper's single-message measurement. The sender
// timestamps each message; the receiver measures send-start to
// receive-complete.
Task<> LatencySender(hw::Machine& m, urpc::Channel& ch, int total) {
  for (int i = 0; i < total; ++i) {
    co_await ch.Send(urpc::Pack(0, m.exec().now()));
    co_await m.exec().Delay(10000);  // idle gap: one message in flight at a time
  }
}

Task<> LatencyReceiver(hw::Machine& m, urpc::Channel& ch, int warmup, int measured,
                       sim::RunningStat& stat) {
  for (int i = 0; i < warmup + measured; ++i) {
    urpc::Message msg = co_await ch.Recv();
    if (i >= warmup) {
      Cycles sent_at = urpc::Unpack<Cycles>(msg);
      stat.Add(static_cast<double>(m.exec().now() - sent_at));
    }
  }
}

Cycles MeasureLatency(const hw::PlatformSpec& spec, int sender, int receiver) {
  sim::Executor exec;
  hw::Machine m(exec, spec);
  urpc::Channel ch(m, sender, receiver);
  const int kWarmup = 2 * ch.options().slots;  // warm every ring slot
  const int kMeasured = 50;
  sim::RunningStat stat;
  exec.Spawn(LatencySender(m, ch, kWarmup + kMeasured));
  exec.Spawn(LatencyReceiver(m, ch, kWarmup, kMeasured, stat));
  exec.Run();
  return static_cast<Cycles>(stat.mean());
}

Task<> StreamSend(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch.SendPosted(urpc::Message{});
  }
}

Task<> StreamRecv(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.Recv();
  }
}

// Throughput: pipelined stream with a queue length of 16 messages.
double MeasureThroughput(const hw::PlatformSpec& spec, int sender, int receiver) {
  sim::Executor exec;
  hw::Machine m(exec, spec);
  urpc::ChannelOptions opts;
  opts.slots = 16;
  urpc::Channel ch(m, sender, receiver, opts);
  const int kMessages = 4000;
  exec.Spawn(StreamSend(ch, kMessages));
  exec.Spawn(StreamRecv(ch, kMessages));
  Cycles elapsed = exec.Run();
  return 1000.0 * kMessages / static_cast<double>(elapsed);
}

struct Row {
  const char* platform;
  const char* cache;
  int sender;
  int receiver;
  double paper_latency;
  double paper_throughput;
};

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  // Receiver cores chosen per platform so the pair has the row's cache
  // relationship (see hw/platform.cc topologies).
  std::vector<Row> rows = {
      {"2x4-core Intel", "shared", 0, 1, 180, 11.97},
      {"2x4-core Intel", "non-shared", 0, 4, 570, 3.78},
      {"2x2-core AMD", "same die", 0, 1, 450, 3.42},
      {"2x2-core AMD", "one-hop", 0, 2, 532, 3.19},
      {"4x4-core AMD", "shared", 0, 1, 448, 3.57},
      {"4x4-core AMD", "one-hop", 0, 4, 545, 3.53},
      {"4x4-core AMD", "two-hop", 0, 12, 558, 3.51},
      {"8x4-core AMD", "shared", 0, 1, 538, 2.77},
      {"8x4-core AMD", "one-hop", 0, 4, 613, 2.79},
      {"8x4-core AMD", "two-hop", 0, 12, 618, 2.75},
  };
  bench::PrintHeader("Table 2: URPC performance (latency cycles; throughput msgs/kcycle)");
  std::printf("%-18s %-11s %9s %9s %12s %12s\n", "System", "Cache", "lat", "paper", "tput",
              "paper");
  auto platforms = hw::PaperPlatforms();
  for (const auto& row : rows) {
    const hw::PlatformSpec* spec = nullptr;
    for (const auto& p : platforms) {
      if (p.name == row.platform) {
        spec = &p;
      }
    }
    Cycles lat = MeasureLatency(*spec, row.sender, row.receiver);
    double tput = MeasureThroughput(*spec, row.sender, row.receiver);
    std::printf("%-18s %-11s %9llu %9.0f %12.2f %12.2f\n", row.platform, row.cache,
                static_cast<unsigned long long>(lat), row.paper_latency, tput,
                row.paper_throughput);
  }
  return 0;
}
