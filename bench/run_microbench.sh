#!/usr/bin/env bash
# Builds and runs the wall-time microbenchmarks (bench/microbench.cc),
# writing google-benchmark's JSON report to BENCH_microbench.json at the
# repo root (and the usual human-readable table to stdout).
#
# Extra arguments pass through to the benchmark binary, e.g.:
#   bench/run_microbench.sh --benchmark_filter=BM_Executor.*
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target microbench

./build/bench/microbench \
  --benchmark_out=BENCH_microbench.json \
  --benchmark_out_format=json \
  "$@"
