// Read-write partitioned store under a TPC-W-like browse-buy mix.
//
// sec54_failover scales and fails over a *read-only* data tier; this bench
// drives the read-write one (apps/store): per-shard leader/follower replica
// groups, a WAL on the replicated fs, leader->follower log shipping, and
// commit only after follower durability. The browse leg (80%) is the TPC-W
// item-detail SELECT served leader-locally; the buy leg (20%) is an INSERT
// into a per-shard orders partition, routed by client write id (wid % shards)
// so retries at any layer land on the same group and dedup exactly-once.
//
// The committed-work ledger is exact: every acked buy ("ok <lsn>" or "dup")
// inserted exactly one orders row on its group's leader, every live caught-up
// follower holds the same rows and the same distinct-wid set, and rows can
// exceed acks only by writes that committed while their HTTP ack was lost to
// a fault (bounded by the shed count). Lost writes and double-applied writes
// are both ledger violations.
//
// Modes:
//   (none)            no-fault shard sweep 1/2/4; deterministic (golden)
//   --kill-leader[=K] halt shard K's leader replica core at t0+4M; the
//                     most-caught-up follower is promoted (term = membership
//                     epoch), the WAL suffix is truncated, a replacement
//                     respawns on the spare and catches up from the log;
//                     throughput recovers within a printed window and the
//                     run replays bit-identically
//   --chaos-seed=N    1-2 seeded replica kills (leader or follower, distinct
//                     shards) composed with random NIC frame loss and an
//                     interconnect latency spike; invariants, not thresholds
//   --quick           4x4 machine, 2 shards, shorter run (CI soak)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "apps/httpd.h"
#include "apps/store.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "fs/ramfs.h"
#include "fs/wal.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/nic.h"
#include "net/stack.h"
#include "recover/config.h"
#include "recover/recover.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 77);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 77};

constexpr Cycles kDriverFrameCost = 1400;
// Smaller catalog than sec54 (8k items, ~200k-cycle browse scan) so the
// leader core has headroom for the write path on top of the read mix.
constexpr int kDbItems = 8000;
constexpr Cycles kKillOffset = 4'000'000;
constexpr Cycles kBucket = 2'000'000;

// One scheduled fail-stop kill of a replica core. slot 0 is the boot leader,
// slot 1 the follower. Web cores are never killed here: a shard's web core is
// its WAL's fs sequencer (the log's ordering authority), and web-core
// failover is sec54_failover's story — this bench isolates the data tier's.
struct Kill {
  int shard = 0;
  int slot = 0;
  Cycles at = kKillOffset;
};

// Chaos extras composed with the kills, offsets relative to t0.
struct ExtraFaults {
  double rx_loss = 0;
  double tx_loss = 0;
  std::uint64_t seed = 0;
  Cycles link_spike_extra = 0;
  Cycles link_spike_at = 0;
};

// Offered load sits well below the leader core's capacity (the browse scan
// costs ~205k cycles; at 400k/shard and 80% browse the leader runs ~45%
// utilized including the write path), leaving recovery headroom: a promoted
// follower must absorb the backlog the outage queued.
struct Mix {
  Cycles interval_per_shard = 400'000;
  Cycles attempt_timeout = 8'000'000;
  Cycles request_deadline = 30'000'000;
};

net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

struct System {
  explicit System(const hw::PlatformSpec& spec)
      : machine(exec, spec), drivers(CpuDriver::BootAll(machine)), skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

struct LoadStats {
  explicit LoadStats(sim::Executor& exec, int shards)
      : acked_per_shard(static_cast<std::size_t>(shards), 0),
        buys_per_shard(static_cast<std::size_t>(shards), 0), all_done(exec) {}
  int launched = 0;
  int completed = 0;
  int shed = 0;
  int retries = 0;
  int buys_launched = 0;
  int buys_acked = 0;   // body was "ok <lsn>" or "dup"
  int buys_errored = 0; // HTTP 200 but the store reported an error
  std::vector<int> acked_per_shard;
  std::vector<int> buys_per_shard;
  int outstanding = 0;
  bool launching_done = false;
  bool finished = false;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;
  sim::Event all_done;
};

bool FullOkResponse(const std::string& resp) {
  if (resp.rfind("HTTP/1.0 200", 0) != 0) {
    return false;
  }
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    return false;
  }
  const std::size_t cl = resp.find("Content-Length: ");
  if (cl == std::string::npos || cl > hdr_end) {
    return false;
  }
  const std::size_t len = std::strtoul(resp.c_str() + cl + 16, nullptr, 10);
  return resp.size() - (hdr_end + 4) >= len;
}

std::string ResponseBody(const std::string& resp) {
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  return hdr_end == std::string::npos ? std::string() : resp.substr(hdr_end + 4);
}

// One HTTP request, open loop, client-side retry on RST/timeout/truncation.
// A retried buy re-sends the same URL — the same wid — which is what makes
// the end-to-end path exactly-once: the store answers "dup" for a write that
// committed before its ack was lost.
Task<> OneRequest(sim::Executor& exec, net::NetStack& client, std::string target,
                  bool is_buy, int owner_shard, const Mix& mix, LoadStats& st) {
  const Cycles start = exec.now();
  const Cycles deadline = start + mix.request_deadline;
  ++st.outstanding;
  bool ok = false;
  std::string body;
  bool first_attempt = true;
  Cycles backoff = 100'000;
  while (!ok && exec.now() < deadline) {
    if (!first_attempt) {
      ++st.retries;
      co_await exec.Delay(std::min(backoff, deadline - exec.now()));
      backoff = std::min<Cycles>(backoff * 2, 400'000);
      if (exec.now() >= deadline) {
        break;
      }
    }
    first_attempt = false;
    const Cycles attempt_deadline =
        std::min(deadline, exec.now() + mix.attempt_timeout);
    net::NetStack::TcpConn* conn =
        co_await client.TcpConnect(kServerIp, 80, attempt_deadline - exec.now());
    if (conn == nullptr) {
      continue;
    }
    co_await client.TcpSend(*conn, "GET " + target + " HTTP/1.0\r\n\r\n");
    std::string resp;
    while (true) {
      while (!conn->rx.empty()) {
        resp.push_back(static_cast<char>(conn->rx.front()));
        conn->rx.pop_front();
      }
      if (conn->peer_closed && FullOkResponse(resp)) {
        ok = true;
        body = ResponseBody(resp);
        break;
      }
      if (conn->peer_closed) {
        break;  // RST, shed, or truncation: retry
      }
      const Cycles now = exec.now();
      if (now >= attempt_deadline) {
        break;
      }
      co_await conn->readable.WaitTimeout(attempt_deadline - now);
    }
    co_await client.TcpClose(*conn);
  }
  if (ok) {
    ++st.completed;
    st.latencies.push_back(exec.now() - start);
    st.completions.push_back(exec.now());
    if (is_buy) {
      if (body.rfind("ok ", 0) == 0 || body == "dup") {
        ++st.buys_acked;
        ++st.acked_per_shard[static_cast<std::size_t>(owner_shard)];
      } else {
        ++st.buys_errored;
      }
    }
  } else {
    ++st.shed;
  }
  --st.outstanding;
  if (st.launching_done && st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

Task<> Generator(sim::Executor& exec, net::NetStack& client, int total,
                 Cycles interval, int shards, const Mix& mix, LoadStats& st,
                 std::uint64_t seed) {
  sim::Rng prng(seed);
  std::uint64_t next_wid = 0;
  for (int i = 0; i < total; ++i) {
    const bool buy = prng.Below(5) == 0;  // 20% buys
    std::string target;
    int owner = -1;
    if (buy) {
      const std::uint64_t wid = ++next_wid;
      const int item = static_cast<int>(prng.Below(kDbItems));
      const int qty = 1 + static_cast<int>(prng.Below(5));
      owner = static_cast<int>(wid % static_cast<std::uint64_t>(shards));
      std::string sql = "INSERT INTO orders VALUES (" + std::to_string(wid) +
                        ", " + std::to_string(item) + ", " + std::to_string(qty) +
                        ")";
      for (char& ch : sql) {
        if (ch == ' ') {
          ch = '+';
        }
      }
      target = "/buy?wid=" + std::to_string(wid) + "&sql=" + sql;
      ++st.buys_launched;
      ++st.buys_per_shard[static_cast<std::size_t>(owner)];
    } else {
      std::string sql = apps::TpcwQuery(static_cast<int>(prng.Below(kDbItems)));
      for (char& ch : sql) {
        if (ch == ' ') {
          ch = '+';
        }
      }
      target = "/query?sql=" + sql;
    }
    ++st.launched;
    exec.Spawn(OneRequest(exec, client, std::move(target), buy, owner, mix, st));
    co_await exec.Delay(interval);
  }
  st.launching_done = true;
  if (st.outstanding == 0) {
    st.finished = true;
    st.all_done.Signal();
  }
}

Task<> ShardDriver(hw::Machine& m, net::SimNic& nic, net::NetStack& stack,
                   int queue, int core, const bool* stop) {
  while (!*stop) {
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(core, m.exec().now())) {
      co_return;
    }
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await m.Compute(core, kDriverFrameCost);
        co_await stack.Input(std::move(*frame));
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      if (co_await nic.rx_irq(queue).WaitTimeout(20000) && !*stop) {
        co_await m.Trap(core);
      }
    }
  }
}

Task<> WireSink(net::SimNic& nic, net::NetStack& client, const bool* stop) {
  while (!*stop) {
    Packet p;
    while (nic.WirePop(&p)) {
      co_await client.Input(std::move(p));
    }
    if (!*stop) {
      co_await nic.wire_out_ready().Wait();
    }
  }
}

Task<> Supervisor(monitor::MonitorSystem& sys, net::SimNic& nic, LoadStats& st,
                  bool* stop, apps::ReplicatedStore& store) {
  while (!st.finished) {
    co_await st.all_done.Wait();
  }
  *stop = true;
  nic.wire_out_ready().Signal();
  co_await store.Shutdown();
  sys.Shutdown();
}

struct ShardLedger {
  std::uint64_t leader_rows = 0;
  std::uint64_t leader_wids = 0;
  int acked = 0;
  int buys = 0;
  bool replicas_agree = true;  // rows and wid sets equal on live caught-up replicas
};

struct RunOutput {
  Cycles t0 = 0;
  Cycles final_now = 0;
  std::uint64_t events = 0;
  int launched = 0;
  int completed = 0;
  int shed = 0;
  int retries = 0;
  int buys_launched = 0;
  int buys_acked = 0;
  int buys_errored = 0;
  std::vector<Cycles> latencies;
  std::vector<Cycles> completions;  // offsets from t0
  std::vector<ShardLedger> ledger;
  std::uint64_t view_changes = 0;
  std::uint64_t epoch = 1;
  Cycles first_view_change_at = 0;
  std::uint64_t promotions = 0;
  std::uint64_t respawns = 0;
  std::uint64_t catchups = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t stale_ships = 0;
  std::uint64_t truncated = 0;
  std::uint64_t fenced = 0;
  std::uint64_t shipped = 0;
  std::uint64_t wal_redeliveries = 0;
  bool fs_consistent = true;
  bool monitors_quiesced = true;
  bool specs_activated = true;
};

RunOutput RunServing(const hw::PlatformSpec& spec, int shards, const Mix& mix,
                     const std::vector<Kill>& kills, const ExtraFaults* extra,
                     int requests_per_shard, bool print_activations) {
  recover::RecoveryConfig rcfg;
  // Same post-kill congestion rationale as sec54_failover: the RTO must sit
  // above a loaded survivor's frame-to-ACK latency, and the backoff must not
  // idle for hundreds of M cycles after the workload drains.
  rcfg.tcp_rto = 1'000'000;
  rcfg.tcp_max_retx = 4;
  recover::ScopedRecoveryConfig scoped_rcfg(rcfg);
  System s(spec);
  sim::Executor& exec = s.exec;
  hw::Machine& m = s.machine;
  const int client_core = spec.num_cores() - 1;

  // Shard i: web core 4i fronts it, replicas on 4i+1 (boot leader) and 4i+2
  // (follower), spare 4i+3 for respawn. The web core doubles as the shard's
  // WAL sequencer — PickPath pins it there — so the log's ordering authority
  // survives every replica kill by construction.
  std::vector<apps::StorePlacement> placements;
  for (int i = 0; i < shards; ++i) {
    placements.push_back({4 * i, {4 * i + 1, 4 * i + 2}, 4 * i + 3});
  }

  fs::ReplicatedFs fs(s.sys);
  apps::Database source;
  apps::PopulateTpcw(&source, kDbItems);
  source.Exec("CREATE TABLE orders (o_wid INT, o_item INT, o_qty INT)");
  apps::ReplicatedStore store(m, fs, source, placements);
  // Create the WALs and spawn the replica groups, then drain: serving must
  // not race the log files into existence.
  exec.Spawn(store.Start());
  exec.Run();
  const Cycles t0 = exec.now();

  std::unique_ptr<fault::Injector> inj;
  if (!kills.empty()) {
    fault::FaultPlan plan;
    for (const Kill& k : kills) {
      const auto& p = placements[static_cast<std::size_t>(k.shard)];
      plan.HaltCore(p.replica_cores[static_cast<std::size_t>(k.slot)], t0 + k.at);
    }
    if (extra != nullptr) {
      if (extra->rx_loss > 0) {
        plan.RandomRxLoss(extra->rx_loss, extra->seed ^ 0x9e3779b97f4a7c15ull, t0);
      }
      if (extra->tx_loss > 0) {
        plan.RandomTxLoss(extra->tx_loss, extra->seed ^ 0xc2b2ae3d27d4eb4full, t0);
      }
      if (extra->link_spike_extra > 0) {
        plan.LinkSpike(extra->link_spike_extra, t0 + extra->link_spike_at,
                       fault::kForever);
      }
    }
    inj = std::make_unique<fault::Injector>(plan);
    inj->Install();
    exec.Spawn(s.sys.HeartbeatLoop());
  }

  net::SimNic::Config cfg;
  cfg.rx_descs = 4096;
  cfg.tx_descs = 4096;
  cfg.gbps = 10.0;
  cfg.queues = shards;
  cfg.reta_slots = 16 * shards;
  cfg.irq_latency = spec.cost.ipi_wire;
  for (const auto& p : placements) {
    cfg.irq_cores.push_back(p.web_core);
  }
  net::SimNic nic(m, cfg);

  net::NetStack client(m, client_core, kClientIp, kClientMac, FreeCosts());
  client.AddArp(kServerIp, kServerMac);
  client.SetOutput(
      [&nic](Packet p) -> Task<> { co_await nic.InjectFromWire(std::move(p)); });

  bool stop = false;
  std::vector<std::unique_ptr<net::NetStack>> stacks;
  std::vector<std::unique_ptr<apps::HttpServer>> servers;
  for (int i = 0; i < shards; ++i) {
    const int core = placements[static_cast<std::size_t>(i)].web_core;
    auto stack = std::make_unique<net::NetStack>(m, core, kServerIp, kServerMac);
    stack->AddArp(kClientIp, kClientMac);
    stack->SetOutput([&m, &nic, core, i](Packet p) -> Task<> {
      co_await m.Compute(core, kDriverFrameCost);
      co_await nic.DriverTxPush(core, std::move(p), i);
    });
    // Browse: leader-local read on this web core's own shard. Buy: routed by
    // wid to its partition's group — the owner web core's channels carry it,
    // standing in for an intra-fleet forward to the partition home.
    apps::ReplicatedStore* st = &store;
    auto query_fn = [st, i](std::string sql) -> Task<std::string> {
      co_return co_await st->Query(i, std::move(sql));
    };
    auto exec_fn = [st, shards](std::uint64_t wid, std::string sql) -> Task<std::string> {
      const int owner = static_cast<int>(wid % static_cast<std::uint64_t>(shards));
      co_return co_await st->Execute(owner, wid, std::move(sql));
    };
    servers.push_back(
        std::make_unique<apps::HttpServer>(m, *stack, 80, std::move(query_fn)));
    servers.back()->SetDbExec(std::move(exec_fn));
    servers.back()->SetAdmission({/*workers=*/8, /*max_pending=*/32,
                                  /*queue_deadline=*/5'000'000});
    exec.Spawn(servers.back()->Serve());
    exec.Spawn(ShardDriver(m, nic, *stack, i, core, &stop));
    stacks.push_back(std::move(stack));
  }
  exec.Spawn(WireSink(nic, client, &stop));

  recover::MembershipService membership(s.sys);
  Cycles first_view_change_at = 0;
  membership.Subscribe(
      [&](const recover::View& view, int dead_core) -> Task<> {
        if (first_view_change_at == 0) {
          first_view_change_at = exec.now() - t0;
        }
        co_await store.HandleViewChange(view, dead_core);
      });

  LoadStats st(exec, shards);
  const int total = requests_per_shard * shards;
  const Cycles interval = mix.interval_per_shard / static_cast<Cycles>(shards);
  exec.Spawn(Generator(exec, client, total, interval, shards, mix, st, /*seed=*/42));
  exec.Spawn(Supervisor(s.sys, nic, st, &stop, store));
  exec.Run();

  RunOutput out;
  out.t0 = t0;
  out.final_now = exec.now();
  out.events = exec.events_dispatched();
  out.launched = st.launched;
  out.completed = st.completed;
  out.shed = st.shed;
  out.retries = st.retries;
  out.buys_launched = st.buys_launched;
  out.buys_acked = st.buys_acked;
  out.buys_errored = st.buys_errored;
  out.latencies = std::move(st.latencies);
  for (Cycles c : st.completions) {
    out.completions.push_back(c - t0);
  }
  for (int i = 0; i < shards; ++i) {
    ShardLedger lg;
    lg.acked = st.acked_per_shard[static_cast<std::size_t>(i)];
    lg.buys = st.buys_per_shard[static_cast<std::size_t>(i)];
    const int leader = store.leader_slot(i);
    lg.leader_rows = store.replica_table_rows(i, leader, "ORDERS");
    lg.leader_wids = store.replica_distinct_wids(i, leader);
    for (int slot = 0; slot < store.num_slots(i); ++slot) {
      if (!store.replica_alive(i, slot) || !store.replica_caught_up(i, slot)) {
        continue;
      }
      if (store.replica_table_rows(i, slot, "ORDERS") != lg.leader_rows ||
          store.replica_distinct_wids(i, slot) != lg.leader_wids) {
        lg.replicas_agree = false;
      }
    }
    out.ledger.push_back(lg);
  }
  out.view_changes = membership.view_changes_committed();
  out.epoch = membership.view().epoch;
  out.first_view_change_at = first_view_change_at;
  out.promotions = store.promotions();
  out.respawns = store.respawns();
  out.catchups = store.catchups();
  out.rpc_timeouts = store.rpc_timeouts();
  for (int i = 0; i < shards; ++i) {
    out.stale_ships += store.stale_ships(i);
    out.truncated += store.truncated_records(i);
    out.fenced += store.writes_fenced(i);
    out.shipped += store.records_shipped(i);
  }
  out.wal_redeliveries = fs.redeliveries();
  out.fs_consistent = fs.ReplicasConsistent() && s.sys.LiveReplicasConsistent();
  for (int c = 0; c < s.sys.num_cores(); ++c) {
    if (s.sys.IsOnline(c) && s.sys.on(c).inflight_ops() != 0) {
      out.monitors_quiesced = false;
    }
  }
  if (inj != nullptr) {
    if (print_activations) {
      inj->PrintActivationTable();
    }
    out.specs_activated = inj->AllSpecsActivated();
    inj->Uninstall();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reporting

std::vector<int> Bucketize(const RunOutput& r, Cycles window) {
  std::vector<int> buckets(static_cast<std::size_t>(window / kBucket), 0);
  for (Cycles c : r.completions) {
    const std::size_t b = static_cast<std::size_t>(c / kBucket);
    if (b < buckets.size()) {
      ++buckets[b];
    }
  }
  return buckets;
}

void PrintBuckets(const std::vector<int>& buckets) {
  std::printf("completions per %.1fM-cycle bucket (t0 = serving start):\n",
              static_cast<double>(kBucket) / 1e6);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::printf("%4d%s", buckets[b], (b + 1) % 10 == 0 ? "\n" : " ");
  }
  if (buckets.size() % 10 != 0) {
    std::printf("\n");
  }
}

// Same mean-based recovery rule as sec54_failover: recovered at the first
// bucket from which the remaining run sustains >= 7/8 of the pre-kill mean
// with no bucket below half of it. 7/8 is stricter than the (N-1)/N floor a
// 1-of-4 (or 1-of-2) replica loss must clear — and a promoted follower
// restores the full N/N, so the bench holds it to more than survival.
struct Recovery {
  double prekill = 0;
  double threshold = 0;
  bool recovered = false;
  Cycles window = 0;
};

Recovery AnalyzeRecovery(const std::vector<int>& buckets, Cycles kill_at) {
  Recovery r;
  const std::size_t kill_bucket = static_cast<std::size_t>(kill_at / kBucket);
  const std::size_t last = buckets.empty() ? 0 : buckets.size() - 1;
  if (kill_bucket < 2 || kill_bucket >= last) {
    return r;
  }
  for (std::size_t b = 1; b < kill_bucket; ++b) {
    r.prekill += buckets[b];
  }
  r.prekill /= static_cast<double>(kill_bucket - 1);
  r.threshold = r.prekill * 7.0 / 8.0;
  for (std::size_t b = kill_bucket; b < last; ++b) {
    double sum = 0;
    bool hole = false;
    for (std::size_t b2 = b; b2 < last; ++b2) {
      sum += buckets[b2];
      if (buckets[b2] < r.prekill / 2.0) {
        hole = true;
      }
    }
    if (!hole && sum / static_cast<double>(last - b) >= r.threshold) {
      r.recovered = true;
      r.window = static_cast<Cycles>(b + 1) * kBucket - kill_at;
      return r;
    }
  }
  return r;
}

bool SameRun(const RunOutput& a, const RunOutput& b) {
  if (a.ledger.size() != b.ledger.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ledger.size(); ++i) {
    if (a.ledger[i].leader_rows != b.ledger[i].leader_rows ||
        a.ledger[i].leader_wids != b.ledger[i].leader_wids ||
        a.ledger[i].acked != b.ledger[i].acked) {
      return false;
    }
  }
  return a.final_now == b.final_now && a.events == b.events &&
         a.completed == b.completed && a.shed == b.shed &&
         a.retries == b.retries && a.latencies == b.latencies &&
         a.buys_acked == b.buys_acked && a.view_changes == b.view_changes &&
         a.promotions == b.promotions && a.respawns == b.respawns &&
         a.rpc_timeouts == b.rpc_timeouts && a.truncated == b.truncated;
}

Cycles Percentile(std::vector<Cycles> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// The exact-ledger verdict, printed in every mode. `exact` (no-fault runs)
// demands rows == acks; fault runs allow rows to exceed acks by writes whose
// commit outran their lost HTTP ack, bounded by the request shed count.
bool CheckLedger(const RunOutput& r, bool exact, bool print) {
  bool ok = true;
  std::uint64_t total_rows = 0;
  for (std::size_t i = 0; i < r.ledger.size(); ++i) {
    const ShardLedger& lg = r.ledger[i];
    total_rows += lg.leader_rows;
    const bool rows_match_wids = lg.leader_rows == lg.leader_wids;
    const bool bounded =
        lg.leader_rows >= static_cast<std::uint64_t>(lg.acked) &&
        lg.leader_rows <= static_cast<std::uint64_t>(lg.buys);
    const bool exact_ok = !exact || lg.leader_rows == static_cast<std::uint64_t>(lg.acked);
    if (print) {
      std::printf("  shard %zu: %llu rows, %llu wids, %d acked / %d buys, "
                  "replicas %s\n",
                  i, static_cast<unsigned long long>(lg.leader_rows),
                  static_cast<unsigned long long>(lg.leader_wids), lg.acked,
                  lg.buys, lg.replicas_agree ? "agree" : "DIVERGED");
    }
    ok = ok && rows_match_wids && bounded && exact_ok && lg.replicas_agree;
  }
  if (print) {
    std::printf("%-26s %llu rows == %d acked buys%s\n", "write ledger:",
                static_cast<unsigned long long>(total_rows), r.buys_acked,
                exact ? "" : " (+ committed-but-unacked, bounded by sheds)");
  }
  return ok;
}

void PrintCounters(const RunOutput& r) {
  std::printf("%-26s %d launched, %d completed, %d shed, %d retries\n",
              "requests:", r.launched, r.completed, r.shed, r.retries);
  std::printf("%-26s %d launched, %d acked, %d store-errored\n",
              "buys:", r.buys_launched, r.buys_acked, r.buys_errored);
  std::printf("%-26s mean %.0f, p99 %llu cycles\n", "latency:",
              r.latencies.empty()
                  ? 0.0
                  : static_cast<double>(
                        [&] {
                          Cycles s = 0;
                          for (Cycles c : r.latencies) {
                            s += c;
                          }
                          return s;
                        }()) /
                        static_cast<double>(r.latencies.size()),
              static_cast<unsigned long long>(Percentile(r.latencies, 0.99)));
  std::printf("%-26s %llu shipped, %llu stale dropped, %llu truncated, "
              "%llu fenced, %llu WAL redeliveries\n",
              "replication:", static_cast<unsigned long long>(r.shipped),
              static_cast<unsigned long long>(r.stale_ships),
              static_cast<unsigned long long>(r.truncated),
              static_cast<unsigned long long>(r.fenced),
              static_cast<unsigned long long>(r.wal_redeliveries));
  std::printf("%-26s %llu committed (epoch %llu), %llu promotions, "
              "%llu respawns, %llu catch-ups, %llu rpc timeouts\n",
              "failover:", static_cast<unsigned long long>(r.view_changes),
              static_cast<unsigned long long>(r.epoch),
              static_cast<unsigned long long>(r.promotions),
              static_cast<unsigned long long>(r.respawns),
              static_cast<unsigned long long>(r.catchups),
              static_cast<unsigned long long>(r.rpc_timeouts));
}

// ---------------------------------------------------------------------------
// Modes

int RunSweep(bench::TraceSession& session, bool quick) {
  bench::PrintHeader(
      quick ? "Read-write store: browse-buy mix, shard sweep on 4x4 AMD (quick)"
            : "Read-write store: browse-buy mix, shard sweep on 8x4 AMD");
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  const std::vector<int> sweep = quick ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4};
  const int rps = quick ? 48 : 64;
  bench::SeriesTable table("shards");
  table.AddSeries("requests");
  table.AddSeries("buys acked");
  table.AddSeries("req/Mcycle");
  table.AddSeries("p99 (k)");
  bool ok = true;
  for (int shards : sweep) {
    session.BeginRun("sweep-" + std::to_string(shards));
    RunOutput r = RunServing(spec, shards, Mix{}, {}, nullptr, rps,
                             /*print_activations=*/false);
    const double span = static_cast<double>(r.final_now - r.t0);
    table.AddRow(shards,
                 {static_cast<double>(r.completed),
                  static_cast<double>(r.buys_acked),
                  static_cast<double>(r.completed) / (span / 1e6),
                  static_cast<double>(Percentile(r.latencies, 0.99)) / 1e3});
    // Clean-run rules: every request served, the ledger exact, and none of
    // the recovery machinery so much as breathed.
    const bool clean = r.completed == r.launched && r.shed == 0 &&
                       r.buys_errored == 0 && r.view_changes == 0 &&
                       r.promotions == 0 && r.respawns == 0 &&
                       r.rpc_timeouts == 0 && r.wal_redeliveries == 0 &&
                       r.fenced == 0 && r.stale_ships == 0 &&
                       CheckLedger(r, /*exact=*/true, /*print=*/false) &&
                       r.fs_consistent && r.monitors_quiesced;
    if (!clean) {
      std::printf("shard count %d: CLEAN-RUN VIOLATION\n", shards);
      PrintCounters(r);
      CheckLedger(r, /*exact=*/true, /*print=*/true);
    }
    ok = ok && clean;
  }
  table.Print("%12.1f");
  std::printf("%-26s %s\n", "clean sweep:",
              ok ? "every shard count served all requests with an exact ledger"
                 : "VIOLATIONS ABOVE");
  return ok ? 0 : 1;
}

int RunKillLeader(bench::TraceSession& session, bool quick, int shard) {
  const int shards = quick ? 2 : 4;
  const int rps = quick ? 48 : 64;
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  if (shard < 0 || shard >= shards) {
    std::fprintf(stderr, "--kill-leader=%d out of range (0..%d)\n", shard,
                 shards - 1);
    return 2;
  }
  bench::PrintHeader("Read-write store: kill shard " + std::to_string(shard) +
                     "'s leader replica (core " + std::to_string(4 * shard + 1) +
                     ") at t0+" + std::to_string(kKillOffset) + ", " +
                     std::to_string(shards) + " shards");
  const std::vector<Kill> kills = {{shard, /*slot=*/0, kKillOffset}};
  session.BeginRun("kill-leader-run1");
  RunOutput a = RunServing(spec, shards, Mix{}, kills, nullptr, rps,
                           /*print_activations=*/true);
  session.BeginRun("kill-leader-run2");
  RunOutput b = RunServing(spec, shards, Mix{}, kills, nullptr, rps,
                           /*print_activations=*/false);

  const Cycles window = static_cast<Cycles>(rps) * Mix{}.interval_per_shard;
  const std::vector<int> buckets = Bucketize(a, window);
  PrintBuckets(buckets);
  PrintCounters(a);
  const bool ledger_ok = CheckLedger(a, /*exact=*/false, /*print=*/true);

  const Recovery rec = AnalyzeRecovery(buckets, kKillOffset);
  std::printf("%-26s %.1f/bucket pre-kill mean, threshold %.1f (>= 7/8, above "
              "the %d/%d survivor floor)\n",
              "recovery target:", rec.prekill, rec.threshold, shards - 1, shards);
  if (rec.recovered) {
    std::printf("%-26s sustained mean >= %.1f/bucket within %llu cycles of the "
                "kill\n",
                "recovery window:", rec.threshold,
                static_cast<unsigned long long>(rec.window));
  } else {
    std::printf("%-26s NEVER RECOVERED\n", "recovery window:");
  }
  std::printf("%-26s first view change committed at t0+%llu\n", "detection:",
              static_cast<unsigned long long>(a.first_view_change_at));

  const bool no_loss = a.completed + a.shed == a.launched;
  const bool deterministic = SameRun(a, b);
  std::printf("%-26s %s\n", "committed-work ledger:",
              no_loss ? "completed + shed == launched" : "REQUESTS LOST");
  std::printf("%-26s %s (run 1: %llu cycles / %llu events, run 2: %llu / %llu)\n",
              "replay bit-identical:", deterministic ? "yes" : "NO",
              static_cast<unsigned long long>(a.final_now),
              static_cast<unsigned long long>(a.events),
              static_cast<unsigned long long>(b.final_now),
              static_cast<unsigned long long>(b.events));
  const bool ok = rec.recovered && no_loss && deterministic && ledger_ok &&
                  a.view_changes == 1 && a.promotions == 1 && a.respawns == 1 &&
                  a.catchups == 1 && a.buys_errored == 0 &&
                  a.specs_activated && a.fs_consistent;
  std::printf("%-26s %s\n", "verdict:", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunChaos(bench::TraceSession& session, bool quick, std::uint64_t seed) {
  const int shards = quick ? 2 : 4;
  const int rps = quick ? 24 : 32;
  const hw::PlatformSpec spec = quick ? hw::Amd4x4() : hw::Amd8x4();
  bench::PrintHeader("Read-write store: chaos plan, seed " + std::to_string(seed) +
                     ", " + std::to_string(shards) + " shards");
  // Seeded plan: 1-2 replica kills (leader or follower, distinct shards)
  // composed with random NIC frame loss both ways and a permanent
  // interconnect latency spike from the first kill on — the log-shipping
  // pipeline under packet loss AND a degraded fabric.
  sim::Rng rng(seed);
  std::vector<Kill> kills;
  const int n_kills = 1 + static_cast<int>(rng.Below(2));
  int first_shard = -1;
  int leader_kills = 0;
  for (int k = 0; k < n_kills; ++k) {
    Kill kill;
    if (k == 0) {
      kill.shard = static_cast<int>(rng.Below(static_cast<std::uint64_t>(shards)));
      first_shard = kill.shard;
    } else {
      kill.shard = (first_shard + 1 +
                    static_cast<int>(rng.Below(static_cast<std::uint64_t>(shards - 1)))) %
                   shards;
    }
    kill.slot = static_cast<int>(rng.Below(2));
    kill.at = 1'000'000 + static_cast<Cycles>(rng.Below(3'000'000));
    leader_kills += kill.slot == 0 ? 1 : 0;
    kills.push_back(kill);
  }
  ExtraFaults extra;
  // High enough that both loss specs reliably fire over a ~1k-frame run (the
  // bench asserts every spec activated); TCP retransmission absorbs it.
  extra.rx_loss = 0.015;
  extra.tx_loss = 0.015;
  extra.seed = seed;
  extra.link_spike_extra = 1500;
  extra.link_spike_at = kills.front().at;
  for (const Kill& k : kills) {
    std::printf("chaos plan: halt shard %d's %s replica (core %d) at t0+%llu\n",
                k.shard, k.slot == 0 ? "leader" : "follower",
                4 * k.shard + 1 + k.slot,
                static_cast<unsigned long long>(k.at));
  }
  std::printf("chaos plan: 1.5%% NIC loss each way, +1500-cycle link spike from "
              "t0+%llu\n",
              static_cast<unsigned long long>(extra.link_spike_at));
  std::printf("replay with: store_readwrite %s--chaos-seed=%llu\n",
              quick ? "--quick " : "", static_cast<unsigned long long>(seed));

  session.BeginRun("chaos");
  RunOutput r = RunServing(spec, shards, Mix{}, kills, &extra, rps,
                           /*print_activations=*/true);
  PrintCounters(r);
  const bool ledger_ok = CheckLedger(r, /*exact=*/false, /*print=*/true);

  struct Check {
    const char* name;
    bool ok;
  } checks[] = {
      {"request ledger balances", r.completed + r.shed == r.launched},
      {"majority served", r.completed * 2 >= r.launched},
      {"write ledger exact-once", ledger_ok},
      {"all kills became view changes",
       r.view_changes == static_cast<std::uint64_t>(n_kills) &&
           r.epoch == 1 + static_cast<std::uint64_t>(n_kills)},
      {"leader kills became promotions",
       r.promotions == static_cast<std::uint64_t>(leader_kills)},
      {"dead replicas respawned and caught up",
       r.respawns == static_cast<std::uint64_t>(n_kills) &&
           r.catchups == r.respawns},
      {"fs + monitor replicas consistent", r.fs_consistent},
      {"monitors quiesced", r.monitors_quiesced},
      {"every fault spec fired", r.specs_activated},
  };
  bool ok = true;
  for (const Check& c : checks) {
    std::printf("%-36s %s\n", c.name, c.ok ? "ok" : "FAIL");
    ok = ok && c.ok;
  }
  if (!ok) {
    std::printf("chaos FAIL: reproduce with seed %llu (plan above)\n",
                static_cast<unsigned long long>(seed));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::TraceSession session(trace_flags);
  bool quick = false;
  bool kill_leader = false;
  int kill_shard = 1;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--kill-leader") == 0) {
      kill_leader = true;
    } else if (std::strncmp(arg, "--kill-leader=", 14) == 0) {
      kill_leader = true;
      kill_shard = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(arg + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: store_readwrite [--quick] [--kill-leader[=K]] "
                   "[--chaos-seed=N]\n");
      return 2;
    }
  }
  int rc = 0;
  if (chaos) {
    rc = RunChaos(session, quick, chaos_seed);
  } else if (kill_leader) {
    rc = RunKillLeader(session, quick, kill_shard);
  } else {
    rc = RunSweep(session, quick);
  }
  return rc;
}
