// Connection-scale hardening bench (ROADMAP item 5): keep-alive serving at
// 100k+ concurrent connections on the timer-wheel TCP lifecycle, and
// survival under adversarial traffic.
//
// Modes (all in one default invocation; --attack=<m> selects one):
//   clean     — ramp 100k+ keep-alive connections (held established on the
//               server) plus a diurnal open-loop request stream; gates on
//               peak established count and on zero leaked table entries or
//               wheel slots after teardown.
//   synflood  — forged spoofed-source SYNs at the server. The half-open
//               table is capped; overflow is answered with stateless
//               SYN-cookie SYN-ACKs, so legitimate clients still complete
//               their handshakes while the flood costs the server no state.
//   slowloris — attacker connections trickle header bytes forever; the
//               server's per-request progress deadline answers 408 and
//               counts the connection as shed (kRecoverShed cause 2).
//   churn     — bursty open/close connection storms (open-loop, square-wave
//               pacing) that must not leak connection-table entries or
//               timer-wheel slots.
//
// Every attack is a first-class fault::FaultPlan spec with per-spec
// activation accounting: the attack generators consume one spec firing per
// attack unit, and a spec with zero activations fails the run. Legitimate
// load is generated open-loop and every request attempt is accounted into an
// exact ledger: served + shed + refused + reset == offered. Goodput is
// bucketized so the attack window can be gated against the clean baseline
// (>=50% during the attack) and recovery-to-baseline (>=90%) is printed as
// an explicit window after the attack ends.
//
// Deterministic: simulated cycles, seeded RNG, single engine domain — output
// is byte-identical at any --threads value (the golden gate checks 1 and 4).
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "apps/httpd.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "recover/config.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/event.h"
#include "sim/executor.h"
#include "sim/task.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr int kClientCore = 0;
constexpr int kAttackCore = 1;
constexpr int kDriverCore = 2;
constexpr int kServerCore = 3;
constexpr Cycles kDriverCost = 1400;
constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
constexpr int kClientStacks = 8;
constexpr Cycles kConnectTimeout = 6'000'000;
constexpr Cycles kResponseDeadline = 8'000'000;
constexpr int kMaxInflight = 256;

// External load generators: their stacks cost nothing on the simulated
// machine (the server pays full freight for every frame, including attack
// frames).
net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

struct Sizes {
  int holders = 100'000;        // clean-sustain concurrent connections
  int attack_holders = 8'000;   // held connections during attack runs
  Cycles sustain = 30'000'000;  // clean-sustain request window
  Cycles baseline = 16'000'000;
  Cycles attack = 24'000'000;
  Cycles recovery = 24'000'000;
  Cycles bucket = 4'000'000;
  Cycles arrival_gap = 40'000;  // open-loop peak inter-arrival
};

Sizes QuickSizes() {
  Sizes s;
  s.holders = 2'000;
  s.attack_holders = 1'000;
  s.sustain = 10'000'000;
  s.baseline = 8'000'000;
  s.attack = 8'000'000;
  s.recovery = 12'000'000;
  s.bucket = 2'000'000;
  s.arrival_gap = 40'000;
  return s;
}

// Exact request ledger: every legitimate request attempt lands in exactly
// one bucket.
struct Ledger {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;   // 200 received
  std::uint64_t shed = 0;     // 503/408/400 received
  std::uint64_t refused = 0;  // connect failed or client at inflight cap
  std::uint64_t reset = 0;    // connection died mid-request
  bool Exact() const { return served + shed + refused + reset == offered; }
};

struct Cluster {
  explicit Cluster(bool lifecycle_clients) : m(exec, hw::Amd2x2()) {
    net::TcpLifecycle server_lc;
    server_lc.enabled = true;
    server_lc.time_wait = 400'000;
    server_lc.syn_rcvd_timeout = 1'000'000;
    server_lc.max_half_open = 64;
    server = std::make_unique<net::NetStack>(m, kServerCore, kServerIp, kServerMac);
    server->SetLifecycle(server_lc);
    for (int i = 0; i < kClientStacks; ++i) {
      net::Ipv4Addr ip = net::MakeIp(10, 0, 1, static_cast<std::uint8_t>(1 + i));
      net::MacAddr mac{2, 0, 0, 1, 0, static_cast<std::uint8_t>(1 + i)};
      auto st = std::make_unique<net::NetStack>(m, kClientCore, ip, mac, FreeCosts());
      if (lifecycle_clients) {
        net::TcpLifecycle lc;
        lc.enabled = true;
        lc.time_wait = 200'000;
        st->SetLifecycle(lc);
      }
      st->AddArp(kServerIp, kServerMac);
      server->AddArp(ip, mac);
      clients.push_back(std::move(st));
    }
    {
      net::Ipv4Addr ip = net::MakeIp(10, 0, 2, 1);
      net::MacAddr mac{2, 0, 0, 2, 0, 1};
      attacker = std::make_unique<net::NetStack>(m, kAttackCore, ip, mac, FreeCosts());
      net::TcpLifecycle lc;
      lc.enabled = true;
      lc.time_wait = 200'000;
      attacker->SetLifecycle(lc);
      attacker->AddArp(kServerIp, kServerMac);
      server->AddArp(ip, mac);
    }
    // L2/L3 "rack": frames transit the driver core and are routed by
    // destination address. A frame for an address no stack owns (a reply to
    // a spoofed flood source) is blackholed and counted.
    auto route = [this](Packet p) -> Task<> {
      co_await m.Compute(kDriverCore, kDriverCost);
      net::ParseInfo info;
      auto parsed = net::ParseFrame(p, &info);
      if (!parsed) {
        ++blackholed;
        co_return;
      }
      net::Ipv4Addr dst = parsed->ip.dst;
      if (dst == kServerIp) {
        co_await server->Input(std::move(p));
        co_return;
      }
      if (dst == attacker->ip()) {
        co_await attacker->Input(std::move(p));
        co_return;
      }
      for (auto& c : clients) {
        if (c->ip() == dst) {
          co_await c->Input(std::move(p));
          co_return;
        }
      }
      ++blackholed;  // spoofed source: the SYN-ACK/RST has nowhere to go
    };
    server->SetOutput(route);
    attacker->SetOutput(route);
    for (auto& c : clients) {
      c->SetOutput(route);
    }
  }

  sim::Executor exec;
  hw::Machine m;
  std::unique_ptr<net::NetStack> server;
  std::vector<std::unique_ptr<net::NetStack>> clients;
  std::unique_ptr<net::NetStack> attacker;
  std::uint64_t blackholed = 0;
};

// --- Client-side HTTP response framing (status + Content-Length body) ---
struct ParsedResponse {
  int status = 0;
  bool keep_alive = false;
};

// True once `buf` holds one complete response; fills `out`.
bool TryParseResponse(const std::string& buf, ParsedResponse* out) {
  std::size_t hdr_end = buf.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    return false;
  }
  std::size_t sp = buf.find(' ');
  if (sp == std::string::npos || sp + 4 > buf.size()) {
    return false;
  }
  out->status = std::atoi(buf.c_str() + sp + 1);
  std::size_t cl = buf.find("Content-Length: ");
  std::size_t body_len = 0;
  if (cl != std::string::npos && cl < hdr_end) {
    body_len = static_cast<std::size_t>(std::atoll(buf.c_str() + cl + 16));
  }
  if (buf.size() < hdr_end + 4 + body_len) {
    return false;
  }
  out->keep_alive = buf.find("Connection: keep-alive") < hdr_end;
  return true;
}

struct RunState {
  explicit RunState(sim::Executor& exec) : done_ev(exec) {}
  Ledger ledger;
  std::vector<std::uint64_t> served_buckets;
  Cycles bucket = 1;
  int inflight = 0;
  std::uint64_t keepalive_reuses = 0;
  // Per-stack pools of idle keep-alive connections owned by the requester
  // side.
  std::vector<std::deque<net::NetStack::TcpConn*>> pools;
  // Held connections (the 100k concurrency ballast).
  std::vector<std::vector<net::NetStack::TcpConn*>> held;
  int ramp_pending = 0;
  int holder_failures = 0;
  sim::Event done_ev;
  // Attack bookkeeping.
  std::uint64_t flood_syns = 0;
  std::uint64_t loris_drips = 0;
  std::uint64_t churn_conns = 0;
  std::uint64_t churn_failures = 0;
};

Task<> RampStack(Cluster& cl, RunState& rs, int idx, int count) {
  // Bounded-parallel connect storm: 8 handshakes in flight per stack (64
  // total). More parallelism would queue the handshake-completing ACKs
  // behind more server-core work than syn_rcvd_timeout allows.
  sim::Semaphore slots(cl.exec, 8);
  int pending = count;
  sim::Event done(cl.exec);
  for (int i = 0; i < count; ++i) {
    co_await slots.Acquire();
    cl.exec.Spawn([](Cluster& c, RunState& r, int stack, sim::Semaphore& sem,
                     int& left, sim::Event& ev) -> Task<> {
      net::NetStack::TcpConn* conn =
          co_await c.clients[static_cast<std::size_t>(stack)]->TcpConnect(
              kServerIp, 80, kConnectTimeout);
      if (conn == nullptr) {
        ++r.holder_failures;
      } else {
        r.held[static_cast<std::size_t>(stack)].push_back(conn);
      }
      sem.Release();
      if (--left == 0) {
        ev.Signal();
      }
    }(cl, rs, idx, slots, pending, done));
  }
  while (pending > 0) {
    co_await done.Wait();
  }
  if (--rs.ramp_pending == 0) {
    rs.done_ev.Signal();
  }
}

Task<> CloseHeld(Cluster& cl, RunState& rs, int idx, int* left, sim::Event* ev) {
  sim::Semaphore slots(cl.exec, 32);
  auto& stack = *cl.clients[static_cast<std::size_t>(idx)];
  int pending = static_cast<int>(rs.held[static_cast<std::size_t>(idx)].size());
  sim::Event done(cl.exec);
  for (net::NetStack::TcpConn* conn : rs.held[static_cast<std::size_t>(idx)]) {
    co_await slots.Acquire();
    cl.exec.Spawn([](net::NetStack& st, net::NetStack::TcpConn* c,
                     sim::Semaphore& sem, int& p, sim::Event& d) -> Task<> {
      co_await st.TcpClose(*c);
      st.Release(c);
      sem.Release();
      if (--p == 0) {
        d.Signal();
      }
    }(stack, conn, slots, pending, done));
  }
  while (pending > 0) {
    co_await done.Wait();
  }
  rs.held[static_cast<std::size_t>(idx)].clear();
  if (--*left == 0) {
    ev->Signal();
  }
}

Task<> DoRequest(Cluster& cl, RunState& rs, int idx) {
  ++rs.inflight;
  auto& stack = *cl.clients[static_cast<std::size_t>(idx)];
  auto& pool = rs.pools[static_cast<std::size_t>(idx)];
  net::NetStack::TcpConn* conn = nullptr;
  if (!pool.empty()) {
    conn = pool.front();
    pool.pop_front();
    if (conn->peer_closed) {  // server closed it while pooled (idle/budget)
      co_await stack.TcpClose(*conn);
      stack.Release(conn);
      conn = nullptr;
    } else {
      ++rs.keepalive_reuses;
    }
  }
  if (conn == nullptr) {
    conn = co_await stack.TcpConnect(kServerIp, 80, kConnectTimeout);
    if (conn == nullptr) {
      ++rs.ledger.refused;
      --rs.inflight;
      co_return;
    }
  }
  co_await stack.TcpSend(*conn, "GET / HTTP/1.1\r\nHost: bench\r\n\r\n");
  std::string buf;
  ParsedResponse resp;
  bool complete = false;
  while (!complete) {
    if (TryParseResponse(buf, &resp)) {
      complete = true;
      break;
    }
    bool readable = co_await stack.WaitReadable(*conn, kResponseDeadline);
    if (!readable) {
      break;  // response deadline: treat as a reset for the ledger
    }
    std::vector<std::uint8_t> chunk = co_await conn->Read();
    if (chunk.empty()) {
      break;  // closed/reset under us
    }
    buf.append(chunk.begin(), chunk.end());
  }
  if (complete && resp.status == 200) {
    ++rs.ledger.served;
    std::size_t b = static_cast<std::size_t>(cl.exec.now() / rs.bucket);
    if (b >= rs.served_buckets.size()) {
      rs.served_buckets.resize(b + 1, 0);
    }
    ++rs.served_buckets[b];
  } else if (complete) {
    ++rs.ledger.shed;
  } else {
    ++rs.ledger.reset;
  }
  if (complete && resp.keep_alive && !conn->peer_closed) {
    pool.push_back(conn);
  } else {
    co_await stack.TcpClose(*conn);
    stack.Release(conn);
  }
  --rs.inflight;
}

Task<> ArrivalGen(Cluster& cl, RunState& rs, Cycles until, bench::LoadShape shape,
                  Cycles period, Cycles base_gap) {
  std::uint64_t n = 0;
  const Cycles t0 = cl.exec.now();
  while (cl.exec.now() < until) {
    ++rs.ledger.offered;
    if (rs.inflight >= kMaxInflight) {
      ++rs.ledger.refused;  // open-loop overload: client gives up immediately
    } else {
      cl.exec.Spawn(DoRequest(cl, rs, static_cast<int>(n % kClientStacks)));
    }
    ++n;
    std::uint64_t level = bench::LoadShapeLevel(shape, cl.exec.now() - t0, period);
    if (level < 64) {
      level = 64;  // trough floor: the stream never fully stops
    }
    co_await cl.exec.Delay(base_gap * 1024 / level);
  }
}

// --- Attack generators (each consumes FaultPlan spec firings) ---

Task<> SynFloodGen(Cluster& cl, RunState& rs, Cycles until, Cycles gap) {
  std::uint64_t i = 0;
  while (cl.exec.now() < until) {
    fault::Injector* inj = fault::Injector::active();
    if (inj != nullptr &&
        inj->ShouldEmitAttack(fault::FaultKind::kSynFlood, cl.exec.now())) {
      // Forge a SYN from an unroutable spoofed source; the server's answer
      // (SYN-ACK or cookie SYN-ACK) blackholes at the router.
      net::EthHeader eth;
      eth.src = net::MacAddr{6, 6, 6, 0, 0, 1};
      eth.dst = kServerMac;
      net::IpHeader ip;
      ip.src = net::MakeIp(172, 16, static_cast<std::uint8_t>((i / 200) % 64),
                           static_cast<std::uint8_t>(1 + i % 200));
      ip.dst = kServerIp;
      ip.ident = static_cast<std::uint16_t>(i);
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(40000 + i % 20000);
      tcp.dst_port = 80;
      tcp.seq = static_cast<std::uint32_t>(7777 + i);
      tcp.flags = net::TcpFlags{.syn = true};
      Packet frame = net::BuildTcpFrame(eth, ip, tcp, nullptr, 0);
      // Open loop: the flood never waits for the victim — deliveries queue
      // at the driver and server cores like any other wire arrival.
      cl.exec.Spawn([](Cluster& c, Packet fr) -> Task<> {
        co_await c.m.Compute(kDriverCore, kDriverCost);
        co_await c.server->Input(std::move(fr));
      }(cl, std::move(frame)));
      ++rs.flood_syns;
    }
    ++i;
    co_await cl.exec.Delay(gap);
  }
}

Task<> SlowlorisConn(Cluster& cl, RunState& rs, Cycles start, Cycles until,
                     Cycles drip_gap) {
  // One slowloris "slot": keep a connection trickling header bytes; when the
  // server 408s it, reconnect and resume, for as long as the window is armed.
  // The slot stays quiet until the fault window opens.
  if (cl.exec.now() < start) {
    co_await cl.exec.Delay(start - cl.exec.now());
  }
  while (cl.exec.now() < until) {
    net::NetStack::TcpConn* conn =
        co_await cl.attacker->TcpConnect(kServerIp, 80, kConnectTimeout);
    if (conn == nullptr) {
      co_await cl.exec.Delay(drip_gap);
      continue;
    }
    co_await cl.attacker->TcpSend(*conn, "GET /slow HTTP/1.1\r\n");
    while (cl.exec.now() < until && !conn->peer_closed) {
      fault::Injector* inj = fault::Injector::active();
      if (inj != nullptr &&
          inj->ShouldEmitAttack(fault::FaultKind::kSlowloris, cl.exec.now())) {
        co_await cl.attacker->TcpSend(*conn, "X");
        ++rs.loris_drips;
      }
      co_await cl.exec.Delay(drip_gap);
    }
    co_await cl.attacker->TcpClose(*conn);
    cl.attacker->Release(conn);
  }
}

Task<> ChurnGen(Cluster& cl, RunState& rs, Cycles until, Cycles base_gap) {
  // Square-wave (bursty) open/close storm: full handshake, immediate close.
  const Cycles t0 = cl.exec.now();
  while (cl.exec.now() < until) {
    fault::Injector* inj = fault::Injector::active();
    if (inj != nullptr &&
        inj->ShouldEmitAttack(fault::FaultKind::kConnChurn, cl.exec.now())) {
      net::NetStack::TcpConn* conn =
          co_await cl.attacker->TcpConnect(kServerIp, 80, kConnectTimeout);
      if (conn == nullptr) {
        ++rs.churn_failures;
      } else {
        ++rs.churn_conns;
        co_await cl.attacker->TcpClose(*conn);
        cl.attacker->Release(conn);
      }
    }
    std::uint64_t level =
        bench::LoadShapeLevel(bench::LoadShape::kBursty, cl.exec.now() - t0,
                              8'000'000);
    if (level < 64) {
      level = 64;
    }
    co_await cl.exec.Delay(base_gap * 1024 / level);
  }
}

// --- One full scenario run ---

struct Gates {
  bool ok = true;
  void Check(const char* name, bool pass) {
    std::printf("%s: %s\n", name, pass ? "PASS" : "FAIL");
    ok = ok && pass;
  }
};

std::uint64_t BucketAvg(const std::vector<std::uint64_t>& buckets, Cycles bucket,
                        Cycles from, Cycles to) {
  std::size_t b0 = static_cast<std::size_t>((from + bucket - 1) / bucket);
  std::size_t b1 = static_cast<std::size_t>(to / bucket);
  std::uint64_t sum = 0;
  std::size_t n = 0;
  for (std::size_t b = b0; b < b1; ++b) {
    sum += b < buckets.size() ? buckets[b] : 0;
    ++n;
  }
  return n == 0 ? 0 : sum / n;
}

enum class Attack { kClean, kSynFlood, kSlowloris, kChurn };

const char* AttackName(Attack a) {
  switch (a) {
    case Attack::kClean: return "clean";
    case Attack::kSynFlood: return "synflood";
    case Attack::kSlowloris: return "slowloris";
    case Attack::kChurn: return "churn";
  }
  return "?";
}

Task<> Scenario(Cluster& cl, RunState& rs, const Sizes& sz, Attack attack,
                std::uint64_t chaos_seed, Gates& gates, bool* finished) {
  const bool clean = attack == Attack::kClean;
  const int holders = clean ? sz.holders : sz.attack_holders;
  // Ramp: establish the held-connection ballast.
  rs.ramp_pending = kClientStacks;
  const int per_stack = holders / kClientStacks;
  for (int i = 0; i < kClientStacks; ++i) {
    cl.exec.Spawn(RampStack(cl, rs, i, per_stack));
  }
  while (rs.ramp_pending > 0) {
    co_await rs.done_ev.Wait();
  }
  const Cycles ramp_end = cl.exec.now();
  std::printf("ramp: %d connections in %llu cycles (failures=%d)\n", holders,
              static_cast<unsigned long long>(ramp_end), rs.holder_failures);
  std::printf("established now=%d peak=%d half_open=%d\n",
              cl.server->established_count(), cl.server->peak_established(),
              cl.server->half_open_count());

  std::unique_ptr<fault::Injector> inj;
  Cycles attack_start = 0;
  Cycles attack_end = 0;
  Cycles run_end;
  if (clean) {
    run_end = ramp_end + sz.sustain;
    cl.exec.Spawn(ArrivalGen(cl, rs, run_end, bench::LoadShape::kDiurnal,
                             10'000'000, sz.arrival_gap));
  } else {
    attack_start = ramp_end + sz.baseline;
    attack_end = attack_start + sz.attack;
    run_end = attack_end + sz.recovery;
    double prob = chaos_seed == 0 ? 1.0 : 0.85;
    fault::FaultPlan plan;
    switch (attack) {
      case Attack::kSynFlood:
        plan.SynFlood(attack_start, attack_end, fault::kUnlimited, prob, chaos_seed);
        break;
      case Attack::kSlowloris:
        plan.Slowloris(attack_start, attack_end, fault::kUnlimited, prob, chaos_seed);
        break;
      case Attack::kChurn:
        plan.ConnChurn(attack_start, attack_end, fault::kUnlimited, prob, chaos_seed);
        break;
      case Attack::kClean:
        break;
    }
    inj = std::make_unique<fault::Injector>(plan);
    inj->Install();
    cl.exec.Spawn(ArrivalGen(cl, rs, run_end, bench::LoadShape::kSteady, 0,
                             sz.arrival_gap));
    switch (attack) {
      case Attack::kSynFlood:
        cl.exec.Spawn(SynFloodGen(cl, rs, attack_end, 15'000));
        break;
      case Attack::kSlowloris:
        for (int i = 0; i < 8; ++i) {
          cl.exec.Spawn(SlowlorisConn(cl, rs, attack_start, attack_end, 300'000));
        }
        break;
      case Attack::kChurn:
        cl.exec.Spawn(ChurnGen(cl, rs, attack_end, 40'000));
        break;
      case Attack::kClean:
        break;
    }
  }

  // Let the run play out, then drain in-flight requests.
  while (cl.exec.now() < run_end) {
    co_await cl.exec.Delay(run_end - cl.exec.now());
  }
  while (rs.inflight > 0) {
    co_await cl.exec.Delay(500'000);
  }
  if (inj != nullptr) {
    std::printf("attack window [%llu, %llu)\n",
                static_cast<unsigned long long>(attack_start),
                static_cast<unsigned long long>(attack_end));
    inj->PrintActivationTable();
    gates.Check("activation gate (every spec fired)", inj->AllSpecsActivated());
    inj->Uninstall();
  }

  // Teardown: close pooled requester connections, then the held ballast.
  for (std::size_t i = 0; i < rs.pools.size(); ++i) {
    auto& stack = *cl.clients[i];
    while (!rs.pools[i].empty()) {
      net::NetStack::TcpConn* conn = rs.pools[i].front();
      rs.pools[i].pop_front();
      co_await stack.TcpClose(*conn);
      stack.Release(conn);
    }
  }
  int close_left = kClientStacks;
  sim::Event closed_ev(cl.exec);
  for (int i = 0; i < kClientStacks; ++i) {
    cl.exec.Spawn(CloseHeld(cl, rs, i, &close_left, &closed_ev));
  }
  while (close_left > 0) {
    co_await closed_ev.Wait();
  }
  // Leave time for FIN/ACK dances, TIME_WAIT reaps, and half-open expiries
  // to drain on both sides.
  co_await cl.exec.Delay(3'000'000);

  // --- Report ---
  std::printf("ledger: offered=%llu served=%llu shed=%llu refused=%llu reset=%llu\n",
              static_cast<unsigned long long>(rs.ledger.offered),
              static_cast<unsigned long long>(rs.ledger.served),
              static_cast<unsigned long long>(rs.ledger.shed),
              static_cast<unsigned long long>(rs.ledger.refused),
              static_cast<unsigned long long>(rs.ledger.reset));
  gates.Check("ledger gate (served+shed+refused+reset == offered)", rs.ledger.Exact());
  std::printf("keepalive reuses=%llu\n",
              static_cast<unsigned long long>(rs.keepalive_reuses));
  const auto& tbl = cl.server->conn_table();
  std::printf("server table: peak_live=%zu capacity=%zu rehashes=%llu max_probe=%zu "
              "inserts=%llu erases=%llu\n",
              tbl.peak_live(), tbl.capacity(),
              static_cast<unsigned long long>(tbl.rehashes()), tbl.max_probe(),
              static_cast<unsigned long long>(tbl.inserts()),
              static_cast<unsigned long long>(tbl.erases()));
  std::printf("server wheel: scheduled=%llu fired=%llu cancelled=%llu cascades=%llu "
              "armed_end=%zu\n",
              static_cast<unsigned long long>(cl.server->wheel().scheduled()),
              static_cast<unsigned long long>(cl.server->wheel().fired()),
              static_cast<unsigned long long>(cl.server->wheel().cancelled()),
              static_cast<unsigned long long>(cl.server->wheel().cascades()),
              cl.server->wheel().armed());
  std::printf("server closes: active_fin=%llu passive_fin=%llu reset=%llu "
              "connect_timeout=%llu half_open_expiry=%llu retx_abort=%llu\n",
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kActiveFin)),
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kPassiveFin)),
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kReset)),
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kConnectTimeout)),
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kHalfOpenExpiry)),
              static_cast<unsigned long long>(cl.server->closes(net::CloseCause::kRetxAbort)));
  std::printf("syn cookies: sent=%llu accepts=%llu rejects=%llu evicted=%llu "
              "blackholed=%llu\n",
              static_cast<unsigned long long>(cl.server->syn_cookies_sent()),
              static_cast<unsigned long long>(cl.server->syn_cookie_accepts()),
              static_cast<unsigned long long>(cl.server->syn_cookie_rejects()),
              static_cast<unsigned long long>(cl.server->half_open_evicted()),
              static_cast<unsigned long long>(cl.blackholed));
  if (clean) {
    gates.Check("sustain gate (peak established >= target)",
                cl.server->peak_established() >= holders && rs.holder_failures == 0);
  } else {
    std::uint64_t base_avg =
        BucketAvg(rs.served_buckets, sz.bucket, ramp_end, attack_start);
    std::uint64_t attack_avg =
        BucketAvg(rs.served_buckets, sz.bucket, attack_start, attack_end);
    std::printf("goodput/bucket: baseline=%llu attack=%llu\n",
                static_cast<unsigned long long>(base_avg),
                static_cast<unsigned long long>(attack_avg));
    gates.Check("attack goodput gate (>=50%% of baseline)",
                attack_avg * 2 >= base_avg);
    // Recovery: first full bucket after the attack at >=90% of baseline.
    std::size_t rb0 = static_cast<std::size_t>(attack_end / sz.bucket) + 1;
    std::size_t rb1 = static_cast<std::size_t>(run_end / sz.bucket);
    bool recovered = false;
    for (std::size_t b = rb0; b < rb1; ++b) {
      std::uint64_t got = b < rs.served_buckets.size() ? rs.served_buckets[b] : 0;
      if (got * 10 >= base_avg * 9) {
        Cycles window = static_cast<Cycles>(b + 1) * sz.bucket - attack_end;
        std::printf("recovered to >=90%% of baseline %llu cycles after attack end\n",
                    static_cast<unsigned long long>(window));
        recovered = true;
        break;
      }
    }
    gates.Check("recovery gate (>=90%% of baseline within the window)", recovered);
  }
  bool no_leaks = tbl.live() == 0 && cl.server->established_count() == 0 &&
                  cl.server->half_open_count() == 0 &&
                  cl.server->time_wait_count() == 0 &&
                  cl.server->wheel().armed() == 0 &&
                  tbl.inserts() == tbl.erases();
  if (!no_leaks) {
    std::printf("leak detail: live=%zu est=%d half_open=%d time_wait=%d "
                "wheel_armed=%zu inserts=%llu erases=%llu\n",
                tbl.live(), cl.server->established_count(),
                cl.server->half_open_count(), cl.server->time_wait_count(),
                cl.server->wheel().armed(),
                static_cast<unsigned long long>(tbl.inserts()),
                static_cast<unsigned long long>(tbl.erases()));
  }
  gates.Check("leak gate (table, counters, and wheel fully drained)", no_leaks);
  *finished = true;
}

bool RunOne(Attack attack, const Sizes& sz, std::uint64_t chaos_seed,
            bench::TraceSession& trace_session) {
  std::printf("\n--- %s ---\n", AttackName(attack));
  trace_session.BeginRun(AttackName(attack));
  recover::RecoveryConfig rc;
  rc.tcp_rto = 2'000'000;  // no loss here; don't let handshake queueing look like it
  recover::ScopedRecoveryConfig scoped_rc(rc);
  Cluster cl(/*lifecycle_clients=*/true);
  RunState rs(cl.exec);
  rs.bucket = sz.bucket;
  rs.pools.resize(kClientStacks);
  rs.held.resize(kClientStacks);
  apps::HttpServer http(cl.m, *cl.server, 80, nullptr, /*request_cost=*/8'000);
  apps::HttpServer::KeepAlive ka;
  ka.enabled = true;
  ka.max_requests = 64;
  ka.idle_timeout = 0;  // holders are closed by clients; idle-close is unit-tested
  ka.max_pipeline = 8;
  ka.header_deadline = 1'500'000;
  http.SetKeepAlive(ka);
  cl.exec.Spawn(http.Serve());
  Gates gates;
  bool finished = false;
  cl.exec.Spawn(Scenario(cl, rs, sz, attack, chaos_seed, gates, &finished));
  Cycles elapsed = cl.exec.Run();
  std::printf("http: served=%llu shed_progress=%llu idle_closes=%llu "
              "budget_closes=%llu pipeline_closes=%llu bad=%llu\n",
              static_cast<unsigned long long>(http.requests_served()),
              static_cast<unsigned long long>(http.shed_progress()),
              static_cast<unsigned long long>(http.idle_closes()),
              static_cast<unsigned long long>(http.budget_closes()),
              static_cast<unsigned long long>(http.pipeline_closes()),
              static_cast<unsigned long long>(http.bad_requests()));
  std::printf("elapsed=%llu cycles\n", static_cast<unsigned long long>(elapsed));
  gates.Check("run completion gate (scenario finished and drained)", finished);
  return gates.ok;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bool quick = false;
  std::uint64_t chaos_seed = 0;
  std::string only = "all";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
      chaos_seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--attack=", 9) == 0) {
      only = arg + 9;
    } else {
      std::fprintf(stderr,
                   "usage: conn_scale [--quick] [--chaos-seed=N] "
                   "[--attack=clean|synflood|slowloris|churn|all]\n");
      return 2;
    }
  }
  Sizes sz = quick ? QuickSizes() : Sizes();
  bench::PrintHeader("Connection-scale serving: timer-wheel lifecycle, keep-alive, attacks");
  std::printf("mode=%s attack=%s chaos_seed=%llu holders=%d attack_holders=%d\n",
              quick ? "quick" : "full", only.c_str(),
              static_cast<unsigned long long>(chaos_seed), sz.holders,
              sz.attack_holders);
  bool ok = true;
  auto want = [&only](const char* name) { return only == "all" || only == name; };
  if (want("clean")) {
    ok = RunOne(Attack::kClean, sz, chaos_seed, trace_session) && ok;
  }
  if (want("synflood")) {
    ok = RunOne(Attack::kSynFlood, sz, chaos_seed, trace_session) && ok;
  }
  if (want("slowloris")) {
    ok = RunOne(Attack::kSlowloris, sz, chaos_seed, trace_session) && ok;
  }
  if (want("churn")) {
    ok = RunOne(Attack::kChurn, sz, chaos_seed, trace_session) && ok;
  }
  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
