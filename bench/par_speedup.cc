// Parallel-engine speedup sweep: events/sec and wall-clock at 1/2/4/8 host
// threads, with bit-identical schedules as the acceptance gate.
//
// Two multi-domain workloads, each run once per host thread count on fresh
// worlds:
//
//   * scaleout-partitioned — the section 5.4 serving path partitioned the
//     multikernel way: 8 domains, each owning a complete machine (client
//     stack, server stack, httpd, closed-loop clients — the sec54_scaleout
//     crosscheck pipeline), plus a gossip NIC bridged to the next domain by
//     net::CrossWire in a ring. The gossip frames are real cross-domain
//     traffic through the engine's mailboxes; the serving load is the
//     per-domain compute that parallelism should win back.
//   * fig8-replicas — 8 independent replicas of the fig8 two-phase-commit
//     world (8x4 AMD machine, monitor collective, 16 pipelined 32-core
//     retypes each). No cross-domain links: the embarrassingly parallel
//     upper bound for the engine.
//
// For every workload the per-run digest folds each domain's final clock and
// event count (plus serving/gossip totals and the engine's cross-message
// count) into one value; every thread count must produce the 1-thread
// digest bit-for-bit, and the bench exits non-zero otherwise. Wall-clock,
// events/sec, and speedup land in BENCH_parallel.json (--json=PATH).
// host_cores is recorded because speedup is bounded by the machine this
// runs on: on a single-core host all thread counts measure the same
// sequential schedule plus barrier overhead.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/httpd.h"
#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "net/crosswire.h"
#include "net/nic.h"
#include "net/stack.h"
#include "sim/executor.h"
#include "sim/parallel.h"
#include "skb/skb.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 77);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 77};

constexpr int kServicesCore = 0;  // client cluster stand-in
constexpr int kDriverCore = 2;
constexpr int kServerCore = 3;
constexpr Cycles kDriverFrameCost = 1400;

// Inter-domain gossip wire: ~3 us one way at 3 GHz — a top-of-rack switch
// hop between machines. This is also the engine's conservative lookahead
// for the ring, so epochs are 10k cycles wide.
constexpr Cycles kGossipWireLatency = 10'000;

net::StackCosts FreeCosts() {
  net::StackCosts c;
  c.per_packet_in = 0;
  c.per_packet_out = 0;
  c.per_byte_checksum = 0;
  return c;
}

std::uint64_t DigestMix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the value's bytes, folded 64 bits at a time.
  h ^= v;
  return h * 0x100000001b3ULL;
}

struct RunMeasure {
  int threads = 0;
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t epochs = 0;
  std::uint64_t digest = 0;
};

// ---------------------------------------------------------------------------
// Workload 1: partitioned section 5.4 serving ring.

// One domain's world: the sec54_scaleout crosscheck pipeline (client stack
// and server stack wired back-to-back through a driver-core charge, httpd,
// closed-loop clients) plus a gossip NIC facing the inter-domain ring.
struct ServeWorld {
  ServeWorld(sim::Executor& exec, int domain)
      : machine(exec, hw::Amd2x2()),
        server(machine, kServerCore, kServerIp, kServerMac, net::StackCosts{}),
        client(machine, kServicesCore, kClientIp, kClientMac, FreeCosts()),
        gossip_nic(machine, GossipConfig()),
        http(machine, server, 80, {}),
        domain_id(domain) {
    server.AddArp(kClientIp, kClientMac);
    client.AddArp(kServerIp, kServerMac);
    server.SetOutput([this](Packet p) -> Task<> {
      co_await machine.Compute(kDriverCore, kDriverFrameCost);
      co_await client.Input(std::move(p));
    });
    client.SetOutput([this](Packet p) -> Task<> {
      co_await machine.Compute(kDriverCore, kDriverFrameCost);
      co_await server.Input(std::move(p));
    });
  }

  static net::SimNic::Config GossipConfig() {
    net::SimNic::Config cfg;
    cfg.gbps = 10.0;
    cfg.irq_core = kDriverCore;
    return cfg;
  }

  hw::Machine machine;
  net::NetStack server;
  net::NetStack client;
  net::SimNic gossip_nic;
  apps::HttpServer http;
  int domain_id = 0;
  int requests_done = 0;
  std::uint64_t gossip_received = 0;
};

Task<> ServeClient(ServeWorld& w, int requests) {
  for (int r = 0; r < requests; ++r) {
    net::NetStack::TcpConn* conn = co_await w.client.TcpConnect(kServerIp, 80);
    co_await w.client.TcpSend(*conn, "GET /index.html HTTP/1.0\r\n\r\n");
    while (!conn->peer_closed) {
      auto chunk = co_await conn->Read();
      if (chunk.empty()) {
        break;
      }
    }
    co_await w.client.TcpClose(*conn);
    ++w.requests_done;
  }
}

Task<> GossipSource(ServeWorld& w, int frames, Cycles interval) {
  for (int i = 0; i < frames; ++i) {
    Packet p(64, static_cast<std::uint8_t>(w.domain_id));
    (void)co_await w.gossip_nic.DriverTxPush(kDriverCore, std::move(p));
    co_await w.machine.exec().Delay(interval);
  }
}

Task<> GossipSink(ServeWorld& w, int expect) {
  while (w.gossip_received < static_cast<std::uint64_t>(expect)) {
    if (w.gossip_nic.RxReady()) {
      w.gossip_nic.SetInterruptsEnabled(0, false);
      auto frame = co_await w.gossip_nic.DriverRxPop(kDriverCore);
      if (frame) {
        ++w.gossip_received;
      }
      continue;
    }
    w.gossip_nic.SetInterruptsEnabled(0, true);
    if (!w.gossip_nic.RxReady()) {
      co_await w.gossip_nic.rx_irq().Wait();
      co_await w.machine.Trap(kDriverCore);
    }
  }
}

RunMeasure RunScaleoutPartitioned(int domains, int threads, bool quick) {
  const int kClients = quick ? 2 : 4;
  const int kRequestsPerClient = quick ? 6 : 20;
  const int kGossipFrames = quick ? 40 : 160;
  const Cycles kGossipInterval = 25'000;

  sim::ParallelEngine::Options opts;
  opts.domains = domains;
  opts.threads = threads;
  sim::ParallelEngine engine(opts);

  std::vector<std::unique_ptr<ServeWorld>> worlds;
  for (int d = 0; d < domains; ++d) {
    worlds.push_back(std::make_unique<ServeWorld>(engine.domain(d), d));
  }
  std::vector<std::unique_ptr<net::CrossWire>> ring;
  for (int d = 0; d < domains; ++d) {
    const int next = (d + 1) % domains;
    ring.push_back(std::make_unique<net::CrossWire>(engine, d, worlds[static_cast<std::size_t>(d)]->gossip_nic,
                                                    next, worlds[static_cast<std::size_t>(next)]->gossip_nic,
                                                    kGossipWireLatency));
  }
  for (auto& w : ring) {
    w->Start();
  }
  for (int d = 0; d < domains; ++d) {
    ServeWorld& w = *worlds[static_cast<std::size_t>(d)];
    engine.domain(d).Spawn(w.http.Serve());
    for (int c = 0; c < kClients; ++c) {
      engine.domain(d).Spawn(ServeClient(w, kRequestsPerClient));
    }
    engine.domain(d).Spawn(GossipSource(w, kGossipFrames, kGossipInterval));
    engine.domain(d).Spawn(GossipSink(w, kGossipFrames));
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.Run();
  const auto t1 = std::chrono::steady_clock::now();

  RunMeasure m;
  m.threads = threads;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.events = engine.events_dispatched();
  m.cross_messages = engine.cross_messages();
  m.epochs = engine.epochs();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int d = 0; d < domains; ++d) {
    const ServeWorld& w = *worlds[static_cast<std::size_t>(d)];
    h = DigestMix(h, engine.domain(d).now());
    h = DigestMix(h, engine.domain(d).events_dispatched());
    h = DigestMix(h, static_cast<std::uint64_t>(w.requests_done));
    h = DigestMix(h, w.gossip_received);
  }
  h = DigestMix(h, m.cross_messages);
  m.digest = h;
  return m;
}

// ---------------------------------------------------------------------------
// Workload 2: independent fig8 two-phase-commit replicas.

struct TwopcWorld {
  explicit TwopcWorld(sim::Executor& exec)
      : machine(exec, hw::Amd8x4()),
        drivers(kernel::CpuDriver::BootAll(machine)),
        skb(machine),
        sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();  // boot happens at setup time, on the calling thread
    sys.Boot();
  }
  hw::Machine machine;
  std::vector<std::unique_ptr<kernel::CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
  int remaining = 0;
};

Task<> TwopcWorker(TwopcWorld& w, caps::CapId root) {
  (void)co_await w.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                          monitor::Protocol::kNumaMulticast, {},
                                          /*ncores=*/32);
  if (--w.remaining == 0) {
    w.sys.Shutdown();
  }
}

RunMeasure RunFig8Replicas(int domains, int threads, bool quick) {
  const int kOps = quick ? 6 : 16;

  sim::ParallelEngine::Options opts;
  opts.domains = domains;
  opts.threads = threads;
  sim::ParallelEngine engine(opts);

  std::vector<std::unique_ptr<TwopcWorld>> worlds;
  for (int d = 0; d < domains; ++d) {
    worlds.push_back(std::make_unique<TwopcWorld>(engine.domain(d)));
    TwopcWorld& w = *worlds.back();
    w.remaining = kOps;
    for (int i = 0; i < kOps; ++i) {
      caps::CapId root = w.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24);
      engine.domain(d).Spawn(TwopcWorker(w, root));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.Run();
  const auto t1 = std::chrono::steady_clock::now();

  RunMeasure m;
  m.threads = threads;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.events = engine.events_dispatched();
  m.cross_messages = engine.cross_messages();
  m.epochs = engine.epochs();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int d = 0; d < domains; ++d) {
    h = DigestMix(h, engine.domain(d).now());
    h = DigestMix(h, engine.domain(d).events_dispatched());
    h = DigestMix(h, static_cast<std::uint64_t>(worlds[static_cast<std::size_t>(d)]->remaining));
  }
  m.digest = h;
  return m;
}

// ---------------------------------------------------------------------------

struct WorkloadReport {
  std::string name;
  int domains = 0;
  std::vector<RunMeasure> runs;
  bool deterministic = true;
};

void PrintWorkload(const WorkloadReport& r) {
  std::printf("\n-- %s (%d domains) --\n", r.name.c_str(), r.domains);
  std::printf("%8s %12s %14s %10s %8s %10s  %s\n", "threads", "wall ms", "events/s",
              "speedup", "epochs", "cross", "digest");
  const double base = r.runs.empty() ? 0 : r.runs.front().wall_ms;
  for (const RunMeasure& m : r.runs) {
    std::printf("%8d %12.1f %14.0f %9.2fx %8llu %10llu  %016llx\n", m.threads,
                m.wall_ms,
                m.wall_ms > 0 ? static_cast<double>(m.events) / (m.wall_ms / 1e3) : 0,
                m.wall_ms > 0 ? base / m.wall_ms : 0,
                static_cast<unsigned long long>(m.epochs),
                static_cast<unsigned long long>(m.cross_messages),
                static_cast<unsigned long long>(m.digest));
  }
  std::printf("schedule across thread counts: %s\n",
              r.deterministic ? "bit-identical" : "DIVERGED");
}

void WriteJson(const std::string& path, const std::vector<WorkloadReport>& reports,
               unsigned host_cores) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"par_speedup\",\n  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const WorkloadReport& r = reports[i];
    const double base = r.runs.empty() ? 0 : r.runs.front().wall_ms;
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n      \"domains\": %d,\n",
                 r.name.c_str(), r.domains);
    std::fprintf(f, "      \"deterministic\": %s,\n      \"runs\": [\n",
                 r.deterministic ? "true" : "false");
    for (std::size_t j = 0; j < r.runs.size(); ++j) {
      const RunMeasure& m = r.runs[j];
      std::fprintf(f,
                   "        {\"threads\": %d, \"wall_ms\": %.3f, "
                   "\"events\": %llu, \"events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"epochs\": %llu, "
                   "\"cross_messages\": %llu, \"digest\": \"%016llx\"}%s\n",
                   m.threads, m.wall_ms, static_cast<unsigned long long>(m.events),
                   m.wall_ms > 0 ? static_cast<double>(m.events) / (m.wall_ms / 1e3) : 0,
                   m.wall_ms > 0 ? base / m.wall_ms : 0,
                   static_cast<unsigned long long>(m.epochs),
                   static_cast<unsigned long long>(m.cross_messages),
                   static_cast<unsigned long long>(m.digest),
                   j + 1 < r.runs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults written to %s\n", path.c_str());
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::ParseTraceFlags(argc, argv);  // accepted for harness uniformity; not traced
  // --machines is the rack-wide spelling of this bench's --domains (each
  // engine domain owns a complete machine here), so run scripts can forward
  // one flag to every bench.
  const int machines = bench::ParseMachinesFlag(argc, argv, 0);
  bool quick = false;
  int domains = machines != 0 ? machines : 8;
  std::string json_path = "BENCH_parallel.json";
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--domains=", 10) == 0) {
      domains = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      // Single-point mode: run only this thread count (plus the 1-thread
      // reference for the digest comparison).
      const int t = std::atoi(argv[i] + 10);
      thread_counts = t == 1 ? std::vector<int>{1} : std::vector<int>{1, t};
    }
  }
  if (domains < 2 || domains > sim::kMaxDomains) {
    std::fprintf(stderr, "need 2..%d domains\n", sim::kMaxDomains);
    return 2;
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  bench::PrintHeader("Parallel DES engine: wall-clock speedup vs host threads");
  std::printf("host cores: %u  (speedup is bounded by min(threads, domains, host cores))\n",
              host_cores);

  std::vector<WorkloadReport> reports;
  struct Spec {
    const char* name;
    RunMeasure (*run)(int, int, bool);
  };
  const Spec specs[] = {
      {"scaleout-partitioned", &RunScaleoutPartitioned},
      {"fig8-replicas", &RunFig8Replicas},
  };
  bool all_deterministic = true;
  for (const Spec& s : specs) {
    WorkloadReport r;
    r.name = s.name;
    r.domains = domains;
    for (int t : thread_counts) {
      r.runs.push_back(s.run(domains, t, quick));
      if (r.runs.back().digest != r.runs.front().digest) {
        r.deterministic = false;
      }
    }
    all_deterministic = all_deterministic && r.deterministic;
    PrintWorkload(r);
    reports.push_back(std::move(r));
  }

  WriteJson(json_path, reports, host_cores);
  if (!all_deterministic) {
    std::fprintf(stderr, "FAIL: thread counts produced different schedules\n");
    return 1;
  }
  return 0;
}
