#!/usr/bin/env bash
# Golden-output regression gate.
#
# Every paper bench is deterministic (simulated cycles, seeded RNG), so its
# stdout must reproduce bench/golden/<bench>.txt byte-for-byte. Any drift —
# an intended recalibration or an accidental perturbation of the event
# schedule — fails this gate and must be reviewed; refresh the goldens
# explicitly once the new numbers are understood:
#
#   bench/check_golden.sh             # verify; exit 1 on any byte difference
#   bench/check_golden.sh --update    # rewrite goldens from a fresh run
#
# BUILD_DIR selects the build tree (default: build). Binaries must already be
# built; this script never compiles.
#
# THREADS=<n> appends --threads=<n> to every bench invocation. The goldens
# are recorded at one host thread; re-running the gate with THREADS=4 proves
# the parallel engine's promise that host thread count never changes a
# schedule (sim/parallel.h). Goldens are never updated at THREADS != 1.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
GOLDEN_DIR=bench/golden
THREADS="${THREADS:-1}"
extra_args=()
if [[ "$THREADS" != "1" ]]; then
  extra_args+=("--threads=$THREADS")
fi

BENCHES=(
  table1_lrpc
  table2_urpc
  table3_ipc
  table4_loopback
  fig3_shm_vs_msg
  fig6_shootdown
  fig7_unmap
  fig8_twopc
  fig9_compute
  sync_scaling
  sec54_netperf
  sec54_webserver
  sec54_scaleout
  sec54_failover
  store_readwrite
  rack_serving
  polling_model
  ablation_urpc
  conn_scale
)

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  mkdir -p "$GOLDEN_DIR"
fi

fail=0
for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "check_golden: missing binary $bin (build first)" >&2
    exit 2
  fi
  if [[ $update == 1 ]]; then
    if [[ "$THREADS" != "1" ]]; then
      echo "check_golden: refusing --update with THREADS=$THREADS (goldens are recorded at 1 thread)" >&2
      exit 2
    fi
    "$bin" > "$GOLDEN_DIR/$b.txt"
    echo "updated: $b"
    continue
  fi
  if [[ ! -f "$GOLDEN_DIR/$b.txt" ]]; then
    echo "GOLDEN MISSING: $GOLDEN_DIR/$b.txt (run with --update)" >&2
    fail=1
    continue
  fi
  if diff -u "$GOLDEN_DIR/$b.txt" <("$bin" ${extra_args[@]+"${extra_args[@]}"}) > /tmp/golden_diff_$b; then
    echo "ok: $b"
  else
    echo "GOLDEN MISMATCH: $b" >&2
    cat /tmp/golden_diff_$b >&2
    fail=1
  fi
done

if [[ $fail != 0 ]]; then
  echo "check_golden: FAILED — output drifted from bench/golden/" >&2
fi
exit $fail
