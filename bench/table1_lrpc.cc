// Table 1: LRPC latency (one-way, user program to user program) on the four
// paper platforms.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "sim/executor.h"
#include "sim/stats.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using kernel::LrpcMsg;
using sim::Cycles;
using sim::Task;

Task<> Caller(sim::Executor& exec, CpuDriver& drv, kernel::EndpointId ep, int iters,
              sim::RunningStat& stat, Cycles* handler_entry) {
  for (int i = 0; i < iters; ++i) {
    Cycles t0 = exec.now();
    co_await drv.LrpcCall(ep, LrpcMsg{});
    stat.Add(static_cast<double>(*handler_entry - t0));
  }
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Table 1: LRPC one-way latency");
  std::printf("%-20s %10s %6s %8s   %s\n", "System", "cycles", "(sd)", "ns", "paper");
  struct Row {
    hw::PlatformSpec spec;
    double paper_cycles;
    double paper_ns;
  };
  std::vector<Row> rows = {{hw::Intel2x4(), 845, 318},
                           {hw::Amd2x2(), 757, 270},
                           {hw::Amd4x4(), 1463, 585},
                           {hw::Amd8x4(), 1549, 774}};
  for (auto& row : rows) {
    sim::Executor exec;
    hw::Machine m(exec, row.spec);
    auto drivers = kernel::CpuDriver::BootAll(m);
    kernel::CpuDriver& drv = *drivers[0];
    sim::Cycles handler_entry = 0;
    auto ep = drv.RegisterEndpoint([&handler_entry, &exec](const kernel::LrpcMsg&)
                                       -> sim::Task<> {
      handler_entry = exec.now();
      co_return;
    });
    sim::RunningStat stat;
    exec.Spawn(Caller(exec, drv, ep, 200, stat, &handler_entry));
    exec.Run();
    std::printf("%-20s %10.0f %6.0f %8.0f   %4.0f cycles / %3.0f ns\n", row.spec.name.c_str(),
                stat.mean(), stat.stddev(), stat.mean() / row.spec.clock_ghz, row.paper_cycles,
                row.paper_ns);
  }
  std::printf("\n(The simulator is deterministic, so sd = 0; the paper's sd is 19-32.)\n");
  return 0;
}
