// Shared output helpers for the benchmark harnesses: every bench prints the
// rows/series of the paper table or figure it regenerates, in simulated
// cycles (the paper's metric).
#ifndef MK_BENCH_BENCH_UTIL_H_
#define MK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mk::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// A column-oriented series table: first column is the x axis (e.g. cores),
// remaining columns are named series. Mirrors the paper's figures.
class SeriesTable {
 public:
  explicit SeriesTable(std::string x_name) : x_name_(std::move(x_name)) {}

  void AddSeries(std::string name) { series_names_.push_back(std::move(name)); }

  void AddRow(double x, std::vector<double> values) {
    rows_.push_back({x, std::move(values)});
  }

  void Print(const char* fmt = "%12.1f") const {
    std::printf("%10s", x_name_.c_str());
    for (const auto& n : series_names_) {
      std::printf("%14s", n.c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("%10.0f", r.x);
      for (double v : r.values) {
        std::printf("  ");
        std::printf(fmt, v);
      }
      std::printf("\n");
    }
  }

 private:
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::string x_name_;
  std::vector<std::string> series_names_;
  std::vector<Row> rows_;
};

// Paper-vs-measured comparison rows for tables.
inline void PrintCompareHeader(const char* label) {
  std::printf("%-34s %12s %12s %9s\n", label, "paper", "measured", "ratio");
}

inline void PrintCompareRow(const std::string& name, double paper, double measured) {
  std::printf("%-34s %12.2f %12.2f %8.2fx\n", name.c_str(), paper, measured,
              paper > 0 ? measured / paper : 0.0);
}

}  // namespace mk::bench

#endif  // MK_BENCH_BENCH_UTIL_H_
