// Shared output helpers for the benchmark harnesses: every bench prints the
// rows/series of the paper table or figure it regenerates, in simulated
// cycles (the paper's metric).
#ifndef MK_BENCH_BENCH_UTIL_H_
#define MK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "trace/export.h"
#include "trace/trace.h"

namespace mk::bench {

// --trace=<file> / --trace-categories=<list> / --trace-capacity=<n> flags,
// shared by every paper bench. A bench constructs a TraceSession from the
// parsed flags; if tracing was requested it installs a Tracer for the
// bench's lifetime and writes the Perfetto JSON (plus a text summary on
// stdout) at scope exit.
struct TraceFlags {
  std::string path;                                    // empty = tracing off
  std::uint32_t mask = trace::kAllCategories;
  std::size_t capacity = trace::Tracer::kDefaultCapacity;
};

// Consumes the trace flags from argv (compacting it) so benches keep their
// own argument handling. Exits with a usage message on a malformed flag.
inline TraceFlags ParseTraceFlags(int& argc, char** argv) {
  TraceFlags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      flags.path = arg + 8;
    } else if (std::strncmp(arg, "--trace-categories=", 19) == 0) {
      if (!trace::ParseCategoryList(arg + 19, &flags.mask)) {
        std::fprintf(stderr, "unknown trace category in '%s' (known:", arg + 19);
        for (std::size_t c = 0; c < trace::kNumCategories; ++c) {
          std::fprintf(stderr, " %s",
                       trace::CategoryName(static_cast<trace::Category>(c)));
        }
        std::fprintf(stderr, ")\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--trace-capacity=", 17) == 0) {
      flags.capacity = static_cast<std::size_t>(std::strtoull(arg + 17, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

// Consumes --threads=<n> from argv (compacting it). Every paper bench
// accepts the flag so the golden gate can be re-run at any host thread
// count; the paper benches simulate one machine — a single engine domain —
// whose schedule is host-thread-invariant by construction, so the flag
// cannot change their output (that invariance is exactly what the gate
// verifies). Multi-domain benches (par_speedup) use the value to size the
// worker pool. Exits with a usage message on a malformed value.
inline int ParseThreadsFlag(int& argc, char** argv, int def = 1) {
  int threads = def;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      char* end = nullptr;
      const long v = std::strtol(arg + 10, &end, 10);
      if (end == arg + 10 || *end != '\0' || v < 1 || v > 1024) {
        std::fprintf(stderr, "bad --threads value '%s' (want 1..1024)\n", arg + 10);
        std::exit(2);
      }
      threads = static_cast<int>(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return threads;
}

// Consumes --machines=<n> from argv (compacting it): the rack-topology size,
// parsed uniformly across benches. For rack benches (rack_serving) this is
// the number of backend machines; par_speedup treats it as an alias for
// --domains so run scripts can forward one flag everywhere. Single-machine
// benches accept and ignore any value other than 1 with a warning rather
// than silently simulating a different topology than asked. Exits with a
// usage message on a malformed value.
inline int ParseMachinesFlag(int& argc, char** argv, int def = 1) {
  int machines = def;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--machines=", 11) == 0) {
      char* end = nullptr;
      const long v = std::strtol(arg + 11, &end, 10);
      if (end == arg + 11 || *end != '\0' || v < 1 || v > 61) {
        std::fprintf(stderr, "bad --machines value '%s' (want 1..61)\n", arg + 11);
        std::exit(2);
      }
      machines = static_cast<int>(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return machines;
}

// RAII trace scope for a bench run. Inactive (and free) when no --trace flag
// was given.
class TraceSession {
 public:
  explicit TraceSession(const TraceFlags& flags) : path_(flags.path) {
    if (!path_.empty()) {
      tracer_ = std::make_unique<trace::Tracer>(flags.capacity, flags.mask);
      tracer_->Install();
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->Uninstall();
    if (trace::WritePerfettoJson(*tracer_, path_)) {
      std::printf("\ntrace written to %s (open in ui.perfetto.dev)\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", path_.c_str());
    }
    trace::PrintSummary(*tracer_, std::cout);
  }

  bool active() const { return tracer_ != nullptr; }
  trace::Tracer* tracer() { return tracer_.get(); }

  // Labels the records that follow (each label becomes its own Perfetto
  // process group, keeping re-run executors' restarted clocks apart).
  void BeginRun(const std::string& name) {
    if (tracer_ != nullptr) {
      tracer_->BeginRun(name);
    }
  }

 private:
  std::string path_;
  std::unique_ptr<trace::Tracer> tracer_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// A column-oriented series table: first column is the x axis (e.g. cores),
// remaining columns are named series. Mirrors the paper's figures.
class SeriesTable {
 public:
  explicit SeriesTable(std::string x_name) : x_name_(std::move(x_name)) {}

  void AddSeries(std::string name) { series_names_.push_back(std::move(name)); }

  void AddRow(double x, std::vector<double> values) {
    rows_.push_back({x, std::move(values)});
  }

  void Print(const char* fmt = "%12.1f") const {
    std::printf("%10s", x_name_.c_str());
    for (const auto& n : series_names_) {
      std::printf("%14s", n.c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("%10.0f", r.x);
      for (double v : r.values) {
        std::printf("  ");
        std::printf(fmt, v);
      }
      std::printf("\n");
    }
  }

 private:
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::string x_name_;
  std::vector<std::string> series_names_;
  std::vector<Row> rows_;
};

// Open-loop load shapes for arrival-rate schedules: given a phase position,
// return the instantaneous offered rate as a fraction of the shape's peak in
// parts-per-1024. Pure integer arithmetic (no libm) so every platform and
// thread count computes bit-identical schedules.
//   kSteady  — flat at peak.
//   kBursty  — square wave: peak for the first third of each period, 1/4
//              peak for the rest (connection churn storms arrive like this).
//   kDiurnal — triangle wave approximating a day's ramp-up/ramp-down.
enum class LoadShape { kSteady, kBursty, kDiurnal };

inline const char* LoadShapeName(LoadShape s) {
  switch (s) {
    case LoadShape::kSteady: return "steady";
    case LoadShape::kBursty: return "bursty";
    case LoadShape::kDiurnal: return "diurnal";
  }
  return "?";
}

// `pos` and `period` are in any consistent unit (cycles, slots); the result
// is in [0, 1024] with 1024 = peak rate.
inline std::uint64_t LoadShapeLevel(LoadShape shape, std::uint64_t pos,
                                    std::uint64_t period) {
  if (period == 0) {
    return 1024;
  }
  std::uint64_t p = pos % period;
  switch (shape) {
    case LoadShape::kSteady:
      return 1024;
    case LoadShape::kBursty:
      return p < period / 3 ? 1024 : 256;
    case LoadShape::kDiurnal: {
      // Triangle: 0 at the period edges, 1024 at the midpoint.
      std::uint64_t half = period / 2;
      std::uint64_t up = p <= half ? p : period - p;
      return half == 0 ? 1024 : (up * 1024) / half;
    }
  }
  return 1024;
}

// Paper-vs-measured comparison rows for tables.
inline void PrintCompareHeader(const char* label) {
  std::printf("%-34s %12s %12s %9s\n", label, "paper", "measured", "ratio");
}

inline void PrintCompareRow(const std::string& name, double paper, double measured) {
  std::printf("%-34s %12.2f %12.2f %8.2fx\n", name.c_str(), paper, measured,
              paper > 0 ? measured / paper : 0.0);
}

}  // namespace mk::bench

#endif  // MK_BENCH_BENCH_UTIL_H_
