// Figure 6: comparison of TLB shootdown protocols on the 8x4-core AMD
// system - the cost of the raw inter-core messaging mechanisms (without TLB
// invalidation) for Broadcast, Unicast, Multicast, and NUMA-Aware Multicast.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::OpFlags;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

Task<> Driver(monitor::MonitorSystem& sys, Protocol proto, int ncores, int iters,
              sim::RunningStat& stat) {
  OpFlags flags;
  flags.raw = true;       // raw messaging mechanism...
  flags.skip_tlb = true;  // ...without TLB invalidation
  for (int i = 0; i < iters; ++i) {
    auto result = co_await sys.on(0).GlobalInvalidate(
        0x400000, 1, proto, flags, static_cast<std::uint16_t>(ncores));
    if (i > 0) {  // first op warms channels
      stat.Add(static_cast<double>(result.latency));
    }
  }
  sys.Shutdown();
}

double Measure(Protocol proto, int ncores) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();  // boot-time measurement completes before the monitors start
  monitor::MonitorSystem sys(machine, skb, drivers);
  sys.Boot();
  sim::RunningStat stat;
  exec.Spawn(Driver(sys, proto, ncores, 12, stat));
  exec.Run();
  return stat.mean();
}

}  // namespace
}  // namespace mk

int main() {
  using namespace mk;
  bench::PrintHeader(
      "Figure 6: TLB shootdown protocols, raw messaging cost (8x4-core AMD, cycles)");
  bench::SeriesTable table("cores");
  for (Protocol p : {Protocol::kBroadcast, Protocol::kUnicast, Protocol::kMulticast,
                     Protocol::kNumaMulticast}) {
    table.AddSeries(monitor::ProtocolName(p));
  }
  for (int cores = 2; cores <= 32; cores += 2) {
    std::vector<double> row;
    for (Protocol p : {Protocol::kBroadcast, Protocol::kUnicast, Protocol::kMulticast,
                       Protocol::kNumaMulticast}) {
      row.push_back(Measure(p, cores));
    }
    table.AddRow(cores, std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape at 32 cores: Broadcast ~13k (worst; every slave pulls the line\n"
      "from the master's cache), Unicast ~11k (linear), Multicast ~5k (one message\n"
      "per package, parallel fan-out in the shared L3), NUMA-Aware Multicast lowest\n"
      "(~3-4k) and flattest, stepping only as tree levels grow.\n");
  return 0;
}
