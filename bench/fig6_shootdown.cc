// Figure 6: comparison of TLB shootdown protocols on the 8x4-core AMD
// system - the cost of the raw inter-core messaging mechanisms (without TLB
// invalidation) for Broadcast, Unicast, Multicast, and NUMA-Aware Multicast.
//
// With --trace=<file> the sweep is replaced by one labeled run per protocol
// at 32 cores (TLB invalidation enabled, so the trace carries the shootdown
// wave's TLB flow arrows) plus an "ipi-wakeup" run that forces the
// poll-then-block path, giving the trace cross-core IPI flows. The per-core
// op-arrival table printed alongside is the wave shape the paper describes.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::OpFlags;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

constexpr Protocol kProtocols[] = {Protocol::kBroadcast, Protocol::kUnicast,
                                   Protocol::kMulticast, Protocol::kNumaMulticast};

struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();  // boot-time measurement completes before the monitors start
    sys.emplace(machine, skb, drivers);
    sys->Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  std::optional<monitor::MonitorSystem> sys;
};

Task<> Driver(monitor::MonitorSystem& sys, Protocol proto, int ncores, int iters,
              OpFlags flags, sim::RunningStat& stat) {
  for (int i = 0; i < iters; ++i) {
    auto result = co_await sys.on(0).GlobalInvalidate(
        0x400000, 1, proto, flags, static_cast<std::uint16_t>(ncores));
    if (i > 0) {  // first op warms channels
      stat.Add(static_cast<double>(result.latency));
    }
  }
  sys.Shutdown();
}

double Measure(Protocol proto, int ncores) {
  System s;
  sim::RunningStat stat;
  OpFlags flags;
  flags.raw = true;       // raw messaging mechanism...
  flags.skip_tlb = true;  // ...without TLB invalidation
  s.exec.Spawn(Driver(*s.sys, proto, ncores, 12, flags, stat));
  s.exec.Run();
  return stat.mean();
}

// Traced run of one protocol: full shootdowns (TLB invalidation on) so the
// trace shows the wave; prints per-core first-op-arrival offsets.
void TraceProtocol(bench::TraceSession& session, Protocol proto, int ncores) {
  session.BeginRun(monitor::ProtocolName(proto));
  System s;
  sim::RunningStat stat;
  OpFlags flags;  // defaults: demux charged, TLB invalidation performed
  s.exec.Spawn(Driver(*s.sys, proto, ncores, 3, flags, stat));
  s.exec.Run();

  // The wave: first kMonHandleOp arrival per core, relative to the earliest.
  std::vector<Cycles> first(static_cast<std::size_t>(ncores), 0);
  std::vector<bool> seen(static_cast<std::size_t>(ncores), false);
  for (const trace::Record& r : session.tracer()->Snapshot()) {
    if (r.run != session.tracer()->current_run() ||
        r.event != trace::EventId::kMonHandleOp || r.core >= ncores || seen[r.core]) {
      continue;
    }
    seen[r.core] = true;
    first[r.core] = r.cycle;
  }
  Cycles base = 0;
  for (int c = 0; c < ncores; ++c) {
    if (seen[c] && (base == 0 || first[c] < base)) {
      base = first[c];
    }
  }
  std::printf("%-22s mean %.0f cycles; op arrival offsets (cycles):\n",
              monitor::ProtocolName(proto), stat.mean());
  for (int c = 0; c < ncores; ++c) {
    std::printf("  core %2d: %8llu\n", c,
                seen[c] ? static_cast<unsigned long long>(first[c] - base) : 0ull);
  }
}

// Forces the poll-then-block receive path so the trace contains wake-up IPI
// flows (the monitors' select loops never block, so the protocol runs above
// produce none).
Task<> IpiWakeupSender(System& s, urpc::Channel& ch, int msgs) {
  for (int i = 0; i < msgs; ++i) {
    co_await s.exec.Delay(30000);  // arrive well after the receiver blocked
    co_await ch.Send(urpc::Pack(/*tag=*/1, i));
  }
}

Task<> IpiWakeupReceiver(System& s, urpc::Channel& ch, int msgs) {
  for (int i = 0; i < msgs; ++i) {
    (void)co_await ch.RecvBlocking(*s.drivers[ch.receiver_core()],
                                   *s.drivers[ch.sender_core()], /*poll_window=*/500);
  }
}

void TraceIpiWakeups(bench::TraceSession& session) {
  session.BeginRun("ipi-wakeup");
  System s;
  s.sys->Shutdown();  // only the channel pair below should run
  urpc::Channel ch(s.machine, /*sender_core=*/0, /*receiver_core=*/12);
  constexpr int kMsgs = 4;
  s.exec.Spawn(IpiWakeupReceiver(s, ch, kMsgs));
  s.exec.Spawn(IpiWakeupSender(s, ch, kMsgs));
  s.exec.Run();
  const hw::CoreCounters total = s.machine.counters().Total();
  std::printf("ipi-wakeup run: %llu IPIs sent, %llu received\n",
              static_cast<unsigned long long>(total.ipis_sent),
              static_cast<unsigned long long>(total.ipis_received));
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::TraceSession session(trace_flags);
  if (session.active()) {
    bench::PrintHeader("Figure 6 (traced): TLB shootdown waves at 32 cores");
    for (Protocol p : kProtocols) {
      TraceProtocol(session, p, 32);
    }
    TraceIpiWakeups(session);
    return 0;
  }
  bench::PrintHeader(
      "Figure 6: TLB shootdown protocols, raw messaging cost (8x4-core AMD, cycles)");
  bench::SeriesTable table("cores");
  for (Protocol p : kProtocols) {
    table.AddSeries(monitor::ProtocolName(p));
  }
  for (int cores = 2; cores <= 32; cores += 2) {
    std::vector<double> row;
    for (Protocol p : kProtocols) {
      row.push_back(Measure(p, cores));
    }
    table.AddRow(cores, std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape at 32 cores: Broadcast ~13k (worst; every slave pulls the line\n"
      "from the master's cache), Unicast ~11k (linear), Multicast ~5k (one message\n"
      "per package, parallel fan-out in the shared L3), NUMA-Aware Multicast lowest\n"
      "(~3-4k) and flattest, stepping only as tree levels grow.\n");
  return 0;
}
