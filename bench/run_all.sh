#!/usr/bin/env bash
# Builds every benchmark and regenerates bench_output.txt — the transcript
# EXPERIMENTS.md quotes. The paper benches are deterministic (simulated
# cycles), so the transcript is reproducible bit-for-bit; microbench measures
# host wall-time and is appended last, clearly separated.
#
#   bench/run_all.sh              # full transcript into bench_output.txt
#   SKIP_MICROBENCH=1 bench/run_all.sh   # deterministic part only
#   bench/run_all.sh --threads=4  # transcript, then re-run the golden gate
#                                 # at 4 host threads: every bench must match
#                                 # its 1-thread golden byte-for-byte
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS_PASS=""
for arg in "$@"; do
  case "$arg" in
    --threads=*) THREADS_PASS="${arg#--threads=}" ;;
    *) echo "run_all.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j

OUT=bench_output.txt
: > "$OUT"

# Deterministic paper benches, in roughly the paper's order.
BENCHES=(
  table1_lrpc
  table2_urpc
  table3_ipc
  table4_loopback
  fig3_shm_vs_msg
  fig6_shootdown
  fig7_unmap
  fig8_twopc
  fig9_compute
  sec54_netperf
  sec54_webserver
  sec54_scaleout
  polling_model
  ablation_urpc
)
for b in "${BENCHES[@]}"; do
  echo "--- $b" | tee -a "$OUT"
  ./build/bench/"$b" | tee -a "$OUT"
done

if [[ "${SKIP_MICROBENCH:-0}" != "1" ]]; then
  echo "--- microbench (host wall-time; not deterministic)" | tee -a "$OUT"
  ./build/bench/microbench | tee -a "$OUT"
fi

echo "transcript written to $OUT"

# --threads=N pass: the parallel engine promises that host thread count can
# never change a schedule. Prove it by re-running every golden bench with
# --threads=N and byte-diffing against the 1-thread goldens.
if [[ -n "$THREADS_PASS" ]]; then
  echo "--- golden gate at --threads=$THREADS_PASS (vs 1-thread goldens)"
  THREADS="$THREADS_PASS" bench/check_golden.sh
fi
