#!/usr/bin/env bash
# Builds every benchmark and regenerates bench_output.txt — the transcript
# EXPERIMENTS.md quotes. The paper benches are deterministic (simulated
# cycles), so the transcript is reproducible bit-for-bit; microbench measures
# host wall-time and is appended last, clearly separated.
#
#   bench/run_all.sh              # full transcript into bench_output.txt
#   SKIP_MICROBENCH=1 bench/run_all.sh   # deterministic part only
#   bench/run_all.sh --threads=4  # transcript, then re-run the golden gate
#                                 # at 4 host threads: every bench must match
#                                 # its 1-thread golden byte-for-byte
#   bench/run_all.sh --machines=8 # forward a rack size to the benches that
#                                 # take one (bench_util.h ParseMachinesFlag)
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS_PASS=""
MACHINES_PASS=""
for arg in "$@"; do
  case "$arg" in
    --threads=*) THREADS_PASS="${arg#--threads=}" ;;
    --machines=*) MACHINES_PASS="${arg#--machines=}" ;;
    *) echo "run_all.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j

OUT=bench_output.txt
: > "$OUT"

# Deterministic paper benches, in roughly the paper's order.
BENCHES=(
  table1_lrpc
  table2_urpc
  table3_ipc
  table4_loopback
  fig3_shm_vs_msg
  fig6_shootdown
  fig7_unmap
  fig8_twopc
  fig9_compute
  sync_scaling
  sec54_netperf
  sec54_webserver
  sec54_scaleout
  rack_serving
  polling_model
  ablation_urpc
)
# Benches that understand --machines=N (rack/topology size); everything else
# simulates a fixed machine and would reject the flag.
MACHINES_BENCHES=" rack_serving "
for b in "${BENCHES[@]}"; do
  args=()
  if [[ -n "$MACHINES_PASS" && "$MACHINES_BENCHES" == *" $b "* ]]; then
    args+=("--machines=$MACHINES_PASS")
  fi
  echo "--- $b" | tee -a "$OUT"
  ./build/bench/"$b" ${args[@]+"${args[@]}"} | tee -a "$OUT"
done

if [[ "${SKIP_MICROBENCH:-0}" != "1" ]]; then
  echo "--- microbench (host wall-time; not deterministic)" | tee -a "$OUT"
  ./build/bench/microbench | tee -a "$OUT"
fi

echo "transcript written to $OUT"

# --threads=N pass: the parallel engine promises that host thread count can
# never change a schedule. Prove it by re-running every golden bench with
# --threads=N and byte-diffing against the 1-thread goldens.
if [[ -n "$THREADS_PASS" ]]; then
  echo "--- golden gate at --threads=$THREADS_PASS (vs 1-thread goldens)"
  THREADS="$THREADS_PASS" bench/check_golden.sh
fi
