// Figure 8: two-phase commit on the 8x4-core AMD system - the latency of a
// single capability-retype agreement, and the per-operation cost when many
// operations are pipelined.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine), sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

Task<> SingleOps(System& s, std::vector<caps::CapId> roots, int ncores,
                 sim::RunningStat& stat) {
  for (std::size_t i = 0; i < roots.size(); ++i) {
    auto r = co_await s.sys.on(0).GlobalRetype(roots[i], caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               static_cast<std::uint16_t>(ncores));
    if (i > 0 && r.committed) {
      stat.Add(static_cast<double>(r.latency));
    }
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

double MeasureSingle(int ncores) {
  System s;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < 8; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  sim::RunningStat stat;
  s.exec.Spawn(SingleOps(s, roots, ncores, stat));
  s.exec.Run();
  return stat.mean();
}

Task<> PipelinedWorker(System& s, caps::CapId root, int ncores, int* remaining) {
  (void)co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                          Protocol::kNumaMulticast, {},
                                          static_cast<std::uint16_t>(ncores));
  if (--*remaining == 0) {
    s.sys.Shutdown();
  }
}

// Issues `ops` retypes of distinct caps concurrently from core 0 and reports
// the amortized per-operation cost.
double MeasurePipelined(int ncores) {
  System s;
  const int kOps = 16;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < kOps; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  int remaining = kOps;
  Cycles t0 = s.exec.now();
  for (int i = 0; i < kOps; ++i) {
    s.exec.Spawn(PipelinedWorker(s, roots[static_cast<std::size_t>(i)], ncores, &remaining));
  }
  s.exec.Run();
  return static_cast<double>(s.exec.now() - t0) / kOps;
}

// --kill-core mode: the canonical fault plan (halt core 5 mid-2PC) driven
// through the same fig8 workload shape. Every retype must still commit among
// the survivors via presumed abort, and two executions must be bit-identical.
struct KillCoreRun {
  Cycles final_now = 0;
  std::uint64_t events_dispatched = 0;
  std::vector<Cycles> latencies;
  int attempts_total = 0;
  bool all_committed = true;
  bool dead_core_detected = false;
  bool all_specs_activated = false;
};

Task<> KillCoreOps(System& s, std::vector<caps::CapId> roots, KillCoreRun& out) {
  for (caps::CapId root : roots) {
    auto r = co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               /*ncores=*/8);
    out.all_committed = out.all_committed && r.committed;
    out.attempts_total += r.attempts;
    out.latencies.push_back(r.latency);
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

KillCoreRun MeasureKillOneCore(bool print_activation_table) {
  fault::FaultPlan plan;
  plan.HaltCore(5, /*at=*/100'000);  // lands inside the second retype's prepare
  fault::Injector inj(plan);
  inj.Install();
  KillCoreRun out;
  {
    System s;
    std::vector<caps::CapId> roots;
    for (int i = 0; i < 4; ++i) {
      roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
    }
    s.exec.Spawn(KillCoreOps(s, roots, out));
    s.exec.Run();
    out.final_now = s.exec.now();
    out.events_dispatched = s.exec.events_dispatched();
    out.dead_core_detected = s.sys.CoreFailed(5);
  }
  // Coverage accounting: a fault spec that never fired means the plan tested
  // nothing — surface it before the injector (and its counters) go away.
  if (print_activation_table) {
    inj.PrintActivationTable();
  }
  out.all_specs_activated = inj.AllSpecsActivated();
  inj.Uninstall();
  return out;
}

int RunKillCoreMode(bench::TraceSession& session) {
  bench::PrintHeader("Figure 8 under fault: core 5 halted mid-2PC (8-core collective)");
  session.BeginRun("kill-core-run1");
  KillCoreRun a = MeasureKillOneCore(/*print_activation_table=*/true);
  session.BeginRun("kill-core-run2");
  KillCoreRun b = MeasureKillOneCore(/*print_activation_table=*/false);
  std::printf("%-28s", "per-op latency (cycles):");
  for (Cycles l : a.latencies) {
    std::printf(" %10llu", static_cast<unsigned long long>(l));
  }
  std::printf("\n%-28s %d (over %zu ops)\n", "attempts:", a.attempts_total,
              a.latencies.size());
  std::printf("%-28s %s\n", "all committed:", a.all_committed ? "yes" : "NO");
  std::printf("%-28s %s\n", "dead core detected:",
              a.dead_core_detected ? "yes" : "NO");
  bool deterministic = a.final_now == b.final_now &&
                       a.events_dispatched == b.events_dispatched &&
                       a.latencies == b.latencies &&
                       a.attempts_total == b.attempts_total;
  std::printf("%-28s %s (run 1: %llu cycles / %llu events, run 2: %llu / %llu)\n",
              "replay bit-identical:", deterministic ? "yes" : "NO",
              static_cast<unsigned long long>(a.final_now),
              static_cast<unsigned long long>(a.events_dispatched),
              static_cast<unsigned long long>(b.final_now),
              static_cast<unsigned long long>(b.events_dispatched));
  bool recovered = a.all_committed && a.dead_core_detected &&
                   a.attempts_total > static_cast<int>(a.latencies.size());
  std::printf("%-28s %s\n", "recovery (presumed abort):",
              recovered ? "yes (timed-out round retried among survivors)" : "NO");
  std::printf("%-28s %s\n", "fault coverage:",
              a.all_specs_activated ? "every spec fired" : "A SPEC NEVER FIRED");
  return deterministic && recovered && a.all_specs_activated ? 0 : 1;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bool kill_core = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kill-core") == 0) {
      kill_core = true;
    }
  }
  bench::TraceSession session(trace_flags);
  if (kill_core) {
    return RunKillCoreMode(session);
  }
  if (session.active()) {
    // Traced mode: one labeled run per shape at 32 cores, not the sweep.
    bench::PrintHeader("Figure 8 (traced): two-phase commit at 32 cores");
    session.BeginRun("single-op");
    std::printf("single-op latency: %.0f cycles\n", MeasureSingle(32));
    session.BeginRun("pipelined");
    std::printf("pipelined per-op cost: %.0f cycles\n", MeasurePipelined(32));
    return 0;
  }
  bench::PrintHeader("Figure 8: two-phase commit (8x4-core AMD, cycles per operation)");
  bench::SeriesTable table("cores");
  table.AddSeries("single-op latency");
  table.AddSeries("cost when pipelining");
  for (int cores = 2; cores <= 32; cores += 2) {
    table.AddRow(cores, {MeasureSingle(cores), MeasurePipelined(cores)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: 2PC serializes two multicast rounds, so single-op latency is\n"
      "roughly twice the shootdown cost and scales with the same multicast steps;\n"
      "pipelining amortizes the round trips so the per-op cost stays well below the\n"
      "latency (and below IPI-based shootdowns on Windows/Linux at 32 cores).\n");
  return 0;
}
