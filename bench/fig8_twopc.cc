// Figure 8: two-phase commit on the 8x4-core AMD system - the latency of a
// single capability-retype agreement, and the per-operation cost when many
// operations are pipelined.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using monitor::Protocol;
using sim::Cycles;
using sim::Task;

struct System {
  System() : machine(exec, hw::Amd8x4()), drivers(CpuDriver::BootAll(machine)),
             skb(machine), sys(machine, skb, drivers) {
    skb.PopulateFromHardware();
    exec.Spawn(skb.MeasureUrpcLatencies());
    exec.Run();
    sys.Boot();
  }
  sim::Executor exec;
  hw::Machine machine;
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  skb::Skb skb;
  monitor::MonitorSystem sys;
};

Task<> SingleOps(System& s, std::vector<caps::CapId> roots, int ncores,
                 sim::RunningStat& stat) {
  for (std::size_t i = 0; i < roots.size(); ++i) {
    auto r = co_await s.sys.on(0).GlobalRetype(roots[i], caps::CapType::kFrame, 4096, 1,
                                               Protocol::kNumaMulticast, {},
                                               static_cast<std::uint16_t>(ncores));
    if (i > 0 && r.committed) {
      stat.Add(static_cast<double>(r.latency));
    }
    co_await s.exec.Delay(20000);
  }
  s.sys.Shutdown();
}

double MeasureSingle(int ncores) {
  System s;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < 8; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  sim::RunningStat stat;
  s.exec.Spawn(SingleOps(s, roots, ncores, stat));
  s.exec.Run();
  return stat.mean();
}

Task<> PipelinedWorker(System& s, caps::CapId root, int ncores, int* remaining) {
  (void)co_await s.sys.on(0).GlobalRetype(root, caps::CapType::kFrame, 4096, 1,
                                          Protocol::kNumaMulticast, {},
                                          static_cast<std::uint16_t>(ncores));
  if (--*remaining == 0) {
    s.sys.Shutdown();
  }
}

// Issues `ops` retypes of distinct caps concurrently from core 0 and reports
// the amortized per-operation cost.
double MeasurePipelined(int ncores) {
  System s;
  const int kOps = 16;
  std::vector<caps::CapId> roots;
  for (int i = 0; i < kOps; ++i) {
    roots.push_back(s.sys.InstallRootCap(static_cast<std::uint64_t>(i) << 24, 1 << 24));
  }
  int remaining = kOps;
  Cycles t0 = s.exec.now();
  for (int i = 0; i < kOps; ++i) {
    s.exec.Spawn(PipelinedWorker(s, roots[static_cast<std::size_t>(i)], ncores, &remaining));
  }
  s.exec.Run();
  return static_cast<double>(s.exec.now() - t0) / kOps;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceFlags trace_flags = bench::ParseTraceFlags(argc, argv);
  bench::TraceSession session(trace_flags);
  if (session.active()) {
    // Traced mode: one labeled run per shape at 32 cores, not the sweep.
    bench::PrintHeader("Figure 8 (traced): two-phase commit at 32 cores");
    session.BeginRun("single-op");
    std::printf("single-op latency: %.0f cycles\n", MeasureSingle(32));
    session.BeginRun("pipelined");
    std::printf("pipelined per-op cost: %.0f cycles\n", MeasurePipelined(32));
    return 0;
  }
  bench::PrintHeader("Figure 8: two-phase commit (8x4-core AMD, cycles per operation)");
  bench::SeriesTable table("cores");
  table.AddSeries("single-op latency");
  table.AddSeries("cost when pipelining");
  for (int cores = 2; cores <= 32; cores += 2) {
    table.AddRow(cores, {MeasureSingle(cores), MeasurePipelined(cores)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: 2PC serializes two multicast rounds, so single-op latency is\n"
      "roughly twice the shootdown cost and scales with the same multicast steps;\n"
      "pipelining amortizes the round trips so the per-op cost stays well below the\n"
      "latency (and below IPI-based shootdowns on Windows/Linux at 32 cores).\n");
  return 0;
}
