// Wall-time microbenchmarks of the simulator itself (google-benchmark).
//
// Unlike every other bench target (which reports *simulated* cycles, the
// paper's metric), this one measures how fast the discrete-event simulator
// and its core data structures run on the host — useful when growing the
// experiments.
#include <benchmark/benchmark.h>

#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace {

using namespace mk;
using sim::Cycles;
using sim::Task;

void BM_ExecutorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      exec.CallAt(static_cast<Cycles>(i), [&sink] { ++sink; });
    }
    exec.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExecutorEventDispatch);

Task<> DelayLoop(sim::Executor& exec, int n) {
  for (int i = 0; i < n; ++i) {
    co_await exec.Delay(10);
  }
}

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    exec.Spawn(DelayLoop(exec, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayLoop);

Task<> WriteLoop(hw::Machine& m, sim::Addr addr, int n) {
  for (int i = 0; i < n; ++i) {
    co_await m.mem().Write(i % 4, addr);
  }
}

void BM_CoherenceTransactions(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd4x4());
    auto addr = m.mem().AllocLines(0, 1);
    exec.Spawn(WriteLoop(m, addr, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoherenceTransactions);

Task<> Stream(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch.SendPosted(urpc::Message{});
  }
}

Task<> Drain(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.Recv();
  }
}

void BM_UrpcChannelStream(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd4x4());
    urpc::Channel ch(m, 0, 4);
    exec.Spawn(Stream(ch, 1000));
    exec.Spawn(Drain(ch, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_UrpcChannelStream);

void BM_SkbRouteConstruction(benchmark::State& state) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  skb::Skb skb(m);
  skb.PopulateFromHardware();
  for (auto _ : state) {
    auto route = skb.BuildMulticastRoute(0, true);
    benchmark::DoNotOptimize(route);
  }
}
BENCHMARK(BM_SkbRouteConstruction);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= rng.Next();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngThroughput);

}  // namespace

BENCHMARK_MAIN();
