// Wall-time microbenchmarks of the simulator itself (google-benchmark).
//
// Unlike every other bench target (which reports *simulated* cycles, the
// paper's metric), this one measures how fast the discrete-event simulator
// and its core data structures run on the host — useful when growing the
// experiments.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/random.h"
#include "skb/skb.h"
#include "urpc/channel.h"

// Global allocation counter: every operator new in the process bumps it, so
// a benchmark can report exact heap-allocation counts for a measured region
// (see BM_ExecutorSteadyStateAllocs).
std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mk;
using sim::Cycles;
using sim::Task;

void BM_ExecutorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      exec.CallAt(static_cast<Cycles>(i), [&sink] { ++sink; });
    }
    exec.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExecutorEventDispatch);

// Far-tier stress: timestamps spread across a 50k-cycle horizon, so most
// events enter the far heap and migrate into the near ring as the clock
// approaches them.
void BM_ExecutorFarHorizon(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      exec.CallAt(static_cast<Cycles>((i * 37) % 50000), [&sink] { ++sink; });
    }
    exec.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExecutorFarHorizon);

// Steady-state allocation audit: a long-lived executor dispatching inline
// callbacks must do zero heap allocations per event once its node freelist
// has warmed up. Reports allocations per thousand dispatched events.
void BM_ExecutorSteadyStateAllocs(benchmark::State& state) {
  sim::Executor exec;
  int sink = 0;
  // Warm-up: grow the node freelist and the far heap past the working set.
  for (int i = 0; i < 4000; ++i) {
    exec.CallAt(static_cast<Cycles>(i % 2000), [&sink] { ++sink; });
  }
  exec.Run();
  const std::uint64_t events_before = exec.events_dispatched();
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const Cycles base = exec.now();
    for (int i = 0; i < 1000; ++i) {
      exec.CallAt(base + 1 + static_cast<Cycles>(i % 700), [&sink] { ++sink; });
    }
    exec.Run();
  }
  const std::uint64_t events = exec.events_dispatched() - events_before;
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_1k_events"] =
      1000.0 * static_cast<double>(allocs) / static_cast<double>(events ? events : 1);
}
BENCHMARK(BM_ExecutorSteadyStateAllocs);

// As above, but with a tracer installed and every category enabled: the
// trace hot path must also be allocation-free once the per-core rings exist.
void BM_ExecutorSteadyStateAllocsTraced(benchmark::State& state) {
  trace::Tracer tracer(/*capacity_per_core=*/1 << 12);
  tracer.Install();
  sim::Executor exec;
  int sink = 0;
  // Warm-up: grow the node freelist and allocate the executor's trace ring.
  for (int i = 0; i < 4000; ++i) {
    exec.CallAt(static_cast<Cycles>(i % 2000), [&sink] { ++sink; });
  }
  exec.Run();
  const std::uint64_t events_before = exec.events_dispatched();
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const Cycles base = exec.now();
    for (int i = 0; i < 1000; ++i) {
      exec.CallAt(base + 1 + static_cast<Cycles>(i % 700), [&sink] { ++sink; });
    }
    exec.Run();
  }
  const std::uint64_t events = exec.events_dispatched() - events_before;
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  tracer.Uninstall();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_1k_events"] =
      1000.0 * static_cast<double>(allocs) / static_cast<double>(events ? events : 1);
}
BENCHMARK(BM_ExecutorSteadyStateAllocsTraced);

// Raw cost of one trace point with an active tracer (mask test + 40-byte
// ring store).
void BM_TraceEmit(benchmark::State& state) {
  trace::Tracer tracer(/*capacity_per_core=*/1 << 12);
  tracer.Install();
  Cycles cycle = 0;
  for (auto _ : state) {
    trace::Emit<trace::Category::kExec>(trace::EventId::kExecCycle, ++cycle, 0, 1);
  }
  tracer.Uninstall();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

Task<> DelayLoop(sim::Executor& exec, int n) {
  for (int i = 0; i < n; ++i) {
    co_await exec.Delay(10);
  }
}

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    exec.Spawn(DelayLoop(exec, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayLoop);

Task<> WriteLoop(hw::Machine& m, sim::Addr addr, int n) {
  for (int i = 0; i < n; ++i) {
    co_await m.mem().Write(i % 4, addr);
  }
}

void BM_CoherenceTransactions(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd4x4());
    auto addr = m.mem().AllocLines(0, 1);
    exec.Spawn(WriteLoop(m, addr, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoherenceTransactions);

Task<> Stream(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch.SendPosted(urpc::Message{});
  }
}

Task<> Drain(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.Recv();
  }
}

void BM_UrpcChannelStream(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd4x4());
    urpc::Channel ch(m, 0, 4);
    exec.Spawn(Stream(ch, 1000));
    exec.Spawn(Drain(ch, 1000));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_UrpcChannelStream);

Task<> PingClient(urpc::Channel& req, urpc::Channel& resp, int n) {
  for (int i = 0; i < n; ++i) {
    co_await req.SendPosted(urpc::Message{});
    (void)co_await resp.Recv();
  }
}

Task<> PingServer(urpc::Channel& req, urpc::Channel& resp, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await req.Recv();
    co_await resp.SendPosted(urpc::Message{});
  }
}

// Round-trip URPC: request and response channels between two cores, the
// paper's ping-pong shape. Exercises the executor's wake-up path (Event
// signal -> schedule -> resume) once per message in each direction.
void BM_UrpcPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd4x4());
    urpc::Channel req(m, 0, 4);
    urpc::Channel resp(m, 4, 0);
    exec.Spawn(PingClient(req, resp, 500));
    exec.Spawn(PingServer(req, resp, 500));
    exec.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // two messages per round trip
}
BENCHMARK(BM_UrpcPingPong);

void BM_SkbRouteConstruction(benchmark::State& state) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  skb::Skb skb(m);
  skb.PopulateFromHardware();
  for (auto _ : state) {
    auto route = skb.BuildMulticastRoute(0, true);
    benchmark::DoNotOptimize(route);
  }
}
BENCHMARK(BM_SkbRouteConstruction);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= rng.Next();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngThroughput);

}  // namespace

BENCHMARK_MAIN();
