// Table 3: messaging cost of URPC (inter-core, same die) vs L4-style
// synchronous IPC (same core) on the 2x2-core AMD system.
#include <cstdio>

#include "baseline/l4_ipc.h"
#include "bench_util.h"
#include "sim/stats.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using sim::Cycles;
using sim::Task;

// Warmed single-message latency (as in the Table 2 bench): spaced sends with
// every ring slot touched first.
Task<> UrpcLatSender(hw::Machine& m, urpc::Channel& ch, int total) {
  for (int i = 0; i < total; ++i) {
    co_await ch.Send(urpc::Pack(0, m.exec().now()));
    co_await m.exec().Delay(10000);
  }
}

Task<> UrpcLatReceiver(hw::Machine& m, urpc::Channel& ch, int warmup, int measured,
                       sim::RunningStat& stat) {
  for (int i = 0; i < warmup + measured; ++i) {
    urpc::Message msg = co_await ch.Recv();
    if (i >= warmup) {
      stat.Add(static_cast<double>(m.exec().now() - urpc::Unpack<Cycles>(msg)));
    }
  }
}

Task<> UrpcStreamSend(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch.SendPosted(urpc::Message{});
  }
}
Task<> UrpcStreamRecv(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.Recv();
  }
}

Task<> L4Stream(baseline::L4Ipc& ipc, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ipc.Call();
  }
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Table 3: messaging costs on 2x2-core AMD");

  // URPC latency: same-die pair (cores 0 and 1), warmed channel.
  Cycles urpc_latency = 0;
  {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    urpc::Channel ch(m, 0, 1);
    sim::RunningStat stat;
    exec.Spawn(UrpcLatSender(m, ch, 32 + 50));
    exec.Spawn(UrpcLatReceiver(m, ch, 32, 50, stat));
    exec.Run();
    urpc_latency = static_cast<Cycles>(stat.mean());
  }
  // URPC throughput: pipelined, queue length 16.
  double urpc_tput = 0;
  {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    urpc::ChannelOptions opts;
    opts.slots = 16;
    urpc::Channel ch(m, 0, 1, opts);
    const int kMessages = 4000;
    exec.Spawn(UrpcStreamSend(ch, kMessages));
    exec.Spawn(UrpcStreamRecv(ch, kMessages));
    Cycles elapsed = exec.Run();
    urpc_tput = 1000.0 * kMessages / static_cast<double>(elapsed);
  }
  // L4 IPC: synchronous same-core; throughput is 1 / latency.
  Cycles l4_latency = 0;
  double l4_tput = 0;
  {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd2x2());
    baseline::L4Ipc ipc(m, 0);
    l4_latency = ipc.RawLatency();
    const int kMessages = 2000;
    exec.Spawn(L4Stream(ipc, kMessages));
    Cycles elapsed = exec.Run();
    l4_tput = 1000.0 * kMessages / static_cast<double>(elapsed);
  }

  std::printf("%-10s %10s %16s %14s %14s\n", "", "Latency", "Throughput", "Icache lines",
              "Dcache lines");
  std::printf("%-10s %7llu cy %11.2f m/kc %14d %14d\n", "URPC",
              static_cast<unsigned long long>(urpc_latency), urpc_tput,
              baseline::kUrpcIcacheLines, baseline::kUrpcDcacheLines);
  std::printf("%-10s %7llu cy %11.2f m/kc %14d %14d\n", "L4 IPC",
              static_cast<unsigned long long>(l4_latency), l4_tput, baseline::kL4IcacheLines,
              baseline::kL4DcacheLines);
  std::printf(
      "\nPaper: URPC 450 cy / 3.42 msgs/kcycle / 9 / 8;  L4 424 cy / 2.36 msgs/kcycle / 25 / "
      "13.\nInter-core URPC is close to the best same-core IPC in latency, beats it in\n"
      "throughput (pipelining), and avoids the TLB flush and cache footprint.\n"
      "(Cache-line footprints are static code/data properties, reported as constants.)\n");
  return 0;
}
