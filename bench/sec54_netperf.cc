// Section 5.4, "Network throughput": UDP echo over a (simulated) Intel e1000
// on the 2x4-core Intel machine. The driver runs as its own process and
// communicates with the single-core echo application over URPC packet
// channels; the network stack is linked into the application's domain (lwIP
// style). Load generators inject UDP traffic at a configurable rate; we
// report the achieved echo throughput. Paper: 951.7 Mbit/s with 1000-byte
// payloads, close to saturating the card (Linux: 951 Mbit/s).
#include <cstdio>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "sim/executor.h"

namespace mk {
namespace {

using net::Packet;
using sim::Cycles;
using sim::Task;

constexpr int kDriverCore = 2;
constexpr int kAppCore = 3;  // same package as the driver (best placement)
constexpr std::size_t kPayload = 1000;
constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 9);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 9};

Packet EchoRequest() {
  net::EthHeader eth{kServerMac, kClientMac, net::kEtherTypeIpv4};
  net::IpHeader ip;
  ip.src = kClientIp;
  ip.dst = kServerIp;
  std::vector<std::uint8_t> payload(kPayload, 0x33);
  return BuildUdpFrame(eth, ip, net::UdpHeader{4000, 7, 0}, payload.data(), payload.size());
}

// Load generator: offered load in Mbit/s; frames spaced accordingly. The
// wire transfer itself occupies (frame+framing) at line rate, so the idle gap
// is the inter-frame period minus the wire time.
Task<> Generator(hw::Machine& m, net::SimNic& nic, double mbps, int frames) {
  const double bits_per_frame = (kPayload + 42.0 + 24.0) * 8.0;
  const auto period =
      static_cast<Cycles>(bits_per_frame / (mbps * 1e6) * m.spec().clock_ghz * 1e9);
  const Cycles wire = static_cast<Cycles>(kPayload + 42 + 24) * nic.CyclesPerByte();
  const Cycles gap = period > wire ? period - wire : 0;
  for (int i = 0; i < frames; ++i) {
    co_await m.exec().Delay(gap);
    co_await nic.InjectFromWire(EchoRequest());
  }
}

// The e1000 driver process: polls RX while busy, re-enables interrupts when
// idle; forwards frames to the app and transmits what the app returns.
Task<> Driver(hw::Machine& m, net::SimNic& nic, net::PacketChannel& to_app,
              net::PacketChannel& from_app, int total, int* echoed_out) {
  int rx_left = total;
  int tx_left = total;
  while (rx_left > 0 || tx_left > 0) {
    bool any = false;
    if (rx_left > 0 && nic.RxReady()) {
      nic.SetInterruptsEnabled(false);
      auto frame = co_await nic.DriverRxPop(kDriverCore);
      if (frame) {
        --rx_left;
        co_await to_app.Send(std::move(*frame));
        any = true;
      }
    }
    if (tx_left > 0 && from_app.HasPacket()) {
      Packet frame = co_await from_app.Recv();
      if (co_await nic.DriverTxPush(kDriverCore, std::move(frame))) {
        --tx_left;
        ++*echoed_out;
      }
      any = true;
    }
    if (!any) {
      nic.SetInterruptsEnabled(true);
      // Block until work arrives (IRQ or app channel); the paper's driver
      // would trap here, charged on wake.
      if (!nic.RxReady() && !from_app.HasPacket()) {
        if (rx_left > 0) {
          co_await nic.rx_irq().WaitTimeout(20000);
        } else {
          co_await from_app.readable().WaitTimeout(20000);
        }
        co_await m.Trap(kDriverCore);
      }
    }
  }
}

// The echo application: full stack input, swap addresses, send back.
Task<> EchoApp(net::NetStack& stack, net::PacketChannel& from_driver, int total) {
  auto& sock = stack.UdpBind(7);
  int handled = 0;
  while (handled < total) {
    Packet frame = co_await from_driver.Recv();
    co_await stack.Input(std::move(frame));
    net::NetStack::UdpDatagram d;
    while (sock.TryRecv(&d)) {
      co_await stack.UdpSendTo(7, d.src_ip, d.src_port, std::move(d.payload));
      ++handled;
    }
  }
}

// The load generators' receive side: drains echoed frames off the wire.
Task<> WireSink(net::SimNic& nic, int total, int* received) {
  while (*received < total) {
    Packet p;
    while (nic.WirePop(&p)) {
      ++*received;
    }
    if (*received < total) {
      co_await nic.wire_out_ready().Wait();
    }
  }
}

double RunEcho(double offered_mbps) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Intel2x4());
  net::SimNic::Config cfg;
  cfg.irq_core = kDriverCore;
  net::SimNic nic(m, cfg);
  net::NetStack app(m, kAppCore, kServerIp, kServerMac);
  app.AddArp(kClientIp, kClientMac);
  net::PacketChannel to_app(m, kDriverCore, kAppCore, net::PacketChannel::Options{});
  net::PacketChannel from_app(m, kAppCore, kDriverCore, net::PacketChannel::Options{});
  app.SetOutput([&from_app](Packet p) -> Task<> { co_await from_app.Send(std::move(p)); });
  const int kFrames = 600;
  int pushed = 0;
  int echoed = 0;
  exec.Spawn(Generator(m, nic, offered_mbps, kFrames));
  exec.Spawn(Driver(m, nic, to_app, from_app, kFrames, &pushed));
  exec.Spawn(EchoApp(app, to_app, kFrames));
  exec.Spawn(WireSink(nic, kFrames, &echoed));
  Cycles elapsed = exec.Run();
  double seconds = static_cast<double>(elapsed) / (m.spec().clock_ghz * 1e9);
  return echoed * kPayload * 8.0 / seconds / 1e6;
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader(
      "Section 5.4: UDP echo throughput over e1000 (2x4-core Intel, 1000-byte payloads)");
  bench::SeriesTable table("offered Mb/s");
  table.AddSeries("echoed Mb/s");
  for (double offered : {200.0, 400.0, 600.0, 800.0, 950.0, 983.0}) {
    table.AddRow(offered, {RunEcho(offered)});
  }
  table.Print("%12.1f");
  std::printf(
      "\nPaper: 951.7 Mbit/s echo payload throughput, close to saturating the card\n"
      "(Linux on the same hardware: 951 Mbit/s). The echo pipeline (driver process,\n"
      "URPC channels, lwIP-style stack in the app domain) keeps up with the wire.\n");
  return 0;
}
