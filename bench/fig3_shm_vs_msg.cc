// Figure 3: comparison of the cost of updating shared state using shared
// memory vs message passing, on the 4x4-core AMD system.
//
// SHM1-8: threads pinned to each core directly update the same 1/2/4/8 cache
// lines (no locking); the coherence protocol migrates the lines.
// MSG1/MSG8: client threads issue a lightweight RPC (one cache-line message)
// to a single server core that performs the update on their behalf.
// Server: per-operation service time observed at the server (excludes
// queueing delay).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using sim::Addr;
using sim::Cycles;
using sim::RunningStat;
using sim::Task;

constexpr int kWarmupOps = 20;
constexpr int kMeasuredOps = 120;

Task<> ShmWorker(hw::Machine& m, int core, Addr region, int lines, RunningStat& stat) {
  // Threads never start in perfect lockstep; the stagger also breaks the
  // artificial resonance a deterministic simulator would otherwise show
  // between the op period and the controller service period.
  co_await m.exec().Delay(static_cast<Cycles>(core) * 13 + 1);
  for (int op = 0; op < kWarmupOps + kMeasuredOps; ++op) {
    Cycles t0 = m.exec().now();
    co_await m.mem().Write(core, region, static_cast<std::uint64_t>(lines) * sim::kCacheLineBytes);
    if (op >= kWarmupOps) {
      stat.Add(static_cast<double>(m.exec().now() - t0));
    }
  }
}

double RunShm(int cores, int lines) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd4x4());
  Addr region = m.mem().AllocLines(0, static_cast<std::uint64_t>(lines));
  RunningStat stat;
  for (int c = 0; c < cores; ++c) {
    exec.Spawn(ShmWorker(m, c, region, lines, stat));
  }
  exec.Run();
  return stat.mean();
}

struct MsgClientState {
  std::unique_ptr<urpc::Channel> req;
  std::unique_ptr<urpc::Channel> resp;
};

Task<> MsgServer(hw::Machine& m, std::vector<MsgClientState>& clients, Addr state, int lines,
                 int total_ops, RunningStat& server_stat) {
  int done = 0;
  while (done < total_ops) {
    bool any = false;
    for (auto& cl : clients) {
      if (!cl.req->HasMessage()) {
        continue;
      }
      any = true;
      Cycles t0 = m.exec().now();
      urpc::Message msg;
      (void)co_await cl.req->TryRecv(&msg);
      // Perform the requested update on the server's local copy of the state.
      co_await m.mem().Write(0, state, static_cast<std::uint64_t>(lines) * sim::kCacheLineBytes);
      co_await cl.resp->SendPosted(urpc::Message{});
      server_stat.Add(static_cast<double>(m.exec().now() - t0));
      ++done;
    }
    if (!any) {
      co_await m.exec().Delay(40);  // poll granularity
    }
  }
}

Task<> MsgClient(hw::Machine& m, MsgClientState& cl, int ops, RunningStat& stat) {
  for (int op = 0; op < ops; ++op) {
    Cycles t0 = m.exec().now();
    co_await cl.req->Send(urpc::Message{});
    (void)co_await cl.resp->Recv();
    if (op >= kWarmupOps) {
      stat.Add(static_cast<double>(m.exec().now() - t0));
    }
  }
}

// Returns {client mean latency, server mean service time}.
std::pair<double, double> RunMsg(int cores, int lines) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd4x4());
  int n_clients = cores - 1;
  if (n_clients < 1) {
    return {0, 0};
  }
  Addr state = m.mem().AllocLines(0, static_cast<std::uint64_t>(lines));
  std::vector<MsgClientState> clients(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    urpc::ChannelOptions opts;
    opts.slots = 2;
    opts.prefetch = true;  // the server polls a stride of request lines
    clients[static_cast<std::size_t>(i)].req =
        std::make_unique<urpc::Channel>(m, i + 1, 0, opts);
    clients[static_cast<std::size_t>(i)].resp =
        std::make_unique<urpc::Channel>(m, 0, i + 1);
  }
  RunningStat client_stat;
  RunningStat server_stat;
  const int ops_per_client = kWarmupOps + kMeasuredOps;
  exec.Spawn(MsgServer(m, clients, state, lines, ops_per_client * n_clients, server_stat));
  for (int i = 0; i < n_clients; ++i) {
    exec.Spawn(MsgClient(m, clients[static_cast<std::size_t>(i)], ops_per_client, client_stat));
  }
  exec.Run();
  return {client_stat.mean(), server_stat.mean()};
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader(
      "Figure 3: shared-memory vs message-passing update cost (4x4-core AMD, cycles/op)");
  bench::SeriesTable table("cores");
  for (const char* s : {"SHM1", "SHM2", "SHM4", "SHM8", "MSG1", "MSG8", "Server"}) {
    table.AddSeries(s);
  }
  for (int cores = 2; cores <= 16; cores += 2) {
    std::vector<double> row;
    for (int lines : {1, 2, 4, 8}) {
      row.push_back(RunShm(cores, lines));
    }
    auto [msg1, srv1] = RunMsg(cores, 1);
    auto [msg8, srv8] = RunMsg(cores, 8);
    (void)srv1;
    row.push_back(msg1);
    row.push_back(msg8);
    row.push_back(srv8);
    table.AddRow(cores, std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: SHM cost grows ~linearly with cores x lines (~12,000 cycles at\n"
      "16 cores x 8 lines); MSG grows linearly with clients (queueing) but stays below\n"
      "SHM4 for >= 4-line updates; Server per-op cost stays flat.\n");
  return 0;
}
