// Ablations for the URPC / routing design choices called out in sections 4.6
// and 5.1:
//   (a) pipelining window (ring/queue length) vs sustained throughput,
//   (b) the receive-side prefetch channel option (latency vs throughput),
//   (c) NUMA-aware buffer placement for cross-package channels,
//   (d) multicast send order: farthest-first vs nearest-first vs unordered.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace mk {
namespace {

using kernel::CpuDriver;
using sim::Cycles;
using sim::Task;

Task<> Send(urpc::Channel& ch, int n, bool posted) {
  for (int i = 0; i < n; ++i) {
    if (posted) {
      co_await ch.SendPosted(urpc::Message{});
    } else {
      co_await ch.Send(urpc::Message{});
    }
  }
}

Task<> Recv(urpc::Channel& ch, int n) {
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.Recv();
  }
}

double Throughput(urpc::ChannelOptions opts, bool posted) {
  sim::Executor exec;
  hw::Machine m(exec, hw::Amd8x4());
  urpc::Channel ch(m, 0, 4, opts);
  const int kMessages = 3000;
  exec.Spawn(Send(ch, kMessages, posted));
  exec.Spawn(Recv(ch, kMessages));
  Cycles elapsed = exec.Run();
  return 1000.0 * kMessages / static_cast<double>(elapsed);
}

// Multicast send-order ablation: measure the collective with the route's
// aggregation nodes visited farthest-first (the SKB policy), nearest-first,
// and in raw package order.
double RouteOrder(const char* mode) {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  auto drivers = CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();
  // Rewrite the measured latencies to invert or flatten the ordering the
  // NUMA-aware route builder sees.
  if (std::string_view(mode) == "nearest-first") {
    // Negate ordering by re-asserting inverted latencies.
    auto rows = skb.facts().All("urpc_latency");
    skb.facts().Retract("urpc_latency",
                        {skb::FactStore::kWildcard, skb::FactStore::kWildcard,
                         skb::FactStore::kWildcard});
    for (auto& r : rows) {
      skb.facts().Assert("urpc_latency", {r[0], r[1], 2000 - r[2]});
    }
  } else if (std::string_view(mode) == "unordered") {
    skb.facts().Retract("urpc_latency",
                        {skb::FactStore::kWildcard, skb::FactStore::kWildcard,
                         skb::FactStore::kWildcard});
    auto rows = std::vector<std::int64_t>{};
    (void)rows;  // no latency facts: route stays in package order
  }
  monitor::MonitorSystem sys(machine, skb, drivers);
  sys.Boot();
  sim::RunningStat stat;
  exec.Spawn([](monitor::MonitorSystem& s, sim::RunningStat& out) -> Task<> {
    monitor::OpFlags raw;
    raw.raw = true;
    raw.skip_tlb = true;
    for (int i = 0; i < 10; ++i) {
      auto r = co_await s.on(0).GlobalInvalidate(0x400000, 1,
                                                 monitor::Protocol::kNumaMulticast, raw);
      if (i > 0) {
        out.Add(static_cast<double>(r.latency));
      }
    }
    s.Shutdown();
  }(sys, stat));
  exec.Run();
  return stat.mean();
}

}  // namespace
}  // namespace mk

int main(int argc, char** argv) {
  using namespace mk;
  bench::TraceSession trace_session(bench::ParseTraceFlags(argc, argv));
  bench::ParseThreadsFlag(argc, argv);  // single-domain bench: host threads cannot change its schedule (sim/parallel.h)
  bench::PrintHeader("Ablation: URPC pipelining window (8x4 AMD, one-hop pair)");
  bench::SeriesTable window("slots");
  window.AddSeries("posted msgs/kcycle");
  window.AddSeries("sync msgs/kcycle");
  for (int slots : {1, 2, 4, 8, 16, 32, 64}) {
    urpc::ChannelOptions opts;
    opts.slots = slots;
    window.AddRow(slots, {Throughput(opts, true), Throughput(opts, false)});
  }
  window.Print("%12.2f");
  std::printf("\nShape: a one-slot ring forces a full round trip per message; the window\n"
              "amortizes until the receiver's fetch path saturates (~16 slots, the\n"
              "paper's queue length).\n");

  bench::PrintHeader("Ablation: receive-side prefetch option");
  for (bool prefetch : {false, true}) {
    urpc::ChannelOptions opts;
    opts.slots = 16;
    opts.prefetch = prefetch;
    std::printf("  prefetch=%-5s  throughput %6.2f msgs/kcycle\n",
                prefetch ? "on" : "off", Throughput(opts, true));
  }

  bench::PrintHeader("Ablation: channel buffer NUMA placement (sender pkg 0, receiver pkg 3)");
  for (int node : {-1, 0, 3}) {
    sim::Executor exec;
    hw::Machine m(exec, hw::Amd8x4());
    urpc::ChannelOptions opts;
    opts.slots = 16;
    opts.numa_node = node;
    urpc::Channel ch(m, 0, 12, opts);
    const int kMessages = 3000;
    exec.Spawn(Send(ch, kMessages, true));
    exec.Spawn(Recv(ch, kMessages));
    Cycles elapsed = exec.Run();
    std::printf("  node=%-2d (%s) %8.2f msgs/kcycle\n", node,
                node < 0 ? "default" : (node == 0 ? "sender-local" : "receiver-local"),
                1000.0 * kMessages / static_cast<double>(elapsed));
  }
  std::printf(
      "  (Placement is neutral for an uncontended stream - cache-to-cache transfers\n"
      "  bypass the home node; it matters when the home controller is contended,\n"
      "  which is why the monitors place tree buffers at the aggregation nodes.)\n");

  bench::PrintHeader("Ablation: multicast send order (raw 32-core shootdown)");
  for (const char* mode : {"farthest-first", "nearest-first", "unordered"}) {
    std::printf("  %-15s %8.1f cycles\n", mode, RouteOrder(mode));
  }
  std::printf(
      "\nFinding: on this machine the send order barely matters because HyperTransport's\n"
      "broadcast probes flatten per-hop latency differences (Table 2: one-hop vs\n"
      "two-hop differ by ~5 cycles), so every subtree costs about the same. The\n"
      "paper's farthest-first order pays off on interconnects with strongly\n"
      "distance-dependent latency; the SKB computes it from measurements either way.\n");
  return 0;
}
