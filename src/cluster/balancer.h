// L4Balancer: consistent-hash flow steering onto backend machines.
//
// The balancer is its own machine on the rack: clients address the virtual
// IP (VIP), ARP-resolved to the balancer's MAC, so every inbound flow enters
// here. Per frame the balancer extracts the 4-tuple, picks a backend by
// rendezvous (highest-random-weight) hashing over the machines the
// membership view says are live, rewrites the Ethernet destination to that
// backend's MAC, and pushes the frame back out toward the switch. Rewriting
// only frame bytes 0–5 is safe — the Ethernet header is covered by no
// checksum — and leaves the IP destination as the VIP, which every backend
// shard stack also binds (direct-server-return: responses go straight from
// backend to client, bypassing the balancer).
//
// Rendezvous hashing gives the consistency property failover needs: when a
// backend dies, only the flows it owned move (each to its next-highest
// backend); every other flow keeps its backend, so established connections
// on survivors are untouched. Flows whose full-set winner is dead are
// counted as resteered.
//
// Non-VIP traffic (the heartbeat datagrams addressed to the balancer's own
// management IP) is handed to the management NetStack, which feeds
// ClusterMembership.
#ifndef MK_CLUSTER_BALANCER_H_
#define MK_CLUSTER_BALANCER_H_

#include <cstdint>
#include <vector>

#include "cluster/membership.h"
#include "hw/machine.h"
#include "net/nic.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::cluster {

class L4Balancer {
 public:
  struct Options {
    net::Ipv4Addr vip = 0;
    std::uint64_t steer_seed = 0x4C344C42;  // 'L4LB'
    sim::Cycles frame_cost = 500;  // per-frame steering work on the drive core
  };

  // `backend_macs[b]` is backend b's NIC MAC; liveness comes from
  // `membership` (same machine, same domain).
  L4Balancer(hw::Machine& machine, net::SimNic& nic,
             ClusterMembership& membership,
             std::vector<net::MacAddr> backend_macs, Options opts);
  L4Balancer(const L4Balancer&) = delete;
  L4Balancer& operator=(const L4Balancer&) = delete;

  // Where non-VIP frames go (the management stack carrying heartbeats).
  void SetMgmtStack(net::NetStack* stack) { mgmt_ = stack; }

  // Per-queue drive loop: pop, steer, push. Spawn one per NIC queue on that
  // queue's IRQ core; parks on the RX interrupt when idle.
  sim::Task<> Drive(int core, int queue);

  // The steering decision (pure): rendezvous-hash winner among live backends,
  // -1 if none are live. Exposed so tests can pin consistency properties.
  int PickBackend(const net::FlowTuple& t) const;

  std::uint64_t steered() const { return steered_; }
  std::uint64_t resteered() const { return resteered_; }
  std::uint64_t mgmt_frames() const { return mgmt_frames_; }
  std::uint64_t no_backend_drops() const { return no_backend_drops_; }
  std::uint64_t tx_full_drops() const { return tx_full_drops_; }

 private:
  sim::Task<> HandleFrame(net::Packet frame, int core, int queue);
  int PickAmong(const net::FlowTuple& t, bool live_only) const;

  hw::Machine& machine_;
  net::SimNic& nic_;
  ClusterMembership& membership_;
  std::vector<net::MacAddr> macs_;
  Options opts_;
  net::NetStack* mgmt_ = nullptr;
  std::uint64_t steered_ = 0;
  std::uint64_t resteered_ = 0;
  std::uint64_t mgmt_frames_ = 0;
  std::uint64_t no_backend_drops_ = 0;
  std::uint64_t tx_full_drops_ = 0;
};

}  // namespace mk::cluster

#endif  // MK_CLUSTER_BALANCER_H_
