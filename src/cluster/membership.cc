#include "cluster/membership.h"

#include <utility>

#include "fault/fault.h"

namespace mk::cluster {

namespace {
void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}
}  // namespace

std::vector<std::uint8_t> EncodeHeartbeat(std::uint32_t id,
                                          std::uint32_t incarnation,
                                          std::uint64_t seq) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  PutU32(&out, id);
  PutU32(&out, incarnation);
  PutU64(&out, seq);
  return out;
}

bool DecodeHeartbeat(const std::vector<std::uint8_t>& payload, std::uint32_t* id,
                     std::uint32_t* incarnation, std::uint64_t* seq) {
  if (payload.size() != 16) {
    return false;
  }
  *id = GetU32(payload.data());
  *incarnation = GetU32(payload.data() + 4);
  *seq = GetU64(payload.data() + 8);
  return true;
}

ClusterMembership::ClusterMembership(hw::Machine& machine, net::NetStack& stack,
                                     Options opts)
    : machine_(machine), stack_(stack), opts_(opts) {
  view_.live.assign(static_cast<std::size_t>(opts_.backends), true);
  backends_.resize(static_cast<std::size_t>(opts_.backends));
}

void ClusterMembership::Start(sim::Cycles horizon) {
  machine_.exec().Spawn(RecvLoop());
  machine_.exec().Spawn(SweepLoop(horizon));
}

void ClusterMembership::OnHeartbeat(std::uint32_t id, std::uint32_t incarnation,
                                    std::uint64_t seq, sim::Cycles now) {
  if (id >= static_cast<std::uint32_t>(opts_.backends)) {
    ++stale_dropped_;
    return;
  }
  Backend& b = backends_[id];
  if (!b.alive) {
    // Fenced: a declared-dead incarnation never resurrects the backend, and
    // rejoining under a fresh incarnation is a deliberate admission step this
    // service does not take on its own.
    ++stale_dropped_;
    return;
  }
  if (incarnation < b.incarnation) {
    ++stale_dropped_;
    return;
  }
  if (incarnation > b.incarnation) {
    b.incarnation = incarnation;
    b.last_seq = 0;
  } else if (seq <= b.last_seq && b.last_seq != 0) {
    ++stale_dropped_;  // duplicate or reordered within the incarnation
    return;
  }
  b.last_seq = seq;
  b.last_heard = now;
  ++accepted_;
}

sim::Task<> ClusterMembership::RecvLoop() {
  net::NetStack::UdpSocket& sock = stack_.UdpBind(opts_.port);
  for (;;) {
    net::NetStack::UdpDatagram dg = co_await sock.Recv();
    std::uint32_t id = 0;
    std::uint32_t incarnation = 0;
    std::uint64_t seq = 0;
    if (!DecodeHeartbeat(dg.payload, &id, &incarnation, &seq)) {
      ++stale_dropped_;
      continue;
    }
    OnHeartbeat(id, incarnation, seq, machine_.exec().now());
  }
}

sim::Task<> ClusterMembership::SweepLoop(sim::Cycles horizon) {
  sim::Executor& exec = machine_.exec();
  while (exec.now() < horizon) {
    co_await exec.Delay(opts_.sweep_period);
    const sim::Cycles now = exec.now();
    for (int i = 0; i < opts_.backends; ++i) {
      Backend& b = backends_[static_cast<std::size_t>(i)];
      if (b.alive && now > b.last_heard + opts_.heartbeat_timeout) {
        b.alive = false;
        view_.epoch += 1;
        view_.live[static_cast<std::size_t>(i)] = false;
        for (const Subscriber& fn : subscribers_) {
          fn(view_, i);
        }
      }
    }
  }
}

sim::Task<> RunHeartbeatSender(hw::Machine& machine, int core,
                               net::NetStack& stack, int id,
                               std::uint32_t incarnation, net::Ipv4Addr dst_ip,
                               std::uint16_t dst_port, sim::Cycles period,
                               sim::Cycles horizon) {
  sim::Executor& exec = machine.exec();
  std::uint64_t seq = 0;
  while (exec.now() < horizon) {
    if (fault::Injector* inj = fault::Injector::active()) {
      if (inj->CoreHalted(core, exec.now())) {
        co_return;  // fail-stop: the machine goes silent
      }
    }
    co_await stack.UdpSendTo(dst_port, dst_ip, dst_port,
                             EncodeHeartbeat(static_cast<std::uint32_t>(id),
                                             incarnation, ++seq));
    co_await exec.Delay(period);
  }
}

}  // namespace mk::cluster
