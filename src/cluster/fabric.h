// DcFabric: a top-of-rack switch joining machines across parallel-engine
// domains.
//
// The paper's closing argument (§2, §7) is that the machine is a distributed
// system; a rack of machines is the same argument one level up. Each machine
// hangs off the switch through one port: a switch-side SimNic (paced at the
// port's line rate) bridged to the machine's own NIC by a net::CrossWire, so
// the port wire latency is simultaneously the engine's conservative lookahead
// for that domain pair. The switch itself is an ordinary hw::Machine whose
// cores run store-and-forward loops: pop a frame from an ingress port, charge
// the forwarding cost, look up the destination MAC, and push the frame out
// the egress port. Every rack crossing therefore pays ingress pacing, one
// switch-core forwarding charge, egress pacing, and two wire latencies —
// and the shared switch cores are the uplink contention point the rack bench
// measures.
//
// Routing is a static MAC table (the rack is a closed set of hosts, like the
// static ARP tables in net::NetStack); frames to an unknown MAC are counted
// and dropped, never flooded.
//
// A port is itself multi-queue (like the line cards it models): the
// switch-side NIC RSS-steers inbound flows across `queues` RX rings, and one
// forwarding loop runs per (port, queue) on its own switch core, assigned
// round-robin over the switch's cores in port-creation order. RSS keeps every
// flow on one ingress ring, and the egress ring is chosen from the ingress
// ring index, so per-flow frame order is preserved end-to-end while bulk
// (payload-bearing) ports spread their per-frame buffer-copy cost over
// several forwarding cores instead of serializing on one.
//
// Each port's rings and frame buffers are homed on the NUMA node that runs
// its forwarding loops. This is the paper's argument applied to the switch
// itself: with every port's buffers on node 0, all ports' DMA writes and
// buffer reads serialize on a single home memory controller, and adding
// machines collapses the rack even though each port's own load is constant
// (heartbeats queue behind data frames until the membership service declares
// healthy machines dead). Per-port homing keeps controller load flat per
// node as ports are added.
#ifndef MK_CLUSTER_FABRIC_H_
#define MK_CLUSTER_FABRIC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/machine.h"
#include "net/crosswire.h"
#include "net/nic.h"
#include "net/wire.h"
#include "sim/parallel.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::cluster {

class DcFabric {
 public:
  // The switch lives in `switch_domain` on `switch_machine` (whose executor
  // must be that domain's). `forward_cost` is the per-frame switching work
  // charged on the handling core.
  DcFabric(sim::ParallelEngine& engine, int switch_domain,
           hw::Machine& switch_machine, sim::Cycles forward_cost = 300);

  // Wires `remote_nic` (living in engine domain `remote_domain`) to a new
  // switch port: builds the switch-side NIC paced at `gbps` with `queues`
  // RSS-steered RX rings, and the CrossWire at `latency` cycles each way
  // (which registers both directed engine links, so the fabric latency is
  // the lookahead). Each queue's forwarding loop gets the next switch core
  // round-robin. Returns the port id. Call before Start().
  int AddPort(int remote_domain, net::SimNic& remote_nic, double gbps,
              sim::Cycles latency, int queues = 1);

  // Static L2 route: frames whose Ethernet destination is `mac` egress
  // through `port`.
  void AddRoute(const net::MacAddr& mac, int port);

  // Spawns the cross-wires and one store-and-forward loop per (port, queue).
  // Call before ParallelEngine::Run(); the loops quiesce by parking on their
  // queue's RX interrupt.
  void Start();

  int num_ports() const { return static_cast<int>(ports_.size()); }
  net::CrossWire& wire(int port) { return *ports_[static_cast<std::size_t>(port)]->wire; }
  const net::SimNic& port_nic(int port) const {
    return *ports_[static_cast<std::size_t>(port)]->sw_nic;
  }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t unknown_dst_drops() const { return unknown_dst_drops_; }
  std::uint64_t tx_full_drops() const { return tx_full_drops_; }

 private:
  struct Port {
    int id = 0;
    int remote_domain = 0;
    std::vector<int> cores;  // forwarding core per RX queue
    std::unique_ptr<net::SimNic> sw_nic;
    std::unique_ptr<net::CrossWire> wire;
  };

  sim::Task<> ForwardLoop(Port& port, int queue);
  sim::Task<> Forward(net::Packet frame, int ingress_core, int ingress_queue);

  sim::ParallelEngine& engine_;
  int switch_domain_;
  hw::Machine& machine_;
  sim::Cycles forward_cost_;
  int next_core_ = 0;  // round-robin forwarding-core assignment
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<net::MacAddr, int> routes_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t unknown_dst_drops_ = 0;
  std::uint64_t tx_full_drops_ = 0;
};

}  // namespace mk::cluster

#endif  // MK_CLUSTER_FABRIC_H_
