#include "cluster/fabric.h"

#include <utility>

namespace mk::cluster {

DcFabric::DcFabric(sim::ParallelEngine& engine, int switch_domain,
                   hw::Machine& switch_machine, sim::Cycles forward_cost)
    : engine_(engine),
      switch_domain_(switch_domain),
      machine_(switch_machine),
      forward_cost_(forward_cost) {}

int DcFabric::AddPort(int remote_domain, net::SimNic& remote_nic, double gbps,
                      sim::Cycles latency, int queues) {
  auto port = std::make_unique<Port>();
  port->id = num_ports();
  port->remote_domain = remote_domain;
  net::SimNic::Config cfg;
  cfg.rx_descs = 4096;
  cfg.tx_descs = 4096;
  cfg.gbps = gbps;
  cfg.queues = queues;
  for (int q = 0; q < queues; ++q) {
    const int core = next_core_ % machine_.num_cores();
    ++next_core_;
    port->cores.push_back(core);
    cfg.irq_cores.push_back(core);
  }
  // Home this port's rings and frame buffers on the package that runs its
  // forwarding loops. Leaving every port on node 0 serializes all ports'
  // DMA writes and buffer reads on one home memory controller — the switch
  // reproduces the paper's shared-controller saturation instead of scaling
  // with ports — and the contention grows with machine count even though
  // each port's own load is constant.
  cfg.node = machine_.topo().PackageOf(port->cores.front());
  cfg.irq_latency = machine_.cost().ipi_wire;
  port->sw_nic = std::make_unique<net::SimNic>(machine_, cfg);
  port->wire = std::make_unique<net::CrossWire>(engine_, switch_domain_,
                                                *port->sw_nic, remote_domain,
                                                remote_nic, latency);
  ports_.push_back(std::move(port));
  return ports_.back()->id;
}

void DcFabric::AddRoute(const net::MacAddr& mac, int port) {
  routes_[mac] = port;
}

void DcFabric::Start() {
  for (auto& port : ports_) {
    port->wire->Start();
    for (int q = 0; q < port->sw_nic->num_queues(); ++q) {
      machine_.exec().Spawn(ForwardLoop(*port, q));
    }
  }
}

sim::Task<> DcFabric::ForwardLoop(Port& port, int queue) {
  net::SimNic& nic = *port.sw_nic;
  const int core = port.cores[static_cast<std::size_t>(queue)];
  for (;;) {
    if (nic.RxReady(queue)) {
      nic.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic.DriverRxPop(core, queue);
      if (frame) {
        co_await machine_.Compute(core, forward_cost_);
        co_await Forward(std::move(*frame), core, queue);
      }
      continue;
    }
    nic.SetInterruptsEnabled(queue, true);
    if (!nic.RxReady(queue)) {
      co_await nic.rx_irq(queue).Wait();
      co_await machine_.Trap(core);
    }
  }
}

sim::Task<> DcFabric::Forward(net::Packet frame, int ingress_core,
                              int ingress_queue) {
  if (frame.size() < 6) {
    ++unknown_dst_drops_;
    co_return;
  }
  net::MacAddr dst;
  for (std::size_t i = 0; i < 6; ++i) {
    dst[i] = frame[i];
  }
  const auto it = routes_.find(dst);
  if (it == routes_.end()) {
    ++unknown_dst_drops_;
    co_return;
  }
  net::SimNic& egress = *ports_[static_cast<std::size_t>(it->second)]->sw_nic;
  // Egress ring keyed off the ingress ring: RSS pinned the flow to one
  // ingress queue, so this keeps each flow's frames in one egress ring too
  // (FIFO per hop, hence FIFO end-to-end).
  const int egress_queue = ingress_queue % egress.num_queues();
  if (co_await egress.DriverTxPush(ingress_core, std::move(frame),
                                   egress_queue)) {
    ++forwarded_;
  } else {
    ++tx_full_drops_;
  }
}

}  // namespace mk::cluster
