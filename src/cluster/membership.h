// Cluster-scale membership: per-machine health from periodic heartbeats.
//
// recover::MembershipService answers "which cores of this machine are live"
// by hooking the monitor collective; across machines there is no shared
// monitor, so liveness has to travel the same way everything else does —
// messages over the rack fabric. Each backend machine runs a heartbeat
// sender (RunHeartbeatSender) that periodically sends a small UDP datagram
// [id, incarnation, seq] to the balancer machine; ClusterMembership, living
// on the balancer, receives them and runs a timeout sweep. A backend that
// misses `heartbeat_timeout` worth of beats is declared dead in an
// epoch-numbered view change, and subscribers (the L4 steering tier) are
// notified in order.
//
// Incarnation fencing mirrors PR 5's replica respawn rule: once a backend is
// declared dead, beats carrying its old (or any lower) incarnation are
// dropped as stale — a partitioned-but-alive machine cannot flap the view.
// Sequence numbers fence duplicated/reordered datagrams within one
// incarnation.
//
// Unlike the intra-machine recovery machinery, the heartbeat path is always
// on (not fault::Injector-gated): it is ordinary cluster traffic, fully
// deterministic (Delay loops bounded by an explicit horizon; no
// WaitTimeout), and exercising the fabric in the golden path is the point.
#ifndef MK_CLUSTER_MEMBERSHIP_H_
#define MK_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/machine.h"
#include "net/stack.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::cluster {

// Epoch-numbered backend-machine liveness map (the cross-machine analogue of
// recover::View, indexed by backend id rather than core).
struct ClusterView {
  std::uint64_t epoch = 1;
  std::vector<bool> live;

  int NumLive() const {
    int n = 0;
    for (bool b : live) {
      n += b ? 1 : 0;
    }
    return n;
  }
};

// 16-byte wire format: id, incarnation (u32 LE), then seq (u64 LE).
std::vector<std::uint8_t> EncodeHeartbeat(std::uint32_t id,
                                          std::uint32_t incarnation,
                                          std::uint64_t seq);
bool DecodeHeartbeat(const std::vector<std::uint8_t>& payload, std::uint32_t* id,
                     std::uint32_t* incarnation, std::uint64_t* seq);

class ClusterMembership {
 public:
  struct Options {
    int backends = 0;
    // Declared dead after this long without an accepted beat.
    sim::Cycles heartbeat_timeout = 400'000;
    sim::Cycles sweep_period = 100'000;
    std::uint16_t port = 7100;  // UDP port the receive loop binds
  };

  // Called once per committed view change, in subscription order, from the
  // sweep task (synchronous: steering-table updates are plain state).
  using Subscriber = std::function<void(const ClusterView& view, int dead_backend)>;

  // `stack` is the balancer machine's management NetStack; both service loops
  // run on `machine`'s executor (the balancer domain).
  ClusterMembership(hw::Machine& machine, net::NetStack& stack, Options opts);
  ClusterMembership(const ClusterMembership&) = delete;
  ClusterMembership& operator=(const ClusterMembership&) = delete;

  void Subscribe(Subscriber fn) { subscribers_.push_back(std::move(fn)); }

  // Spawns the receive loop (parks on the UDP socket; runs for the whole
  // simulation) and the timeout sweep (bounded: exits at `horizon`). Call
  // before the engine runs; the service must outlive the run.
  void Start(sim::Cycles horizon);

  // Feeds one heartbeat observation; exposed so tests can drive fencing and
  // view changes without a network. `now` is the receipt time.
  void OnHeartbeat(std::uint32_t id, std::uint32_t incarnation, std::uint64_t seq,
                   sim::Cycles now);

  const ClusterView& view() const { return view_; }
  std::uint64_t heartbeats_accepted() const { return accepted_; }
  std::uint64_t stale_dropped() const { return stale_dropped_; }
  std::uint64_t view_changes() const { return view_.epoch - 1; }

 private:
  struct Backend {
    std::uint32_t incarnation = 0;
    std::uint64_t last_seq = 0;
    sim::Cycles last_heard = 0;
    bool alive = true;
  };

  sim::Task<> RecvLoop();
  sim::Task<> SweepLoop(sim::Cycles horizon);

  hw::Machine& machine_;
  net::NetStack& stack_;
  Options opts_;
  ClusterView view_;
  std::vector<Backend> backends_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t accepted_ = 0;
  std::uint64_t stale_dropped_ = 0;
};

// Heartbeat source for one backend machine: every `period` cycles (until the
// simulated `horizon`) sends [id, incarnation, seq++] from `stack` to the
// membership service at `dst_ip`:`dst_port`. Checks fault::CoreHalted on
// `core` each round, so a machine-scoped kill silences the machine's beats
// exactly as a real fail-stop would (and the halt spec records an
// activation). Spawn on the backend machine's executor.
sim::Task<> RunHeartbeatSender(hw::Machine& machine, int core,
                               net::NetStack& stack, int id,
                               std::uint32_t incarnation, net::Ipv4Addr dst_ip,
                               std::uint16_t dst_port, sim::Cycles period,
                               sim::Cycles horizon);

}  // namespace mk::cluster

#endif  // MK_CLUSTER_MEMBERSHIP_H_
