#include "cluster/balancer.h"

#include <utility>

namespace mk::cluster {

L4Balancer::L4Balancer(hw::Machine& machine, net::SimNic& nic,
                       ClusterMembership& membership,
                       std::vector<net::MacAddr> backend_macs, Options opts)
    : machine_(machine),
      nic_(nic),
      membership_(membership),
      macs_(std::move(backend_macs)),
      opts_(opts) {}

int L4Balancer::PickAmong(const net::FlowTuple& t, bool live_only) const {
  const ClusterView& v = membership_.view();
  int best = -1;
  std::uint32_t best_w = 0;
  for (int b = 0; b < static_cast<int>(macs_.size()); ++b) {
    if (live_only && !v.live[static_cast<std::size_t>(b)]) {
      continue;
    }
    // Rendezvous: per-backend keyed hash of the flow tuple; the winner is
    // stable under membership of the other backends.
    const std::uint32_t w = net::RssHash(
        opts_.steer_seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(b + 1), t);
    if (best == -1 || w > best_w) {
      best = b;
      best_w = w;
    }
  }
  return best;
}

int L4Balancer::PickBackend(const net::FlowTuple& t) const {
  return PickAmong(t, /*live_only=*/true);
}

sim::Task<> L4Balancer::Drive(int core, int queue) {
  for (;;) {
    if (nic_.RxReady(queue)) {
      nic_.SetInterruptsEnabled(queue, false);
      auto frame = co_await nic_.DriverRxPop(core, queue);
      if (frame) {
        co_await machine_.Compute(core, opts_.frame_cost);
        co_await HandleFrame(std::move(*frame), core, queue);
      }
      continue;
    }
    nic_.SetInterruptsEnabled(queue, true);
    if (!nic_.RxReady(queue)) {
      co_await nic_.rx_irq(queue).Wait();
      co_await machine_.Trap(core);
    }
  }
}

sim::Task<> L4Balancer::HandleFrame(net::Packet frame, int core, int queue) {
  const auto tuple = net::ExtractFlowTuple(frame);
  if (!tuple || tuple->dst_ip != opts_.vip) {
    ++mgmt_frames_;
    if (mgmt_ != nullptr) {
      co_await mgmt_->Input(std::move(frame));
    }
    co_return;
  }
  const int preferred = PickAmong(*tuple, /*live_only=*/false);
  int b = preferred;
  if (b < 0 || !membership_.view().live[static_cast<std::size_t>(b)]) {
    b = PickAmong(*tuple, /*live_only=*/true);
  }
  if (b < 0) {
    ++no_backend_drops_;
    co_return;
  }
  if (b != preferred) {
    ++resteered_;
  }
  for (std::size_t i = 0; i < 6; ++i) {
    frame[i] = macs_[static_cast<std::size_t>(b)][i];
  }
  if (co_await nic_.DriverTxPush(core, std::move(frame), queue)) {
    ++steered_;
  } else {
    ++tx_full_drops_;
  }
}

}  // namespace mk::cluster
