#include "cluster/topology.h"

#include <utility>

namespace mk::cluster {

ClusterTopology::ClusterTopology(Options opts) : opts_(std::move(opts)) {
  sim::ParallelEngine::Options eng_opts;
  eng_opts.domains = num_domains();
  eng_opts.threads = opts_.threads;
  engine_ = std::make_unique<sim::ParallelEngine>(eng_opts);

  // Switch, client, and balancer are 16-core Amd4x4s: all three sit on the
  // aggregate path (every frame of every flow), so they get the core counts
  // real ToR silicon / load generators / LB appliances would have rather
  // than becoming accidental bottlenecks of the rack they instrument.
  machines_.push_back(
      std::make_unique<hw::Machine>(engine_->domain(kSwitchDomain), hw::Amd4x4()));
  machines_.push_back(
      std::make_unique<hw::Machine>(engine_->domain(kClientDomain), hw::Amd4x4()));
  machines_.push_back(std::make_unique<hw::Machine>(
      engine_->domain(kBalancerDomain), hw::Amd4x4()));
  for (int b = 0; b < opts_.backends; ++b) {
    machines_.push_back(std::make_unique<hw::Machine>(
        engine_->domain(BackendDomain(b)), opts_.backend_spec));
  }

  fabric_ = std::make_unique<DcFabric>(*engine_, kSwitchDomain, switch_machine(),
                                       opts_.switch_forward_cost);

  const sim::Cycles irq_wire = switch_machine().cost().ipi_wire;

  // Client NIC: the reply path fans over kClientNicQueues RX queues so the
  // caller's drivers (cores 0..7) keep up with N backends' worth of
  // payload-bearing response frames (a full data frame costs ~23 cache-line
  // reads to pop).
  {
    net::SimNic::Config cfg;
    cfg.rx_descs = 4096;
    cfg.tx_descs = 4096;
    cfg.gbps = opts_.uplink_gbps;
    cfg.queues = kClientNicQueues;
    for (int q = 0; q < kClientNicQueues; ++q) {
      cfg.irq_cores.push_back(q);
    }
    cfg.irq_latency = irq_wire;
    client_nic_ = std::make_unique<net::SimNic>(client_machine(), cfg);
  }

  // Balancer NIC: kBalancerQueues steering queues on cores 0..7 — every
  // client->VIP frame crosses the balancer, so steering capacity must scale
  // with the whole rack's request rate, not one backend's.
  {
    net::SimNic::Config cfg;
    cfg.rx_descs = 4096;
    cfg.tx_descs = 4096;
    cfg.gbps = opts_.uplink_gbps;
    cfg.queues = kBalancerQueues;
    for (int q = 0; q < kBalancerQueues; ++q) {
      cfg.irq_cores.push_back(q);
    }
    cfg.irq_latency = irq_wire;
    balancer_nic_ = std::make_unique<net::SimNic>(balancer_machine(), cfg);
  }

  // Backend NICs: one RSS queue per serving shard, IRQs to the shard web
  // cores (4*i), RETA sized for runtime re-steering like sec54_failover.
  for (int b = 0; b < opts_.backends; ++b) {
    net::SimNic::Config cfg;
    cfg.rx_descs = 4096;
    cfg.tx_descs = 4096;
    cfg.gbps = opts_.backend_gbps;
    cfg.queues = opts_.shards_per_backend;
    for (int s = 0; s < opts_.shards_per_backend; ++s) {
      cfg.irq_cores.push_back(4 * s);
    }
    cfg.reta_slots = 16 * opts_.shards_per_backend;
    cfg.irq_latency = irq_wire;
    backend_nics_.push_back(
        std::make_unique<net::SimNic>(backend_machine(b), cfg));
  }

  // Switch ports and the static L2 routes.
  const int client_port =
      fabric_->AddPort(kClientDomain, *client_nic_, opts_.uplink_gbps,
                       opts_.port_latency, opts_.uplink_port_queues);
  fabric_->AddRoute(ClientMac(), client_port);
  const int balancer_port =
      fabric_->AddPort(kBalancerDomain, *balancer_nic_, opts_.uplink_gbps,
                       opts_.port_latency, opts_.uplink_port_queues);
  fabric_->AddRoute(BalancerMac(), balancer_port);
  for (int b = 0; b < opts_.backends; ++b) {
    const int port = fabric_->AddPort(
        BackendDomain(b), *backend_nics_[static_cast<std::size_t>(b)],
        opts_.backend_gbps, opts_.port_latency, opts_.switch_port_queues);
    fabric_->AddRoute(BackendMac(b), port);
  }

  // Balancer management stack: receives the heartbeat datagrams the drive
  // loops hand over, feeds the membership service.
  balancer_stack_ = std::make_unique<net::NetStack>(
      balancer_machine(), kBalancerMgmtCore, kBalancerIp, BalancerMac());
  balancer_stack_->SetOutput([this](net::Packet p) -> sim::Task<> {
    (void)co_await balancer_nic_->DriverTxPush(kBalancerMgmtCore, std::move(p));
  });
  balancer_stack_->AddArp(kClientIp, ClientMac());

  ClusterMembership::Options mem_opts;
  mem_opts.backends = opts_.backends;
  mem_opts.heartbeat_timeout = opts_.heartbeat_timeout;
  mem_opts.port = opts_.heartbeat_port;
  membership_ = std::make_unique<ClusterMembership>(balancer_machine(),
                                                    *balancer_stack_, mem_opts);

  std::vector<net::MacAddr> macs;
  for (int b = 0; b < opts_.backends; ++b) {
    macs.push_back(BackendMac(b));
  }
  L4Balancer::Options bal_opts;
  bal_opts.vip = kVip;
  balancer_ = std::make_unique<L4Balancer>(balancer_machine(), *balancer_nic_,
                                           *membership_, std::move(macs), bal_opts);
  balancer_->SetMgmtStack(balancer_stack_.get());

  // Backend management stacks: heartbeat sources. TX-only in steady state.
  for (int b = 0; b < opts_.backends; ++b) {
    auto stack = std::make_unique<net::NetStack>(
        backend_machine(b), kBackendMgmtCore, BackendMgmtIp(b), BackendMac(b));
    stack->AddArp(kBalancerIp, BalancerMac());
    net::SimNic* nic = backend_nics_[static_cast<std::size_t>(b)].get();
    stack->SetOutput([nic](net::Packet p) -> sim::Task<> {
      (void)co_await nic->DriverTxPush(kBackendMgmtCore, std::move(p));
    });
    backend_mgmt_stacks_.push_back(std::move(stack));
  }
}

void ClusterTopology::Start(sim::Cycles horizon) {
  fabric_->Start();
  membership_->Start(horizon);
  for (int q = 0; q < kBalancerQueues; ++q) {
    engine_->domain(kBalancerDomain).Spawn(balancer_->Drive(q, q));
  }
  for (int b = 0; b < opts_.backends; ++b) {
    engine_->domain(BackendDomain(b))
        .Spawn(RunHeartbeatSender(backend_machine(b), kBackendMgmtCore,
                                  backend_mgmt_stack(b), b, /*incarnation=*/1,
                                  kBalancerIp, opts_.heartbeat_port,
                                  opts_.heartbeat_period, horizon));
  }
}

}  // namespace mk::cluster
