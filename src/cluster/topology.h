// ClusterTopology: composes N hw::Machine instances into a rack.
//
// One ParallelEngine domain per machine — the multikernel argument applied
// across the rack. The fixed layout:
//
//   domain 0            top-of-rack switch (DcFabric's store-and-forward
//                       cores), an Amd4x4: each port runs
//                       switch_port_queues forwarding loops, cores assigned
//                       round-robin in port order
//   domain 1            client machine (Amd4x4): the load-generator NIC
//                       (multi-queue, uplink rate) — client stacks and
//                       drivers are the caller's
//   domain 2            balancer machine (Amd4x4): L4Balancer drive cores
//                       (0..7), the management NetStack (core 8) feeding
//                       ClusterMembership
//   domain 3..3+N-1     backend machines: a multi-queue serving NIC (one
//                       RSS queue per shard, IRQs to the shard web cores
//                       4*i) plus a management stack (core 1) sourcing
//                       heartbeats
//
// All NICs are wired to switch ports; the port wire latency is the engine's
// conservative lookahead. "Machine" in fault plans (FaultSpec::machine,
// HaltMachine) is exactly the engine domain id, so killing backend b means
// HaltMachine(ClusterTopology::BackendDomain(b), at).
//
// Addressing: clients reach the service at the VIP, ARP-resolved to the
// balancer MAC; backend shard stacks all bind the VIP and their machine's
// MAC (the stack demuxes by destination IP only, so shards share both), and
// answer clients directly — direct server return, the reply path never
// crosses the balancer.
#ifndef MK_CLUSTER_TOPOLOGY_H_
#define MK_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/fabric.h"
#include "cluster/membership.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/nic.h"
#include "net/stack.h"
#include "net/wire.h"
#include "sim/parallel.h"
#include "sim/types.h"

namespace mk::cluster {

class ClusterTopology {
 public:
  struct Options {
    int backends = 4;
    int shards_per_backend = 8;  // serving NIC queues; shard i on core 4*i
    int threads = 1;             // host threads for the engine
    hw::PlatformSpec backend_spec = hw::Amd8x4();
    sim::Cycles port_latency = 10'000;  // ~3.3 us switch hop = the lookahead
    double backend_gbps = 10.0;
    double uplink_gbps = 40.0;  // client and balancer ports
    sim::Cycles switch_forward_cost = 300;
    // Forwarding loops (RSS-steered RX rings) per switch port. A frame pop
    // reads the whole payload through the coherence model (~23 lines for a
    // full data frame), so payload-bearing ports need the copy cost spread
    // over several switch cores to keep up with an 8-shard backend. The
    // client and balancer ports carry the whole rack's frames (every request
    // crosses both), so they get uplink_port_queues; a backend port only
    // ever carries one machine's worth.
    int switch_port_queues = 2;
    int uplink_port_queues = 4;
    sim::Cycles heartbeat_period = 100'000;
    sim::Cycles heartbeat_timeout = 400'000;
    std::uint16_t heartbeat_port = 7100;
  };

  static constexpr int kSwitchDomain = 0;
  static constexpr int kClientDomain = 1;
  static constexpr int kBalancerDomain = 2;
  static constexpr int BackendDomain(int b) { return 3 + b; }

  static constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 100);
  static constexpr net::Ipv4Addr kBalancerIp = net::MakeIp(10, 0, 0, 2);
  static constexpr net::Ipv4Addr kVip = net::MakeIp(10, 0, 1, 1);
  static net::Ipv4Addr BackendMgmtIp(int b) { return net::MakeIp(10, 0, 2, 1 + b); }
  static net::MacAddr ClientMac() { return {2, 0, 0, 0, 0, 1}; }
  static net::MacAddr BalancerMac() { return {2, 0, 0, 0, 0, 2}; }
  static net::MacAddr BackendMac(int b) {
    return {2, 0, 0, 0, 1, static_cast<std::uint8_t>(1 + b)};
  }

  // Backend management stacks live on this core (off the 4*i shard cores).
  static constexpr int kBackendMgmtCore = 1;
  static constexpr int kBalancerQueues = 8;   // drive loops on cores 0..7
  static constexpr int kBalancerMgmtCore = kBalancerQueues;
  static constexpr int kClientNicQueues = 8;  // RX driven on cores 0..7

  explicit ClusterTopology(Options opts);
  ClusterTopology(const ClusterTopology&) = delete;
  ClusterTopology& operator=(const ClusterTopology&) = delete;

  // Spawns the fabric pumps and forward loops, balancer drive loops,
  // membership service, and per-backend heartbeat senders. `horizon` bounds
  // every periodic loop (heartbeats, sweep); pick it past the bench's last
  // interesting simulated cycle. Call once, before engine().Run().
  void Start(sim::Cycles horizon);

  const Options& options() const { return opts_; }
  int backends() const { return opts_.backends; }
  int num_domains() const { return 3 + opts_.backends; }
  sim::ParallelEngine& engine() { return *engine_; }
  DcFabric& fabric() { return *fabric_; }
  L4Balancer& balancer() { return *balancer_; }
  ClusterMembership& membership() { return *membership_; }

  hw::Machine& switch_machine() { return *machines_[kSwitchDomain]; }
  hw::Machine& client_machine() { return *machines_[kClientDomain]; }
  hw::Machine& balancer_machine() { return *machines_[kBalancerDomain]; }
  hw::Machine& backend_machine(int b) {
    return *machines_[static_cast<std::size_t>(BackendDomain(b))];
  }

  net::SimNic& client_nic() { return *client_nic_; }
  net::SimNic& balancer_nic() { return *balancer_nic_; }
  net::SimNic& backend_nic(int b) {
    return *backend_nics_[static_cast<std::size_t>(b)];
  }
  net::NetStack& balancer_stack() { return *balancer_stack_; }
  net::NetStack& backend_mgmt_stack(int b) {
    return *backend_mgmt_stacks_[static_cast<std::size_t>(b)];
  }

 private:
  Options opts_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;  // indexed by domain
  std::unique_ptr<DcFabric> fabric_;
  std::unique_ptr<net::SimNic> client_nic_;
  std::unique_ptr<net::SimNic> balancer_nic_;
  std::vector<std::unique_ptr<net::SimNic>> backend_nics_;
  std::unique_ptr<net::NetStack> balancer_stack_;
  std::vector<std::unique_ptr<net::NetStack>> backend_mgmt_stacks_;
  std::unique_ptr<ClusterMembership> membership_;
  std::unique_ptr<L4Balancer> balancer_;
};

}  // namespace mk::cluster

#endif  // MK_CLUSTER_TOPOLOGY_H_
