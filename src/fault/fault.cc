#include "fault/fault.h"

#include <cassert>

namespace mk::fault {

namespace internal {
Injector* g_active = nullptr;
}  // namespace internal

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCoreHalt: return "core-halt";
    case FaultKind::kIpiDrop: return "ipi-drop";
    case FaultKind::kIpiDelay: return "ipi-delay";
    case FaultKind::kNicRxDrop: return "nic-rx-drop";
    case FaultKind::kNicRxCorrupt: return "nic-rx-corrupt";
    case FaultKind::kNicTxDrop: return "nic-tx-drop";
    case FaultKind::kLinkDelay: return "link-delay";
    case FaultKind::kWireDrop: return "wire-drop";
    case FaultKind::kWireDelay: return "wire-delay";
    case FaultKind::kSynFlood: return "syn-flood";
    case FaultKind::kSlowloris: return "slowloris";
    case FaultKind::kConnChurn: return "conn-churn";
    case FaultKind::kNumKinds: break;
  }
  return "?";
}

FaultPlan& FaultPlan::Add(const FaultSpec& spec) {
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::HaltCore(int core, sim::Cycles at) {
  FaultSpec s;
  s.kind = FaultKind::kCoreHalt;
  s.at = at;
  s.a = core;
  return Add(s);
}

FaultPlan& FaultPlan::HaltMachine(int machine, sim::Cycles at) {
  FaultSpec s;
  s.kind = FaultKind::kCoreHalt;
  s.at = at;
  s.a = -1;  // every core of the machine
  s.machine = machine;
  return Add(s);
}

FaultPlan& FaultPlan::DropIpi(int from, int to, sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kIpiDrop;
  s.at = at;
  s.a = from;
  s.b = to;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::DelayIpi(int from, int to, sim::Cycles extra, sim::Cycles at,
                               sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kIpiDelay;
  s.at = at;
  s.until = until;
  s.a = from;
  s.b = to;
  s.extra = extra;
  return Add(s);
}

FaultPlan& FaultPlan::DropRxFrames(sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kNicRxDrop;
  s.at = at;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::DropRxFramesOnQueue(int queue, sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kNicRxDrop;
  s.at = at;
  s.a = queue;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::RandomRxLoss(double rate, std::uint64_t seed, sim::Cycles at,
                                   sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kNicRxDrop;
  s.at = at;
  s.until = until;
  s.probability = rate;
  s.seed = seed;
  return Add(s);
}

FaultPlan& FaultPlan::CorruptRxFrames(sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kNicRxCorrupt;
  s.at = at;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::DropTxFrames(sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kNicTxDrop;
  s.at = at;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::RandomTxLoss(double rate, std::uint64_t seed, sim::Cycles at,
                                   sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kNicTxDrop;
  s.at = at;
  s.until = until;
  s.probability = rate;
  s.seed = seed;
  return Add(s);
}

FaultPlan& FaultPlan::LinkSpike(sim::Cycles extra, sim::Cycles at, sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kLinkDelay;
  s.at = at;
  s.until = until;
  s.extra = extra;
  return Add(s);
}

FaultPlan& FaultPlan::DropWireFrames(int src_machine, int dst_machine,
                                     sim::Cycles at, int count) {
  FaultSpec s;
  s.kind = FaultKind::kWireDrop;
  s.at = at;
  s.a = src_machine;
  s.b = dst_machine;
  s.count = count;
  return Add(s);
}

FaultPlan& FaultPlan::RandomWireLoss(int src_machine, int dst_machine, double rate,
                                     std::uint64_t seed, sim::Cycles at,
                                     sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kWireDrop;
  s.at = at;
  s.until = until;
  s.a = src_machine;
  s.b = dst_machine;
  s.probability = rate;
  s.seed = seed;
  return Add(s);
}

FaultPlan& FaultPlan::WireDelay(int src_machine, int dst_machine, sim::Cycles extra,
                                sim::Cycles at, sim::Cycles until) {
  FaultSpec s;
  s.kind = FaultKind::kWireDelay;
  s.at = at;
  s.until = until;
  s.a = src_machine;
  s.b = dst_machine;
  s.extra = extra;
  return Add(s);
}

namespace {
FaultSpec AttackSpec(FaultKind kind, sim::Cycles at, sim::Cycles until, int count,
                     double probability, std::uint64_t seed) {
  FaultSpec s;
  s.kind = kind;
  s.at = at;
  s.until = until;
  s.count = count;
  s.probability = probability;
  s.seed = seed;
  return s;
}
}  // namespace

FaultPlan& FaultPlan::SynFlood(sim::Cycles at, sim::Cycles until, int count,
                               double probability, std::uint64_t seed) {
  return Add(AttackSpec(FaultKind::kSynFlood, at, until, count, probability, seed));
}

FaultPlan& FaultPlan::Slowloris(sim::Cycles at, sim::Cycles until, int count,
                                double probability, std::uint64_t seed) {
  return Add(AttackSpec(FaultKind::kSlowloris, at, until, count, probability, seed));
}

FaultPlan& FaultPlan::ConnChurn(sim::Cycles at, sim::Cycles until, int count,
                                double probability, std::uint64_t seed) {
  return Add(AttackSpec(FaultKind::kConnChurn, at, until, count, probability, seed));
}

Injector::Injector(const FaultPlan& plan) {
  for (const FaultSpec& s : plan.specs()) {
    specs_.emplace_back(s);
  }
}

Injector::~Injector() {
  if (installed_) {
    Uninstall();
  }
}

void Injector::Install() {
  assert(internal::g_active == nullptr && "an Injector is already installed");
  internal::g_active = this;
  installed_ = true;
}

void Injector::Uninstall() {
  if (internal::g_active == this) {
    internal::g_active = nullptr;
  }
  installed_ = false;
}

namespace {
bool EndpointMatches(int want, int got) { return want == -1 || want == got; }

bool Armed(const FaultSpec& s, sim::Cycles now) {
  return now >= s.at && now < s.until;
}
}  // namespace

bool Injector::CoreHalted(int core, sim::Cycles now) const {
  const int dom = sim::CurrentDomain();
  for (const SpecState& st : specs_) {
    const FaultSpec& s = st.spec;
    if (s.kind != FaultKind::kCoreHalt || now < s.at) {
      continue;
    }
    if (s.a != -1 && s.a != core) {
      continue;
    }
    if (s.machine != -1 && s.machine != dom) {
      continue;
    }
    st.activations.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool Injector::MachineHalted(int machine, sim::Cycles now) const {
  for (const SpecState& st : specs_) {
    const FaultSpec& s = st.spec;
    if (s.kind == FaultKind::kCoreHalt && s.a == -1 && s.machine == machine &&
        now >= s.at) {
      st.activations.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool Injector::AnyHaltPlanned() const {
  for (const SpecState& st : specs_) {
    if (st.spec.kind == FaultKind::kCoreHalt) {
      return true;
    }
  }
  return false;
}

Injector::SpecState* Injector::Consume(FaultKind kind, sim::Cycles now, int a, int b) {
  const auto dom = static_cast<std::size_t>(sim::CurrentDomain());
  for (SpecState& st : specs_) {
    const FaultSpec& s = st.spec;
    if (s.kind != kind || !Armed(s, now)) {
      continue;
    }
    if (!EndpointMatches(s.a, a) || !EndpointMatches(s.b, b)) {
      continue;
    }
    if (s.machine != -1 && s.machine != static_cast<int>(dom)) {
      continue;
    }
    if (s.count != kUnlimited && st.fired[dom] >= s.count) {
      continue;
    }
    // The probability draw happens per candidate the spec considers, so a
    // lossy-link spec consumes exactly one variate per matching frame —
    // deterministic regardless of what other specs do. Counter and stream
    // are the calling domain's own, so concurrent domains neither race nor
    // perturb each other's sequences.
    if (s.probability < 1.0 && !st.rng[dom].Chance(s.probability)) {
      continue;
    }
    ++st.fired[dom];
    st.activations.fetch_add(1, std::memory_order_relaxed);
    injected_[static_cast<std::size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
    return &st;
  }
  return nullptr;
}

bool Injector::ShouldDropIpi(sim::Cycles now, int from, int to) {
  return Consume(FaultKind::kIpiDrop, now, from, to) != nullptr;
}

sim::Cycles Injector::IpiExtraDelay(sim::Cycles now, int from, int to) {
  SpecState* st = Consume(FaultKind::kIpiDelay, now, from, to);
  return st != nullptr ? st->spec.extra : 0;
}

bool Injector::ShouldDropRxFrame(sim::Cycles now, int queue) {
  return Consume(FaultKind::kNicRxDrop, now, queue, -1) != nullptr;
}

bool Injector::ShouldCorruptRxFrame(sim::Cycles now, int queue) {
  return Consume(FaultKind::kNicRxCorrupt, now, queue, -1) != nullptr;
}

bool Injector::ShouldDropTxFrame(sim::Cycles now, int queue) {
  return Consume(FaultKind::kNicTxDrop, now, queue, -1) != nullptr;
}

bool Injector::ShouldDropWireFrame(sim::Cycles now, int src_machine,
                                   int dst_machine) {
  return Consume(FaultKind::kWireDrop, now, src_machine, dst_machine) != nullptr;
}

sim::Cycles Injector::WireExtraDelay(sim::Cycles now, int src_machine,
                                     int dst_machine) {
  SpecState* st = Consume(FaultKind::kWireDelay, now, src_machine, dst_machine);
  return st != nullptr ? st->spec.extra : 0;
}

sim::Cycles Injector::LinkExtra(sim::Cycles now) const {
  sim::Cycles extra = 0;
  for (const SpecState& st : specs_) {
    if (st.spec.kind == FaultKind::kLinkDelay && Armed(st.spec, now)) {
      st.activations.fetch_add(1, std::memory_order_relaxed);
      extra += st.spec.extra;
    }
  }
  return extra;
}

bool Injector::ShouldEmitAttack(FaultKind kind, sim::Cycles now) {
  return Consume(kind, now, -1, -1) != nullptr;
}

bool Injector::AttackWindowArmed(FaultKind kind, sim::Cycles now) const {
  for (const SpecState& st : specs_) {
    if (st.spec.kind == kind && Armed(st.spec, now)) {
      return true;
    }
  }
  return false;
}

bool Injector::AllSpecsActivated() const {
  for (const SpecState& st : specs_) {
    if (st.activations.load(std::memory_order_relaxed) == 0) {
      return false;
    }
  }
  return true;
}

void Injector::PrintActivationTable(std::FILE* out) const {
  std::fprintf(out, "fault plan coverage (%zu specs):\n", specs_.size());
  std::fprintf(out, "  %3s %-14s %12s %12s %4s %4s %4s %5s %12s\n", "#", "kind",
               "at", "until", "a", "b", "mach", "cap", "activations");
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i].spec;
    char until[24];
    if (s.until == kForever) {
      std::snprintf(until, sizeof until, "%s", "-");
    } else {
      std::snprintf(until, sizeof until, "%llu",
                    static_cast<unsigned long long>(s.until));
    }
    char cap[16];
    if (s.count == kUnlimited) {
      std::snprintf(cap, sizeof cap, "%s", "-");
    } else {
      std::snprintf(cap, sizeof cap, "%d", s.count);
    }
    const std::uint64_t acts = specs_[i].activations.load(std::memory_order_relaxed);
    std::fprintf(out, "  %3zu %-14s %12llu %12s %4d %4d %4d %5s %12llu%s\n", i,
                 FaultKindName(s.kind), static_cast<unsigned long long>(s.at),
                 until, s.a, s.b, s.machine, cap,
                 static_cast<unsigned long long>(acts),
                 acts == 0 ? "  <-- never fired" : "");
  }
}

}  // namespace mk::fault
