// mk::fault — deterministic, schedule-driven fault injection.
//
// The paper's central argument (§2) is that a multikernel *is* a distributed
// system; this module makes the reproduction inherit distributed-systems
// failure modes on demand. A FaultPlan is a declarative schedule of faults —
// fail-stop core halts, IPI drops and delays, NIC frame loss and corruption,
// interconnect latency spikes — and an Injector is the installed instance the
// hardware models consult at their injection points.
//
// Two properties mirror mk::trace:
//
//   * deterministic — every probabilistic fault draws from a per-(spec,
//     domain) sim::Rng stream keyed by sim::DeriveStreamSeed, so the same
//     plan and seeds produce a bit-identical run at any host thread count:
//     a domain's draws depend only on its own injection sequence, never on
//     what other domains consume or on host scheduling (pinned by
//     tests/determinism_test.cc). Under the parallel engine the firing cap
//     and stream apply independently per domain — each domain's world sees
//     the plan as its own; plain single-executor runs are domain 0 and
//     behave exactly as before;
//   * zero-cost when absent — with no Injector installed every injection
//     point is one null-pointer test, schedules no events, and charges no
//     cycles, so the paper benches stay byte-identical (recovery machinery
//     such as 2PC phase timeouts and heartbeats is likewise armed only while
//     an Injector is active, because sim::Event::WaitTimeout dispatches its
//     timer even when signaled first and would otherwise perturb event
//     counts).
//
// Faults are injected by the *models* (hw::IpiFabric, net::Nic,
// hw::CoherenceModel, kernel halt checks), which also emit the
// trace::Category::kFault instants — the sites know the core context; this
// module only answers queries.
#ifndef MK_FAULT_FAULT_H_
#define MK_FAULT_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <vector>

#include "sim/domain.h"
#include "sim/random.h"
#include "sim/types.h"

namespace mk::fault {

inline constexpr sim::Cycles kForever = std::numeric_limits<sim::Cycles>::max();
inline constexpr int kUnlimited = -1;

enum class FaultKind : std::uint8_t {
  kCoreHalt,      // fail-stop: core never runs again after `at`
  kIpiDrop,       // IPI charged at the sender but never delivered
  kIpiDelay,      // IPI wire latency inflated by `extra`
  kNicRxDrop,     // frame lost between wire and RX ring
  kNicRxCorrupt,  // frame bit-flipped between wire and RX ring
  kNicTxDrop,     // frame lost after TX DMA, before the wire
  kLinkDelay,     // cross-package interconnect transfers inflated by `extra`
  kWireDrop,      // cross-machine frame lost on a (src,dst) machine-pair wire
  kWireDelay,     // cross-machine wire latency inflated by `extra`
  kSynFlood,      // adversarial: one forged spoofed-source SYN per firing
  kSlowloris,     // adversarial: one slow-drip partial-request action per firing
  kConnChurn,     // adversarial: one open/close churn connection per firing
  kNumKinds,
};

inline constexpr std::size_t kNumKinds = static_cast<std::size_t>(FaultKind::kNumKinds);

const char* FaultKindName(FaultKind k);

// One scheduled fault. A spec is armed while `at <= now < until`, matches the
// injection site's endpoints (`a`/`b`, -1 = wildcard; for IPIs a = sender
// core, b = destination core; for kCoreHalt a = the core; for wire kinds a =
// source machine, b = destination machine), fires at most `count` times
// (kUnlimited = no cap), and — when probability < 1 — draws from its own
// seeded stream so plans compose without perturbing each other.
//
// `machine` scopes a spec to one engine domain (a "machine" under the
// parallel engine is exactly one domain): -1 matches every domain — the
// pre-rack behaviour, where each domain's world sees the plan as its own —
// while machine >= 0 makes the spec fire only for injection sites running in
// that domain. HaltMachine uses this to halt *all* cores of one machine
// without touching the same core ids on its rack peers.
struct FaultSpec {
  FaultKind kind = FaultKind::kCoreHalt;
  sim::Cycles at = 0;
  sim::Cycles until = kForever;
  int a = -1;
  int b = -1;
  int machine = -1;
  int count = kUnlimited;
  sim::Cycles extra = 0;
  double probability = 1.0;
  std::uint64_t seed = 0;
};

// Declarative builder for a fault schedule. Plans are value types; the
// Injector copies the specs at construction.
class FaultPlan {
 public:
  // Fail-stop halt: `core` executes nothing at or after cycle `at`.
  FaultPlan& HaltCore(int core, sim::Cycles at);
  // Fail-stop halt of a whole machine: every core of engine domain `machine`
  // executes nothing at or after `at`; the other domains are untouched.
  FaultPlan& HaltMachine(int machine, sim::Cycles at);
  // Drop the next `count` IPIs from `from` to `to` (-1 = any) sent at/after `at`.
  FaultPlan& DropIpi(int from, int to, sim::Cycles at, int count = 1);
  // Inflate matching IPIs' wire latency by `extra` while armed.
  FaultPlan& DelayIpi(int from, int to, sim::Cycles extra, sim::Cycles at,
                      sim::Cycles until = kForever);
  // Drop the next `count` RX frames arriving at/after `at`.
  FaultPlan& DropRxFrames(sim::Cycles at, int count = 1);
  // Drop the next `count` RX frames steered to a specific NIC queue (`a` is
  // the queue index for NIC kinds; multi-queue devices pass it at the site).
  FaultPlan& DropRxFramesOnQueue(int queue, sim::Cycles at, int count = 1);
  // Drop each RX frame with probability `rate` while armed (seeded stream).
  FaultPlan& RandomRxLoss(double rate, std::uint64_t seed, sim::Cycles at = 0,
                          sim::Cycles until = kForever);
  // Corrupt the next `count` RX frames (payload bit flip; checksums catch it).
  FaultPlan& CorruptRxFrames(sim::Cycles at, int count = 1);
  // Drop the next `count` TX frames after DMA-out.
  FaultPlan& DropTxFrames(sim::Cycles at, int count = 1);
  // Drop each TX frame with probability `rate` while armed (seeded stream).
  FaultPlan& RandomTxLoss(double rate, std::uint64_t seed, sim::Cycles at = 0,
                          sim::Cycles until = kForever);
  // Inflate cross-package interconnect transfers by `extra` while armed.
  FaultPlan& LinkSpike(sim::Cycles extra, sim::Cycles at, sim::Cycles until);
  // Drop the next `count` frames crossing the (src,dst) machine-pair wire
  // (net::CrossWire consults this in the source machine's domain; -1 = any).
  FaultPlan& DropWireFrames(int src_machine, int dst_machine, sim::Cycles at,
                            int count = 1);
  // Drop each crossing frame with probability `rate` while armed (seeded
  // stream, consumed in the source machine's domain).
  FaultPlan& RandomWireLoss(int src_machine, int dst_machine, double rate,
                            std::uint64_t seed, sim::Cycles at = 0,
                            sim::Cycles until = kForever);
  // Latency spike on the (src,dst) machine-pair wire: matching crossings are
  // delivered `extra` cycles late while armed. Delay only ever widens the
  // wire's conservative bound, so the engine's lookahead contract holds.
  FaultPlan& WireDelay(int src_machine, int dst_machine, sim::Cycles extra,
                       sim::Cycles at, sim::Cycles until = kForever);
  // --- Adversarial traffic windows (ROADMAP item 5) ---
  //
  // Consumed by attack-load generator tasks in the serving benches (not by
  // the hardware models): a generator paces candidate attack actions and
  // performs one — a forged spoofed-source SYN, one slow-drip header
  // fragment, one open/close churn connection — per successful consumption,
  // so a plan's per-spec activation table counts exactly the attack units
  // that actually hit the server. `probability` thins the generator's pacing
  // (seeded stream); `count` caps total units; the [at, until) window bounds
  // the attack so recovery-to-baseline can be gated after it ends.
  FaultPlan& SynFlood(sim::Cycles at, sim::Cycles until, int count = kUnlimited,
                      double probability = 1.0, std::uint64_t seed = 0);
  FaultPlan& Slowloris(sim::Cycles at, sim::Cycles until, int count = kUnlimited,
                       double probability = 1.0, std::uint64_t seed = 0);
  FaultPlan& ConnChurn(sim::Cycles at, sim::Cycles until, int count = kUnlimited,
                       double probability = 1.0, std::uint64_t seed = 0);

  FaultPlan& Add(const FaultSpec& spec);
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

// The installed fault schedule. Process-wide singleton via Install/Uninstall
// (the simulator is single-threaded), mirroring trace::Tracer. Queries are
// consulted by the hardware models; each query visits the spec list once —
// plans are a handful of entries, so this is not a hot path, and with no
// Injector installed the sites pay only `active() == nullptr`.
class Injector {
 public:
  explicit Injector(const FaultPlan& plan);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;
  ~Injector();

  void Install();
  void Uninstall();
  static Injector* active();

  // True if `core` has fail-stop halted by `now`. Pure predicate (halts are
  // permanent, never counted), so recovery code can poll it freely.
  bool CoreHalted(int core, sim::Cycles now) const;
  // True if every core of engine domain `machine` is fail-stop halted by
  // `now` (i.e. a HaltMachine spec for that domain is armed). Pure predicate,
  // like CoreHalted; callable from any domain's thread.
  bool MachineHalted(int machine, sim::Cycles now) const;
  // True if any core is scheduled to halt at some point in the plan.
  bool AnyHaltPlanned() const;

  // Consuming queries: called once per candidate injection, they advance
  // per-spec counters/streams and record stats.
  bool ShouldDropIpi(sim::Cycles now, int from, int to);
  sim::Cycles IpiExtraDelay(sim::Cycles now, int from, int to);
  // NIC queries take the RX/TX queue the frame was steered to (matched
  // against spec `a`; the default -1 site only matches wildcard specs, so
  // stacks wired back-to-back without a SimNic keep their old behaviour).
  bool ShouldDropRxFrame(sim::Cycles now, int queue = -1);
  bool ShouldCorruptRxFrame(sim::Cycles now, int queue = -1);
  bool ShouldDropTxFrame(sim::Cycles now, int queue = -1);
  // Cross-machine wire queries, consulted by net::CrossWire in the source
  // machine's domain. Endpoints are machine (= engine domain) ids.
  bool ShouldDropWireFrame(sim::Cycles now, int src_machine, int dst_machine);
  sim::Cycles WireExtraDelay(sim::Cycles now, int src_machine, int dst_machine);
  // Non-consuming (interval-armed, unlimited): extra cross-package latency.
  sim::Cycles LinkExtra(sim::Cycles now) const;
  // Adversarial-traffic query: true if an armed attack spec of `kind` wants
  // one more attack unit emitted now (consuming; see the FaultPlan builders).
  bool ShouldEmitAttack(FaultKind kind, sim::Cycles now);
  // True while any spec of `kind` is armed (non-consuming window test — the
  // benches use it to label attack phases without spending a firing).
  bool AttackWindowArmed(FaultKind kind, sim::Cycles now) const;

  // Total injections performed per kind, summed across domains
  // (kCoreHalt/kLinkDelay are interval predicates and stay zero here).
  std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  }

  // --- Per-spec coverage accounting ---
  //
  // Every spec counts its activations: consuming kinds count firings, the
  // interval predicates (kCoreHalt, kLinkDelay) count the times they answered
  // "yes". A spec with zero activations is a silent no-op — the plan named a
  // core, queue, or window the run never touched — which coverage-checking
  // benches treat as an error (see fig8_twopc --kill-core).
  std::size_t num_specs() const { return specs_.size(); }
  const FaultSpec& spec(std::size_t i) const { return specs_[i].spec; }
  std::uint64_t activations(std::size_t i) const {
    return specs_[i].activations.load(std::memory_order_relaxed);
  }
  bool AllSpecsActivated() const;
  // Prints one row per spec: kind, window, endpoints, cap, activations.
  void PrintActivationTable(std::FILE* out = stdout) const;

 private:
  struct SpecState {
    FaultSpec spec;
    // Firing count and probability stream are per engine domain: each
    // domain's injection sites only ever touch index sim::CurrentDomain(),
    // so there is no sharing between host threads, and a domain's draw
    // sequence depends only on its own consultations. Stream d is seeded by
    // DeriveStreamSeed(spec.seed, d) — domain 0 keeps spec.seed exactly, so
    // single-executor runs are untouched.
    std::array<int, sim::kMaxDomains> fired{};
    std::array<sim::Rng, sim::kMaxDomains> rng;
    // Mutable + relaxed atomic: the const interval predicates (CoreHalted,
    // LinkExtra) record coverage from any domain's thread without giving up
    // their pure-query signatures.
    mutable std::atomic<std::uint64_t> activations{0};
    explicit SpecState(const FaultSpec& s) : spec(s) {
      for (int d = 0; d < sim::kMaxDomains; ++d) {
        rng[static_cast<std::size_t>(d)].Seed(sim::DeriveStreamSeed(s.seed, d));
      }
    }
  };

  // Finds the first armed, matching, non-exhausted spec of `kind` and — if
  // its probability draw passes — consumes one firing from it (in the
  // calling domain's counter/stream).
  SpecState* Consume(FaultKind kind, sim::Cycles now, int a, int b);

  std::deque<SpecState> specs_;  // deque: SpecState is not movable (atomic member)
  std::array<std::atomic<std::uint64_t>, kNumKinds> injected_{};
  bool installed_ = false;
};

namespace internal {
// Defined in fault.cc; read through Injector::active().
extern Injector* g_active;
}  // namespace internal

inline Injector* Injector::active() { return internal::g_active; }

}  // namespace mk::fault

#endif  // MK_FAULT_FAULT_H_
