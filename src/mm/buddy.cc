#include "mm/buddy.h"

#include <stdexcept>

namespace mk::mm {
namespace {

bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

BuddyAllocator::BuddyAllocator(std::uint64_t base, std::uint64_t size, std::uint64_t min_block)
    : base_(base), size_(size), min_block_(min_block), free_bytes_(size) {
  if (!IsPow2(min_block) || !IsPow2(size) || size < min_block || base % min_block != 0) {
    throw std::invalid_argument("BuddyAllocator: base/size/min_block must be power-of-two"
                                " aligned");
  }
  max_order_ = 0;
  while (BlockSize(max_order_) < size) {
    ++max_order_;
  }
  free_lists_.resize(static_cast<std::size_t>(max_order_) + 1);
  free_lists_[static_cast<std::size_t>(max_order_)].insert(0);
}

int BuddyAllocator::OrderFor(std::uint64_t bytes) const {
  int order = 0;
  while (BlockSize(order) < bytes) {
    ++order;
  }
  return order;
}

std::optional<std::uint64_t> BuddyAllocator::Alloc(std::uint64_t bytes) {
  if (bytes == 0 || bytes > size_) {
    return std::nullopt;
  }
  int want = OrderFor(bytes);
  int order = want;
  while (order <= max_order_ && free_lists_[static_cast<std::size_t>(order)].empty()) {
    ++order;
  }
  if (order > max_order_) {
    return std::nullopt;
  }
  // Split down to the wanted order.
  auto& from = free_lists_[static_cast<std::size_t>(order)];
  std::uint64_t off = *from.begin();
  from.erase(from.begin());
  while (order > want) {
    --order;
    // Keep the low half; the high half becomes a free buddy.
    free_lists_[static_cast<std::size_t>(order)].insert(off + BlockSize(order));
  }
  free_bytes_ -= BlockSize(want);
  return base_ + off;
}

void BuddyAllocator::Free(std::uint64_t addr, std::uint64_t bytes) {
  if (addr < base_ || addr >= base_ + size_) {
    throw std::invalid_argument("BuddyAllocator::Free: address out of range");
  }
  int order = OrderFor(bytes);
  std::uint64_t off = addr - base_;
  if (off % BlockSize(order) != 0) {
    throw std::invalid_argument("BuddyAllocator::Free: misaligned block");
  }
  free_bytes_ += BlockSize(order);
  // Merge with the buddy while possible.
  while (order < max_order_) {
    std::uint64_t buddy = off ^ BlockSize(order);
    auto& list = free_lists_[static_cast<std::size_t>(order)];
    auto it = list.find(buddy);
    if (it == list.end()) {
      break;
    }
    list.erase(it);
    off = off < buddy ? off : buddy;
    ++order;
  }
  free_lists_[static_cast<std::size_t>(order)].insert(off);
}

std::uint64_t BuddyAllocator::LargestFree() const {
  for (int order = max_order_; order >= 0; --order) {
    if (!free_lists_[static_cast<std::size_t>(order)].empty()) {
      return BlockSize(order);
    }
  }
  return 0;
}

}  // namespace mk::mm
