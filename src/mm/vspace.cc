#include "mm/vspace.h"

namespace mk::mm {
namespace {

constexpr std::uint64_t kPage = hw::kPageSize;

int IndexAt(std::uint64_t vaddr, int level) {
  // level 3 = top (PML4-like), level 0 = leaf table.
  return static_cast<int>((vaddr >> (12 + 9 * level)) & 0x1ff);
}

}  // namespace

const char* MapErrName(MapErr e) {
  switch (e) {
    case MapErr::kOk: return "ok";
    case MapErr::kBadCap: return "bad-cap";
    case MapErr::kNoRights: return "no-rights";
    case MapErr::kOverlap: return "overlap";
    case MapErr::kNotMapped: return "not-mapped";
    case MapErr::kBadAlign: return "bad-align";
  }
  return "?";
}

VSpace::VSpace(hw::Machine& machine, caps::CapDb& caps, std::vector<int> cores)
    : machine_(machine), caps_(caps), cores_(std::move(cores)) {}

PageTableNode::Entry* VSpace::WalkTo(std::uint64_t vaddr, bool create) {
  PageTableNode* node = &root_;
  for (int level = 3; level >= 1; --level) {
    auto& entry = node->entries[static_cast<std::size_t>(IndexAt(vaddr, level))];
    if (entry.child == nullptr) {
      if (!create) {
        return nullptr;
      }
      entry.child = std::make_unique<PageTableNode>();
      entry.present = true;
      ++table_nodes_;
    }
    node = entry.child.get();
  }
  return &node->entries[static_cast<std::size_t>(IndexAt(vaddr, 0))];
}

MapErr VSpace::Map(caps::CapId frame_cap, std::uint64_t vaddr, Perms perms) {
  const caps::Capability* frame = caps_.Get(frame_cap);
  if (frame == nullptr || frame->type != caps::CapType::kFrame) {
    return MapErr::kBadCap;
  }
  if (perms.write && !frame->rights.write) {
    return MapErr::kNoRights;
  }
  if (vaddr % kPage != 0 || frame->bytes % kPage != 0 || frame->bytes == 0) {
    return MapErr::kBadAlign;
  }
  // First pass: refuse overlaps before touching anything.
  for (std::uint64_t off = 0; off < frame->bytes; off += kPage) {
    PageTableNode::Entry* e = WalkTo(vaddr + off, /*create=*/false);
    if (e != nullptr && e->present) {
      return MapErr::kOverlap;
    }
  }
  for (std::uint64_t off = 0; off < frame->bytes; off += kPage) {
    PageTableNode::Entry* e = WalkTo(vaddr + off, /*create=*/true);
    e->present = true;
    e->writable = perms.write;
    e->frame = frame->base + off;
  }
  return MapErr::kOk;
}

Task<MapErr> VSpace::UnmapOrProtect(int initiator_core, std::uint64_t vaddr,
                                    std::uint64_t bytes, bool protect_only) {
  if (vaddr % kPage != 0 || bytes % kPage != 0 || bytes == 0) {
    co_return MapErr::kBadAlign;
  }
  std::vector<std::uint64_t> pages;
  for (std::uint64_t off = 0; off < bytes; off += kPage) {
    PageTableNode::Entry* e = WalkTo(vaddr + off, /*create=*/false);
    if (e == nullptr || !e->present) {
      co_return MapErr::kNotMapped;
    }
    pages.push_back(vaddr + off);
  }
  // Update the tables: one charged store per leaf entry.
  for (std::uint64_t page : pages) {
    PageTableNode::Entry* e = WalkTo(page, /*create=*/false);
    if (protect_only) {
      e->writable = false;
    } else {
      e->present = false;
      e->frame = 0;
    }
    co_await machine_.Compute(initiator_core, machine_.cost().l1_hit * 4);
  }
  // No action that requires the operation to have completed may proceed until
  // every sharing core's TLB has dropped the stale translations.
  if (shootdown_) {
    co_await shootdown_(initiator_core, pages);
  } else {
    for (int core : cores_) {
      for (std::uint64_t page : pages) {
        machine_.tlb(core).InvalidateNoCost(page);
      }
    }
  }
  co_return MapErr::kOk;
}

// Forward the inner task directly: no wrapper coroutine frame per call.
Task<MapErr> VSpace::Unmap(int initiator_core, std::uint64_t vaddr, std::uint64_t bytes) {
  return UnmapOrProtect(initiator_core, vaddr, bytes, /*protect_only=*/false);
}

Task<MapErr> VSpace::Protect(int initiator_core, std::uint64_t vaddr, std::uint64_t bytes) {
  return UnmapOrProtect(initiator_core, vaddr, bytes, /*protect_only=*/true);
}

Task<std::uint64_t> VSpace::Translate(int core, std::uint64_t vaddr) {
  hw::TlbEntry cached;
  if (machine_.tlb(core).Lookup(vaddr, &cached)) {
    // TLB hit: completes synchronously. Hit latency is part of the
    // instruction's own pipeline, not a separately simulated event — the
    // Delay(1) that used to sit here pushed one event through the queue per
    // hit, flooding the executor on translation-heavy paths for no
    // modelling benefit.
    co_return cached.paddr + (vaddr % kPage);
  }
  ++machine_.counters().core(core).tlb_misses;
  // 4-level walk: four dependent memory accesses.
  co_await machine_.Compute(core, 4 * machine_.cost().dram_base / 8);
  PageTableNode::Entry* e = WalkTo(vaddr, /*create=*/false);
  if (e == nullptr || !e->present) {
    co_return ~std::uint64_t{0};
  }
  machine_.tlb(core).Insert(vaddr, hw::TlbEntry{e->frame, e->writable});
  co_return e->frame + (vaddr % kPage);
}

bool VSpace::IsMapped(std::uint64_t vaddr) const {
  auto* self = const_cast<VSpace*>(this);
  PageTableNode::Entry* e = self->WalkTo(vaddr, /*create=*/false);
  return e != nullptr && e->present;
}

bool VSpace::IsWritable(std::uint64_t vaddr) const {
  auto* self = const_cast<VSpace*>(this);
  PageTableNode::Entry* e = self->WalkTo(vaddr, /*create=*/false);
  return e != nullptr && e->present && e->writable;
}

}  // namespace mk::mm
