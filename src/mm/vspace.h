// Virtual address spaces: x86-64-style 4-level page tables manipulated by
// user-level code through capabilities (section 4.7).
//
// To map memory, a user task retypes RAM capabilities into page-table
// capabilities (storage for table nodes) and frame capabilities (the memory
// to map); the CPU driver's sole role is checking those capabilities. A
// VSpace may be shared by dispatchers on several cores; each core's TLB
// caches translations, and any mapping removal or rights reduction must run a
// TLB shootdown before it is complete — the monitors drive that (section 5.1)
// through the OnShootdown hook.
#ifndef MK_MM_VSPACE_H_
#define MK_MM_VSPACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "caps/capability.h"
#include "hw/machine.h"
#include "hw/tlb.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::mm {

using sim::Cycles;
using sim::Task;

enum class MapErr {
  kOk = 0,
  kBadCap,       // capability missing or wrong type
  kNoRights,     // frame rights do not allow the mapping
  kOverlap,      // virtual range already mapped
  kNotMapped,    // unmap/protect of an unmapped page
  kBadAlign,     // unaligned address or size
};

const char* MapErrName(MapErr e);

struct Perms {
  bool write = true;
};

// One level of the 4-level radix tree; 9 bits per level, 4 KiB pages.
struct PageTableNode {
  struct Entry {
    bool present = false;
    bool writable = false;
    std::uint64_t frame = 0;                  // leaf: physical page base
    std::unique_ptr<PageTableNode> child;     // interior
  };
  std::array<Entry, 512> entries;
};

class VSpace {
 public:
  // `cores` is the set of cores whose dispatchers share this address space
  // (their TLBs may cache its translations).
  VSpace(hw::Machine& machine, caps::CapDb& caps, std::vector<int> cores);

  // Maps `frame_cap` (a Frame capability) at [vaddr, vaddr+frame.bytes).
  // Page-table nodes are allocated transparently from `pt_cap` storage (a
  // PageTable capability); its size bounds how many nodes may be created.
  MapErr Map(caps::CapId frame_cap, std::uint64_t vaddr, Perms perms);

  // Removes the mapping at [vaddr, vaddr+bytes). Collects the affected cores
  // (those whose TLB may cache the range) and invokes the shootdown hook
  // before returning. Walk/update costs are charged to `initiator_core`.
  Task<MapErr> Unmap(int initiator_core, std::uint64_t vaddr, std::uint64_t bytes);

  // Reduces the mapping to read-only (the mprotect of Figure 7); requires a
  // shootdown just like unmap.
  Task<MapErr> Protect(int initiator_core, std::uint64_t vaddr, std::uint64_t bytes);

  // Software page-table walk: translates and fills the core's TLB, charging
  // the walk cost. Returns the physical address or ~0 on fault. A TLB hit
  // completes synchronously — zero simulated cycles, zero scheduled events.
  Task<std::uint64_t> Translate(int core, std::uint64_t vaddr);

  // Zero-cost lookup for assertions.
  bool IsMapped(std::uint64_t vaddr) const;
  bool IsWritable(std::uint64_t vaddr) const;

  // Shootdown driver installed by the monitor system: given the initiator and
  // the page addresses, it must guarantee no stale TLB entries remain on any
  // sharing core before completing.
  using ShootdownFn =
      std::function<Task<>(int initiator, std::vector<std::uint64_t> pages)>;
  void SetShootdownHook(ShootdownFn fn) { shootdown_ = std::move(fn); }

  const std::vector<int>& cores() const { return cores_; }

  // Number of page-table nodes allocated so far.
  std::size_t table_nodes() const { return table_nodes_; }

 private:
  PageTableNode::Entry* WalkTo(std::uint64_t vaddr, bool create);
  Task<MapErr> UnmapOrProtect(int initiator_core, std::uint64_t vaddr, std::uint64_t bytes,
                              bool protect_only);

  hw::Machine& machine_;
  caps::CapDb& caps_;
  std::vector<int> cores_;
  PageTableNode root_;
  std::size_t table_nodes_ = 1;
  ShootdownFn shootdown_;
};

}  // namespace mk::mm

#endif  // MK_MM_VSPACE_H_
