// Buddy allocator for physical memory regions.
//
// Backs the per-node memory servers: RAM capabilities handed to user tasks
// are carved out of a node's buddy-managed region, and returned regions merge
// back with their buddies.
#ifndef MK_MM_BUDDY_H_
#define MK_MM_BUDDY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace mk::mm {

class BuddyAllocator {
 public:
  // Manages [base, base + size). `size` must be a power-of-two multiple of
  // min_block; base must be min_block-aligned.
  BuddyAllocator(std::uint64_t base, std::uint64_t size, std::uint64_t min_block = 4096);

  // Allocates a block of at least `bytes` (rounded up to a power of two).
  std::optional<std::uint64_t> Alloc(std::uint64_t bytes);

  // Frees a block previously returned by Alloc with the same size request
  // class. Freeing merges buddies eagerly.
  void Free(std::uint64_t addr, std::uint64_t bytes);

  std::uint64_t free_bytes() const { return free_bytes_; }
  std::uint64_t total_bytes() const { return size_; }
  std::uint64_t min_block() const { return min_block_; }

  // Largest currently allocatable block.
  std::uint64_t LargestFree() const;

 private:
  int OrderFor(std::uint64_t bytes) const;  // block order (0 == min_block)
  std::uint64_t BlockSize(int order) const { return min_block_ << order; }

  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t min_block_;
  std::uint64_t free_bytes_;
  int max_order_;
  // Free lists per order, as sorted sets of block offsets (deterministic).
  std::vector<std::set<std::uint64_t>> free_lists_;
};

}  // namespace mk::mm

#endif  // MK_MM_BUDDY_H_
