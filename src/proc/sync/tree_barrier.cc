#include "proc/sync/tree_barrier.h"

#include <cstdio>
#include <cstdlib>

namespace mk::proc::sync {

namespace {

int CeilLog2(int n) {
  int r = 0;
  while ((1 << r) < n) {
    ++r;
  }
  return r;
}

}  // namespace

TreeBarrier::TreeBarrier(hw::Machine& machine, int parties, std::vector<int> cores,
                         int force_home)
    : machine_(machine),
      parties_(parties),
      rounds_(CeilLog2(parties)),
      cores_(std::move(cores)),
      party_gen_(static_cast<std::size_t>(parties), 0) {
  if (cores_.empty()) {
    for (int i = 0; i < parties_; ++i) {
      cores_.push_back(i);
    }
  }
  // One MatchNode per (winner, round) slot. Only slots whose opponent exists
  // get lines; the flag a core spins on is homed on that core's package.
  auto home_of = [&](int party) {
    return force_home >= 0
               ? force_home
               : machine_.topo().PackageOf(cores_[static_cast<std::size_t>(party)]);
  };
  for (int i = 0; i < parties_; ++i) {
    for (int r = 0; r < rounds_; ++r) {
      nodes_.emplace_back(machine_.exec());
      const int span = 1 << r;
      const bool winner_slot = i % (span << 1) == 0;
      const int loser = i + span;
      if (winner_slot && loser < parties_) {
        MatchNode& n = nodes_.back();
        n.arrive_line = machine_.mem().AllocLines(home_of(i), 1);
        n.wake_line = machine_.mem().AllocLines(home_of(loser), 1);
      }
    }
  }
}

int TreeBarrier::PartyOfCore(int core) const {
  for (int i = 0; i < parties_; ++i) {
    if (cores_[static_cast<std::size_t>(i)] == core) {
      return i;
    }
  }
  std::fprintf(stderr, "TreeBarrier: core %d is not in the team\n", core);
  std::abort();
}

sim::Task<> TreeBarrier::Arrive(int party) {
  const int core = cores_[static_cast<std::size_t>(party)];
  const std::uint64_t target = ++party_gen_[static_cast<std::size_t>(party)];
  ++in_barrier_;

  // Ascend: play each round until losing (or, for party 0, winning them all).
  int loss_round = rounds_;
  for (int r = 0; r < rounds_; ++r) {
    const int span = 1 << r;
    if (party % (span << 1) == 0) {
      const int loser = party + span;
      if (loser >= parties_) {
        continue;  // bye: no opponent this round, advance for free
      }
      MatchNode& n = NodeOf(party, r);
      while (n.arrived_gen < target) {
        co_await n.arrived.Wait();
      }
      // The loser's flag write invalidated our copy; the local spin loop's
      // next read misses and refetches it from the loser's cache.
      co_await machine_.mem().Read(core, n.arrive_line);
    } else {
      // Loser: report to the winner and stop ascending.
      const int winner = party - span;
      MatchNode& n = NodeOf(winner, r);
      co_await machine_.mem().Write(core, n.arrive_line);
      n.arrived_gen = target;  // ordered after the write: visibility == completion
      n.arrived.Signal();
      loss_round = r;
      break;
    }
  }

  if (loss_round < rounds_) {
    // Wait for the wakeup wave to reach our losing match.
    MatchNode& n = NodeOf(party - (1 << loss_round), loss_round);
    while (n.woken_gen < target) {
      co_await n.woken.Wait();
    }
    co_await machine_.mem().Read(core, n.wake_line);
  } else if (party == 0) {
    ++generation_;  // champion: everyone has arrived
  }

  // Descend: wake the losers of every match we won below our loss round.
  for (int r = loss_round - 1; r >= 0; --r) {
    const int span = 1 << r;
    const int loser = party + span;
    if (loser >= parties_) {
      continue;
    }
    MatchNode& n = NodeOf(party, r);
    co_await machine_.mem().Write(core, n.wake_line);
    n.woken_gen = target;
    n.woken.Signal();
  }

  --in_barrier_;
}

}  // namespace mk::proc::sync
