// Ticket lock: FIFO like MCS, but all waiters spin on one central
// now-serving line — the measured baseline of the sync_scaling bench.
//
// Acquire is a fetch-and-add on the next-ticket line; each release
// increments the now-serving line, invalidating every spinner's copy, and
// every spinner refetches it to compare against its ticket. Per handoff
// that is O(waiters) cache-line transfers, all serialized through the same
// hot line's service queue — the coherence storm the MCS lock's local
// spinning eliminates (the FIFO ordering is identical, which is what makes
// the pair a controlled comparison).
#ifndef MK_PROC_SYNC_TICKET_LOCK_H_
#define MK_PROC_SYNC_TICKET_LOCK_H_

#include <cstdint>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::proc::sync {

class TicketLock {
 public:
  explicit TicketLock(hw::Machine& machine, int home_node = 0);

  sim::Task<> Acquire(int core);
  sim::Task<> Release(int core);

  bool locked() const { return holder_ >= 0; }
  int holder() const { return holder_; }
  int waiters() const { return waiters_; }
  std::uint64_t tickets_issued() const { return next_ticket_; }

 private:
  hw::Machine& machine_;
  sim::Addr next_line_;     // fetch-and-add target
  sim::Addr serving_line_;  // the central spin line
  std::uint64_t next_ticket_ = 0;
  std::uint64_t now_serving_ = 0;
  int holder_ = -1;
  int waiters_ = 0;
  sim::Event serving_changed_;
};

}  // namespace mk::proc::sync

#endif  // MK_PROC_SYNC_TICKET_LOCK_H_
