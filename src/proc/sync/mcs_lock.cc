#include "proc/sync/mcs_lock.h"

namespace mk::proc::sync {

McsLock::McsLock(hw::Machine& machine) : machine_(machine) {
  tail_line_ = machine_.mem().AllocLines(0, 1);
  for (int c = 0; c < machine_.num_cores(); ++c) {
    nodes_.emplace_back(machine_.exec());
    nodes_.back().line =
        machine_.mem().AllocLines(machine_.topo().PackageOf(c), 1);
  }
}

sim::Task<> McsLock::Acquire(int core) {
  Node& n = nodes_[static_cast<std::size_t>(core)];
  n.next = -1;
  n.ready = false;
  // Initialize the qnode. The line is homed here but the previous releaser's
  // handoff write may have pulled it away; this write reclaims ownership.
  co_await machine_.mem().Write(core, n.line);
  // swap(tail, self): the queue position is taken when the RMW on the tail
  // line completes — the executor serializes contenders through the line's
  // FIFO resource, so host-state order equals grant order.
  const int pred = tail_;
  tail_ = core;
  co_await machine_.mem().Write(core, tail_line_);
  if (pred < 0) {
    holder_ = core;
    co_return;
  }
  // Link into the predecessor's node (one line transfer into its cache),
  // then spin locally until its release hands the lock over.
  Node& p = nodes_[static_cast<std::size_t>(pred)];
  co_await machine_.mem().Write(core, p.line);
  p.next = core;  // ordered after the write: visibility == completion
  p.linked.Signal();
  while (!n.ready) {
    co_await n.granted.Wait();
  }
  // The handoff write invalidated our copy of the qnode line; the local spin
  // loop's next read misses and fetches it from the releaser's cache.
  co_await machine_.mem().Read(core, n.line);
  holder_ = core;
}

sim::Task<> McsLock::Release(int core) {
  Node& n = nodes_[static_cast<std::size_t>(core)];
  // Check for a successor (a local read unless a successor's link write just
  // took the line).
  co_await machine_.mem().Read(core, n.line);
  if (n.next < 0 && tail_ == core) {
    // No successor: swing the tail back to empty (the release-side RMW on
    // the shared line).
    tail_ = -1;
    holder_ = -1;
    co_await machine_.mem().Write(core, tail_line_);
    co_return;
  }
  // A successor swapped in but has not linked yet: wait for the link.
  while (n.next < 0) {
    co_await n.linked.Wait();
  }
  const int succ = n.next;
  Node& s = nodes_[static_cast<std::size_t>(succ)];
  holder_ = -1;
  // Hand off: one write moving exactly the successor's spin line.
  co_await machine_.mem().Write(core, s.line);
  s.ready = true;
  s.granted.Signal();
  ++handoffs_;
}

}  // namespace mk::proc::sync
