#include "proc/sync/ticket_lock.h"

namespace mk::proc::sync {

TicketLock::TicketLock(hw::Machine& machine, int home_node)
    : machine_(machine), serving_changed_(machine.exec()) {
  next_line_ = machine_.mem().AllocLines(home_node, 1);
  serving_line_ = machine_.mem().AllocLines(home_node, 1);
}

sim::Task<> TicketLock::Acquire(int core) {
  // fetch_add on the ticket line: the ticket is taken when the RMW completes
  // (contenders serialize through the line's FIFO resource).
  co_await machine_.mem().Write(core, next_line_);
  const std::uint64_t my = next_ticket_++;
  // First comparison against now-serving.
  co_await machine_.mem().Read(core, serving_line_);
  while (now_serving_ != my) {
    ++waiters_;
    co_await serving_changed_.Wait();
    --waiters_;
    // Every release invalidates every spinner's copy of the serving line;
    // each of them refetches to compare — the O(waiters) storm per handoff.
    co_await machine_.mem().Read(core, serving_line_);
  }
  holder_ = core;
}

sim::Task<> TicketLock::Release(int core) {
  ++now_serving_;
  holder_ = -1;
  co_await machine_.mem().Write(core, serving_line_);
  serving_changed_.Signal();
}

}  // namespace mk::proc::sync
