// Tournament / combining-tree barrier (scalable-synchronization literature,
// Mellor-Crummey & Scott style), the log-depth replacement for the
// centralized sense-reversing proc::Barrier.
//
// Structure: parties are leaves of a binary tournament. At round r, party i
// is a *winner* if i % 2^(r+1) == 0; its opponent (the *loser*) is
// j = i + 2^r. The loser reports its arrival by writing a flag line owned by
// the winner and then blocks; the winner spins on that flag — a line homed on
// the winner's own NUMA node, so the spin is local and the only coherence
// traffic per arrival edge is the loser's ownership grab plus the winner's
// refetch: O(1) line transfers between a *fixed pair* of cores, instead of
// every arriving core hammering one central counter line. Wakeup descends a
// mirror tree of per-loser flag lines (each homed on the loser's node).
// Parties with no opponent at a round (non-power-of-two sizes) advance by a
// bye, touching nothing.
//
// The critical path is ceil(log2(P)) arrival hops plus the same number of
// wakeup hops; the centralized barrier's is P serialized read-modify-writes
// of one line plus a P-way invalidation storm on the release line
// (bench/sync_scaling.cc measures exactly this difference).
#ifndef MK_PROC_SYNC_TREE_BARRIER_H_
#define MK_PROC_SYNC_TREE_BARRIER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::proc::sync {

class TreeBarrier {
 public:
  // `cores[i]` is the core party i arrives on; every flag line a party spins
  // on is homed on that core's package (the NUMA homing rule). An empty
  // vector means party i runs on core i. `force_home` >= 0 overrides the
  // homing rule and places every flag line on that node instead — the
  // ablation bench/sync_scaling.cc uses to price the rule.
  TreeBarrier(hw::Machine& machine, int parties, std::vector<int> cores = {},
              int force_home = -1);

  // Blocks party `party` until all parties of the current episode arrived.
  // Reusable across episodes (generation counters, no reset hazard).
  sim::Task<> Arrive(int party);

  // Maps a core id back to its party index, for callers (the flavored
  // proc::Barrier facade) that identify themselves by core. Aborts if the
  // core is not part of the team.
  int PartyOfCore(int core) const;

  int parties() const { return parties_; }
  int rounds() const { return rounds_; }
  std::uint64_t generation() const { return generation_; }
  // True when no party is inside Arrive — the stress-test invariant that no
  // waiter was lost (a stuck waiter keeps this false forever).
  bool idle() const { return in_barrier_ == 0; }

 private:
  // Per (winner, round) match state. The arrive flag lives on the winner's
  // node (the winner spins on it); the wake flag lives on the loser's node.
  struct MatchNode {
    MatchNode(sim::Executor& exec) : arrived(exec), woken(exec) {}
    sim::Addr arrive_line = 0;
    sim::Addr wake_line = 0;
    std::uint64_t arrived_gen = 0;
    std::uint64_t woken_gen = 0;
    sim::Event arrived;
    sim::Event woken;
  };

  MatchNode& NodeOf(int winner, int round) {
    return nodes_[static_cast<std::size_t>(winner) * static_cast<std::size_t>(rounds_) +
                  static_cast<std::size_t>(round)];
  }

  hw::Machine& machine_;
  int parties_;
  int rounds_;
  std::vector<int> cores_;             // party -> core
  std::deque<MatchNode> nodes_;        // [winner * rounds_ + round]; deque: not movable
  std::vector<std::uint64_t> party_gen_;  // episodes entered, per party
  std::uint64_t generation_ = 0;       // episodes completed
  int in_barrier_ = 0;
};

}  // namespace mk::proc::sync

#endif  // MK_PROC_SYNC_TREE_BARRIER_H_
