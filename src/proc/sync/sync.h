// src/proc/sync — the scalable synchronization library (ROADMAP item 4).
//
// Three primitives over the simulated coherent memory, chosen so the
// coherence model exposes exactly the scaling differences the
// scalable-synchronization literature is about:
//
//   McsLock     — queue lock, local spinning, O(1) line transfers per
//                 handoff between a fixed pair of cores (mcs_lock.h);
//   TicketLock  — FIFO like MCS but with a central spin line: O(waiters)
//                 transfers per handoff, the measured baseline
//                 (ticket_lock.h);
//   TreeBarrier — tournament/combining-tree barrier, log-depth critical
//                 path, every flag line homed on the NUMA node of the core
//                 that spins on it (tree_barrier.h).
//
// proc::Mutex and proc::Barrier (proc/threads.h) select these behind
// SyncFlavor::kScalable, so OmpRuntime teams — and every Figure 9 workload —
// run unchanged over either implementation. bench/sync_scaling.cc measures
// the crossover; DESIGN.md §14 explains the memory layout.
#ifndef MK_PROC_SYNC_SYNC_H_
#define MK_PROC_SYNC_SYNC_H_

#include "proc/sync/mcs_lock.h"
#include "proc/sync/ticket_lock.h"
#include "proc/sync/tree_barrier.h"

#endif  // MK_PROC_SYNC_SYNC_H_
