// MCS queue lock (Mellor-Crummey & Scott): FIFO handoff over per-core queue
// nodes, each a cache line homed on its own core's NUMA node.
//
// Acquire swaps itself onto a single shared tail line (the only line every
// contender touches, one read-modify-write per acquisition), links into its
// predecessor's node, and then spins on its *own* line — so a release moves
// exactly one line (the successor's spin flag) between exactly two cores,
// regardless of how many waiters queue behind. A test-and-set or ticket lock
// instead invalidates every spinner's copy of one central line on each
// release and all of them refetch it: an O(waiters) coherence storm per
// handoff that bench/sync_scaling.cc measures against this lock.
//
// The queue order (and therefore the acquisition order) is the order in
// which contenders complete their tail swap: strict FIFO, pinned by
// tests/sync_test.cc.
#ifndef MK_PROC_SYNC_MCS_LOCK_H_
#define MK_PROC_SYNC_MCS_LOCK_H_

#include <cstdint>
#include <deque>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::proc::sync {

class McsLock {
 public:
  explicit McsLock(hw::Machine& machine);

  // Blocks the calling thread (running on `core`) until it owns the lock.
  // A core must not acquire while it already holds or waits (one queue node
  // per core, as in the classic algorithm).
  sim::Task<> Acquire(int core);
  sim::Task<> Release(int core);

  bool locked() const { return holder_ >= 0; }
  int holder() const { return holder_; }
  // True when the queue has drained (stress-test invariant: a lost handoff
  // leaves the tail pointing at a parked waiter forever).
  bool queue_empty() const { return tail_ < 0; }
  std::uint64_t handoffs() const { return handoffs_; }

 private:
  struct Node {
    explicit Node(sim::Executor& exec) : granted(exec), linked(exec) {}
    sim::Addr line = 0;   // the qnode: spin flag + next pointer, homed locally
    int next = -1;
    bool ready = false;
    sim::Event granted;   // signaled by the predecessor's handoff write
    sim::Event linked;    // signaled by the successor once `next` is visible
  };

  hw::Machine& machine_;
  sim::Addr tail_line_;   // the swap target: the one globally shared line
  int tail_ = -1;
  int holder_ = -1;
  std::uint64_t handoffs_ = 0;
  std::deque<Node> nodes_;  // one per core; deque: Node is not movable
};

}  // namespace mk::proc::sync

#endif  // MK_PROC_SYNC_MCS_LOCK_H_
