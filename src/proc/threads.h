// User-level threads over dispatchers (sections 4.5 and 4.8).
//
// A process in the multikernel is a collection of dispatchers, one per core,
// sharing a virtual address space; the default library provides POSIX-like
// threads on top. Synchronization comes in two flavors, mirroring the
// Figure 9 comparison:
//
//   * the Barrelfish user-space primitives (spin on coherent cache lines,
//     block in the user-level scheduler) — no kernel involvement;
//   * "kernel" (futex-style) primitives as in Linux/GOMP, where contended
//     paths cross the kernel boundary (system call + scheduler wakeups);
//   * the scalable library (src/proc/sync/): MCS queue locks and
//     tournament/combining-tree barriers with local spinning on NUMA-homed
//     lines, replacing the centralized primitives' coherence storms.
//
// All operate on the simulated coherent memory, so their scaling behavior
// (counter-line contention, wake-up costs) emerges from the machine model.
#ifndef MK_PROC_THREADS_H_
#define MK_PROC_THREADS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::proc {

namespace sync {
class McsLock;
class TreeBarrier;
}  // namespace sync

using sim::Addr;
using sim::Cycles;
using sim::Task;

enum class SyncFlavor {
  kUserSpace,  // Barrelfish library: coherent-line spin + user-level block
  kKernel,     // futex-style: syscall on the contended path
  kScalable,   // MCS queue lock + tournament/combining-tree barrier
};

// Barrier facade, dispatching on the flavor chosen at construction:
// centralized sense-reversing counter (kUserSpace/kKernel, the original code
// paths, untouched) or the tournament tree (kScalable). `cores[i]` names the
// core party i arrives on — required for the tree's NUMA homing; empty means
// party i == core i. The centralized flavors ignore it.
class Barrier {
 public:
  Barrier(hw::Machine& machine, int parties, SyncFlavor flavor, int home_node = 0,
          std::vector<int> cores = {});
  ~Barrier();

  // Blocks the calling thread (running on `core`) until all parties arrive.
  Task<> Arrive(int core);

  int parties() const { return parties_; }
  SyncFlavor flavor() const { return flavor_; }

 private:
  hw::Machine& machine_;
  int parties_;
  SyncFlavor flavor_;
  Addr count_line_;
  Addr release_line_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  sim::Event release_;
  std::unique_ptr<sync::TreeBarrier> tree_;  // kScalable only
};

// Mutex facade: test-and-set fast path on a coherent line (kUserSpace),
// futex-style syscalls on contention (kKernel), or the MCS queue lock
// (kScalable).
class Mutex {
 public:
  Mutex(hw::Machine& machine, SyncFlavor flavor, int home_node = 0);
  ~Mutex();

  Task<> Lock(int core);
  Task<> Unlock(int core);
  bool locked() const;
  SyncFlavor flavor() const { return flavor_; }

 private:
  hw::Machine& machine_;
  SyncFlavor flavor_;
  Addr line_;
  bool locked_ = false;
  int waiters_ = 0;
  sim::Event available_;
  std::unique_ptr<sync::McsLock> mcs_;  // kScalable only
};

// A team of worker threads, one pinned to each given core (the typical
// OpenMP/SPLASH setup). Run() executes the body on every worker and awaits
// them all; per-thread spawn/join costs are charged.
class ThreadTeam {
 public:
  using Body = std::function<Task<>(int tid, int core)>;

  ThreadTeam(hw::Machine& machine, std::vector<int> cores);

  int size() const { return static_cast<int>(cores_.size()); }
  int core_of(int tid) const { return cores_[static_cast<std::size_t>(tid)]; }
  const std::vector<int>& cores() const { return cores_; }
  hw::Machine& machine() { return machine_; }

  // Forks size() threads running `body` and joins them.
  Task<> Run(const Body& body);

 private:
  hw::Machine& machine_;
  std::vector<int> cores_;
};

// Cross-core thread migration (section 4.8): the thread schedulers on each
// dispatcher exchange messages to migrate threads. Returns the charged cost;
// state consistency is the caller's (user-level scheduler's) business.
Task<Cycles> MigrateThread(hw::Machine& machine, int from_core, int to_core);

}  // namespace mk::proc

#endif  // MK_PROC_THREADS_H_
