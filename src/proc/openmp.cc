#include "proc/openmp.h"

namespace mk::proc {

OmpRuntime::OmpRuntime(hw::Machine& machine, std::vector<int> cores, SyncFlavor flavor)
    : machine_(machine),
      flavor_(flavor),
      team_(machine, std::move(cores)),
      barrier_(machine, team_.size(), flavor, 0, team_.cores()) {
  if (flavor_ == SyncFlavor::kScalable) {
    for (int p = 0; p < machine_.topo().num_packages(); ++p) {
      package_reduce_lines_.push_back(machine_.mem().AllocLines(p, 1));
    }
    return;
  }
  reduce_line_ = machine_.mem().AllocLines(0, 1);
}

OmpRuntime::Range OmpRuntime::ChunkOf(std::int64_t n, int tid) const {
  const auto threads = static_cast<std::int64_t>(team_.size());
  std::int64_t chunk = (n + threads - 1) / threads;
  Range r;
  r.begin = tid * chunk;
  r.end = r.begin + chunk < n ? r.begin + chunk : n;
  if (r.begin > n) {
    r.begin = n;
  }
  return r;
}

Task<> OmpRuntime::Parallel(const ThreadTeam::Body& body) {
  Barrier* barrier = &barrier_;
  co_await team_.Run([&body, barrier](int tid, int core) -> Task<> {
    co_await body(tid, core);
    co_await barrier->Arrive(core);
  });
}

Task<> OmpRuntime::ParallelFor(std::int64_t n, const ForBody& body) {
  co_await Parallel([this, n, &body](int tid, int core) -> Task<> {
    Range r = ChunkOf(n, tid);
    if (r.begin < r.end) {
      co_await body(tid, core, r.begin, r.end);
    }
  });
}

Task<> OmpRuntime::ReduceContribution(int core) {
  if (flavor_ == SyncFlavor::kScalable) {
    // Combine into the caller's package-local partial line; cross-package
    // combining rides the barrier's tournament tree.
    const auto pkg = static_cast<std::size_t>(machine_.topo().PackageOf(core));
    co_await machine_.mem().Write(core, package_reduce_lines_[pkg]);
    co_return;
  }
  co_await machine_.mem().Write(core, reduce_line_);
}

}  // namespace mk::proc
