// Minimal OpenMP-like runtime for the Figure 9 workloads (section 5.3).
//
// The paper runs the NAS OpenMP benchmarks with GNU GOMP on Linux and "our
// own implementation over Barrelfish". This runtime provides the pieces those
// kernels need — a worker team, parallel-for with static scheduling, barriers
// and reductions — parameterized by SyncFlavor so the same workload code runs
// with either OS's synchronization behavior.
#ifndef MK_PROC_OPENMP_H_
#define MK_PROC_OPENMP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/machine.h"
#include "proc/threads.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::proc {

class OmpRuntime {
 public:
  OmpRuntime(hw::Machine& machine, std::vector<int> cores, SyncFlavor flavor);

  int num_threads() const { return team_.size(); }
  SyncFlavor flavor() const { return flavor_; }
  hw::Machine& machine() { return machine_; }
  Barrier& barrier() { return barrier_; }

  // Static chunk of [0, n) for thread `tid`.
  struct Range {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };
  Range ChunkOf(std::int64_t n, int tid) const;

  // #pragma omp parallel: runs body(tid, core) on every worker, with an
  // implicit ending barrier.
  Task<> Parallel(const ThreadTeam::Body& body);

  // #pragma omp parallel for (static): body(tid, core, begin, end).
  using ForBody = std::function<Task<>(int tid, int core, std::int64_t begin,
                                       std::int64_t end)>;
  Task<> ParallelFor(std::int64_t n, const ForBody& body);

  // A reduction combines per-thread partials through a shared cache line
  // (each contribution is a coherent write) followed by a barrier. Under
  // kScalable the partials instead combine through per-package lines (each
  // homed on its own package), so contributions from different packages never
  // contend on one line — the combining-tree reduce feeding the TreeBarrier.
  Task<> ReduceContribution(int core);

 private:
  hw::Machine& machine_;
  SyncFlavor flavor_;
  ThreadTeam team_;
  Barrier barrier_;
  sim::Addr reduce_line_ = 0;
  std::vector<sim::Addr> package_reduce_lines_;  // kScalable only, by package
};

}  // namespace mk::proc

#endif  // MK_PROC_OPENMP_H_
