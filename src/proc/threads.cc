#include "proc/threads.h"

#include "proc/sync/mcs_lock.h"
#include "proc/sync/tree_barrier.h"

namespace mk::proc {

Barrier::Barrier(hw::Machine& machine, int parties, SyncFlavor flavor, int home_node,
                 std::vector<int> cores)
    : machine_(machine), parties_(parties), flavor_(flavor), release_(machine.exec()) {
  if (flavor_ == SyncFlavor::kScalable) {
    tree_ = std::make_unique<sync::TreeBarrier>(machine_, parties_, std::move(cores));
    return;  // no centralized lines: the tree owns all barrier state
  }
  count_line_ = machine_.mem().AllocLines(home_node, 1);
  release_line_ = machine_.mem().AllocLines(home_node, 1);
}

Barrier::~Barrier() = default;

Task<> Barrier::Arrive(int core) {
  if (tree_) {
    co_await tree_->Arrive(tree_->PartyOfCore(core));
    co_return;
  }
  // Atomic increment of the arrival counter: a coherent read-modify-write on
  // a line every arriving core touches (the contention point).
  co_await machine_.mem().Write(core, count_line_);
  if (flavor_ == SyncFlavor::kKernel) {
    // GOMP-style: the barrier crosses the kernel (futex syscall) even before
    // deciding to sleep.
    co_await machine_.Syscall(core);
  }
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    // Release: flip the sense line; all spinners re-fetch it.
    co_await machine_.mem().Write(core, release_line_);
    if (flavor_ == SyncFlavor::kKernel) {
      // futex_wake walks and wakes each sleeper in the kernel.
      co_await machine_.Compute(core, machine_.cost().syscall +
                                          static_cast<Cycles>(parties_ - 1) * 350);
    }
    release_.Signal();
    co_return;
  }
  std::uint64_t gen = generation_;
  while (generation_ == gen) {
    co_await release_.Wait();
  }
  // The releasing write invalidated our copy of the sense line; the spin
  // loop's next read misses and fetches it.
  co_await machine_.mem().Read(core, release_line_);
  if (flavor_ == SyncFlavor::kKernel) {
    // Woken out of futex_wait: return to user through the scheduler.
    co_await machine_.Compute(core, machine_.cost().context_switch / 2);
  }
}

Mutex::Mutex(hw::Machine& machine, SyncFlavor flavor, int home_node)
    : machine_(machine), flavor_(flavor), available_(machine.exec()) {
  if (flavor_ == SyncFlavor::kScalable) {
    mcs_ = std::make_unique<sync::McsLock>(machine_);
    return;  // the MCS queue owns all lock state; no central test-and-set line
  }
  line_ = machine_.mem().AllocLines(home_node, 1);
}

Mutex::~Mutex() = default;

bool Mutex::locked() const { return mcs_ ? mcs_->locked() : locked_; }

Task<> Mutex::Lock(int core) {
  if (mcs_) {
    co_await mcs_->Acquire(core);
    co_return;
  }
  while (true) {
    // Test-and-set: a coherent write on the lock line.
    co_await machine_.mem().Write(core, line_);
    if (!locked_) {
      locked_ = true;
      co_return;
    }
    ++waiters_;
    if (flavor_ == SyncFlavor::kKernel) {
      // futex_wait on contention.
      co_await machine_.Syscall(core);
      co_await available_.Wait();
      co_await machine_.Compute(core, machine_.cost().context_switch / 2);
    } else {
      // User-space: brief spin then yield to the local dispatcher.
      co_await machine_.exec().Delay(120);
      co_await available_.Wait();
    }
    --waiters_;
  }
}

Task<> Mutex::Unlock(int core) {
  if (mcs_) {
    co_await mcs_->Release(core);
    co_return;
  }
  locked_ = false;
  co_await machine_.mem().Write(core, line_);
  if (waiters_ > 0) {
    if (flavor_ == SyncFlavor::kKernel) {
      co_await machine_.Syscall(core);  // futex_wake
    }
    available_.SignalOne();
  }
}

ThreadTeam::ThreadTeam(hw::Machine& machine, std::vector<int> cores)
    : machine_(machine), cores_(std::move(cores)) {}

namespace {

Task<> RunWorker(hw::Machine& machine, const ThreadTeam::Body& body, int tid, int core,
                 int* remaining, sim::Event* joined) {
  // Thread start-up: dispatch onto the core.
  co_await machine.Compute(core, machine.cost().dispatch);
  co_await body(tid, core);
  if (--*remaining == 0) {
    joined->Signal();
  }
}

}  // namespace

Task<> ThreadTeam::Run(const Body& body) {
  int remaining = size();
  sim::Event joined(machine_.exec());
  for (int tid = 0; tid < size(); ++tid) {
    machine_.exec().Spawn(
        RunWorker(machine_, body, tid, cores_[static_cast<std::size_t>(tid)], &remaining,
                  &joined));
  }
  while (remaining > 0) {
    co_await joined.Wait();
  }
}

Task<Cycles> MigrateThread(hw::Machine& machine, int from_core, int to_core) {
  const Cycles t0 = machine.exec().now();
  // The source dispatcher packages the thread state (a couple of lines) and
  // messages the destination dispatcher, which dispatches the thread.
  Addr state = machine.mem().AllocLines(machine.topo().PackageOf(from_core), 2);
  co_await machine.mem().Write(from_core, state, 2 * sim::kCacheLineBytes);
  co_await machine.mem().Read(to_core, state, 2 * sim::kCacheLineBytes);
  co_await machine.Compute(to_core, machine.cost().dispatch);
  co_return machine.exec().now() - t0;
}

}  // namespace mk::proc
