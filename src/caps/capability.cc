#include "caps/capability.h"

#include <algorithm>

namespace mk::caps {

const char* CapTypeName(CapType t) {
  switch (t) {
    case CapType::kNull: return "null";
    case CapType::kRam: return "ram";
    case CapType::kFrame: return "frame";
    case CapType::kPageTable: return "page-table";
    case CapType::kCNode: return "cnode";
    case CapType::kDispatcher: return "dispatcher";
    case CapType::kEndpoint: return "endpoint";
    case CapType::kDevice: return "device";
  }
  return "?";
}

const char* CapErrName(CapErr e) {
  switch (e) {
    case CapErr::kOk: return "ok";
    case CapErr::kBadCap: return "bad-cap";
    case CapErr::kBadType: return "bad-type";
    case CapErr::kBadRange: return "bad-range";
    case CapErr::kHasDescendants: return "has-descendants";
    case CapErr::kLocked: return "locked";
    case CapErr::kNoRights: return "no-rights";
    case CapErr::kConflict: return "conflict";
    case CapErr::kTimeout: return "timeout";
  }
  return "?";
}

bool RetypeableFromRam(CapType t) {
  switch (t) {
    case CapType::kRam:
    case CapType::kFrame:
    case CapType::kPageTable:
    case CapType::kCNode:
    case CapType::kDispatcher:
    case CapType::kEndpoint:
      return true;
    default:
      return false;
  }
}

bool TransferableType(CapType t) {
  switch (t) {
    case CapType::kFrame:
    case CapType::kRam:
    case CapType::kEndpoint:
    case CapType::kDevice:
      return true;
    default:
      // Page tables, CNodes, and dispatchers are core-local kernel state.
      return false;
  }
}

CapId CapDb::InstallRoot(std::uint64_t base, std::uint64_t bytes) {
  Capability cap;
  cap.type = CapType::kRam;
  cap.base = base;
  cap.bytes = bytes;
  return NewNode(cap, kNoCap);
}

CapId CapDb::NewNode(const Capability& cap, CapId parent) {
  Node n;
  n.cap = cap;
  n.parent = parent;
  n.live = true;
  nodes_.push_back(std::move(n));
  auto id = static_cast<CapId>(nodes_.size() - 1);
  if (parent != kNoCap) {
    nodes_[parent].children.push_back(id);
  }
  return id;
}

CapDb::Node* CapDb::GetNode(CapId id) {
  if (id == kNoCap || id >= nodes_.size() || !nodes_[id].live) {
    return nullptr;
  }
  return &nodes_[id];
}

const CapDb::Node* CapDb::GetNode(CapId id) const {
  if (id == kNoCap || id >= nodes_.size() || !nodes_[id].live) {
    return nullptr;
  }
  return &nodes_[id];
}

const Capability* CapDb::Get(CapId id) const {
  const Node* n = GetNode(id);
  return n ? &n->cap : nullptr;
}

CapDb::RetypeResult CapDb::Retype(CapId parent, CapType new_type, std::uint64_t child_bytes,
                                  std::uint32_t count) {
  RetypeResult result;
  Node* p = GetNode(parent);
  if (p == nullptr) {
    result.err = CapErr::kBadCap;
    return result;
  }
  if (p->cap.type != CapType::kRam || !RetypeableFromRam(new_type)) {
    result.err = CapErr::kBadType;
    return result;
  }
  if (p->locked) {
    result.err = CapErr::kLocked;
    return result;
  }
  if (child_bytes == 0 || count == 0 || child_bytes * count > p->cap.bytes) {
    result.err = CapErr::kBadRange;
    return result;
  }
  if (HasDescendants(parent)) {
    // Retyping an already-retyped region would alias memory across types.
    result.err = CapErr::kHasDescendants;
    return result;
  }
  if (!p->cap.rights.grant) {
    result.err = CapErr::kNoRights;
    return result;
  }
  // Snapshot the parent before creating children: NewNode grows nodes_ and
  // may reallocate it, which would dangle `p` mid-loop.
  const Capability parent_cap = p->cap;
  for (std::uint32_t i = 0; i < count; ++i) {
    Capability child;
    child.type = new_type;
    child.base = parent_cap.base + static_cast<std::uint64_t>(i) * child_bytes;
    child.bytes = child_bytes;
    child.rights = parent_cap.rights;
    result.children.push_back(NewNode(child, parent));
  }
  return result;
}

CapDb::CopyResult CapDb::Copy(CapId src, std::optional<Rights> reduced) {
  CopyResult result;
  Node* s = GetNode(src);
  if (s == nullptr) {
    result.err = CapErr::kBadCap;
    return result;
  }
  if (!s->cap.rights.grant) {
    result.err = CapErr::kNoRights;
    return result;
  }
  Capability copy = s->cap;
  if (reduced) {
    if (!s->cap.rights.Covers(*reduced)) {
      result.err = CapErr::kNoRights;
      return result;
    }
    copy.rights = *reduced;
  }
  result.id = NewNode(copy, src);
  return result;
}

CapErr CapDb::Delete(CapId id) {
  Node* n = GetNode(id);
  if (n == nullptr) {
    return CapErr::kBadCap;
  }
  if (n->locked) {
    return CapErr::kLocked;
  }
  // Re-parent children.
  for (CapId c : n->children) {
    nodes_[c].parent = n->parent;
    if (n->parent != kNoCap) {
      nodes_[n->parent].children.push_back(c);
    }
  }
  if (n->parent != kNoCap) {
    auto& sib = nodes_[n->parent].children;
    sib.erase(std::remove(sib.begin(), sib.end(), id), sib.end());
  }
  n->children.clear();
  n->live = false;
  return CapErr::kOk;
}

void CapDb::CollectDescendants(const Node& n, std::vector<CapId>* out) const {
  for (CapId c : n.children) {
    if (nodes_[c].live) {
      out->push_back(c);
      CollectDescendants(nodes_[c], out);
    }
  }
}

std::vector<CapId> CapDb::Descendants(CapId id) const {
  std::vector<CapId> out;
  const Node* n = GetNode(id);
  if (n != nullptr) {
    CollectDescendants(*n, &out);
  }
  return out;
}

bool CapDb::HasDescendants(CapId id) const {
  const Node* n = GetNode(id);
  if (n == nullptr) {
    return false;
  }
  for (CapId c : n->children) {
    if (nodes_[c].live) {
      return true;
    }
  }
  return false;
}

CapErr CapDb::Revoke(CapId id) {
  Node* n = GetNode(id);
  if (n == nullptr) {
    return CapErr::kBadCap;
  }
  if (n->locked) {
    return CapErr::kLocked;
  }
  std::vector<CapId> descendants = Descendants(id);
  for (CapId d : descendants) {
    if (nodes_[d].locked) {
      return CapErr::kLocked;
    }
  }
  for (CapId d : descendants) {
    nodes_[d].live = false;
    nodes_[d].children.clear();
  }
  n->children.clear();
  return CapErr::kOk;
}

CapErr CapDb::Prepare(const PreparedOp& op) {
  Node* n = GetNode(op.target);
  if (n == nullptr) {
    return CapErr::kBadCap;
  }
  if (n->locked) {
    return CapErr::kConflict;
  }
  if (!op.is_revoke) {
    // Validate the retype locally without applying it.
    if (n->cap.type != CapType::kRam || !RetypeableFromRam(op.new_type)) {
      return CapErr::kBadType;
    }
    if (op.child_bytes == 0 || op.count == 0 ||
        op.child_bytes * op.count > n->cap.bytes) {
      return CapErr::kBadRange;
    }
    if (HasDescendants(op.target)) {
      return CapErr::kHasDescendants;
    }
  }
  n->locked = true;
  pending_.emplace_back(op.op_id, op);
  return CapErr::kOk;
}

std::vector<CapId> CapDb::Commit(std::uint64_t op_id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first != op_id) {
      continue;
    }
    PreparedOp op = it->second;
    pending_.erase(it);
    Node* n = GetNode(op.target);
    if (n == nullptr) {
      return {};
    }
    n->locked = false;
    if (op.is_revoke) {
      Revoke(op.target);
      return {};
    }
    RetypeResult r = Retype(op.target, op.new_type, op.child_bytes, op.count);
    return r.children;
  }
  return {};
}

void CapDb::Abort(std::uint64_t op_id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first != op_id) {
      continue;
    }
    Node* n = GetNode(it->second.target);
    if (n != nullptr) {
      n->locked = false;
    }
    pending_.erase(it);
    return;
  }
}

bool CapDb::IsLocked(CapId id) const {
  const Node* n = GetNode(id);
  return n != nullptr && n->locked;
}

CapDb::InsertResult CapDb::InsertRemote(const Capability& cap) {
  InsertResult result;
  if (!TransferableType(cap.type)) {
    result.err = CapErr::kBadType;
    return result;
  }
  // Attach under the live cap covering the same region, if any.
  CapId parent = kNoCap;
  for (CapId i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.live) {
      continue;
    }
    if (n.cap.base <= cap.base && cap.base + cap.bytes <= n.cap.base + n.cap.bytes) {
      parent = i;  // keep the most specific (deepest) cover: later wins on ties
    }
  }
  result.id = NewNode(cap, parent);
  return result;
}

std::uint64_t CapDb::Digest() const {
  // FNV-1a over live capability fields, in id order (ids are deterministic).
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (CapId i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.live) {
      continue;
    }
    mix(i);
    mix(static_cast<std::uint64_t>(n.cap.type));
    mix(n.cap.base);
    mix(n.cap.bytes);
    mix(n.parent);
  }
  return h;
}

std::size_t CapDb::LiveCount() const {
  std::size_t count = 0;
  for (CapId i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].live) {
      ++count;
    }
  }
  return count;
}

}  // namespace mk::caps
