#include "caps/cspace.h"

namespace mk::caps {

CSpace::CSpace(CapDb& db, std::uint32_t root_slots) : db_(db), root_slots_(root_slots) {
  Node root;
  root.slots = root_slots;
  nodes_.push_back(std::move(root));
}

int CSpace::WalkTo(const CapPath& path, std::uint32_t* final_slot) const {
  if (path.slots.empty()) {
    return -1;
  }
  int node = 0;
  for (std::size_t depth = 0; depth + 1 < path.slots.size(); ++depth) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    std::uint32_t slot = path.slots[depth];
    auto it = n.children.find(slot);
    if (slot >= n.slots || it == n.children.end()) {
      return -1;
    }
    node = static_cast<int>(it->second);
  }
  std::uint32_t last = path.slots.back();
  if (last >= nodes_[static_cast<std::size_t>(node)].slots) {
    return -1;
  }
  *final_slot = last;
  return node;
}

CapId CSpace::Lookup(const CapPath& path) const {
  std::uint32_t slot = 0;
  int node = WalkTo(path, &slot);
  if (node < 0) {
    return kNoCap;
  }
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  auto it = n.caps.find(slot);
  if (it == n.caps.end()) {
    return kNoCap;
  }
  // The capability may have been revoked out from under the slot.
  return db_.Exists(it->second) ? it->second : kNoCap;
}

CapErr CSpace::Put(const CapPath& path, CapId cap) {
  if (!db_.Exists(cap)) {
    return CapErr::kBadCap;
  }
  std::uint32_t slot = 0;
  int node = WalkTo(path, &slot);
  if (node < 0) {
    return CapErr::kBadRange;
  }
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.caps.count(slot) != 0 && db_.Exists(n.caps.at(slot))) {
    return CapErr::kConflict;  // slot occupied
  }
  n.caps[slot] = cap;
  return CapErr::kOk;
}

CapErr CSpace::Copy(const CapPath& src, const CapPath& dst) {
  CapId cap = Lookup(src);
  if (cap == kNoCap) {
    return CapErr::kBadCap;
  }
  auto copy = db_.Copy(cap);
  if (copy.err != CapErr::kOk) {
    return copy.err;
  }
  CapErr err = Put(dst, copy.id);
  if (err != CapErr::kOk) {
    db_.Delete(copy.id);
  }
  return err;
}

CapErr CSpace::Mint(const CapPath& src, const CapPath& dst, Rights reduced) {
  CapId cap = Lookup(src);
  if (cap == kNoCap) {
    return CapErr::kBadCap;
  }
  auto copy = db_.Copy(cap, reduced);
  if (copy.err != CapErr::kOk) {
    return copy.err;
  }
  CapErr err = Put(dst, copy.id);
  if (err != CapErr::kOk) {
    db_.Delete(copy.id);
  }
  return err;
}

CapErr CSpace::Delete(const CapPath& path) {
  std::uint32_t slot = 0;
  int node = WalkTo(path, &slot);
  if (node < 0) {
    return CapErr::kBadRange;
  }
  Node& n = nodes_[static_cast<std::size_t>(node)];
  auto it = n.caps.find(slot);
  if (it == n.caps.end()) {
    return CapErr::kBadCap;
  }
  CapErr err = db_.Delete(it->second);
  n.caps.erase(it);
  return err;
}

CapErr CSpace::MakeCNode(const CapPath& path, CapId cnode_ram, std::uint32_t slots) {
  // Validate the destination slot before touching the capability database, so
  // failure leaves no side effects.
  std::uint32_t slot = 0;
  int node = WalkTo(path, &slot);
  if (node < 0) {
    return CapErr::kBadRange;
  }
  {
    const Node& parent = nodes_[static_cast<std::size_t>(node)];
    if (parent.children.count(slot) != 0 ||
        (parent.caps.count(slot) != 0 && db_.Exists(parent.caps.at(slot)))) {
      return CapErr::kConflict;
    }
  }
  // The CNode's storage comes from retyping RAM (16 bytes per slot here).
  auto retyped = db_.Retype(cnode_ram, CapType::kCNode, slots * 16ULL, 1);
  if (retyped.err != CapErr::kOk) {
    return retyped.err;
  }
  Node child;
  child.slots = slots;
  nodes_.push_back(std::move(child));  // may reallocate: re-index the parent
  Node& parent = nodes_[static_cast<std::size_t>(node)];
  parent.children[slot] = static_cast<std::uint32_t>(nodes_.size() - 1);
  parent.caps[slot] = retyped.children.front();
  return CapErr::kOk;
}

}  // namespace mk::caps
