// Capability system modeled on seL4 (section 4.7).
//
// All memory management is performed explicitly through capabilities:
// user-level references to kernel objects or regions of physical memory.
// Typed capabilities are derived from RAM capabilities by *retype* operations
// and destroyed (with all descendants) by *revoke*. The kernel's only memory
// management duty is checking the correctness of these operations — e.g. that
// a region is never simultaneously a mappable frame and a page table.
//
// Each core keeps a full replica of the capability database; replicas are
// kept consistent by the monitors' agreement protocols (one-phase commit for
// order-insensitive operations, two-phase commit for retype/revoke). CapDb
// exposes prepare/commit/abort hooks for the two-phase protocol.
#ifndef MK_CAPS_CAPABILITY_H_
#define MK_CAPS_CAPABILITY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mk::caps {

enum class CapType : std::uint8_t {
  kNull = 0,
  kRam,         // untyped physical memory
  kFrame,       // mappable memory
  kPageTable,   // page-table node storage
  kCNode,       // capability storage
  kDispatcher,  // dispatcher control block
  kEndpoint,    // IPC endpoint
  kDevice,      // device-register region
};

const char* CapTypeName(CapType t);

// True if RAM may be retyped into `t`.
bool RetypeableFromRam(CapType t);

// True if a capability of this type may be transferred to another core
// (section 4.8: the monitors check transferability).
bool TransferableType(CapType t);

struct Rights {
  bool read = true;
  bool write = true;
  bool grant = true;  // may be copied/transferred onward

  // True if `other` is equal or weaker.
  bool Covers(const Rights& other) const {
    return (read || !other.read) && (write || !other.write) && (grant || !other.grant);
  }
};

using CapId = std::uint32_t;
inline constexpr CapId kNoCap = 0;

struct Capability {
  CapType type = CapType::kNull;
  std::uint64_t base = 0;   // physical base address
  std::uint64_t bytes = 0;  // region size
  Rights rights;
};

// Outcome of a local capability operation.
enum class CapErr {
  kOk = 0,
  kBadCap,         // no such capability / deleted
  kBadType,        // operation not allowed for this type
  kBadRange,       // size/alignment out of range
  kHasDescendants, // retype requires no live descendants
  kLocked,         // region locked by an in-flight two-phase operation
  kNoRights,       // rights do not permit the operation
  kConflict,       // overlapping in-flight operation
  kTimeout,        // remote replica did not answer (fault injection / dead core)
};

const char* CapErrName(CapErr e);

// A per-core replica of the global capability database, organized as a
// derivation tree (the mapping database). Deterministic: applying the same
// committed operations in the same order yields identical replicas, which the
// monitors' agreement protocols guarantee.
class CapDb {
 public:
  CapDb() = default;

  // Installs the boot-time root RAM capability covering [base, base+bytes).
  CapId InstallRoot(std::uint64_t base, std::uint64_t bytes);

  const Capability* Get(CapId id) const;
  bool Exists(CapId id) const { return Get(id) != nullptr; }

  // Splits `count` children of `new_type`, each `child_bytes` long, out of a
  // RAM capability (from its start). Fails if the cap has live descendants,
  // is locked, or typing rules forbid it. Returns the new ids.
  struct RetypeResult {
    CapErr err = CapErr::kOk;
    std::vector<CapId> children;
  };
  RetypeResult Retype(CapId parent, CapType new_type, std::uint64_t child_bytes,
                      std::uint32_t count);

  // Copies a capability (optionally with reduced rights). The copy is a CDT
  // child of the original.
  struct CopyResult {
    CapErr err = CapErr::kOk;
    CapId id = kNoCap;
  };
  CopyResult Copy(CapId src, std::optional<Rights> reduced = std::nullopt);

  // Deletes this capability only (descendants are re-parented to its parent).
  CapErr Delete(CapId id);

  // Revokes: deletes every descendant of `id` (but not `id` itself).
  CapErr Revoke(CapId id);

  bool HasDescendants(CapId id) const;
  std::vector<CapId> Descendants(CapId id) const;

  // --- Two-phase-commit hooks (called by the monitors) ---
  //
  // Prepare checks that the operation is locally admissible and locks the
  // affected region against conflicting prepares. Commit applies it and
  // unlocks; Abort just unlocks.
  struct PreparedOp {
    std::uint64_t op_id = 0;
    CapId target = kNoCap;
    bool is_revoke = false;  // else retype
    CapType new_type = CapType::kNull;
    std::uint64_t child_bytes = 0;
    std::uint32_t count = 0;
  };
  CapErr Prepare(const PreparedOp& op);
  // Returns the ids created by a committed retype (empty for revoke).
  std::vector<CapId> Commit(std::uint64_t op_id);
  void Abort(std::uint64_t op_id);

  bool IsLocked(CapId id) const;

  // Inserts a capability received from another core (monitor cap transfer).
  // The remote cap must be transferable; it is installed as a CDT child of
  // the local cap covering the same region if one exists, else as a root.
  struct InsertResult {
    CapErr err = CapErr::kOk;
    CapId id = kNoCap;
  };
  InsertResult InsertRemote(const Capability& cap);

  // Replica digest for consistency checks in tests: a deterministic hash of
  // all live capabilities.
  std::uint64_t Digest() const;

  std::size_t LiveCount() const;

 private:
  struct Node {
    Capability cap;
    CapId parent = kNoCap;
    std::vector<CapId> children;
    bool live = false;
    bool locked = false;
  };

  CapId NewNode(const Capability& cap, CapId parent);
  Node* GetNode(CapId id);
  const Node* GetNode(CapId id) const;
  void CollectDescendants(const Node& n, std::vector<CapId>* out) const;

  std::vector<Node> nodes_{Node{}};  // index 0 is the null sentinel
  std::vector<std::pair<std::uint64_t, PreparedOp>> pending_;  // op_id -> op
};

}  // namespace mk::caps

#endif  // MK_CAPS_CAPABILITY_H_
