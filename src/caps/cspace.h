// CSpace: how user-level code names capabilities (section 4.7's seL4 model).
//
// Capabilities live in CNodes — tables of slots, themselves reachable through
// capabilities — and are addressed by a path of slot indices from a root
// CNode. The CPU driver's invocation path resolves such an address before
// checking the operation; this class implements the resolution and the
// slot-level operations (put/copy/mint/delete) on top of the CapDb.
#ifndef MK_CAPS_CSPACE_H_
#define MK_CAPS_CSPACE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "caps/capability.h"

namespace mk::caps {

// A capability address: up to 4 levels of slot indices.
struct CapPath {
  std::vector<std::uint32_t> slots;

  static CapPath Of(std::initializer_list<std::uint32_t> s) { return CapPath{s}; }
};

class CSpace {
 public:
  // `root_slots` slots in the root CNode; nested CNodes are created with
  // MakeCNode.
  CSpace(CapDb& db, std::uint32_t root_slots = 256);

  // Resolves a path to the capability stored there (kNoCap if empty/bad).
  CapId Lookup(const CapPath& path) const;

  // Stores a capability in an empty slot.
  CapErr Put(const CapPath& path, CapId cap);

  // Copies the capability at `src` into the empty slot `dst` (a CDT child;
  // optionally with reduced rights, i.e. a mint).
  CapErr Copy(const CapPath& src, const CapPath& dst);
  CapErr Mint(const CapPath& src, const CapPath& dst, Rights reduced);

  // Clears the slot and deletes that capability (CDT delete semantics).
  CapErr Delete(const CapPath& path);

  // Creates a nested CNode of `slots` slots at `path`, backed by retyping
  // `cnode_ram` (a RAM capability large enough for the slot storage).
  CapErr MakeCNode(const CapPath& path, CapId cnode_ram, std::uint32_t slots);

  std::uint32_t root_slots() const { return root_slots_; }

 private:
  struct Node {
    std::uint32_t slots = 0;
    std::map<std::uint32_t, CapId> caps;       // slot -> capability
    std::map<std::uint32_t, std::uint32_t> children;  // slot -> node index
  };

  // Walks to the node containing the final slot; -1 on a bad path.
  int WalkTo(const CapPath& path, std::uint32_t* final_slot) const;

  CapDb& db_;
  std::uint32_t root_slots_;
  std::vector<Node> nodes_;  // index 0 is the root
};

}  // namespace mk::caps

#endif  // MK_CAPS_CSPACE_H_
