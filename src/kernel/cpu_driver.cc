#include "kernel/cpu_driver.h"

#include <stdexcept>

namespace mk::kernel {

CpuDriver::CpuDriver(hw::Machine& machine, int core) : machine_(machine), core_(core) {
  machine_.ipi().SetHandler(
      core_, [this](int vector, std::uint64_t payload) { HandleIpi(vector, payload); });
}

EndpointId CpuDriver::RegisterEndpoint(Handler handler, std::string name) {
  endpoints_.push_back(Endpoint{std::move(handler), std::move(name)});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

Cycles CpuDriver::LrpcOneWayCost() const {
  const hw::CostBook& c = machine_.cost();
  return c.syscall + c.dispatch + c.lrpc_user_path;
}

Task<> CpuDriver::LrpcSend(EndpointId ep, LrpcMsg msg) {
  if (ep >= endpoints_.size()) {
    throw std::out_of_range("LrpcSend: bad endpoint");
  }
  const hw::CostBook& c = machine_.cost();
  // Sender pays the trap into the CPU driver; delivery happens split-phase.
  co_await machine_.Syscall(core_);
  const Cycles deliver_cost = c.dispatch + c.lrpc_user_path;
  auto deliver = [this, ep, msg, deliver_cost] {
    machine_.exec().Spawn([](CpuDriver* self, EndpointId e, LrpcMsg m,
                             Cycles cost) -> Task<> {
      const Cycles start = self->machine_.exec().now();
      co_await self->machine_.Compute(self->core_, cost);
      trace::EmitSpan<trace::Category::kKernel>(trace::EventId::kLrpcDeliver, start,
                                                self->machine_.exec().now(), self->core_,
                                                static_cast<std::uint64_t>(e));
      ++self->messages_delivered_;
      co_await self->endpoints_[e].handler(m);
    }(this, ep, msg, deliver_cost));
  };
  // Per-message delivery closure: must stay within the executor's inline
  // callback budget or every LRPC send would heap-allocate.
  static_assert(sizeof(deliver) <= sim::InlineCallback::kInlineBytes);
  machine_.exec().CallAt(machine_.exec().now(), std::move(deliver));
}

Task<> CpuDriver::LrpcCall(EndpointId ep, LrpcMsg msg) {
  if (ep >= endpoints_.size()) {
    throw std::out_of_range("LrpcCall: bad endpoint");
  }
  const hw::CostBook& c = machine_.cost();
  // One-way user-to-user path: syscall entry, kernel dispatch of the target
  // dispatcher, scheduler activation + user-level message dispatch.
  const Cycles start = machine_.exec().now();
  co_await machine_.Syscall(core_);
  co_await machine_.Compute(core_, c.dispatch + c.lrpc_user_path);
  trace::EmitSpan<trace::Category::kKernel>(trace::EventId::kLrpcCall, start,
                                            machine_.exec().now(), core_,
                                            static_cast<std::uint64_t>(ep));
  ++messages_delivered_;
  co_await endpoints_[ep].handler(msg);
}

CpuDriver::WakeToken CpuDriver::RegisterBlocked(sim::Event* wake_event) {
  WakeToken token = next_token_++;
  blocked_[token] = wake_event;
  return token;
}

void CpuDriver::CancelBlocked(WakeToken token) { blocked_.erase(token); }

bool CpuDriver::IsBlocked(WakeToken token) const { return blocked_.count(token) != 0; }

Task<> CpuDriver::SendWakeupIpi(CpuDriver& target, WakeToken token) {
  // The token rides in the IPI payload; the receive side looks it up in its
  // own blocked table, so a stale or reordered wake-up can never resume the
  // wrong task.
  co_await machine_.ipi().Send(core_, target.core_, kVectorWakeup, token);
}

void CpuDriver::HandleIpi(int vector, std::uint64_t payload) {
  if (vector == kVectorWakeup) {
    if (payload == 0) {
      return;  // no token: nothing was ever registered for this IPI
    }
    machine_.exec().Spawn(DeliverWakeup(payload));
  }
}

Task<> CpuDriver::DeliverWakeup(WakeToken token) {
  // The receive side of the paper's wake-up constant C: trap entry plus a
  // context switch back to the blocked dispatcher.
  const Cycles start = machine_.exec().now();
  co_await machine_.Trap(core_);
  co_await machine_.Compute(core_, machine_.cost().context_switch + machine_.cost().dispatch);
  trace::EmitSpan<trace::Category::kKernel>(trace::EventId::kUpcall, start,
                                            machine_.exec().now(), core_,
                                            static_cast<std::uint64_t>(token));
  auto it = blocked_.find(token);
  if (it != blocked_.end()) {
    sim::Event* ev = it->second;
    blocked_.erase(it);
    ev->Signal();
  }
}

std::vector<std::unique_ptr<CpuDriver>> CpuDriver::BootAll(hw::Machine& machine) {
  std::vector<std::unique_ptr<CpuDriver>> drivers;
  drivers.reserve(machine.num_cores());
  for (int c = 0; c < machine.num_cores(); ++c) {
    drivers.push_back(std::make_unique<CpuDriver>(machine, c));
  }
  return drivers;
}

}  // namespace mk::kernel
