// CPU driver: the privileged-mode, per-core half of an OS node (section 4.3).
//
// Like Barrelfish's CPU driver it is purely local to its core, event-driven,
// single-threaded and nonpreemptable: it serially processes traps from user
// tasks and interrupts from devices or other cores. It performs dispatch and
// fast same-core messaging (LRPC), delivers hardware interrupts as messages,
// and shares no state with other cores.
//
// Simulated user-level activities are coroutines; the CPU driver's role in
// the model is (a) charging the kernel-path costs (syscall, dispatch,
// activation) on its core so they serialize with other work there, and (b)
// owning the wake-up path for tasks blocked on inter-core messages.
#ifndef MK_KERNEL_CPU_DRIVER_H_
#define MK_KERNEL_CPU_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::kernel {

using sim::Cycles;
using sim::Task;

// A register-passed message, as on the LRPC fast path (fits in registers; no
// memory marshaling).
struct LrpcMsg {
  std::uint64_t tag = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
};

using EndpointId = std::uint32_t;

// IPI vectors used by the kernel.
inline constexpr int kVectorWakeup = 0xf0;

class CpuDriver {
 public:
  using Handler = std::function<Task<>(const LrpcMsg&)>;

  CpuDriver(hw::Machine& machine, int core);
  CpuDriver(const CpuDriver&) = delete;
  CpuDriver& operator=(const CpuDriver&) = delete;

  int core() const { return core_; }
  hw::Machine& machine() { return machine_; }

  // Binds a handler to a new same-core endpoint. The handler runs "inside"
  // the destination dispatcher: invocation charges the dispatch + activation
  // path on this core before the handler body executes.
  EndpointId RegisterEndpoint(Handler handler, std::string name = {});

  // Asynchronous (split-phase) same-core IPC: the sender is charged the
  // system-call entry and continues; the message is delivered through the
  // run queue. Section 4.3's default facility.
  Task<> LrpcSend(EndpointId ep, LrpcMsg msg);

  // Synchronous LRPC fast path (the Table 1 primitive): charges the full
  // one-way path — syscall + dispatch + scheduler-activation/user dispatch —
  // then runs the handler. Returns when the handler completes.
  Task<> LrpcCall(EndpointId ep, LrpcMsg msg);

  // One-way LRPC user-to-user latency on this platform (for calibration).
  Cycles LrpcOneWayCost() const;

  // --- Blocking / wakeup for inter-core messaging (section 4.6) ---
  //
  // A task that polled its channels for the poll window without receiving a
  // message blocks: it registers here and sleeps. A remote core's CPU driver
  // then sends a wake-up IPI naming the registration; delivery costs the
  // receive-side trap plus a context switch (the paper's constant C).

  using WakeToken = std::uint64_t;
  WakeToken RegisterBlocked(sim::Event* wake_event);
  void CancelBlocked(WakeToken token);
  bool IsBlocked(WakeToken token) const;

  // Sends a wake-up IPI from this core to `target`'s core. The token names
  // the blocked registration on the target driver and travels in the IPI
  // payload, so concurrent wake-ups from senders at different hop distances
  // can never be delivered to the wrong waiter (they used to be matched
  // FIFO against send order, which wire reordering could invert).
  Task<> SendWakeupIpi(CpuDriver& target, WakeToken token);

  // Number of tasks currently registered as blocked (invariant checks: a
  // quiesced run must leave none behind).
  std::size_t blocked_count() const { return blocked_.size(); }

  // Total cycles this core spent in the idle loop (power proxy).
  Cycles idle_cycles() const { return idle_cycles_; }

  // Number of endpoint messages processed.
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  // Creates one driver per core of the machine.
  static std::vector<std::unique_ptr<CpuDriver>> BootAll(hw::Machine& machine);

 private:
  struct Endpoint {
    Handler handler;
    std::string name;
  };

  void HandleIpi(int vector, std::uint64_t payload);
  Task<> DeliverWakeup(WakeToken token);

  hw::Machine& machine_;
  int core_;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<WakeToken, sim::Event*> blocked_;
  WakeToken next_token_ = 1;
  Cycles idle_cycles_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace mk::kernel

#endif  // MK_KERNEL_CPU_DRIVER_H_
