// URPC: user-level RPC over shared-memory cache lines (section 4.6).
//
// A channel is a region of (simulated) shared memory used to transfer
// cache-line-sized messages point-to-point between a single writer core and a
// single reader core. The implementation reproduces the paper's fast path:
// the sender writes the message into a 64-byte line (invalidating the
// receiver's copy — one interconnect round trip); the receiver polls the line
// and re-fetches it on its next poll (the second round trip). Pipelined sends
// retire through the store buffer; receivers may enable the stride-prefetch
// optimization at channel-setup time for throughput-oriented workloads.
//
// Receiving is by polling. A receiver unwilling to spin forever polls for a
// bounded window and then blocks, registering with its local CPU driver; the
// sender observes the receiver-blocked flag and posts a wake-up IPI, costing
// the paper's constant C on the receive side (section 5.2).
#ifndef MK_URPC_CHANNEL_H_
#define MK_URPC_CHANNEL_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>
#include <type_traits>

#include "hw/machine.h"
#include "kernel/cpu_driver.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::urpc {

using sim::Addr;
using sim::Cycles;
using sim::Task;

// One cache-line message: 56 payload bytes plus a header word (tag/sequence).
struct Message {
  static constexpr std::size_t kPayloadBytes = 56;
  std::uint64_t tag = 0;
  std::uint32_t len = 0;
  std::array<std::byte, kPayloadBytes> bytes{};
};

// Packs a trivially-copyable value into a message payload.
template <typename T>
Message Pack(std::uint64_t tag, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "URPC payloads must be trivially copyable");
  static_assert(sizeof(T) <= Message::kPayloadBytes, "URPC payload exceeds one cache line");
  Message m;
  m.tag = tag;
  m.len = sizeof(T);
  std::memcpy(m.bytes.data(), &value, sizeof(T));
  return m;
}

template <typename T>
T Unpack(const Message& m) {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) <= Message::kPayloadBytes);
  T value;
  std::memcpy(&value, m.bytes.data(), sizeof(T));
  return value;
}

// Channel construction options.
struct ChannelOptions {
  int slots = 16;         // ring size == flow-control window (paper's queue)
  bool prefetch = false;  // receiver uses prefetched poll reads (setup-time opt)
  int numa_node = -1;     // home node of the buffer; -1 = sender's package
};

class Channel {
 public:

  Channel(hw::Machine& machine, int sender_core, int receiver_core,
          ChannelOptions opts = ChannelOptions());
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  int sender_core() const { return sender_; }
  int receiver_core() const { return receiver_; }
  const ChannelOptions& options() const { return opts_; }

  // --- Sender side ---

  // Synchronous send: completes once the slot line's ownership has moved to
  // the sender (full invalidation round trip). Lowest latency signal.
  Task<> Send(Message msg);

  // Pipelined send: the store retires through the store buffer and the
  // sender continues; used for batched/streamed messaging.
  Task<> SendPosted(Message msg);

  // --- Receiver side ---

  // Polls until a message is available (the line stays cached until the
  // sender invalidates it, so waiting itself is free; the re-fetch on arrival
  // is charged). Spins forever: use RecvBlocking for the poll-then-block
  // discipline.
  Task<Message> Recv();

  // Polls for `poll_window` cycles, then blocks via the local CPU driver and
  // is woken by the sender's IPI (costing trap + context switch on this
  // core). Drivers are those of the receiver and sender cores.
  Task<Message> RecvBlocking(kernel::CpuDriver& local, kernel::CpuDriver& sender_driver,
                             Cycles poll_window);

  // RecvBlocking with a bound on the blocked wait: returns nullopt if no
  // message arrives within `timeout` cycles of blocking. This is the recovery
  // path for receivers whose sender may have fail-stop halted (a plain
  // RecvBlocking would sleep forever); the registration is cancelled on
  // timeout so no blocked-waiter entry leaks.
  Task<std::optional<Message>> RecvTimeout(kernel::CpuDriver& local,
                                           kernel::CpuDriver& sender_driver,
                                           Cycles poll_window, Cycles timeout);

  // Non-blocking: if a message is pending, receives it (charging the fetch)
  // and returns true.
  Task<bool> TryRecv(Message* out);

  // Zero-cost peek used by select loops; the paid fetch happens in TryRecv.
  bool HasMessage() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  // Signaled on every message arrival; monitors subscribe their select loops.
  sim::Event& readable() { return readable_; }

  // Invoked (zero-cost) on every message arrival; used by monitor select
  // loops to consolidate many channels into one wake-up signal.
  void SetDataHook(std::function<void()> hook) { on_data_ = std::move(hook); }

  // Messages the sender may still write before the window fills.
  int SendCredits() const;

 private:
  Task<> SendCommon(Message msg, bool posted);
  Task<> WaitForCredit();
  Task<Message> Consume();
  Addr SlotAddr(std::uint64_t seq) const {
    return base_ + (seq % static_cast<std::uint64_t>(opts_.slots)) * sim::kCacheLineBytes;
  }
  // Trace flow id of the message with sequence number `seq` on this channel.
  // The channel is a FIFO, so both endpoints derive the same id from their
  // own sequence counters — no id travels in the message.
  std::uint64_t FlowId(std::uint64_t seq) const {
    return trace::kFlowUrpc | (serial_ << 24) | (seq & 0xffffff);
  }

  hw::Machine& machine_;
  int sender_;
  int receiver_;
  ChannelOptions opts_;
  std::uint64_t serial_;  // process-unique id; namespaces trace flow ids
  Addr base_ = 0;          // ring of `slots` lines
  Addr ack_addr_ = 0;      // receiver -> sender consumption counter
  Addr blocked_addr_ = 0;  // receiver-blocked flag
  std::deque<Message> queue_;
  std::uint64_t seq_sent_ = 0;
  std::uint64_t seq_received_ = 0;
  std::uint64_t acked_ = 0;        // receiver's last published consumption count
  std::uint64_t sender_seen_ack_ = 0;
  bool receiver_blocked_ = false;
  kernel::CpuDriver::WakeToken wake_token_ = 0;
  kernel::CpuDriver* receiver_driver_ = nullptr;
  kernel::CpuDriver* sender_driver_ = nullptr;
  sim::Event readable_;
  sim::Event credit_;
  std::function<void()> on_data_;
};

}  // namespace mk::urpc

#endif  // MK_URPC_CHANNEL_H_
