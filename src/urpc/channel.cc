#include "urpc/channel.h"

#include <stdexcept>

namespace mk::urpc {

// Channel serial numbers namespace trace flow ids: the sender's and
// receiver's records for one message share the flow (serial, sequence). The
// serial comes from the owning machine — never a process-wide counter, which
// would make one domain's flow ids depend on what other domains construct
// (and race under the parallel engine). It advances on every construction,
// traced or not, so tracing cannot perturb a run.
Channel::Channel(hw::Machine& machine, int sender_core, int receiver_core,
                 ChannelOptions opts)
    : machine_(machine), sender_(sender_core), receiver_(receiver_core), opts_(opts),
      serial_(machine.NextChannelSerial()),
      readable_(machine.exec()), credit_(machine.exec()) {
  if (opts_.slots < 1) {
    throw std::invalid_argument("Channel: need at least one slot");
  }
  int node = opts_.numa_node >= 0 ? opts_.numa_node : machine_.topo().PackageOf(sender_);
  base_ = machine_.mem().AllocLines(node, static_cast<std::uint64_t>(opts_.slots));
  ack_addr_ = machine_.mem().AllocLines(node, 1);
  blocked_addr_ = machine_.mem().AllocLines(node, 1);
}

int Channel::SendCredits() const {
  return opts_.slots - static_cast<int>(seq_sent_ - sender_seen_ack_);
}

Task<> Channel::WaitForCredit() {
  while (SendCredits() <= 0) {
    // The window is full: re-read the ack line (the receiver publishes its
    // consumption counter there; its write invalidated our copy).
    co_await machine_.mem().Read(sender_, ack_addr_);
    sender_seen_ack_ = acked_;
    if (SendCredits() > 0) {
      break;
    }
    co_await credit_.Wait();
  }
}

Task<> Channel::SendCommon(Message msg, bool posted) {
  const Cycles start = machine_.exec().now();
  co_await WaitForCredit();
  Addr slot = SlotAddr(seq_sent_);
  if (posted) {
    co_await machine_.mem().WritePosted(sender_, slot);
  } else {
    co_await machine_.mem().Write(sender_, slot);
  }
  const std::uint64_t flow = FlowId(seq_sent_);
  ++seq_sent_;
  queue_.push_back(msg);
  trace::EmitSpan<trace::Category::kUrpc>(trace::EventId::kUrpcSend, start,
                                          machine_.exec().now(), sender_, msg.tag, flow,
                                          trace::Phase::kSpanFlowOut);
  readable_.Signal();
  if (on_data_) {
    on_data_();
  }
  // Check the receiver-blocked flag (normally a cached read) and post a
  // wake-up IPI if the receiver went to sleep.
  co_await machine_.mem().Read(sender_, blocked_addr_);
  if (receiver_blocked_ && sender_driver_ != nullptr && receiver_driver_ != nullptr) {
    receiver_blocked_ = false;
    trace::Emit<trace::Category::kUrpc>(trace::EventId::kUrpcWake, machine_.exec().now(),
                                        sender_, static_cast<std::uint64_t>(receiver_));
    co_await sender_driver_->SendWakeupIpi(*receiver_driver_, wake_token_);
  }
}

// Return the inner task directly instead of wrapping it in another
// coroutine: one fewer frame allocation per message on the send fast path.
Task<> Channel::Send(Message msg) { return SendCommon(msg, /*posted=*/false); }

Task<> Channel::SendPosted(Message msg) { return SendCommon(msg, /*posted=*/true); }

Task<Message> Channel::Consume() {
  const Cycles start = machine_.exec().now();
  // Claim the message before any suspension so a second consumer resuming
  // from its own charged read cannot double-pop (the channel is logically
  // single-reader, but select loops may race a Recv with a TryRecv).
  Message msg = queue_.front();
  queue_.pop_front();
  Addr slot = SlotAddr(seq_received_);
  const std::uint64_t flow = FlowId(seq_received_);
  ++seq_received_;
  // Fetch the slot line the sender just wrote (the second round trip of the
  // fast path).
  if (opts_.prefetch) {
    co_await machine_.mem().ReadPrefetched(receiver_, slot);
  } else {
    co_await machine_.mem().Read(receiver_, slot);
  }
  // Publish consumption lazily: one posted ack write per half-window keeps
  // the reverse traffic off the fast path.
  std::uint64_t window = static_cast<std::uint64_t>(opts_.slots);
  if (seq_received_ - acked_ >= (window + 1) / 2) {
    acked_ = seq_received_;
    co_await machine_.mem().WritePosted(receiver_, ack_addr_);
    credit_.Signal();
  }
  trace::EmitSpan<trace::Category::kUrpc>(trace::EventId::kUrpcRecv, start,
                                          machine_.exec().now(), receiver_, msg.tag, flow,
                                          trace::Phase::kSpanFlowIn);
  co_return msg;
}

Task<Message> Channel::Recv() {
  while (queue_.empty()) {
    co_await readable_.Wait();
  }
  co_return co_await Consume();
}

Task<bool> Channel::TryRecv(Message* out) {
  if (queue_.empty()) {
    co_return false;
  }
  *out = co_await Consume();
  co_return true;
}

Task<Message> Channel::RecvBlocking(kernel::CpuDriver& local, kernel::CpuDriver& sender_driver,
                                    Cycles poll_window) {
  receiver_driver_ = &local;
  sender_driver_ = &sender_driver;
  if (queue_.empty()) {
    bool arrived = false;
    if (poll_window > 0) {
      arrived = co_await readable_.WaitTimeout(poll_window);
    }
    if (!arrived && queue_.empty()) {
      // Block: publish the blocked flag (posted store to the flag line, which
      // the sender polls cheaply), register for wake-up, and sleep.
      sim::Event wake(machine_.exec());
      wake_token_ = local.RegisterBlocked(&wake);
      receiver_blocked_ = true;
      co_await machine_.mem().WritePosted(receiver_, blocked_addr_);
      if (queue_.empty()) {  // re-check: a message may have landed meanwhile
        trace::Emit<trace::Category::kUrpc>(trace::EventId::kUrpcBlock,
                                            machine_.exec().now(), receiver_);
        co_await wake.Wait();
      } else {
        // The message landed between RegisterBlocked and the posted flag
        // write. Cancel the registration and invalidate the published token:
        // a sender that already sampled the blocked flag may still post a
        // wake-up IPI, and it must carry a token that maps to nothing rather
        // than a token a future blocker could be reissued. (Wake-up IPIs
        // carry their token in the payload for the same reason: tokens
        // matched FIFO against arrival order could wake the wrong task when
        // senders sit at different hop distances.)
        local.CancelBlocked(wake_token_);
        wake_token_ = 0;
      }
      receiver_blocked_ = false;
    }
  }
  while (queue_.empty()) {
    co_await readable_.Wait();  // spurious wake-up guard
  }
  co_return co_await Consume();
}

Task<std::optional<Message>> Channel::RecvTimeout(kernel::CpuDriver& local,
                                                  kernel::CpuDriver& sender_driver,
                                                  Cycles poll_window, Cycles timeout) {
  receiver_driver_ = &local;
  sender_driver_ = &sender_driver;
  if (queue_.empty()) {
    bool arrived = false;
    if (poll_window > 0) {
      arrived = co_await readable_.WaitTimeout(poll_window);
    }
    if (!arrived && queue_.empty()) {
      sim::Event wake(machine_.exec());
      wake_token_ = local.RegisterBlocked(&wake);
      receiver_blocked_ = true;
      co_await machine_.mem().WritePosted(receiver_, blocked_addr_);
      if (queue_.empty()) {
        trace::Emit<trace::Category::kUrpc>(trace::EventId::kUrpcBlock,
                                            machine_.exec().now(), receiver_);
        bool woken = co_await wake.WaitTimeout(timeout);
        if (!woken) {
          // Timed out: deregister before `wake` dies with this frame so a
          // late wake-up IPI finds no registration instead of a dangling
          // event pointer.
          local.CancelBlocked(wake_token_);
          wake_token_ = 0;
          receiver_blocked_ = false;
          if (queue_.empty()) {
            co_return std::nullopt;
          }
        }
      } else {
        local.CancelBlocked(wake_token_);
        wake_token_ = 0;
      }
      receiver_blocked_ = false;
    }
  }
  while (queue_.empty()) {
    // Spurious wake-up guard, still bounded: the sender may have died after
    // waking us but before writing the message.
    bool ok = co_await readable_.WaitTimeout(timeout);
    if (!ok && queue_.empty()) {
      co_return std::nullopt;
    }
  }
  co_return co_await Consume();
}

}  // namespace mk::urpc
