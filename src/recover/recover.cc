#include "recover/recover.h"

#include "trace/trace.h"

namespace mk::recover {

MembershipService::MembershipService(monitor::MonitorSystem& sys) : sys_(sys) {
  view_.live.resize(static_cast<std::size_t>(sys.num_cores()));
  for (int c = 0; c < sys.num_cores(); ++c) {
    view_.live[static_cast<std::size_t>(c)] = sys.IsOnline(c);
  }
  sys_.SetExclusionHook([this](int dead_core) { OnExclusion(dead_core); });
}

MembershipService::~MembershipService() { sys_.SetExclusionHook(nullptr); }

void MembershipService::OnExclusion(int dead_core) {
  pending_.push_back(dead_core);
  if (!worker_running_) {
    worker_running_ = true;
    sys_.machine().exec().Spawn(Worker());
  }
}

sim::Task<> MembershipService::Worker() {
  while (!pending_.empty()) {
    int dead = pending_.front();
    pending_.pop_front();
    co_await ViewChange(dead);
  }
  worker_running_ = false;
}

sim::Task<> MembershipService::ViewChange(int dead_core) {
  // The agreement initiator is the lowest live core — a deterministic choice
  // every survivor computes identically from the post-exclusion liveness map
  // (the monitor marked `dead_core` offline before the hook fired).
  int initiator = -1;
  for (int c = 0; c < sys_.num_cores(); ++c) {
    if (sys_.IsOnline(c)) {
      initiator = c;
      break;
    }
  }
  if (initiator < 0 || !sys_.running()) {
    co_return;  // nothing left to agree, or the system is shutting down
  }
  const std::uint64_t proposed = view_.epoch + 1;
  sim::Cycles now = sys_.machine().exec().now();
  trace::Emit<trace::Category::kRecover>(trace::EventId::kRecoverViewPropose, now,
                                         initiator, proposed,
                                         static_cast<std::uint64_t>(dead_core));
  // One agreement round over the survivors, on the same multicast machinery
  // the monitors use for hotplug view changes. Under injection the round is
  // phase-timeout protected; a timeout excludes further dead cores (queued
  // behind this change by the exclusion hook) and the round still counts as
  // agreement among whoever remains.
  monitor::OpMsg msg;
  msg.kind = monitor::OpKind::kPing;
  msg.proto = monitor::Protocol::kNumaMulticast;
  msg.source = static_cast<std::uint16_t>(initiator);
  (void)co_await sys_.on(initiator).RunCollectiveForTest(msg);

  view_.epoch = proposed;
  for (int c = 0; c < sys_.num_cores(); ++c) {
    view_.live[static_cast<std::size_t>(c)] = sys_.IsOnline(c);
  }
  ++committed_;
  trace::Emit<trace::Category::kRecover>(
      trace::EventId::kRecoverViewCommit, sys_.machine().exec().now(), initiator,
      view_.epoch, static_cast<std::uint64_t>(view_.NumLive()));
  // Failover actions run in subscription order, on this task: NIC re-steer
  // first, then flow adoption, then DB re-point/respawn — deterministic and
  // sequential so replays are bit-identical.
  for (Subscriber& s : subscribers_) {
    co_await s(view_, dead_core);
  }
}

}  // namespace mk::recover
