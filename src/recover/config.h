// Recovery tuning knobs, collected in one place.
//
// PR 3 armed the recovery machinery (2PC phase timeouts, heartbeats, URPC
// receive timeouts, TCP retransmission) with constants scattered across
// monitor.h and stack.h; tightening a timeout for a test meant editing a
// header and rebuilding the world. RecoveryConfig gathers them into one
// documented struct with the historical values as defaults, read at the use
// sites through Config(), so benches and tests can tighten or relax recovery
// behaviour at runtime (ScopedRecoveryConfig) without touching headers.
//
// All of these are consulted only while a fault::Injector is installed —
// plain runs wait unboundedly and schedule no timer events, which is what
// keeps the paper benches byte-identical (see DESIGN.md §8).
#ifndef MK_RECOVER_CONFIG_H_
#define MK_RECOVER_CONFIG_H_

#include "sim/types.h"

namespace mk::recover {

struct RecoveryConfig {
  // --- Monitor agreement (src/monitor) ---

  // How long a 2PC/collective initiator waits for a phase's acks before
  // presuming abort. Comfortably exceeds the slowest observed collective on
  // the modeled machines.
  sim::Cycles phase_timeout = 500'000;
  // How often non-initiating monitors sweep for dead peers (and how often the
  // membership service can first observe an exclusion).
  sim::Cycles heartbeat_period = 50'000;
  // 2PC conflict-retry budget: rounds of prepare/abort an initiator plays
  // before reporting kRetriesExhausted.
  int max_attempts = 12;

  // --- TCP (src/net/stack) ---

  // Initial retransmission timeout; doubles per consecutive unanswered round.
  sim::Cycles tcp_rto = 200'000;
  // Unanswered go-back-N rounds before the peer is presumed dead and the
  // connection's timer gives up.
  int tcp_max_retx = 8;

  // --- Sharded DB RPC (src/apps/dbshard over net::PacketChannel) ---

  // How long a web shard waits for its replica's reply before presuming the
  // replica dead and failing over to another live replica. Must exceed the
  // slowest legitimate query end-to-end (a full 30k-row TPC-W scan costs
  // ~755k cycles on the replica core alone), or healthy replicas get declared
  // dead under load.
  sim::Cycles db_rpc_timeout = 2'000'000;
  // Replica-failover retry budget: distinct replicas a query will try before
  // giving up (first attempt included).
  int db_max_attempts = 3;

  // --- Replicated read-write store (src/apps/store over URPC/PacketChannel) ---

  // How long the web tier waits for the shard leader's reply before retrying.
  // Writes pay WAL append (a machine-wide collective) plus log shipping plus
  // a follower durability ack before the leader responds, so this sits above
  // db_rpc_timeout.
  sim::Cycles store_rpc_timeout = 3'000'000;
  // Write/read retry budget at the web tier (first attempt included). Retries
  // reuse the client write id, so a write that committed but lost its ack is
  // answered "dup" rather than applied twice.
  int store_max_attempts = 4;
  // Leader's per-wait bound on follower durability acks; each expiry
  // re-checks which followers are still live before waiting again.
  sim::Cycles store_commit_timeout = 500'000;
  // Respawned-replica catch-up: pause between WAL replay rounds while the
  // follower closes the gap to the leader's last assigned lsn.
  sim::Cycles store_catchup_poll = 100'000;
};

// The process-wide current configuration. The simulator is single-threaded;
// reads at the use sites see whatever the bench or test last installed.
inline RecoveryConfig& MutableRecoveryConfig() {
  static RecoveryConfig config;
  return config;
}

inline const RecoveryConfig& Config() { return MutableRecoveryConfig(); }

// RAII override: installs `c` for the scope, restores the previous values on
// destruction. Tests tighten timeouts with this so suites stay fast.
class ScopedRecoveryConfig {
 public:
  explicit ScopedRecoveryConfig(const RecoveryConfig& c)
      : saved_(MutableRecoveryConfig()) {
    MutableRecoveryConfig() = c;
  }
  ScopedRecoveryConfig(const ScopedRecoveryConfig&) = delete;
  ScopedRecoveryConfig& operator=(const ScopedRecoveryConfig&) = delete;
  ~ScopedRecoveryConfig() { MutableRecoveryConfig() = saved_; }

 private:
  RecoveryConfig saved_;
};

}  // namespace mk::recover

#endif  // MK_RECOVER_CONFIG_H_
