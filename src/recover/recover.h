// mk::recover — membership as a first-class, cross-subsystem input.
//
// The paper's fault-handling argument (§2.3, §7) is that a multikernel can
// "exploit insights from distributed systems": failure is a membership
// problem, and recovery is what the survivors do when the view changes. PR 3
// armed the detectors (heartbeats, 2PC presumed-abort, EvictCore) but their
// verdicts stayed 2PC-internal; this module publishes them.
//
// MembershipService sits on top of MonitorSystem: when the heartbeat sweep or
// a phase timeout excludes a fail-stop core, the service runs an epoch-
// numbered view change — propose, agree among the survivors using the same
// multicast collective machinery the monitors already use for hotplug
// (OpKind::kPing over the effective route), commit — and then notifies its
// subscribers in order with the new view and the dead core. Subscribers are
// the serving stack's failover actions: reprogram the NIC RSS indirection
// table, adopt orphaned flows, re-point DB clients, respawn replicas.
//
// Like the rest of the recovery machinery, everything here runs only while a
// fault::Injector is installed (exclusions cannot happen otherwise), so plain
// runs schedule no extra events and stay byte-identical.
#ifndef MK_RECOVER_RECOVER_H_
#define MK_RECOVER_RECOVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "monitor/monitor.h"
#include "sim/task.h"

namespace mk::recover {

// An epoch-numbered core-liveness map. Epochs advance by one per committed
// view change; `live[c]` is whether core c was in the view when it committed.
struct View {
  std::uint64_t epoch = 1;
  std::vector<bool> live;

  int NumLive() const {
    int n = 0;
    for (bool b : live) {
      n += b ? 1 : 0;
    }
    return n;
  }
};

class MembershipService {
 public:
  // Called once per committed view change, in subscription order, on the
  // view-change task. `dead_core` is the core this change excluded.
  using Subscriber = std::function<sim::Task<>(const View& view, int dead_core)>;

  // Hooks into `sys` (MonitorSystem::SetExclusionHook); the service must
  // outlive every view-change task it spawns — benches keep it alive until
  // the executor drains.
  explicit MembershipService(monitor::MonitorSystem& sys);
  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;
  ~MembershipService();

  void Subscribe(Subscriber fn) { subscribers_.push_back(std::move(fn)); }

  const View& view() const { return view_; }
  std::uint64_t view_changes_committed() const { return committed_; }

 private:
  // Exclusions arrive from the monitor hook; view changes are serialized so
  // concurrent exclusions commit distinct epochs in exclusion order.
  void OnExclusion(int dead_core);
  sim::Task<> Worker();
  sim::Task<> ViewChange(int dead_core);

  monitor::MonitorSystem& sys_;
  View view_;
  std::vector<Subscriber> subscribers_;
  std::deque<int> pending_;
  bool worker_running_ = false;
  std::uint64_t committed_ = 0;
};

}  // namespace mk::recover

#endif  // MK_RECOVER_RECOVER_H_
