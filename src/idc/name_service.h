// Name service (section 4.6): maps service names and properties to service
// references, which are used to establish channels to services.
//
// The registry is itself a service hosted on one core; registrations and
// lookups from other cores are charged as message round trips to that core
// (the registry's lines move through the coherence model).
//
// Domain affinity (sim/parallel.h): a NameService, the services it names,
// and every client calling Register/Lookup must all live in one engine
// domain — they share the registry machine's coherent memory synchronously.
// Locating a service in another domain is a distributed-systems problem,
// not a lookup: it goes over the network (net::CrossWire) to that domain's
// own registry, exactly as the paper's multikernel treats inter-machine
// name resolution.
#ifndef MK_IDC_NAME_SERVICE_H_
#define MK_IDC_NAME_SERVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::idc {

using sim::Cycles;
using sim::Task;

struct ServiceRef {
  std::string name;
  int core = 0;             // where the service's dispatcher runs
  std::uint32_t id = 0;     // assigned by the name service
  std::map<std::string, std::string> properties;
};

class NameService {
 public:
  explicit NameService(hw::Machine& machine, int registry_core = 0);

  int registry_core() const { return core_; }

  // Registers a service; returns its assigned reference.
  Task<ServiceRef> Register(int from_core, std::string name,
                            std::map<std::string, std::string> properties = {});

  // Looks up by exact name.
  Task<std::optional<ServiceRef>> Lookup(int from_core, const std::string& name);

  // Property query: all services whose properties contain `key` = `value`.
  Task<std::vector<ServiceRef>> Query(int from_core, const std::string& key,
                                      const std::string& value);

  // Removes a registration; true if it existed.
  Task<bool> Unregister(int from_core, std::uint32_t id);

  // Fail-stop recovery: drops every registration owned by `core` so clients
  // stop being handed references to services that can no longer answer.
  // Returns the number of registrations evicted. Also applied lazily — while
  // a fault::Injector is installed, Lookup and Query evict dead-core
  // registrations instead of returning them.
  std::size_t EvictCore(int core);

  std::size_t size() const { return by_id_.size(); }

 private:
  // True if the ref's owning core is fail-stopped (fault injection only).
  bool OwnerHalted(const ServiceRef& ref) const;
  // One registry round trip: request to the registry core, reply back.
  Task<> ChargeRoundTrip(int from_core);

  hw::Machine& machine_;
  int core_;
  sim::Addr registry_lines_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint32_t, ServiceRef> by_id_;
  std::map<std::string, std::uint32_t> by_name_;
};

}  // namespace mk::idc

#endif  // MK_IDC_NAME_SERVICE_H_
