#include "idc/service.h"

namespace mk::idc {

sim::Task<> ChargeChannelSetup(hw::Machine& machine, int client_core, int server_core) {
  const hw::CostBook& c = machine.cost();
  // Client LRPCs its monitor; the two monitors exchange a bind request and
  // reply; frame capabilities for the channel are installed on both sides.
  co_await machine.Compute(client_core, c.syscall + c.dispatch + c.msg_demux);
  sim::Addr handshake =
      machine.mem().AllocLines(machine.topo().PackageOf(server_core), 2);
  co_await machine.mem().Write(client_core, handshake);
  co_await machine.mem().Read(server_core, handshake);
  co_await machine.Compute(server_core, c.msg_demux + c.dispatch);
  co_await machine.mem().Write(server_core, handshake + sim::kCacheLineBytes);
  co_await machine.mem().Read(client_core, handshake + sim::kCacheLineBytes);
}

}  // namespace mk::idc
