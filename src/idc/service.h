// Typed inter-dispatcher RPC: what the paper's stub compiler generates
// (section 4.6: "marshaling code is generated using a stub compiler to
// simplify the construction of higher-level services"), as a C++ template
// library over URPC channels.
//
// A Service<Req, Resp> exports a named, typed interface; clients Connect by
// name (through the name service) and Call with automatic marshaling. The
// channel pair for a new binding is set up by the monitors: Connect charges
// the client-monitor / server-monitor handshake before the first call.
#ifndef MK_IDC_SERVICE_H_
#define MK_IDC_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "idc/name_service.h"
#include "sim/event.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk::idc {

// One client<->server channel pair.
struct Binding {
  std::unique_ptr<urpc::Channel> to_server;
  std::unique_ptr<urpc::Channel> to_client;
  int client_core = -1;
};

// Monitor-mediated channel setup cost: the client's monitor contacts the
// server's monitor, both bind endpoints, and capabilities to the channel
// frames are transferred (section 4.6 / 4.8).
sim::Task<> ChargeChannelSetup(hw::Machine& machine, int client_core, int server_core);

template <typename Req, typename Resp>
class Service {
  static_assert(std::is_trivially_copyable_v<Req> &&
                    sizeof(Req) <= urpc::Message::kPayloadBytes,
                "Req must fit a URPC message (use a frame capability for bulk)");
  static_assert(std::is_trivially_copyable_v<Resp> &&
                    sizeof(Resp) <= urpc::Message::kPayloadBytes,
                "Resp must fit a URPC message (use a frame capability for bulk)");

 public:
  using Handler = std::function<sim::Task<Resp>(const Req&)>;

  Service(hw::Machine& machine, NameService& names, int core, std::string name,
          Handler handler)
      : machine_(machine), names_(names), core_(core), name_(std::move(name)),
        handler_(std::move(handler)), bound_(machine.exec()) {}

  int core() const { return core_; }
  const std::string& name() const { return name_; }

  // Registers with the name service; spawn Serve() afterwards.
  sim::Task<> Export(std::map<std::string, std::string> properties = {}) {
    ref_ = co_await names_.Register(core_, name_, std::move(properties));
  }

  // The service dispatch loop: serves every binding until Stop().
  sim::Task<> Serve() {
    while (running_) {
      bool any = false;
      for (std::size_t i = 0; i < bindings_.size(); ++i) {
        urpc::Channel& rx = *bindings_[i]->to_server;
        urpc::Message msg;
        while (rx.HasMessage()) {
          (void)co_await rx.TryRecv(&msg);
          co_await machine_.Compute(core_, machine_.cost().msg_demux);
          Resp resp = co_await handler_(urpc::Unpack<Req>(msg));
          co_await bindings_[i]->to_client->Send(urpc::Pack(msg.tag, resp));
          any = true;
          ++calls_;
        }
      }
      if (!any) {
        co_await bound_.Wait();
      }
    }
  }

  void Stop() {
    running_ = false;
    bound_.Signal();
  }

  // Called by ServiceClient::Connect (via the monitors) to bind a client.
  Binding* Bind(int client_core) {
    auto binding = std::make_unique<Binding>();
    binding->client_core = client_core;
    binding->to_server = std::make_unique<urpc::Channel>(
        machine_, client_core, core_, BindOptions());
    binding->to_client = std::make_unique<urpc::Channel>(
        machine_, core_, client_core, BindOptions());
    binding->to_server->SetDataHook([this] { bound_.Signal(); });
    bindings_.push_back(std::move(binding));
    return bindings_.back().get();
  }

  std::uint64_t calls() const { return calls_; }
  std::size_t bindings() const { return bindings_.size(); }

 private:
  static urpc::ChannelOptions BindOptions() {
    urpc::ChannelOptions opts;
    opts.slots = 8;
    opts.prefetch = true;
    return opts;
  }

  hw::Machine& machine_;
  NameService& names_;
  int core_;
  std::string name_;
  Handler handler_;
  ServiceRef ref_;
  std::vector<std::unique_ptr<Binding>> bindings_;
  sim::Event bound_;
  bool running_ = true;
  std::uint64_t calls_ = 0;
};

template <typename Req, typename Resp>
class ServiceClient {
 public:
  // Looks the service up by name and establishes a binding through the
  // monitors. Returns nullptr if the name is unknown.
  static sim::Task<std::unique_ptr<ServiceClient>> Connect(hw::Machine& machine,
                                                           NameService& names,
                                                           Service<Req, Resp>& service,
                                                           int client_core) {
    auto ref = co_await names.Lookup(client_core, service.name());
    if (!ref) {
      co_return nullptr;
    }
    co_await ChargeChannelSetup(machine, client_core, ref->core);
    Binding* binding = service.Bind(client_core);
    co_return std::unique_ptr<ServiceClient>(
        new ServiceClient(machine, binding, client_core));
  }

  // Synchronous typed call: marshal, send, await the matching reply.
  sim::Task<Resp> Call(const Req& req) {
    std::uint64_t tag = next_tag_++;
    co_await binding_->to_server->Send(urpc::Pack(tag, req));
    urpc::Message reply = co_await binding_->to_client->Recv();
    co_return urpc::Unpack<Resp>(reply);
  }

  // Pipelined call: send without waiting; collect with Collect().
  sim::Task<> CallAsync(const Req& req) {
    co_await binding_->to_server->SendPosted(urpc::Pack(next_tag_++, req));
    ++outstanding_;
  }
  sim::Task<Resp> Collect() {
    urpc::Message reply = co_await binding_->to_client->Recv();
    --outstanding_;
    co_return urpc::Unpack<Resp>(reply);
  }
  int outstanding() const { return outstanding_; }

 private:
  ServiceClient(hw::Machine& machine, Binding* binding, int core)
      : machine_(machine), binding_(binding), core_(core) {}

  hw::Machine& machine_;
  Binding* binding_;
  int core_;
  std::uint64_t next_tag_ = 1;
  int outstanding_ = 0;
};

}  // namespace mk::idc

#endif  // MK_IDC_SERVICE_H_
