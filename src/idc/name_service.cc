#include "idc/name_service.h"

namespace mk::idc {

NameService::NameService(hw::Machine& machine, int registry_core)
    : machine_(machine), core_(registry_core) {
  registry_lines_ =
      machine_.mem().AllocLines(machine_.topo().PackageOf(core_), 8);
}

Task<> NameService::ChargeRoundTrip(int from_core) {
  if (from_core == core_) {
    // Local call into the registry library.
    co_await machine_.Compute(core_, machine_.cost().dispatch);
    co_return;
  }
  // Request message to the registry core, registry work, reply back.
  co_await machine_.mem().Write(from_core, registry_lines_);
  co_await machine_.mem().Read(core_, registry_lines_);
  co_await machine_.Compute(core_, machine_.cost().msg_demux);
  co_await machine_.mem().Write(core_, registry_lines_ + sim::kCacheLineBytes);
  co_await machine_.mem().Read(from_core, registry_lines_ + sim::kCacheLineBytes);
}

Task<ServiceRef> NameService::Register(int from_core, std::string name,
                                       std::map<std::string, std::string> properties) {
  co_await ChargeRoundTrip(from_core);
  ServiceRef ref;
  ref.name = std::move(name);
  ref.core = from_core;
  ref.id = next_id_++;
  ref.properties = std::move(properties);
  by_name_[ref.name] = ref.id;
  by_id_[ref.id] = ref;
  co_return ref;
}

Task<std::optional<ServiceRef>> NameService::Lookup(int from_core, const std::string& name) {
  co_await ChargeRoundTrip(from_core);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    co_return std::nullopt;
  }
  co_return by_id_.at(it->second);
}

Task<std::vector<ServiceRef>> NameService::Query(int from_core, const std::string& key,
                                                 const std::string& value) {
  co_await ChargeRoundTrip(from_core);
  std::vector<ServiceRef> out;
  for (const auto& [id, ref] : by_id_) {
    auto it = ref.properties.find(key);
    if (it != ref.properties.end() && it->second == value) {
      out.push_back(ref);
    }
  }
  co_return out;
}

Task<bool> NameService::Unregister(int from_core, std::uint32_t id) {
  co_await ChargeRoundTrip(from_core);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    co_return false;
  }
  by_name_.erase(it->second.name);
  by_id_.erase(it);
  co_return true;
}

}  // namespace mk::idc
