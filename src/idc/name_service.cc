#include "idc/name_service.h"

#include "fault/fault.h"
#include "trace/trace.h"

namespace mk::idc {

NameService::NameService(hw::Machine& machine, int registry_core)
    : machine_(machine), core_(registry_core) {
  registry_lines_ =
      machine_.mem().AllocLines(machine_.topo().PackageOf(core_), 8);
}

Task<> NameService::ChargeRoundTrip(int from_core) {
  if (from_core == core_) {
    // Local call into the registry library.
    co_await machine_.Compute(core_, machine_.cost().dispatch);
    co_return;
  }
  // Request message to the registry core, registry work, reply back.
  co_await machine_.mem().Write(from_core, registry_lines_);
  co_await machine_.mem().Read(core_, registry_lines_);
  co_await machine_.Compute(core_, machine_.cost().msg_demux);
  co_await machine_.mem().Write(core_, registry_lines_ + sim::kCacheLineBytes);
  co_await machine_.mem().Read(from_core, registry_lines_ + sim::kCacheLineBytes);
}

Task<ServiceRef> NameService::Register(int from_core, std::string name,
                                       std::map<std::string, std::string> properties) {
  co_await ChargeRoundTrip(from_core);
  ServiceRef ref;
  ref.name = std::move(name);
  ref.core = from_core;
  ref.id = next_id_++;
  ref.properties = std::move(properties);
  by_name_[ref.name] = ref.id;
  by_id_[ref.id] = ref;
  co_return ref;
}

bool NameService::OwnerHalted(const ServiceRef& ref) const {
  fault::Injector* inj = fault::Injector::active();
  return inj != nullptr && inj->CoreHalted(ref.core, machine_.exec().now());
}

std::size_t NameService::EvictCore(int core) {
  std::size_t evicted = 0;
  for (auto it = by_id_.begin(); it != by_id_.end();) {
    if (it->second.core == core) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultNsEvict,
                                           machine_.exec().now(), core_,
                                           static_cast<std::uint64_t>(core),
                                           it->second.id);
      by_name_.erase(it->second.name);
      it = by_id_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

Task<std::optional<ServiceRef>> NameService::Lookup(int from_core, const std::string& name) {
  co_await ChargeRoundTrip(from_core);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    co_return std::nullopt;
  }
  ServiceRef ref = by_id_.at(it->second);
  if (OwnerHalted(ref)) {
    // Lazy eviction: the owning core fail-stopped after registering. Drop
    // every registration it held and report the name as unbound.
    EvictCore(ref.core);
    co_return std::nullopt;
  }
  co_return ref;
}

Task<std::vector<ServiceRef>> NameService::Query(int from_core, const std::string& key,
                                                 const std::string& value) {
  co_await ChargeRoundTrip(from_core);
  std::vector<ServiceRef> out;
  std::vector<int> dead;
  for (const auto& [id, ref] : by_id_) {
    auto it = ref.properties.find(key);
    if (it != ref.properties.end() && it->second == value) {
      if (OwnerHalted(ref)) {
        dead.push_back(ref.core);
        continue;
      }
      out.push_back(ref);
    }
  }
  for (int core : dead) {
    EvictCore(core);
  }
  co_return out;
}

Task<bool> NameService::Unregister(int from_core, std::uint32_t id) {
  co_await ChargeRoundTrip(from_core);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    co_return false;
  }
  by_name_.erase(it->second.name);
  by_id_.erase(it);
  co_return true;
}

}  // namespace mk::idc
