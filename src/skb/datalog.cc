#include "skb/datalog.h"

#include <cctype>
#include <map>
#include <set>

namespace mk::skb {
namespace {

// Binding environment: variable name -> value.
using Env = std::map<std::string, std::int64_t>;

bool Unify(const Atom& atom, const std::vector<std::int64_t>& tuple, Env* env) {
  if (atom.terms.size() != tuple.size()) {
    return false;
  }
  Env local = *env;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = atom.terms[i];
    if (!t.is_var) {
      if (t.constant != tuple[i]) {
        return false;
      }
      continue;
    }
    auto it = local.find(t.var);
    if (it == local.end()) {
      local[t.var] = tuple[i];
    } else if (it->second != tuple[i]) {
      return false;
    }
  }
  *env = std::move(local);
  return true;
}

// Recursively matches body atoms, collecting grounded head tuples.
void Solve(const FactStore& facts, const Rule& rule, std::size_t body_index, Env env,
           std::vector<std::vector<std::int64_t>>* results) {
  if (body_index == rule.body.size()) {
    std::vector<std::int64_t> head;
    for (const Term& t : rule.head.terms) {
      if (t.is_var) {
        auto it = env.find(t.var);
        if (it == env.end()) {
          return;  // unsafe rule: unbound head variable; derive nothing
        }
        head.push_back(it->second);
      } else {
        head.push_back(t.constant);
      }
    }
    results->push_back(std::move(head));
    return;
  }
  const Atom& atom = rule.body[body_index];
  // Build the most-specific query pattern from current bindings.
  std::vector<std::int64_t> pattern;
  for (const Term& t : atom.terms) {
    if (!t.is_var) {
      pattern.push_back(t.constant);
    } else {
      auto it = env.find(t.var);
      pattern.push_back(it == env.end() ? FactStore::kWildcard : it->second);
    }
  }
  for (const auto& tuple : facts.Query(atom.relation, pattern)) {
    Env extended = env;
    if (Unify(atom, tuple, &extended)) {
      Solve(facts, rule, body_index + 1, std::move(extended), results);
    }
  }
}

struct Parser {
  explicit Parser(const std::string& text) : s(text) {}

  void SkipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  bool Literal(const char* lit) {
    SkipWs();
    std::size_t len = std::string(lit).size();
    if (s.compare(pos, len, lit) == 0) {
      pos += len;
      return true;
    }
    return false;
  }

  std::optional<Atom> ParseAtom() {
    SkipWs();
    std::string name;
    while (pos < s.size() && (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '_')) {
      name += s[pos++];
    }
    if (name.empty() || !Literal("(")) {
      return std::nullopt;
    }
    Atom atom;
    atom.relation = name;
    while (true) {
      SkipWs();
      if (pos >= s.size()) {
        return std::nullopt;
      }
      if (std::isupper(static_cast<unsigned char>(s[pos]))) {
        std::string var;
        while (pos < s.size() && (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                                  s[pos] == '_')) {
          var += s[pos++];
        }
        atom.terms.push_back(Term::Var(std::move(var)));
      } else if (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '-') {
        std::string num;
        if (s[pos] == '-') {
          num += s[pos++];
        }
        while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
          num += s[pos++];
        }
        atom.terms.push_back(Term::Const(std::stoll(num)));
      } else {
        return std::nullopt;
      }
      if (Literal(",")) {
        continue;
      }
      if (Literal(")")) {
        break;
      }
      return std::nullopt;
    }
    return atom;
  }

  const std::string& s;
  std::size_t pos = 0;
};

}  // namespace

std::optional<Rule> Datalog::Parse(const std::string& text) {
  Parser p(text);
  Rule rule;
  auto head = p.ParseAtom();
  if (!head) {
    return std::nullopt;
  }
  rule.head = std::move(*head);
  if (!p.Literal(":-")) {
    return std::nullopt;
  }
  while (true) {
    auto atom = p.ParseAtom();
    if (!atom) {
      return std::nullopt;
    }
    rule.body.push_back(std::move(*atom));
    if (p.Literal(",")) {
      continue;
    }
    break;
  }
  (void)p.Literal(".");
  p.SkipWs();
  if (p.pos != text.size()) {
    return std::nullopt;
  }
  return rule;
}

bool Datalog::AddRuleText(const std::string& text) {
  auto rule = Parse(text);
  if (!rule) {
    return false;
  }
  AddRule(std::move(*rule));
  return true;
}

std::size_t Datalog::Evaluate() {
  std::size_t added_total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules_) {
      std::vector<std::vector<std::int64_t>> derived;
      Solve(facts_, rule, 0, Env{}, &derived);
      // Deduplicate against the store.
      std::set<std::vector<std::int64_t>> existing;
      for (const auto& t : facts_.All(rule.head.relation)) {
        existing.insert(t);
      }
      for (auto& tuple : derived) {
        if (existing.insert(tuple).second) {
          facts_.Assert(rule.head.relation, tuple);
          ++added_total;
          changed = true;
        }
      }
    }
  }
  return added_total;
}

}  // namespace mk::skb
