#include "skb/skb.h"

#include <algorithm>

namespace mk::skb {

void FactStore::Assert(const std::string& relation, std::vector<std::int64_t> args) {
  relations_[relation].push_back(std::move(args));
}

std::vector<std::vector<std::int64_t>> FactStore::Query(
    const std::string& relation, const std::vector<std::int64_t>& pattern) const {
  std::vector<std::vector<std::int64_t>> out;
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return out;
  }
  for (const auto& tuple : it->second) {
    if (tuple.size() != pattern.size()) {
      continue;
    }
    bool match = true;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      if (pattern[i] != kWildcard && pattern[i] != tuple[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(tuple);
    }
  }
  return out;
}

std::vector<std::vector<std::int64_t>> FactStore::All(const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? std::vector<std::vector<std::int64_t>>{} : it->second;
}

std::size_t FactStore::Retract(const std::string& relation,
                               const std::vector<std::int64_t>& pattern) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return 0;
  }
  std::size_t before = it->second.size();
  it->second.erase(
      std::remove_if(it->second.begin(), it->second.end(),
                     [&](const std::vector<std::int64_t>& tuple) {
                       if (tuple.size() != pattern.size()) {
                         return false;
                       }
                       for (std::size_t i = 0; i < tuple.size(); ++i) {
                         if (pattern[i] != kWildcard && pattern[i] != tuple[i]) {
                           return false;
                         }
                       }
                       return true;
                     }),
      it->second.end());
  return before - it->second.size();
}

std::size_t FactStore::size() const {
  std::size_t n = 0;
  for (const auto& [name, tuples] : relations_) {
    n += tuples.size();
  }
  return n;
}

Skb::Skb(hw::Machine& machine) : machine_(machine) {}

void Skb::PopulateFromHardware() {
  const hw::Topology& topo = machine_.topo();
  for (int p = 0; p < topo.num_packages(); ++p) {
    facts_.Assert("package", {p});
    facts_.Assert("numa_region", {p});
  }
  for (int c = 0; c < topo.num_cores(); ++c) {
    facts_.Assert("core", {c, topo.PackageOf(c)});
    facts_.Assert("core_speed_milli",
                  {c, static_cast<std::int64_t>(machine_.spec().SpeedOf(c) * 1000)});
  }
  for (auto [a, b] : topo.links()) {
    facts_.Assert("link", {a, b});
  }
  for (int a = 0; a < topo.num_cores(); ++a) {
    for (int b = a + 1; b < topo.num_cores(); ++b) {
      if (topo.SharesCache(a, b)) {
        facts_.Assert("shares_cache", {a, b});
      }
    }
  }
}

Task<> Skb::MeasureUrpcLatencies() {
  const hw::Topology& topo = machine_.topo();
  hw::CoherentMemory& mem = machine_.mem();
  // One representative pair per ordered package pair, plus a shared-cache
  // pair inside each package. The probe replays the URPC fast path: receiver
  // primes the line, sender writes (invalidate), receiver fetches.
  auto probe = [&](int a, int b) -> Task<Cycles> {
    sim::Addr line = mem.AllocLines(topo.PackageOf(a), 1);
    co_await mem.Read(b, line);
    Cycles lat = co_await mem.Write(a, line);
    lat += co_await mem.Read(b, line);
    co_return lat;
  };
  for (int pa = 0; pa < topo.num_packages(); ++pa) {
    for (int pb = 0; pb < topo.num_packages(); ++pb) {
      int a = pa * topo.cores_per_package();
      int b = pb * topo.cores_per_package();
      if (pa == pb) {
        if (topo.cores_per_package() < 2) {
          continue;
        }
        b = a + 1;  // shared-cache pair
      }
      Cycles lat = co_await probe(a, b);
      facts_.Assert("urpc_latency", {a, b, static_cast<std::int64_t>(lat)});
    }
  }
}

Cycles Skb::UrpcLatency(int a, int b) const {
  const hw::Topology& topo = machine_.topo();
  if (a == b) {
    return 0;
  }
  auto exact = facts_.Query("urpc_latency", {a, b, FactStore::kWildcard});
  if (!exact.empty()) {
    return static_cast<Cycles>(exact.front()[2]);
  }
  // Representative pair for the same package relationship.
  int ra = topo.PackageOf(a) * topo.cores_per_package();
  int rb = topo.PackageOf(b) * topo.cores_per_package();
  if (topo.PackageOf(a) == topo.PackageOf(b)) {
    rb = ra + 1;
  }
  auto rep = facts_.Query("urpc_latency", {ra, rb, FactStore::kWildcard});
  if (!rep.empty()) {
    return static_cast<Cycles>(rep.front()[2]);
  }
  // Fall back to a cost-book estimate.
  const hw::CostBook& c = machine_.cost();
  if (topo.SharesCache(a, b)) {
    return 2 * c.shared_cache_rt;
  }
  return 2 * (c.cross_rt_base +
              c.cross_rt_per_hop * static_cast<Cycles>(topo.HopsBetweenCores(a, b)));
}

MulticastRoute Skb::BuildMulticastRoute(int source, bool numa_aware) const {
  const hw::Topology& topo = machine_.topo();
  MulticastRoute route;
  route.source = source;
  int src_pkg = topo.PackageOf(source);
  for (int p = 0; p < topo.num_packages(); ++p) {
    MulticastRoute::Node node;
    node.package = p;
    node.leader = p == src_pkg ? source : p * topo.cores_per_package();
    for (int c : topo.CoresOf(p)) {
      if (c != node.leader) {
        node.members.push_back(c);
      }
    }
    node.est_latency = UrpcLatency(source, node.leader);
    route.nodes.push_back(std::move(node));
  }
  if (numa_aware) {
    // Send to the highest-latency aggregation node first so the slowest
    // subtree's work overlaps the remaining sends.
    std::stable_sort(route.nodes.begin(), route.nodes.end(),
                     [](const auto& x, const auto& y) {
                       return x.est_latency > y.est_latency;
                     });
  }
  return route;
}

std::vector<int> Skb::UnicastOrder(int source, bool farthest_first) const {
  std::vector<int> order;
  for (int c = 0; c < machine_.topo().num_cores(); ++c) {
    if (c != source) {
      order.push_back(c);
    }
  }
  if (farthest_first) {
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return UrpcLatency(source, x) > UrpcLatency(source, y);
    });
  }
  return order;
}

int Skb::PlaceDriver(int device_package) const {
  const hw::Topology& topo = machine_.topo();
  // Least-loaded core in the device's package; load facts: load(core, n).
  int best = device_package * topo.cores_per_package();
  std::int64_t best_load = INT64_MAX;
  for (int c : topo.CoresOf(device_package)) {
    std::int64_t load = 0;
    auto rows = facts_.Query("load", {c, FactStore::kWildcard});
    if (!rows.empty()) {
      load = rows.back()[1];
    }
    if (load < best_load) {
      best_load = load;
      best = c;
    }
  }
  return best;
}

int Skb::BufferNode(int core_a, int core_b) const {
  const hw::Topology& topo = machine_.topo();
  int pa = topo.PackageOf(core_a);
  int pb = topo.PackageOf(core_b);
  // Cheapest combined reach; ties favor the receiver side (core_b fetches).
  int best = pb;
  int best_cost = INT32_MAX;
  for (int p = 0; p < topo.num_packages(); ++p) {
    int cost = topo.Hops(pa, p) + 2 * topo.Hops(pb, p);
    if (cost < best_cost) {
      best_cost = cost;
      best = p;
    }
  }
  return best;
}

}  // namespace mk::skb
