// Datalog-lite: the SKB's "subset of first-order logic" (section 4.9).
//
// The real SKB embeds a port of the ECLiPSe CLP system; the policies this
// paper derives from it need conjunctive rules over ground facts. This is a
// naive bottom-up Datalog evaluator over the FactStore: rules like
//
//     connected(X, Y) :- link(X, Y).
//     connected(X, Y) :- link(Y, X).
//     reachable(X, Y) :- connected(X, Y).
//     reachable(X, Z) :- reachable(X, Y), connected(Y, Z).
//
// are parsed from text and evaluated to a fixpoint, asserting the derived
// facts back into the store where queries (route construction, placement)
// can use them.
#ifndef MK_SKB_DATALOG_H_
#define MK_SKB_DATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "skb/skb.h"

namespace mk::skb {

// A term is a variable (name like X, Y) or an integer constant.
struct Term {
  bool is_var = false;
  std::int64_t constant = 0;
  std::string var;

  static Term Var(std::string name) {
    Term t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static Term Const(std::int64_t v) {
    Term t;
    t.constant = v;
    return t;
  }
};

struct Atom {
  std::string relation;
  std::vector<Term> terms;
};

struct Rule {
  Atom head;
  std::vector<Atom> body;
};

class Datalog {
 public:
  explicit Datalog(FactStore& facts) : facts_(facts) {}

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  // Parses "head(X,Y) :- body1(X,Z), body2(Z,Y)." (constants are integers;
  // identifiers starting with an upper-case letter are variables). Returns
  // nullopt on a syntax error.
  static std::optional<Rule> Parse(const std::string& text);

  // Convenience: parse + add; returns false on syntax error.
  bool AddRuleText(const std::string& text);

  // Naive bottom-up evaluation to fixpoint. Derived facts are asserted into
  // the store (duplicates suppressed). Returns the number of new facts.
  std::size_t Evaluate();

  std::size_t rule_count() const { return rules_.size(); }

 private:
  FactStore& facts_;
  std::vector<Rule> rules_;
};

}  // namespace mk::skb

#endif  // MK_SKB_DATALOG_H_
