// System knowledge base (section 4.9).
//
// A declarative repository of hardware facts populated from three sources:
//   1. hardware discovery (the topology: packages, cores, links, NUMA nodes),
//   2. online measurement (URPC latency between core pairs, measured by
//      running probes over the simulated machine at boot),
//   3. pre-asserted facts (quirks and board data that cannot be discovered).
//
// Queries over this repository drive policy: constructing the per-source
// NUMA-aware multicast trees used for TLB shootdown (section 5.1), choosing
// message transports, placing device drivers near their devices, and advising
// NUMA-local buffer allocation.
#ifndef MK_SKB_SKB_H_
#define MK_SKB_SKB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::skb {

using sim::Cycles;
using sim::Task;

// A stored fact: a relation name and a tuple of integer arguments.
// (The real SKB runs a port of the ECLiPSe CLP system; a typed tuple store
// with pattern queries covers everything Barrelfish's policies in this paper
// derive from it.)
struct Fact {
  std::string relation;
  std::vector<std::int64_t> args;
};

class FactStore {
 public:
  void Assert(const std::string& relation, std::vector<std::int64_t> args);

  // Pattern query: `pattern` entries match positionally; kWildcard matches
  // anything. Returns all matching tuples.
  static constexpr std::int64_t kWildcard = INT64_MIN;
  std::vector<std::vector<std::int64_t>> Query(const std::string& relation,
                                               const std::vector<std::int64_t>& pattern) const;
  // All tuples of a relation.
  std::vector<std::vector<std::int64_t>> All(const std::string& relation) const;

  // Removes matching tuples; returns how many were removed.
  std::size_t Retract(const std::string& relation, const std::vector<std::int64_t>& pattern);

  std::size_t size() const;

 private:
  std::map<std::string, std::vector<std::vector<std::int64_t>>> relations_;
};

// A multicast route for one source core: an ordered list of aggregation
// nodes, one per package, each a leader core with its local member cores.
// The order is the send order (NUMA-aware routes send to the highest-latency
// subtree first). The source's own package appears with the source itself as
// leader, so its local members are reached directly over the shared cache.
struct MulticastRoute {
  int source = 0;
  struct Node {
    int leader = 0;                // first core contacted in the package
    std::vector<int> members;      // other cores there (the leader fans out)
    int package = 0;
    Cycles est_latency = 0;        // measured/estimated source->leader latency
  };
  std::vector<Node> nodes;
};

class Skb {
 public:
  explicit Skb(hw::Machine& machine);

  FactStore& facts() { return facts_; }
  const FactStore& facts() const { return facts_; }

  // Populates topology facts from hardware discovery: core(core, package),
  // package(pkg), link(a, b), numa_region(pkg), shares_cache(a, b).
  void PopulateFromHardware();

  // Online measurement: runs URPC probe transactions between representative
  // core pairs and asserts urpc_latency(core_a, core_b, cycles) facts.
  // (Measures one pair per package pair plus one shared-cache pair.)
  Task<> MeasureUrpcLatencies();

  // Measured (or estimated, if not measured) one-message latency from a to b.
  Cycles UrpcLatency(int a, int b) const;

  // Builds the multicast route for `source`: one aggregation node per
  // package; if `numa_aware`, nodes are ordered by decreasing latency and the
  // route records each node's package for local buffer allocation.
  MulticastRoute BuildMulticastRoute(int source, bool numa_aware) const;

  // All other cores ordered for unicast sends from `source` (NUMA-aware:
  // farthest first).
  std::vector<int> UnicastOrder(int source, bool farthest_first) const;

  // Driver placement: the core closest to `device_package` currently marked
  // least loaded (load facts default to 0).
  int PlaceDriver(int device_package) const;

  // NUMA advice: the package whose memory both cores reach cheapest (used for
  // shared buffer placement).
  int BufferNode(int core_a, int core_b) const;

 private:
  hw::Machine& machine_;
  FactStore facts_;
};

}  // namespace mk::skb

#endif  // MK_SKB_SKB_H_
