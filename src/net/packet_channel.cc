#include "net/packet_channel.h"

namespace mk::net {
namespace {

urpc::ChannelOptions DescrOptions(const PacketChannel::Options& opts) {
  urpc::ChannelOptions c;
  c.slots = opts.slots;
  c.prefetch = true;
  c.numa_node = opts.numa_node;
  return c;
}

}  // namespace

PacketChannel::PacketChannel(hw::Machine& machine, int sender_core, int receiver_core,
                             Options opts)
    : machine_(machine), opts_(opts),
      descr_(machine, sender_core, receiver_core, DescrOptions(opts)) {
  int node = opts_.numa_node >= 0 ? opts_.numa_node
                                  : machine_.topo().PackageOf(sender_core);
  payload_region_ = machine_.mem().AllocLines(
      node, static_cast<std::uint64_t>(opts_.slots) * kPacketSlotBytes /
                sim::kCacheLineBytes);
}

Task<> PacketChannel::Send(Packet packet) {
  Descriptor d;
  d.slot = send_slot_++ % static_cast<std::uint32_t>(opts_.slots);
  d.len = static_cast<std::uint32_t>(packet.size());
  // Payload first (posted stores), then the descriptor message; the channel's
  // flow control also gates payload-slot reuse (slots match).
  co_await machine_.mem().WritePosted(
      descr_.sender_core(), payload_region_ + d.slot * kPacketSlotBytes, packet.size());
  payloads_.push_back(std::move(packet));
  co_await descr_.Send(urpc::Pack(1, d));
}

Task<std::optional<Packet>> PacketChannel::RecvTimeout(Cycles timeout) {
  const Cycles deadline = machine_.exec().now() + timeout;
  while (!HasPacket()) {
    Cycles now = machine_.exec().now();
    if (now >= deadline || !co_await descr_.readable().WaitTimeout(deadline - now)) {
      if (!HasPacket()) {  // arrival may have raced the timer
        co_return std::nullopt;
      }
    }
  }
  co_return co_await Recv();
}

Task<Packet> PacketChannel::Recv() {
  urpc::Message msg = co_await descr_.Recv();
  auto d = urpc::Unpack<Descriptor>(msg);
  // Claim the payload before the charged read suspends (see Channel::Consume).
  Packet packet = std::move(payloads_.front());
  payloads_.pop_front();
  co_await machine_.mem().Read(descr_.receiver_core(),
                               payload_region_ + d.slot * kPacketSlotBytes, d.len);
  co_return packet;
}

}  // namespace mk::net
