// Hashed connection table: open addressing over the TCP 4-tuple, the "PCB
// hashing at scale" half of ROADMAP item 5 (lwIP keeps PCBs on a linked list,
// which is O(n) per segment; at 100k+ concurrent connections the demux must
// be O(1)).
//
// Design:
//   * keys pack (remote ip, remote port, local port) into 64 bits and are
//     scrambled by a fixed 64-bit mixer, so probe sequences are independent
//     of address allocation patterns;
//   * linear probing with tombstones: Erase marks the slot dead so later
//     probes keep walking; Insert reuses the first tombstone on its probe
//     path. The table rehashes by doubling when live + dead slots exceed 3/4
//     of capacity (size-classed growth: 1k → 2k → ... → 256k+ slots), which
//     also sweeps tombstones;
//   * the table owns its values (std::unique_ptr<Conn>); pointers returned by
//     Find/Insert stay stable across rehashes because only the slot array
//     moves, never the pointed-to connection;
//   * exact accounting — live(), tombstones(), peak_live(), inserts(),
//     erases() — so churn tests can assert zero leaks from the table's own
//     books (inserts - erases == live).
//
// Deterministic: no randomized seeding; iteration order is never exposed.
#ifndef MK_NET_CONN_TABLE_H_
#define MK_NET_CONN_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace mk::net {

// Packs a TCP flow identity into the table's 64-bit key. The local IP is
// implicit (one NetStack = one address).
constexpr std::uint64_t ConnKey(std::uint32_t remote_ip, std::uint16_t remote_port,
                                std::uint16_t local_port) {
  return (static_cast<std::uint64_t>(remote_ip) << 32) |
         (static_cast<std::uint64_t>(remote_port) << 16) |
         static_cast<std::uint64_t>(local_port);
}

template <typename Conn>
class ConnTable {
 public:
  explicit ConnTable(std::size_t initial_capacity = 1024) {
    std::size_t cap = 16;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
  }
  ConnTable(const ConnTable&) = delete;
  ConnTable& operator=(const ConnTable&) = delete;

  // Inserts `conn` under `key`; returns the stable pointer. A key already
  // present is an invariant violation upstream (the stack never double-
  // inserts a 4-tuple) — the old value is replaced and the pointer returned,
  // counted as an insert over an erase.
  Conn* Insert(std::uint64_t key, std::unique_ptr<Conn> conn) {
    MaybeGrow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Mix(key) & mask;
    std::size_t first_dead = kNpos;
    for (std::size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) {
        Slot& target = first_dead == kNpos ? s : slots_[first_dead];
        if (first_dead != kNpos) {
          --tombstones_;
        }
        target.key = key;
        target.conn = std::move(conn);
        target.state = State::kLive;
        ++live_;
        ++inserts_;
        if (live_ > peak_live_) {
          peak_live_ = live_;
        }
        if (probes > max_probe_) {
          max_probe_ = probes;
        }
        return target.conn.get();
      }
      if (s.state == State::kDead) {
        if (first_dead == kNpos) {
          first_dead = i;
        }
        continue;
      }
      if (s.key == key) {
        s.conn = std::move(conn);  // replace (should not happen; see above)
        ++inserts_;
        ++erases_;
        return s.conn.get();
      }
    }
    // Probed every slot without finding kEmpty: the path was all live/dead.
    // A tombstone on the path must exist (load factor < 1 is maintained).
    Slot& target = slots_[first_dead];
    --tombstones_;
    target.key = key;
    target.conn = std::move(conn);
    target.state = State::kLive;
    ++live_;
    ++inserts_;
    if (live_ > peak_live_) {
      peak_live_ = live_;
    }
    return target.conn.get();
  }

  Conn* Find(std::uint64_t key) const {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Mix(key) & mask;
    for (std::size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.state == State::kEmpty) {
        return nullptr;
      }
      if (s.state == State::kLive && s.key == key) {
        return s.conn.get();
      }
    }
    return nullptr;
  }

  // Removes `key`, returning ownership of the connection (empty if absent).
  // The slot becomes a tombstone so unrelated probe chains stay intact.
  std::unique_ptr<Conn> Erase(std::uint64_t key) {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Mix(key) & mask;
    for (std::size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) {
        return nullptr;
      }
      if (s.state == State::kLive && s.key == key) {
        s.state = State::kDead;
        ++tombstones_;
        --live_;
        ++erases_;
        return std::move(s.conn);
      }
    }
    return nullptr;
  }

  // --- Accounting (the churn gates read these) ---
  std::size_t live() const { return live_; }
  std::size_t tombstones() const { return tombstones_; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t peak_live() const { return peak_live_; }
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t erases() const { return erases_; }
  std::uint64_t rehashes() const { return rehashes_; }
  std::size_t max_probe() const { return max_probe_; }

 private:
  enum class State : std::uint8_t { kEmpty, kLive, kDead };
  struct Slot {
    std::uint64_t key = 0;
    std::unique_ptr<Conn> conn;
    State state = State::kEmpty;
  };
  static constexpr std::size_t kNpos = ~std::size_t{0};

  // splitmix64 finalizer: full-avalanche 64-bit mix, cheap and fixed.
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void MaybeGrow() {
    if ((live_ + tombstones_) * 4 < slots_.size() * 3) {
      return;
    }
    // Double while the *live* load would still exceed half the new table, so
    // a tombstone-heavy table can rehash in place at the same size class.
    std::size_t new_cap = slots_.size();
    while (live_ * 2 >= new_cap) {
      new_cap <<= 1;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_cap);
    tombstones_ = 0;
    max_probe_ = 0;
    ++rehashes_;
    std::size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.state != State::kLive) {
        continue;
      }
      std::size_t i = Mix(s.key) & mask;
      std::size_t probes = 0;
      while (slots_[i].state != State::kEmpty) {
        i = (i + 1) & mask;
        ++probes;
      }
      slots_[i].key = s.key;
      slots_[i].conn = std::move(s.conn);
      slots_[i].state = State::kLive;
      if (probes > max_probe_) {
        max_probe_ = probes;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t max_probe_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t erases_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace mk::net

#endif  // MK_NET_CONN_TABLE_H_
