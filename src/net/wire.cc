#include "net/wire.h"

namespace mk::net {
namespace {

void Put16(Packet& p, std::uint16_t v) {
  p.push_back(static_cast<std::uint8_t>(v >> 8));
  p.push_back(static_cast<std::uint8_t>(v));
}

void Put32(Packet& p, std::uint32_t v) {
  Put16(p, static_cast<std::uint16_t>(v >> 16));
  Put16(p, static_cast<std::uint16_t>(v));
}

std::uint16_t Get16(const std::uint8_t* d) {
  return static_cast<std::uint16_t>((d[0] << 8) | d[1]);
}

std::uint32_t Get32(const std::uint8_t* d) {
  return (static_cast<std::uint32_t>(Get16(d)) << 16) | Get16(d + 2);
}

void Patch16(Packet& p, std::size_t off, std::uint16_t v) {
  p[off] = static_cast<std::uint8_t>(v >> 8);
  p[off + 1] = static_cast<std::uint8_t>(v);
}

// Pseudo-header contribution for UDP/TCP checksums.
std::uint32_t PseudoSum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto, std::uint16_t len) {
  std::uint32_t sum = 0;
  sum += src >> 16;
  sum += src & 0xffff;
  sum += dst >> 16;
  sum += dst & 0xffff;
  sum += proto;
  sum += len;
  return sum;
}

void AppendEth(Packet& p, const EthHeader& eth) {
  p.insert(p.end(), eth.dst.begin(), eth.dst.end());
  p.insert(p.end(), eth.src.begin(), eth.src.end());
  Put16(p, eth.ethertype);
}

// Appends the IP header with a zero checksum; returns its offset.
std::size_t AppendIp(Packet& p, const IpHeader& ip, std::size_t l4_and_payload) {
  std::size_t off = p.size();
  p.push_back(0x45);  // version 4, IHL 5
  p.push_back(0);     // DSCP/ECN
  Put16(p, static_cast<std::uint16_t>(kIpHeaderBytes + l4_and_payload));
  Put16(p, ip.ident);
  Put16(p, 0x4000);  // DF, no fragments
  p.push_back(ip.ttl);
  p.push_back(ip.protocol);
  Put16(p, 0);  // checksum placeholder
  Put32(p, ip.src);
  Put32(p, ip.dst);
  std::uint16_t csum = InternetChecksum(p.data() + off, kIpHeaderBytes);
  Patch16(p, off + 10, csum);
  return off;
}

}  // namespace

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

Packet BuildUdpFrame(const EthHeader& eth, IpHeader ip, UdpHeader udp,
                     const std::uint8_t* payload, std::size_t payload_len) {
  ip.protocol = kIpProtoUdp;
  Packet p;
  p.reserve(kEthHeaderBytes + kIpHeaderBytes + kUdpHeaderBytes + payload_len);
  AppendEth(p, eth);
  AppendIp(p, ip, kUdpHeaderBytes + payload_len);
  std::size_t udp_off = p.size();
  auto udp_len = static_cast<std::uint16_t>(kUdpHeaderBytes + payload_len);
  Put16(p, udp.src_port);
  Put16(p, udp.dst_port);
  Put16(p, udp_len);
  Put16(p, 0);  // checksum placeholder
  p.insert(p.end(), payload, payload + payload_len);
  std::uint16_t csum = InternetChecksum(p.data() + udp_off, udp_len,
                                        PseudoSum(ip.src, ip.dst, kIpProtoUdp, udp_len));
  if (csum == 0) {
    csum = 0xffff;  // RFC 768: transmitted as all ones
  }
  Patch16(p, udp_off + 6, csum);
  return p;
}

Packet BuildTcpFrame(const EthHeader& eth, IpHeader ip, const TcpHeader& tcp,
                     const std::uint8_t* payload, std::size_t payload_len) {
  ip.protocol = kIpProtoTcp;
  Packet p;
  p.reserve(kEthHeaderBytes + kIpHeaderBytes + kTcpHeaderBytes + payload_len);
  AppendEth(p, eth);
  AppendIp(p, ip, kTcpHeaderBytes + payload_len);
  std::size_t tcp_off = p.size();
  Put16(p, tcp.src_port);
  Put16(p, tcp.dst_port);
  Put32(p, tcp.seq);
  Put32(p, tcp.ack);
  std::uint8_t flags = 0;
  if (tcp.flags.fin) flags |= 0x01;
  if (tcp.flags.syn) flags |= 0x02;
  if (tcp.flags.rst) flags |= 0x04;
  if (tcp.flags.ack) flags |= 0x10;
  p.push_back(0x50);  // data offset 5 words
  p.push_back(flags);
  Put16(p, tcp.window);
  Put16(p, 0);  // checksum placeholder
  Put16(p, 0);  // urgent pointer
  p.insert(p.end(), payload, payload + payload_len);
  auto tcp_len = static_cast<std::uint16_t>(kTcpHeaderBytes + payload_len);
  std::uint16_t csum = InternetChecksum(p.data() + tcp_off, tcp_len,
                                        PseudoSum(ip.src, ip.dst, kIpProtoTcp, tcp_len));
  Patch16(p, tcp_off + 16, csum);
  return p;
}

std::optional<ParsedFrame> ParseFrame(const Packet& frame, ParseInfo* info) {
  ParseInfo local;
  if (info == nullptr) {
    info = &local;
  }
  auto fail = [info](ParseError err,
                     std::size_t summed = 0) -> std::optional<ParsedFrame> {
    info->error = err;
    info->payload_len = summed;
    return std::nullopt;
  };
  if (frame.size() < kEthHeaderBytes + kIpHeaderBytes) {
    return fail(ParseError::kTruncated);
  }
  ParsedFrame out;
  const std::uint8_t* d = frame.data();
  std::copy(d, d + 6, out.eth.dst.begin());
  std::copy(d + 6, d + 12, out.eth.src.begin());
  out.eth.ethertype = Get16(d + 12);
  if (out.eth.ethertype != kEtherTypeIpv4) {
    return fail(ParseError::kUnknownProto);
  }
  const std::uint8_t* ip = d + kEthHeaderBytes;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0f) != 5) {
    return fail(ParseError::kTruncated);
  }
  if (InternetChecksum(ip, kIpHeaderBytes) != 0) {
    return fail(ParseError::kBadChecksum);  // corrupt IP header
  }
  out.ip.total_length = Get16(ip + 2);
  out.ip.ident = Get16(ip + 4);
  out.ip.ttl = ip[8];
  out.ip.protocol = ip[9];
  out.ip.src = Get32(ip + 12);
  out.ip.dst = Get32(ip + 16);
  if (out.ip.total_length < kIpHeaderBytes ||
      kEthHeaderBytes + out.ip.total_length > frame.size()) {
    return fail(ParseError::kTruncated);
  }
  const std::uint8_t* l4 = ip + kIpHeaderBytes;
  std::size_t l4_len = out.ip.total_length - kIpHeaderBytes;
  if (out.ip.protocol == kIpProtoUdp) {
    if (l4_len < kUdpHeaderBytes) {
      return fail(ParseError::kTruncated);
    }
    UdpHeader udp;
    udp.src_port = Get16(l4);
    udp.dst_port = Get16(l4 + 2);
    udp.length = Get16(l4 + 4);
    if (udp.length < kUdpHeaderBytes || udp.length > l4_len) {
      return fail(ParseError::kTruncated);
    }
    if (Get16(l4 + 6) != 0 &&
        InternetChecksum(l4, udp.length,
                         PseudoSum(out.ip.src, out.ip.dst, kIpProtoUdp, udp.length)) != 0) {
      // Corrupt UDP payload: the whole datagram payload was summed.
      return fail(ParseError::kBadChecksum, udp.length - kUdpHeaderBytes);
    }
    out.udp = udp;
    out.payload_offset = kEthHeaderBytes + kIpHeaderBytes + kUdpHeaderBytes;
    out.payload_len = udp.length - kUdpHeaderBytes;
    info->payload_len = out.payload_len;
    return out;
  }
  if (out.ip.protocol == kIpProtoTcp) {
    if (l4_len < kTcpHeaderBytes) {
      return fail(ParseError::kTruncated);
    }
    TcpHeader tcp;
    tcp.src_port = Get16(l4);
    tcp.dst_port = Get16(l4 + 2);
    tcp.seq = Get32(l4 + 4);
    tcp.ack = Get32(l4 + 8);
    std::uint8_t flags = l4[13];
    tcp.flags.fin = (flags & 0x01) != 0;
    tcp.flags.syn = (flags & 0x02) != 0;
    tcp.flags.rst = (flags & 0x04) != 0;
    tcp.flags.ack = (flags & 0x10) != 0;
    tcp.window = Get16(l4 + 14);
    if (InternetChecksum(l4, l4_len,
                         PseudoSum(out.ip.src, out.ip.dst, kIpProtoTcp,
                                   static_cast<std::uint16_t>(l4_len))) != 0) {
      return fail(ParseError::kBadChecksum, l4_len - kTcpHeaderBytes);
    }
    out.tcp = tcp;
    out.payload_offset = kEthHeaderBytes + kIpHeaderBytes + kTcpHeaderBytes;
    out.payload_len = l4_len - kTcpHeaderBytes;
    info->payload_len = out.payload_len;
    return out;
  }
  return fail(ParseError::kUnknownProto);
}

std::optional<FlowTuple> ExtractFlowTuple(const Packet& frame) {
  if (frame.size() < kEthHeaderBytes + kIpHeaderBytes) {
    return std::nullopt;
  }
  const std::uint8_t* d = frame.data();
  if (Get16(d + 12) != kEtherTypeIpv4) {
    return std::nullopt;
  }
  const std::uint8_t* ip = d + kEthHeaderBytes;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0f) != 5) {
    return std::nullopt;
  }
  FlowTuple t;
  t.proto = ip[9];
  t.src_ip = Get32(ip + 12);
  t.dst_ip = Get32(ip + 16);
  // Ports only if the first 4 bytes of an UDP/TCP header are present; the
  // L3-only tuple still steers consistently otherwise.
  if ((t.proto == kIpProtoUdp || t.proto == kIpProtoTcp) &&
      frame.size() >= kEthHeaderBytes + kIpHeaderBytes + 4) {
    const std::uint8_t* l4 = ip + kIpHeaderBytes;
    t.src_port = Get16(l4);
    t.dst_port = Get16(l4 + 2);
  }
  return t;
}

std::uint32_t RssHash(std::uint64_t seed, const FlowTuple& t) {
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t x = mix(seed ^ 0x9e3779b97f4a7c15ULL);
  x = mix(x ^ ((static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip));
  x = mix(x ^ ((static_cast<std::uint64_t>(t.src_port) << 32) |
               (static_cast<std::uint64_t>(t.dst_port) << 16) | t.proto));
  return static_cast<std::uint32_t>(x >> 32);
}

}  // namespace mk::net
