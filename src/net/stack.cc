#include "net/stack.h"

#include <cstring>

#include "fault/fault.h"
#include "trace/trace.h"

namespace mk::net {
namespace {

// Serial-number comparison (RFC 1982 style) for 32-bit sequence space.
bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

const char* CloseCauseName(CloseCause c) {
  switch (c) {
    case CloseCause::kActiveFin: return "active-fin";
    case CloseCause::kPassiveFin: return "passive-fin";
    case CloseCause::kReset: return "reset";
    case CloseCause::kConnectTimeout: return "connect-timeout";
    case CloseCause::kHalfOpenExpiry: return "half-open-expiry";
    case CloseCause::kRetxAbort: return "retx-abort";
    case CloseCause::kNumCauses: break;
  }
  return "?";
}

Task<NetStack::UdpDatagram> NetStack::UdpSocket::Recv() {
  while (queue.empty()) {
    co_await ready.Wait();
  }
  UdpDatagram d = std::move(queue.front());
  queue.pop_front();
  co_return d;
}

bool NetStack::UdpSocket::TryRecv(UdpDatagram* out) {
  if (queue.empty()) {
    return false;
  }
  *out = std::move(queue.front());
  queue.pop_front();
  return true;
}

Task<std::vector<std::uint8_t>> NetStack::TcpConn::Read() {
  while (rx.empty() && !peer_closed) {
    co_await readable.Wait();
  }
  std::vector<std::uint8_t> out(rx.begin(), rx.end());
  rx.clear();
  co_return out;
}

Task<NetStack::TcpConn*> NetStack::Listener::Accept() {
  while (accepted.empty()) {
    co_await ready.Wait();
  }
  TcpConn* conn = accepted.front();
  accepted.pop_front();
  co_return conn;
}

NetStack::NetStack(hw::Machine& machine, int core, Ipv4Addr ip, MacAddr mac,
                   StackCosts costs)
    : machine_(machine),
      core_(core),
      ip_(ip),
      mac_(mac),
      costs_(costs),
      wheel_(machine.exec()) {}

MacAddr NetStack::ResolveMac(Ipv4Addr ip) const {
  auto it = arp_.find(ip);
  if (it != arp_.end()) {
    return it->second;
  }
  return MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
}

Task<> NetStack::Emit(Packet frame, std::size_t payload_len) {
  ++frames_out_;
  co_await machine_.Compute(
      core_, costs_.per_packet_out +
                 static_cast<Cycles>(static_cast<double>(payload_len) *
                                     costs_.per_byte_checksum));
  if (output_) {
    co_await output_(std::move(frame));
  }
}

NetStack::UdpSocket& NetStack::UdpBind(std::uint16_t port) {
  auto [it, inserted] = udp_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<UdpSocket>(machine_.exec());
  }
  return *it->second;
}

Task<> NetStack::UdpSendTo(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                           std::vector<std::uint8_t> payload) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(dst_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = dst_ip;
  ip.ident = ip_ident_++;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  std::size_t len = payload.size();
  Packet frame = BuildUdpFrame(eth, ip, udp, payload.data(), payload.size());
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::Input(Packet frame) {
  ++frames_in_;
  ParseInfo info;
  auto parsed = ParseFrame(frame, &info);
  // Checksum cost is charged on the L4 payload bytes the parser actually
  // summed — the same basis whether the frame parsed or not (a truncated
  // frame sums nothing; a corrupt one sums its payload before rejecting it).
  co_await machine_.Compute(
      core_, costs_.per_packet_in +
                 static_cast<Cycles>(static_cast<double>(info.payload_len) *
                                     costs_.per_byte_checksum));
  if (!parsed) {
    if (info.error == ParseError::kUnknownProto) {
      ++drops_unknown_proto_;
    } else {
      ++drops_bad_frame_;
    }
    co_return;
  }
  if (parsed->ip.dst != ip_ && parsed->ip.dst != 0xffffffff) {
    ++drops_not_for_us_;
    co_return;
  }
  if (parsed->udp) {
    auto it = udp_.find(parsed->udp->dst_port);
    if (it == udp_.end()) {
      ++drops_no_listener_;
      co_return;
    }
    UdpDatagram d;
    d.src_ip = parsed->ip.src;
    d.src_port = parsed->udp->src_port;
    d.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset),
                     frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset +
                                                                 parsed->payload_len));
    it->second->queue.push_back(std::move(d));
    it->second->ready.Signal();
    co_return;
  }
  if (parsed->tcp) {
    co_await HandleTcp(*parsed, frame);
    co_return;
  }
  ++drops_unknown_proto_;
}

Task<> NetStack::SendTcpSegment(TcpConn& conn, TcpFlags flags, const std::uint8_t* data,
                                std::size_t len) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(conn.remote_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = conn.remote_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = conn.local_port;
  tcp.dst_port = conn.remote_port;
  tcp.seq = conn.snd_nxt;
  tcp.ack = conn.rcv_nxt;
  tcp.flags = flags;
  auto seq_len = static_cast<std::uint32_t>(len) + (flags.syn ? 1 : 0) +
                 (flags.fin ? 1 : 0);
  conn.snd_nxt += seq_len;
  if (seq_len > 0) {
    // Segments that occupy sequence space are kept until acknowledged (pure
    // ACKs are not retransmittable). This bookkeeping runs on every send; the
    // timer that retransmits from it only exists under fault injection
    // (legacy) or rides the wheel (lifecycle).
    TcpConn::SentSeg seg;
    seg.seq = tcp.seq;
    seg.seq_len = seq_len;
    seg.flags = flags;
    seg.data.assign(data, data + len);
    conn.unacked.push_back(std::move(seg));
    if (conn.state != TcpState::kLegacy) {
      // Lifecycle: wheel-carried go-back-N, always armed. SYN_RCVD is the
      // exception — a half-open connection never retransmits its SYN-ACK
      // (the client's SYN retransmit provokes a re-send instead), so a SYN
      // flood cannot make the server arm 100k timers.
      if (conn.state != TcpState::kSynRcvd &&
          conn.retx_id == TimerWheel::kNoTimer) {
        ArmRetx(conn, recover::Config().tcp_rto);
      }
    } else if (fault::Injector::active() != nullptr && !conn.retx_timer_running) {
      conn.retx_timer_running = true;
      machine_.exec().Spawn(RetransmitTimer(conn));
    }
  }
  Packet frame = BuildTcpFrame(eth, ip, tcp, data, len);
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::SendTcpRaw(TcpConn& conn, std::uint32_t seq, TcpFlags flags,
                            const std::uint8_t* data, std::size_t len) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(conn.remote_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = conn.remote_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = conn.local_port;
  tcp.dst_port = conn.remote_port;
  tcp.seq = seq;
  tcp.ack = conn.rcv_nxt;
  tcp.flags = flags;
  Packet frame = BuildTcpFrame(eth, ip, tcp, data, len);
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::RetransmitTimer(TcpConn& conn) {
  // Go-back-N: on each timeout with no forward progress, re-send everything
  // outstanding from snd_una. The connection object is owned by conns_ and
  // never erased (legacy connections only), so the reference stays valid
  // across suspensions.
  Cycles rto = recover::Config().tcp_rto;
  int tries = 0;
  while (fault::Injector::active() != nullptr && !conn.unacked.empty()) {
    std::uint32_t una_before = conn.snd_una;
    co_await machine_.exec().Delay(rto);
    if (conn.unacked.empty()) {
      break;
    }
    if (conn.snd_una != una_before) {
      rto = recover::Config().tcp_rto;  // forward progress: reset the backoff
      tries = 0;
      continue;
    }
    if (++tries > recover::Config().tcp_max_retx) {
      break;  // peer presumed dead; stop re-arming so the executor can drain
    }
    ++tcp_retransmits_;
    trace::Emit<trace::Category::kFault>(trace::EventId::kFaultTcpRetransmit,
                                         machine_.exec().now(), core_, conn.snd_una,
                                         static_cast<std::uint64_t>(tries));
    // Snapshot: ACKs arriving during the resend's suspensions may pop from
    // the live queue under us.
    std::vector<TcpConn::SentSeg> window(conn.unacked.begin(), conn.unacked.end());
    for (const TcpConn::SentSeg& seg : window) {
      co_await SendTcpRaw(conn, seg.seq, seg.flags, seg.data.data(), seg.data.size());
    }
    rto *= 2;
  }
  conn.retx_timer_running = false;
}

// --- Lifecycle internals ---

std::uint32_t NetStack::CookieFor(Ipv4Addr remote_ip, std::uint16_t remote_port,
                                  std::uint16_t local_port) const {
  // splitmix64 over the flow key xor a fixed secret; deterministic across
  // runs, unforgeable enough for a simulated attacker that picks random ACKs.
  std::uint64_t x = ConnKey(remote_ip, remote_port, local_port) ^ 0x6d6b636f6f6b6965ull;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x);
}

std::uint16_t NetStack::AllocEphemeralPort(Ipv4Addr dst_ip, std::uint16_t dst_port) {
  // Wraps 65535 -> 49152 and skips 4-tuples still present in the table
  // (TIME_WAIT parks a tuple for a while after a clean close). 0 = the full
  // 16k-port range to this destination is in use.
  for (int tries = 0; tries < 16384; ++tries) {
    std::uint16_t port = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? static_cast<std::uint16_t>(49152)
                                 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (conns_.Find(ConnKey(dst_ip, dst_port, port)) == nullptr) {
      return port;
    }
  }
  return 0;
}

void NetStack::LeaveState(TcpConn& c) {
  switch (c.state) {
    case TcpState::kSynSent:
    case TcpState::kSynRcvd:
      --half_open_count_;
      break;
    case TcpState::kEstablished:
      --established_count_;
      break;
    case TcpState::kTimeWait:
      --time_wait_count_;
      break;
    default:
      break;
  }
}

void NetStack::CloseConn(TcpConn& c, CloseCause cause) {
  if (c.state == TcpState::kClosed || c.state == TcpState::kLegacy) {
    return;
  }
  LeaveState(c);
  if (c.retx_id != TimerWheel::kNoTimer) {
    wheel_.Cancel(c.retx_id);
    c.retx_id = TimerWheel::kNoTimer;
  }
  if (c.lifecycle_id != TimerWheel::kNoTimer) {
    wheel_.Cancel(c.lifecycle_id);
    c.lifecycle_id = TimerWheel::kNoTimer;
  }
  c.state = TcpState::kClosed;
  c.close_cause = cause;
  c.unacked.clear();
  c.dup_acks = 0;
  c.peer_closed = true;  // readers observe end-of-stream
  ++closes_[static_cast<std::size_t>(cause)];
  trace::Emit<trace::Category::kConn>(
      trace::EventId::kConnClose, machine_.exec().now(), core_,
      static_cast<std::uint64_t>(cause),
      ConnKey(c.remote_ip, c.remote_port, c.local_port));
  c.readable.Signal();
  c.closed_ev.Signal();
  MaybeReap(c);
}

void NetStack::EnterTimeWait(TcpConn& c) {
  c.state = TcpState::kTimeWait;
  ++time_wait_count_;
  trace::Emit<trace::Category::kConn>(
      trace::EventId::kConnTimeWait, machine_.exec().now(), core_,
      ConnKey(c.remote_ip, c.remote_port, c.local_port));
  TcpConn* cp = &c;
  c.lifecycle_id = wheel_.Schedule(lifecycle_.time_wait, [this, cp] {
    cp->lifecycle_id = TimerWheel::kNoTimer;
    ++time_wait_reaped_;
    CloseConn(*cp, CloseCause::kActiveFin);
  });
}

void NetStack::MaybeReap(TcpConn& c) {
  if (!lifecycle_.enabled || c.state != TcpState::kClosed || !c.app_released ||
      c.pins != 0) {
    return;
  }
  // Every timer referencing the conn was cancelled on the way to kClosed and
  // no suspended coroutine pins it, so destroying it here is safe.
  conns_.Erase(ConnKey(c.remote_ip, c.remote_port, c.local_port));
}

void NetStack::ArmRetx(TcpConn& c, Cycles rto) {
  c.retx_rto = rto;
  c.retx_marker = c.snd_una;
  TcpConn* cp = &c;
  c.retx_id = wheel_.Schedule(rto, [this, cp] { RetxFire(cp); });
}

void NetStack::RetxFire(TcpConn* c) {
  c->retx_id = TimerWheel::kNoTimer;
  if (c->state == TcpState::kClosed || c->unacked.empty()) {
    c->retx_tries = 0;
    return;
  }
  if (c->retx_marker != c->snd_una) {
    // Forward progress since the timer was armed: restart with a fresh RTO.
    c->retx_tries = 0;
    ArmRetx(*c, recover::Config().tcp_rto);
    return;
  }
  if (++c->retx_tries > recover::Config().tcp_max_retx) {
    CloseConn(*c, CloseCause::kRetxAbort);
    return;
  }
  ++tcp_retransmits_;
  trace::Emit<trace::Category::kFault>(trace::EventId::kFaultTcpRetransmit,
                                       machine_.exec().now(), core_, c->snd_una,
                                       static_cast<std::uint64_t>(c->retx_tries));
  ArmRetx(*c, c->retx_rto * 2);  // keeps retx_tries: backoff until progress
  machine_.exec().Spawn(ResendWindow(c));
}

Task<> NetStack::ResendWindow(TcpConn* c) {
  PinGuard pin(this, c);
  std::vector<TcpConn::SentSeg> window(c->unacked.begin(), c->unacked.end());
  for (const TcpConn::SentSeg& seg : window) {
    if (c->state == TcpState::kClosed) {
      break;
    }
    co_await SendTcpRaw(*c, seg.seq, seg.flags, seg.data.data(), seg.data.size());
  }
}

void NetStack::Release(TcpConn* conn) {
  if (conn == nullptr || !lifecycle_.enabled || conn->state == TcpState::kLegacy) {
    return;
  }
  conn->app_released = true;
  MaybeReap(*conn);
}

Task<bool> NetStack::WaitReadable(TcpConn& conn, Cycles timeout) {
  if (timeout == 0 || !lifecycle_.enabled || conn.state == TcpState::kLegacy) {
    while (conn.rx.empty() && !conn.peer_closed) {
      co_await conn.readable.Wait();
    }
    co_return true;
  }
  conn.wait_timed_out = false;
  if (conn.rx.empty() && !conn.peer_closed) {
    TcpConn* cp = &conn;
    conn.wait_id = wheel_.Schedule(timeout, [cp] {
      cp->wait_id = TimerWheel::kNoTimer;
      cp->wait_timed_out = true;
      cp->readable.Signal();
    });
    while (conn.rx.empty() && !conn.peer_closed && !conn.wait_timed_out) {
      co_await conn.readable.Wait();
    }
    if (conn.wait_id != TimerWheel::kNoTimer) {
      wheel_.Cancel(conn.wait_id);
      conn.wait_id = TimerWheel::kNoTimer;
    }
  }
  co_return !conn.rx.empty() || conn.peer_closed || !conn.wait_timed_out;
}

NetStack::Listener& NetStack::TcpListen(std::uint16_t port) {
  auto [it, inserted] = listeners_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<Listener>(machine_.exec());
  }
  return *it->second;
}

Task<NetStack::TcpConn*> NetStack::TcpConnect(Ipv4Addr dst_ip, std::uint16_t dst_port,
                                              Cycles timeout) {
  if (lifecycle_.enabled) {
    std::uint16_t port = AllocEphemeralPort(dst_ip, dst_port);
    if (port == 0) {
      co_return nullptr;  // ephemeral range to this destination exhausted
    }
    auto owned = std::make_unique<TcpConn>(machine_.exec());
    owned->remote_ip = dst_ip;
    owned->remote_port = dst_port;
    owned->local_port = port;
    owned->snd_nxt = 1000;  // deterministic ISN
    owned->snd_una = 1000;
    owned->state = TcpState::kSynSent;
    TcpConn* c = conns_.Insert(ConnKey(dst_ip, dst_port, port), std::move(owned));
    ++half_open_count_;
    PinGuard pin(this, c);
    if (timeout > 0) {
      c->lifecycle_id = wheel_.Schedule(timeout, [this, c] {
        c->lifecycle_id = TimerWheel::kNoTimer;
        if (c->state != TcpState::kSynSent) {
          return;
        }
        // Handshake abandoned: sweep the entry so the 4-tuple is reusable.
        c->abandoned = true;
        ++abandoned_swept_;
        trace::Emit<trace::Category::kConn>(
            trace::EventId::kConnTimeout, machine_.exec().now(), core_, 0,
            ConnKey(c->remote_ip, c->remote_port, c->local_port));
        CloseConn(*c, CloseCause::kConnectTimeout);
      });
    }
    co_await SendTcpSegment(*c, TcpFlags{.syn = true}, nullptr, 0);
    while (c->state == TcpState::kSynSent) {
      co_await c->readable.Wait();
    }
    if (c->state != TcpState::kEstablished) {
      // Timed out or reset before completion; the pin guard reaps on return.
      c->app_released = true;
      co_return nullptr;
    }
    co_return c;
  }
  auto conn = std::make_unique<TcpConn>(machine_.exec());
  TcpConn* c = conn.get();
  c->remote_ip = dst_ip;
  c->remote_port = dst_port;
  c->local_port = next_ephemeral_++;
  c->snd_nxt = 1000;  // deterministic ISN
  c->snd_una = 1000;
  conns_.Insert(ConnKey(dst_ip, dst_port, c->local_port), std::move(conn));
  const Cycles deadline = machine_.exec().now() + timeout;
  co_await SendTcpSegment(*c, TcpFlags{.syn = true}, nullptr, 0);
  while (!c->established) {
    if (c->peer_closed) {
      // RST before the handshake completed (only possible under injection):
      // the peer refuses this connection. Abandon it in place — the conn
      // object must stay owned by conns_ because the SYN's RetransmitTimer
      // may still hold a reference to it across a Delay; clearing unacked
      // makes that timer exit at its next wake. Ephemeral ports are never
      // reused, so the dead map entry can't shadow a future flow.
      c->abandoned = true;
      c->unacked.clear();
      co_return nullptr;
    }
    if (timeout == 0) {
      co_await c->readable.Wait();
      continue;
    }
    Cycles now = machine_.exec().now();
    if (now >= deadline ||
        !co_await c->readable.WaitTimeout(deadline - now)) {
      if (!c->established) {  // SYN-ACK may have raced the timer
        c->peer_closed = true;  // abandoned; see RST comment above
        c->abandoned = true;
        c->unacked.clear();
        co_return nullptr;
      }
    }
  }
  co_return c;
}

Task<> NetStack::HandleTcp(const ParsedFrame& f, const Packet& frame) {
  const TcpHeader& tcp = *f.tcp;
  TcpConn* cp = conns_.Find(ConnKey(f.ip.src, tcp.src_port, tcp.dst_port));
  if (cp == nullptr) {
    if (lifecycle_.enabled) {
      auto lit = listeners_.find(tcp.dst_port);
      if (lit != listeners_.end() && tcp.flags.syn && !tcp.flags.ack &&
          !tcp.flags.rst) {
        if (lifecycle_.max_half_open > 0 &&
            half_open_count_ >= lifecycle_.max_half_open) {
          // Half-open table full: answer statelessly with a SYN-cookie ISN.
          // A legitimate client's ACK reconstructs the connection below; a
          // flood source that never ACKs costs us nothing.
          std::uint32_t cookie = CookieFor(f.ip.src, tcp.src_port, tcp.dst_port);
          ++syn_cookies_sent_;
          trace::Emit<trace::Category::kConn>(
              trace::EventId::kConnCookieSent, machine_.exec().now(), core_, cookie,
              ConnKey(f.ip.src, tcp.src_port, tcp.dst_port));
          co_await SendStatelessSegment(f.ip.src, tcp.dst_port, tcp.src_port,
                                        cookie, tcp.seq + 1,
                                        TcpFlags{.syn = true, .ack = true});
          co_return;
        }
        // True 3-way handshake: park the connection half-open; accept
        // completes only on the client's ACK.
        auto owned = std::make_unique<TcpConn>(machine_.exec());
        owned->remote_ip = f.ip.src;
        owned->remote_port = tcp.src_port;
        owned->local_port = tcp.dst_port;
        owned->rcv_nxt = tcp.seq + 1;
        owned->snd_nxt = 5000;  // deterministic ISN
        owned->snd_una = 5000;
        owned->state = TcpState::kSynRcvd;
        TcpConn* c =
            conns_.Insert(ConnKey(f.ip.src, tcp.src_port, tcp.dst_port),
                          std::move(owned));
        ++half_open_count_;
        trace::Emit<trace::Category::kConn>(
            trace::EventId::kConnSynRcvd, machine_.exec().now(), core_,
            ConnKey(f.ip.src, tcp.src_port, tcp.dst_port));
        c->lifecycle_id = wheel_.Schedule(lifecycle_.syn_rcvd_timeout, [this, c] {
          c->lifecycle_id = TimerWheel::kNoTimer;
          if (c->state != TcpState::kSynRcvd) {
            return;
          }
          ++half_open_evicted_;
          trace::Emit<trace::Category::kConn>(
              trace::EventId::kConnEvict, machine_.exec().now(), core_, 0,
              ConnKey(c->remote_ip, c->remote_port, c->local_port));
          c->app_released = true;  // never reached the application
          CloseConn(*c, CloseCause::kHalfOpenExpiry);
        });
        PinGuard pin(this, c);
        co_await SendTcpSegment(*c, TcpFlags{.syn = true, .ack = true}, nullptr, 0);
        co_return;
      }
      if (lit != listeners_.end() && lifecycle_.max_half_open > 0 &&
          tcp.flags.ack && !tcp.flags.syn && !tcp.flags.rst && !tcp.flags.fin) {
        std::uint32_t cookie = CookieFor(f.ip.src, tcp.src_port, tcp.dst_port);
        if (tcp.ack == cookie + 1) {
          // Stateless handshake completion: the ACK proves the peer saw our
          // cookie SYN-ACK; rebuild the connection it encodes.
          auto owned = std::make_unique<TcpConn>(machine_.exec());
          owned->remote_ip = f.ip.src;
          owned->remote_port = tcp.src_port;
          owned->local_port = tcp.dst_port;
          owned->rcv_nxt = tcp.seq;
          owned->snd_nxt = tcp.ack;
          owned->snd_una = tcp.ack;
          owned->state = TcpState::kEstablished;
          owned->established = true;
          TcpConn* c =
              conns_.Insert(ConnKey(f.ip.src, tcp.src_port, tcp.dst_port),
                            std::move(owned));
          ++established_count_;
          if (established_count_ > peak_established_) {
            peak_established_ = established_count_;
          }
          ++syn_cookie_accepts_;
          trace::Emit<trace::Category::kConn>(
              trace::EventId::kConnCookieAccept, machine_.exec().now(), core_,
              cookie, ConnKey(f.ip.src, tcp.src_port, tcp.dst_port));
          trace::Emit<trace::Category::kConn>(
              trace::EventId::kConnEstablished, machine_.exec().now(), core_,
              ConnKey(f.ip.src, tcp.src_port, tcp.dst_port), 1);
          lit->second->accepted.push_back(c);
          lit->second->ready.Signal();
          // The ACK may already carry request bytes; run it through the
          // established-path handler so they are buffered and acked.
          co_await HandleTcpLifecycle(f, frame, *c);
          co_return;
        }
        ++syn_cookie_rejects_;
      }
      // Unknown flow in lifecycle mode: reset unconditionally. Cleanly-closed
      // connections are erased from the table, so a late segment deserves to
      // learn the flow is gone.
      if (!tcp.flags.rst) {
        co_await SendRstForSegment(f);
      }
      ++drops_no_listener_;
      co_return;
    }
    // New connection? Only if someone listens and this is a SYN.
    auto lit = listeners_.find(tcp.dst_port);
    if (lit == listeners_.end() || !tcp.flags.syn) {
      if (send_rst_for_unknown_ && !tcp.flags.rst &&
          fault::Injector::active() != nullptr) {
        // A mid-flow segment for a connection we never saw: an orphaned flow
        // re-steered here after its shard died. Reset it so the client can
        // retry with a fresh SYN against this stack's listener.
        co_await SendRstForSegment(f);
      }
      ++drops_no_listener_;
      co_return;
    }
    auto conn = std::make_unique<TcpConn>(machine_.exec());
    TcpConn* c = conn.get();
    c->remote_ip = f.ip.src;
    c->remote_port = tcp.src_port;
    c->local_port = tcp.dst_port;
    c->rcv_nxt = tcp.seq + 1;
    c->snd_nxt = 5000;  // deterministic ISN
    c->snd_una = 5000;
    conns_.Insert(ConnKey(f.ip.src, tcp.src_port, tcp.dst_port), std::move(conn));
    co_await SendTcpSegment(*c, TcpFlags{.syn = true, .ack = true}, nullptr, 0);
    c->established = true;  // completes on the client's ACK (lossless link)
    lit->second->accepted.push_back(c);
    lit->second->ready.Signal();
    co_return;
  }
  if (cp->state != TcpState::kLegacy) {
    co_await HandleTcpLifecycle(f, frame, *cp);
    co_return;
  }
  TcpConn& c = *cp;
  // A late segment — typically the SYN-ACK a retransmitted SYN provoked —
  // for a handshake this side already gave up on. Reset it: the peer (often
  // a survivor that adopted the flow) holds a half-open connection no one
  // will ever write to, and without the RST it would pin one of the server's
  // admission workers until the end of the run. Abandonment only happens
  // under injection (bounded connects give up only after faults delay them),
  // so plain runs never take this branch.
  if (c.abandoned && !tcp.flags.rst && fault::Injector::active() != nullptr) {
    co_await SendRstForSegment(f);
    co_return;
  }
  // RST aborts the connection outright: no more retransmissions (the peer
  // told us the flow is dead), readers see peer-closed. RSTs only occur under
  // injection (SetSendRstForUnknown), so plain runs never take this branch.
  if (tcp.flags.rst) {
    ++tcp_rsts_received_;
    c.peer_closed = true;
    c.unacked.clear();
    c.readable.Signal();
    c.closed_ev.Signal();
    co_return;
  }
  // ACK processing: advance snd_una and retire acknowledged segments. Pure
  // bookkeeping — no events are scheduled, so lossless runs are unaffected.
  if (tcp.flags.ack) {
    if (SeqLt(c.snd_una, tcp.ack) && SeqLe(tcp.ack, c.snd_nxt)) {
      c.snd_una = tcp.ack;
      c.dup_acks = 0;
      while (!c.unacked.empty() &&
             SeqLe(c.unacked.front().seq + c.unacked.front().seq_len, c.snd_una)) {
        c.unacked.pop_front();
      }
    } else if (tcp.ack == c.snd_una && !c.unacked.empty() && f.payload_len == 0 &&
               !tcp.flags.syn && !tcp.flags.fin) {
      ++c.dup_acks;  // recovery itself is timer-driven (go-back-N)
    }
  }
  if (tcp.flags.syn && tcp.flags.ack && !c.established) {
    // Our SYN was answered: complete the client side.
    c.rcv_nxt = tcp.seq + 1;
    c.established = true;
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  bool advanced = false;
  if (f.payload_len > 0 && tcp.seq == c.rcv_nxt) {
    c.rx.insert(c.rx.end(),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset +
                                                            f.payload_len));
    c.rcv_nxt += static_cast<std::uint32_t>(f.payload_len);
    advanced = true;
  }
  // In-order FIN (rcv_nxt was already advanced past any payload above).
  if (tcp.flags.fin &&
      tcp.seq + static_cast<std::uint32_t>(f.payload_len) == c.rcv_nxt) {
    c.rcv_nxt += 1;
    c.peer_closed = true;
    advanced = true;
    c.closed_ev.Signal();
  }
  if (advanced) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  // A sequence-consuming segment that did not advance rcv_nxt is either a
  // retransmitted duplicate or arrived past a loss-created hole. Re-announce
  // rcv_nxt so the peer's go-back-N machinery converges. Loss only exists
  // under injection, so plain runs never reach this send.
  if (fault::Injector::active() != nullptr &&
      (f.payload_len > 0 || tcp.flags.syn || tcp.flags.fin)) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
  }
}

Task<> NetStack::HandleTcpLifecycle(const ParsedFrame& f, const Packet& frame,
                                    TcpConn& c) {
  PinGuard pin(this, &c);
  const TcpHeader& tcp = *f.tcp;
  if (tcp.flags.rst) {
    ++tcp_rsts_received_;
    CloseConn(c, CloseCause::kReset);
    co_return;
  }
  if (c.state == TcpState::kClosed) {
    co_return;  // late segment for a connection awaiting reap
  }
  // Retransmitted SYN for a half-open connection: the SYN-ACK was lost.
  // Re-send it verbatim (half-open connections arm no retransmit timer).
  if (c.state == TcpState::kSynRcvd && tcp.flags.syn && !tcp.flags.ack) {
    co_await SendTcpRaw(c, c.snd_una, TcpFlags{.syn = true, .ack = true},
                        nullptr, 0);
    co_return;
  }
  // Client side: the SYN-ACK completes our active open.
  if (c.state == TcpState::kSynSent) {
    if (tcp.flags.syn && tcp.flags.ack && tcp.ack == c.snd_nxt) {
      c.rcv_nxt = tcp.seq + 1;
      c.snd_una = tcp.ack;
      c.unacked.clear();
      if (c.retx_id != TimerWheel::kNoTimer) {
        wheel_.Cancel(c.retx_id);
        c.retx_id = TimerWheel::kNoTimer;
      }
      if (c.lifecycle_id != TimerWheel::kNoTimer) {  // connect deadline
        wheel_.Cancel(c.lifecycle_id);
        c.lifecycle_id = TimerWheel::kNoTimer;
      }
      LeaveState(c);
      c.state = TcpState::kEstablished;
      c.established = true;
      ++established_count_;
      if (established_count_ > peak_established_) {
        peak_established_ = established_count_;
      }
      trace::Emit<trace::Category::kConn>(
          trace::EventId::kConnEstablished, machine_.exec().now(), core_,
          ConnKey(c.remote_ip, c.remote_port, c.local_port), 0);
      co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
      c.readable.Signal();
    }
    co_return;
  }
  // ACK processing: advance snd_una, retire acknowledged segments, settle
  // the retransmit timer and any in-flight FIN of ours.
  if (tcp.flags.ack) {
    if (SeqLt(c.snd_una, tcp.ack) && SeqLe(tcp.ack, c.snd_nxt)) {
      c.snd_una = tcp.ack;
      c.dup_acks = 0;
      while (!c.unacked.empty() &&
             SeqLe(c.unacked.front().seq + c.unacked.front().seq_len, c.snd_una)) {
        c.unacked.pop_front();
      }
      if (c.unacked.empty() && c.retx_id != TimerWheel::kNoTimer) {
        wheel_.Cancel(c.retx_id);
        c.retx_id = TimerWheel::kNoTimer;
        c.retx_tries = 0;
      }
    } else if (tcp.ack == c.snd_una && !c.unacked.empty() && f.payload_len == 0 &&
               !tcp.flags.syn && !tcp.flags.fin) {
      ++c.dup_acks;
    }
    if (c.state == TcpState::kSynRcvd && c.snd_una == c.snd_nxt) {
      // The client's ACK covers our SYN-ACK: promote the half-open
      // connection and complete the accept.
      if (c.lifecycle_id != TimerWheel::kNoTimer) {  // SYN_RCVD expiry
        wheel_.Cancel(c.lifecycle_id);
        c.lifecycle_id = TimerWheel::kNoTimer;
      }
      LeaveState(c);
      c.state = TcpState::kEstablished;
      c.established = true;
      ++established_count_;
      if (established_count_ > peak_established_) {
        peak_established_ = established_count_;
      }
      trace::Emit<trace::Category::kConn>(
          trace::EventId::kConnEstablished, machine_.exec().now(), core_,
          ConnKey(c.remote_ip, c.remote_port, c.local_port), 0);
      auto lit = listeners_.find(c.local_port);
      if (lit != listeners_.end()) {
        lit->second->accepted.push_back(&c);
        lit->second->ready.Signal();
      }
    }
    if (c.fin_sent && SeqLt(c.fin_seq, c.snd_una)) {
      // Our FIN is acknowledged.
      switch (c.state) {
        case TcpState::kFinWait1:
          c.state = TcpState::kFinWait2;
          break;
        case TcpState::kClosing:
          EnterTimeWait(c);
          break;
        case TcpState::kLastAck:
          CloseConn(c, CloseCause::kPassiveFin);
          co_return;
        default:
          break;
      }
    }
  }
  bool advanced = false;
  if (f.payload_len > 0 && tcp.seq == c.rcv_nxt) {
    c.rx.insert(c.rx.end(),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset +
                                                            f.payload_len));
    c.rcv_nxt += static_cast<std::uint32_t>(f.payload_len);
    advanced = true;
  }
  // In-order FIN (rcv_nxt was already advanced past any payload above).
  if (tcp.flags.fin &&
      tcp.seq + static_cast<std::uint32_t>(f.payload_len) == c.rcv_nxt) {
    c.rcv_nxt += 1;
    c.peer_closed = true;
    advanced = true;
    c.closed_ev.Signal();
    switch (c.state) {
      case TcpState::kEstablished:
        LeaveState(c);
        c.state = TcpState::kCloseWait;
        break;
      case TcpState::kFinWait1:
        c.state = TcpState::kClosing;  // simultaneous close
        break;
      case TcpState::kFinWait2:
        EnterTimeWait(c);
        break;
      default:
        break;
    }
  }
  if (advanced) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  // Out-of-order or duplicate sequence-consuming segment (including a peer's
  // retransmitted FIN while we sit in TIME_WAIT): re-announce rcv_nxt so the
  // peer's go-back-N converges. Unconditional in lifecycle mode — loss is a
  // first-class citizen here, not an injector-only artifact.
  if (f.payload_len > 0 || tcp.flags.syn || tcp.flags.fin) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
  }
}

Task<> NetStack::SendRstForSegment(const ParsedFrame& f) {
  const TcpHeader& tcp = *f.tcp;
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(f.ip.src);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = f.ip.src;
  ip.ident = ip_ident_++;
  TcpHeader rst;
  rst.src_port = tcp.dst_port;
  rst.dst_port = tcp.src_port;
  rst.seq = tcp.flags.ack ? tcp.ack : 0;
  rst.ack = tcp.seq + static_cast<std::uint32_t>(f.payload_len) +
            (tcp.flags.syn ? 1 : 0) + (tcp.flags.fin ? 1 : 0);
  rst.flags = TcpFlags{.ack = true, .rst = true};
  ++tcp_rsts_sent_;
  co_await Emit(BuildTcpFrame(eth, ip, rst, nullptr, 0), 0);
}

Task<> NetStack::SendStatelessSegment(Ipv4Addr dst_ip, std::uint16_t src_port,
                                      std::uint16_t dst_port, std::uint32_t seq,
                                      std::uint32_t ack, TcpFlags flags) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(dst_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = dst_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  co_await Emit(BuildTcpFrame(eth, ip, tcp, nullptr, 0), 0);
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::uint8_t* data, std::size_t len) {
  constexpr std::size_t kMss = kMtu - kIpHeaderBytes - kTcpHeaderBytes;
  std::size_t off = 0;
  while (off < len) {
    std::size_t seg = std::min(kMss, len - off);
    co_await SendTcpSegment(conn, TcpFlags{.ack = true}, data + off, seg);
    off += seg;
  }
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::string& data) {
  co_await TcpSend(conn, reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

Task<> NetStack::TcpClose(TcpConn& conn) {
  if (conn.state != TcpState::kLegacy) {
    // Full FIN/ACK close handshake. Active close walks FIN_WAIT_1 →
    // FIN_WAIT_2 → TIME_WAIT; closing after the peer's FIN walks CLOSE_WAIT
    // → LAST_ACK → CLOSED.
    if (conn.state == TcpState::kEstablished) {
      LeaveState(conn);
      conn.state = TcpState::kFinWait1;
    } else if (conn.state == TcpState::kCloseWait) {
      conn.state = TcpState::kLastAck;
    } else {
      co_return;  // half-open, already closing, or closed: nothing to send
    }
    conn.fin_sent = true;
    conn.fin_seq = conn.snd_nxt;
    co_await SendTcpSegment(conn, TcpFlags{.ack = true, .fin = true}, nullptr, 0);
    co_return;
  }
  co_await SendTcpSegment(conn, TcpFlags{.ack = true, .fin = true}, nullptr, 0);
}

}  // namespace mk::net
