#include "net/stack.h"

#include <cstring>

#include "fault/fault.h"
#include "trace/trace.h"

namespace mk::net {
namespace {

// Serial-number comparison (RFC 1982 style) for 32-bit sequence space.
bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

Task<NetStack::UdpDatagram> NetStack::UdpSocket::Recv() {
  while (queue.empty()) {
    co_await ready.Wait();
  }
  UdpDatagram d = std::move(queue.front());
  queue.pop_front();
  co_return d;
}

bool NetStack::UdpSocket::TryRecv(UdpDatagram* out) {
  if (queue.empty()) {
    return false;
  }
  *out = std::move(queue.front());
  queue.pop_front();
  return true;
}

Task<std::vector<std::uint8_t>> NetStack::TcpConn::Read() {
  while (rx.empty() && !peer_closed) {
    co_await readable.Wait();
  }
  std::vector<std::uint8_t> out(rx.begin(), rx.end());
  rx.clear();
  co_return out;
}

Task<NetStack::TcpConn*> NetStack::Listener::Accept() {
  while (accepted.empty()) {
    co_await ready.Wait();
  }
  TcpConn* conn = accepted.front();
  accepted.pop_front();
  co_return conn;
}

NetStack::NetStack(hw::Machine& machine, int core, Ipv4Addr ip, MacAddr mac,
                   StackCosts costs)
    : machine_(machine), core_(core), ip_(ip), mac_(mac), costs_(costs) {}

MacAddr NetStack::ResolveMac(Ipv4Addr ip) const {
  auto it = arp_.find(ip);
  if (it != arp_.end()) {
    return it->second;
  }
  return MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
}

Task<> NetStack::Emit(Packet frame, std::size_t payload_len) {
  ++frames_out_;
  co_await machine_.Compute(
      core_, costs_.per_packet_out +
                 static_cast<Cycles>(static_cast<double>(payload_len) *
                                     costs_.per_byte_checksum));
  if (output_) {
    co_await output_(std::move(frame));
  }
}

NetStack::UdpSocket& NetStack::UdpBind(std::uint16_t port) {
  auto [it, inserted] = udp_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<UdpSocket>(machine_.exec());
  }
  return *it->second;
}

Task<> NetStack::UdpSendTo(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                           std::vector<std::uint8_t> payload) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(dst_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = dst_ip;
  ip.ident = ip_ident_++;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  std::size_t len = payload.size();
  Packet frame = BuildUdpFrame(eth, ip, udp, payload.data(), payload.size());
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::Input(Packet frame) {
  ++frames_in_;
  ParseInfo info;
  auto parsed = ParseFrame(frame, &info);
  // Checksum cost is charged on the L4 payload bytes the parser actually
  // summed — the same basis whether the frame parsed or not (a truncated
  // frame sums nothing; a corrupt one sums its payload before rejecting it).
  co_await machine_.Compute(
      core_, costs_.per_packet_in +
                 static_cast<Cycles>(static_cast<double>(info.payload_len) *
                                     costs_.per_byte_checksum));
  if (!parsed) {
    if (info.error == ParseError::kUnknownProto) {
      ++drops_unknown_proto_;
    } else {
      ++drops_bad_frame_;
    }
    co_return;
  }
  if (parsed->ip.dst != ip_ && parsed->ip.dst != 0xffffffff) {
    ++drops_not_for_us_;
    co_return;
  }
  if (parsed->udp) {
    auto it = udp_.find(parsed->udp->dst_port);
    if (it == udp_.end()) {
      ++drops_no_listener_;
      co_return;
    }
    UdpDatagram d;
    d.src_ip = parsed->ip.src;
    d.src_port = parsed->udp->src_port;
    d.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset),
                     frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset +
                                                                 parsed->payload_len));
    it->second->queue.push_back(std::move(d));
    it->second->ready.Signal();
    co_return;
  }
  if (parsed->tcp) {
    co_await HandleTcp(*parsed, frame);
    co_return;
  }
  ++drops_unknown_proto_;
}

Task<> NetStack::SendTcpSegment(TcpConn& conn, TcpFlags flags, const std::uint8_t* data,
                                std::size_t len) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(conn.remote_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = conn.remote_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = conn.local_port;
  tcp.dst_port = conn.remote_port;
  tcp.seq = conn.snd_nxt;
  tcp.ack = conn.rcv_nxt;
  tcp.flags = flags;
  auto seq_len = static_cast<std::uint32_t>(len) + (flags.syn ? 1 : 0) +
                 (flags.fin ? 1 : 0);
  conn.snd_nxt += seq_len;
  if (seq_len > 0) {
    // Segments that occupy sequence space are kept until acknowledged (pure
    // ACKs are not retransmittable). This bookkeeping runs on every send; the
    // timer that retransmits from it only exists under fault injection.
    TcpConn::SentSeg seg;
    seg.seq = tcp.seq;
    seg.seq_len = seq_len;
    seg.flags = flags;
    seg.data.assign(data, data + len);
    conn.unacked.push_back(std::move(seg));
    if (fault::Injector::active() != nullptr && !conn.retx_timer_running) {
      conn.retx_timer_running = true;
      machine_.exec().Spawn(RetransmitTimer(conn));
    }
  }
  Packet frame = BuildTcpFrame(eth, ip, tcp, data, len);
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::SendTcpRaw(TcpConn& conn, std::uint32_t seq, TcpFlags flags,
                            const std::uint8_t* data, std::size_t len) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(conn.remote_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = conn.remote_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = conn.local_port;
  tcp.dst_port = conn.remote_port;
  tcp.seq = seq;
  tcp.ack = conn.rcv_nxt;
  tcp.flags = flags;
  Packet frame = BuildTcpFrame(eth, ip, tcp, data, len);
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::RetransmitTimer(TcpConn& conn) {
  // Go-back-N: on each timeout with no forward progress, re-send everything
  // outstanding from snd_una. The connection object is owned by conns_ and
  // never erased, so the reference stays valid across suspensions.
  Cycles rto = recover::Config().tcp_rto;
  int tries = 0;
  while (fault::Injector::active() != nullptr && !conn.unacked.empty()) {
    std::uint32_t una_before = conn.snd_una;
    co_await machine_.exec().Delay(rto);
    if (conn.unacked.empty()) {
      break;
    }
    if (conn.snd_una != una_before) {
      rto = recover::Config().tcp_rto;  // forward progress: reset the backoff
      tries = 0;
      continue;
    }
    if (++tries > recover::Config().tcp_max_retx) {
      break;  // peer presumed dead; stop re-arming so the executor can drain
    }
    ++tcp_retransmits_;
    trace::Emit<trace::Category::kFault>(trace::EventId::kFaultTcpRetransmit,
                                         machine_.exec().now(), core_, conn.snd_una,
                                         static_cast<std::uint64_t>(tries));
    // Snapshot: ACKs arriving during the resend's suspensions may pop from
    // the live queue under us.
    std::vector<TcpConn::SentSeg> window(conn.unacked.begin(), conn.unacked.end());
    for (const TcpConn::SentSeg& seg : window) {
      co_await SendTcpRaw(conn, seg.seq, seg.flags, seg.data.data(), seg.data.size());
    }
    rto *= 2;
  }
  conn.retx_timer_running = false;
}

NetStack::Listener& NetStack::TcpListen(std::uint16_t port) {
  auto [it, inserted] = listeners_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<Listener>(machine_.exec());
  }
  return *it->second;
}

Task<NetStack::TcpConn*> NetStack::TcpConnect(Ipv4Addr dst_ip, std::uint16_t dst_port,
                                              Cycles timeout) {
  auto conn = std::make_unique<TcpConn>(machine_.exec());
  TcpConn* c = conn.get();
  c->remote_ip = dst_ip;
  c->remote_port = dst_port;
  c->local_port = next_ephemeral_++;
  c->snd_nxt = 1000;  // deterministic ISN
  c->snd_una = 1000;
  conns_[{dst_ip, dst_port, c->local_port}] = std::move(conn);
  const Cycles deadline = machine_.exec().now() + timeout;
  co_await SendTcpSegment(*c, TcpFlags{.syn = true}, nullptr, 0);
  while (!c->established) {
    if (c->peer_closed) {
      // RST before the handshake completed (only possible under injection):
      // the peer refuses this connection. Abandon it in place — the conn
      // object must stay owned by conns_ because the SYN's RetransmitTimer
      // may still hold a reference to it across a Delay; clearing unacked
      // makes that timer exit at its next wake. Ephemeral ports are never
      // reused, so the dead map entry can't shadow a future flow.
      c->abandoned = true;
      c->unacked.clear();
      co_return nullptr;
    }
    if (timeout == 0) {
      co_await c->readable.Wait();
      continue;
    }
    Cycles now = machine_.exec().now();
    if (now >= deadline ||
        !co_await c->readable.WaitTimeout(deadline - now)) {
      if (!c->established) {  // SYN-ACK may have raced the timer
        c->peer_closed = true;  // abandoned; see RST comment above
        c->abandoned = true;
        c->unacked.clear();
        co_return nullptr;
      }
    }
  }
  co_return c;
}

Task<> NetStack::HandleTcp(const ParsedFrame& f, const Packet& frame) {
  const TcpHeader& tcp = *f.tcp;
  auto key = std::make_tuple(f.ip.src, tcp.src_port, tcp.dst_port);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    // New connection? Only if someone listens and this is a SYN.
    auto lit = listeners_.find(tcp.dst_port);
    if (lit == listeners_.end() || !tcp.flags.syn) {
      if (send_rst_for_unknown_ && !tcp.flags.rst &&
          fault::Injector::active() != nullptr) {
        // A mid-flow segment for a connection we never saw: an orphaned flow
        // re-steered here after its shard died. Reset it so the client can
        // retry with a fresh SYN against this stack's listener.
        co_await SendRstForSegment(f);
      }
      ++drops_no_listener_;
      co_return;
    }
    auto conn = std::make_unique<TcpConn>(machine_.exec());
    TcpConn* c = conn.get();
    c->remote_ip = f.ip.src;
    c->remote_port = tcp.src_port;
    c->local_port = tcp.dst_port;
    c->rcv_nxt = tcp.seq + 1;
    c->snd_nxt = 5000;  // deterministic ISN
    c->snd_una = 5000;
    conns_[key] = std::move(conn);
    co_await SendTcpSegment(*c, TcpFlags{.syn = true, .ack = true}, nullptr, 0);
    c->established = true;  // completes on the client's ACK (lossless link)
    lit->second->accepted.push_back(c);
    lit->second->ready.Signal();
    co_return;
  }
  TcpConn& c = *it->second;
  // A late segment — typically the SYN-ACK a retransmitted SYN provoked —
  // for a handshake this side already gave up on. Reset it: the peer (often
  // a survivor that adopted the flow) holds a half-open connection no one
  // will ever write to, and without the RST it would pin one of the server's
  // admission workers until the end of the run. Abandonment only happens
  // under injection (bounded connects give up only after faults delay them),
  // so plain runs never take this branch.
  if (c.abandoned && !tcp.flags.rst && fault::Injector::active() != nullptr) {
    co_await SendRstForSegment(f);
    co_return;
  }
  // RST aborts the connection outright: no more retransmissions (the peer
  // told us the flow is dead), readers see peer-closed. RSTs only occur under
  // injection (SetSendRstForUnknown), so plain runs never take this branch.
  if (tcp.flags.rst) {
    ++tcp_rsts_received_;
    c.peer_closed = true;
    c.unacked.clear();
    c.readable.Signal();
    c.closed_ev.Signal();
    co_return;
  }
  // ACK processing: advance snd_una and retire acknowledged segments. Pure
  // bookkeeping — no events are scheduled, so lossless runs are unaffected.
  if (tcp.flags.ack) {
    if (SeqLt(c.snd_una, tcp.ack) && SeqLe(tcp.ack, c.snd_nxt)) {
      c.snd_una = tcp.ack;
      c.dup_acks = 0;
      while (!c.unacked.empty() &&
             SeqLe(c.unacked.front().seq + c.unacked.front().seq_len, c.snd_una)) {
        c.unacked.pop_front();
      }
    } else if (tcp.ack == c.snd_una && !c.unacked.empty() && f.payload_len == 0 &&
               !tcp.flags.syn && !tcp.flags.fin) {
      ++c.dup_acks;  // recovery itself is timer-driven (go-back-N)
    }
  }
  if (tcp.flags.syn && tcp.flags.ack && !c.established) {
    // Our SYN was answered: complete the client side.
    c.rcv_nxt = tcp.seq + 1;
    c.established = true;
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  bool advanced = false;
  if (f.payload_len > 0 && tcp.seq == c.rcv_nxt) {
    c.rx.insert(c.rx.end(),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset +
                                                            f.payload_len));
    c.rcv_nxt += static_cast<std::uint32_t>(f.payload_len);
    advanced = true;
  }
  // In-order FIN (rcv_nxt was already advanced past any payload above).
  if (tcp.flags.fin &&
      tcp.seq + static_cast<std::uint32_t>(f.payload_len) == c.rcv_nxt) {
    c.rcv_nxt += 1;
    c.peer_closed = true;
    advanced = true;
    c.closed_ev.Signal();
  }
  if (advanced) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  // A sequence-consuming segment that did not advance rcv_nxt is either a
  // retransmitted duplicate or arrived past a loss-created hole. Re-announce
  // rcv_nxt so the peer's go-back-N machinery converges. Loss only exists
  // under injection, so plain runs never reach this send.
  if (fault::Injector::active() != nullptr &&
      (f.payload_len > 0 || tcp.flags.syn || tcp.flags.fin)) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
  }
}

Task<> NetStack::SendRstForSegment(const ParsedFrame& f) {
  const TcpHeader& tcp = *f.tcp;
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(f.ip.src);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = f.ip.src;
  ip.ident = ip_ident_++;
  TcpHeader rst;
  rst.src_port = tcp.dst_port;
  rst.dst_port = tcp.src_port;
  rst.seq = tcp.flags.ack ? tcp.ack : 0;
  rst.ack = tcp.seq + static_cast<std::uint32_t>(f.payload_len) +
            (tcp.flags.syn ? 1 : 0) + (tcp.flags.fin ? 1 : 0);
  rst.flags = TcpFlags{.ack = true, .rst = true};
  ++tcp_rsts_sent_;
  co_await Emit(BuildTcpFrame(eth, ip, rst, nullptr, 0), 0);
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::uint8_t* data, std::size_t len) {
  constexpr std::size_t kMss = kMtu - kIpHeaderBytes - kTcpHeaderBytes;
  std::size_t off = 0;
  while (off < len) {
    std::size_t seg = std::min(kMss, len - off);
    co_await SendTcpSegment(conn, TcpFlags{.ack = true}, data + off, seg);
    off += seg;
  }
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::string& data) {
  co_await TcpSend(conn, reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

Task<> NetStack::TcpClose(TcpConn& conn) {
  co_await SendTcpSegment(conn, TcpFlags{.ack = true, .fin = true}, nullptr, 0);
}

}  // namespace mk::net
