#include "net/stack.h"

#include <cstring>

namespace mk::net {

Task<NetStack::UdpDatagram> NetStack::UdpSocket::Recv() {
  while (queue.empty()) {
    co_await ready.Wait();
  }
  UdpDatagram d = std::move(queue.front());
  queue.pop_front();
  co_return d;
}

bool NetStack::UdpSocket::TryRecv(UdpDatagram* out) {
  if (queue.empty()) {
    return false;
  }
  *out = std::move(queue.front());
  queue.pop_front();
  return true;
}

Task<std::vector<std::uint8_t>> NetStack::TcpConn::Read() {
  while (rx.empty() && !peer_closed) {
    co_await readable.Wait();
  }
  std::vector<std::uint8_t> out(rx.begin(), rx.end());
  rx.clear();
  co_return out;
}

Task<NetStack::TcpConn*> NetStack::Listener::Accept() {
  while (accepted.empty()) {
    co_await ready.Wait();
  }
  TcpConn* conn = accepted.front();
  accepted.pop_front();
  co_return conn;
}

NetStack::NetStack(hw::Machine& machine, int core, Ipv4Addr ip, MacAddr mac,
                   StackCosts costs)
    : machine_(machine), core_(core), ip_(ip), mac_(mac), costs_(costs) {}

MacAddr NetStack::ResolveMac(Ipv4Addr ip) const {
  auto it = arp_.find(ip);
  if (it != arp_.end()) {
    return it->second;
  }
  return MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
}

Task<> NetStack::Emit(Packet frame, std::size_t payload_len) {
  ++frames_out_;
  co_await machine_.Compute(
      core_, costs_.per_packet_out +
                 static_cast<Cycles>(static_cast<double>(payload_len) *
                                     costs_.per_byte_checksum));
  if (output_) {
    co_await output_(std::move(frame));
  }
}

NetStack::UdpSocket& NetStack::UdpBind(std::uint16_t port) {
  auto [it, inserted] = udp_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<UdpSocket>(machine_.exec());
  }
  return *it->second;
}

Task<> NetStack::UdpSendTo(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                           std::vector<std::uint8_t> payload) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(dst_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = dst_ip;
  ip.ident = ip_ident_++;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  std::size_t len = payload.size();
  Packet frame = BuildUdpFrame(eth, ip, udp, payload.data(), payload.size());
  co_await Emit(std::move(frame), len);
}

Task<> NetStack::Input(Packet frame) {
  ++frames_in_;
  auto parsed = ParseFrame(frame);
  co_await machine_.Compute(
      core_, costs_.per_packet_in +
                 static_cast<Cycles>(static_cast<double>(
                                         parsed ? parsed->payload_len : frame.size()) *
                                     costs_.per_byte_checksum));
  if (!parsed || (parsed->ip.dst != ip_ && parsed->ip.dst != 0xffffffff)) {
    ++drops_;
    co_return;
  }
  if (parsed->udp) {
    auto it = udp_.find(parsed->udp->dst_port);
    if (it == udp_.end()) {
      ++drops_;
      co_return;
    }
    UdpDatagram d;
    d.src_ip = parsed->ip.src;
    d.src_port = parsed->udp->src_port;
    d.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset),
                     frame.begin() + static_cast<std::ptrdiff_t>(parsed->payload_offset +
                                                                 parsed->payload_len));
    it->second->queue.push_back(std::move(d));
    it->second->ready.Signal();
    co_return;
  }
  if (parsed->tcp) {
    co_await HandleTcp(*parsed, frame);
    co_return;
  }
  ++drops_;
}

Task<> NetStack::SendTcpSegment(TcpConn& conn, TcpFlags flags, const std::uint8_t* data,
                                std::size_t len) {
  EthHeader eth;
  eth.src = mac_;
  eth.dst = ResolveMac(conn.remote_ip);
  IpHeader ip;
  ip.src = ip_;
  ip.dst = conn.remote_ip;
  ip.ident = ip_ident_++;
  TcpHeader tcp;
  tcp.src_port = conn.local_port;
  tcp.dst_port = conn.remote_port;
  tcp.seq = conn.snd_nxt;
  tcp.ack = conn.rcv_nxt;
  tcp.flags = flags;
  conn.snd_nxt += static_cast<std::uint32_t>(len) + (flags.syn ? 1 : 0) +
                  (flags.fin ? 1 : 0);
  Packet frame = BuildTcpFrame(eth, ip, tcp, data, len);
  co_await Emit(std::move(frame), len);
}

NetStack::Listener& NetStack::TcpListen(std::uint16_t port) {
  auto [it, inserted] = listeners_.try_emplace(port, nullptr);
  if (inserted) {
    it->second = std::make_unique<Listener>(machine_.exec());
  }
  return *it->second;
}

Task<NetStack::TcpConn*> NetStack::TcpConnect(Ipv4Addr dst_ip, std::uint16_t dst_port) {
  auto conn = std::make_unique<TcpConn>(machine_.exec());
  TcpConn* c = conn.get();
  c->remote_ip = dst_ip;
  c->remote_port = dst_port;
  c->local_port = next_ephemeral_++;
  c->snd_nxt = 1000;  // deterministic ISN
  conns_[{dst_ip, dst_port, c->local_port}] = std::move(conn);
  co_await SendTcpSegment(*c, TcpFlags{.syn = true}, nullptr, 0);
  while (!c->established) {
    co_await c->readable.Wait();
  }
  co_return c;
}

Task<> NetStack::HandleTcp(const ParsedFrame& f, const Packet& frame) {
  const TcpHeader& tcp = *f.tcp;
  auto key = std::make_tuple(f.ip.src, tcp.src_port, tcp.dst_port);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    // New connection? Only if someone listens and this is a SYN.
    auto lit = listeners_.find(tcp.dst_port);
    if (lit == listeners_.end() || !tcp.flags.syn) {
      ++drops_;
      co_return;
    }
    auto conn = std::make_unique<TcpConn>(machine_.exec());
    TcpConn* c = conn.get();
    c->remote_ip = f.ip.src;
    c->remote_port = tcp.src_port;
    c->local_port = tcp.dst_port;
    c->rcv_nxt = tcp.seq + 1;
    c->snd_nxt = 5000;  // deterministic ISN
    conns_[key] = std::move(conn);
    co_await SendTcpSegment(*c, TcpFlags{.syn = true, .ack = true}, nullptr, 0);
    c->established = true;  // completes on the client's ACK (lossless link)
    lit->second->accepted.push_back(c);
    lit->second->ready.Signal();
    co_return;
  }
  TcpConn& c = *it->second;
  if (tcp.flags.syn && tcp.flags.ack && !c.established) {
    // Our SYN was answered: complete the client side.
    c.rcv_nxt = tcp.seq + 1;
    c.established = true;
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
    co_return;
  }
  bool advanced = false;
  if (f.payload_len > 0 && tcp.seq == c.rcv_nxt) {
    c.rx.insert(c.rx.end(),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset),
                frame.begin() + static_cast<std::ptrdiff_t>(f.payload_offset +
                                                            f.payload_len));
    c.rcv_nxt += static_cast<std::uint32_t>(f.payload_len);
    advanced = true;
  }
  // In-order FIN (rcv_nxt was already advanced past any payload above).
  if (tcp.flags.fin &&
      tcp.seq + static_cast<std::uint32_t>(f.payload_len) == c.rcv_nxt) {
    c.rcv_nxt += 1;
    c.peer_closed = true;
    advanced = true;
    c.closed_ev.Signal();
  }
  if (advanced) {
    co_await SendTcpSegment(c, TcpFlags{.ack = true}, nullptr, 0);
    c.readable.Signal();
  }
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::uint8_t* data, std::size_t len) {
  constexpr std::size_t kMss = kMtu - kIpHeaderBytes - kTcpHeaderBytes;
  std::size_t off = 0;
  while (off < len) {
    std::size_t seg = std::min(kMss, len - off);
    co_await SendTcpSegment(conn, TcpFlags{.ack = true}, data + off, seg);
    off += seg;
  }
}

Task<> NetStack::TcpSend(TcpConn& conn, const std::string& data) {
  co_await TcpSend(conn, reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

Task<> NetStack::TcpClose(TcpConn& conn) {
  co_await SendTcpSegment(conn, TcpFlags{.ack = true, .fin = true}, nullptr, 0);
}

}  // namespace mk::net
