// CrossWire: a network link between SimNics in different engine domains.
//
// Inside one domain, NICs are bridged by pump tasks that WirePop frames and
// InjectFromWire them into the peer (see bench/sec54_scaleout.cc) — direct
// calls, legal because everything shares one executor. Across parallel-engine
// domains a direct call would be a cross-thread push into a foreign event
// queue; CrossWire is the same pump shape routed through
// sim::ParallelEngine::Post instead.
//
// The wire latency doubles as the engine link latency, which is exactly the
// conservative-lookahead contract: a frame popped at time u in the source
// domain reaches the destination NIC at u + latency, never earlier, so the
// engine may run both domains `latency` cycles apart without coordination.
// Frame delivery order per direction is FIFO (single pump, FIFO mailbox
// drain), and the engine's fixed drain order makes the merged schedule
// independent of host thread count.
#ifndef MK_NET_CROSSWIRE_H_
#define MK_NET_CROSSWIRE_H_

#include <cstdint>

#include "net/nic.h"
#include "sim/parallel.h"

namespace mk::net {

class CrossWire {
 public:
  // Bridges `nic_a` (living in engine domain `domain_a`) and `nic_b` (in
  // `domain_b`), full duplex, `latency` simulated cycles each way. Each NIC
  // must have been built on the executor of its stated domain. Registers
  // both directed engine links; call Start() before ParallelEngine::Run().
  CrossWire(sim::ParallelEngine& engine, int domain_a, SimNic& nic_a, int domain_b,
            SimNic& nic_b, sim::Cycles latency);
  CrossWire(const CrossWire&) = delete;
  CrossWire& operator=(const CrossWire&) = delete;

  // Spawns the two pump tasks (one per direction, each in its source
  // domain). Frames already sitting in a TX wire queue are forwarded
  // immediately.
  void Start();

  // Asks both pumps to exit at their next wake-up and wakes them. Pending
  // wire frames stop being forwarded; already-posted frames still arrive.
  void Stop();

  sim::Cycles latency() const { return latency_; }
  std::uint64_t forwarded_ab() const { return ab_.forwarded; }
  std::uint64_t forwarded_ba() const { return ba_.forwarded; }
  // Cross-machine link faults (fault::FaultKind::kWireDrop / kWireDelay,
  // matched on the (src,dst) domain pair): frames dropped on the wire and
  // frames delivered late by an armed delay spike.
  std::uint64_t dropped_ab() const { return ab_.dropped; }
  std::uint64_t dropped_ba() const { return ba_.dropped; }
  std::uint64_t delayed_ab() const { return ab_.delayed; }
  std::uint64_t delayed_ba() const { return ba_.delayed; }

 private:
  struct Direction {
    int src_domain;
    int dst_domain;
    SimNic* src;
    SimNic* dst;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    bool stop = false;
  };

  sim::Task<> Pump(Direction& dir);

  sim::ParallelEngine& engine_;
  sim::Cycles latency_;
  Direction ab_;
  Direction ba_;
};

}  // namespace mk::net

#endif  // MK_NET_CROSSWIRE_H_
